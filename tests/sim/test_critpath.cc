/**
 * @file
 * Unit tests for the critical-path taxonomy and profiler: edge
 * naming/stage mapping, per-persist accumulation, the exact-partition
 * assert, share arithmetic, and the folded-stack flame-graph export.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "sim/critpath.hh"

namespace janus
{
namespace
{

TEST(CritEdge, NamesAreStableSnakeCase)
{
    EXPECT_STREQ(critEdgeName(CritEdge::ExecAes), "exec_aes");
    EXPECT_STREQ(critEdgeName(CritEdge::ExecHash), "exec_hash");
    EXPECT_STREQ(critEdgeName(CritEdge::ExecDedup), "exec_dedup");
    EXPECT_STREQ(critEdgeName(CritEdge::ExecOther), "exec_other");
    EXPECT_STREQ(critEdgeName(CritEdge::UnitBusy), "unit_busy");
    EXPECT_STREQ(critEdgeName(CritEdge::TreePipe), "tree_pipe");
    EXPECT_STREQ(critEdgeName(CritEdge::IrbLookup), "irb_lookup");
    EXPECT_STREQ(critEdgeName(CritEdge::PreExecWait),
                 "pre_exec_wait");
    EXPECT_STREQ(critEdgeName(CritEdge::Unattributed),
                 "unattributed");
    EXPECT_STREQ(critEdgeName(CritEdge::WqFull), "wq_full");
    EXPECT_STREQ(critEdgeName(CritEdge::MediaRetry), "media_retry");
    EXPECT_STREQ(critEdgeName(CritEdge::MetaCowrite),
                 "meta_cowrite");
    EXPECT_STREQ(critEdgeName(CritEdge::OrderFifo), "order_fifo");
}

TEST(CritEdge, EveryEdgeHasANameAndStage)
{
    for (std::size_t i = 0; i < numCritEdges; ++i) {
        auto edge = static_cast<CritEdge>(i);
        EXPECT_NE(critEdgeName(edge), nullptr);
        const std::string stage = critEdgeStage(edge);
        EXPECT_TRUE(stage == "bmo" || stage == "queue" ||
                    stage == "order")
            << critEdgeName(edge) << " -> " << stage;
    }
    EXPECT_STREQ(critEdgeStage(CritEdge::ExecAes), "bmo");
    EXPECT_STREQ(critEdgeStage(CritEdge::WqFull), "queue");
    EXPECT_STREQ(critEdgeStage(CritEdge::OrderFifo), "order");
}

TEST(CritPathProfiler, AccumulatesPartitionedPersists)
{
    CritPathProfiler prof;
    prof.addPersist({{CritEdge::ExecAes, 300},
                     {CritEdge::WqFull, 100},
                     {CritEdge::OrderFifo, 50}},
                    450);
    prof.addPersist({{CritEdge::ExecAes, 100},
                     {CritEdge::ExecAes, 40}}, // same edge twice
                    140);
    const CritPathSummary &s = prof.summary();
    EXPECT_EQ(s.persists, 2u);
    EXPECT_EQ(s.totalTicks, 590u);
    EXPECT_EQ(s.ticksOf(CritEdge::ExecAes), 440u);
    EXPECT_EQ(s.ticksOf(CritEdge::WqFull), 100u);
    EXPECT_EQ(s.ticksOf(CritEdge::OrderFifo), 50u);
    EXPECT_EQ(s.ticksOf(CritEdge::ExecHash), 0u);
}

TEST(CritPathProfiler, ZeroLatencyPersistAllowed)
{
    CritPathProfiler prof;
    prof.addPersist({}, 0);
    EXPECT_EQ(prof.summary().persists, 1u);
    EXPECT_EQ(prof.summary().totalTicks, 0u);
    EXPECT_DOUBLE_EQ(prof.summary().shareSum(), 0.0);
}

TEST(CritPathSummary, SharesPartitionExactly)
{
    CritPathProfiler prof;
    prof.addPersist({{CritEdge::ExecHash, 600},
                     {CritEdge::TreePipe, 200},
                     {CritEdge::IrbLookup, 200}},
                    1000);
    const CritPathSummary &s = prof.summary();
    EXPECT_DOUBLE_EQ(s.share(CritEdge::ExecHash), 0.6);
    EXPECT_DOUBLE_EQ(s.share(CritEdge::TreePipe), 0.2);
    EXPECT_DOUBLE_EQ(s.share(CritEdge::IrbLookup), 0.2);
    EXPECT_DOUBLE_EQ(s.shareSum(), 1.0);
    std::uint64_t edge_sum = 0;
    for (auto ticks : s.edgeTicks)
        edge_sum += ticks;
    EXPECT_EQ(edge_sum, s.totalTicks);
}

TEST(CritPathSummary, EmptySummaryIsZero)
{
    CritPathSummary s;
    EXPECT_EQ(s.persists, 0u);
    EXPECT_DOUBLE_EQ(s.shareSum(), 0.0);
    EXPECT_DOUBLE_EQ(s.share(CritEdge::ExecAes), 0.0);
}

TEST(CritPathProfiler, NonPartitioningSegmentsDie)
{
    CritPathProfiler prof;
    EXPECT_DEATH(
        prof.addPersist({{CritEdge::ExecAes, 100}}, 150),
        "segments sum to");
    EXPECT_DEATH(
        prof.addPersist({{CritEdge::ExecAes, 100},
                         {CritEdge::WqFull, 100}},
                        100),
        "segments sum to");
}

TEST(CritPath, FoldedStacksMatchSummary)
{
    CritPathProfiler prof;
    prof.addPersist({{CritEdge::ExecAes, 2000},
                     {CritEdge::WqFull, 1000},
                     {CritEdge::OrderFifo, 1000}},
                    4000);
    std::ostringstream os;
    prof.writeFolded(os, "fig1;janus");
    const std::string out = os.str();
    // ticks are picoseconds: 2000 ticks == 2 ns.
    EXPECT_NE(out.find("fig1;janus;persist;bmo;exec_aes 2"),
              std::string::npos);
    EXPECT_NE(out.find("fig1;janus;persist;queue;wq_full 1"),
              std::string::npos);
    EXPECT_NE(out.find("fig1;janus;persist;order;order_fifo 1"),
              std::string::npos);
    // Zero-time edges are omitted.
    EXPECT_EQ(out.find("exec_hash"), std::string::npos);
}

TEST(CritPath, FoldedEmptySummaryWritesNothing)
{
    std::ostringstream os;
    writeFoldedSummary(CritPathSummary{}, os, "p");
    EXPECT_TRUE(os.str().empty());
}

} // namespace
} // namespace janus
