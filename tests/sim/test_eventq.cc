/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <array>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "sim/eventq.hh"

namespace janus
{
namespace
{

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, StableForSameTick)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.scheduleIn(9, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.curTick(), 10u);
}

TEST(EventQueue, RunWithLimitStopsAndAdvances)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&] { ++fired; });
    eq.schedule(15, [&] { ++fired; });
    std::uint64_t n = eq.run(10);
    EXPECT_EQ(n, 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.curTick(), 10u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, LimitBoundaryInclusive)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.run(10);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, StepExecutesOne)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ExecutedCounter)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(static_cast<Tick>(i), [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 7u);
}

TEST(EventQueue, SchedulingIntoThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(50, [] {}), "past");
}

TEST(EventQueue, SameTickFifoStress)
{
    // Thousands of events on a handful of identical ticks must run
    // in exact insertion order — the FIFO contract the rest of the
    // simulator depends on for determinism.
    EventQueue eq;
    std::vector<int> order;
    constexpr int perTick = 2500;
    const Tick ticks[] = {100, 100000, 100, 5'000'000, 100000};
    int id = 0;
    for (Tick t : ticks)
        for (int i = 0; i < perTick; ++i)
            eq.schedule(t, [&order, v = id++] { order.push_back(v); });
    ASSERT_EQ(eq.pending(), static_cast<std::size_t>(id));
    eq.run();

    // Expected order: by tick first, then insertion order. Events
    // for tick 100 came from rounds 0 and 2, tick 100000 from rounds
    // 1 and 4, tick 5ms from round 3.
    std::vector<int> expect;
    for (int round : {0, 2, 1, 4, 3})
        for (int i = 0; i < perTick; ++i)
            expect.push_back(round * perTick + i);
    ASSERT_EQ(order.size(), expect.size());
    EXPECT_EQ(order, expect);
}

TEST(EventQueue, RescheduleSameTickFromInsideClosure)
{
    // A closure scheduling more work at the *current* tick must see
    // that work run immediately after it, before any later tick —
    // including when the executing bucket has already been prepared.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(50, [&] {
        order.push_back(0);
        eq.schedule(50, [&] {
            order.push_back(1);
            eq.schedule(50, [&] { order.push_back(2); });
        });
    });
    eq.schedule(51, [&] { order.push_back(3); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 51u);
}

TEST(EventQueue, RescheduleChainAcrossTicks)
{
    // Self-rescheduling actor (the simulator's core pattern) across
    // many iterations, crossing many bucket quanta.
    EventQueue eq;
    std::uint64_t fired = 0;
    std::function<void()> step = [&] {
        if (++fired < 10000)
            eq.scheduleIn(1337, step);
    };
    eq.schedule(0, step);
    eq.run();
    EXPECT_EQ(fired, 10000u);
    EXPECT_EQ(eq.curTick(), 9999u * 1337u);
}

TEST(EventQueue, FarFutureAndNearInterleave)
{
    // Events far beyond the calendar window (heap path) must still
    // interleave correctly with near events (ring path), including
    // a far event and a near event landing on the same tick.
    EventQueue eq;
    std::vector<int> order;
    const Tick far = 50 * ticks::ms; // way past the ring window
    eq.schedule(far, [&] { order.push_back(2); });      // heap
    eq.schedule(10, [&] {                               // ring
        order.push_back(0);
        // By now `far` is still outside the window; this same-tick
        // event gets a larger seq, so it must run after the heap one.
        eq.schedule(far, [&] { order.push_back(3); });
        eq.schedule(far + 1, [&] { order.push_back(4); });
    });
    eq.schedule(20, [&] { order.push_back(1); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, LargeCaptureSpillsToHeap)
{
    // Closures bigger than EventFn's inline buffer must still work
    // (heap spill path) and destruct cleanly.
    EventQueue eq;
    std::array<std::uint64_t, 16> payload{};
    for (unsigned i = 0; i < payload.size(); ++i)
        payload[i] = i * 3 + 1;
    std::uint64_t sum = 0;
    eq.schedule(5, [payload, &sum] {
        for (std::uint64_t v : payload)
            sum += v;
    });
    static_assert(sizeof(payload) > EventFn::inlineBytes);
    eq.run();
    EXPECT_EQ(sum, 16u * 0 + (0 + 15) * 16 / 2 * 3 + 16);
}

TEST(EventQueue, PendingCountsAcrossLevels)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    eq.schedule(10, [] {});                  // ring
    eq.schedule(90 * ticks::ms, [] {});      // far heap
    eq.schedule(10, [] {});                  // ring, same tick
    EXPECT_EQ(eq.pending(), 3u);
    EXPECT_FALSE(eq.empty());
    eq.step();
    EXPECT_EQ(eq.pending(), 2u);
    eq.run();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.executed(), 3u);
}

/**
 * Trivially correct reference kernel: the seed's design — a
 * priority queue of (tick, seq, std::function). Used to check the
 * calendar/heap kernel's execution order bit-for-bit.
 */
class ReferenceQueue
{
  public:
    Tick curTick() const { return curTick_; }

    void
    schedule(Tick when, std::function<void()> fn)
    {
        events_.push(Event{when, nextSeq_++, std::move(fn)});
    }

    void
    scheduleIn(Tick delay, std::function<void()> fn)
    {
        schedule(curTick_ + delay, std::move(fn));
    }

    void
    run()
    {
        while (!events_.empty()) {
            Event ev = std::move(const_cast<Event &>(events_.top()));
            events_.pop();
            curTick_ = ev.when;
            ev.fn();
        }
    }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        std::function<void()> fn;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events_;
    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
};

/**
 * Run a randomized self-expanding workload on any queue type and
 * record the (id, tick) execution trace. The pattern mixes bursts,
 * same-tick reschedules, in-window and far-future deltas — all
 * decisions come from a seeded Rng, so two deterministic kernels
 * must produce identical traces.
 */
template <typename Q>
std::vector<std::pair<std::uint64_t, Tick>>
randomTrace(std::uint64_t seed)
{
    Q eq;
    Rng rng(seed);
    std::vector<std::pair<std::uint64_t, Tick>> trace;
    std::uint64_t nextId = 0;

    std::function<void(std::uint64_t)> fire = [&](std::uint64_t id) {
        trace.emplace_back(id, eq.curTick());
        if (trace.size() < 20000 && rng.chance(0.72)) {
            const int kids = static_cast<int>(rng.range(1, 3));
            for (int k = 0; k < kids; ++k) {
                Tick delay;
                switch (rng.range(0, 3)) {
                case 0: delay = 0; break;                     // same tick
                case 1: delay = rng.range(1, 4000); break;    // same quantum
                case 2: delay = rng.range(1, 3 * ticks::us); break;
                default: delay = rng.range(5 * ticks::us,
                                           40 * ticks::us);   // far heap
                }
                const std::uint64_t kid = nextId++;
                eq.scheduleIn(delay, [&fire, kid] { fire(kid); });
            }
        }
    };

    for (int i = 0; i < 300; ++i) {
        const std::uint64_t id = nextId++;
        Tick delay = rng.range(0, 10 * ticks::us);
        eq.scheduleIn(delay, [&fire, id] { fire(id); });
    }
    eq.run();
    return trace;
}

TEST(EventQueue, RandomizedTraceMatchesReferenceKernel)
{
    for (std::uint64_t seed : {7u, 99u, 20260806u}) {
        auto ref = randomTrace<ReferenceQueue>(seed);
        auto got = randomTrace<EventQueue>(seed);
        ASSERT_EQ(got.size(), ref.size()) << "seed " << seed;
        for (std::size_t i = 0; i < ref.size(); ++i) {
            ASSERT_EQ(got[i].first, ref[i].first)
                << "seed " << seed << " event " << i;
            ASSERT_EQ(got[i].second, ref[i].second)
                << "seed " << seed << " event " << i;
        }
    }
}

TEST(SimObject, NameAndTime)
{
    EventQueue eq;
    struct Dummy : SimObject
    {
        using SimObject::SimObject;
        void
        kick()
        {
            schedule(7, [this] { fired = curTick(); }); // NOLINT
        }
        Tick fired = 0;
    };
    Dummy d("dummy", eq);
    EXPECT_EQ(d.name(), "dummy");
    d.kick();
    eq.run();
    EXPECT_EQ(d.fired, 7u);
}

} // namespace
} // namespace janus
