/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <vector>

#include <gtest/gtest.h>

#include "sim/eventq.hh"

namespace janus
{
namespace
{

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, StableForSameTick)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.scheduleIn(9, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.curTick(), 10u);
}

TEST(EventQueue, RunWithLimitStopsAndAdvances)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&] { ++fired; });
    eq.schedule(15, [&] { ++fired; });
    std::uint64_t n = eq.run(10);
    EXPECT_EQ(n, 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.curTick(), 10u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, LimitBoundaryInclusive)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.run(10);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, StepExecutesOne)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ExecutedCounter)
{
    EventQueue eq;
    for (int i = 0; i < 7; ++i)
        eq.schedule(static_cast<Tick>(i), [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 7u);
}

TEST(EventQueue, SchedulingIntoThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(50, [] {}), "past");
}

TEST(SimObject, NameAndTime)
{
    EventQueue eq;
    struct Dummy : SimObject
    {
        using SimObject::SimObject;
        void
        kick()
        {
            schedule(7, [this] { fired = curTick(); }); // NOLINT
        }
        Tick fired = 0;
    };
    Dummy d("dummy", eq);
    EXPECT_EQ(d.name(), "dummy");
    d.kick();
    eq.run();
    EXPECT_EQ(d.fired, 7u);
}

} // namespace
} // namespace janus
