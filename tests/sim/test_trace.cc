/**
 * @file
 * Unit tests for the persist-path tracer: interning, ring-buffer
 * overflow semantics, and well-formedness of the Chrome trace-event
 * JSON export (parsed back with a strict mini JSON parser).
 */

#include <cctype>
#include <cstddef>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "sim/trace.hh"

namespace janus
{
namespace
{

/**
 * Strict recursive-descent JSON validator. Accepts exactly the JSON
 * grammar (objects, arrays, strings, numbers, true/false/null) and
 * nothing else; counts objects seen inside the top-level
 * "traceEvents" array so tests can assert on event counts.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : s_(text) {}

    bool
    parse()
    {
        pos_ = 0;
        ws();
        if (!value(/*depth=*/0))
            return false;
        ws();
        return pos_ == s_.size();
    }

    /** Objects directly inside the "traceEvents" array. */
    std::size_t events() const { return events_; }

  private:
    bool
    value(int depth)
    {
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{':
            return object(depth);
          case '[':
            return array(depth);
          case '"':
            return string(nullptr);
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }

    bool
    object(int depth)
    {
        ++pos_; // '{'
        ws();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            ws();
            std::string key;
            if (!string(&key))
                return false;
            ws();
            if (peek() != ':')
                return false;
            ++pos_;
            ws();
            bool in_events = inEvents_;
            if (depth == 0 && key == "traceEvents")
                inEvents_ = true;
            if (!value(depth + 1))
                return false;
            inEvents_ = in_events;
            ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array(int depth)
    {
        ++pos_; // '['
        ws();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            ws();
            if (inEvents_ && depth == 1 && peek() == '{')
                ++events_;
            if (!value(depth + 1))
                return false;
            ws();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string(std::string *out)
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (static_cast<unsigned char>(s_[pos_]) < 0x20)
                return false; // raw control char
            if (s_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return false;
                char e = s_[pos_];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++pos_;
                        if (pos_ >= s_.size() ||
                            !std::isxdigit(
                                static_cast<unsigned char>(s_[pos_])))
                            return false;
                    }
                } else if (std::string("\"\\/bfnrt").find(e) ==
                           std::string::npos) {
                    return false;
                }
                ++pos_;
            } else {
                if (out)
                    *out += s_[pos_];
                ++pos_;
            }
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool
    number()
    {
        std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++pos_;
        if (peek() == '.') {
            ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return false;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return false;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        return pos_ > start && s_[start] != '-' ? true
                                                : pos_ > start + 1;
    }

    bool
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p, ++pos_)
            if (pos_ >= s_.size() || s_[pos_] != *p)
                return false;
        return true;
    }

    char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

    void
    ws()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    const std::string &s_;
    std::size_t pos_ = 0;
    bool inEvents_ = false;
    std::size_t events_ = 0;
};

TEST(Tracer, InterningIsStable)
{
    Tracer t(16);
    TraceId a = t.track("core0");
    TraceId b = t.track("core1");
    EXPECT_NE(a, b);
    EXPECT_EQ(t.track("core0"), a);
    EXPECT_EQ(t.trackName(a), "core0");

    TraceId la = t.label("persist");
    EXPECT_EQ(t.label("persist"), la);
    EXPECT_EQ(t.labelName(la), "persist");
}

TEST(Tracer, RecordsSpansAndInstantsInOrder)
{
    Tracer t(16);
    TraceId tr = t.track("core0");
    TraceId sp = t.label("persist");
    TraceId in = t.label("hit");
    t.span(tr, sp, 100, 250, 0x40);
    t.instant(tr, in, 300);
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t.event(0).start, 100u);
    EXPECT_EQ(t.event(0).end, 250u);
    EXPECT_EQ(t.event(0).addr, 0x40u);
    EXPECT_EQ(t.event(1).start, 300u);
    EXPECT_EQ(t.event(1).end, 300u); // instant: end == start
    EXPECT_EQ(t.recorded(), 2u);
    EXPECT_EQ(t.dropped(), 0u);
}

TEST(Tracer, RingOverflowDropsOldestAndCounts)
{
    Tracer t(4);
    TraceId tr = t.track("x");
    TraceId l = t.label("e");
    for (Tick i = 0; i < 10; ++i)
        t.instant(tr, l, i);
    EXPECT_EQ(t.capacity(), 4u);
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.recorded(), 10u);
    EXPECT_EQ(t.dropped(), 6u);
    // The retained window is the most recent events, oldest first.
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(t.event(i).start, 6 + i);
}

TEST(Tracer, ClearKeepsInternedNames)
{
    Tracer t(8);
    TraceId tr = t.track("x");
    t.instant(tr, t.label("e"), 5);
    t.clear();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.recorded(), 0u);
    EXPECT_EQ(t.track("x"), tr); // same id after clear
}

TEST(Tracer, ChromeJsonParsesBack)
{
    Tracer t(64);
    TraceId c0 = t.track("core0");
    TraceId bank = t.track("bank3");
    TraceId persist = t.label("persist");
    TraceId write = t.label("nvmWrite");
    TraceId hit = t.label("irbHit");
    t.span(c0, persist, 1000, 1234567, 0x9000);
    t.span(bank, write, 2000, 98000);
    t.instant(c0, hit, 1500, 0x40);

    std::string json = t.chromeJson();
    JsonChecker checker(json);
    ASSERT_TRUE(checker.parse()) << json;
    // 2 thread_name metadata records + 3 events.
    EXPECT_EQ(checker.events(), 5u);

    // Spot-check the payload Perfetto cares about.
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"core0\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"bank3\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
    // Tick 1000 ps = 0.001 us, exact decimal.
    EXPECT_NE(json.find("\"ts\": 0.001000"), std::string::npos);
    // Duration 1234567 - 1000 ps = 1.233567 us.
    EXPECT_NE(json.find("\"dur\": 1.233567"), std::string::npos);
    EXPECT_NE(json.find("\"addr\": \"0x9000\""), std::string::npos);
    EXPECT_NE(json.find("\"dropped\": 0"), std::string::npos);
}

TEST(Tracer, ChromeJsonEscapesNames)
{
    Tracer t(8);
    TraceId tr = t.track("weird \"track\"\\name");
    t.instant(tr, t.label("tab\there"), 1);
    std::string json = t.chromeJson();
    JsonChecker checker(json);
    EXPECT_TRUE(checker.parse()) << json;
}

TEST(Tracer, EmptyTraceIsValidJson)
{
    Tracer t(8);
    std::string json = t.chromeJson();
    JsonChecker checker(json);
    EXPECT_TRUE(checker.parse()) << json;
    EXPECT_EQ(checker.events(), 0u);
}

TEST(Tracer, EnvironmentSwitch)
{
    unsetenv("JANUS_TRACE");
    EXPECT_FALSE(traceEnvEnabled());
    setenv("JANUS_TRACE", "0", 1);
    EXPECT_FALSE(traceEnvEnabled());
    setenv("JANUS_TRACE", "1", 1);
    EXPECT_TRUE(traceEnvEnabled());
    unsetenv("JANUS_TRACE");
}

} // namespace
} // namespace janus
