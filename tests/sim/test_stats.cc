/**
 * @file
 * Unit tests for the statistics package.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "sim/stats.hh"

namespace janus
{
namespace
{

TEST(Scalar, AccumulatesAndResets)
{
    Scalar s;
    s += 3;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 4);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0);
}

TEST(Average, TracksMeanMinMax)
{
    Average a;
    a.sample(2);
    a.sample(4);
    a.sample(9);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 5);
    EXPECT_DOUBLE_EQ(a.min(), 2);
    EXPECT_DOUBLE_EQ(a.max(), 9);
}

TEST(Average, EmptyIsZero)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0);
    EXPECT_DOUBLE_EQ(a.min(), 0);
    EXPECT_DOUBLE_EQ(a.max(), 0);
}

TEST(Average, NegativeSamples)
{
    Average a;
    a.sample(-5);
    a.sample(5);
    EXPECT_DOUBLE_EQ(a.min(), -5);
    EXPECT_DOUBLE_EQ(a.mean(), 0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(0, 10, 5);
    h.sample(-1);   // underflow
    h.sample(0);    // bucket 0
    h.sample(1.9);  // bucket 0
    h.sample(5);    // bucket 2
    h.sample(10);   // overflow (hi is exclusive)
    h.sample(99);   // overflow
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.underflows(), 1u);
    EXPECT_EQ(h.overflows(), 2u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(2), 1u);
    EXPECT_EQ(h.bucket(4), 0u);
}

TEST(StatGroup, NamedStatsPersist)
{
    StatGroup g("mc");
    g.scalar("writes") += 2;
    g.scalar("writes") += 3;
    g.average("latency").sample(10);
    EXPECT_DOUBLE_EQ(g.scalar("writes").value(), 5);
    EXPECT_EQ(g.average("latency").count(), 1u);
}

TEST(StatGroup, DumpFormat)
{
    StatGroup g("core0");
    g.scalar("instructions") += 100;
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("core0.instructions 100"),
              std::string::npos);
}

TEST(StatGroup, ResetClearsEverything)
{
    StatGroup g("x");
    g.scalar("a") += 1;
    g.average("b").sample(4);
    g.reset();
    EXPECT_DOUBLE_EQ(g.scalar("a").value(), 0);
    EXPECT_EQ(g.average("b").count(), 0u);
}

} // namespace
} // namespace janus
