/**
 * @file
 * Unit tests for the statistics package.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "sim/stats.hh"

namespace janus
{
namespace
{

TEST(Scalar, AccumulatesAndResets)
{
    Scalar s;
    s += 3;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 4);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0);
}

TEST(Average, TracksMeanMinMax)
{
    Average a;
    a.sample(2);
    a.sample(4);
    a.sample(9);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 5);
    EXPECT_DOUBLE_EQ(a.min(), 2);
    EXPECT_DOUBLE_EQ(a.max(), 9);
}

TEST(Average, EmptyIsZero)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0);
    EXPECT_DOUBLE_EQ(a.min(), 0);
    EXPECT_DOUBLE_EQ(a.max(), 0);
}

TEST(Average, NegativeSamples)
{
    Average a;
    a.sample(-5);
    a.sample(5);
    EXPECT_DOUBLE_EQ(a.min(), -5);
    EXPECT_DOUBLE_EQ(a.mean(), 0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(0, 10, 5);
    h.sample(-1);   // underflow
    h.sample(0);    // bucket 0
    h.sample(1.9);  // bucket 0
    h.sample(5);    // bucket 2
    h.sample(10);   // overflow (hi is exclusive)
    h.sample(99);   // overflow
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.underflows(), 1u);
    EXPECT_EQ(h.overflows(), 2u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(2), 1u);
    EXPECT_EQ(h.bucket(4), 0u);
}

TEST(Histogram, BucketEdges)
{
    Histogram h(0, 10, 5);
    // Bucket width is 2; each edge lands in the bucket it opens.
    h.sample(0);
    h.sample(2);
    h.sample(4);
    h.sample(6);
    h.sample(8);
    for (unsigned i = 0; i < 5; ++i)
        EXPECT_EQ(h.bucket(i), 1u) << "bucket " << i;
    EXPECT_EQ(h.underflows(), 0u);
    EXPECT_EQ(h.overflows(), 0u);
    // Just below an edge stays in the lower bucket.
    h.sample(1.999999);
    EXPECT_EQ(h.bucket(0), 2u);
    // hi itself is exclusive -> overflow.
    h.sample(10);
    EXPECT_EQ(h.overflows(), 1u);
    EXPECT_DOUBLE_EQ(h.lo(), 0);
    EXPECT_DOUBLE_EQ(h.hi(), 10);
}

TEST(Histogram, QuantileInterpolates)
{
    Histogram h(0, 100, 10);
    // 100 samples spread uniformly: quantiles track the value range.
    for (int i = 0; i < 100; ++i)
        h.sample(i);
    EXPECT_NEAR(h.quantile(0.5), 50, 10);
    EXPECT_NEAR(h.quantile(0.99), 99, 10);
    EXPECT_LE(h.quantile(0.1), h.quantile(0.9));
    // Clamped arguments.
    EXPECT_DOUBLE_EQ(h.quantile(-1), h.quantile(0));
    EXPECT_DOUBLE_EQ(h.quantile(2), h.quantile(1));
}

TEST(Histogram, QuantileDegenerateCases)
{
    // Two or more out-of-range samples fall back to the bucket
    // bounds (no better information is retained).
    Histogram under(10, 20, 5);
    under.sample(1); // below lo
    under.sample(2);
    EXPECT_DOUBLE_EQ(under.quantile(0.5), 10); // underflow -> lo

    Histogram over(0, 10, 5);
    over.sample(99);
    over.sample(98);
    EXPECT_DOUBLE_EQ(over.quantile(0.5), 10); // overflow -> hi
}

TEST(Histogram, QuantileEmptyIsZero)
{
    Histogram empty(0, 10, 5);
    for (double q : {0.0, 0.5, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(empty.quantile(q), 0) << "q=" << q;
}

TEST(Histogram, QuantileSingleSampleIsExact)
{
    // One sample: every quantile is that sample, exactly — no bucket
    // interpolation, even when it landed out of range.
    Histogram in(0, 10, 5);
    in.sample(3.25);
    for (double q : {0.0, 0.5, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(in.quantile(q), 3.25) << "q=" << q;
    EXPECT_DOUBLE_EQ(in.quantile(0.5), in.mean());

    Histogram under(10, 20, 5);
    under.sample(1); // underflow, still reported exactly
    EXPECT_DOUBLE_EQ(under.quantile(0.5), 1);

    Histogram over(0, 10, 5);
    over.sample(99); // overflow, still reported exactly
    EXPECT_DOUBLE_EQ(over.quantile(0.99), 99);
}

TEST(TimeWeightedGauge, TimeAverageIntegrates)
{
    TimeWeightedGauge g;
    g.set(2, 0);   // 2 over [0, 100)
    g.set(4, 100); // 4 over [100, 200)
    g.set(0, 200);
    EXPECT_DOUBLE_EQ(g.timeAverage(200), (2 * 100 + 4 * 100) / 200.0);
    EXPECT_DOUBLE_EQ(g.max(), 4);
    EXPECT_DOUBLE_EQ(g.current(), 0);
    EXPECT_EQ(g.lastUpdate(), 200u);
}

TEST(TimeWeightedGauge, NonMonotonicTicksAreClamped)
{
    TimeWeightedGauge g;
    g.set(10, 100);
    g.set(20, 50); // earlier tick: no negative integral
    EXPECT_GE(g.timeAverage(), 0);
    EXPECT_DOUBLE_EQ(g.max(), 20);
}

TEST(TimeWeightedGauge, ResetClears)
{
    TimeWeightedGauge g;
    g.set(5, 10);
    g.set(0, 20);
    g.reset();
    EXPECT_DOUBLE_EQ(g.timeAverage(100), 0);
    EXPECT_DOUBLE_EQ(g.max(), 0);
    EXPECT_EQ(g.lastUpdate(), 0u);
}

TEST(StatGroup, NamedStatsPersist)
{
    StatGroup g("mc");
    g.scalar("writes") += 2;
    g.scalar("writes") += 3;
    g.average("latency").sample(10);
    EXPECT_DOUBLE_EQ(g.scalar("writes").value(), 5);
    EXPECT_EQ(g.average("latency").count(), 1u);
}

TEST(StatGroup, DumpFormat)
{
    StatGroup g("core0");
    g.scalar("instructions") += 100;
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("core0.instructions 100"),
              std::string::npos);
}

TEST(StatGroup, ResetClearsEverything)
{
    StatGroup g("x");
    g.scalar("a") += 1;
    g.average("b").sample(4);
    g.histogram("h", 0, 10, 5).sample(3);
    g.gauge("q").set(7, 100);
    g.reset();
    EXPECT_DOUBLE_EQ(g.scalar("a").value(), 0);
    EXPECT_EQ(g.average("b").count(), 0u);
    EXPECT_EQ(g.histogram("h").count(), 0u);
    EXPECT_DOUBLE_EQ(g.gauge("q").max(), 0);
}

TEST(StatGroup, HistogramShapeFixedOnFirstUse)
{
    StatGroup g("mc");
    Histogram &h = g.histogram("lat", 0, 100, 10);
    // Re-lookup with different (ignored) shape returns the same one.
    EXPECT_EQ(&g.histogram("lat", 0, 5, 2), &h);
    EXPECT_DOUBLE_EQ(h.hi(), 100);
}

TEST(StatGroup, DumpIncludesHistogramAndGauge)
{
    StatGroup g("mc");
    g.scalar("writes") += 7;
    for (int i = 0; i < 100; ++i)
        g.histogram("latNs", 0, 100, 10).sample(i);
    g.gauge("depth").set(3, 0);
    g.gauge("depth").set(3, 1000);
    std::ostringstream os;
    g.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("mc.writes 7"), std::string::npos);
    EXPECT_NE(out.find("mc.latNs.mean "), std::string::npos);
    EXPECT_NE(out.find("mc.latNs.count 100"), std::string::npos);
    EXPECT_NE(out.find("mc.latNs.p50 "), std::string::npos);
    EXPECT_NE(out.find("mc.latNs.p99 "), std::string::npos);
    EXPECT_NE(out.find("mc.depth.timeAvg 3"), std::string::npos);
    EXPECT_NE(out.find("mc.depth.max 3"), std::string::npos);
    // Scalars dump before composite stats.
    EXPECT_LT(out.find("mc.writes"), out.find("mc.latNs.mean"));
}

TEST(StatGroup, DumpJsonMatchesFlattenedDump)
{
    StatGroup g("nvm");
    g.scalar("writes") += 2;
    g.gauge("queueDepth").set(1, 0);
    g.gauge("queueDepth").set(1, 100);
    std::ostringstream os;
    g.dumpJson(os);
    const std::string out = os.str();
    EXPECT_EQ(out.find("\"nvm\": {"), 0u);
    EXPECT_NE(out.find("\"writes\": 2"), std::string::npos);
    EXPECT_NE(out.find("\"queueDepth.timeAvg\": 1"),
              std::string::npos);
    EXPECT_NE(out.find("\"queueDepth.max\": 1"), std::string::npos);
}

} // namespace
} // namespace janus
