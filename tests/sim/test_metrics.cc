/**
 * @file
 * Unit tests for the windowed time-series sampler: per-kind window
 * semantics (rate reset, counter deltas, gauge hold, per-window
 * histogram, hit ratio), lazy window closing, row truncation, and
 * the deterministic METRICS JSON emission (validated by parsing it
 * back with the in-tree JSON reader).
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "common/json.hh"
#include "sim/metrics.hh"

namespace janus
{
namespace
{

TEST(MetricsSampler, RateResetsEachWindow)
{
    MetricsSampler s(100);
    MetricId writes = s.addRate("writes");
    s.advanceTo(10);
    s.count(writes);
    s.count(writes, 2.0);
    s.advanceTo(150); // closes [0, 100)
    s.count(writes);
    s.finish(200); // closes [100, 200)
    ASSERT_EQ(s.windows(), 2u);
    EXPECT_DOUBLE_EQ(s.value(0, 0), 3.0);
    EXPECT_DOUBLE_EQ(s.value(1, 0), 1.0);
}

TEST(MetricsSampler, CounterEmitsDeltas)
{
    MetricsSampler s(100);
    MetricId hits = s.addCounter("hits");
    s.advanceTo(0);
    s.counter(hits, 5);
    s.advanceTo(120);
    s.counter(hits, 12);
    s.advanceTo(250); // closes two windows
    s.finish(260);    // final partial window: no new feeds
    ASSERT_EQ(s.windows(), 3u);
    EXPECT_DOUBLE_EQ(s.value(0, 0), 5.0);  // 5 - 0
    EXPECT_DOUBLE_EQ(s.value(1, 0), 7.0);  // 12 - 5
    EXPECT_DOUBLE_EQ(s.value(2, 0), 0.0);  // unchanged
}

TEST(MetricsSampler, GaugeHoldsAcrossIdleWindows)
{
    MetricsSampler s(100);
    MetricId depth = s.addGauge("depth");
    s.advanceTo(10);
    s.set(depth, 4);
    s.finish(450); // closes [0,100) .. [400,450)
    ASSERT_EQ(s.windows(), 5u);
    for (std::size_t w = 0; w < 5; ++w)
        EXPECT_DOUBLE_EQ(s.value(w, 0), 4.0) << "window " << w;
}

TEST(MetricsSampler, HistogramPerWindow)
{
    MetricsSampler s(100);
    MetricId lat = s.addHistogram("lat", 0, 100, 10);
    ASSERT_EQ(s.columns().size(), 3u);
    EXPECT_EQ(s.columns()[0], "lat.count");
    EXPECT_EQ(s.columns()[1], "lat.p50");
    EXPECT_EQ(s.columns()[2], "lat.p99");
    s.advanceTo(0);
    for (int i = 0; i < 50; ++i)
        s.observe(lat, 20);
    s.advanceTo(110);
    s.observe(lat, 80); // single sample: quantiles exact
    s.finish(200);
    ASSERT_EQ(s.windows(), 2u);
    EXPECT_DOUBLE_EQ(s.value(0, 0), 50.0);
    EXPECT_NEAR(s.value(0, 1), 20.0, 10.0);
    // The histogram reset at the boundary: window 1 sees only the
    // single sample, reported exactly.
    EXPECT_DOUBLE_EQ(s.value(1, 0), 1.0);
    EXPECT_DOUBLE_EQ(s.value(1, 1), 80.0);
    EXPECT_DOUBLE_EQ(s.value(1, 2), 80.0);
}

TEST(MetricsSampler, HitRatioFromCounterDeltas)
{
    MetricsSampler s(100);
    MetricId hits = s.addCounter("hits");
    MetricId misses = s.addCounter("misses");
    MetricId ratio = s.addHitRatio("hit_rate", hits, misses);
    (void)ratio;
    s.advanceTo(0);
    s.counter(hits, 3);
    s.counter(misses, 1);
    s.advanceTo(150);
    s.counter(hits, 3); // no new hits
    s.counter(misses, 3);
    s.advanceTo(250);
    s.finish(300); // closes the idle [200, 300) window
    ASSERT_EQ(s.windows(), 3u);
    // Columns: hits, misses, hit_rate.
    EXPECT_DOUBLE_EQ(s.value(0, 2), 0.75); // 3/(3+1)
    EXPECT_DOUBLE_EQ(s.value(1, 2), 0.0);  // 0/(0+2)
    EXPECT_DOUBLE_EQ(s.value(2, 2), 0.0);  // no activity
}

TEST(MetricsSampler, MultipleChannelsKeepColumnOrder)
{
    MetricsSampler s(50);
    MetricId a = s.addRate("a");
    MetricId g = s.addGauge("g");
    MetricId c = s.addCounter("c");
    ASSERT_EQ(s.columns().size(), 3u);
    EXPECT_EQ(s.columns()[0], "a");
    EXPECT_EQ(s.columns()[1], "g");
    EXPECT_EQ(s.columns()[2], "c");
    s.advanceTo(0);
    s.count(a, 2);
    s.set(g, 9);
    s.counter(c, 4);
    s.finish(50);
    ASSERT_EQ(s.windows(), 1u);
    EXPECT_DOUBLE_EQ(s.value(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(s.value(0, 1), 9.0);
    EXPECT_DOUBLE_EQ(s.value(0, 2), 4.0);
}

TEST(MetricsSampler, DropsWindowsBeyondCapLoudly)
{
    MetricsSampler s(10, /*max_windows=*/3);
    MetricId r = s.addRate("r");
    for (Tick t = 0; t < 100; t += 10) {
        s.advanceTo(t);
        s.count(r);
    }
    s.finish(100);
    EXPECT_EQ(s.windows(), 3u);
    EXPECT_GT(s.droppedWindows(), 0u);
}

TEST(MetricsSampler, FinishClosesPartialWindow)
{
    MetricsSampler s(100);
    MetricId r = s.addRate("r");
    s.advanceTo(0);
    s.count(r);
    s.finish(30); // run ended mid-window
    ASSERT_EQ(s.windows(), 1u);
    EXPECT_DOUBLE_EQ(s.value(0, 0), 1.0);
}

TEST(MetricsSampler, JsonRoundTripsThroughParser)
{
    MetricsSampler s(100 * ticks::ns);
    MetricId writes = s.addRate("mc.writes");
    MetricId depth = s.addGauge("nvm.queue_depth");
    s.advanceTo(0);
    s.count(writes, 3);
    s.set(depth, 2);
    s.advanceTo(150 * ticks::ns);
    s.count(writes);
    s.finish(200 * ticks::ns);

    JsonValue doc = parseJson(s.json());
    EXPECT_DOUBLE_EQ(doc["schema_version"].asNumber(), 2.0);
    EXPECT_DOUBLE_EQ(doc["window_ns"].asNumber(), 100.0);
    ASSERT_EQ(doc["columns"].size(), 2u);
    EXPECT_EQ(doc["columns"].at(0).asString(), "mc.writes");
    EXPECT_EQ(doc["columns"].at(1).asString(), "nvm.queue_depth");
    ASSERT_EQ(doc["windows"].size(), 2u);
    const JsonValue &w0 = doc["windows"].at(0);
    EXPECT_DOUBLE_EQ(w0["start_ns"].asNumber(), 0.0);
    EXPECT_DOUBLE_EQ(w0["values"].at(0).asNumber(), 3.0);
    EXPECT_DOUBLE_EQ(w0["values"].at(1).asNumber(), 2.0);
    const JsonValue &w1 = doc["windows"].at(1);
    EXPECT_DOUBLE_EQ(w1["start_ns"].asNumber(), 100.0);
    EXPECT_DOUBLE_EQ(w1["values"].at(0).asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(w1["values"].at(1).asNumber(), 2.0);
    EXPECT_DOUBLE_EQ(doc["dropped_windows"].asNumber(), 0.0);
}

TEST(MetricsSampler, JsonIsDeterministic)
{
    auto run = [] {
        MetricsSampler s(100);
        MetricId r = s.addRate("r");
        MetricId g = s.addGauge("g");
        for (Tick t = 0; t < 500; t += 7) {
            s.advanceTo(t);
            s.count(r);
            s.set(g, static_cast<double>(t % 13));
        }
        s.finish(500);
        return s.json();
    };
    EXPECT_EQ(run(), run());
}

TEST(MetricsSampler, MetricsEnvEnabledParsesVariable)
{
    unsetenv("JANUS_METRICS");
    EXPECT_FALSE(metricsEnvEnabled());
    setenv("JANUS_METRICS", "0", 1);
    EXPECT_FALSE(metricsEnvEnabled());
    setenv("JANUS_METRICS", "1", 1);
    EXPECT_TRUE(metricsEnvEnabled());
    unsetenv("JANUS_METRICS");
}

} // namespace
} // namespace janus
