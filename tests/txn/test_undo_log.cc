/**
 * @file
 * Unit tests for the undo-log runtime: IR library emission, entry
 * layout, lane rotation, parsing and rollback.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "txn/undo_log.hh"

namespace janus
{
namespace
{

TEST(UndoLog, LibraryEmitsBothFunctions)
{
    Module m;
    buildTxnLibrary(m);
    verify(m);
    EXPECT_TRUE(m.has("undo_append"));
    EXPECT_TRUE(m.has("tx_finish"));
    EXPECT_EQ(m.fn("undo_append").numArgs, 3u);
    EXPECT_EQ(m.fn("tx_finish").numArgs, 1u);
}

TEST(UndoLog, FootprintIsLineAligned)
{
    EXPECT_EQ(logEntryFootprint(1), 128u);
    EXPECT_EQ(logEntryFootprint(64), 128u);
    EXPECT_EQ(logEntryFootprint(65), 192u);
    EXPECT_EQ(logEntryFootprint(8192), 64u + 8192u);
}

TEST(UndoLog, ParseEmptyLog)
{
    SparseMemory image;
    EXPECT_TRUE(parseUndoLog(image, 0x1000).empty());
}

/** Write an entry the way undo_append lays it out. */
Addr
writeEntry(SparseMemory &image, Addr log, Addr offset, Addr dest,
           const std::vector<std::uint8_t> &old_data)
{
    Addr entry = log + logHeaderBytes + offset;
    image.writeWord(entry, dest);
    image.writeWord(entry + 8, old_data.size());
    image.write(entry + logEntryHeaderBytes, old_data.data(),
                static_cast<unsigned>(old_data.size()));
    return offset + logEntryFootprint(old_data.size());
}

TEST(UndoLog, ParseAndRollbackSingleEntry)
{
    SparseMemory image;
    Addr log = 0x10000;
    image.writeWord(0x4000, 0xAAAA); // current (modified) value
    std::vector<std::uint8_t> old(8, 0x11);
    writeEntry(image, log, 0, 0x4000, old);

    auto entries = parseUndoLog(image, log);
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].dest, 0x4000u);
    EXPECT_EQ(entries[0].size, 8u);

    EXPECT_EQ(recoverUndoLog(image, log), 1u);
    EXPECT_EQ(image.readWord(0x4000), 0x1111111111111111ull);
    // Log truncated after recovery.
    EXPECT_TRUE(parseUndoLog(image, log).empty());
}

TEST(UndoLog, RollbackAppliesNewestFirst)
{
    // Two entries for the same destination: the oldest (first
    // logged) value must win.
    SparseMemory image;
    Addr log = 0x10000;
    std::vector<std::uint8_t> first(8, 0x22);
    std::vector<std::uint8_t> second(8, 0x33);
    Addr off = writeEntry(image, log, 0, 0x4000, first);
    writeEntry(image, log, off, 0x4000, second);
    recoverUndoLog(image, log);
    EXPECT_EQ(image.readWord(0x4000), 0x2222222222222222ull);
}

TEST(UndoLog, ScanStopsAtTerminator)
{
    SparseMemory image;
    Addr log = 0x10000;
    std::vector<std::uint8_t> data(8, 0x44);
    Addr off = writeEntry(image, log, 0, 0x4000, data);
    // Stale garbage beyond the terminator must not be scanned.
    image.writeWord(log + logHeaderBytes + off, 0); // terminator
    writeEntry(image, log, off + logEntryFootprint(8), 0x5000, data);
    // The stale entry is unreachable because its predecessor slot
    // is zero... but it lives at offset 2*footprint, which the scan
    // never reaches.
    auto entries = parseUndoLog(image, log);
    EXPECT_EQ(entries.size(), 1u);
}

TEST(UndoLog, LanesAreIndependent)
{
    SparseMemory image;
    Addr log = 0x10000;
    std::vector<std::uint8_t> data(8, 0x55);
    // Entry in lane 2 only.
    Addr lane2 = 2 * logLaneBytes;
    writeEntry(image, log, lane2, 0x4000, data);
    auto entries = parseUndoLog(image, log);
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].dest, 0x4000u);
}

TEST(UndoLog, TwoLiveLanesPanics)
{
    SparseMemory image;
    Addr log = 0x10000;
    std::vector<std::uint8_t> data(8, 0x66);
    writeEntry(image, log, 0, 0x4000, data);
    writeEntry(image, log, logLaneBytes, 0x5000, data);
    EXPECT_DEATH(parseUndoLog(image, log), "two uncommitted");
}

TEST(UndoLog, ImplausibleSizeIsRejected)
{
    SparseMemory image;
    Addr log = 0x10000;
    image.writeWord(log + logHeaderBytes, 0x4000);
    image.writeWord(log + logHeaderBytes + 8, Addr(1) << 40);
    EXPECT_DEATH(parseUndoLog(image, log), "implausible");
}

TEST(UndoLog, MultiLineEntryRoundTrips)
{
    SparseMemory image;
    Addr log = 0x10000;
    std::vector<std::uint8_t> big(300);
    for (unsigned i = 0; i < big.size(); ++i)
        big[i] = static_cast<std::uint8_t>(i);
    writeEntry(image, log, 0, 0x4000, big);
    auto entries = parseUndoLog(image, log);
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].oldData, big);
    recoverUndoLog(image, log);
    std::vector<std::uint8_t> out(300);
    image.read(0x4000, out.data(), 300);
    EXPECT_EQ(out, big);
}

TEST(UndoLog, RegionConstantsAreConsistent)
{
    EXPECT_EQ(logRegionBytes,
              logHeaderBytes + logLanes * logLaneBytes);
    EXPECT_EQ(logLaneBytes % lineBytes, 0u);
    EXPECT_GE(logLaneBytes, 2 * logEntryFootprint(8192) + lineBytes);
}

} // namespace
} // namespace janus
