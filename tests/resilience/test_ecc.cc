/**
 * @file
 * Unit tests for the SECDED ECC model: the Hamming(72,64)+parity
 * code must correct every possible single-bit error in the stored
 * codeword — data, check and parity positions alike — and detect
 * every double-bit error within a word as uncorrectable.
 */

#include <gtest/gtest.h>

#include "common/cacheline.hh"
#include "resilience/ecc.hh"

namespace janus
{
namespace
{

TEST(Ecc, CleanRoundTrip)
{
    for (std::uint64_t seed : {0ull, 1ull, 42ull, ~0ull}) {
        CacheLine line = CacheLine::fromSeed(seed);
        LineCodeword cw = eccEncodeLine(line);
        LineDecode d = eccDecodeLine(cw);
        EXPECT_EQ(d.status, EccStatus::Clean);
        EXPECT_EQ(d.correctedWords, 0u);
        EXPECT_EQ(d.data, line);
    }
}

TEST(Ecc, WordSingleDataBitCorrected)
{
    const std::uint64_t original = 0xdeadbeefcafef00dull;
    std::uint8_t check = eccEncodeWord(original);
    for (unsigned bit = 0; bit < 64; ++bit) {
        std::uint64_t word = original ^ (std::uint64_t(1) << bit);
        EXPECT_EQ(eccDecodeWord(word, check), EccStatus::Corrected)
            << "bit " << bit;
        EXPECT_EQ(word, original) << "bit " << bit;
    }
}

TEST(Ecc, WordSingleCheckBitCorrected)
{
    const std::uint64_t original = 0x0123456789abcdefull;
    std::uint8_t check = eccEncodeWord(original);
    // Flips in the stored check byte (Hamming bits and the overall
    // parity bit) must never corrupt the data.
    for (unsigned bit = 0; bit < 8; ++bit) {
        std::uint64_t word = original;
        std::uint8_t bad =
            check ^ static_cast<std::uint8_t>(1u << bit);
        EXPECT_EQ(eccDecodeWord(word, bad), EccStatus::Corrected)
            << "check bit " << bit;
        EXPECT_EQ(word, original) << "check bit " << bit;
    }
}

TEST(Ecc, WordDoubleBitDetected)
{
    const std::uint64_t original = 0x5555aaaa3333cccc ^ 7;
    const std::uint8_t check = eccEncodeWord(original);
    // data+data, across a sample of pairs
    for (unsigned a = 0; a < 64; a += 7) {
        for (unsigned b = a + 1; b < 64; b += 13) {
            std::uint64_t word = original ^
                                 (std::uint64_t(1) << a) ^
                                 (std::uint64_t(1) << b);
            EXPECT_EQ(eccDecodeWord(word, check),
                      EccStatus::Uncorrectable)
                << "bits " << a << "," << b;
        }
    }
    // data+check
    for (unsigned c = 0; c < 8; ++c) {
        std::uint64_t word = original ^ (std::uint64_t(1) << 17);
        std::uint8_t bad =
            check ^ static_cast<std::uint8_t>(1u << c);
        EXPECT_EQ(eccDecodeWord(word, bad),
                  EccStatus::Uncorrectable)
            << "data 17 + check " << c;
    }
    // check+check
    {
        std::uint64_t word = original;
        std::uint8_t bad = check ^ 0x3;
        EXPECT_EQ(eccDecodeWord(word, bad),
                  EccStatus::Uncorrectable);
    }
}

TEST(Ecc, Every576SingleBitFlipCorrectedAtLineLevel)
{
    const CacheLine line = CacheLine::fromSeed(99);
    for (unsigned bit = 0; bit < LineCodeword::bits; ++bit) {
        LineCodeword cw = eccEncodeLine(line);
        cw.flipBit(bit);
        LineDecode d = eccDecodeLine(cw);
        EXPECT_EQ(d.status, EccStatus::Corrected) << "bit " << bit;
        EXPECT_EQ(d.correctedWords, 1u) << "bit " << bit;
        EXPECT_EQ(d.data, line) << "bit " << bit;
    }
}

TEST(Ecc, OneFlipPerWordAllCorrected)
{
    const CacheLine line = CacheLine::fromSeed(7);
    LineCodeword cw = eccEncodeLine(line);
    for (unsigned w = 0; w < 8; ++w)
        cw.flipBit(w * 64 + 3 * w + 1); // one data bit per word
    LineDecode d = eccDecodeLine(cw);
    EXPECT_EQ(d.status, EccStatus::Corrected);
    EXPECT_EQ(d.correctedWords, 8u);
    EXPECT_EQ(d.data, line);
}

TEST(Ecc, DoubleFlipInOneWordPoisonsTheLine)
{
    const CacheLine line = CacheLine::fromSeed(13);
    LineCodeword cw = eccEncodeLine(line);
    cw.flipBit(128 + 5);
    cw.flipBit(128 + 44); // both in word 2
    cw.flipBit(320 + 9);  // lone flip in word 5 still corrects
    LineDecode d = eccDecodeLine(cw);
    EXPECT_EQ(d.status, EccStatus::Uncorrectable);
    EXPECT_EQ(d.uncorrectableWords, 1u);
    EXPECT_EQ(d.correctedWords, 1u);
}

TEST(Ecc, CodewordBitAddressing)
{
    LineCodeword cw;
    EXPECT_EQ(LineCodeword::bits, 576u);
    cw.flipBit(0);
    EXPECT_EQ(cw.data[0], 1u);
    cw.flipBit(575);
    EXPECT_EQ(cw.check[7], 0x80u);
    EXPECT_TRUE(cw.bit(0));
    EXPECT_TRUE(cw.bit(575));
    cw.forceBit(0, false);
    EXPECT_FALSE(cw.bit(0));
    cw.forceBit(0, false); // idempotent
    EXPECT_FALSE(cw.bit(0));
    EXPECT_EQ(cw.data[0], 0u);
}

} // namespace
} // namespace janus
