/**
 * @file
 * Tests for the online resilience layer: seeded fault-model
 * determinism, wear coupling, bad-line remapping, the manager's
 * write-verify/retry/remap loop, and the two end-to-end contracts —
 * (1) with faults disabled the layer is invisible (bit-identical
 * metrics, all-zero counters) and (2) an aggressive seeded fault
 * campaign survives with zero data loss and reproduces exactly.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "harness/experiment.hh"
#include "resilience/resilience.hh"

namespace janus
{
namespace
{

FaultModelConfig
noisyFaults()
{
    FaultModelConfig f;
    f.transientFlipRate = 1.0;
    f.stuckCellRate = 1.0;
    return f;
}

TEST(FaultModel, SameSeedSameFaultSequence)
{
    DeviceFaultModel a(noisyFaults(), 42);
    DeviceFaultModel b(noisyFaults(), 42);
    for (unsigned i = 0; i < 50; ++i) {
        Addr frame = Addr(i % 5) << lineShift;
        EXPECT_EQ(a.onWrite(frame, 0), b.onWrite(frame, 0));
        LineCodeword ca, cb;
        EXPECT_EQ(a.applyTransient(frame, 0, ca),
                  b.applyTransient(frame, 0, cb));
        EXPECT_EQ(ca.data, cb.data);
        EXPECT_EQ(ca.check, cb.check);
    }
    EXPECT_EQ(a.transientFlipsInjected(),
              b.transientFlipsInjected());
    EXPECT_EQ(a.stuckCellsInjected(), b.stuckCellsInjected());
    EXPECT_GT(a.transientFlipsInjected(), 0u);
    EXPECT_GT(a.stuckCellsInjected(), 0u);
}

TEST(FaultModel, DifferentSeedsDiverge)
{
    DeviceFaultModel a(noisyFaults(), 1);
    DeviceFaultModel b(noisyFaults(), 2);
    bool diverged = false;
    for (unsigned i = 0; i < 20 && !diverged; ++i) {
        LineCodeword ca, cb;
        a.applyTransient(0, 0, ca);
        b.applyTransient(0, 0, cb);
        diverged = ca.data != cb.data || ca.check != cb.check;
    }
    EXPECT_TRUE(diverged);
}

TEST(FaultModel, StuckCellsAreAppliedToEveryProgram)
{
    FaultModelConfig f;
    f.stuckCellRate = 1.0;
    DeviceFaultModel model(f, 7);
    model.onWrite(0x1000, 0);
    ASSERT_EQ(model.stuckCells(0x1000).size(), 1u);
    const StuckCell cell = model.stuckCells(0x1000).front();
    LineCodeword cw; // all zero
    if (cell.value) {
        EXPECT_EQ(model.applyStuck(0x1000, cw), 1u);
        EXPECT_TRUE(cw.bit(cell.bit));
    } else {
        EXPECT_EQ(model.applyStuck(0x1000, cw), 0u);
    }
    // A pristine frame is untouched.
    LineCodeword other;
    EXPECT_EQ(model.applyStuck(0x2000, other), 0u);
}

TEST(FaultModel, WearAcceleratesStuckCells)
{
    FaultModelConfig f;
    f.stuckCellRate = 0.01;
    f.wearFactor = 10.0; // wear 1000 => effective rate 1.0
    DeviceFaultModel model(f, 3);
    for (unsigned i = 0; i < 100; ++i) {
        model.onWrite(0x1000, 1000); // hot frame
        model.onWrite(0x2000, 0);    // cold frame
    }
    EXPECT_GT(model.stuckCells(0x1000).size(),
              model.stuckCells(0x2000).size());
    EXPECT_GT(model.stuckCells(0x1000).size(), 50u);
}

TEST(FaultModel, ZeroRatesDrawNothing)
{
    DeviceFaultModel model(FaultModelConfig{}, 5);
    LineCodeword cw;
    for (unsigned i = 0; i < 10; ++i) {
        EXPECT_EQ(model.onWrite(0x1000, 1000), 0u);
        EXPECT_EQ(model.applyTransient(0x1000, 1000, cw), 0u);
    }
    EXPECT_EQ(model.transientFlipsInjected(), 0u);
    EXPECT_EQ(model.stuckCellsInjected(), 0u);
}

TEST(BadLineMap, RemapAndChainTranslation)
{
    const Addr spare = Addr(1) << 41;
    BadLineMap map(spare, 4);
    EXPECT_EQ(map.translate(0x1000), 0x1000u);

    std::optional<Addr> s0 = map.remap(0x1000);
    ASSERT_TRUE(s0.has_value());
    EXPECT_EQ(*s0, spare);
    EXPECT_EQ(map.translate(0x1000), spare);
    EXPECT_TRUE(map.isRemapped(0x1000));

    // The spare itself goes bad: the chain is followed end to end.
    std::optional<Addr> s1 = map.remap(*s0);
    ASSERT_TRUE(s1.has_value());
    EXPECT_EQ(*s1, spare + lineBytes);
    EXPECT_EQ(map.translate(0x1000), *s1);

    EXPECT_EQ(map.remappedLines(), 2u);
    EXPECT_EQ(map.sparesUsed(), 2u);
    EXPECT_EQ(map.sparesLeft(), 2u);

    map.remap(0x2000);
    map.remap(0x3000);
    EXPECT_FALSE(map.remap(0x4000).has_value()); // pool exhausted
    EXPECT_EQ(map.translate(0x4000), 0x4000u);
}

TEST(ResilienceManager, WriteVerifyRetireesBadFramesWithoutLoss)
{
    ResilienceConfig cfg;
    cfg.enabled = true;
    cfg.seed = 11;
    cfg.faults.stuckCellRate = 1.0; // every write sticks a cell
    cfg.retryBudget = 1;
    cfg.spareLines = 64;
    ResilienceManager mgr(cfg);
    setQuiet(true);

    const Addr frame = 0x5000;
    const CacheLine data = CacheLine::fromSeed(3);
    // Keep programming the same (translated) frame: stuck cells
    // accumulate until two land in one 72-bit word, the write-verify
    // loop fails past its budget and the frame is retired.
    bool remapped = false;
    for (unsigned i = 0; i < 300 && !remapped; ++i) {
        Addr target = mgr.translate(frame);
        MediaWriteResult mw = mgr.mediaWrite(target, data, 0, 0);
        remapped = mw.remapped;
        if (remapped) {
            EXPECT_NE(mw.frame, target);
            EXPECT_EQ(mgr.translate(frame), mw.frame);
        }
        // Whatever happened, the stored codeword must still decode:
        // a read of the final frame returns the data.
        mgr.mediaReadCheck(mgr.translate(frame), 0, 0);
    }
    EXPECT_TRUE(remapped);
    const ResilienceCounters c = mgr.counters();
    EXPECT_GT(c.writeVerifyFailures, 0u);
    EXPECT_GT(c.writeRetries, 0u);
    EXPECT_GE(c.remaps, 1u);
    EXPECT_EQ(c.spareExhausted, 0u);
    EXPECT_EQ(c.dataLossLines, 0u);
}

TEST(ResilienceManager, TransientNoiseIsCorrectedOrRetried)
{
    ResilienceConfig cfg;
    cfg.enabled = true;
    cfg.seed = 23;
    cfg.faults.transientFlipRate = 1.0;
    cfg.faults.extraFlipRate = 0.5; // frequent multi-bit bursts
    cfg.retryBudget = 2;
    ResilienceManager mgr(cfg);
    setQuiet(true);

    const Addr frame = 0x9000;
    mgr.mediaWrite(frame, CacheLine::fromSeed(8), 0, 0);
    Tick total_delay = 0;
    for (unsigned i = 0; i < 200; ++i)
        total_delay += mgr.mediaReadCheck(frame, 0, 0);
    const ResilienceCounters c = mgr.counters();
    EXPECT_EQ(c.cleanReads + c.correctedReads, 200u);
    EXPECT_GT(c.correctedReads, 0u);
    EXPECT_GT(c.transientFlipsInjected, 0u);
    // Retries (uncorrectable bursts) cost simulated backoff time.
    if (c.readRetries > 0) {
        EXPECT_GT(total_delay, 0u);
        EXPECT_EQ(c.retryBackoffTicks, total_delay);
    }
    EXPECT_EQ(c.dataLossLines, 0u);
}

TEST(ResilienceManager, WatchdogTripsAndExpires)
{
    ResilienceConfig cfg;
    cfg.enabled = true;
    cfg.watchdogBudget = 100 * ticks::ns;
    cfg.degradedWindow = 1 * ticks::us;
    ResilienceManager mgr(cfg);

    mgr.noteBmoLatency(0, 50 * ticks::ns); // under budget
    EXPECT_FALSE(mgr.degraded(50 * ticks::ns));
    mgr.noteBmoLatency(0, 200 * ticks::ns); // over budget: trips
    EXPECT_TRUE(mgr.degraded(200 * ticks::ns));
    EXPECT_TRUE(mgr.degraded(200 * ticks::ns + cfg.degradedWindow - 1));
    EXPECT_FALSE(mgr.degraded(200 * ticks::ns + cfg.degradedWindow));
    EXPECT_EQ(mgr.counters().watchdogTrips, 1u);
    EXPECT_EQ(mgr.counters().degradedTicks, cfg.degradedWindow);
}

TEST(ResilienceManager, DedupBypassUnderTablePressure)
{
    ResilienceConfig cfg;
    cfg.enabled = true;
    cfg.dedupTableLimit = 10;
    ResilienceManager mgr(cfg);
    EXPECT_FALSE(mgr.dedupBypass(9));
    EXPECT_TRUE(mgr.dedupBypass(10));
    EXPECT_TRUE(mgr.dedupBypass(11));
    EXPECT_EQ(mgr.counters().dedupBypasses, 2u);

    ResilienceConfig off;
    off.enabled = true; // limit 0 = never bypass
    ResilienceManager never(off);
    EXPECT_FALSE(never.dedupBypass(1u << 20));
}

ExperimentConfig
chaosConfig(bool faults)
{
    ExperimentConfig config;
    config.workloadName = "queue";
    config.workload.txnsPerCore = 100;
    config.workload.seed = 5;
    config.sys.cores = 2;
    config.sys.mode = WritePathMode::Janus;
    config.instr = Instrumentation::Manual;
    config.sys.bmo.wearLeveling = true;
    if (faults) {
        ResilienceConfig &res = config.sys.resilience;
        res.enabled = true;
        res.seed = 5;
        res.faults.transientFlipRate = 0.05;
        res.faults.stuckCellRate = 0.02;
        res.faults.wearFactor = 0.05;
        res.retryBudget = 2;
        res.spareLines = 512;
        res.dedupTableLimit = 64;
        res.watchdogBudget = 120 * ticks::ns;
        res.degradedWindow = 2 * ticks::us;
        res.irbEccFaultRate = 0.01;
    }
    return config;
}

TEST(ResilienceIntegration, FaultsOffIsBitIdenticalAndAllZero)
{
    setQuiet(true);
    // A config that never mentions resilience...
    ExperimentResult plain = runExperiment(chaosConfig(false));
    // ...and one carrying aggressive rates but enabled == false:
    // the layer must be inert (no draws, no timing changes).
    ExperimentConfig armed = chaosConfig(true);
    armed.sys.resilience.enabled = false;
    ExperimentResult off = runExperiment(armed);

    EXPECT_EQ(plain.makespan, off.makespan);
    EXPECT_EQ(plain.avgWriteLatencyNs, off.avgWriteLatencyNs);
    EXPECT_EQ(plain.eventsExecuted, off.eventsExecuted);
    EXPECT_EQ(plain.persists, off.persists);

    const ResilienceCounters &c = off.resilience;
    EXPECT_EQ(c.transientFlipsInjected, 0u);
    EXPECT_EQ(c.stuckCellsInjected, 0u);
    EXPECT_EQ(c.cleanReads + c.correctedReads + c.uncorrectableReads,
              0u);
    EXPECT_EQ(c.readRetries + c.writeRetries, 0u);
    EXPECT_EQ(c.remaps, 0u);
    EXPECT_EQ(c.irbEccFaults, 0u);
    EXPECT_EQ(c.dedupBypasses, 0u);
    EXPECT_EQ(c.watchdogTrips, 0u);
    EXPECT_EQ(c.scrubQueued, 0u);
    EXPECT_EQ(c.dataLossLines, 0u);
}

TEST(ResilienceIntegration, ChaosRunSurvivesAndReproduces)
{
    setQuiet(true);
    // runExperiment validates the workload's final state, so merely
    // returning proves the faults never corrupted live data.
    ExperimentResult first = runExperiment(chaosConfig(true));
    ExperimentResult second = runExperiment(chaosConfig(true));

    const ResilienceCounters &c = first.resilience;
    EXPECT_GT(c.transientFlipsInjected + c.stuckCellsInjected, 0u);
    // Stuck cells land on written frames, so the write-verify loop
    // is where corrections show up at this scale.
    EXPECT_GT(c.correctedWrites + c.correctedReads, 0u);
    EXPECT_GT(c.watchdogTrips, 0u);
    EXPECT_EQ(c.spareExhausted, 0u);
    EXPECT_EQ(c.dataLossLines, 0u);
    EXPECT_EQ(c.scrubFailures, 0u);

    // Same seed, same fault sequence, same timing.
    EXPECT_EQ(first.makespan, second.makespan);
    EXPECT_EQ(first.eventsExecuted, second.eventsExecuted);
    const ResilienceCounters &d = second.resilience;
    EXPECT_EQ(c.transientFlipsInjected, d.transientFlipsInjected);
    EXPECT_EQ(c.stuckCellsInjected, d.stuckCellsInjected);
    EXPECT_EQ(c.correctedReads, d.correctedReads);
    EXPECT_EQ(c.readRetries, d.readRetries);
    EXPECT_EQ(c.writeRetries, d.writeRetries);
    EXPECT_EQ(c.remaps, d.remaps);
    EXPECT_EQ(c.irbEccFaults, d.irbEccFaults);
    EXPECT_EQ(c.watchdogTrips, d.watchdogTrips);
    EXPECT_EQ(c.degradedTicks, d.degradedTicks);
    EXPECT_EQ(c.scrubQueued, d.scrubQueued);
    EXPECT_EQ(c.scrubbed, d.scrubbed);
}

TEST(ResilienceIntegration, FaultsPerturbTimingWhenEnabled)
{
    setQuiet(true);
    // Sanity check that the chaos config actually exercises the
    // layer: the degraded window alone must show up in counters.
    ExperimentResult chaos = runExperiment(chaosConfig(true));
    EXPECT_GT(chaos.resilience.degradedTicks, 0u);
}

} // namespace
} // namespace janus
