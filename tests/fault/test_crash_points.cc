/**
 * @file
 * Unit tests for the crash-point enumerator: hook coverage, image
 * dedup by journal prefix, deterministic sampling, the incremental
 * image builder, and the event-queue cut API the enumerator's crash
 * model rests on.
 */

#include <gtest/gtest.h>

#include "fault/crash_points.hh"
#include "harness/system.hh"
#include "txn/undo_log.hh"
#include "workloads/workload.hh"

namespace janus
{
namespace
{

/** A small journal-enabled run shared by the enumerator tests. */
struct JournaledRun
{
    Module module;
    std::unique_ptr<Workload> workload;
    std::unique_ptr<NvmSystem> system;
    SparseMemory initial;

    explicit JournaledRun(unsigned txns = 12,
                          Tick cut_at = maxTick)
    {
        WorkloadParams params;
        params.txnsPerCore = txns;
        workload = makeWorkload("array_swap", params);
        buildTxnLibrary(module);
        workload->buildKernels(module, true);
        verify(module);
        SystemConfig sys;
        sys.cores = 1;
        system = std::make_unique<NvmSystem>(sys, module);
        system->mc().enableJournal();
        workload->setupCore(0, *system);
        initial.copyFrom(system->mem());
        if (cut_at == maxTick) {
            std::vector<TxnSource> sources;
            sources.push_back(workload->source(0, *system));
            system->run(std::move(sources));
        } else {
            // Crash-cut: drive the event queue only up to the cut
            // tick, then discard everything in flight.
            bool done = false;
            system->core(0).run(workload->source(0, *system),
                                [&done] { done = true; });
            system->eventq().run(cut_at);
            system->eventq().discardPending();
        }
    }
};

TEST(CrashPoints, PlanCoversEveryHookAndDedupes)
{
    JournaledRun run;
    const auto &journal = run.system->mc().journal();
    CrashPlan plan = planCrashPoints(run.system->mc());

    EXPECT_EQ(plan.rawQueueAccepts, journal.size());
    EXPECT_EQ(plan.rawBankCompletes, journal.size());
    EXPECT_GT(plan.rawCommitRecords, 0u);
    EXPECT_GT(plan.rawFenceRetires, 0u);
    EXPECT_EQ(plan.rawFenceRetires,
              run.system->mc().fenceRetires().size());

    ASSERT_GE(plan.points.size(), 2u);
    EXPECT_EQ(plan.points.front().kind, CrashPointKind::Initial);
    EXPECT_EQ(plan.points.front().journalPrefix, 0u);
    EXPECT_EQ(plan.points.back().kind, CrashPointKind::Final);
    EXPECT_EQ(plan.points.back().journalPrefix, journal.size());

    // Deduped: prefixes strictly increase, so every point's durable
    // image is distinct.
    for (std::size_t i = 1; i < plan.points.size(); ++i)
        EXPECT_GT(plan.points[i].journalPrefix,
                  plan.points[i - 1].journalPrefix);

    // Each prefix is exactly the set of entries durable at the tick.
    for (const CrashPoint &p : plan.points) {
        if (p.journalPrefix > 0) {
            EXPECT_LE(journal[p.journalPrefix - 1].persisted,
                      p.tick);
        }
        if (p.journalPrefix < journal.size()) {
            EXPECT_GT(journal[p.journalPrefix].persisted, p.tick);
        }
    }
}

TEST(CrashPoints, SamplingIsDeterministicAndKeepsEndpoints)
{
    JournaledRun run;
    CrashPlan plan = planCrashPoints(run.system->mc());
    ASSERT_GT(plan.points.size(), 10u);

    auto a = sampleCrashPoints(plan.points, 8, 42);
    auto b = sampleCrashPoints(plan.points, 8, 42);
    ASSERT_EQ(a.size(), 8u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].tick, b[i].tick);
        EXPECT_EQ(a[i].journalPrefix, b[i].journalPrefix);
    }
    EXPECT_EQ(a.front().kind, CrashPointKind::Initial);
    EXPECT_EQ(a.back().kind, CrashPointKind::Final);

    // Oversampling returns the full plan unchanged.
    auto all = sampleCrashPoints(plan.points,
                                 plan.points.size() + 5, 7);
    EXPECT_EQ(all.size(), plan.points.size());
}

TEST(CrashPoints, ImageBuilderMatchesDirectReplay)
{
    JournaledRun run;
    const auto &journal = run.system->mc().journal();
    PersistentImageBuilder builder(run.initial, journal);

    for (std::size_t prefix : {std::size_t(0), journal.size() / 2,
                               journal.size()}) {
        SparseMemory direct;
        direct.copyFrom(run.initial);
        for (std::size_t i = 0; i < prefix; ++i)
            direct.writeLine(journal[i].lineAddr, journal[i].data);
        EXPECT_EQ(builder.imageAt(prefix).contentHash(),
                  direct.contentHash())
            << "prefix " << prefix;
    }
}

TEST(CrashPoints, ImageBuilderRejectsDecreasingPrefix)
{
    JournaledRun run;
    PersistentImageBuilder builder(run.initial,
                                   run.system->mc().journal());
    builder.imageAt(3);
    EXPECT_DEATH(builder.imageAt(2), "nondecreasing");
}

TEST(CrashPoints, CutRunJournalIsAPrefixOfTheFullRun)
{
    // Determinism makes the crash model honest: a run actually cut
    // at tick T has journaled exactly the durable prefix the
    // enumerator reconstructs from the full run's journal.
    JournaledRun full;
    const auto &ref = full.system->mc().journal();
    ASSERT_GT(ref.size(), 8u);
    const Tick cut = ref[ref.size() / 2].persisted;

    JournaledRun cut_run(12, cut);
    const auto &got = cut_run.system->mc().journal();
    std::size_t durable = 0;
    for (const JournalEntry &e : got) {
        if (e.persisted > cut)
            continue; // accepted but not yet durable at the cut
        ASSERT_LT(durable, ref.size());
        EXPECT_EQ(e.lineAddr, ref[durable].lineAddr);
        EXPECT_EQ(e.persisted, ref[durable].persisted);
        EXPECT_TRUE(e.data == ref[durable].data);
        ++durable;
    }
    std::size_t expected = 0;
    while (expected < ref.size() &&
           ref[expected].persisted <= cut)
        ++expected;
    EXPECT_EQ(durable, expected);
}

TEST(EventQueueCut, DiscardPendingEmptiesBothLevels)
{
    EventQueue eventq;
    unsigned ran = 0;
    // Near events land in the calendar ring, the far one in the
    // heap; the cut must drop both.
    for (int i = 0; i < 16; ++i)
        eventq.schedule(Tick(i) * ticks::ns, [&ran] { ++ran; });
    eventq.schedule(10 * ticks::ms, [&ran] { ++ran; });
    EXPECT_EQ(eventq.pending(), 17u);

    EXPECT_EQ(eventq.discardPending(), 17u);
    EXPECT_EQ(eventq.pending(), 0u);
    EXPECT_EQ(eventq.run(), 0u);
    EXPECT_EQ(ran, 0u);

    // The queue stays usable after a cut.
    eventq.schedule(eventq.curTick() + ticks::ns, [&ran] { ++ran; });
    EXPECT_EQ(eventq.run(), 1u);
    EXPECT_EQ(ran, 1u);
}

} // namespace
} // namespace janus
