/**
 * @file
 * Unit tests for the non-crash fault-injection engine: bit flips in
 * stored ciphertext, metadata entries and Merkle nodes must be
 * detected and attributed to the level they were injected at; the
 * refcount guards must catch double-free-style remaps; stale IRB
 * results must be invalidated at consume time and wiped by the
 * crash-recovery reset.
 */

#include <gtest/gtest.h>

#include "fault/injection.hh"
#include "janus/janus_hw.hh"

namespace janus
{
namespace
{

class InjectionTest : public ::testing::Test
{
  protected:
    InjectionTest() : backend_(config_)
    {
        // A handful of distinct lines plus one duplicate pair.
        for (std::uint64_t i = 0; i < 6; ++i) {
            lines_.push_back(Addr(i) << lineShift);
            backend_.writeLine(lines_.back(),
                               CacheLine::fromSeed(100 + i));
        }
        backend_.writeLine(Addr(6) << lineShift,
                           CacheLine::fromSeed(100)); // dup of line 0
        lines_.push_back(Addr(6) << lineShift);
    }

    BmoConfig config_;
    BmoBackendState backend_;
    std::vector<Addr> lines_;
};

TEST_F(InjectionTest, DataFlipCaughtByMacAndHealed)
{
    for (unsigned bit : {0u, 63u, 8u * lineBytes - 1u}) {
        backend_.injectStoredDataBitFlip(lines_[1], bit);
        IntegrityVerdict v = backend_.verifyLineIntegrity(lines_[1]);
        EXPECT_FALSE(v.macOk) << "bit " << bit;
        EXPECT_TRUE(v.tree.ok) << "tree covers metadata only";
        backend_.injectStoredDataBitFlip(lines_[1], bit);
        EXPECT_TRUE(backend_.verifyLineIntegrity(lines_[1]).ok());
    }
}

TEST_F(InjectionTest, MetaFlipCaughtAtLeafLevel)
{
    // Counter, phys and dup-flag bits of the serialized entry.
    for (unsigned bit : {0u, 70u, 100u, 121u}) {
        backend_.injectMetaBitFlip(lines_[2], bit);
        IntegrityVerdict v = backend_.verifyLineIntegrity(lines_[2]);
        EXPECT_FALSE(v.tree.ok) << "bit " << bit;
        EXPECT_EQ(v.tree.failLevel, 0u) << "bit " << bit;
        backend_.injectMetaBitFlip(lines_[2], bit);
        EXPECT_TRUE(backend_.verifyLineIntegrity(lines_[2]).ok());
    }
}

TEST_F(InjectionTest, TreeFlipAttributedToInjectedLevel)
{
    for (unsigned level = 0; level <= config_.merkleLevels;
         ++level) {
        backend_.injectTreeBitFlip(lines_[3], level, 17);
        IntegrityVerdict v = backend_.verifyLineIntegrity(lines_[3]);
        EXPECT_FALSE(v.tree.ok) << "level " << level;
        EXPECT_EQ(v.tree.failLevel, level);
        backend_.injectTreeBitFlip(lines_[3], level, 17);
        EXPECT_TRUE(backend_.verifyLineIntegrity(lines_[3]).ok());
    }
}

TEST_F(InjectionTest, CampaignDetectsEverythingAndHeals)
{
    const Sha1Digest root_before = backend_.merkleRoot();
    const std::uint64_t storage_before =
        backend_.storageContentHash();

    InjectionReport report =
        runInjectionCampaign(backend_, lines_, 12, 99);
    EXPECT_TRUE(report.passed());
    EXPECT_EQ(report.data.injected, 12u);
    EXPECT_EQ(report.data.detected, 12u);
    EXPECT_EQ(report.meta.detected, report.meta.injected);
    ASSERT_EQ(report.tree.size(), config_.merkleLevels + 1);
    for (const InjectionCounts &level : report.tree) {
        EXPECT_EQ(level.detected, level.injected);
        EXPECT_EQ(level.misattributed, 0u);
    }
    // The control proves detection comes from the machinery.
    EXPECT_GT(report.uncoveredControl.injected, 0u);
    EXPECT_EQ(report.uncoveredControl.detected, 0u);

    // Self-healing: bit-identical backend afterwards.
    EXPECT_TRUE(root_before == backend_.merkleRoot());
    EXPECT_EQ(storage_before, backend_.storageContentHash());
    EXPECT_TRUE(backend_.auditIntegrity());
}

TEST_F(InjectionTest, DoubleFreeStyleRemapPanicsWithLineAddress)
{
    // First release drops the only reference and frees the phys
    // line; the second release is the double free and must name the
    // logical line in the panic message.
    EXPECT_DEATH(
        {
            backend_.injectDoubleFree(lines_[4]);
            backend_.injectDoubleFree(lines_[4]);
        },
        "double free");
}

TEST_F(InjectionTest, SharedPhysLineSurvivesOneReleaseThenPanics)
{
    // lines_[0] and lines_[6] dedup onto one phys line (refcount 2):
    // one release is survivable, the second underflows the refcount
    // bookkeeping and must die on a guard rather than wrap.
    backend_.injectDoubleFree(lines_[0]);
    EXPECT_DEATH(
        {
            backend_.injectDoubleFree(lines_[6]);
            backend_.injectDoubleFree(lines_[6]);
        },
        "free|underflow");
}

TEST(InjectionIrb, StaleResultInvalidatedAtConsume)
{
    BmoConfig bmo;
    BmoGraph graph = buildStandardGraph(bmo);
    BmoEngine engine(graph, 0);
    BmoBackendState backend(bmo);
    JanusHwConfig cfg;
    JanusFrontend frontend(cfg, engine, backend);

    // Pre-execute with a stale snapshot, then write different data:
    // consume-time validation must flag the mismatch so the write
    // path discards the data-dependent pre-executed results.
    frontend.issueImmediate(
        PreObjId{1, 0, 0},
        {PreChunk{Addr(0x1000), CacheLine::fromSeed(7)}}, 0);
    ConsumeResult r = frontend.consume(
        0x1000, CacheLine::fromSeed(8), 10 * ticks::us);
    EXPECT_TRUE(r.hadEntry);
    EXPECT_TRUE(r.dataMismatch);
    EXPECT_FALSE(r.fullyPreExecuted);
}

TEST(InjectionIrb, ResetModelsVolatileIrbLossOnCrash)
{
    BmoConfig bmo;
    BmoGraph graph = buildStandardGraph(bmo);
    BmoEngine engine(graph, 0);
    BmoBackendState backend(bmo);
    JanusHwConfig cfg;
    JanusFrontend frontend(cfg, engine, backend);

    frontend.issueImmediate(
        PreObjId{1, 0, 0},
        {PreChunk{Addr(0x1000), CacheLine::fromSeed(7)}}, 0);
    frontend.buffer(PreObjId{2, 0, 0},
                    {PreChunk{Addr(0x2000), CacheLine::fromSeed(9)}},
                    0);
    EXPECT_GT(frontend.irbOccupancy(), 0u);

    frontend.reset();
    EXPECT_EQ(frontend.irbOccupancy(), 0u);
    // Nothing pre-executed survives the restart.
    ConsumeResult r = frontend.consume(
        0x1000, CacheLine::fromSeed(7), 10 * ticks::us);
    EXPECT_FALSE(r.hadEntry);
}

} // namespace
} // namespace janus
