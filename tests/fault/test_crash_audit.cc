/**
 * @file
 * Tests for the crash-audit driver: exhaustive sweeps must pass and
 * report their coverage, replays must be bit-identical, journal
 * perturbations must behave as designed (drops detectable,
 * duplicates harmless), and the JSON report must carry the fields
 * CI greps for.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "fault/crash_audit.hh"
#include "fault/injection.hh"
#include "harness/system.hh"
#include "txn/undo_log.hh"
#include "workloads/workload.hh"

namespace janus
{
namespace
{

AuditConfig
smallConfig(const std::string &workload)
{
    AuditConfig config;
    config.workload = workload;
    config.txnsPerCore = 12;
    config.injectionTrials = 8;
    return config;
}

TEST(CrashAudit, ExhaustiveSweepPassesOnArraySwap)
{
    AuditReport report = runCrashAudit(smallConfig("array_swap"));
    EXPECT_TRUE(report.passed()) << report.toJson();
    EXPECT_FALSE(report.hasFailure());
    EXPECT_EQ(report.sweptPoints, report.totalPoints);
    EXPECT_GT(report.totalPoints, 30u);
    EXPECT_GT(report.rollbacks, 0u);
    EXPECT_TRUE(report.backendVerified);
    ASSERT_TRUE(report.injectionRan);
    EXPECT_TRUE(report.injection.passed());
    EXPECT_EQ(report.repro(), "");
}

TEST(CrashAudit, SampledSweepCoversRequestedPoints)
{
    AuditConfig config = smallConfig("queue");
    config.samplePoints = 10;
    config.injectionTrials = 0;
    AuditReport report = runCrashAudit(config);
    EXPECT_TRUE(report.passed()) << report.toJson();
    EXPECT_EQ(report.sweptPoints, 10u);
    EXPECT_GT(report.totalPoints, 10u);
    EXPECT_FALSE(report.injectionRan);
}

TEST(CrashAudit, JsonReportCarriesTheContract)
{
    AuditConfig config = smallConfig("array_swap");
    config.samplePoints = 8;
    AuditReport report = runCrashAudit(config);
    std::string json = report.toJson();
    for (const char *key :
         {"\"points_enumerated\"", "\"points_swept\"",
          "\"first_failing_tick\"", "\"repro\"", "\"raw_hooks\"",
          "\"final_image_hash\"", "\"backend_verified\"",
          "\"injection\"", "\"passed\": true"})
        EXPECT_NE(json.find(key), std::string::npos) << key;
}

TEST(CrashAudit, ReplayIsBitIdentical)
{
    AuditConfig config = smallConfig("array_swap");
    config.injectionTrials = 0;
    // A mid-run tick: both replays must reconstruct the same
    // durable image and recover to the same state.
    ReplayResult a = replayCrashPoint(config, 5 * ticks::us);
    ReplayResult b = replayCrashPoint(config, 5 * ticks::us);
    EXPECT_TRUE(a.recovered) << a.error;
    EXPECT_EQ(a.imageHash, b.imageHash);
    EXPECT_EQ(a.recoveredHash, b.recoveredHash);
    EXPECT_EQ(a.journalPrefix, b.journalPrefix);

    // A different seed writes a different history.
    AuditConfig other = config;
    other.seed = 2;
    ReplayResult c = replayCrashPoint(other, 5 * ticks::us);
    EXPECT_TRUE(c.recovered) << c.error;
    EXPECT_NE(a.imageHash, c.imageHash);
}

/** Journal-enabled run shared by the perturbation tests. */
struct PerturbationRun
{
    Module module;
    std::unique_ptr<Workload> workload;
    std::unique_ptr<NvmSystem> system;
    SparseMemory initial;

    PerturbationRun()
    {
        WorkloadParams params;
        params.txnsPerCore = 12;
        workload = makeWorkload("array_swap", params);
        buildTxnLibrary(module);
        workload->buildKernels(module, true);
        verify(module);
        SystemConfig sys;
        sys.cores = 1;
        system = std::make_unique<NvmSystem>(sys, module);
        system->mc().enableJournal();
        workload->setupCore(0, *system);
        initial.copyFrom(system->mem());
        std::vector<TxnSource> sources;
        sources.push_back(workload->source(0, *system));
        system->run(std::move(sources));
    }

    /** Recover + validate an image; empty string == consistent. */
    std::string
    check(SparseMemory &image)
    {
        ScopedPanicCapture capture;
        try {
            recoverUndoLog(image, workload->logBase(0));
            workload->validateRecovered(image, 0);
            return "";
        } catch (const PanicError &e) {
            return e.what();
        }
    }
};

TEST(CrashAudit, DroppedJournalEntryIsDetectable)
{
    // Audit sensitivity: losing a durable write must be observable.
    // Not every single drop is (early writes get overwritten), but
    // among the final writes at least one must break the workload's
    // invariants.
    PerturbationRun run;
    const auto &journal = run.system->mc().journal();
    ASSERT_GT(journal.size(), 20u);
    unsigned detected = 0;
    for (std::size_t back = 1; back <= 20; ++back) {
        std::size_t index = journal.size() - back;
        SparseMemory image = imageWithDroppedEntry(
            run.initial, journal, index);
        if (!run.check(image).empty())
            ++detected;
    }
    EXPECT_GT(detected, 0u);
}

TEST(CrashAudit, DuplicatedJournalEntryIsHarmless)
{
    // Line persists are idempotent: replaying a write-queue entry
    // twice must never break recovery.
    PerturbationRun run;
    const auto &journal = run.system->mc().journal();
    for (std::size_t index :
         {std::size_t(0), journal.size() / 3, journal.size() / 2,
          journal.size() - 1}) {
        SparseMemory image = imageWithDuplicatedEntry(
            run.initial, journal, index);
        EXPECT_EQ(run.check(image), "") << "entry " << index;
    }
}

TEST(CrashAudit, PanicCaptureConfinesFailuresToTheAuditedPoint)
{
    // A deliberately corrupted image must surface as a recorded
    // error, not a process abort — and a clean image checked right
    // after must still pass (capture state fully unwinds).
    PerturbationRun run;
    const auto &journal = run.system->mc().journal();
    SparseMemory broken;
    broken.copyFrom(run.initial);
    for (const JournalEntry &e : journal)
        broken.writeLine(e.lineAddr, e.data);
    // Scribble over one heap line outside the log region.
    Addr log_base = run.workload->logBase(0);
    for (auto it = journal.rbegin(); it != journal.rend(); ++it) {
        if (it->lineAddr >= log_base &&
            it->lineAddr < log_base + logRegionBytes)
            continue;
        broken.writeLine(it->lineAddr, CacheLine::fromSeed(0xDEAD));
        break;
    }
    EXPECT_NE(run.check(broken), "");

    SparseMemory clean;
    clean.copyFrom(run.initial);
    for (const JournalEntry &e : journal)
        clean.writeLine(e.lineAddr, e.data);
    EXPECT_EQ(run.check(clean), "");
}

} // namespace
} // namespace janus
