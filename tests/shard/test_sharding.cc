/**
 * @file
 * Sharded multi-channel scale-out tests: router address map, stats
 * merging, and — the core determinism contract — byte-identical
 * simulation results at every shard count regardless of scheduler
 * thread count, with workload validation passing throughout.
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/runner.hh"
#include "harness/sharding.hh"
#include "harness/system.hh"
#include "sim/stats.hh"
#include "txn/undo_log.hh"
#include "workloads/workload.hh"

namespace janus
{
namespace
{

// --- ShardRouter ----------------------------------------------------

TEST(ShardRouter, SingleShardHomesEverything)
{
    ShardRouter r(1, ShardRouterPolicy::LineInterleave, 1 << 20,
                  1 << 26);
    EXPECT_EQ(r.homeShard(0), 0u);
    EXPECT_EQ(r.homeShard(1 << 22), 0u);
    EXPECT_EQ(r.homeShard(~Addr(0) - lineBytes), 0u);
}

TEST(ShardRouter, LineInterleaveRoundRobinsByLine)
{
    ShardRouter r(4, ShardRouterPolicy::LineInterleave, 1 << 20,
                  1 << 26);
    for (Addr line = 0; line < 64; ++line) {
        const Addr addr = line * lineBytes;
        EXPECT_EQ(r.homeShard(addr), line % 4);
        // Every byte of a line homes with the line.
        EXPECT_EQ(r.homeShard(addr + lineBytes - 1), line % 4);
    }
}

TEST(ShardRouter, RegionAffineStripesTheHeap)
{
    const Addr base = 1 << 20, bytes = 1 << 26;
    ShardRouter r(4, ShardRouterPolicy::RegionAffine, base, bytes);
    EXPECT_EQ(r.stripeBytes(), (bytes / 4) & ~Addr(lineBytes - 1));
    for (unsigned s = 0; s < 4; ++s) {
        EXPECT_EQ(r.stripeBase(s), base + s * r.stripeBytes());
        EXPECT_EQ(r.homeShard(r.stripeBase(s)), s);
        EXPECT_EQ(
            r.homeShard(r.stripeBase(s) + r.stripeBytes() - 1), s);
    }
    // Below the heap -> shard 0; beyond the last stripe -> clamped.
    EXPECT_EQ(r.homeShard(0), 0u);
    EXPECT_EQ(r.homeShard(base + bytes + lineBytes), 3u);
}

// --- stats merging --------------------------------------------------

TEST(StatsMerge, AverageOfOnePartIsIdentity)
{
    Average a;
    a.sample(3.0);
    a.sample(5.0);
    Average merged;
    merged.merge(a);
    EXPECT_EQ(merged.count(), a.count());
    EXPECT_EQ(merged.mean(), a.mean());
}

TEST(StatsMerge, AverageCombinesSumsAndExtrema)
{
    Average a, b;
    a.sample(1.0);
    a.sample(3.0);
    b.sample(5.0);
    Average m = a;
    m.merge(b);
    EXPECT_EQ(m.count(), 3u);
    EXPECT_DOUBLE_EQ(m.mean(), 3.0);
}

TEST(StatsMerge, HistogramAddsBucketwise)
{
    Histogram a(0, 10, 10), b(0, 10, 10);
    a.sample(1.5);
    a.sample(2.5);
    b.sample(2.5);
    b.sample(9.5);
    Histogram m = a;
    m.merge(b);
    EXPECT_EQ(m.count(), 4u);
    // Quantiles come from the merged buckets.
    Histogram all(0, 10, 10);
    all.sample(1.5);
    all.sample(2.5);
    all.sample(2.5);
    all.sample(9.5);
    EXPECT_EQ(m.quantile(0.5), all.quantile(0.5));
    EXPECT_EQ(m.quantile(0.99), all.quantile(0.99));
}

TEST(StatsMerge, GaugeMergesAsDisjointPool)
{
    TimeWeightedGauge a, b;
    a.set(2.0, 100);
    b.set(4.0, 200);
    TimeWeightedGauge m = a;
    m.merge(b);
    EXPECT_EQ(m.lastUpdate(), 200u);
    EXPECT_DOUBLE_EQ(m.current(), 6.0);
    // Sum of per-part maxima (upper bound on the combined peak).
    EXPECT_DOUBLE_EQ(m.max(), 6.0);
}

TEST(StatsMerge, StatGroupMergesByName)
{
    StatGroup a("mc"), b("mc");
    a.scalar("writes").set(10);
    b.scalar("writes").set(32);
    a.average("lat").sample(4.0);
    b.average("lat").sample(8.0);
    b.scalar("onlyInB").set(7);
    a.merge(b);
    std::ostringstream os;
    a.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("mc.writes 42"), std::string::npos);
    EXPECT_NE(out.find("mc.lat.mean 6"), std::string::npos);
    EXPECT_NE(out.find("mc.onlyInB 7"), std::string::npos);
}

// --- sharded system determinism -------------------------------------

struct RunDigest
{
    Tick makespan = 0;
    std::string statsJson;
    std::uint64_t memHash = 0;
    std::uint64_t messages = 0;
};

RunDigest
runSharded(const std::string &workload_name, unsigned cores,
           unsigned shards, unsigned threads,
           ShardRouterPolicy policy)
{
    WorkloadParams params;
    params.txnsPerCore = 25;
    auto workload = makeWorkload(workload_name, params);
    Module module;
    buildTxnLibrary(module);
    workload->buildKernels(module, true);

    SystemConfig config;
    config.mode = WritePathMode::Janus;
    config.cores = cores;
    config.shards = shards;
    config.shardThreads = threads;
    config.shardPolicy = policy;
    NvmSystem system(config, module);
    std::vector<TxnSource> sources;
    for (unsigned c = 0; c < cores; ++c) {
        workload->setupCore(c, system);
        sources.push_back(workload->source(c, system));
    }

    RunDigest d;
    d.makespan = system.run(std::move(sources));
    // Functional correctness at every shard count.
    for (unsigned c = 0; c < cores; ++c)
        workload->validate(system.mem(), c);
    std::ostringstream os;
    system.dumpStatsJson(os);
    d.statsJson = os.str();
    d.memHash = system.mem().contentHash();
    d.messages = system.crossShardMessages();
    return d;
}

class ShardDeterminism
    : public ::testing::TestWithParam<std::string>
{
};

/** Thread count may only change wall time: for every shard count,
 *  1 scheduler thread and 4 scheduler threads must produce
 *  byte-identical stats dumps, identical memory images and
 *  identical makespans. */
TEST_P(ShardDeterminism, ThreadCountInvariantAffine)
{
    const std::string w = GetParam();
    for (unsigned shards : {1u, 2u, 4u}) {
        RunDigest t1 = runSharded(w, 4, shards, 1,
                                  ShardRouterPolicy::RegionAffine);
        RunDigest t4 = runSharded(w, 4, shards, 4,
                                  ShardRouterPolicy::RegionAffine);
        EXPECT_EQ(t1.makespan, t4.makespan)
            << w << " shards=" << shards;
        EXPECT_EQ(t1.statsJson, t4.statsJson)
            << w << " shards=" << shards;
        EXPECT_EQ(t1.memHash, t4.memHash)
            << w << " shards=" << shards;
        EXPECT_EQ(t1.messages, t4.messages)
            << w << " shards=" << shards;
    }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, ShardDeterminism,
                         ::testing::ValuesIn(allWorkloadNames()),
                         [](const auto &info) { return info.param; });

// The WAL appenders stream sequential persists into one region per
// core — a different address pattern from the Table 4 workloads, so
// they get the same determinism contract.
INSTANTIATE_TEST_SUITE_P(WalWorkloads, ShardDeterminism,
                         ::testing::ValuesIn(walWorkloadNames()),
                         [](const auto &info) { return info.param; });

/** Line interleaving routes most persists to remote shards, so this
 *  exercises the cross-shard mailbox protocol (persist forwarding,
 *  acks, fence park/resume) under real concurrency. */
TEST(ShardDeterminismInterleave, ThreadCountInvariant)
{
    for (const char *w : {"array_swap", "hash_table"}) {
        for (unsigned shards : {2u, 4u}) {
            RunDigest t1 = runSharded(
                w, 4, shards, 1, ShardRouterPolicy::LineInterleave);
            RunDigest t4 = runSharded(
                w, 4, shards, 4, ShardRouterPolicy::LineInterleave);
            EXPECT_EQ(t1.makespan, t4.makespan)
                << w << " shards=" << shards;
            EXPECT_EQ(t1.statsJson, t4.statsJson)
                << w << " shards=" << shards;
            EXPECT_EQ(t1.memHash, t4.memHash)
                << w << " shards=" << shards;
            // Interleaved persists really do cross shards.
            EXPECT_GT(t1.messages, 0u) << w << " shards=" << shards;
        }
    }
}

/** shards=1 through the sharded plumbing must be byte-identical to
 *  the classic machine (same config, no sharding fields set). */
TEST(ShardBaseline, SingleShardMatchesClassicMachine)
{
    RunDigest sharded = runSharded(
        "tatp", 2, 1, 1, ShardRouterPolicy::RegionAffine);

    WorkloadParams params;
    params.txnsPerCore = 25;
    auto workload = makeWorkload("tatp", params);
    Module module;
    buildTxnLibrary(module);
    workload->buildKernels(module, true);
    SystemConfig config;
    config.mode = WritePathMode::Janus;
    config.cores = 2;
    NvmSystem system(config, module);
    std::vector<TxnSource> sources;
    for (unsigned c = 0; c < 2; ++c) {
        workload->setupCore(c, system);
        sources.push_back(workload->source(c, system));
    }
    Tick makespan = system.run(std::move(sources));
    std::ostringstream os;
    system.dumpStatsJson(os);

    EXPECT_EQ(sharded.makespan, makespan);
    EXPECT_EQ(sharded.statsJson, os.str());
    EXPECT_EQ(sharded.memHash, system.mem().contentHash());
    EXPECT_EQ(sharded.messages, 0u);
}

/** The per-shard stat groups merge into the classic schema: the
 *  sharded dump exposes the same groups and stat names at every
 *  shard count. */
TEST(ShardStats, SchemaIdenticalAcrossShardCounts)
{
    RunDigest s1 = runSharded("hash_table", 4, 1, 1,
                              ShardRouterPolicy::RegionAffine);
    RunDigest s4 = runSharded("hash_table", 4, 4, 4,
                              ShardRouterPolicy::RegionAffine);
    // Same JSON keys: strip values by comparing the sorted set of
    // lines up to the ':' separators.
    auto keysOf = [](const std::string &json) {
        std::vector<std::string> keys;
        std::istringstream is(json);
        std::string line;
        while (std::getline(is, line)) {
            auto colon = line.find("\":");
            if (colon != std::string::npos)
                keys.push_back(line.substr(0, colon));
        }
        return keys;
    };
    EXPECT_EQ(keysOf(s1.statsJson), keysOf(s4.statsJson));
}

TEST(ShardRunner, WorkerCountDefaultsToOne)
{
    EXPECT_GE(activeExperimentWorkers(), 1u);
}

} // namespace
} // namespace janus
