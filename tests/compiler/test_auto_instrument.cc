/**
 * @file
 * Unit tests for the automated instrumentation pass (Section 4.5):
 * injection of PRE_ADDR / PRE_BOTH_VAL / PRE_BOTH, placement rules,
 * loop and conditional conservatism, and the library skip list.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "compiler/auto_instrument.hh"
#include "ir/builder.hh"

namespace janus
{
namespace
{

unsigned
countOps(const Function &fn, Opcode op)
{
    unsigned n = 0;
    for (const auto &bb : fn.blocks)
        for (const Instr &i : bb.instrs)
            n += i.op == op ? 1 : 0;
    return n;
}

/** Index of the first occurrence of op in the given block. */
int
firstIndex(const Function &fn, unsigned block, Opcode op)
{
    const auto &instrs = fn.blocks[block].instrs;
    for (unsigned i = 0; i < instrs.size(); ++i)
        if (instrs[i].op == op)
            return static_cast<int>(i);
    return -1;
}

TEST(AutoInstrument, InjectsAddrAndDataForSimpleStore)
{
    Module m;
    IrBuilder b(m);
    b.beginFunction("k", 2); // (addr, value)
    b.store(b.arg(0), b.arg(1), 0);
    b.clwb(b.arg(0), 8);
    b.sfence();
    b.ret();
    b.endFunction();

    InstrumentReport rep = autoInstrument(m, {});
    EXPECT_EQ(rep.writebacksFound, 1u);
    EXPECT_EQ(rep.addrInjected, 1u);
    EXPECT_EQ(rep.dataInjected, 1u);
    const Function &k = m.fn("k");
    EXPECT_EQ(countOps(k, Opcode::PreAddr), 1u);
    EXPECT_EQ(countOps(k, Opcode::PreBothVal), 1u);
    EXPECT_EQ(countOps(k, Opcode::PreInit), 2u);
    // Everything injected before the store (operands are args).
    EXPECT_LT(firstIndex(k, 0, Opcode::PreBothVal),
              firstIndex(k, 0, Opcode::Store));
    verify(m);
}

TEST(AutoInstrument, StoreWithOffsetGetsAddressMaterialized)
{
    Module m;
    IrBuilder b(m);
    b.beginFunction("k", 2);
    b.store(b.arg(0), b.arg(1), 24);
    b.clwb(b.arg(0), 32);
    b.sfence();
    b.ret();
    b.endFunction();
    autoInstrument(m, {});
    const Function &k = m.fn("k");
    // An AddI materializes addr+24 for the injected PRE_BOTH_VAL.
    int addi = firstIndex(k, 0, Opcode::AddI);
    int pre = firstIndex(k, 0, Opcode::PreBothVal);
    ASSERT_GE(addi, 0);
    EXPECT_LT(addi, pre);
    verify(m);
}

TEST(AutoInstrument, MemCpyBecomesPreBoth)
{
    Module m;
    IrBuilder b(m);
    b.beginFunction("k", 2); // (dst, src)
    b.memCpy(b.arg(0), b.arg(1), 128);
    b.clwb(b.arg(0), 128);
    b.sfence();
    b.ret();
    b.endFunction();
    InstrumentReport rep = autoInstrument(m, {});
    EXPECT_EQ(rep.dataInjected, 1u);
    EXPECT_EQ(countOps(m.fn("k"), Opcode::PreBoth), 1u);
    verify(m);
}

TEST(AutoInstrument, MemCpyHoistedOnlyPastSourceWrites)
{
    // scratch is written, then copied into the persistent object:
    // the injected PRE_BOTH must sit after the scratch write.
    Module m;
    IrBuilder b(m);
    b.beginFunction("k", 3); // (dst, scratch, value)
    b.store(b.arg(1), b.arg(2), 0); // fill scratch
    b.memCpy(b.arg(0), b.arg(1), 64);
    b.clwb(b.arg(0), 64);
    b.sfence();
    b.ret();
    b.endFunction();
    autoInstrument(m, {});
    const Function &k = m.fn("k");
    int scratch_write = firstIndex(k, 0, Opcode::Store);
    int pre = firstIndex(k, 0, Opcode::PreBoth);
    ASSERT_GE(pre, 0);
    EXPECT_GT(pre, scratch_write);
    verify(m);
}

TEST(AutoInstrument, WritebackInLoopSkipped)
{
    Module m;
    IrBuilder b(m);
    b.beginFunction("k", 2);
    int i = b.newReg();
    b.constTo(i, 0);
    unsigned head = b.newBlock();
    unsigned body = b.newBlock();
    unsigned done = b.newBlock();
    b.br(head);
    b.setBlock(head);
    int more = b.cmpLt(i, b.arg(1));
    b.brCond(more, body, done);
    b.setBlock(body);
    int addr = b.add(b.arg(0), i);
    b.store(addr, i, 0);
    b.clwb(addr, 8);
    b.movTo(i, b.addI(i, 64));
    b.br(head);
    b.setBlock(done);
    b.sfence();
    b.ret();
    b.endFunction();

    InstrumentReport rep = autoInstrument(m, {});
    EXPECT_EQ(rep.writebacksFound, 1u);
    EXPECT_EQ(rep.writebacksInLoop, 1u);
    EXPECT_EQ(rep.addrInjected, 0u);
    EXPECT_EQ(rep.dataInjected, 0u);
}

TEST(AutoInstrument, ConditionalWritebackStaysGuarded)
{
    // The writeback sits under a condition; the injected calls must
    // not land in the always-executed entry block.
    Module m;
    IrBuilder b(m);
    b.beginFunction("k", 3); // (cond, addr, val)
    unsigned wb = b.newBlock();
    unsigned out = b.newBlock();
    b.brCond(b.arg(0), wb, out);
    b.setBlock(wb);
    b.store(b.arg(1), b.arg(2), 0);
    b.clwb(b.arg(1), 8);
    b.sfence();
    b.br(out);
    b.setBlock(out);
    b.ret();
    b.endFunction();

    autoInstrument(m, {});
    const Function &k = m.fn("k");
    EXPECT_EQ(countOps(k, Opcode::PreAddr) +
                  countOps(k, Opcode::PreBothVal),
              2u);
    // Nothing in the entry block.
    EXPECT_EQ(firstIndex(k, 0, Opcode::PreAddr), -1);
    EXPECT_EQ(firstIndex(k, 0, Opcode::PreBothVal), -1);
    EXPECT_GE(firstIndex(k, wb, Opcode::PreAddr), 0);
    verify(m);
}

TEST(AutoInstrument, SkipListRespected)
{
    Module m;
    IrBuilder b(m);
    b.beginFunction("runtime_helper", 2);
    b.store(b.arg(0), b.arg(1), 0);
    b.clwb(b.arg(0), 8);
    b.sfence();
    b.ret();
    b.endFunction();
    InstrumentReport rep = autoInstrument(m, {"runtime_helper"});
    EXPECT_EQ(rep.writebacksFound, 0u);
    EXPECT_EQ(countOps(m.fn("runtime_helper"), Opcode::PreAddr), 0u);
}

TEST(AutoInstrument, RegisterSizedClwbKeepsSizeRegister)
{
    Module m;
    IrBuilder b(m);
    b.beginFunction("k", 3); // (addr, src, size)
    const int size_reg = b.arg(2);
    b.memCpyR(b.arg(0), b.arg(1), size_reg);
    b.clwbR(b.arg(0), size_reg);
    b.sfence();
    b.ret();
    b.endFunction();
    autoInstrument(m, {});
    const Function &k = m.fn("k");
    bool found = false;
    for (const Instr &i : k.blocks[0].instrs) {
        if (i.op == Opcode::PreAddr) {
            found = true;
            EXPECT_EQ(i.dst, size_reg); // size register carried over
        }
    }
    EXPECT_TRUE(found);
    verify(m);
}

TEST(AutoInstrument, UnrelatedStoreNotTreatedAsUpdate)
{
    Module m;
    IrBuilder b(m);
    b.beginFunction("k", 3); // (addr, other, val)
    b.store(b.arg(1), b.arg(2), 0); // different object
    b.clwb(b.arg(0), 8);
    b.sfence();
    b.ret();
    b.endFunction();
    InstrumentReport rep = autoInstrument(m, {});
    EXPECT_EQ(rep.dataInjected, 0u);
    EXPECT_EQ(rep.dataUnresolved, 1u);
    EXPECT_EQ(rep.addrInjected, 1u); // address still pre-executable
}

TEST(AutoInstrument, DerivedBaseRegistersMatch)
{
    // Store through addr+16 computed into a new register.
    Module m;
    IrBuilder b(m);
    b.beginFunction("k", 2);
    int field = b.addI(b.arg(0), 16);
    b.store(field, b.arg(1), 0);
    b.clwb(b.arg(0), 64);
    b.sfence();
    b.ret();
    b.endFunction();
    InstrumentReport rep = autoInstrument(m, {});
    EXPECT_EQ(rep.dataInjected, 1u);
    verify(m);
}

TEST(AutoInstrument, ReportToStringMentionsCounts)
{
    InstrumentReport rep;
    rep.writebacksFound = 3;
    rep.addrInjected = 2;
    std::string s = rep.toString();
    EXPECT_NE(s.find("writebacks 3"), std::string::npos);
    EXPECT_NE(s.find("PRE_ADDR 2"), std::string::npos);
}

} // namespace
} // namespace janus
