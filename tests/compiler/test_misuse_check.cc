/**
 * @file
 * Unit tests for the Janus-interface misuse detector (the tooling
 * the paper sketches in Section 6).
 */

#include <gtest/gtest.h>

#include "compiler/misuse_check.hh"
#include "ir/builder.hh"

namespace janus
{
namespace
{

unsigned
countKind(const std::vector<MisuseFinding> &fs,
          MisuseFinding::Kind kind)
{
    unsigned n = 0;
    for (const auto &f : fs)
        n += f.kind == kind ? 1 : 0;
    return n;
}

/** Pad with arithmetic so windows are comfortable. */
void
pad(IrBuilder &b, unsigned n)
{
    int r = b.constI(1);
    for (unsigned i = 0; i < n; ++i)
        r = b.addI(r, 1);
}

TEST(MisuseCheck, CleanProgramHasNoFindings)
{
    Module m;
    IrBuilder b(m);
    b.beginFunction("k", 2);
    int p = b.preInit();
    b.preBothVal(p, b.arg(0), b.arg(1));
    pad(b, 12);
    b.store(b.arg(0), b.arg(1), 0);
    b.clwb(b.arg(0), 8);
    b.sfence();
    b.ret();
    b.endFunction();
    EXPECT_TRUE(checkMisuse(m).empty());
}

TEST(MisuseCheck, DoubleUpdateFlagged)
{
    // Two stores to the pre-executed line before the writeback: the
    // snapshot will mismatch (guideline 1).
    Module m;
    IrBuilder b(m);
    b.beginFunction("k", 2);
    int p = b.preInit();
    b.preBothVal(p, b.arg(0), b.arg(1));
    pad(b, 12);
    b.store(b.arg(0), b.arg(1), 0);
    b.store(b.arg(0), b.arg(1), 8);
    b.clwb(b.arg(0), 16);
    b.sfence();
    b.ret();
    b.endFunction();
    auto findings = checkMisuse(m);
    EXPECT_EQ(countKind(findings,
                        MisuseFinding::Kind::ModifiedBeforeWrite),
              1u);
}

TEST(MisuseCheck, UselessPreExecutionFlagged)
{
    Module m;
    IrBuilder b(m);
    b.beginFunction("k", 2);
    int p = b.preInit();
    b.preAddr(p, b.arg(0), 64);
    // No clwb of arg(0) anywhere.
    b.store(b.arg(1), b.arg(0), 0);
    b.clwb(b.arg(1), 8);
    b.sfence();
    b.ret();
    b.endFunction();
    auto findings = checkMisuse(m);
    EXPECT_EQ(countKind(findings,
                        MisuseFinding::Kind::UselessPreExecution),
              1u);
}

TEST(MisuseCheck, TightWindowFlagged)
{
    Module m;
    IrBuilder b(m);
    b.beginFunction("k", 2);
    int p = b.preInit();
    b.preBothVal(p, b.arg(0), b.arg(1));
    b.store(b.arg(0), b.arg(1), 0);
    b.clwb(b.arg(0), 8); // two instructions after the PRE
    b.sfence();
    b.ret();
    b.endFunction();
    auto findings = checkMisuse(m);
    EXPECT_EQ(countKind(findings,
                        MisuseFinding::Kind::InsufficientWindow),
              1u);
}

TEST(MisuseCheck, CallsWidenTheWindowEstimate)
{
    Module m;
    IrBuilder b(m);
    b.beginFunction("helper", 0);
    b.ret();
    b.endFunction();
    b.beginFunction("k", 2);
    int p = b.preInit();
    b.preBothVal(p, b.arg(0), b.arg(1));
    b.call("helper", {}); // weighted as many instructions
    b.store(b.arg(0), b.arg(1), 0);
    b.clwb(b.arg(0), 8);
    b.sfence();
    b.ret();
    b.endFunction();
    auto findings = checkMisuse(m);
    EXPECT_EQ(countKind(findings,
                        MisuseFinding::Kind::InsufficientWindow),
              0u);
}

TEST(MisuseCheck, PreDataSourceMutationFlagged)
{
    Module m;
    IrBuilder b(m);
    b.beginFunction("k", 2); // (dst, src)
    int p = b.preInit();
    b.preData(p, b.arg(1), 64);
    b.store(b.arg(1), b.arg(0), 0); // clobber the snapshot source
    b.memCpy(b.arg(0), b.arg(1), 64);
    b.clwb(b.arg(0), 64);
    b.sfence();
    b.ret();
    b.endFunction();
    auto findings = checkMisuse(m);
    EXPECT_EQ(countKind(findings,
                        MisuseFinding::Kind::ModifiedBeforeWrite),
              1u);
}

TEST(MisuseCheck, FindingsCarryLocation)
{
    Module m;
    IrBuilder b(m);
    b.beginFunction("k", 2);
    int p = b.preInit();
    b.preAddr(p, b.arg(0), 64);
    b.ret();
    b.endFunction();
    auto findings = checkMisuse(m);
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].function, "k");
    EXPECT_NE(findings[0].message.find("@k"), std::string::npos);
    EXPECT_FALSE(toString(findings).empty());
}

} // namespace
} // namespace janus
