/**
 * @file
 * Unit tests for the 64-byte CacheLine value type.
 */

#include <gtest/gtest.h>

#include "common/cacheline.hh"

namespace janus
{
namespace
{

TEST(CacheLine, DefaultIsZero)
{
    CacheLine line;
    for (unsigned i = 0; i < CacheLine::size(); ++i)
        EXPECT_EQ(line.data()[i], 0);
}

TEST(CacheLine, Filled)
{
    CacheLine line = CacheLine::filled(0xAB);
    for (unsigned i = 0; i < CacheLine::size(); ++i)
        EXPECT_EQ(line.data()[i], 0xAB);
}

TEST(CacheLine, WordRoundTrip)
{
    CacheLine line;
    line.setWord(8, 0x1122334455667788ull);
    EXPECT_EQ(line.word(8), 0x1122334455667788ull);
    EXPECT_EQ(line.word(0), 0u);
    EXPECT_EQ(line.word(16), 0u);
}

TEST(CacheLine, WriteReadSubrange)
{
    CacheLine line;
    const char msg[] = "janus";
    line.write(3, msg, sizeof(msg));
    char out[sizeof(msg)];
    line.read(3, out, sizeof(msg));
    EXPECT_STREQ(out, "janus");
}

TEST(CacheLine, XorIsInvolution)
{
    CacheLine a = CacheLine::fromSeed(1);
    CacheLine b = CacheLine::fromSeed(2);
    CacheLine c = a;
    c ^= b;
    EXPECT_FALSE(c == a);
    c ^= b;
    EXPECT_TRUE(c == a);
}

TEST(CacheLine, FromSeedDeterministic)
{
    EXPECT_TRUE(CacheLine::fromSeed(99) == CacheLine::fromSeed(99));
    EXPECT_FALSE(CacheLine::fromSeed(99) == CacheLine::fromSeed(100));
}

TEST(CacheLine, EqualityComparesBytes)
{
    CacheLine a, b;
    EXPECT_TRUE(a == b);
    b.setWord(56, 1);
    EXPECT_FALSE(a == b);
}

TEST(CacheLine, HexDump)
{
    CacheLine line;
    line.data()[0] = 0x0F;
    line.data()[63] = 0xA0;
    std::string hex = line.toHex();
    ASSERT_EQ(hex.size(), 128u);
    EXPECT_EQ(hex.substr(0, 2), "0f");
    EXPECT_EQ(hex.substr(126, 2), "a0");
}

} // namespace
} // namespace janus
