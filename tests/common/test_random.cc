/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <set>

#include <gtest/gtest.h>

#include "common/random.hh"

namespace janus
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++equal;
    EXPECT_LT(equal, 2);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowOneIsAlwaysZero)
{
    Rng rng(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t v = rng.range(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u); // all four values hit
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(13);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng rng(19);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (rng.chance(0.25))
            ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, CoversFullRangeEventually)
{
    // Spot-check high bits are not stuck.
    Rng rng(23);
    std::uint64_t ored = 0;
    for (int i = 0; i < 64; ++i)
        ored |= rng.next();
    EXPECT_EQ(ored >> 60, 0xFull);
}

} // namespace
} // namespace janus
