/**
 * @file
 * Tests for the minimal JSON reader: full-syntax round trips,
 * escape/unicode decoding, accessor semantics, and error positions.
 * The parser underpins perf_diff and the observability-export
 * validation tests, so malformed input must fail loudly.
 */

#include <gtest/gtest.h>

#include "common/json.hh"

namespace janus
{
namespace
{

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(parseJson("null").isNull());
    EXPECT_TRUE(parseJson("true").asBool());
    EXPECT_FALSE(parseJson("false").asBool());
    EXPECT_DOUBLE_EQ(parseJson("42").asNumber(), 42.0);
    EXPECT_DOUBLE_EQ(parseJson("-3.5e2").asNumber(), -350.0);
    EXPECT_EQ(parseJson("\"hi\"").asString(), "hi");
}

TEST(Json, ParsesNestedStructure)
{
    JsonValue doc = parseJson(
        R"({"a": [1, 2, {"b": "c"}], "d": {"e": null}, "f": 1.5})");
    EXPECT_TRUE(doc.isObject());
    EXPECT_EQ(doc.size(), 3u);
    EXPECT_EQ(doc["a"].size(), 3u);
    EXPECT_DOUBLE_EQ(doc["a"].at(1).asNumber(), 2.0);
    EXPECT_EQ(doc["a"].at(2)["b"].asString(), "c");
    EXPECT_TRUE(doc["d"]["e"].isNull());
    EXPECT_DOUBLE_EQ(doc["f"].asNumber(), 1.5);
}

TEST(Json, MemberOrderPreserved)
{
    JsonValue doc = parseJson(R"({"z": 1, "a": 2, "m": 3})");
    const auto &members = doc.members();
    ASSERT_EQ(members.size(), 3u);
    EXPECT_EQ(members[0].first, "z");
    EXPECT_EQ(members[1].first, "a");
    EXPECT_EQ(members[2].first, "m");
}

TEST(Json, StringEscapes)
{
    JsonValue v =
        parseJson(R"("line\nbreak\t\"quoted\" \\ \/ \u0041")");
    EXPECT_EQ(v.asString(), "line\nbreak\t\"quoted\" \\ / A");
}

TEST(Json, UnicodeEscapes)
{
    // U+00E9 (two-byte), U+20AC (three-byte), surrogate pair for
    // U+1F600 (four-byte).
    EXPECT_EQ(parseJson(R"("\u00e9")").asString(), "\xC3\xA9");
    EXPECT_EQ(parseJson(R"("\u20AC")").asString(), "\xE2\x82\xAC");
    EXPECT_EQ(parseJson(R"("\uD83D\uDE00")").asString(),
              "\xF0\x9F\x98\x80");
}

TEST(Json, WhitespaceTolerant)
{
    JsonValue doc =
        parseJson("  {\n\t\"a\" :\r\n [ 1 , 2 ]\n}  ");
    EXPECT_DOUBLE_EQ(doc["a"].at(0).asNumber(), 1.0);
}

TEST(Json, EmptyContainers)
{
    EXPECT_EQ(parseJson("{}").size(), 0u);
    EXPECT_EQ(parseJson("[]").size(), 0u);
    EXPECT_EQ(parseJson("{\"a\": []}")["a"].size(), 0u);
}

TEST(Json, GetAndHas)
{
    JsonValue doc = parseJson(R"({"present": 1})");
    EXPECT_TRUE(doc.has("present"));
    EXPECT_FALSE(doc.has("absent"));
    EXPECT_EQ(doc.get("absent"), nullptr);
    EXPECT_THROW(doc["absent"], JsonError);
    EXPECT_EQ(parseJson("[1]").get("key"), nullptr);
}

TEST(Json, TypeMismatchesThrow)
{
    JsonValue num = parseJson("7");
    EXPECT_THROW(num.asString(), JsonError);
    EXPECT_THROW(num.asArray(), JsonError);
    EXPECT_THROW(num.members(), JsonError);
    EXPECT_THROW(parseJson("[1]").at(1), JsonError);
}

TEST(Json, MalformedInputThrows)
{
    EXPECT_THROW(parseJson(""), JsonError);
    EXPECT_THROW(parseJson("{"), JsonError);
    EXPECT_THROW(parseJson("[1, ]"), JsonError);
    EXPECT_THROW(parseJson("{\"a\" 1}"), JsonError);
    EXPECT_THROW(parseJson("\"unterminated"), JsonError);
    EXPECT_THROW(parseJson("nul"), JsonError);
    EXPECT_THROW(parseJson("01x"), JsonError);
    EXPECT_THROW(parseJson("1 2"), JsonError); // trailing garbage
    EXPECT_THROW(parseJson("\"\\u12G4\""), JsonError);
    EXPECT_THROW(parseJson("\"\\uD800x\""), JsonError);
}

TEST(Json, ErrorCarriesOffset)
{
    try {
        parseJson("[1, 2, oops]");
        FAIL() << "expected JsonError";
    } catch (const JsonError &e) {
        EXPECT_EQ(e.offset(), 7u);
        EXPECT_NE(std::string(e.what()).find("byte 7"),
                  std::string::npos);
    }
}

TEST(Json, ParsesOwnBenchShape)
{
    // The exact shape bench_common.hh emits (abridged).
    JsonValue doc = parseJson(R"({
  "schema_version": 2,
  "bench": "fig1",
  "seed_override": null,
  "experiments": [
    {"label": "janus", "makespan_ticks": 123456,
     "critical_path": {"persists": 10, "total_ns": 800.0,
       "share_sum": 1.0,
       "edges": {"exec_aes": {"ns": 400.0, "share": 0.5}}}}
  ]
})");
    EXPECT_DOUBLE_EQ(doc["schema_version"].asNumber(), 2.0);
    EXPECT_TRUE(doc["seed_override"].isNull());
    const JsonValue &exp = doc["experiments"].at(0);
    EXPECT_DOUBLE_EQ(
        exp["critical_path"]["edges"]["exec_aes"]["share"]
            .asNumber(),
        0.5);
}

} // namespace
} // namespace janus
