/**
 * @file
 * Unit tests for the fundamental address/line helpers.
 */

#include <gtest/gtest.h>

#include "common/types.hh"

namespace janus
{
namespace
{

TEST(Types, LineAlignRoundsDown)
{
    EXPECT_EQ(lineAlign(0), 0u);
    EXPECT_EQ(lineAlign(1), 0u);
    EXPECT_EQ(lineAlign(63), 0u);
    EXPECT_EQ(lineAlign(64), 64u);
    EXPECT_EQ(lineAlign(0x12345), 0x12340u);
}

TEST(Types, LineOffset)
{
    EXPECT_EQ(lineOffset(0), 0u);
    EXPECT_EQ(lineOffset(63), 63u);
    EXPECT_EQ(lineOffset(64), 0u);
    EXPECT_EQ(lineOffset(0x1001), 1u);
}

TEST(Types, LineSpanZeroSize)
{
    EXPECT_EQ(lineSpan(0x100, 0), 0u);
}

TEST(Types, LineSpanWithinOneLine)
{
    EXPECT_EQ(lineSpan(0, 1), 1u);
    EXPECT_EQ(lineSpan(0, 64), 1u);
    EXPECT_EQ(lineSpan(10, 54), 1u);
}

TEST(Types, LineSpanCrossesBoundary)
{
    EXPECT_EQ(lineSpan(10, 55), 2u);
    EXPECT_EQ(lineSpan(0, 65), 2u);
    EXPECT_EQ(lineSpan(63, 2), 2u);
    EXPECT_EQ(lineSpan(0, 64 * 8), 8u);
    EXPECT_EQ(lineSpan(1, 64 * 8), 9u);
}

TEST(Types, TickLiterals)
{
    EXPECT_EQ(ticks::ns, 1000u);
    EXPECT_EQ(ticks::us, 1000u * 1000u);
    EXPECT_EQ(ticks::toNs(2500), 2u);
    EXPECT_DOUBLE_EQ(ticks::toNsF(2500), 2.5);
}

TEST(Types, LineShiftConsistent)
{
    EXPECT_EQ(1u << lineShift, lineBytes);
}

} // namespace
} // namespace janus
