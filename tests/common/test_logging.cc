/**
 * @file
 * Tests for RateLimitedWarn: at most N warnings per simulated
 * interval, deterministic window edges (a function of simulated time
 * alone), and exact emitted/suppressed accounting.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace janus
{
namespace
{

class RateLimitedWarnTest : public ::testing::Test
{
  protected:
    void SetUp() override { setQuiet(true); }
    void TearDown() override { setQuiet(false); }
};

TEST_F(RateLimitedWarnTest, CapsEmissionsPerInterval)
{
    RateLimitedWarn limiter(2, 100);
    for (Tick t = 0; t < 10; ++t)
        limiter.warn(t, "noisy %llu",
                     static_cast<unsigned long long>(t));
    EXPECT_EQ(limiter.emitted(), 2u);
    EXPECT_EQ(limiter.suppressed(), 8u);
}

TEST_F(RateLimitedWarnTest, BudgetRefillsEachInterval)
{
    RateLimitedWarn limiter(1, 100);
    limiter.warn(0, "a");
    limiter.warn(50, "b");   // same window: suppressed
    limiter.warn(100, "c");  // next window: emitted
    limiter.warn(250, "d");  // window [200,300): emitted
    limiter.warn(299, "e");  // same window: suppressed
    EXPECT_EQ(limiter.emitted(), 3u);
    EXPECT_EQ(limiter.suppressed(), 2u);
}

TEST_F(RateLimitedWarnTest, WindowEdgesAreAbsolute)
{
    // Windows advance in whole intervals from tick 0, so the edge at
    // t=200 exists whether or not anything happened in [100, 200).
    RateLimitedWarn limiter(1, 100);
    limiter.warn(30, "a");
    limiter.warn(230, "b"); // two windows later: emitted
    limiter.warn(260, "c"); // same window as b: suppressed
    limiter.warn(300, "d"); // fresh window: emitted
    EXPECT_EQ(limiter.emitted(), 3u);
    EXPECT_EQ(limiter.suppressed(), 1u);
}

TEST_F(RateLimitedWarnTest, ZeroIntervalNeverRolls)
{
    RateLimitedWarn limiter(3, 0);
    for (Tick t = 0; t < 1000; t += 100)
        limiter.warn(t, "x");
    EXPECT_EQ(limiter.emitted(), 3u);
    EXPECT_EQ(limiter.suppressed(), 7u);
}

TEST_F(RateLimitedWarnTest, QuietModeStillCounts)
{
    // Counters track policy decisions, not terminal output, so the
    // chaos campaigns can assert on them while running quiet.
    setQuiet(true);
    RateLimitedWarn limiter(1, 10);
    limiter.warn(0, "hidden");
    limiter.warn(1, "hidden");
    EXPECT_EQ(limiter.emitted(), 1u);
    EXPECT_EQ(limiter.suppressed(), 1u);
}

} // namespace
} // namespace janus
