/**
 * @file
 * Unit tests for the PCM device timing model: ADR acceptance,
 * write-queue back-pressure and bank/channel behaviour.
 */

#include <gtest/gtest.h>

#include "nvm/nvm_device.hh"

namespace janus
{
namespace
{

NvmConfig
smallConfig()
{
    NvmConfig config;
    config.banks = 2;
    config.writeQueueEntries = 2;
    return config;
}

TEST(NvmDevice, FirstWriteAcceptedImmediately)
{
    NvmDevice dev;
    EXPECT_EQ(dev.acceptWrite(0x0, 1000), 1000u);
}

TEST(NvmDevice, AcceptanceIsImmediateWhileQueueHasRoom)
{
    NvmDevice dev(smallConfig());
    EXPECT_EQ(dev.acceptWrite(0x000, 100), 100u);
    EXPECT_EQ(dev.acceptWrite(0x040, 200), 200u);
}

TEST(NvmDevice, FullQueueStallsAcceptance)
{
    NvmConfig config = smallConfig();
    NvmDevice dev(config);
    dev.acceptWrite(0x000, 0);
    dev.acceptWrite(0x040, 0);
    // Queue (2 entries) is full; the third write must wait for the
    // first drain, which takes tCWD + tBurst + tWR.
    Tick third = dev.acceptWrite(0x080, 0);
    EXPECT_GE(third, config.tCwd + config.tWr);
}

TEST(NvmDevice, QueueDrainsOverTime)
{
    NvmConfig config = smallConfig();
    NvmDevice dev(config);
    dev.acceptWrite(0x000, 0);
    dev.acceptWrite(0x040, 0);
    // Arriving long after both drains completed: accepted at once.
    Tick late = 10 * (config.tCwd + config.tBurst + config.tWr);
    EXPECT_EQ(dev.acceptWrite(0x080, late), late);
}

TEST(NvmDevice, OccupancyReflectsOutstandingDrains)
{
    NvmDevice dev(smallConfig());
    dev.acceptWrite(0x000, 0);
    dev.acceptWrite(0x040, 0);
    EXPECT_EQ(dev.queueOccupancy(0), 2u);
    EXPECT_EQ(dev.queueOccupancy(100 * ticks::us), 0u);
}

TEST(NvmDevice, ReadLatencyAtLeastRcdPlusCl)
{
    NvmConfig config;
    NvmDevice dev(config);
    Tick done = dev.read(0x0, 5000);
    EXPECT_GE(done, 5000 + config.tRcd + config.tCl);
}

TEST(NvmDevice, ReadWaitsForBusyBank)
{
    NvmConfig config = smallConfig();
    NvmDevice dev(config);
    dev.acceptWrite(0x000, 0); // bank 0 busy for ~tWr
    Tick idle_read = dev.read(0x040, 0); // bank 1: only channel wait
    NvmDevice fresh(config);
    fresh.acceptWrite(0x000, 0);
    Tick busy_read = fresh.read(0x000, 0); // bank 0: waits for write
    EXPECT_GT(busy_read, idle_read);
    EXPECT_GE(busy_read, config.tCwd + config.tBurst + config.tWr);
}

TEST(NvmDevice, WritesCounted)
{
    NvmDevice dev;
    dev.acceptWrite(0x0, 0);
    dev.acceptWrite(0x40, 10);
    dev.read(0x0, 20);
    EXPECT_EQ(dev.writesAccepted(), 2u);
    EXPECT_EQ(dev.readsIssued(), 1u);
}

TEST(NvmDevice, SustainedOverloadGrowsStall)
{
    // Writes arriving faster than the drain rate must see growing
    // acceptance delay once the queue is full.
    NvmConfig config = smallConfig();
    NvmDevice dev(config);
    Tick prev_delay = 0;
    bool grew = false;
    for (int i = 0; i < 50; ++i) {
        Tick arrival = static_cast<Tick>(i) * ticks::ns;
        Tick accepted = dev.acceptWrite(
            static_cast<Addr>(i) * lineBytes, arrival);
        Tick delay = accepted - arrival;
        if (delay > prev_delay)
            grew = true;
        prev_delay = delay;
    }
    EXPECT_TRUE(grew);
    EXPECT_GT(dev.avgAcceptStall(), 0.0);
}

TEST(NvmDevice, ConfigValidation)
{
    NvmConfig config;
    config.banks = 0;
    EXPECT_DEATH(NvmDevice{config}, "bank");
}

} // namespace
} // namespace janus
