/**
 * @file
 * Unit and property tests for Start-Gap wear leveling.
 */

#include <set>

#include <gtest/gtest.h>

#include "nvm/wear_level.hh"

namespace janus
{
namespace
{

TEST(StartGap, IdentityBeforeAnyRotation)
{
    StartGapWearLeveler wl(0x1000, 8, 10);
    for (std::uint64_t l = 0; l < 8; ++l)
        EXPECT_EQ(wl.translate(0x1000 + (l << lineShift)),
                  0x1000 + (l << lineShift));
}

TEST(StartGap, MappingIsInjectiveAndAvoidsGap)
{
    StartGapWearLeveler wl(0, 16, 1);
    for (int move = 0; move < 200; ++move) {
        std::set<Addr> frames;
        for (std::uint64_t l = 0; l < 16; ++l) {
            Addr f = wl.translate(l << lineShift);
            EXPECT_TRUE(frames.insert(f).second) << "collision";
            EXPECT_NE(f >> lineShift, wl.gap());
            EXPECT_LT(f >> lineShift, 17u); // N+1 frames
        }
        wl.onWrite();
    }
}

TEST(StartGap, OneLineMovesPerRotation)
{
    StartGapWearLeveler wl(0, 16, 1);
    for (int move = 0; move < 100; ++move) {
        std::vector<Addr> before(16);
        for (std::uint64_t l = 0; l < 16; ++l)
            before[l] = wl.translate(l << lineShift);
        std::uint64_t old_gap = wl.gap();
        EXPECT_TRUE(wl.onWrite());
        unsigned moved = 0;
        for (std::uint64_t l = 0; l < 16; ++l) {
            Addr now = wl.translate(l << lineShift);
            if (now != before[l]) {
                ++moved;
                // The moving line lands in the vacated gap frame.
                EXPECT_EQ(now >> lineShift, old_gap);
            }
        }
        EXPECT_EQ(moved, 1u);
    }
}

TEST(StartGap, GapIntervalThrottlesRotation)
{
    StartGapWearLeveler wl(0, 8, 10);
    unsigned rotations = 0;
    for (int w = 0; w < 100; ++w)
        rotations += wl.onWrite() ? 1 : 0;
    EXPECT_EQ(rotations, 10u);
    EXPECT_EQ(wl.rotations(), 10u);
}

TEST(StartGap, HotLineSpreadsOverFrames)
{
    // A single hot logical line must visit many frames over time.
    StartGapWearLeveler wl(0, 8, 1);
    std::set<Addr> frames_used;
    for (int w = 0; w < 9 * 8 + 1; ++w) {
        Addr frame = wl.translate(0);
        wl.recordFrameWrite(frame);
        frames_used.insert(frame);
        wl.onWrite();
    }
    // After a full lap plus, the hot line has lived in most frames.
    EXPECT_GE(frames_used.size(), 8u);
}

TEST(StartGap, FullLapAdvancesStart)
{
    StartGapWearLeveler wl(0, 4, 1);
    for (int w = 0; w < 5; ++w)
        wl.onWrite(); // 5 moves = one full lap for N=4
    EXPECT_EQ(wl.fullLaps(), 1u);
}

TEST(StartGap, OutOfRegionPanics)
{
    StartGapWearLeveler wl(0, 4, 1);
    EXPECT_DEATH(wl.translate(4 << lineShift), "outside");
}

TEST(StartGap, FrameWriteHistogram)
{
    StartGapWearLeveler wl(0, 4, 1);
    wl.recordFrameWrite(0);
    wl.recordFrameWrite(0);
    wl.recordFrameWrite(64);
    EXPECT_EQ(wl.frameWrites().at(0), 2u);
    EXPECT_EQ(wl.frameWrites().at(1), 1u);
}

} // namespace
} // namespace janus
