/**
 * @file
 * Unit and property tests for Start-Gap wear leveling.
 */

#include <set>
#include <unordered_map>

#include <gtest/gtest.h>

#include "nvm/wear_level.hh"

namespace janus
{
namespace
{

TEST(StartGap, IdentityBeforeAnyRotation)
{
    StartGapWearLeveler wl(0x1000, 8, 10);
    for (std::uint64_t l = 0; l < 8; ++l)
        EXPECT_EQ(wl.translate(0x1000 + (l << lineShift)),
                  0x1000 + (l << lineShift));
}

TEST(StartGap, MappingIsInjectiveAndAvoidsGap)
{
    StartGapWearLeveler wl(0, 16, 1);
    for (int move = 0; move < 200; ++move) {
        std::set<Addr> frames;
        for (std::uint64_t l = 0; l < 16; ++l) {
            Addr f = wl.translate(l << lineShift);
            EXPECT_TRUE(frames.insert(f).second) << "collision";
            EXPECT_NE(f >> lineShift, wl.gap());
            EXPECT_LT(f >> lineShift, 17u); // N+1 frames
        }
        wl.onWrite();
    }
}

TEST(StartGap, OneLineMovesPerRotation)
{
    StartGapWearLeveler wl(0, 16, 1);
    for (int move = 0; move < 100; ++move) {
        std::vector<Addr> before(16);
        for (std::uint64_t l = 0; l < 16; ++l)
            before[l] = wl.translate(l << lineShift);
        std::uint64_t old_gap = wl.gap();
        EXPECT_TRUE(wl.onWrite());
        unsigned moved = 0;
        for (std::uint64_t l = 0; l < 16; ++l) {
            Addr now = wl.translate(l << lineShift);
            if (now != before[l]) {
                ++moved;
                // The moving line lands in the vacated gap frame.
                EXPECT_EQ(now >> lineShift, old_gap);
            }
        }
        EXPECT_EQ(moved, 1u);
    }
}

TEST(StartGap, GapIntervalThrottlesRotation)
{
    StartGapWearLeveler wl(0, 8, 10);
    unsigned rotations = 0;
    for (int w = 0; w < 100; ++w)
        rotations += wl.onWrite() ? 1 : 0;
    EXPECT_EQ(rotations, 10u);
    EXPECT_EQ(wl.rotations(), 10u);
}

TEST(StartGap, HotLineSpreadsOverFrames)
{
    // A single hot logical line must visit many frames over time.
    StartGapWearLeveler wl(0, 8, 1);
    std::set<Addr> frames_used;
    for (int w = 0; w < 9 * 8 + 1; ++w) {
        Addr frame = wl.translate(0);
        wl.recordFrameWrite(frame);
        frames_used.insert(frame);
        wl.onWrite();
    }
    // After a full lap plus, the hot line has lived in most frames.
    EXPECT_GE(frames_used.size(), 8u);
}

TEST(StartGap, FullLapAdvancesStart)
{
    StartGapWearLeveler wl(0, 4, 1);
    for (int w = 0; w < 5; ++w)
        wl.onWrite(); // 5 moves = one full lap for N=4
    EXPECT_EQ(wl.fullLaps(), 1u);
}

TEST(StartGap, GapWrapKeepsBijection)
{
    // Drive the gap through its wrap boundary (gap 0 -> N with the
    // start pointer advancing) several times; the mapping must stay
    // a bijection onto the non-gap frames at every single step.
    StartGapWearLeveler wl(0, 8, 1);
    unsigned wraps = 0;
    for (int move = 0; move < 40; ++move) {
        const bool at_boundary = wl.gap() == 0;
        const std::uint64_t laps_before = wl.fullLaps();
        wl.onWrite();
        if (at_boundary) {
            ++wraps;
            // The wrap is exactly the lap hand-over.
            EXPECT_EQ(wl.gap(), 8u);
            EXPECT_EQ(wl.fullLaps(), laps_before + 1);
        } else {
            EXPECT_EQ(wl.fullLaps(), laps_before);
        }
        std::set<Addr> frames;
        for (std::uint64_t l = 0; l < 8; ++l) {
            Addr f = wl.translate(l << lineShift);
            EXPECT_TRUE(frames.insert(f).second)
                << "collision after move " << move;
            EXPECT_NE(f >> lineShift, wl.gap());
            EXPECT_LT(f >> lineShift, 9u);
        }
    }
    EXPECT_GE(wraps, 4u); // 40 moves / 9 per lap
}

TEST(StartGap, DataSurvivesFullRotation)
{
    // Functional model of the copy the device performs on each gap
    // move: mirror frame contents, copy the one relocated line, and
    // check every logical line still reads its own value after the
    // region has rotated through three full laps.
    constexpr std::uint64_t n = 8;
    StartGapWearLeveler wl(0, n, 1);
    std::unordered_map<Addr, std::uint64_t> frames;
    for (std::uint64_t l = 0; l < n; ++l)
        frames[wl.translate(l << lineShift)] = 1000 + l;

    for (int move = 0; move < 27; ++move) { // 3 laps of N+1 moves
        std::vector<Addr> before(n);
        for (std::uint64_t l = 0; l < n; ++l)
            before[l] = wl.translate(l << lineShift);
        ASSERT_TRUE(wl.onWrite());
        for (std::uint64_t l = 0; l < n; ++l) {
            Addr now = wl.translate(l << lineShift);
            if (now != before[l])
                frames[now] = frames[before[l]];
        }
        for (std::uint64_t l = 0; l < n; ++l)
            EXPECT_EQ(frames[wl.translate(l << lineShift)],
                      1000 + l)
                << "lost line " << l << " after move " << move;
    }
    EXPECT_EQ(wl.fullLaps(), 3u);
}

TEST(StartGap, OutOfRegionPanics)
{
    StartGapWearLeveler wl(0, 4, 1);
    EXPECT_DEATH(wl.translate(4 << lineShift), "outside");
}

TEST(StartGap, FrameWriteHistogram)
{
    StartGapWearLeveler wl(0, 4, 1);
    wl.recordFrameWrite(0);
    wl.recordFrameWrite(0);
    wl.recordFrameWrite(64);
    EXPECT_EQ(wl.frameWrites().at(0), 2u);
    EXPECT_EQ(wl.frameWrites().at(1), 1u);
}

} // namespace
} // namespace janus
