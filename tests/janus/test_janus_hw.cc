/**
 * @file
 * Unit tests for the Janus hardware front-end: IRB matching, the
 * Section 4.3.1 invalidation rules, queue capacities and drops,
 * entry aging and thread flush.
 */

#include <gtest/gtest.h>

#include "bmo/bmo_config.hh"
#include "janus/janus_hw.hh"

namespace janus
{
namespace
{

class JanusHwTest : public ::testing::Test
{
  protected:
    JanusHwTest()
        : graph_(buildStandardGraph(bmo_)), engine_(graph_, 0),
          backend_(bmo_), frontend_(cfg_, engine_, backend_)
    {}

    PreObjId
    obj(std::uint16_t id)
    {
        return PreObjId{id, 0, 0};
    }

    PreChunk
    both(Addr line, const CacheLine &data)
    {
        return PreChunk{line, data};
    }

    BmoConfig bmo_;
    JanusHwConfig cfg_;
    BmoGraph graph_;
    BmoEngine engine_;
    BmoBackendState backend_;
    JanusFrontend frontend_;
};

TEST_F(JanusHwTest, FullPreExecutionConsumedComplete)
{
    CacheLine data = CacheLine::fromSeed(1);
    frontend_.issueImmediate(obj(1), {both(0x1000, data)}, 0);
    // The write arrives long after the BMOs completed.
    ConsumeResult r = frontend_.consume(0x1000, data, 10 * ticks::us);
    EXPECT_TRUE(r.hadEntry);
    EXPECT_TRUE(r.fullyPreExecuted);
    EXPECT_FALSE(r.dataMismatch);
    EXPECT_LE(r.ready, 10 * ticks::us + cfg_.irbLookupLatency);
    EXPECT_EQ(frontend_.irbOccupancy(), 0u);
}

TEST_F(JanusHwTest, EarlyWriteWaitsForInFlightPreExecution)
{
    CacheLine data = CacheLine::fromSeed(2);
    frontend_.issueImmediate(obj(1), {both(0x1000, data)}, 0);
    // Write arrives 100 ns later; the ~691 ns BMO chain is mid-way.
    ConsumeResult r = frontend_.consume(0x1000, data, 100 * ticks::ns);
    EXPECT_TRUE(r.hadEntry);
    EXPECT_FALSE(r.fullyPreExecuted);
    EXPECT_GT(r.ready, 100 * ticks::ns);
    EXPECT_LT(r.ready, 800 * ticks::ns); // far less than restarting
}

TEST_F(JanusHwTest, NoEntryMeansNoResult)
{
    ConsumeResult r =
        frontend_.consume(0x2000, CacheLine::fromSeed(3), 1000);
    EXPECT_FALSE(r.hadEntry);
    EXPECT_EQ(r.ready, 1000u);
}

TEST_F(JanusHwTest, DataMismatchInvalidatesDataDependentWork)
{
    CacheLine predicted = CacheLine::fromSeed(4);
    CacheLine actual = CacheLine::fromSeed(5);
    frontend_.issueImmediate(obj(1), {both(0x1000, predicted)}, 0);
    ConsumeResult r =
        frontend_.consume(0x1000, actual, 10 * ticks::us);
    EXPECT_TRUE(r.hadEntry);
    EXPECT_TRUE(r.dataMismatch);
    EXPECT_FALSE(r.fullyPreExecuted);
    // Data-dependent work (D1's 321 ns at least) must be redone.
    EXPECT_GE(r.ready, 10 * ticks::us + 300 * ticks::ns);
    EXPECT_EQ(frontend_.dataMismatches(), 1u);
}

TEST_F(JanusHwTest, AddrOnlyThenDataMergesIntoOneEntry)
{
    // Fig. 8a: PRE_DATA then PRE_ADDR under one pre-object.
    CacheLine data = CacheLine::fromSeed(6);
    frontend_.issueImmediate(obj(1),
                             {PreChunk{std::nullopt, data}}, 0);
    EXPECT_EQ(frontend_.irbOccupancy(), 1u);
    frontend_.issueImmediate(obj(1),
                             {PreChunk{Addr(0x3000), std::nullopt}},
                             100 * ticks::ns);
    EXPECT_EQ(frontend_.irbOccupancy(), 1u); // merged, not new
    ConsumeResult r = frontend_.consume(0x3000, data, 10 * ticks::us);
    EXPECT_TRUE(r.hadEntry);
    EXPECT_TRUE(r.fullyPreExecuted);
}

TEST_F(JanusHwTest, DataOnlyEntryMatchedByContent)
{
    CacheLine data = CacheLine::fromSeed(7);
    frontend_.issueImmediate(obj(1),
                             {PreChunk{std::nullopt, data}}, 0);
    ConsumeResult r = frontend_.consume(0x4000, data, 10 * ticks::us);
    EXPECT_TRUE(r.hadEntry);
}

TEST_F(JanusHwTest, MetadataChangeInvalidatesDedupDependents)
{
    // Pre-execute against an empty dedup table, then make the data a
    // duplicate before the write arrives.
    CacheLine data = CacheLine::fromSeed(8);
    frontend_.issueImmediate(obj(1), {both(0x1000, data)}, 0);
    backend_.writeLine(0x9000, data); // now a dup target exists
    ConsumeResult r = frontend_.consume(0x1000, data, 10 * ticks::us);
    EXPECT_TRUE(r.hadEntry);
    EXPECT_TRUE(r.metadataInvalidated);
    EXPECT_FALSE(r.fullyPreExecuted);
    EXPECT_EQ(frontend_.metadataInvalidations(), 1u);
}

TEST_F(JanusHwTest, PreferMatchingSnapshotAmongSameLineEntries)
{
    // Two pre-executions of the same line (e.g. a flag toggled):
    // the consuming write picks the snapshot that matches.
    CacheLine v1 = CacheLine::fromSeed(9);
    CacheLine v2 = CacheLine::fromSeed(10);
    frontend_.issueImmediate(obj(1), {both(0x5000, v1)}, 0);
    frontend_.issueImmediate(obj(2), {both(0x5000, v2)}, 0);
    ConsumeResult r = frontend_.consume(0x5000, v1, 10 * ticks::us);
    EXPECT_TRUE(r.hadEntry);
    EXPECT_FALSE(r.dataMismatch);
    EXPECT_TRUE(r.fullyPreExecuted);
    // Both entries are retired by the write.
    EXPECT_EQ(frontend_.irbOccupancy(), 0u);
}

TEST_F(JanusHwTest, IrbCapacityDropsNewRequests)
{
    for (unsigned i = 0; i < cfg_.irbEntries + 8; ++i)
        frontend_.issueImmediate(
            obj(static_cast<std::uint16_t>(i + 1)),
            {both(0x10000 + Addr(i) * lineBytes,
                  CacheLine::fromSeed(i))},
            0);
    EXPECT_EQ(frontend_.irbOccupancy(), cfg_.irbEntries);
    EXPECT_EQ(frontend_.droppedIrb(), 8u);
}

TEST_F(JanusHwTest, OpQueueLimitsInFlightWork)
{
    JanusHwConfig tiny = cfg_;
    tiny.opQueueEntries = 2;
    JanusFrontend fe(tiny, engine_, backend_);
    for (unsigned i = 0; i < 5; ++i)
        fe.issueImmediate(obj(static_cast<std::uint16_t>(i + 1)),
                          {both(0x20000 + Addr(i) * lineBytes,
                                CacheLine::fromSeed(i))},
                          0);
    EXPECT_EQ(fe.droppedOpQueue(), 3u);
    // Once earlier sub-ops complete, new requests go through again.
    fe.issueImmediate(obj(99), {both(0x30000, CacheLine::fromSeed(9))},
                      10 * ticks::us);
    EXPECT_EQ(fe.droppedOpQueue(), 3u);
}

TEST_F(JanusHwTest, AgedEntriesExpire)
{
    frontend_.issueImmediate(obj(1),
                             {both(0x6000, CacheLine::fromSeed(1))},
                             0);
    EXPECT_EQ(frontend_.irbOccupancy(), 1u);
    // Issue far beyond the age limit; the stale entry is discarded.
    frontend_.issueImmediate(obj(2),
                             {both(0x7000, CacheLine::fromSeed(2))},
                             cfg_.maxEntryAge + ticks::ms);
    EXPECT_EQ(frontend_.agedOut(), 1u);
    ConsumeResult r = frontend_.consume(
        0x6000, CacheLine::fromSeed(1),
        cfg_.maxEntryAge + 2 * ticks::ms);
    EXPECT_FALSE(r.hadEntry);
}

TEST_F(JanusHwTest, ThreadFlushDropsOnlyThatThread)
{
    frontend_.issueImmediate(PreObjId{1, 7, 0},
                             {both(0x8000, CacheLine::fromSeed(1))},
                             0);
    frontend_.issueImmediate(PreObjId{1, 8, 0},
                             {both(0x8040, CacheLine::fromSeed(2))},
                             0);
    frontend_.flushThread(7);
    EXPECT_EQ(frontend_.irbOccupancy(), 1u);
    EXPECT_FALSE(
        frontend_.consume(0x8000, CacheLine::fromSeed(1), 1000)
            .hadEntry);
    EXPECT_TRUE(
        frontend_.consume(0x8040, CacheLine::fromSeed(2), 2000)
            .hadEntry);
}

TEST_F(JanusHwTest, FlushRangeForSwapOut)
{
    frontend_.issueImmediate(obj(1),
                             {both(0x9000, CacheLine::fromSeed(1))},
                             0);
    frontend_.issueImmediate(obj(2),
                             {both(0xA000, CacheLine::fromSeed(2))},
                             0);
    frontend_.flushRange(0x9000, 0x1000);
    EXPECT_EQ(frontend_.irbOccupancy(), 1u);
}

TEST_F(JanusHwTest, BufferedRequestsCoalesceFieldUpdates)
{
    // Fig. 8b: two buffered field updates to one line merge into a
    // single prediction.
    CacheLine base; // line starts zeroed
    CacheLine patch1 = base;
    patch1.setWord(0, 111);
    PreChunk c1{Addr(0xB000), patch1};
    c1.patchOffset = 0;
    c1.patchSize = 8;
    CacheLine patch2 = base;
    patch2.setWord(8, 222);
    PreChunk c2{Addr(0xB000), patch2};
    c2.patchOffset = 8;
    c2.patchSize = 8;
    frontend_.buffer(obj(1), {c1}, 0);
    frontend_.buffer(obj(1), {c2}, 0);
    EXPECT_EQ(frontend_.irbOccupancy(), 0u); // still parked
    frontend_.startBuffered(obj(1), 0);
    EXPECT_EQ(frontend_.irbOccupancy(), 1u);
    CacheLine merged = base;
    merged.setWord(0, 111);
    merged.setWord(8, 222);
    ConsumeResult r = frontend_.consume(0xB000, merged, 10 * ticks::us);
    EXPECT_TRUE(r.hadEntry);
    EXPECT_FALSE(r.dataMismatch);
    EXPECT_TRUE(r.fullyPreExecuted);
}

TEST_F(JanusHwTest, RequestQueueOverflowDropsOldestBuffered)
{
    JanusHwConfig tiny = cfg_;
    tiny.requestQueueEntries = 2;
    JanusFrontend fe(tiny, engine_, backend_);
    for (unsigned i = 0; i < 4; ++i)
        fe.buffer(obj(1),
                  {both(0xC000 + Addr(i) * lineBytes,
                        CacheLine::fromSeed(i))},
                  0);
    EXPECT_EQ(fe.droppedRequestQueue(), 2u);
    fe.startBuffered(obj(1), 0);
    EXPECT_EQ(fe.irbOccupancy(), 2u); // only the survivors launch
}

TEST_F(JanusHwTest, StartBufferedUnknownObjectIsHarmless)
{
    frontend_.startBuffered(obj(42), 0);
    EXPECT_EQ(frontend_.irbOccupancy(), 0u);
}

TEST_F(JanusHwTest, HitMissAndCoverageCounters)
{
    CacheLine data = CacheLine::fromSeed(20);
    // Miss: nothing pre-executed for this line.
    frontend_.consume(0x1000, data, 1000);
    EXPECT_EQ(frontend_.irbMisses(), 1u);
    EXPECT_EQ(frontend_.irbHits(), 0u);

    // Hit: a fully pre-executed entry.
    frontend_.issueImmediate(obj(1), {both(0x2000, data)}, 0);
    ConsumeResult r = frontend_.consume(0x2000, data, 10 * ticks::us);
    EXPECT_TRUE(r.fullyPreExecuted);
    EXPECT_EQ(frontend_.irbHits(), 1u);
    EXPECT_EQ(frontend_.irbMisses(), 1u);
    // A fully pre-executed consume covers every sub-op of the chain.
    EXPECT_GT(frontend_.preexecCoveredSubOps(), 0u);
    std::uint64_t covered = frontend_.preexecCoveredSubOps();

    // A data mismatch is still an IRB hit, but the data-dependent
    // sub-ops are not covered (they re-execute).
    frontend_.issueImmediate(obj(2),
                             {both(0x3000, CacheLine::fromSeed(21))},
                             0);
    ConsumeResult miss = frontend_.consume(
        0x3000, CacheLine::fromSeed(22), 20 * ticks::us);
    EXPECT_TRUE(miss.hadEntry);
    EXPECT_TRUE(miss.dataMismatch);
    EXPECT_EQ(frontend_.irbHits(), 2u);
    EXPECT_LT(frontend_.preexecCoveredSubOps() - covered, covered);
}

TEST_F(JanusHwTest, IrbOverflowWritesFallBackToMissPath)
{
    // Overflow the IRB, then consume a line whose pre-execution was
    // dropped: the write must take the ordinary non-pre-executed
    // path (no entry, no added latency) and account an IRB miss.
    for (unsigned i = 0; i < cfg_.irbEntries + 4; ++i)
        frontend_.issueImmediate(
            obj(static_cast<std::uint16_t>(i + 1)),
            {both(0x10000 + Addr(i) * lineBytes,
                  CacheLine::fromSeed(i))},
            0);
    EXPECT_EQ(frontend_.droppedIrb(), 4u);
    const unsigned dropped = cfg_.irbEntries + 2;
    const Addr line = 0x10000 + Addr(dropped) * lineBytes;
    ConsumeResult r = frontend_.consume(
        line, CacheLine::fromSeed(dropped), 10 * ticks::us);
    EXPECT_FALSE(r.hadEntry);
    EXPECT_EQ(r.ready, 10 * ticks::us); // write proceeds undelayed
    EXPECT_EQ(frontend_.irbMisses(), 1u);
    // A retained entry still hits.
    ConsumeResult hit = frontend_.consume(
        0x10000, CacheLine::fromSeed(0), 10 * ticks::us);
    EXPECT_TRUE(hit.hadEntry);
    EXPECT_EQ(frontend_.irbHits(), 1u);
}

TEST_F(JanusHwTest, DisableWindowDropsIssuesUntilExpiry)
{
    // An IRB ECC fault disables pre-execution for a window: issues
    // inside the window are dropped (and accounted), issues after it
    // flow again.
    frontend_.disableUntil(5 * ticks::us);
    EXPECT_TRUE(frontend_.disabled(0));
    EXPECT_TRUE(frontend_.disabled(5 * ticks::us - 1));
    EXPECT_FALSE(frontend_.disabled(5 * ticks::us));

    frontend_.issueImmediate(obj(1),
                             {both(0x1000, CacheLine::fromSeed(1))},
                             ticks::us);
    frontend_.buffer(obj(2), {both(0x2000, CacheLine::fromSeed(2))},
                     2 * ticks::us);
    frontend_.startBuffered(obj(3), 3 * ticks::us);
    EXPECT_EQ(frontend_.irbOccupancy(), 0u);
    EXPECT_EQ(frontend_.droppedDisabled(), 3u);

    // The line never pre-executed, so its write is a plain miss.
    ConsumeResult r = frontend_.consume(
        0x1000, CacheLine::fromSeed(1), 4 * ticks::us);
    EXPECT_FALSE(r.hadEntry);
    EXPECT_EQ(r.ready, 4 * ticks::us);

    frontend_.issueImmediate(obj(4),
                             {both(0x3000, CacheLine::fromSeed(3))},
                             6 * ticks::us);
    EXPECT_EQ(frontend_.irbOccupancy(), 1u);
    EXPECT_EQ(frontend_.droppedDisabled(), 3u);
}

TEST_F(JanusHwTest, HasEntryForTracksAddressedLines)
{
    EXPECT_FALSE(frontend_.hasEntryFor(0x1000));
    frontend_.issueImmediate(obj(1),
                             {both(0x1000, CacheLine::fromSeed(1))},
                             0);
    EXPECT_TRUE(frontend_.hasEntryFor(0x1000));
    // Data-only entries have no address to match.
    frontend_.issueImmediate(
        obj(2), {PreChunk{std::nullopt, CacheLine::fromSeed(2)}}, 0);
    EXPECT_FALSE(frontend_.hasEntryFor(0x2000));
    frontend_.consume(0x1000, CacheLine::fromSeed(1), 10 * ticks::us);
    EXPECT_FALSE(frontend_.hasEntryFor(0x1000));
}

TEST_F(JanusHwTest, IrbOccupancyGaugeTracksEntries)
{
    frontend_.issueImmediate(obj(1),
                             {both(0x1000, CacheLine::fromSeed(1))},
                             1000);
    frontend_.issueImmediate(obj(2),
                             {both(0x2000, CacheLine::fromSeed(2))},
                             2000);
    EXPECT_DOUBLE_EQ(frontend_.irbOccupancyGauge().current(), 2);
    EXPECT_DOUBLE_EQ(frontend_.irbOccupancyGauge().max(), 2);
    frontend_.consume(0x1000, CacheLine::fromSeed(1), 10 * ticks::us);
    EXPECT_DOUBLE_EQ(frontend_.irbOccupancyGauge().current(), 1);
    EXPECT_GT(frontend_.irbOccupancyGauge().timeAverage(), 0);
}

} // namespace
} // namespace janus
