/**
 * @file
 * Unit tests for the controller-side QoS state machine: GCRA
 * token-bucket shaping, the bounded admission queue with retry-after
 * backpressure, the per-request deadline shed path, the saturation
 * watchdog's hysteresis + dwell contract, and per-tenant counter
 * isolation. Everything here is pure integer-tick arithmetic — no
 * simulator needed.
 */

#include <gtest/gtest.h>

#include "memctrl/qos.hh"

namespace janus
{
namespace
{

QosConfig
twoTenantConfig()
{
    QosConfig cfg;
    cfg.enabled = true;
    cfg.admissionQueueEntries = 32;
    cfg.lowPriorityAdmitPct = 75;
    cfg.retryBackoffTicks = 1000;
    cfg.maxRetries = 4;
    cfg.watchdogEnterPct = 90;
    cfg.watchdogExitPct = 50;
    cfg.watchdogDwellTicks = 10000;
    cfg.tenants.push_back({"reader", 0, 0, 1, 0});
    cfg.tenants.push_back({"writer", 1, 0, 1, 0});
    return cfg;
}

// --- disabled == identity -------------------------------------------

TEST(Qos, DisabledIsIdentity)
{
    QosConfig cfg = twoTenantConfig();
    cfg.enabled = false;
    cfg.tenants[0].shapeIntervalTicks = 500;
    cfg.tenants[0].deadlineTicks = 1;
    QosManager qos(cfg);

    for (Tick now : {Tick(0), Tick(100), Tick(1000000)}) {
        EXPECT_EQ(qos.shapeDelay(0, now), 0u);
        AdmitDecision d = qos.admit(0, now, 0, 0, 1u << 20);
        EXPECT_EQ(d.outcome, AdmitOutcome::Admit);
        EXPECT_EQ(d.retryAfter, 0u);
    }
    qos.observeOccupancy(0, 1u << 20);
    EXPECT_FALSE(qos.saturated());
    EXPECT_EQ(qos.effectiveGroupCommitK(4), 4u);
    // Nothing was counted either.
    EXPECT_EQ(qos.counters(0).admitted, 0u);
    EXPECT_EQ(qos.counters(0).shapedLines, 0u);
}

// --- GCRA shaping ---------------------------------------------------

TEST(Qos, ShapingDelaysBackToBackLines)
{
    QosConfig cfg = twoTenantConfig();
    cfg.tenants[0].shapeIntervalTicks = 100;
    cfg.tenants[0].shapeBurstLines = 1;
    QosManager qos(cfg);

    // Burst of 1: first line free, then each successive line at the
    // same instant waits one more interval.
    EXPECT_EQ(qos.shapeDelay(0, 0), 0u);
    EXPECT_EQ(qos.shapeDelay(0, 0), 100u);
    EXPECT_EQ(qos.shapeDelay(0, 0), 200u);
    // A line arriving exactly on schedule pays nothing.
    EXPECT_EQ(qos.shapeDelay(0, 300), 0u);
    // Idle time earns no credit beyond the burst depth.
    EXPECT_EQ(qos.shapeDelay(0, 10000), 0u);
    EXPECT_EQ(qos.shapeDelay(0, 10000), 100u);

    EXPECT_EQ(qos.counters(0).shapedLines, 3u);
    EXPECT_EQ(qos.counters(0).throttleTicks, 100u + 200u + 100u);
}

TEST(Qos, ShapingBurstToleranceAdmitsBursts)
{
    QosConfig cfg = twoTenantConfig();
    cfg.tenants[0].shapeIntervalTicks = 100;
    cfg.tenants[0].shapeBurstLines = 4;
    QosManager qos(cfg);

    // Burst depth 4: four lines pass untouched, the fifth waits.
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(qos.shapeDelay(0, 0), 0u) << "line " << i;
    EXPECT_EQ(qos.shapeDelay(0, 0), 100u);
}

TEST(Qos, ShapingIsPerTenant)
{
    QosConfig cfg = twoTenantConfig();
    cfg.tenants[0].shapeIntervalTicks = 100;
    cfg.tenants[1].shapeIntervalTicks = 100;
    QosManager qos(cfg);

    EXPECT_EQ(qos.shapeDelay(0, 0), 0u);
    EXPECT_EQ(qos.shapeDelay(0, 0), 100u);
    // Tenant 1's bucket is untouched by tenant 0's spend.
    EXPECT_EQ(qos.shapeDelay(1, 0), 0u);
    EXPECT_EQ(qos.counters(0).shapedLines, 1u);
    EXPECT_EQ(qos.counters(1).shapedLines, 0u);
}

TEST(Qos, UnshapedTenantNeverWaits)
{
    QosConfig cfg = twoTenantConfig(); // shapeIntervalTicks == 0
    QosManager qos(cfg);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(qos.shapeDelay(0, 0), 0u);
    EXPECT_EQ(qos.counters(0).shapedLines, 0u);
}

// --- bounded admission + retry-after --------------------------------

TEST(Qos, QueueFullBouncesWithExponentialBackoff)
{
    QosConfig cfg = twoTenantConfig();
    QosManager qos(cfg);

    // Below the bound: admitted.
    EXPECT_EQ(qos.admit(0, 0, 0, 0, 31).outcome,
              AdmitOutcome::Admit);

    // At the bound: retry-after, doubling per attempt.
    Tick last = 0;
    for (unsigned attempt = 0; attempt < cfg.maxRetries; ++attempt) {
        AdmitDecision d = qos.admit(0, 0, 0, attempt, 32);
        ASSERT_EQ(d.outcome, AdmitOutcome::Retry) << attempt;
        EXPECT_EQ(d.retryAfter,
                  cfg.retryBackoffTicks << attempt);
        EXPECT_GT(d.retryAfter, last);
        last = d.retryAfter;
    }

    // Retry budget exhausted: terminal rejection.
    AdmitDecision d = qos.admit(0, 0, 0, cfg.maxRetries, 32);
    EXPECT_EQ(d.outcome, AdmitOutcome::Reject);

    EXPECT_EQ(qos.counters(0).admitted, 1u);
    EXPECT_EQ(qos.counters(0).retries, cfg.maxRetries);
    EXPECT_EQ(qos.counters(0).rejected, 1u);
}

TEST(Qos, LowPriorityHeadroomBitesFirst)
{
    QosConfig cfg = twoTenantConfig(); // bound 32, low-pri pct 75
    QosManager qos(cfg);

    // Occupancy 24 = 75% of 32: priority-1 tenant is bounced while
    // priority-0 still gets the full queue.
    EXPECT_EQ(qos.admit(1, 0, 0, 0, 24).outcome,
              AdmitOutcome::Retry);
    EXPECT_EQ(qos.admit(0, 0, 0, 0, 24).outcome,
              AdmitOutcome::Admit);
    EXPECT_EQ(qos.admit(1, 0, 0, 0, 23).outcome,
              AdmitOutcome::Admit);
}

// --- deadline shed --------------------------------------------------

TEST(Qos, DeadlinePassedShedsInsteadOfAdmitting)
{
    QosConfig cfg = twoTenantConfig();
    cfg.tenants[1].deadlineTicks = 500;
    QosManager qos(cfg);

    // Within the deadline: normal admission.
    EXPECT_EQ(qos.admit(1, 400, 0, 0, 0).outcome,
              AdmitOutcome::Admit);
    // Exactly at the deadline still admits (shed only when *past*).
    EXPECT_EQ(qos.admit(1, 500, 0, 0, 0).outcome,
              AdmitOutcome::Admit);
    // Past the deadline: shed, accounted to the right bucket.
    EXPECT_EQ(qos.admit(1, 501, 0, 0, 0).outcome, AdmitOutcome::Shed);
    EXPECT_EQ(qos.counters(1).shedDeadline, 1u);
    EXPECT_EQ(qos.counters(1).shedSaturation, 0u);
    // A tenant without a deadline never sheds this way.
    EXPECT_EQ(qos.admit(0, 1u << 30, 0, 0, 0).outcome,
              AdmitOutcome::Admit);
    EXPECT_EQ(qos.counters(0).shedDeadline, 0u);
}

// --- saturation watchdog --------------------------------------------

TEST(Qos, WatchdogHysteresisAndDwell)
{
    QosConfig cfg = twoTenantConfig();
    // bound 32: enter at >= 28 (90%), exit at <= 16 (50%).
    QosManager qos(cfg);

    EXPECT_FALSE(qos.saturated());
    qos.observeOccupancy(0, 27);
    EXPECT_FALSE(qos.saturated());
    qos.observeOccupancy(100, 28);
    EXPECT_TRUE(qos.saturated());
    EXPECT_EQ(qos.watchdogEnters(), 1u);

    // Inside the hysteresis band nothing changes, ever.
    qos.observeOccupancy(200, 20);
    EXPECT_TRUE(qos.saturated());

    // Below the exit threshold but inside the dwell window: held.
    qos.observeOccupancy(100 + cfg.watchdogDwellTicks - 1, 10);
    EXPECT_TRUE(qos.saturated());
    EXPECT_EQ(qos.watchdogExits(), 0u);

    // Past the dwell window: transition allowed.
    qos.observeOccupancy(100 + cfg.watchdogDwellTicks, 10);
    EXPECT_FALSE(qos.saturated());
    EXPECT_EQ(qos.watchdogExits(), 1u);

    // Re-enter obeys the dwell window too.
    qos.observeOccupancy(100 + cfg.watchdogDwellTicks + 1, 32);
    EXPECT_FALSE(qos.saturated());
    qos.observeOccupancy(100 + 2 * cfg.watchdogDwellTicks, 32);
    EXPECT_TRUE(qos.saturated());
    EXPECT_EQ(qos.watchdogEnters(), 2u);
}

TEST(Qos, SaturationShedsOnlyTheLowestPriorityTenant)
{
    QosConfig cfg = twoTenantConfig();
    QosManager qos(cfg);
    qos.observeOccupancy(0, 32); // force saturation
    ASSERT_TRUE(qos.saturated());

    EXPECT_EQ(qos.admit(1, 1, 1, 0, 0).outcome, AdmitOutcome::Shed);
    EXPECT_EQ(qos.counters(1).shedSaturation, 1u);
    // Priority 0 sails through (occupancy is below the bound here).
    EXPECT_EQ(qos.admit(0, 1, 1, 0, 0).outcome, AdmitOutcome::Admit);
    EXPECT_EQ(qos.counters(0).shedSaturation, 0u);
}

TEST(Qos, SingleTenantIsNeverSaturationShed)
{
    // With only priority-0 traffic there is nobody to sacrifice:
    // degradation falls back to backpressure, not shedding.
    QosConfig cfg = twoTenantConfig();
    cfg.tenants.pop_back();
    QosManager qos(cfg);
    qos.observeOccupancy(0, 32);
    ASSERT_TRUE(qos.saturated());
    EXPECT_EQ(qos.admit(0, 1, 1, 0, 0).outcome, AdmitOutcome::Admit);
    EXPECT_EQ(qos.counters(0).shedSaturation, 0u);
}

TEST(Qos, EffectiveGroupCommitWidensOnlyWhileSaturated)
{
    QosConfig cfg = twoTenantConfig();
    cfg.gcWidenFactor = 3;
    QosManager qos(cfg);

    EXPECT_EQ(qos.effectiveGroupCommitK(4), 4u);
    qos.observeOccupancy(0, 32);
    ASSERT_TRUE(qos.saturated());
    EXPECT_EQ(qos.effectiveGroupCommitK(4), 12u);
    // K <= 1 means group commit is off; saturation must not turn
    // it on.
    EXPECT_EQ(qos.effectiveGroupCommitK(0), 0u);
    EXPECT_EQ(qos.effectiveGroupCommitK(1), 1u);
}

// --- tenant mapping + counter isolation -----------------------------

TEST(Qos, TenantOfCoreMapsExplicitThenModulo)
{
    QosConfig cfg = twoTenantConfig();
    cfg.tenantOfCore = {1, 1};
    QosManager qos(cfg);
    EXPECT_EQ(qos.tenantOf(0), 1u);
    EXPECT_EQ(qos.tenantOf(1), 1u);
    // Cores beyond the vector fall back to core % tenants.
    EXPECT_EQ(qos.tenantOf(2), 0u);
    EXPECT_EQ(qos.tenantOf(3), 1u);
}

TEST(Qos, CountersAreIsolatedPerTenant)
{
    QosConfig cfg = twoTenantConfig();
    cfg.tenants[1].deadlineTicks = 10;
    // Park the watchdog far above the queue bound so the full-queue
    // retry below doesn't flip the channel into saturation shedding.
    cfg.watchdogEnterPct = 400;
    cfg.watchdogExitPct = 200;
    QosManager qos(cfg);

    // Tenant 0: 2 admits + 1 retry; tenant 1: 1 admit + 1 shed.
    qos.admit(0, 0, 0, 0, 0);
    qos.admit(0, 0, 0, 0, 0);
    qos.admit(0, 0, 0, 0, 32);
    qos.admit(1, 5, 0, 0, 0);
    qos.admit(1, 100, 0, 0, 0);

    EXPECT_EQ(qos.counters(0).admitted, 2u);
    EXPECT_EQ(qos.counters(0).retries, 1u);
    EXPECT_EQ(qos.counters(0).shedDeadline, 0u);
    EXPECT_EQ(qos.counters(1).admitted, 1u);
    EXPECT_EQ(qos.counters(1).retries, 0u);
    EXPECT_EQ(qos.counters(1).shedDeadline, 1u);
}

} // namespace
} // namespace janus
