/**
 * @file
 * Unit tests for the memory controller: per-mode write latency,
 * duplicate cancellation, metadata atomicity, counter-cache effect,
 * FIFO persist-domain ordering and the read path.
 */

#include <gtest/gtest.h>

#include "memctrl/memory_controller.hh"

namespace janus
{
namespace
{

MemCtrlConfig
config(WritePathMode mode)
{
    MemCtrlConfig c;
    c.mode = mode;
    return c;
}

TEST(MemoryController, SerializedLatencyMatchesTableOne)
{
    MemoryController mc(config(WritePathMode::Serialized));
    PersistResult r = mc.persistWrite(0x1000, CacheLine::fromSeed(1),
                                      ticks::us, false);
    // 819 ns of BMOs + the counter-cache cold miss extra (61 ns).
    EXPECT_EQ(r.persisted - ticks::us, 880 * ticks::ns);
}

TEST(MemoryController, ParallelLatencyIsCriticalPath)
{
    MemoryController mc(config(WritePathMode::Parallel));
    PersistResult r = mc.persistWrite(0x1000, CacheLine::fromSeed(1),
                                      ticks::us, false);
    // Cold counter-cache miss adds to E1 but off the critical path.
    EXPECT_EQ(r.persisted - ticks::us, 691 * ticks::ns);
}

TEST(MemoryController, NoBmoIsImmediate)
{
    MemoryController mc(config(WritePathMode::NoBmo));
    PersistResult r = mc.persistWrite(0x1000, CacheLine::fromSeed(1),
                                      ticks::us, false);
    EXPECT_EQ(r.persisted, ticks::us);
}

TEST(MemoryController, CounterCacheHitShortensSerializedWrite)
{
    MemoryController mc(config(WritePathMode::Serialized));
    Tick t1 = mc.persistWrite(0x1000, CacheLine::fromSeed(1),
                              ticks::us, false)
                  .persisted -
              ticks::us;
    Tick t2 = mc.persistWrite(0x1000, CacheLine::fromSeed(2),
                              ticks::us + 10 * ticks::us, false)
                  .persisted -
              (ticks::us + 10 * ticks::us);
    EXPECT_EQ(t1 - t2, 61 * ticks::ns); // miss(63) vs hit(2)
}

TEST(MemoryController, DuplicateWriteCancelled)
{
    MemoryController mc(config(WritePathMode::Parallel));
    CacheLine v = CacheLine::fromSeed(9);
    mc.persistWrite(0x1000, v, ticks::us, false);
    std::uint64_t writes_before = mc.device().writesAccepted();
    PersistResult r =
        mc.persistWrite(0x2000, v, 2 * ticks::us, false);
    EXPECT_TRUE(r.duplicate);
    // The data write never reaches the device.
    EXPECT_EQ(mc.device().writesAccepted(), writes_before);
}

TEST(MemoryController, MetaAtomicIssuesMetadataWrite)
{
    MemoryController mc(config(WritePathMode::Parallel));
    mc.persistWrite(0x1000, CacheLine::fromSeed(1), ticks::us, true);
    EXPECT_EQ(mc.metaAtomicWrites(), 1u);
    EXPECT_EQ(mc.device().writesAccepted(), 2u); // data + metadata
}

TEST(MemoryController, PersistDomainIsFifo)
{
    // A later pre-executed (cheap) write must not become durable
    // before an earlier expensive one.
    MemoryController mc(config(WritePathMode::Serialized));
    PersistResult slow = mc.persistWrite(
        0x1000, CacheLine::fromSeed(1), ticks::us, false);
    PersistResult fast = mc.persistWrite(
        0x2000, CacheLine::fromSeed(1), ticks::us + 1, false);
    // Second write is a duplicate (no device work) but still ordered.
    EXPECT_TRUE(fast.duplicate);
    EXPECT_GE(fast.persisted, slow.persisted);
}

TEST(MemoryController, FunctionalReadBackThroughBackend)
{
    MemoryController mc(config(WritePathMode::Janus));
    CacheLine v = CacheLine::fromSeed(3);
    mc.persistWrite(0x1000, v, ticks::us, false);
    ReadOutcome out = mc.backend().readLine(0x1000);
    EXPECT_TRUE(out.data == v);
    EXPECT_TRUE(out.macOk);
    EXPECT_TRUE(out.treeOk);
}

TEST(MemoryController, ReadLatencyCoversDeviceAndDecrypt)
{
    MemCtrlConfig c = config(WritePathMode::Parallel);
    MemoryController mc(c);
    Tick done = mc.readLine(0x1000, ticks::us);
    Tick base = c.nvm.tRcd + c.nvm.tCl + c.nvm.tBurst;
    EXPECT_GE(done - ticks::us, base);
    // Cold counter-cache miss: the metadata fetch dominates.
    EXPECT_GT(done - ticks::us, base + c.bmo.aesLatency);
    // Warm: OTP generation overlaps the data fetch.
    Tick done2 = mc.readLine(0x1000, 10 * ticks::us);
    EXPECT_LT(done2 - 10 * ticks::us, done - ticks::us);
}

TEST(MemoryController, JanusModeWithoutPreExecutionStillParallel)
{
    MemoryController mc(config(WritePathMode::Janus));
    PersistResult r = mc.persistWrite(0x1000, CacheLine::fromSeed(1),
                                      ticks::us, false);
    // IRB miss: parallel BMOs at write time plus the lookup cost.
    EXPECT_LE(r.persisted - ticks::us,
              (691 + 5) * ticks::ns);
    EXPECT_FALSE(r.fullyPreExecuted);
}

TEST(MemoryController, JanusConsumesFrontendResults)
{
    MemoryController mc(config(WritePathMode::Janus));
    CacheLine v = CacheLine::fromSeed(4);
    mc.frontend().issueImmediate(PreObjId{1, 0, 0},
                                 {PreChunk{Addr(0x1000), v}}, 0);
    PersistResult r =
        mc.persistWrite(0x1000, v, 10 * ticks::us, false);
    EXPECT_TRUE(r.fullyPreExecuted);
    EXPECT_LT(r.persisted - 10 * ticks::us, 20 * ticks::ns);
}

TEST(MemoryController, IrbEccFaultFallsBackToNonPreExecPath)
{
    // A certain IRB ECC fault: the pre-executed results are never
    // trusted — the write re-runs its BMOs on the ordinary parallel
    // path, still persists, and pre-execution is disabled for the
    // configured window.
    MemCtrlConfig c = config(WritePathMode::Janus);
    c.resilience.enabled = true;
    c.resilience.irbEccFaultRate = 1.0;
    c.resilience.irbEccDisableWindow = 5 * ticks::us;
    MemoryController mc(c);
    CacheLine v = CacheLine::fromSeed(4);
    mc.frontend().issueImmediate(PreObjId{1, 0, 0},
                                 {PreChunk{Addr(0x1000), v}}, 0);
    PersistResult r =
        mc.persistWrite(0x1000, v, 10 * ticks::us, false);
    EXPECT_FALSE(r.fullyPreExecuted);
    // Full parallel-path latency, not the pre-executed fast path.
    EXPECT_GE(r.persisted - 10 * ticks::us, 600 * ticks::ns);
    EXPECT_EQ(mc.resilience().counters().irbEccFaults, 1u);
    EXPECT_EQ(mc.resilience().counters().preExecDisabledWrites, 1u);
    // The write persisted: it reads back through the backend.
    EXPECT_TRUE(mc.backend().readLine(0x1000).data == v);
    // Inside the disable window new pre-executions are dropped.
    EXPECT_TRUE(mc.frontend().disabled(12 * ticks::us));
    mc.frontend().issueImmediate(PreObjId{2, 0, 0},
                                 {PreChunk{Addr(0x2000), v}},
                                 12 * ticks::us);
    EXPECT_EQ(mc.frontend().droppedDisabled(), 1u);
}

TEST(MemoryController, MetaLineMappingIsStable)
{
    MemoryController mc(config(WritePathMode::Parallel));
    Addr m0 = mc.metaLineOf(0x0);
    Addr m1 = mc.metaLineOf(0x40);
    Addr m4 = mc.metaLineOf(0x100);
    EXPECT_EQ(m0, m1); // four 16-byte entries share a line
    EXPECT_NE(m0, m4);
    EXPECT_EQ(lineOffset(m0), 0u);
}

TEST(MemoryController, WriteLatencyStatAccumulates)
{
    MemoryController mc(config(WritePathMode::Serialized));
    mc.persistWrite(0x1000, CacheLine::fromSeed(1), ticks::us, false);
    mc.persistWrite(0x1040, CacheLine::fromSeed(2), 2 * ticks::us,
                    false);
    EXPECT_EQ(mc.writes(), 2u);
    EXPECT_GT(mc.avgWriteLatencyNs(), 800.0);
}

TEST(MemoryController, StageBreakdownSumsToEndToEndLatency)
{
    // The persist-latency decomposition is an exact partition of
    // [arrival, persisted]: bmo + queue + order == total, per write
    // and therefore also in the per-stage sums.
    for (WritePathMode mode :
         {WritePathMode::NoBmo, WritePathMode::Serialized,
          WritePathMode::Parallel, WritePathMode::Janus}) {
        MemoryController mc(config(mode));
        Tick t = ticks::us;
        for (int i = 0; i < 8; ++i) {
            mc.persistWrite(0x1000 + 0x40 * i,
                            CacheLine::fromSeed(i), t, i % 3 == 0);
            t += (i % 2) ? 100 * ticks::ns : 2 * ticks::us;
        }
        const PersistBreakdown &bd = mc.breakdown();
        ASSERT_EQ(bd.totalNs.count(), 8u);
        EXPECT_EQ(bd.bmoNs.count(), 8u);
        EXPECT_EQ(bd.queueNs.count(), 8u);
        EXPECT_EQ(bd.orderNs.count(), 8u);
        EXPECT_NEAR(bd.bmoNs.sum() + bd.queueNs.sum() +
                        bd.orderNs.sum(),
                    bd.totalNs.sum(), 1e-6)
            << "mode " << static_cast<int>(mode);
        // The histogram records the same distribution.
        EXPECT_EQ(bd.totalHistNs.count(), 8u);
        EXPECT_NEAR(bd.totalHistNs.mean(), bd.totalNs.mean(), 1e-9);
        // The mean total matches the controller's headline stat.
        EXPECT_NEAR(bd.totalNs.mean(), mc.avgWriteLatencyNs(), 1e-9);
    }
}

TEST(MemoryController, TracerRecordsPersistPath)
{
    Tracer tracer(1 << 10);
    MemoryController mc(config(WritePathMode::Parallel));
    mc.setTracer(&tracer);
    mc.persistWrite(0x1000, CacheLine::fromSeed(1), ticks::us, false);
    EXPECT_GT(tracer.recorded(), 0u);

    // Stage spans, BMO sub-ops and bank activity all show up.
    bool saw_stage = false, saw_unit = false, saw_bank = false;
    for (std::size_t i = 0; i < tracer.size(); ++i) {
        const std::string &track =
            tracer.trackName(tracer.event(i).track);
        saw_stage |= track.rfind("mc.stream", 0) == 0;
        saw_unit |= track.rfind("bmoUnit", 0) == 0;
        saw_bank |= track.rfind("bank", 0) == 0;
    }
    EXPECT_TRUE(saw_stage);
    EXPECT_TRUE(saw_unit);
    EXPECT_TRUE(saw_bank);
}

} // namespace
} // namespace janus
