/**
 * @file
 * Unit tests for the memory controller: per-mode write latency,
 * duplicate cancellation, metadata atomicity, counter-cache effect,
 * FIFO persist-domain ordering and the read path.
 */

#include <memory>

#include <gtest/gtest.h>

#include "memctrl/memory_controller.hh"

namespace janus
{
namespace
{

MemCtrlConfig
config(WritePathMode mode)
{
    MemCtrlConfig c;
    c.mode = mode;
    return c;
}

TEST(MemoryController, SerializedLatencyMatchesTableOne)
{
    MemoryController mc(config(WritePathMode::Serialized));
    PersistResult r = mc.persistWrite(0x1000, CacheLine::fromSeed(1),
                                      ticks::us, false);
    // 819 ns of BMOs + the counter-cache cold miss extra (61 ns).
    EXPECT_EQ(r.persisted - ticks::us, 880 * ticks::ns);
}

TEST(MemoryController, ParallelLatencyIsCriticalPath)
{
    MemoryController mc(config(WritePathMode::Parallel));
    PersistResult r = mc.persistWrite(0x1000, CacheLine::fromSeed(1),
                                      ticks::us, false);
    // Cold counter-cache miss adds to E1 but off the critical path.
    EXPECT_EQ(r.persisted - ticks::us, 691 * ticks::ns);
}

TEST(MemoryController, NoBmoIsImmediate)
{
    MemoryController mc(config(WritePathMode::NoBmo));
    PersistResult r = mc.persistWrite(0x1000, CacheLine::fromSeed(1),
                                      ticks::us, false);
    EXPECT_EQ(r.persisted, ticks::us);
}

TEST(MemoryController, CounterCacheHitShortensSerializedWrite)
{
    MemoryController mc(config(WritePathMode::Serialized));
    Tick t1 = mc.persistWrite(0x1000, CacheLine::fromSeed(1),
                              ticks::us, false)
                  .persisted -
              ticks::us;
    Tick t2 = mc.persistWrite(0x1000, CacheLine::fromSeed(2),
                              ticks::us + 10 * ticks::us, false)
                  .persisted -
              (ticks::us + 10 * ticks::us);
    EXPECT_EQ(t1 - t2, 61 * ticks::ns); // miss(63) vs hit(2)
}

TEST(MemoryController, DuplicateWriteCancelled)
{
    MemoryController mc(config(WritePathMode::Parallel));
    CacheLine v = CacheLine::fromSeed(9);
    mc.persistWrite(0x1000, v, ticks::us, false);
    std::uint64_t writes_before = mc.device().writesAccepted();
    PersistResult r =
        mc.persistWrite(0x2000, v, 2 * ticks::us, false);
    EXPECT_TRUE(r.duplicate);
    // The data write never reaches the device.
    EXPECT_EQ(mc.device().writesAccepted(), writes_before);
}

TEST(MemoryController, MetaAtomicIssuesMetadataWrite)
{
    MemoryController mc(config(WritePathMode::Parallel));
    mc.persistWrite(0x1000, CacheLine::fromSeed(1), ticks::us, true);
    EXPECT_EQ(mc.metaAtomicWrites(), 1u);
    EXPECT_EQ(mc.device().writesAccepted(), 2u); // data + metadata
}

TEST(MemoryController, PersistDomainIsFifo)
{
    // A later pre-executed (cheap) write must not become durable
    // before an earlier expensive one.
    MemoryController mc(config(WritePathMode::Serialized));
    PersistResult slow = mc.persistWrite(
        0x1000, CacheLine::fromSeed(1), ticks::us, false);
    PersistResult fast = mc.persistWrite(
        0x2000, CacheLine::fromSeed(1), ticks::us + 1, false);
    // Second write is a duplicate (no device work) but still ordered.
    EXPECT_TRUE(fast.duplicate);
    EXPECT_GE(fast.persisted, slow.persisted);
}

TEST(MemoryController, FunctionalReadBackThroughBackend)
{
    MemoryController mc(config(WritePathMode::Janus));
    CacheLine v = CacheLine::fromSeed(3);
    mc.persistWrite(0x1000, v, ticks::us, false);
    ReadOutcome out = mc.backend().readLine(0x1000);
    EXPECT_TRUE(out.data == v);
    EXPECT_TRUE(out.macOk);
    EXPECT_TRUE(out.treeOk);
}

TEST(MemoryController, ReadLatencyCoversDeviceAndDecrypt)
{
    MemCtrlConfig c = config(WritePathMode::Parallel);
    MemoryController mc(c);
    Tick done = mc.readLine(0x1000, ticks::us);
    Tick base = c.nvm.tRcd + c.nvm.tCl + c.nvm.tBurst;
    EXPECT_GE(done - ticks::us, base);
    // Cold counter-cache miss: the metadata fetch dominates.
    EXPECT_GT(done - ticks::us, base + c.bmo.aesLatency);
    // Warm: OTP generation overlaps the data fetch.
    Tick done2 = mc.readLine(0x1000, 10 * ticks::us);
    EXPECT_LT(done2 - 10 * ticks::us, done - ticks::us);
}

TEST(MemoryController, JanusModeWithoutPreExecutionStillParallel)
{
    MemoryController mc(config(WritePathMode::Janus));
    PersistResult r = mc.persistWrite(0x1000, CacheLine::fromSeed(1),
                                      ticks::us, false);
    // IRB miss: parallel BMOs at write time plus the lookup cost.
    EXPECT_LE(r.persisted - ticks::us,
              (691 + 5) * ticks::ns);
    EXPECT_FALSE(r.fullyPreExecuted);
}

TEST(MemoryController, JanusConsumesFrontendResults)
{
    MemoryController mc(config(WritePathMode::Janus));
    CacheLine v = CacheLine::fromSeed(4);
    mc.frontend().issueImmediate(PreObjId{1, 0, 0},
                                 {PreChunk{Addr(0x1000), v}}, 0);
    PersistResult r =
        mc.persistWrite(0x1000, v, 10 * ticks::us, false);
    EXPECT_TRUE(r.fullyPreExecuted);
    EXPECT_LT(r.persisted - 10 * ticks::us, 20 * ticks::ns);
}

TEST(MemoryController, IrbEccFaultFallsBackToNonPreExecPath)
{
    // A certain IRB ECC fault: the pre-executed results are never
    // trusted — the write re-runs its BMOs on the ordinary parallel
    // path, still persists, and pre-execution is disabled for the
    // configured window.
    MemCtrlConfig c = config(WritePathMode::Janus);
    c.resilience.enabled = true;
    c.resilience.irbEccFaultRate = 1.0;
    c.resilience.irbEccDisableWindow = 5 * ticks::us;
    MemoryController mc(c);
    CacheLine v = CacheLine::fromSeed(4);
    mc.frontend().issueImmediate(PreObjId{1, 0, 0},
                                 {PreChunk{Addr(0x1000), v}}, 0);
    PersistResult r =
        mc.persistWrite(0x1000, v, 10 * ticks::us, false);
    EXPECT_FALSE(r.fullyPreExecuted);
    // Full parallel-path latency, not the pre-executed fast path.
    EXPECT_GE(r.persisted - 10 * ticks::us, 600 * ticks::ns);
    EXPECT_EQ(mc.resilience().counters().irbEccFaults, 1u);
    EXPECT_EQ(mc.resilience().counters().preExecDisabledWrites, 1u);
    // The write persisted: it reads back through the backend.
    EXPECT_TRUE(mc.backend().readLine(0x1000).data == v);
    // Inside the disable window new pre-executions are dropped.
    EXPECT_TRUE(mc.frontend().disabled(12 * ticks::us));
    mc.frontend().issueImmediate(PreObjId{2, 0, 0},
                                 {PreChunk{Addr(0x2000), v}},
                                 12 * ticks::us);
    EXPECT_EQ(mc.frontend().droppedDisabled(), 1u);
}

TEST(MemoryController, MetaLineMappingIsStable)
{
    MemoryController mc(config(WritePathMode::Parallel));
    Addr m0 = mc.metaLineOf(0x0);
    Addr m1 = mc.metaLineOf(0x40);
    Addr m4 = mc.metaLineOf(0x100);
    EXPECT_EQ(m0, m1); // four 16-byte entries share a line
    EXPECT_NE(m0, m4);
    EXPECT_EQ(lineOffset(m0), 0u);
}

TEST(MemoryController, WriteLatencyStatAccumulates)
{
    MemoryController mc(config(WritePathMode::Serialized));
    mc.persistWrite(0x1000, CacheLine::fromSeed(1), ticks::us, false);
    mc.persistWrite(0x1040, CacheLine::fromSeed(2), 2 * ticks::us,
                    false);
    EXPECT_EQ(mc.writes(), 2u);
    EXPECT_GT(mc.avgWriteLatencyNs(), 800.0);
}

TEST(MemoryController, StageBreakdownSumsToEndToEndLatency)
{
    // The persist-latency decomposition is an exact partition of
    // [arrival, persisted]: bmo + queue + order == total, per write
    // and therefore also in the per-stage sums.
    for (WritePathMode mode :
         {WritePathMode::NoBmo, WritePathMode::Serialized,
          WritePathMode::Parallel, WritePathMode::Janus}) {
        MemoryController mc(config(mode));
        Tick t = ticks::us;
        for (int i = 0; i < 8; ++i) {
            mc.persistWrite(0x1000 + 0x40 * i,
                            CacheLine::fromSeed(i), t, i % 3 == 0);
            t += (i % 2) ? 100 * ticks::ns : 2 * ticks::us;
        }
        const PersistBreakdown &bd = mc.breakdown();
        ASSERT_EQ(bd.totalNs.count(), 8u);
        EXPECT_EQ(bd.bmoNs.count(), 8u);
        EXPECT_EQ(bd.queueNs.count(), 8u);
        EXPECT_EQ(bd.orderNs.count(), 8u);
        EXPECT_NEAR(bd.bmoNs.sum() + bd.queueNs.sum() +
                        bd.orderNs.sum(),
                    bd.totalNs.sum(), 1e-6)
            << "mode " << static_cast<int>(mode);
        // The histogram records the same distribution.
        EXPECT_EQ(bd.totalHistNs.count(), 8u);
        EXPECT_NEAR(bd.totalHistNs.mean(), bd.totalNs.mean(), 1e-9);
        // The mean total matches the controller's headline stat.
        EXPECT_NEAR(bd.totalNs.mean(), mc.avgWriteLatencyNs(), 1e-9);
    }
}

TEST(MemoryController, StreamlinedCoalescingShortensSameEpochWrites)
{
    // Default config: streamlined engine on, 64-write epochs. The
    // first write misses the whole tree path at full hash cost (the
    // PR-pinned 691 ns critical path); a second write in the same
    // epoch whose path was already queued coalesces every level down
    // to the bookkeeping latency, leaving the dedup chain critical.
    MemoryController mc(config(WritePathMode::Parallel));
    Tick t1 = mc.persistWrite(0x1000, CacheLine::fromSeed(1),
                              ticks::us, false)
                  .persisted -
              ticks::us;
    EXPECT_EQ(t1, 691 * ticks::ns);
    // 0x1040 is the sibling leaf: its path shares every interior
    // node with 0x1000's, so all nine levels coalesce.
    Tick t2 = mc.persistWrite(0x1040, CacheLine::fromSeed(2),
                              10 * ticks::us, false)
                  .persisted -
              10 * ticks::us;
    EXPECT_EQ(t2, 376 * ticks::ns);
    EXPECT_GT(mc.backend().merkleTree().coalescedPathLevels(), 0u);
}

TEST(MemoryController, StreamlinedOffReproducesLazyEngineTiming)
{
    MemCtrlConfig c = config(WritePathMode::Parallel);
    c.bmo.streamlinedIntegrity = false;
    MemoryController mc(c);
    Tick t1 = mc.persistWrite(0x1000, CacheLine::fromSeed(1),
                              ticks::us, false)
                  .persisted -
              ticks::us;
    Tick t2 = mc.persistWrite(0x1040, CacheLine::fromSeed(2),
                              10 * ticks::us, false)
                  .persisted -
              10 * ticks::us;
    EXPECT_EQ(t1, 691 * ticks::ns);
    EXPECT_EQ(t2, 691 * ticks::ns);
    EXPECT_EQ(mc.backend().merkleTree().coalescedPathLevels(), 0u);
    EXPECT_EQ(mc.engine().pipelinedSubOps(), 0u);
}

TEST(MemoryController, PipelinedTreeLevelsOverlapOutstandingWrites)
{
    // Two same-tick writes in different top-level subtrees on a
    // single BMO unit: without pipelining the second write's nine
    // tree levels serialize behind the first's in the unit pool;
    // with the streamlined engine each tree level is its own
    // pipeline stage, so the two paths overlap level-by-level.
    auto second_write_latency = [](bool streamlined) {
        MemCtrlConfig c = config(WritePathMode::Parallel);
        c.bmoUnits = 1;
        c.bmo.streamlinedIntegrity = streamlined;
        MemoryController mc(c);
        // Leaf of 0x1000 is 0x40; 1 << 24 leaves apart lands in a
        // different child of the root (height 9, fanout 8).
        Addr far = 0x1000 + (Addr(1) << 30);
        mc.persistWrite(0x1000, CacheLine::fromSeed(1), ticks::us,
                        false);
        return mc.persistWrite(far, CacheLine::fromSeed(2), ticks::us,
                               false)
                   .persisted -
               ticks::us;
    };
    Tick piped = second_write_latency(true);
    Tick pooled = second_write_latency(false);
    EXPECT_LT(piped, pooled);
}

TEST(MemoryController, StreamlinedTimingNeverTouchesFunctionalState)
{
    // Same traffic through a streamlined and a non-streamlined
    // controller: the functional image must be bit-identical (the
    // probe/epoch machinery is timing-only by construction).
    auto drive = [](bool streamlined) {
        MemCtrlConfig c = config(WritePathMode::Parallel);
        c.bmo.streamlinedIntegrity = streamlined;
        auto mc = std::make_unique<MemoryController>(c);
        Tick t = ticks::us;
        for (int i = 0; i < 40; ++i) {
            mc->persistWrite(0x1000 + 0x40 * (i % 16),
                             CacheLine::fromSeed(i % 7), t,
                             i % 5 == 0);
            t += (i % 3) ? 50 * ticks::ns : 3 * ticks::us;
        }
        return mc;
    };
    auto on = drive(true);
    auto off = drive(false);
    EXPECT_EQ(on->backend().merkleRoot().toHex(),
              off->backend().merkleRoot().toHex());
    EXPECT_EQ(on->backend().storageContentHash(),
              off->backend().storageContentHash());
    EXPECT_TRUE(on->backend().auditIntegrity());
    for (int i = 0; i < 16; ++i) {
        ReadOutcome a = on->backend().readLine(0x1000 + 0x40 * i);
        ReadOutcome b = off->backend().readLine(0x1000 + 0x40 * i);
        EXPECT_TRUE(a.data == b.data) << "line " << i;
        EXPECT_TRUE(a.macOk && b.macOk) << "line " << i;
        EXPECT_TRUE(a.treeOk && b.treeOk) << "line " << i;
    }
}

TEST(MemoryController, TracerRecordsPersistPath)
{
    Tracer tracer(1 << 10);
    MemoryController mc(config(WritePathMode::Parallel));
    mc.setTracer(&tracer);
    mc.persistWrite(0x1000, CacheLine::fromSeed(1), ticks::us, false);
    EXPECT_GT(tracer.recorded(), 0u);

    // Stage spans, BMO sub-ops and bank activity all show up.
    bool saw_stage = false, saw_unit = false, saw_bank = false;
    for (std::size_t i = 0; i < tracer.size(); ++i) {
        const std::string &track =
            tracer.trackName(tracer.event(i).track);
        saw_stage |= track.rfind("mc.stream", 0) == 0;
        saw_unit |= track.rfind("bmoUnit", 0) == 0;
        saw_bank |= track.rfind("bank", 0) == 0;
    }
    EXPECT_TRUE(saw_stage);
    EXPECT_TRUE(saw_unit);
    EXPECT_TRUE(saw_bank);
}

} // namespace
} // namespace janus
