/**
 * @file
 * Unit tests for the memory controller: per-mode write latency,
 * duplicate cancellation, metadata atomicity, counter-cache effect,
 * FIFO persist-domain ordering and the read path.
 */

#include <gtest/gtest.h>

#include "memctrl/memory_controller.hh"

namespace janus
{
namespace
{

MemCtrlConfig
config(WritePathMode mode)
{
    MemCtrlConfig c;
    c.mode = mode;
    return c;
}

TEST(MemoryController, SerializedLatencyMatchesTableOne)
{
    MemoryController mc(config(WritePathMode::Serialized));
    PersistResult r = mc.persistWrite(0x1000, CacheLine::fromSeed(1),
                                      ticks::us, false);
    // 819 ns of BMOs + the counter-cache cold miss extra (61 ns).
    EXPECT_EQ(r.persisted - ticks::us, 880 * ticks::ns);
}

TEST(MemoryController, ParallelLatencyIsCriticalPath)
{
    MemoryController mc(config(WritePathMode::Parallel));
    PersistResult r = mc.persistWrite(0x1000, CacheLine::fromSeed(1),
                                      ticks::us, false);
    // Cold counter-cache miss adds to E1 but off the critical path.
    EXPECT_EQ(r.persisted - ticks::us, 691 * ticks::ns);
}

TEST(MemoryController, NoBmoIsImmediate)
{
    MemoryController mc(config(WritePathMode::NoBmo));
    PersistResult r = mc.persistWrite(0x1000, CacheLine::fromSeed(1),
                                      ticks::us, false);
    EXPECT_EQ(r.persisted, ticks::us);
}

TEST(MemoryController, CounterCacheHitShortensSerializedWrite)
{
    MemoryController mc(config(WritePathMode::Serialized));
    Tick t1 = mc.persistWrite(0x1000, CacheLine::fromSeed(1),
                              ticks::us, false)
                  .persisted -
              ticks::us;
    Tick t2 = mc.persistWrite(0x1000, CacheLine::fromSeed(2),
                              ticks::us + 10 * ticks::us, false)
                  .persisted -
              (ticks::us + 10 * ticks::us);
    EXPECT_EQ(t1 - t2, 61 * ticks::ns); // miss(63) vs hit(2)
}

TEST(MemoryController, DuplicateWriteCancelled)
{
    MemoryController mc(config(WritePathMode::Parallel));
    CacheLine v = CacheLine::fromSeed(9);
    mc.persistWrite(0x1000, v, ticks::us, false);
    std::uint64_t writes_before = mc.device().writesAccepted();
    PersistResult r =
        mc.persistWrite(0x2000, v, 2 * ticks::us, false);
    EXPECT_TRUE(r.duplicate);
    // The data write never reaches the device.
    EXPECT_EQ(mc.device().writesAccepted(), writes_before);
}

TEST(MemoryController, MetaAtomicIssuesMetadataWrite)
{
    MemoryController mc(config(WritePathMode::Parallel));
    mc.persistWrite(0x1000, CacheLine::fromSeed(1), ticks::us, true);
    EXPECT_EQ(mc.metaAtomicWrites(), 1u);
    EXPECT_EQ(mc.device().writesAccepted(), 2u); // data + metadata
}

TEST(MemoryController, PersistDomainIsFifo)
{
    // A later pre-executed (cheap) write must not become durable
    // before an earlier expensive one.
    MemoryController mc(config(WritePathMode::Serialized));
    PersistResult slow = mc.persistWrite(
        0x1000, CacheLine::fromSeed(1), ticks::us, false);
    PersistResult fast = mc.persistWrite(
        0x2000, CacheLine::fromSeed(1), ticks::us + 1, false);
    // Second write is a duplicate (no device work) but still ordered.
    EXPECT_TRUE(fast.duplicate);
    EXPECT_GE(fast.persisted, slow.persisted);
}

TEST(MemoryController, FunctionalReadBackThroughBackend)
{
    MemoryController mc(config(WritePathMode::Janus));
    CacheLine v = CacheLine::fromSeed(3);
    mc.persistWrite(0x1000, v, ticks::us, false);
    ReadOutcome out = mc.backend().readLine(0x1000);
    EXPECT_TRUE(out.data == v);
    EXPECT_TRUE(out.macOk);
    EXPECT_TRUE(out.treeOk);
}

TEST(MemoryController, ReadLatencyCoversDeviceAndDecrypt)
{
    MemCtrlConfig c = config(WritePathMode::Parallel);
    MemoryController mc(c);
    Tick done = mc.readLine(0x1000, ticks::us);
    Tick base = c.nvm.tRcd + c.nvm.tCl + c.nvm.tBurst;
    EXPECT_GE(done - ticks::us, base);
    // Cold counter-cache miss: the metadata fetch dominates.
    EXPECT_GT(done - ticks::us, base + c.bmo.aesLatency);
    // Warm: OTP generation overlaps the data fetch.
    Tick done2 = mc.readLine(0x1000, 10 * ticks::us);
    EXPECT_LT(done2 - 10 * ticks::us, done - ticks::us);
}

TEST(MemoryController, JanusModeWithoutPreExecutionStillParallel)
{
    MemoryController mc(config(WritePathMode::Janus));
    PersistResult r = mc.persistWrite(0x1000, CacheLine::fromSeed(1),
                                      ticks::us, false);
    // IRB miss: parallel BMOs at write time plus the lookup cost.
    EXPECT_LE(r.persisted - ticks::us,
              (691 + 5) * ticks::ns);
    EXPECT_FALSE(r.fullyPreExecuted);
}

TEST(MemoryController, JanusConsumesFrontendResults)
{
    MemoryController mc(config(WritePathMode::Janus));
    CacheLine v = CacheLine::fromSeed(4);
    mc.frontend().issueImmediate(PreObjId{1, 0, 0},
                                 {PreChunk{Addr(0x1000), v}}, 0);
    PersistResult r =
        mc.persistWrite(0x1000, v, 10 * ticks::us, false);
    EXPECT_TRUE(r.fullyPreExecuted);
    EXPECT_LT(r.persisted - 10 * ticks::us, 20 * ticks::ns);
}

TEST(MemoryController, MetaLineMappingIsStable)
{
    MemoryController mc(config(WritePathMode::Parallel));
    Addr m0 = mc.metaLineOf(0x0);
    Addr m1 = mc.metaLineOf(0x40);
    Addr m4 = mc.metaLineOf(0x100);
    EXPECT_EQ(m0, m1); // four 16-byte entries share a line
    EXPECT_NE(m0, m4);
    EXPECT_EQ(lineOffset(m0), 0u);
}

TEST(MemoryController, WriteLatencyStatAccumulates)
{
    MemoryController mc(config(WritePathMode::Serialized));
    mc.persistWrite(0x1000, CacheLine::fromSeed(1), ticks::us, false);
    mc.persistWrite(0x1040, CacheLine::fromSeed(2), 2 * ticks::us,
                    false);
    EXPECT_EQ(mc.writes(), 2u);
    EXPECT_GT(mc.avgWriteLatencyNs(), 800.0);
}

} // namespace
} // namespace janus
