/**
 * @file
 * End-to-end validation of the critical-path persist profiler's core
 * invariant: across randomized workloads, write-path modes and
 * seeds, the per-edge attribution partitions the measured persist
 * latency tick-exactly (shareSum == 1, edge ticks sum to total), and
 * turning profiling off changes no timing field — the profiler is a
 * pure observer.
 *
 * Every persist additionally runs the per-persist partition assert
 * inside CritPathProfiler::addPersist, so a green run here means the
 * walk attributed every single persist of every configuration.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "harness/experiment.hh"

namespace janus
{
namespace
{

/** Aggregated edge ticks must sum to the aggregated total. */
void
expectExactPartition(const ExperimentResult &r)
{
    const CritPathSummary &cp = r.critPath;
    ASSERT_GT(cp.persists, 0u);
    std::uint64_t edge_sum = 0;
    for (std::uint64_t ticks : cp.edgeTicks)
        edge_sum += ticks;
    EXPECT_EQ(edge_sum, cp.totalTicks);
    EXPECT_DOUBLE_EQ(cp.shareSum(), 1.0);
    // The defensive catch-all stays empty on every known path.
    EXPECT_EQ(cp.ticksOf(CritEdge::Unattributed), 0u);
    // The profiler refines the same measurement avg_write_latency is
    // built from: the mean over the attributed persists agrees.
    double mean_ns = ticks::toNsF(cp.totalTicks) /
                     static_cast<double>(cp.persists);
    EXPECT_NEAR(mean_ns, r.avgWriteLatencyNs,
                1e-6 * r.avgWriteLatencyNs + 1e-6);
}

TEST(CritPathPartition, RandomizedAcrossModesWorkloadsSeeds)
{
    const WritePathMode modes[] = {WritePathMode::Serialized,
                                   WritePathMode::Parallel,
                                   WritePathMode::Janus};
    const char *workloads[] = {"array_swap", "queue", "hash_table",
                               "tatp"};
    std::uint64_t which = 0;
    for (WritePathMode mode : modes) {
        for (const char *name : workloads) {
            ExperimentConfig config;
            config.workloadName = name;
            config.workload.txnsPerCore = 25;
            // Vary seed, payload and duplication per combination so
            // the sweep exercises different DAG shapes and IRB
            // hit/miss mixes.
            config.workload.seed = 7 + which * 13;
            config.workload.dupRatio = (which % 3) * 0.4;
            config.sys.cores = 1 + which % 3;
            config.sys.mode = mode;
            config.instr = mode == WritePathMode::Janus
                               ? Instrumentation::Manual
                               : Instrumentation::None;
            ++which;
            ExperimentResult r = runExperiment(config);
            SCOPED_TRACE(std::string(name) + " mode " +
                         std::to_string(static_cast<int>(mode)));
            expectExactPartition(r);
        }
    }
}

TEST(CritPathPartition, NoBmoModePartitions)
{
    ExperimentConfig config;
    config.workloadName = "queue";
    config.workload.txnsPerCore = 30;
    config.sys.mode = WritePathMode::NoBmo;
    config.instr = Instrumentation::None;
    ExperimentResult r = runExperiment(config);
    expectExactPartition(r);
    // No BMOs: nothing can be attributed to execution edges.
    EXPECT_EQ(r.critPath.ticksOf(CritEdge::ExecAes), 0u);
    EXPECT_EQ(r.critPath.ticksOf(CritEdge::ExecHash), 0u);
}

TEST(CritPathPartition, ResilienceRetriesShowAsMediaRetry)
{
    ExperimentConfig config;
    config.workloadName = "array_swap";
    config.workload.txnsPerCore = 40;
    config.sys.mode = WritePathMode::Parallel;
    config.instr = Instrumentation::None;
    config.sys.resilience.enabled = true;
    config.sys.resilience.seed = 99;
    // Every program sticks a cell, so rewriting a line soon makes
    // its codeword uncorrectable: write-verify retries (and remap
    // programming) land on the persist critical path.
    config.sys.resilience.faults.stuckCellRate = 1.0;
    setQuiet(true);
    ExperimentResult r = runExperiment(config);
    setQuiet(false);
    expectExactPartition(r);
    EXPECT_GT(r.resilience.writeRetries, 0u);
    EXPECT_GT(r.critPath.ticksOf(CritEdge::MediaRetry), 0u);
}

TEST(CritPathPartition, JanusAttributesLookupAndPreExec)
{
    ExperimentConfig config;
    config.workloadName = "tatp";
    config.workload.txnsPerCore = 60;
    config.sys.mode = WritePathMode::Janus;
    config.instr = Instrumentation::Manual;
    ExperimentResult r = runExperiment(config);
    expectExactPartition(r);
    // Pre-execution hides BMO latency, so the Janus run must bill
    // part of the path to the IRB lookup.
    EXPECT_GT(r.critPath.ticksOf(CritEdge::IrbLookup), 0u);
}

TEST(CritPathPartition, ProfilingOffIsBitIdentical)
{
    const WritePathMode modes[] = {WritePathMode::Serialized,
                                   WritePathMode::Parallel,
                                   WritePathMode::Janus};
    for (WritePathMode mode : modes) {
        ExperimentConfig config;
        config.workloadName = "rb_tree";
        config.workload.txnsPerCore = 25;
        config.sys.mode = mode;
        config.instr = mode == WritePathMode::Janus
                           ? Instrumentation::Manual
                           : Instrumentation::None;
        ExperimentResult on = runExperiment(config);
        config.sys.profilePersist = false;
        ExperimentResult off = runExperiment(config);
        SCOPED_TRACE("mode " +
                     std::to_string(static_cast<int>(mode)));
        // Pure observer: not a single tick may move.
        EXPECT_EQ(on.makespan, off.makespan);
        EXPECT_EQ(on.persists, off.persists);
        EXPECT_EQ(on.avgWriteLatencyNs, off.avgWriteLatencyNs);
        EXPECT_EQ(on.stageBmoNs, off.stageBmoNs);
        EXPECT_EQ(on.stageQueueNs, off.stageQueueNs);
        EXPECT_EQ(on.stageOrderNs, off.stageOrderNs);
        EXPECT_EQ(on.persistP99Ns, off.persistP99Ns);
        EXPECT_EQ(on.fenceStallTicks, off.fenceStallTicks);
        EXPECT_EQ(on.eventsExecuted, off.eventsExecuted);
        // And the off-run collected nothing.
        EXPECT_EQ(off.critPath.persists, 0u);
        EXPECT_EQ(off.critPath.totalTicks, 0u);
        EXPECT_GT(on.critPath.persists, 0u);
    }
}

} // namespace
} // namespace janus
