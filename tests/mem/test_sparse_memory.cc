/**
 * @file
 * Unit tests for the sparse functional memory and region allocator.
 */

#include <cstring>
#include <utility>

#include <gtest/gtest.h>

#include "mem/sparse_memory.hh"

namespace janus
{
namespace
{

TEST(SparseMemory, ReadsZeroWhenUnbacked)
{
    SparseMemory mem;
    std::uint8_t buf[16];
    std::fill(std::begin(buf), std::end(buf), 0xFF);
    mem.read(0x123456, buf, sizeof(buf));
    for (std::uint8_t b : buf)
        EXPECT_EQ(b, 0);
    EXPECT_EQ(mem.pageCount(), 0u);
}

TEST(SparseMemory, WordRoundTrip)
{
    SparseMemory mem;
    mem.writeWord(0x1000, 0xCAFEBABEDEADBEEFull);
    EXPECT_EQ(mem.readWord(0x1000), 0xCAFEBABEDEADBEEFull);
}

TEST(SparseMemory, CrossPageAccess)
{
    SparseMemory mem;
    std::string msg = "crossing a 4K page boundary";
    Addr addr = SparseMemory::pageBytes - 5;
    mem.write(addr, msg.data(), static_cast<unsigned>(msg.size()));
    std::string out(msg.size(), '\0');
    mem.read(addr, out.data(), static_cast<unsigned>(out.size()));
    EXPECT_EQ(out, msg);
    EXPECT_EQ(mem.pageCount(), 2u);
}

TEST(SparseMemory, LineRoundTrip)
{
    SparseMemory mem;
    CacheLine line = CacheLine::fromSeed(77);
    mem.writeLine(0x4000, line);
    EXPECT_TRUE(mem.readLine(0x4000) == line);
    EXPECT_TRUE(mem.readLine(0x4040) == CacheLine());
}

TEST(SparseMemory, UnalignedLineAccessPanics)
{
    SparseMemory mem;
    EXPECT_DEATH(mem.readLine(0x4001), "unaligned");
}

TEST(SparseMemory, ClearDropsContents)
{
    SparseMemory mem;
    mem.writeWord(64, 42);
    mem.clear();
    EXPECT_EQ(mem.readWord(64), 0u);
    EXPECT_EQ(mem.pageCount(), 0u);
}

TEST(SparseMemory, CopyFromDeepCopies)
{
    SparseMemory a, b;
    a.writeWord(0, 11);
    b.copyFrom(a);
    a.writeWord(0, 22);
    EXPECT_EQ(b.readWord(0), 11u);
    EXPECT_EQ(a.readWord(0), 22u);
}

TEST(SparseMemory, PartialOverwrite)
{
    SparseMemory mem;
    mem.writeWord(0x100, 0x1111111111111111ull);
    std::uint8_t byte = 0xAB;
    mem.write(0x104, &byte, 1);
    EXPECT_EQ(mem.readWord(0x100), 0x111111AB11111111ull);
}

TEST(SparseMemory, LinePtrNullForUnbackedConst)
{
    const SparseMemory mem;
    EXPECT_EQ(mem.linePtr(0x8000), nullptr);
    EXPECT_EQ(mem.pageCount(), 0u);
}

TEST(SparseMemory, LinePtrSeesAndEditsStorage)
{
    SparseMemory mem;
    CacheLine line = CacheLine::fromSeed(5);
    mem.writeLine(0x2000, line);

    const SparseMemory &cmem = mem;
    const std::uint8_t *ro = cmem.linePtr(0x2000);
    ASSERT_NE(ro, nullptr);
    EXPECT_EQ(0, std::memcmp(ro, line.data(), lineBytes));

    std::uint8_t *rw = mem.linePtr(0x2000);
    rw[0] ^= 0xFF;
    EXPECT_EQ(mem.readLine(0x2000).data()[0], line.data()[0] ^ 0xFF);
}

TEST(SparseMemory, LinePtrMutableMaterializesZeroPage)
{
    SparseMemory mem;
    std::uint8_t *p = mem.linePtr(0x40);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(mem.pageCount(), 1u);
    for (unsigned i = 0; i < lineBytes; ++i)
        EXPECT_EQ(p[i], 0);
}

TEST(SparseMemory, PageCacheSurvivesInterleavedPages)
{
    // Alternate between lines on two pages (worst case for the
    // one-entry page cache) and across clear(); contents must be
    // exact throughout.
    SparseMemory mem;
    Addr a = 0, b = 16 * SparseMemory::pageBytes;
    for (unsigned round = 0; round < 3; ++round) {
        for (unsigned i = 0; i < 32; ++i) {
            mem.writeLine(a + i * lineBytes,
                          CacheLine::fromSeed(round * 100 + i));
            mem.writeLine(b + i * lineBytes,
                          CacheLine::fromSeed(round * 100 + i + 50));
        }
        for (unsigned i = 0; i < 32; ++i) {
            EXPECT_TRUE(mem.readLine(a + i * lineBytes) ==
                        CacheLine::fromSeed(round * 100 + i));
            EXPECT_TRUE(mem.readLine(b + i * lineBytes) ==
                        CacheLine::fromSeed(round * 100 + i + 50));
        }
        mem.clear();
        EXPECT_EQ(std::as_const(mem).linePtr(a), nullptr);
        EXPECT_TRUE(mem.readLine(a) == CacheLine());
    }
}

TEST(RegionAllocator, AlignsAndAdvances)
{
    RegionAllocator alloc(0x1000, 0x1000);
    Addr a = alloc.alloc(10);
    Addr b = alloc.alloc(10);
    EXPECT_EQ(a, 0x1000u);
    EXPECT_EQ(b % lineBytes, 0u);
    EXPECT_GT(b, a);
}

TEST(RegionAllocator, CustomAlignment)
{
    RegionAllocator alloc(0x1000, 0x10000);
    alloc.alloc(1);
    Addr a = alloc.alloc(8, 4096);
    EXPECT_EQ(a % 4096, 0u);
}

TEST(RegionAllocator, ExhaustionIsFatal)
{
    RegionAllocator alloc(0, 128);
    alloc.alloc(64);
    EXPECT_EXIT(alloc.alloc(128), testing::ExitedWithCode(1),
                "exhausted");
}

TEST(RegionAllocator, WatermarkTracksUse)
{
    RegionAllocator alloc(0x2000, 0x1000);
    EXPECT_EQ(alloc.watermark(), 0x2000u);
    alloc.alloc(100);
    EXPECT_EQ(alloc.watermark(), 0x2064u);
}

} // namespace
} // namespace janus
