/**
 * @file
 * WAL engine + group-commit tests: the scan/recovery procedure on
 * hand-constructed log images (clean tails, torn records per
 * variant, truncation exactly at the last durable record), the
 * appender workloads end to end, crash-audit sweeps over every
 * variant, and the group-commit contracts — K=1 is tick-identical
 * to off, fences are never reordered across, and gc-on sharded runs
 * stay deterministic across scheduler thread counts.
 */

#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fault/crash_audit.hh"
#include "fault/crash_points.hh"
#include "harness/system.hh"
#include "log/log_writer.hh"
#include "mem/sparse_memory.hh"
#include "txn/undo_log.hh"
#include "workloads/wal_append.hh"
#include "workloads/workload.hh"

namespace janus
{
namespace
{

constexpr Addr kLogBase = 1 << 20;

const std::vector<LogVariant> &
allVariants()
{
    static const std::vector<LogVariant> v = {
        LogVariant::Classic, LogVariant::ZeroCached,
        LogVariant::HeaderDancing, LogVariant::Mnemosyne};
    return v;
}

/** The deterministic payload the appender would stage for (core 0,
 *  seq), serialized to bytes. */
std::vector<std::uint8_t>
payloadBytes(std::uint64_t seq, std::size_t bytes, LogVariant v)
{
    std::vector<std::uint8_t> out(bytes);
    for (std::size_t w = 0; w < bytes / 8; ++w) {
        const std::uint64_t word =
            walPayloadWord(0, seq, w, v == LogVariant::Mnemosyne);
        std::memcpy(out.data() + w * 8, &word, 8);
    }
    return out;
}

/** Hand-append one complete record; returns the next header addr. */
Addr
appendRecord(SparseMemory &mem, Addr addr, std::uint64_t seq,
             std::size_t bytes, LogVariant v)
{
    const std::vector<std::uint8_t> payload =
        payloadBytes(seq, bytes, v);
    mem.writeWord(addr, seq);
    mem.writeWord(addr + 8, bytes);
    mem.writeWord(addr + 16, walChecksum(payload.data(), bytes, seq));
    mem.write(addr + walRecordHeaderBytes, payload.data(),
              static_cast<unsigned>(bytes));
    return addr + walRecordFootprint(bytes);
}

/** A log with n clean records of `bytes` payload each. */
Addr
buildCleanLog(SparseMemory &mem, unsigned n, std::size_t bytes,
              LogVariant v)
{
    Addr addr = kLogBase + walHeaderBytes;
    for (unsigned i = 1; i <= n; ++i)
        addr = appendRecord(mem, addr, i, bytes, v);
    return addr; // first unwritten header address
}

// --- scan / recovery on hand-built images ---------------------------

TEST(WalScan, CleanLogScansEveryVariant)
{
    for (LogVariant v : allVariants()) {
        SparseMemory mem;
        const Addr tail = buildCleanLog(mem, 5, 64, v);
        WalScanResult scan = scanWalLog(mem, kLogBase, v);
        EXPECT_FALSE(scan.sawTorn) << logVariantName(v);
        ASSERT_EQ(scan.records.size(), 5u) << logVariantName(v);
        EXPECT_EQ(scan.tailAddr, tail);
        for (unsigned i = 0; i < 5; ++i) {
            EXPECT_EQ(scan.records[i].seq, i + 1u);
            EXPECT_EQ(scan.records[i].payload,
                      payloadBytes(i + 1, 64, v));
        }
        // Nothing to truncate; the image is untouched.
        EXPECT_EQ(recoverWalLog(mem, kLogBase, v), 0u);
        EXPECT_EQ(mem.readWord(kLogBase + walHeaderBytes), 1u);
    }
}

TEST(WalScan, MixedRecordSizesWalkByFootprint)
{
    SparseMemory mem;
    Addr addr = kLogBase + walHeaderBytes;
    addr = appendRecord(mem, addr, 1, 64, LogVariant::HeaderDancing);
    addr = appendRecord(mem, addr, 2, 256, LogVariant::HeaderDancing);
    addr = appendRecord(mem, addr, 3, 8, LogVariant::HeaderDancing);
    WalScanResult scan =
        scanWalLog(mem, kLogBase, LogVariant::HeaderDancing);
    EXPECT_FALSE(scan.sawTorn);
    ASSERT_EQ(scan.records.size(), 3u);
    EXPECT_EQ(scan.records[1].payload.size(), 256u);
    EXPECT_EQ(scan.tailAddr, addr);
}

/** HeaderDancing writes the header first: a crash before the payload
 *  leaves a durable header whose checksum cannot validate. */
TEST(WalScan, HeaderWithoutPayloadIsTornForHeaderDancing)
{
    SparseMemory mem;
    const Addr torn_at =
        buildCleanLog(mem, 3, 64, LogVariant::HeaderDancing);
    // Durable header of record 4, payload never arrived (zeros).
    const std::vector<std::uint8_t> payload =
        payloadBytes(4, 64, LogVariant::HeaderDancing);
    mem.writeWord(torn_at, 4);
    mem.writeWord(torn_at + 8, 64);
    mem.writeWord(torn_at + 16, walChecksum(payload.data(), 64, 4));

    WalScanResult scan =
        scanWalLog(mem, kLogBase, LogVariant::HeaderDancing);
    EXPECT_TRUE(scan.sawTorn);
    EXPECT_EQ(scan.records.size(), 3u);
    EXPECT_EQ(scan.tailAddr, torn_at);

    // Recovery truncates exactly at the last durable record.
    EXPECT_EQ(recoverWalLog(mem, kLogBase,
                            LogVariant::HeaderDancing),
              1u);
    WalScanResult again =
        scanWalLog(mem, kLogBase, LogVariant::HeaderDancing);
    EXPECT_FALSE(again.sawTorn);
    EXPECT_EQ(again.records.size(), 3u);
    EXPECT_EQ(again.tailAddr, torn_at);
    // Truncation is idempotent.
    EXPECT_EQ(recoverWalLog(mem, kLogBase,
                            LogVariant::HeaderDancing),
              0u);
}

/** A partially persisted payload also fails the checksum. */
TEST(WalScan, PartialPayloadIsTornForHeaderDancing)
{
    SparseMemory mem;
    const Addr torn_at =
        buildCleanLog(mem, 2, 128, LogVariant::HeaderDancing);
    appendRecord(mem, torn_at, 3, 128, LogVariant::HeaderDancing);
    // Second payload line lost in the crash.
    CacheLine zero{};
    mem.writeLine(torn_at + walRecordHeaderBytes + lineBytes, zero);

    EXPECT_EQ(recoverWalLog(mem, kLogBase,
                            LogVariant::HeaderDancing),
              1u);
    EXPECT_EQ(
        scanWalLog(mem, kLogBase, LogVariant::HeaderDancing)
            .records.size(),
        2u);
}

/** Mnemosyne spots missing payload words by their clear torn bit —
 *  no checksum needed. */
TEST(WalScan, MissingTornBitIsTornForMnemosyne)
{
    SparseMemory mem;
    const Addr torn_at =
        buildCleanLog(mem, 3, 64, LogVariant::Mnemosyne);
    appendRecord(mem, torn_at, 4, 64, LogVariant::Mnemosyne);
    // One payload word never persisted: reads back zero, MSB clear.
    mem.writeWord(torn_at + walRecordHeaderBytes + 24, 0);

    WalScanResult scan =
        scanWalLog(mem, kLogBase, LogVariant::Mnemosyne);
    EXPECT_TRUE(scan.sawTorn);
    EXPECT_EQ(scan.records.size(), 3u);
    EXPECT_EQ(scan.tailAddr, torn_at);
    EXPECT_EQ(recoverWalLog(mem, kLogBase, LogVariant::Mnemosyne),
              1u);
    EXPECT_EQ(scanWalLog(mem, kLogBase, LogVariant::Mnemosyne)
                  .records.size(),
              3u);
}

/** The two-fence variants stop cleanly at the first zero seq; a
 *  durable header implies a durable payload, so no torn check. */
TEST(WalScan, TwoFenceVariantsStopCleanAtZeroSeq)
{
    for (LogVariant v :
         {LogVariant::Classic, LogVariant::ZeroCached}) {
        SparseMemory mem;
        const Addr tail = buildCleanLog(mem, 4, 64, v);
        WalScanResult scan = scanWalLog(mem, kLogBase, v);
        EXPECT_FALSE(scan.sawTorn) << logVariantName(v);
        EXPECT_EQ(scan.records.size(), 4u);
        EXPECT_EQ(scan.tailAddr, tail);
        EXPECT_EQ(recoverWalLog(mem, kLogBase, v), 0u);
    }
}

/** An implausible header (bad size, or a seq gap) terminates the
 *  scan as torn instead of walking garbage — every variant. */
TEST(WalScan, ImplausibleHeaderIsTorn)
{
    for (LogVariant v : allVariants()) {
        SparseMemory mem;
        Addr addr = buildCleanLog(mem, 2, 64, v);
        mem.writeWord(addr, 3);
        mem.writeWord(addr + 8, 12); // not a multiple of 8
        EXPECT_TRUE(scanWalLog(mem, kLogBase, v).sawTorn)
            << logVariantName(v);
        EXPECT_EQ(recoverWalLog(mem, kLogBase, v), 1u);

        SparseMemory gap;
        Addr gap_at = buildCleanLog(gap, 2, 64, v);
        appendRecord(gap, gap_at, 5, 64, v); // seq jumps 3 -> 5
        WalScanResult scan = scanWalLog(gap, kLogBase, v);
        EXPECT_TRUE(scan.sawTorn) << logVariantName(v);
        EXPECT_EQ(scan.records.size(), 2u);
    }
}

/** The checksum is seeded with seq: a stale record of identical
 *  content never validates under a new sequence number. */
TEST(WalChecksum, SeqSeedRejectsStaleRecords)
{
    const std::vector<std::uint8_t> payload =
        payloadBytes(3, 64, LogVariant::HeaderDancing);
    EXPECT_NE(walChecksum(payload.data(), 64, 3),
              walChecksum(payload.data(), 64, 4));

    SparseMemory mem;
    const Addr addr =
        buildCleanLog(mem, 2, 64, LogVariant::HeaderDancing);
    // Record 3 reuses record 2's payload + checksum (stale data).
    const std::vector<std::uint8_t> stale =
        payloadBytes(2, 64, LogVariant::HeaderDancing);
    mem.writeWord(addr, 3);
    mem.writeWord(addr + 8, 64);
    mem.writeWord(addr + 16, walChecksum(stale.data(), 64, 2));
    mem.write(addr + walRecordHeaderBytes, stale.data(), 64);
    EXPECT_TRUE(
        scanWalLog(mem, kLogBase, LogVariant::HeaderDancing)
            .sawTorn);
}

// --- appender workloads end to end ----------------------------------

/** One full simulated run of a WAL workload (Janus + manual
 *  pre-execution) with configurable group commit and fence group. */
struct WalRun
{
    Module module;
    std::unique_ptr<Workload> workload;
    std::unique_ptr<NvmSystem> system;
    SparseMemory initial; ///< pre-run image (crash reconstruction)
    Tick makespan = 0;
    unsigned cores;

    WalRun(const std::string &name, unsigned cores_in, unsigned k,
           unsigned g, unsigned shards = 1, unsigned threads = 1,
           bool journal = false)
        : cores(cores_in)
    {
        WorkloadParams params;
        params.txnsPerCore = 16;
        params.walGroup = g;
        workload = makeWorkload(name, params);
        buildTxnLibrary(module);
        workload->buildKernels(module, true);
        SystemConfig config;
        config.mode = WritePathMode::Janus;
        config.cores = cores;
        config.groupCommitK = k;
        config.shards = shards;
        config.shardThreads = threads;
        system = std::make_unique<NvmSystem>(config, module);
        if (journal)
            system->mc().enableJournal();
        std::vector<TxnSource> sources;
        for (unsigned c = 0; c < cores; ++c) {
            workload->setupCore(c, *system);
            sources.push_back(workload->source(c, *system));
        }
        initial.copyFrom(system->mem());
        makespan = system->run(std::move(sources));
    }

    void
    validateAll() const
    {
        for (unsigned c = 0; c < cores; ++c)
            workload->validate(system->mem(), c);
    }

    std::string
    statsJson() const
    {
        std::ostringstream os;
        system->dumpStatsJson(os);
        return os.str();
    }
};

TEST(WalAppend, EveryVariantAppendsAndValidates)
{
    for (const std::string &name : walWorkloadNames()) {
        WalRun run(name, 2, 0, 4);
        run.validateAll();
        // The per-core logs really carry txnsPerCore records.
        auto *wal =
            dynamic_cast<WalAppendWorkload *>(run.workload.get());
        ASSERT_NE(wal, nullptr) << name;
        for (unsigned c = 0; c < 2; ++c) {
            WalScanResult scan = scanWalLog(
                run.system->mem(), wal->walBase(c), wal->variant());
            EXPECT_FALSE(scan.sawTorn) << name;
            EXPECT_EQ(scan.records.size(), 16u) << name;
        }
    }
}

// --- group commit contracts -----------------------------------------

/** K=1 must be tick-identical to group commit off: same makespan,
 *  byte-identical stats dump, identical memory image. */
TEST(GroupCommit, KOneIsIdenticalToOff)
{
    for (const char *w : {"wal_header_dancing", "array_swap"}) {
        WalRun off(w, 2, 0, 4);
        WalRun k1(w, 2, 1, 4);
        EXPECT_EQ(off.makespan, k1.makespan) << w;
        EXPECT_EQ(off.statsJson(), k1.statsJson()) << w;
        EXPECT_EQ(off.system->mem().contentHash(),
                  k1.system->mem().contentHash())
            << w;
    }
}

/** Group commit defers ordering work but never changes what ends up
 *  durable: the final image matches the gc-off run, and the gc
 *  counters only appear in the dump when the feature is on. */
TEST(GroupCommit, BatchingPreservesTheFinalImage)
{
    WalRun off("wal_mnemosyne", 2, 0, 8);
    WalRun gc("wal_mnemosyne", 2, 8, 8);
    gc.validateAll();
    EXPECT_EQ(off.system->mem().contentHash(),
              gc.system->mem().contentHash());
    const std::string off_json = off.statsJson();
    const std::string gc_json = gc.statsJson();
    EXPECT_EQ(off_json.find("gcBatches"), std::string::npos);
    EXPECT_NE(gc_json.find("gcBatches"), std::string::npos);
    EXPECT_NE(gc_json.find("gcWritesDeferred"), std::string::npos);
}

/** No reorder across a fence: the journal records durable line
 *  persists in acceptance order, so per-stream durability ticks must
 *  be monotone — batching may defer a retire but never lets a
 *  post-fence write become durable before a pre-fence one. The WAL
 *  appends are strictly sequential, so each core's log region must
 *  also persist in strictly increasing address order. */
TEST(GroupCommit, NoReorderAcrossFence)
{
    WalRun run("wal_header_dancing", 2, 4, 4, 1, 1, true);
    run.validateAll();
    const auto &journal = run.system->mc().journal();
    ASSERT_GT(journal.size(), 32u);
    auto *wal =
        dynamic_cast<WalAppendWorkload *>(run.workload.get());
    ASSERT_NE(wal, nullptr);

    // Exact extent of each core's log, from the final image.
    std::vector<Addr> wal_end(run.cores);
    for (unsigned c = 0; c < run.cores; ++c)
        wal_end[c] = scanWalLog(run.system->mem(), wal->walBase(c),
                                wal->variant())
                         .tailAddr;

    std::vector<Tick> last_persisted(run.cores, 0);
    std::vector<Addr> last_addr(run.cores, 0);
    for (const JournalEntry &e : journal) {
        ASSERT_LT(e.stream, run.cores);
        EXPECT_GE(e.persisted, last_persisted[e.stream]);
        last_persisted[e.stream] = e.persisted;
        const Addr base = wal->walBase(e.stream);
        if (e.lineAddr >= base && e.lineAddr < wal_end[e.stream]) {
            EXPECT_GT(e.lineAddr, last_addr[e.stream]);
            last_addr[e.stream] = e.lineAddr;
        }
    }
    // Batching actually happened.
    EXPECT_NE(run.statsJson().find("gcBatches"), std::string::npos);
}

/** Gc-on sharded determinism: for every shard count, 1 and 4
 *  scheduler threads must produce identical simulations — the
 *  group-commit timers and batch closes are shard-local events. */
TEST(GroupCommit, ShardedDeterminismWithGcOn)
{
    for (unsigned shards : {1u, 2u, 4u}) {
        WalRun t1("wal_header_dancing", 4, 8, 8, shards, 1);
        WalRun t4("wal_header_dancing", 4, 8, 8, shards, 4);
        t1.validateAll();
        EXPECT_EQ(t1.makespan, t4.makespan) << "shards=" << shards;
        EXPECT_EQ(t1.statsJson(), t4.statsJson())
            << "shards=" << shards;
        EXPECT_EQ(t1.system->mem().contentHash(),
                  t4.system->mem().contentHash())
            << "shards=" << shards;
    }
}

// --- crash audit ----------------------------------------------------

class WalCrashSweep : public testing::TestWithParam<std::string>
{
};

/** Every WAL variant recovers at every sampled persist-boundary
 *  crash point: the torn tail truncates to the last durable record
 *  and the remaining records validate (crash_audit drives
 *  Workload::recover, which is recoverWalLog here). */
TEST_P(WalCrashSweep, SampledCrashPointsAllRecover)
{
    AuditConfig config;
    config.workload = GetParam();
    config.mode = WritePathMode::Janus;
    config.manual = true;
    config.txnsPerCore = 8;
    config.samplePoints = 48;
    config.injectionTrials = 0;
    AuditReport report = runCrashAudit(config);
    EXPECT_TRUE(report.passed()) << report.toJson();
    EXPECT_FALSE(report.hasFailure())
        << "repro: " << report.repro();
    EXPECT_GT(report.sweptPoints, 0u);
    EXPECT_TRUE(report.backendVerified);
}

INSTANTIATE_TEST_SUITE_P(AllVariants, WalCrashSweep,
                         testing::ValuesIn(walWorkloadNames()),
                         [](const auto &info) { return info.param; });

/** Mid-record crash images, end to end: reconstruct the durable
 *  image at EVERY journal prefix of a real run — including the
 *  prefixes the audit's tick-based plan cannot split, where a
 *  single-fence variant's header is durable but its payload is not —
 *  and require recovery + validation to hold at each one. The
 *  header-first variants must actually exercise truncation; the
 *  payload-first (two-fence) variants must never need it, since a
 *  durable header implies a durable payload. */
TEST(WalCrashImages, EveryJournalPrefixRecovers)
{
    for (const std::string &name : walWorkloadNames()) {
        WalRun run(name, 1, 0, 1, 1, 1, true);
        auto *wal =
            dynamic_cast<WalAppendWorkload *>(run.workload.get());
        ASSERT_NE(wal, nullptr) << name;
        const auto &journal = run.system->mc().journal();
        ASSERT_GT(journal.size(), 16u) << name;

        PersistentImageBuilder builder(run.initial, journal);
        unsigned truncations = 0;
        for (std::size_t prefix = 0; prefix <= journal.size();
             ++prefix) {
            SparseMemory image;
            image.copyFrom(builder.imageAt(prefix));
            const unsigned t = wal->recover(image, 0);
            EXPECT_LE(t, 1u) << name << " prefix " << prefix;
            truncations += t;
            wal->validateRecovered(image, 0);
            // Truncation lands exactly at the last durable record.
            EXPECT_FALSE(
                scanWalLog(image, wal->walBase(0), wal->variant())
                    .sawTorn)
                << name << " prefix " << prefix;
        }
        const bool header_first =
            wal->variant() == LogVariant::HeaderDancing ||
            wal->variant() == LogVariant::Mnemosyne;
        if (header_first)
            EXPECT_GT(truncations, 0u) << name;
        else
            EXPECT_EQ(truncations, 0u) << name;
    }
}

/** The audit also holds with group commit batching the appends and
 *  the workload fencing only every K records. */
TEST(WalCrashSweep, RecoversUnderGroupCommit)
{
    AuditConfig config;
    config.workload = "wal_header_dancing";
    config.mode = WritePathMode::Janus;
    config.manual = true;
    config.txnsPerCore = 8;
    config.samplePoints = 32;
    config.injectionTrials = 0;
    config.groupCommitK = 4;
    config.walGroup = 4;
    AuditReport report = runCrashAudit(config);
    EXPECT_TRUE(report.passed()) << report.toJson();
    EXPECT_FALSE(report.hasFailure())
        << "repro: " << report.repro();
}

} // namespace
} // namespace janus
