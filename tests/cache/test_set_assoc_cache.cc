/**
 * @file
 * Unit tests for the set-associative tag array.
 */

#include <gtest/gtest.h>

#include "cache/set_assoc_cache.hh"

namespace janus
{
namespace
{

TEST(SetAssocCache, MissThenHit)
{
    SetAssocCache cache("c", 1024, 2); // 16 lines, 8 sets
    EXPECT_FALSE(cache.access(0x100, false).hit);
    EXPECT_TRUE(cache.access(0x100, false).hit);
    EXPECT_TRUE(cache.access(0x13F, false).hit); // same line
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(SetAssocCache, LruEviction)
{
    SetAssocCache cache("c", 2 * 64, 2); // a single 2-way set
    cache.access(0x000, false);
    cache.access(0x040, false);
    cache.access(0x000, false);          // touch A; B becomes LRU
    cache.access(0x080, false);          // evicts B
    EXPECT_TRUE(cache.access(0x000, false).hit);
    EXPECT_FALSE(cache.access(0x040, false).hit);
}

TEST(SetAssocCache, DirtyEvictionReportsWriteback)
{
    SetAssocCache cache("c", 2 * 64, 2);
    cache.access(0x000, true);  // dirty
    cache.access(0x040, false);
    auto res = cache.access(0x080, false); // evicts dirty 0x000
    ASSERT_TRUE(res.writeback.has_value());
    EXPECT_EQ(*res.writeback, 0x000u);
}

TEST(SetAssocCache, CleanEvictionHasNoWriteback)
{
    SetAssocCache cache("c", 2 * 64, 2);
    cache.access(0x000, false);
    cache.access(0x040, false);
    auto res = cache.access(0x080, false);
    EXPECT_FALSE(res.writeback.has_value());
}

TEST(SetAssocCache, WriteHitMarksDirty)
{
    SetAssocCache cache("c", 2 * 64, 2);
    cache.access(0x000, false);
    cache.access(0x000, true); // dirty via hit
    cache.access(0x040, false);
    auto res = cache.access(0x080, false);
    ASSERT_TRUE(res.writeback.has_value());
}

TEST(SetAssocCache, InvalidateReturnsDirtiness)
{
    SetAssocCache cache("c", 1024, 4);
    cache.access(0x200, true);
    cache.access(0x240, false);
    EXPECT_TRUE(cache.invalidate(0x200));
    EXPECT_FALSE(cache.invalidate(0x240));
    EXPECT_FALSE(cache.invalidate(0x280)); // absent
    EXPECT_FALSE(cache.probe(0x200));
}

TEST(SetAssocCache, SetsAreIndependent)
{
    SetAssocCache cache("c", 4 * 64, 2); // 2 sets x 2 ways
    // These addresses map to set 0 (line index even).
    cache.access(0x000, false);
    cache.access(0x080, false);
    cache.access(0x100, false); // evicts within set 0 only
    // Set 1 untouched.
    EXPECT_FALSE(cache.probe(0x040));
    cache.access(0x040, false);
    EXPECT_TRUE(cache.probe(0x040));
}

TEST(SetAssocCache, InvalidateAll)
{
    SetAssocCache cache("c", 1024, 4);
    cache.access(0x100, true);
    cache.invalidateAll();
    EXPECT_FALSE(cache.probe(0x100));
    // Refill does not report a stale writeback.
    EXPECT_FALSE(cache.access(0x100, false).writeback.has_value());
}

TEST(SetAssocCache, HitRate)
{
    SetAssocCache cache("c", 1024, 4);
    cache.access(0x0, false);
    cache.access(0x0, false);
    cache.access(0x0, false);
    cache.access(0x40, false);
    EXPECT_DOUBLE_EQ(cache.hitRate(), 0.5);
}

TEST(SetAssocCache, FullyAssociativeBehaves)
{
    SetAssocCache cache("c", 4 * 64, 4); // one set, 4 ways
    for (Addr a = 0; a < 4 * 64; a += 64)
        cache.access(a, false);
    for (Addr a = 0; a < 4 * 64; a += 64)
        EXPECT_TRUE(cache.probe(a));
    cache.access(0x400, false); // evicts LRU = line 0
    EXPECT_FALSE(cache.probe(0x000));
    EXPECT_TRUE(cache.probe(0x040));
}

TEST(SetAssocCache, RejectsBadGeometry)
{
    EXPECT_DEATH(SetAssocCache("bad", 63, 1), "");
    EXPECT_DEATH(SetAssocCache("bad", 64, 0), "");
    EXPECT_DEATH(SetAssocCache("bad", 64 * 3, 1), "power of two");
}

} // namespace
} // namespace janus
