/**
 * @file
 * Unit tests for the sparse Bonsai Merkle tree.
 */

#include <array>
#include <cstring>
#include <iterator>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "bmo/merkle_tree.hh"
#include "common/random.hh"

namespace janus
{
namespace
{

void
makeLeaf(std::uint8_t out[16], std::uint64_t a, std::uint64_t b)
{
    std::memcpy(out, &a, 8);
    std::memcpy(out + 8, &b, 8);
}

TEST(MerkleTree, EmptyTreeHasDefaultRoot)
{
    MerkleTree t1(4), t2(4);
    EXPECT_TRUE(t1.root() == t2.root());
    EXPECT_TRUE(t1.root() == t1.recomputeRoot());
}

TEST(MerkleTree, DifferentHeightsDifferentDefaultRoots)
{
    MerkleTree t1(3), t2(4);
    EXPECT_FALSE(t1.root() == t2.root());
}

TEST(MerkleTree, UpdateChangesRoot)
{
    MerkleTree tree(4);
    Sha1Digest before = tree.root();
    std::uint8_t leaf[16];
    makeLeaf(leaf, 1, 2);
    tree.update(0, leaf);
    EXPECT_FALSE(tree.root() == before);
}

TEST(MerkleTree, IncrementalMatchesRecompute)
{
    MerkleTree tree(5);
    std::uint8_t leaf[16];
    for (std::uint64_t i = 0; i < 200; ++i) {
        makeLeaf(leaf, i, i * 31);
        tree.update(i * 7 % 1000, leaf);
    }
    EXPECT_TRUE(tree.recomputeRoot() == tree.root());
}

TEST(MerkleTree, OrderIndependentForDistinctLeaves)
{
    MerkleTree a(4), b(4);
    std::uint8_t l1[16], l2[16];
    makeLeaf(l1, 10, 11);
    makeLeaf(l2, 20, 21);
    a.update(3, l1);
    a.update(77, l2);
    b.update(77, l2);
    b.update(3, l1);
    EXPECT_TRUE(a.root() == b.root());
}

TEST(MerkleTree, LastWriteWins)
{
    MerkleTree a(4), b(4);
    std::uint8_t l1[16], l2[16];
    makeLeaf(l1, 1, 1);
    makeLeaf(l2, 2, 2);
    a.update(5, l1);
    a.update(5, l2);
    b.update(5, l2);
    EXPECT_TRUE(a.root() == b.root());
}

TEST(MerkleTree, VerifyLeafAcceptsTrueContent)
{
    MerkleTree tree(4);
    std::uint8_t leaf[16];
    makeLeaf(leaf, 42, 43);
    tree.update(9, leaf);
    EXPECT_TRUE(tree.verifyLeaf(9, leaf));
}

TEST(MerkleTree, VerifyLeafRejectsWrongContent)
{
    MerkleTree tree(4);
    std::uint8_t leaf[16], bogus[16];
    makeLeaf(leaf, 42, 43);
    makeLeaf(bogus, 42, 44);
    tree.update(9, leaf);
    EXPECT_FALSE(tree.verifyLeaf(9, bogus));
}

TEST(MerkleTree, VerifyUntouchedDefaultLeaf)
{
    MerkleTree tree(4);
    std::uint8_t zero[16] = {};
    EXPECT_TRUE(tree.verifyLeaf(123, zero));
}

TEST(MerkleTree, CapacityMatchesHeight)
{
    MerkleTree tree(3);
    EXPECT_EQ(tree.capacity(), 512u); // 8^3
    std::uint8_t leaf[16] = {};
    tree.update(511, leaf);
    EXPECT_DEATH(tree.update(512, leaf), "range");
}

TEST(MerkleTree, Height9Covers4GB)
{
    MerkleTree tree(9);
    // 4 GB / 64 B = 2^26 lines must fit.
    EXPECT_GE(tree.capacity(), std::uint64_t(1) << 26);
}

TEST(MerkleTree, SparseMaterialization)
{
    MerkleTree tree(9);
    std::uint8_t leaf[16];
    makeLeaf(leaf, 1, 2);
    tree.update(0, leaf);
    // One leaf materializes exactly one node per level + the leaf.
    EXPECT_EQ(tree.materializedNodes(), 10u);
}

TEST(MerkleTree, BatchedUpdatesFlushOnObservation)
{
    MerkleTree lazy(5), observed(5);
    std::uint8_t leaf[16];
    for (std::uint64_t i = 0; i < 100; ++i) {
        makeLeaf(leaf, i, i ^ 0x5555);
        lazy.update(i * 13 % 512, leaf);
        // Reference usage pattern: observe (and so flush) after
        // every single update.
        observed.update(i * 13 % 512, leaf);
        (void)observed.root();
    }
    EXPECT_EQ(lazy.pendingUpdates(), 100u);
    EXPECT_EQ(observed.pendingUpdates(), 0u);
    EXPECT_TRUE(lazy.root() == observed.root());
    EXPECT_EQ(lazy.pendingUpdates(), 0u);
}

/**
 * Eager reference tree: stores only leaf digests and recomputes the
 * whole interior from scratch at every observation. Trivially
 * correct, independent of MerkleTree's incremental/lazy machinery.
 */
class EagerReferenceTree
{
  public:
    explicit EagerReferenceTree(unsigned levels,
                                unsigned leaf_bytes = 16)
        : levels_(levels), leafBytes_(leaf_bytes),
          defaults_(levels + 1)
    {
        std::vector<std::uint8_t> zero(leafBytes_, 0);
        defaults_[0] = Sha1::hash(zero.data(), zero.size());
        for (unsigned level = 1; level <= levels_; ++level) {
            Sha1 hasher;
            for (unsigned c = 0; c < MerkleTree::fanout; ++c)
                hasher.update(defaults_[level - 1].bytes.data(),
                              defaults_[level - 1].bytes.size());
            defaults_[level] = hasher.finish();
        }
    }

    void
    update(std::uint64_t index, const void *data)
    {
        leaves_[index] = Sha1::hash(data, leafBytes_);
    }

    Sha1Digest
    root() const
    {
        std::unordered_map<std::uint64_t, Sha1Digest> cur = leaves_;
        for (unsigned level = 1; level <= levels_; ++level) {
            std::unordered_map<std::uint64_t, Sha1Digest> next;
            for (const auto &[index, digest] : cur) {
                std::uint64_t parent =
                    index >> MerkleTree::fanoutShift;
                if (next.count(parent))
                    continue;
                Sha1 hasher;
                for (unsigned c = 0; c < MerkleTree::fanout; ++c) {
                    std::uint64_t child =
                        parent * MerkleTree::fanout + c;
                    auto it = cur.find(child);
                    const Sha1Digest &d = it == cur.end()
                                              ? defaults_[level - 1]
                                              : it->second;
                    hasher.update(d.bytes.data(), d.bytes.size());
                }
                next[parent] = hasher.finish();
            }
            cur = std::move(next);
        }
        auto it = cur.find(0);
        return it == cur.end() ? defaults_[levels_] : it->second;
    }

  private:
    unsigned levels_;
    unsigned leafBytes_;
    std::vector<Sha1Digest> defaults_;
    std::unordered_map<std::uint64_t, Sha1Digest> leaves_;
};

TEST(MerkleTree, RandomizedLazyMatchesEagerReference)
{
    // Interleave updates with every observable operation at random
    // and demand the lazy batched tree is indistinguishable from the
    // recompute-everything reference at every observation point.
    Rng rng(0xC0FFEE);
    MerkleTree tree(5);
    EagerReferenceTree ref(5);
    std::unordered_map<std::uint64_t, std::array<std::uint8_t, 16>>
        contents;
    const std::uint64_t span = 4096; // forces shared-subtree churn

    for (int step = 0; step < 3000; ++step) {
        std::uint64_t dice = rng.below(100);
        if (dice < 70) {
            std::uint64_t index = rng.below(span);
            std::array<std::uint8_t, 16> leaf;
            makeLeaf(leaf.data(), rng.next(), rng.next());
            tree.update(index, leaf.data());
            ref.update(index, leaf.data());
            contents[index] = leaf;
        } else if (dice < 85) {
            EXPECT_TRUE(tree.root() == ref.root()) << "step " << step;
        } else if (dice < 95) {
            if (!contents.empty()) {
                auto it = contents.begin();
                std::advance(it, rng.below(contents.size()));
                EXPECT_TRUE(tree.verifyLeaf(it->first,
                                            it->second.data()))
                    << "step " << step;
            }
            std::uint8_t zero[16] = {};
            EXPECT_TRUE(tree.verifyLeaf(span + rng.below(span), zero))
                << "untouched leaf, step " << step;
        } else {
            EXPECT_TRUE(tree.recomputeRoot() == tree.root())
                << "step " << step;
        }
    }

    EXPECT_TRUE(tree.root() == ref.root());
    EXPECT_TRUE(tree.recomputeRoot() == tree.root());
    for (const auto &[index, leaf] : contents)
        EXPECT_TRUE(tree.verifyLeaf(index, leaf.data()));
}

TEST(MerkleTree, SiblingSubtreesIsolated)
{
    // Updating one leaf must not disturb verification of another.
    MerkleTree tree(4);
    std::uint8_t l1[16], l2[16];
    makeLeaf(l1, 7, 8);
    makeLeaf(l2, 9, 10);
    tree.update(0, l1);
    tree.update(4095, l2);
    EXPECT_TRUE(tree.verifyLeaf(0, l1));
    EXPECT_TRUE(tree.verifyLeaf(4095, l2));
}

// ---------------------------------------------------------------
// Streamlined-engine timing side: node cache, epochs, bounded flush.
// ---------------------------------------------------------------

TEST(MerkleTree, NodeCacheLruBehavior)
{
    MerkleTree tree(4);
    tree.setNodeCacheCapacity(4);
    // mark_epoch=false throughout so classification is purely the
    // cache (epoch coalescing would otherwise shadow hits).
    MerklePathProbe p = tree.probeUpdatePath(0, false);
    EXPECT_EQ(p.levels, 4u);
    for (unsigned level = 1; level <= 4; ++level)
        EXPECT_EQ(p.kind[level], MerklePathProbe::CacheMiss);
    EXPECT_EQ(tree.cacheMisses(), 4u);
    EXPECT_EQ(tree.cacheResident(), 4u);

    p = tree.probeUpdatePath(0, false);
    for (unsigned level = 1; level <= 4; ++level)
        EXPECT_EQ(p.kind[level], MerklePathProbe::CacheHit);
    EXPECT_EQ(tree.cacheHits(), 4u);

    // A distant leaf shares only the root node; its three lower
    // levels evict leaf 0's lower levels from the 4-entry cache.
    p = tree.probeUpdatePath(4095, false);
    EXPECT_EQ(p.kind[1], MerklePathProbe::CacheMiss);
    EXPECT_EQ(p.kind[2], MerklePathProbe::CacheMiss);
    EXPECT_EQ(p.kind[3], MerklePathProbe::CacheMiss);
    EXPECT_EQ(p.kind[4], MerklePathProbe::CacheHit);
    EXPECT_EQ(tree.cacheHits(), 5u);
    EXPECT_EQ(tree.cacheMisses(), 7u);
    EXPECT_EQ(tree.cacheResident(), 4u);
    EXPECT_DOUBLE_EQ(tree.cacheHitRate(), 5.0 / 12.0);

    // Shrinking evicts down to the new bound; growing keeps content.
    tree.setNodeCacheCapacity(1);
    EXPECT_EQ(tree.cacheResident(), 1u);
    tree.setNodeCacheCapacity(16);
    EXPECT_EQ(tree.cacheResident(), 1u);
}

TEST(MerkleTree, ZeroCapacityCacheIsABypass)
{
    MerkleTree tree(4); // capacity defaults to 0
    for (int i = 0; i < 3; ++i) {
        MerklePathProbe p = tree.probeUpdatePath(0, false);
        for (unsigned level = 1; level <= 4; ++level)
            EXPECT_EQ(p.kind[level], MerklePathProbe::CacheMiss);
    }
    EXPECT_EQ(tree.cacheHits(), 0u);
    EXPECT_EQ(tree.cacheMisses(), 12u);
    EXPECT_EQ(tree.cacheResident(), 0u);
    EXPECT_DOUBLE_EQ(tree.cacheHitRate(), 0.0);
}

TEST(MerkleTree, EpochCoalescingClassification)
{
    MerkleTree tree(4); // cache off: coalescing stands alone
    MerklePathProbe p = tree.probeUpdatePath(0);
    for (unsigned level = 1; level <= 4; ++level)
        EXPECT_EQ(p.kind[level], MerklePathProbe::CacheMiss);
    EXPECT_EQ(tree.coalescedPathLevels(), 0u);

    // Same path again inside the epoch: every level coalesces.
    p = tree.probeUpdatePath(0);
    for (unsigned level = 1; level <= 4; ++level)
        EXPECT_EQ(p.kind[level], MerklePathProbe::Coalesced);
    EXPECT_EQ(tree.coalescedPathLevels(), 4u);

    // A sibling leaf shares levels 2..4 but not its own parent.
    p = tree.probeUpdatePath(8);
    EXPECT_EQ(p.kind[1], MerklePathProbe::CacheMiss);
    EXPECT_EQ(p.kind[2], MerklePathProbe::Coalesced);
    EXPECT_EQ(p.kind[3], MerklePathProbe::Coalesced);
    EXPECT_EQ(p.kind[4], MerklePathProbe::Coalesced);
    EXPECT_EQ(tree.coalescedPathLevels(), 7u);

    // mark_epoch=false observes but never claims epoch membership:
    // a later marking probe of the same fresh path still misses.
    p = tree.probeUpdatePath(16, false);
    EXPECT_EQ(p.kind[1], MerklePathProbe::CacheMiss);
    p = tree.probeUpdatePath(16);
    EXPECT_EQ(p.kind[1], MerklePathProbe::CacheMiss);
    p = tree.probeUpdatePath(16);
    EXPECT_EQ(p.kind[1], MerklePathProbe::Coalesced);

    // An epoch boundary resets coalescing opportunities.
    const std::uint64_t epochs_before = tree.epochs();
    tree.beginEpoch();
    EXPECT_EQ(tree.epochs(), epochs_before + 1);
    p = tree.probeUpdatePath(0);
    for (unsigned level = 1; level <= 4; ++level)
        EXPECT_EQ(p.kind[level], MerklePathProbe::CacheMiss);
}

TEST(MerkleTree, BoundedVerifyFlushesOnlyAffectedSubtree)
{
    MerkleTree tree(4);
    std::uint8_t l1[16], l2[16], l3[16];
    makeLeaf(l1, 1, 2);
    makeLeaf(l2, 3, 4);
    makeLeaf(l3, 5, 6);
    tree.update(0, l1);    // top-level subtree 0
    tree.update(1, l3);    // same subtree as leaf 0
    tree.update(4095, l2); // top-level subtree 7
    EXPECT_EQ(tree.pendingUpdates(), 3u);

    // Verifying leaf 0 must settle subtree 0 (both its leaves) but
    // leave subtree 7's dirt pending.
    EXPECT_TRUE(tree.verifyLeaf(0, l1));
    EXPECT_EQ(tree.pendingUpdates(), 1u);
    EXPECT_TRUE(tree.verifyLeaf(1, l3));
    EXPECT_EQ(tree.pendingUpdates(), 1u);

    // recomputeRoot works from the eagerly-maintained leaf digests,
    // so it already sees subtree 7's update.
    MerkleTree eager(4);
    eager.update(0, l1);
    eager.update(1, l3);
    eager.update(4095, l2);
    (void)eager.root(); // full flush
    EXPECT_TRUE(tree.recomputeRoot() == eager.root());

    EXPECT_TRUE(tree.verifyLeaf(4095, l2));
    EXPECT_EQ(tree.pendingUpdates(), 0u);
    EXPECT_TRUE(tree.root() == eager.root());
}

TEST(MerkleTree, RandomizedStreamlinedMatchesEagerReference)
{
    // Satellite of the streamlined engine: arbitrary interleavings
    // of updates, timing probes, epoch boundaries, cache resizes,
    // bounded verifications and crash-replays must leave observable
    // digest state indistinguishable from the eager reference.
    Rng rng(0xBEEFCAFE);
    MerkleTree tree(5);
    tree.setNodeCacheCapacity(32);
    EagerReferenceTree ref(5);
    std::unordered_map<std::uint64_t, std::array<std::uint8_t, 16>>
        contents;
    const std::uint64_t span = 2048;

    for (int step = 0; step < 1500; ++step) {
        std::uint64_t dice = rng.below(120);
        if (dice < 60) {
            std::uint64_t index = rng.below(span);
            std::array<std::uint8_t, 16> leaf;
            makeLeaf(leaf.data(), rng.next(), rng.next());
            tree.update(index, leaf.data());
            ref.update(index, leaf.data());
            contents[index] = leaf;
        } else if (dice < 75) {
            // Timing probes are free to interleave anywhere; they
            // must never perturb digests.
            tree.probeUpdatePath(rng.below(span), dice & 1);
        } else if (dice < 80) {
            tree.beginEpoch();
        } else if (dice < 85) {
            tree.setNodeCacheCapacity(rng.below(64));
        } else if (dice < 95) {
            EXPECT_TRUE(tree.root() == ref.root()) << "step " << step;
        } else if (dice < 105) {
            if (contents.empty())
                continue;
            auto it = contents.begin();
            std::advance(it, rng.below(contents.size()));
            EXPECT_TRUE(tree.verifyLeaf(it->first, it->second.data()))
                << "step " << step;
        } else if (dice < 115) {
            EXPECT_TRUE(tree.recomputeRoot() == tree.root())
                << "step " << step;
        } else {
            // Crash: rebuild from the durable leaf metadata (hash
            //-map order, i.e. arbitrary), replaying under a fresh
            // cache/epoch state. Recovery must land on the same root.
            MerkleTree rebuilt(5);
            rebuilt.setNodeCacheCapacity(rng.below(16));
            for (const auto &[index, leaf] : contents) {
                rebuilt.update(index, leaf.data());
                if ((index & 3) == 0)
                    rebuilt.probeUpdatePath(index);
            }
            EXPECT_TRUE(rebuilt.root() == ref.root())
                << "crash replay, step " << step;
        }
    }
    EXPECT_TRUE(tree.root() == ref.root());
    for (const auto &[index, leaf] : contents)
        EXPECT_TRUE(tree.verifyLeaf(index, leaf.data()));
}

} // namespace
} // namespace janus
