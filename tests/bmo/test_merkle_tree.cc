/**
 * @file
 * Unit tests for the sparse Bonsai Merkle tree.
 */

#include <cstring>

#include <gtest/gtest.h>

#include "bmo/merkle_tree.hh"

namespace janus
{
namespace
{

void
makeLeaf(std::uint8_t out[16], std::uint64_t a, std::uint64_t b)
{
    std::memcpy(out, &a, 8);
    std::memcpy(out + 8, &b, 8);
}

TEST(MerkleTree, EmptyTreeHasDefaultRoot)
{
    MerkleTree t1(4), t2(4);
    EXPECT_TRUE(t1.root() == t2.root());
    EXPECT_TRUE(t1.root() == t1.recomputeRoot());
}

TEST(MerkleTree, DifferentHeightsDifferentDefaultRoots)
{
    MerkleTree t1(3), t2(4);
    EXPECT_FALSE(t1.root() == t2.root());
}

TEST(MerkleTree, UpdateChangesRoot)
{
    MerkleTree tree(4);
    Sha1Digest before = tree.root();
    std::uint8_t leaf[16];
    makeLeaf(leaf, 1, 2);
    tree.update(0, leaf);
    EXPECT_FALSE(tree.root() == before);
}

TEST(MerkleTree, IncrementalMatchesRecompute)
{
    MerkleTree tree(5);
    std::uint8_t leaf[16];
    for (std::uint64_t i = 0; i < 200; ++i) {
        makeLeaf(leaf, i, i * 31);
        tree.update(i * 7 % 1000, leaf);
    }
    EXPECT_TRUE(tree.recomputeRoot() == tree.root());
}

TEST(MerkleTree, OrderIndependentForDistinctLeaves)
{
    MerkleTree a(4), b(4);
    std::uint8_t l1[16], l2[16];
    makeLeaf(l1, 10, 11);
    makeLeaf(l2, 20, 21);
    a.update(3, l1);
    a.update(77, l2);
    b.update(77, l2);
    b.update(3, l1);
    EXPECT_TRUE(a.root() == b.root());
}

TEST(MerkleTree, LastWriteWins)
{
    MerkleTree a(4), b(4);
    std::uint8_t l1[16], l2[16];
    makeLeaf(l1, 1, 1);
    makeLeaf(l2, 2, 2);
    a.update(5, l1);
    a.update(5, l2);
    b.update(5, l2);
    EXPECT_TRUE(a.root() == b.root());
}

TEST(MerkleTree, VerifyLeafAcceptsTrueContent)
{
    MerkleTree tree(4);
    std::uint8_t leaf[16];
    makeLeaf(leaf, 42, 43);
    tree.update(9, leaf);
    EXPECT_TRUE(tree.verifyLeaf(9, leaf));
}

TEST(MerkleTree, VerifyLeafRejectsWrongContent)
{
    MerkleTree tree(4);
    std::uint8_t leaf[16], bogus[16];
    makeLeaf(leaf, 42, 43);
    makeLeaf(bogus, 42, 44);
    tree.update(9, leaf);
    EXPECT_FALSE(tree.verifyLeaf(9, bogus));
}

TEST(MerkleTree, VerifyUntouchedDefaultLeaf)
{
    MerkleTree tree(4);
    std::uint8_t zero[16] = {};
    EXPECT_TRUE(tree.verifyLeaf(123, zero));
}

TEST(MerkleTree, CapacityMatchesHeight)
{
    MerkleTree tree(3);
    EXPECT_EQ(tree.capacity(), 512u); // 8^3
    std::uint8_t leaf[16] = {};
    tree.update(511, leaf);
    EXPECT_DEATH(tree.update(512, leaf), "range");
}

TEST(MerkleTree, Height9Covers4GB)
{
    MerkleTree tree(9);
    // 4 GB / 64 B = 2^26 lines must fit.
    EXPECT_GE(tree.capacity(), std::uint64_t(1) << 26);
}

TEST(MerkleTree, SparseMaterialization)
{
    MerkleTree tree(9);
    std::uint8_t leaf[16];
    makeLeaf(leaf, 1, 2);
    tree.update(0, leaf);
    // One leaf materializes exactly one node per level + the leaf.
    EXPECT_EQ(tree.materializedNodes(), 10u);
}

TEST(MerkleTree, SiblingSubtreesIsolated)
{
    // Updating one leaf must not disturb verification of another.
    MerkleTree tree(4);
    std::uint8_t l1[16], l2[16];
    makeLeaf(l1, 7, 8);
    makeLeaf(l2, 9, 10);
    tree.update(0, l1);
    tree.update(4095, l2);
    EXPECT_TRUE(tree.verifyLeaf(0, l1));
    EXPECT_TRUE(tree.verifyLeaf(4095, l2));
}

} // namespace
} // namespace janus
