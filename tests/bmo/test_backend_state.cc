/**
 * @file
 * End-to-end tests of the functional BMO backend: encryption
 * round-trips, dedup reference counting, MAC/Merkle integrity and
 * tamper detection.
 */

#include <gtest/gtest.h>

#include "bmo/backend_state.hh"
#include "common/random.hh"

namespace janus
{
namespace
{

class BackendStateTest : public ::testing::Test
{
  protected:
    BmoConfig config_;
};

TEST_F(BackendStateTest, ReadBackEqualsWritten)
{
    BmoBackendState state(config_);
    CacheLine line = CacheLine::fromSeed(123);
    state.writeLine(0x1000, line);
    ReadOutcome out = state.readLine(0x1000);
    EXPECT_TRUE(out.data == line);
    EXPECT_TRUE(out.macOk);
    EXPECT_TRUE(out.treeOk);
}

TEST_F(BackendStateTest, UnwrittenLineReadsZero)
{
    BmoBackendState state(config_);
    ReadOutcome out = state.readLine(0x2000);
    EXPECT_TRUE(out.data == CacheLine());
    EXPECT_TRUE(out.macOk);
}

TEST_F(BackendStateTest, CiphertextDiffersFromPlaintext)
{
    BmoBackendState state(config_);
    CacheLine line = CacheLine::fromSeed(5);
    WriteOutcome w = state.writeLine(0x40, line);
    // Unique first write gets counter 1 on a fresh physical line.
    EXPECT_FALSE(w.duplicate);
    EXPECT_TRUE(w.newPhysLine);
    EXPECT_EQ(w.counter, 1u);
}

TEST_F(BackendStateTest, OverwriteBumpsCounter)
{
    BmoBackendState state(config_);
    state.writeLine(0x40, CacheLine::fromSeed(1));
    WriteOutcome w = state.writeLine(0x40, CacheLine::fromSeed(2));
    EXPECT_FALSE(w.duplicate);
    EXPECT_FALSE(w.newPhysLine); // reused in place
    EXPECT_EQ(w.counter, 2u);
    EXPECT_TRUE(state.readLine(0x40).data == CacheLine::fromSeed(2));
}

TEST_F(BackendStateTest, DuplicateDetected)
{
    BmoBackendState state(config_);
    CacheLine line = CacheLine::fromSeed(9);
    WriteOutcome w1 = state.writeLine(0x000, line);
    WriteOutcome w2 = state.writeLine(0x100, line);
    EXPECT_FALSE(w1.duplicate);
    EXPECT_TRUE(w2.duplicate);
    EXPECT_EQ(w2.phys, w1.phys);
    EXPECT_TRUE(state.readLine(0x100).data == line);
    EXPECT_EQ(state.dupWrites(), 1u);
    EXPECT_EQ(state.physLinesLive(), 1u);
}

TEST_F(BackendStateTest, SameValueRewriteIsDuplicate)
{
    BmoBackendState state(config_);
    CacheLine line = CacheLine::fromSeed(9);
    state.writeLine(0x000, line);
    WriteOutcome w = state.writeLine(0x000, line);
    EXPECT_TRUE(w.duplicate);
    EXPECT_TRUE(state.readLine(0x000).data == line);
}

TEST_F(BackendStateTest, DupSourceOverwritePreservesSharers)
{
    // A overwritten while B still references the shared physical
    // line: B must keep reading the old value.
    BmoBackendState state(config_);
    CacheLine shared = CacheLine::fromSeed(10);
    state.writeLine(0x000, shared); // A owns phys P
    state.writeLine(0x100, shared); // B dups onto P
    state.writeLine(0x000, CacheLine::fromSeed(11)); // overwrite A
    EXPECT_TRUE(state.readLine(0x100).data == shared);
    EXPECT_TRUE(state.readLine(0x000).data == CacheLine::fromSeed(11));
    EXPECT_TRUE(state.readLine(0x100).macOk);
    EXPECT_TRUE(state.readLine(0x100).treeOk);
}

TEST_F(BackendStateTest, RefcountFreesPhysLine)
{
    BmoBackendState state(config_);
    CacheLine shared = CacheLine::fromSeed(20);
    state.writeLine(0x000, shared);
    state.writeLine(0x100, shared);
    EXPECT_EQ(state.physLinesLive(), 1u);
    state.writeLine(0x000, CacheLine::fromSeed(21));
    state.writeLine(0x100, CacheLine::fromSeed(22));
    // The shared line has no more referents and must be freed.
    EXPECT_EQ(state.physLinesLive(), 2u);
}

TEST_F(BackendStateTest, DupRatioStat)
{
    BmoBackendState state(config_);
    CacheLine v = CacheLine::fromSeed(1);
    state.writeLine(0x000, v);
    state.writeLine(0x100, v);
    state.writeLine(0x200, v);
    state.writeLine(0x300, CacheLine::fromSeed(2));
    EXPECT_DOUBLE_EQ(state.dupRatio(), 0.5);
}

TEST_F(BackendStateTest, MerkleAuditPassesAfterManyWrites)
{
    BmoBackendState state(config_);
    for (int i = 0; i < 100; ++i)
        state.writeLine(static_cast<Addr>(i % 32) * lineBytes,
                        CacheLine::fromSeed(i % 7));
    EXPECT_TRUE(state.auditIntegrity());
}

TEST_F(BackendStateTest, TamperDetectedByMac)
{
    BmoBackendState state(config_);
    CacheLine line = CacheLine::fromSeed(3);
    state.writeLine(0x40, line);
    state.corruptStoredLine(0x40);
    ReadOutcome out = state.readLine(0x40);
    EXPECT_FALSE(out.macOk);
    EXPECT_FALSE(out.data == line);
}

TEST_F(BackendStateTest, MetaEntryReflectsState)
{
    BmoBackendState state(config_);
    CacheLine v = CacheLine::fromSeed(8);
    state.writeLine(0x000, v);
    state.writeLine(0x100, v);
    MetaEntry owner = state.metaEntry(0x000);
    MetaEntry dup = state.metaEntry(0x100);
    EXPECT_TRUE(owner.valid);
    EXPECT_FALSE(owner.dup);
    EXPECT_TRUE(dup.dup);
    EXPECT_EQ(dup.phys, owner.phys);
    EXPECT_FALSE(state.metaEntry(0x999940).valid);
}

TEST_F(BackendStateTest, NoEncryptionStoresPlaintext)
{
    config_.encryption = false;
    BmoBackendState state(config_);
    CacheLine line = CacheLine::fromSeed(4);
    state.writeLine(0x80, line);
    EXPECT_TRUE(state.readLine(0x80).data == line);
}

TEST_F(BackendStateTest, NoDedupEveryWriteUnique)
{
    config_.deduplication = false;
    BmoBackendState state(config_);
    CacheLine v = CacheLine::fromSeed(6);
    state.writeLine(0x000, v);
    WriteOutcome w = state.writeLine(0x100, v);
    EXPECT_FALSE(w.duplicate);
    EXPECT_EQ(state.physLinesLive(), 2u);
}

TEST_F(BackendStateTest, Crc32FingerprintWorks)
{
    config_.dedupHash = DedupHash::Crc32;
    BmoBackendState state(config_);
    CacheLine v = CacheLine::fromSeed(12);
    state.writeLine(0x000, v);
    WriteOutcome w = state.writeLine(0x100, v);
    EXPECT_TRUE(w.duplicate);
    EXPECT_TRUE(state.readLine(0x100).data == v);
}

TEST_F(BackendStateTest, ManyLinesRoundTripUnderDedupChurn)
{
    BmoBackendState state(config_);
    Rng rng(31);
    std::vector<CacheLine> truth(64);
    for (int round = 0; round < 6; ++round) {
        for (unsigned i = 0; i < truth.size(); ++i) {
            // Small value pool forces heavy duplication.
            truth[i] = CacheLine::fromSeed(rng.below(8));
            state.writeLine(static_cast<Addr>(i) * lineBytes, truth[i]);
        }
    }
    for (unsigned i = 0; i < truth.size(); ++i) {
        ReadOutcome out =
            state.readLine(static_cast<Addr>(i) * lineBytes);
        EXPECT_TRUE(out.data == truth[i]) << "line " << i;
        EXPECT_TRUE(out.macOk);
        EXPECT_TRUE(out.treeOk);
    }
    EXPECT_TRUE(state.auditIntegrity());
}

} // namespace
} // namespace janus
