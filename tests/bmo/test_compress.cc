/**
 * @file
 * Unit and property tests for the Base-Delta-Immediate compressor
 * (the compression extension BMO).
 */

#include <gtest/gtest.h>

#include "bmo/compress.hh"
#include "common/random.hh"

namespace janus
{
namespace
{

TEST(Bdi, ZeroLine)
{
    BdiCompressed c = bdiCompress(CacheLine());
    EXPECT_EQ(c.encoding, BdiEncoding::Zero);
    EXPECT_EQ(c.sizeBytes(), 0u); // the tag lives in metadata
    EXPECT_TRUE(bdiDecompress(c) == CacheLine());
}

TEST(Bdi, RepeatedWord)
{
    CacheLine line;
    for (unsigned off = 0; off < lineBytes; off += 8)
        line.setWord(off, 0xABCDEF0123456789ull);
    BdiCompressed c = bdiCompress(line);
    EXPECT_EQ(c.encoding, BdiEncoding::Repeat8);
    EXPECT_EQ(c.sizeBytes(), 8u);
    EXPECT_TRUE(bdiDecompress(c) == line);
}

TEST(Bdi, Base8SmallDeltas)
{
    // Pointer-array-like content: one 64-bit base, tiny offsets.
    CacheLine line;
    for (unsigned w = 0; w < 8; ++w)
        line.setWord(w * 8, 0x7000000000ull + w * 3);
    BdiCompressed c = bdiCompress(line);
    EXPECT_EQ(c.encoding, BdiEncoding::Base8Delta1);
    EXPECT_EQ(c.sizeBytes(), 16u); // 8 base + 8 deltas
    EXPECT_TRUE(bdiDecompress(c) == line);
}

TEST(Bdi, Base4SmallDeltas)
{
    // Int-array-like content.
    CacheLine line;
    for (unsigned w = 0; w < 16; ++w) {
        std::uint32_t v = 1000000 + (w % 5);
        line.write(w * 4, &v, 4);
    }
    BdiCompressed c = bdiCompress(line);
    EXPECT_EQ(c.encoding, BdiEncoding::Base4Delta1);
    EXPECT_TRUE(bdiDecompress(c) == line);
}

TEST(Bdi, NegativeDeltasRoundTrip)
{
    CacheLine line;
    for (unsigned w = 0; w < 8; ++w)
        line.setWord(w * 8, 0x8000ull - w * 7);
    BdiCompressed c = bdiCompress(line);
    EXPECT_NE(c.encoding, BdiEncoding::Uncompressed);
    EXPECT_TRUE(bdiDecompress(c) == line);
}

TEST(Bdi, RandomDataStaysUncompressed)
{
    BdiCompressed c = bdiCompress(CacheLine::fromSeed(0xDECAF));
    EXPECT_EQ(c.encoding, BdiEncoding::Uncompressed);
    EXPECT_EQ(c.sizeBytes(), lineBytes);
}

TEST(Bdi, CompressedIsNeverLargerThanRaw)
{
    Rng rng(5);
    for (int i = 0; i < 200; ++i) {
        CacheLine line = CacheLine::fromSeed(rng.next());
        EXPECT_LE(bdiCompress(line).sizeBytes(), lineBytes);
    }
}

TEST(Bdi, RoundTripProperty)
{
    // Mixed population: zero, repeated, base+delta and random lines.
    Rng rng(11);
    for (int i = 0; i < 500; ++i) {
        CacheLine line;
        switch (rng.below(5)) {
          case 0:
            break; // zero
          case 1: {
              std::uint64_t v = rng.next();
              for (unsigned off = 0; off < lineBytes; off += 8)
                  line.setWord(off, v);
              break;
          }
          case 2: {
              std::uint64_t base = rng.next();
              for (unsigned w = 0; w < 8; ++w)
                  line.setWord(w * 8, base + rng.below(100));
              break;
          }
          case 3: {
              std::uint32_t base =
                  static_cast<std::uint32_t>(rng.next());
              for (unsigned w = 0; w < 16; ++w) {
                  std::uint32_t v =
                      base + static_cast<std::uint32_t>(
                                 rng.below(200));
                  line.write(w * 4, &v, 4);
              }
              break;
          }
          default:
            line = CacheLine::fromSeed(rng.next());
        }
        BdiCompressed c = bdiCompress(line);
        EXPECT_TRUE(bdiDecompress(c) == line)
            << "encoding " << bdiEncodingName(c.encoding);
    }
}

TEST(Bdi, EncodingNamesAreDistinct)
{
    EXPECT_STRNE(bdiEncodingName(BdiEncoding::Zero),
                 bdiEncodingName(BdiEncoding::Repeat8));
    EXPECT_STRNE(bdiEncodingName(BdiEncoding::Base8Delta1),
                 bdiEncodingName(BdiEncoding::Base4Delta1));
}

} // namespace
} // namespace janus
