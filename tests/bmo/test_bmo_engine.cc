/**
 * @file
 * Unit tests for the BMO unit-pool scheduler: serialized vs
 * parallel ordering, partial (pre-)execution by available inputs,
 * unit contention and latency overrides.
 */

#include <gtest/gtest.h>

#include "bmo/bmo_config.hh"
#include "bmo/bmo_engine.hh"

namespace janus
{
namespace
{

/** diamond: a(10) -> b(20), c(30); b,c -> d(5); c needs data. */
BmoGraph
diamond()
{
    BmoGraph g;
    SubOpId a = g.addSubOp("a", BmoKind::Other, 10,
                           ExternalInput::Addr);
    SubOpId b = g.addSubOp("b", BmoKind::Other, 20);
    SubOpId c = g.addSubOp("c", BmoKind::Other, 30,
                           ExternalInput::Data);
    SubOpId d = g.addSubOp("d", BmoKind::Other, 5);
    g.addEdge(a, b);
    g.addEdge(a, c);
    g.addEdge(b, d);
    g.addEdge(c, d);
    g.finalize();
    return g;
}

TEST(BmoEngine, SerializedSumsLatencies)
{
    BmoGraph g = diamond();
    BmoEngine engine(g, 0);
    BmoExecState st(g);
    Tick done = engine.execute(st, ExternalInput::Both, 100,
                               BmoExecMode::Serialized);
    EXPECT_EQ(done, 100 + 10 + 20 + 30 + 5);
    EXPECT_TRUE(st.allDone());
}

TEST(BmoEngine, ParallelFollowsCriticalPath)
{
    BmoGraph g = diamond();
    BmoEngine engine(g, 0);
    BmoExecState st(g);
    Tick done = engine.execute(st, ExternalInput::Both, 100,
                               BmoExecMode::Parallel);
    EXPECT_EQ(done, 100 + 10 + 30 + 5); // a -> c -> d
}

TEST(BmoEngine, PartialExecutionAddrOnly)
{
    BmoGraph g = diamond();
    BmoEngine engine(g, 0);
    BmoExecState st(g);
    Tick done = engine.execute(st, ExternalInput::Addr, 0,
                               BmoExecMode::Parallel);
    // Only a (addr) and b (addr-transitive) may run.
    EXPECT_TRUE(st.done(g.idOf("a")));
    EXPECT_TRUE(st.done(g.idOf("b")));
    EXPECT_FALSE(st.done(g.idOf("c")));
    EXPECT_FALSE(st.done(g.idOf("d")));
    EXPECT_EQ(done, 30u); // a then b
}

TEST(BmoEngine, ResumeAfterPreExecution)
{
    BmoGraph g = diamond();
    BmoEngine engine(g, 0);
    BmoExecState st(g);
    engine.execute(st, ExternalInput::Addr, 0, BmoExecMode::Parallel);
    // The write arrives at t=1000 with data; only c and d remain.
    Tick done = engine.execute(st, ExternalInput::Both, 1000,
                               BmoExecMode::Parallel);
    EXPECT_EQ(done, 1000 + 30 + 5);
    EXPECT_TRUE(st.allDone());
}

TEST(BmoEngine, PreExecutionResultsRespectedInFinishTimes)
{
    BmoGraph g = diamond();
    BmoEngine engine(g, 0);
    BmoExecState st(g);
    engine.execute(st, ExternalInput::Addr, 0, BmoExecMode::Parallel);
    EXPECT_EQ(st.finish(g.idOf("b")), 30u);
    engine.execute(st, ExternalInput::Both, 10, BmoExecMode::Parallel);
    // c starts at max(ready=10, a.finish=10) = 10.
    EXPECT_EQ(st.finish(g.idOf("c")), 40u);
    // d waits for both b (30) and c (40).
    EXPECT_EQ(st.finish(g.idOf("d")), 45u);
}

TEST(BmoEngine, OnePipelineStillOverlapsWithinRequest)
{
    // A unit is a whole BMO pipeline (Figure 7d): even with a single
    // unit, one request's independent sub-ops overlap.
    BmoGraph g = diamond();
    BmoEngine engine(g, 1);
    BmoExecState st(g);
    Tick done = engine.execute(st, ExternalInput::Both, 0,
                               BmoExecMode::Parallel);
    EXPECT_EQ(done, 10 + 30 + 5);
}

TEST(BmoEngine, TwoUnitsOverlapIndependentOps)
{
    BmoGraph g = diamond();
    BmoEngine engine(g, 2);
    BmoExecState st(g);
    Tick done = engine.execute(st, ExternalInput::Both, 0,
                               BmoExecMode::Parallel);
    // b and c overlap after a: 10 + max(20,30) + 5.
    EXPECT_EQ(done, 45u);
}

TEST(BmoEngine, UnitsContendAcrossRequests)
{
    BmoGraph g = diamond();
    BmoEngine engine(g, 1);
    BmoExecState st1(g), st2(g);
    Tick d1 = engine.execute(st1, ExternalInput::Both, 0,
                             BmoExecMode::Parallel);
    Tick d2 = engine.execute(st2, ExternalInput::Both, 0,
                             BmoExecMode::Parallel);
    EXPECT_EQ(d1, 45u);
    EXPECT_EQ(d2, 90u); // queued behind request 1 on the only unit
}

TEST(BmoEngine, TwoPipelinesServeTwoRequestsConcurrently)
{
    BmoGraph g = diamond();
    BmoEngine engine(g, 2);
    BmoExecState st1(g), st2(g);
    Tick d1 = engine.execute(st1, ExternalInput::Both, 0,
                             BmoExecMode::Parallel);
    Tick d2 = engine.execute(st2, ExternalInput::Both, 0,
                             BmoExecMode::Parallel);
    EXPECT_EQ(d1, 45u);
    EXPECT_EQ(d2, 45u);
}

TEST(BmoEngine, BackfillUsesGapsLeftByFutureReservations)
{
    // Request 1 reserves [100, 145) (its ready time is in the
    // future); request 2 arriving at 0 with a short job fits before
    // it on the same unit.
    BmoGraph g = diamond();
    BmoEngine engine(g, 1);
    BmoExecState st1(g), st2(g);
    Tick d1 = engine.execute(st1, ExternalInput::Both, 100,
                             BmoExecMode::Parallel);
    EXPECT_EQ(d1, 145u);
    Tick d2 = engine.execute(st2, ExternalInput::Addr, 0,
                             BmoExecMode::Parallel);
    EXPECT_EQ(d2, 30u); // a(10)+b(20) fit in the gap before t=100
}

TEST(BmoEngine, LatencyOverrideApplies)
{
    BmoGraph g = diamond();
    BmoEngine engine(g, 0);
    BmoExecState st(g);
    std::vector<Tick> override_lat(g.size(), maxTick);
    override_lat[g.idOf("a")] = 100;
    Tick done = engine.execute(st, ExternalInput::Both, 0,
                               BmoExecMode::Parallel, &override_lat);
    EXPECT_EQ(done, 100 + 30 + 5);
}

TEST(BmoEngine, StatsTrackWork)
{
    BmoGraph g = diamond();
    BmoEngine engine(g, 2);
    BmoExecState st(g);
    engine.execute(st, ExternalInput::Both, 0, BmoExecMode::Parallel);
    EXPECT_EQ(engine.subOpsExecuted(), 4u);
    // busyTicks counts pipeline occupancy: the request's makespan.
    EXPECT_EQ(engine.busyTicks(), 45u);
}

TEST(BmoEngine, InvalidationForcesReexecution)
{
    BmoGraph g = diamond();
    BmoEngine engine(g, 0);
    BmoExecState st(g);
    engine.execute(st, ExternalInput::Both, 0, BmoExecMode::Parallel);
    st.invalidate(g.idOf("c"));
    st.invalidate(g.idOf("d"));
    EXPECT_FALSE(st.allDone());
    Tick done = engine.execute(st, ExternalInput::Both, 500,
                               BmoExecMode::Parallel);
    EXPECT_EQ(done, 500 + 30 + 5);
    EXPECT_TRUE(st.allDone());
}

TEST(BmoEngine, StandardGraphSerializedVsParallelGap)
{
    BmoConfig config;
    BmoGraph g = buildStandardGraph(config);
    BmoEngine serial_engine(g, 4);
    BmoEngine parallel_engine(g, 4);
    BmoExecState s1(g), s2(g);
    Tick ts = serial_engine.execute(s1, ExternalInput::Both, 0,
                                    BmoExecMode::Serialized);
    Tick tp = parallel_engine.execute(s2, ExternalInput::Both, 0,
                                      BmoExecMode::Parallel);
    EXPECT_EQ(ts, 819 * ticks::ns);
    EXPECT_EQ(tp, 691 * ticks::ns); // 4 units suffice for the DAG
}

TEST(BmoEngine, CompletedCount)
{
    BmoGraph g = diamond();
    BmoEngine engine(g, 0);
    BmoExecState st(g);
    EXPECT_EQ(st.completedCount(), 0u);
    engine.execute(st, ExternalInput::Addr, 0, BmoExecMode::Parallel);
    EXPECT_EQ(st.completedCount(), 2u);
}

} // namespace
} // namespace janus
