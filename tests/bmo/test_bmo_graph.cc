/**
 * @file
 * Unit tests for the sub-operation dependency graph.
 */

#include <gtest/gtest.h>

#include "bmo/bmo_graph.hh"

namespace janus
{
namespace
{

TEST(BmoGraph, TopologicalOrderRespectsEdges)
{
    BmoGraph g;
    SubOpId a = g.addSubOp("a", BmoKind::Other, 10);
    SubOpId b = g.addSubOp("b", BmoKind::Other, 10);
    SubOpId c = g.addSubOp("c", BmoKind::Other, 10);
    g.addEdge(c, b); // c before b
    g.addEdge(a, c); // a before c
    g.finalize();
    const auto &topo = g.topoOrder();
    auto pos = [&](SubOpId id) {
        return std::find(topo.begin(), topo.end(), id) - topo.begin();
    };
    EXPECT_LT(pos(a), pos(c));
    EXPECT_LT(pos(c), pos(b));
}

TEST(BmoGraph, CycleDetected)
{
    BmoGraph g;
    SubOpId a = g.addSubOp("a", BmoKind::Other, 1);
    SubOpId b = g.addSubOp("b", BmoKind::Other, 1);
    g.addEdge(a, b);
    g.addEdge(b, a);
    EXPECT_DEATH(g.finalize(), "cycle");
}

TEST(BmoGraph, SelfEdgeRejected)
{
    BmoGraph g;
    SubOpId a = g.addSubOp("a", BmoKind::Other, 1);
    EXPECT_DEATH(g.addEdge(a, a), "self edge");
}

TEST(BmoGraph, ExternalDependencyPropagates)
{
    // addr -> a -> b;  data -> c;  b,c -> d
    BmoGraph g;
    SubOpId a = g.addSubOp("a", BmoKind::Other, 1, ExternalInput::Addr);
    SubOpId b = g.addSubOp("b", BmoKind::Other, 1);
    SubOpId c = g.addSubOp("c", BmoKind::Other, 1, ExternalInput::Data);
    SubOpId d = g.addSubOp("d", BmoKind::Other, 1);
    g.addEdge(a, b);
    g.addEdge(b, d);
    g.addEdge(c, d);
    g.finalize();
    EXPECT_EQ(g.required(a), ExternalInput::Addr);
    EXPECT_EQ(g.required(b), ExternalInput::Addr);
    EXPECT_EQ(g.required(c), ExternalInput::Data);
    EXPECT_EQ(g.required(d), ExternalInput::Both);
}

TEST(BmoGraph, NoExternalInputMeansAlwaysRunnable)
{
    BmoGraph g;
    SubOpId a = g.addSubOp("a", BmoKind::Other, 1);
    g.finalize();
    EXPECT_EQ(g.required(a), ExternalInput::None);
    EXPECT_TRUE(hasInput(ExternalInput::None, g.required(a)));
}

TEST(BmoGraph, SerializedLatencyIsSum)
{
    BmoGraph g;
    g.addSubOp("a", BmoKind::Other, 10);
    g.addSubOp("b", BmoKind::Other, 20);
    g.addSubOp("c", BmoKind::Other, 30);
    g.finalize();
    EXPECT_EQ(g.serializedLatency(), 60u);
}

TEST(BmoGraph, CriticalPathOfChainAndFork)
{
    BmoGraph g;
    SubOpId a = g.addSubOp("a", BmoKind::Other, 10);
    SubOpId b = g.addSubOp("b", BmoKind::Other, 20);
    SubOpId c = g.addSubOp("c", BmoKind::Other, 5);
    g.addEdge(a, b);
    g.addEdge(a, c);
    g.finalize();
    EXPECT_EQ(g.criticalPath(), 30u); // a -> b
}

TEST(BmoGraph, IdOfByName)
{
    BmoGraph g;
    g.addSubOp("x", BmoKind::Other, 1);
    SubOpId y = g.addSubOp("y", BmoKind::Other, 1);
    g.finalize();
    EXPECT_EQ(g.idOf("y"), y);
    EXPECT_DEATH(g.idOf("nope"), "unknown");
}

TEST(BmoGraph, HasInputSemantics)
{
    EXPECT_TRUE(hasInput(ExternalInput::Both, ExternalInput::Addr));
    EXPECT_TRUE(hasInput(ExternalInput::Both, ExternalInput::Data));
    EXPECT_TRUE(hasInput(ExternalInput::Both, ExternalInput::Both));
    EXPECT_FALSE(hasInput(ExternalInput::Addr, ExternalInput::Both));
    EXPECT_FALSE(hasInput(ExternalInput::Addr, ExternalInput::Data));
    EXPECT_TRUE(hasInput(ExternalInput::Addr, ExternalInput::None));
}

TEST(BmoGraph, ToStringMentionsNodes)
{
    BmoGraph g;
    SubOpId a = g.addSubOp("alpha", BmoKind::Other, 1000);
    SubOpId b = g.addSubOp("beta", BmoKind::Other, 1000);
    g.addEdge(a, b);
    g.finalize();
    std::string s = g.toString();
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("beta"), std::string::npos);
    EXPECT_NE(s.find("<- alpha"), std::string::npos);
}

} // namespace
} // namespace janus
