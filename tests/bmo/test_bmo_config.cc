/**
 * @file
 * Tests that the standard three-BMO graph matches the paper's
 * Figure 6: structure, external-dependency categorization and the
 * headline latencies (~800 ns serialized, 40/321/360 ns components).
 */

#include <gtest/gtest.h>

#include "bmo/bmo_config.hh"

namespace janus
{
namespace
{

TEST(StandardGraph, NodeCountWithAllBmos)
{
    BmoConfig config;
    BmoGraph g = buildStandardGraph(config);
    // E1-E4, D1-D4, I1-I9.
    EXPECT_EQ(g.size(), 4u + 4u + 9u);
}

TEST(StandardGraph, PaperCategorization)
{
    // Paper Section 4.2: "E1-E2 are address-dependent, D1-D2 are
    // data-dependent, and the rest are both".
    BmoConfig config;
    BmoGraph g = buildStandardGraph(config);
    EXPECT_EQ(g.required(g.idOf("E1")), ExternalInput::Addr);
    EXPECT_EQ(g.required(g.idOf("E2")), ExternalInput::Addr);
    EXPECT_EQ(g.required(g.idOf("D1")), ExternalInput::Data);
    EXPECT_EQ(g.required(g.idOf("D2")), ExternalInput::Data);
    for (const char *name : {"E3", "E4", "D3", "D4", "I1", "I5", "I9"})
        EXPECT_EQ(g.required(g.idOf(name)), ExternalInput::Both)
            << name;
}

TEST(StandardGraph, SerializedLatencyAround800ns)
{
    BmoConfig config;
    BmoGraph g = buildStandardGraph(config);
    Tick total = g.serializedLatency();
    // 2+40+1+40 (E) + 321+10+5+40 (D) + 9*40 (I) = 819 ns.
    EXPECT_EQ(total, 819 * ticks::ns);
    // Paper Figure 1: BMOs push critical latency >10x the ~15 ns
    // writeback.
    EXPECT_GT(total, 10 * 15 * ticks::ns);
}

TEST(StandardGraph, CriticalPathThroughDedupAndTree)
{
    BmoConfig config;
    BmoGraph g = buildStandardGraph(config);
    // D1 -> D2 -> I1..I9: 321 + 10 + 360 = 691 ns.
    EXPECT_EQ(g.criticalPath(), 691 * ticks::ns);
}

TEST(StandardGraph, CrcConfigurationShortensD1)
{
    BmoConfig config;
    config.dedupHash = DedupHash::Crc32;
    BmoGraph g = buildStandardGraph(config);
    EXPECT_EQ(g.subOp(g.idOf("D1")).latency, config.crc32Latency);
}

TEST(StandardGraph, MerkleHeightConfigurable)
{
    BmoConfig config;
    config.merkleLevels = 3;
    BmoGraph g = buildStandardGraph(config);
    EXPECT_EQ(g.size(), 4u + 4u + 3u);
    EXPECT_EQ(g.required(g.idOf("I3")), ExternalInput::Both);
}

TEST(StandardGraph, EncryptionOnly)
{
    BmoConfig config;
    config.deduplication = false;
    config.integrity = false;
    BmoGraph g = buildStandardGraph(config);
    // Without integrity there is no MAC step E4.
    EXPECT_EQ(g.size(), 3u);
    EXPECT_EQ(g.required(g.idOf("E3")), ExternalInput::Both);
}

TEST(StandardGraph, DedupOnly)
{
    BmoConfig config;
    config.encryption = false;
    config.integrity = false;
    BmoGraph g = buildStandardGraph(config);
    EXPECT_EQ(g.size(), 4u);
    // Without co-located counters D3 still needs the address.
    EXPECT_EQ(g.required(g.idOf("D3")), ExternalInput::Both);
}

TEST(StandardGraph, IntegrityOnlyLeafIsDataDependent)
{
    BmoConfig config;
    config.encryption = false;
    config.deduplication = false;
    BmoGraph g = buildStandardGraph(config);
    EXPECT_EQ(g.size(), config.merkleLevels);
    EXPECT_EQ(g.required(g.idOf("I1")), ExternalInput::Data);
}

TEST(StandardGraph, CompressionExtension)
{
    BmoConfig config;
    config.compression = true;
    BmoGraph g = buildStandardGraph(config);
    EXPECT_EQ(g.size(), 1u + 4u + 4u + 9u);
    EXPECT_EQ(g.required(g.idOf("C1")), ExternalInput::Data);
    // E3 waits on C1 (compress before encrypting).
    const auto &preds = g.preds(g.idOf("E3"));
    bool found = false;
    for (SubOpId p : preds)
        found |= g.subOp(p).name == "C1";
    EXPECT_TRUE(found);
}

TEST(StandardGraph, WearLevelingExtension)
{
    BmoConfig config;
    config.wearLeveling = true;
    BmoGraph g = buildStandardGraph(config);
    EXPECT_EQ(g.size(), 1u + 4u + 4u + 9u);
    // W1 needs only the address and blocks nothing else: it is
    // pre-executable with PRE_ADDR alone and adds ~nothing to the
    // critical path.
    EXPECT_EQ(g.required(g.idOf("W1")), ExternalInput::Addr);
    EXPECT_TRUE(g.preds(g.idOf("W1")).empty());
    EXPECT_EQ(g.criticalPath(), 691 * ticks::ns);
}

TEST(StandardGraph, FullFiveBmoSystem)
{
    BmoConfig config;
    config.compression = true;
    config.wearLeveling = true;
    BmoGraph g = buildStandardGraph(config);
    EXPECT_EQ(g.size(), 2u + 4u + 4u + 9u);
    EXPECT_EQ(g.serializedLatency(),
              (819 + 20 + 1) * ticks::ns);
}

TEST(StandardGraph, ParallelizationWinsOverSerialization)
{
    BmoConfig config;
    BmoGraph g = buildStandardGraph(config);
    EXPECT_LT(g.criticalPath(), g.serializedLatency());
}

} // namespace
} // namespace janus
