/**
 * @file
 * Golden bit-equality tests for the functional BMO backend: a fixed
 * write/read sequence must always produce the hard-coded Merkle root
 * and ciphertext-image content hash, for every dedup-hash / BMO-mix
 * configuration. These values were harvested from the seed (pre-
 * fast-path) kernels; any optimization that changes a single stored
 * bit or tree digest fails here.
 */

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "bmo/backend_state.hh"

namespace janus
{
namespace
{

std::string
hex64(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/**
 * The pinned traffic: duplicate-heavy rounds over a 48-line working
 * set (exercises dedup hits, same-value rewrites, in-place
 * overwrites and refcount churn), then a burst of unique values
 * (fresh physical lines, dedup-table eviction), with interleaved
 * read-backs and dedup probes so lazy-flush boundaries in the fast
 * path land mid-sequence exactly where verification happens.
 */
void
runGoldenSequence(BmoBackendState &state)
{
    for (unsigned round = 0; round < 4; ++round) {
        for (unsigned i = 0; i < 48; ++i)
            state.writeLine(static_cast<Addr>(i) * lineBytes,
                            CacheLine::fromSeed((i * 7 + round * 5) %
                                                11));
        // Mid-burst observation: must not perturb any state.
        ReadOutcome probe =
            state.readLine(static_cast<Addr>(round) * lineBytes);
        EXPECT_TRUE(probe.macOk);
        EXPECT_TRUE(probe.treeOk);
        state.peekDedup(CacheLine::fromSeed(round));
    }
    for (unsigned i = 0; i < 24; ++i)
        state.writeLine(static_cast<Addr>(i * 3) * lineBytes,
                        CacheLine::fromSeed(0x1000 + i));
    for (unsigned i = 0; i < 48; ++i) {
        ReadOutcome out =
            state.readLine(static_cast<Addr>(i) * lineBytes);
        EXPECT_TRUE(out.macOk) << "line " << i;
        EXPECT_TRUE(out.treeOk) << "line " << i;
    }
}

struct GoldenCase
{
    const char *name;
    bool encryption;
    bool deduplication;
    bool integrity;
    bool compression;
    DedupHash hash;
    /** Expected tree_.root().toHex() after the sequence. */
    const char *root;
    /** Expected storage_.contentHash() after the sequence. */
    const char *content;
};

// Harvested from the seed kernels (byte-wise AES, eager Merkle,
// std::string fingerprints); see runGoldenSequence above.
const GoldenCase kCases[] = {
    {"default_md5", true, true, true, false, DedupHash::Md5,
     "bab95bbc3796cd35632d045e415dead9c426209d", "c3a223ea34dc0598"},
    // No fingerprint collisions occur in this sequence, so CRC-32
    // dedups the same lines as MD5 and the image is identical.
    {"crc32", true, true, true, false, DedupHash::Crc32,
     "bab95bbc3796cd35632d045e415dead9c426209d", "c3a223ea34dc0598"},
    {"enc_only", true, false, false, false, DedupHash::Md5,
     "da5a3d7a86a6d7e5a59072fd4bbb87e6221ae008", "38128f791efa018b"},
    {"dedup_only", false, true, false, false, DedupHash::Md5,
     "da5a3d7a86a6d7e5a59072fd4bbb87e6221ae008", "682711c32e9a6e80"},
    {"integrity_only", false, false, true, false, DedupHash::Md5,
     "773515d49d35fd606e67af619fc44e704ef3a604", "5dc3d22978ea68f6"},
    {"all_off", false, false, false, false, DedupHash::Md5,
     "da5a3d7a86a6d7e5a59072fd4bbb87e6221ae008", "5dc3d22978ea68f6"},
    // Meta entries (and so the tree) don't depend on encryption:
    // same root as integrity_only, same image as enc_only.
    {"enc_integrity", true, false, true, false, DedupHash::Md5,
     "773515d49d35fd606e67af619fc44e704ef3a604", "38128f791efa018b"},
    {"all_plus_compression", true, true, true, true, DedupHash::Md5,
     "bab95bbc3796cd35632d045e415dead9c426209d", "c3a223ea34dc0598"},
};

TEST(GoldenBackend, BitEqualityAcrossConfigs)
{
    for (const GoldenCase &c : kCases) {
        BmoConfig config;
        config.encryption = c.encryption;
        config.deduplication = c.deduplication;
        config.integrity = c.integrity;
        config.compression = c.compression;
        config.dedupHash = c.hash;
        BmoBackendState state(config);
        runGoldenSequence(state);
        EXPECT_EQ(state.merkleRoot().toHex(), c.root) << c.name;
        EXPECT_EQ(hex64(state.storageContentHash()), c.content)
            << c.name;
        EXPECT_TRUE(state.auditIntegrity()) << c.name;
    }
}

TEST(GoldenBackend, StreamlinedCacheSweepBitEquality)
{
    // The streamlined integrity engine is timing-only: whatever the
    // node-cache capacity or epoch window, and however hard the
    // timing layer hammers the probe/epoch surface, the golden root
    // and content hash must not move by a single bit.
    const unsigned cache_sizes[] = {0, 8, 256, 4096};
    for (unsigned cache : cache_sizes) {
        BmoConfig config; // paper default mix (enc+dedup+integrity)
        config.streamlinedIntegrity = true;
        config.merkleCacheNodes = cache;
        config.merkleEpochWrites = 4;
        BmoBackendState state(config);
        MerkleTree &tree = state.merkleTree();
        // Probe exactly as the memory controller would, interleaved
        // around the pinned traffic.
        for (std::uint64_t i = 0; i < 32; ++i) {
            tree.probeUpdatePath(i * 3);
            tree.probeUpdatePath(i * 3, /*mark_epoch=*/false);
            if (i % 5 == 0)
                tree.beginEpoch();
        }
        runGoldenSequence(state);
        for (std::uint64_t i = 0; i < 64; ++i)
            tree.probeUpdatePath(i);
        tree.beginEpoch();
        EXPECT_EQ(state.merkleRoot().toHex(), kCases[0].root)
            << "cache=" << cache;
        EXPECT_EQ(hex64(state.storageContentHash()),
                  kCases[0].content)
            << "cache=" << cache;
        EXPECT_TRUE(state.auditIntegrity()) << "cache=" << cache;
        if (cache == 0)
            EXPECT_EQ(tree.cacheHits(), 0u);
    }
}

TEST(GoldenBackend, SequenceIsDeterministic)
{
    // Two independent backends fed the same sequence agree bit for
    // bit (guards the harvested constants against env dependence).
    BmoConfig config;
    BmoBackendState a(config), b(config);
    runGoldenSequence(a);
    runGoldenSequence(b);
    EXPECT_EQ(a.merkleRoot().toHex(), b.merkleRoot().toHex());
    EXPECT_EQ(a.storageContentHash(), b.storageContentHash());
}

} // namespace
} // namespace janus
