/**
 * @file
 * Unit tests for the PmIR interpreter / timing core: functional
 * semantics (ALU, memory, control flow, calls), persistence timing
 * (clwb + sfence blocking), and the Janus PRE_* interface plumbing.
 */

#include <gtest/gtest.h>

#include "harness/system.hh"
#include "ir/builder.hh"

namespace janus
{
namespace
{

/** Run `fn(args)` once on a fresh single-core system. */
Tick
runOnce(const Module &module, const std::string &fn,
        std::vector<std::uint64_t> args, NvmSystem **out_sys,
        WritePathMode mode = WritePathMode::NoBmo)
{
    SystemConfig config;
    config.mode = mode;
    auto *system = new NvmSystem(config, module);
    bool sent = false;
    std::vector<TxnSource> sources;
    sources.push_back([&, args](std::string &f,
                                std::vector<std::uint64_t> &a) {
        if (sent)
            return false;
        sent = true;
        f = fn;
        a = args;
        return true;
    });
    Tick makespan = system->run(std::move(sources));
    *out_sys = system;
    return makespan;
}

TEST(TimingCore, ArithmeticAndStores)
{
    Module m;
    IrBuilder b(m);
    b.beginFunction("k", 1); // (out)
    int v = b.mulI(b.addI(b.constI(6), 4), 5); // (6+4)*5 = 50
    int w = b.sub(v, b.constI(8));             // 42
    b.store(b.arg(0), w, 0);
    int x = b.xorOp(w, b.constI(0xFF));        // 42 ^ 255 = 213
    b.store(b.arg(0), x, 8);
    int c = b.cmpLt(w, x);
    b.store(b.arg(0), c, 16);
    b.ret();
    b.endFunction();
    verify(m);

    NvmSystem *sys;
    runOnce(m, "k", {0x10000}, &sys);
    EXPECT_EQ(sys->mem().readWord(0x10000), 42u);
    EXPECT_EQ(sys->mem().readWord(0x10008), 213u);
    EXPECT_EQ(sys->mem().readWord(0x10010), 1u);
    EXPECT_EQ(sys->core(0).transactions(), 1u);
    delete sys;
}

TEST(TimingCore, LoopsAndLoads)
{
    // Sum the first n words of an array.
    Module m;
    IrBuilder b(m);
    b.beginFunction("sum", 3); // (array, n, out)
    int i = b.newReg();
    b.constTo(i, 0);
    int acc = b.newReg();
    b.constTo(acc, 0);
    unsigned head = b.newBlock();
    unsigned body = b.newBlock();
    unsigned done = b.newBlock();
    b.br(head);
    b.setBlock(head);
    b.brCond(b.cmpLt(i, b.arg(1)), body, done);
    b.setBlock(body);
    int addr = b.add(b.arg(0), b.shlI(i, 3));
    b.movTo(acc, b.add(acc, b.load(addr, 0)));
    b.movTo(i, b.addI(i, 1));
    b.br(head);
    b.setBlock(done);
    b.store(b.arg(2), acc, 0);
    b.ret();
    b.endFunction();

    Module probe = m; // avoid rebuilding
    NvmSystem *sys;
    {
        SystemConfig config;
        config.mode = WritePathMode::NoBmo;
        sys = new NvmSystem(config, probe);
        for (unsigned k = 0; k < 10; ++k)
            sys->mem().writeWord(0x20000 + 8 * k, k + 1);
        bool sent = false;
        std::vector<TxnSource> sources;
        sources.push_back([&](std::string &f,
                              std::vector<std::uint64_t> &a) {
            if (sent)
                return false;
            sent = true;
            f = "sum";
            a = {0x20000, 10, 0x30000};
            return true;
        });
        sys->run(std::move(sources));
    }
    EXPECT_EQ(sys->mem().readWord(0x30000), 55u);
    EXPECT_GE(sys->core(0).loads(), 10u);
    delete sys;
}

TEST(TimingCore, CallAndReturnValue)
{
    Module m;
    IrBuilder b(m);
    b.beginFunction("twice", 1);
    b.ret(b.mulI(b.arg(0), 2));
    b.endFunction();
    b.beginFunction("k", 2); // (x, out)
    int r = b.call("twice", {b.arg(0)});
    b.store(b.arg(1), r, 0);
    b.ret();
    b.endFunction();

    NvmSystem *sys;
    runOnce(m, "k", {21, 0x40000}, &sys);
    EXPECT_EQ(sys->mem().readWord(0x40000), 42u);
    delete sys;
}

TEST(TimingCore, MemCpyMovesBytesWithDynamicSize)
{
    Module m;
    IrBuilder b(m);
    b.beginFunction("k", 3); // (dst, src, n)
    b.memCpyR(b.arg(0), b.arg(1), b.arg(2));
    b.ret();
    b.endFunction();

    NvmSystem *sys;
    {
        SystemConfig config;
        sys = new NvmSystem(config, m);
        for (unsigned i = 0; i < 100; ++i) {
            std::uint8_t byte = static_cast<std::uint8_t>(i * 3);
            sys->mem().write(0x50000 + i, &byte, 1);
        }
        bool sent = false;
        std::vector<TxnSource> sources;
        sources.push_back([&](std::string &f,
                              std::vector<std::uint64_t> &a) {
            if (sent)
                return false;
            sent = true;
            f = "k";
            a = {0x60000, 0x50000, 100};
            return true;
        });
        sys->run(std::move(sources));
    }
    std::uint8_t out[100];
    sys->mem().read(0x60000, out, 100);
    for (unsigned i = 0; i < 100; ++i)
        EXPECT_EQ(out[i], static_cast<std::uint8_t>(i * 3));
    delete sys;
}

TEST(TimingCore, SfenceBlocksOnPersist)
{
    Module m;
    IrBuilder b(m);
    b.beginFunction("k", 1);
    int v = b.constI(7);
    b.store(b.arg(0), v, 0);
    b.clwb(b.arg(0), 8);
    b.sfence();
    b.ret();
    b.endFunction();

    NvmSystem *serial_sys;
    Tick serial = runOnce(m, "k", {0x70000}, &serial_sys,
                          WritePathMode::Serialized);
    NvmSystem *nobmo_sys;
    Tick nobmo = runOnce(m, "k", {0x70000}, &nobmo_sys,
                         WritePathMode::NoBmo);
    // The serialized BMO chain (~819 ns) lands on the fence.
    EXPECT_GT(serial, nobmo + 700 * ticks::ns);
    EXPECT_GT(serial_sys->core(0).fenceStallTicks(),
              700 * ticks::ns);
    EXPECT_EQ(serial_sys->core(0).persists(), 1u);
    delete serial_sys;
    delete nobmo_sys;
}

TEST(TimingCore, NonBlockingWritebackSkipsFenceWait)
{
    Module m;
    IrBuilder b(m);
    b.beginFunction("k", 1);
    int v = b.constI(7);
    b.store(b.arg(0), v, 0);
    b.clwb(b.arg(0), 8);
    b.sfence();
    b.ret();
    b.endFunction();

    SystemConfig config;
    config.mode = WritePathMode::Serialized;
    config.core.nonBlockingWriteback = true;
    NvmSystem sys(config, m);
    bool sent = false;
    std::vector<TxnSource> sources;
    sources.push_back(
        [&](std::string &f, std::vector<std::uint64_t> &a) {
            if (sent)
                return false;
            sent = true;
            f = "k";
            a = {0x70000};
            return true;
        });
    sys.run(std::move(sources));
    EXPECT_EQ(sys.core(0).fenceStallTicks(), 0u);
    EXPECT_EQ(sys.core(0).persists(), 1u); // still issued
}

TEST(TimingCore, ClwbCoversAllTouchedLines)
{
    Module m;
    IrBuilder b(m);
    b.beginFunction("k", 1);
    b.clwb(b.arg(0), 130); // 3 lines when unaligned
    b.sfence();
    b.ret();
    b.endFunction();
    NvmSystem *sys;
    runOnce(m, "k", {0x70020}, &sys); // offset 0x20 into a line
    EXPECT_EQ(sys->core(0).persists(), 3u);
    delete sys;
}

TEST(TimingCore, PreOpsReachTheFrontend)
{
    Module m;
    IrBuilder b(m);
    b.beginFunction("k", 2); // (addr, valaddr)
    int p = b.preInit();
    b.preData(p, b.arg(1), 64);
    b.preAddr(p, b.arg(0), 64);
    b.ret();
    b.endFunction();

    NvmSystem *sys;
    runOnce(m, "k", {0x80000, 0x90000}, &sys, WritePathMode::Janus);
    EXPECT_EQ(sys->core(0).preRequests(), 2u);
    EXPECT_EQ(sys->mc().frontend().irbOccupancy(), 1u); // merged
    delete sys;
}

TEST(TimingCore, PreOpsAreNoOpsInBaselineModes)
{
    Module m;
    IrBuilder b(m);
    b.beginFunction("k", 1);
    int p = b.preInit();
    b.preAddr(p, b.arg(0), 64);
    b.ret();
    b.endFunction();
    NvmSystem *sys;
    runOnce(m, "k", {0x80000}, &sys, WritePathMode::Serialized);
    EXPECT_EQ(sys->core(0).preRequests(), 0u);
    delete sys;
}

TEST(TimingCore, DeferredBufferingCoalescesFieldUpdates)
{
    // The paper's Figure 8b at IR level: two buffered field updates
    // to one line, started together, consumed by the actual write
    // with a matching (merged) prediction.
    Module m;
    IrBuilder b(m);
    b.beginFunction("k", 3); // (dst, scr1, scr2)
    int p = b.preInit();
    b.preBothBuf(p, b.arg(0), b.arg(1), 8);
    int field2 = b.addI(b.arg(0), 8);
    b.preBothBuf(p, field2, b.arg(2), 8);
    b.preStartBuf(p);
    // Perform the matching stores.
    b.store(b.arg(0), b.load(b.arg(1), 0), 0);
    b.store(b.arg(0), b.load(b.arg(2), 0), 8);
    b.clwb(b.arg(0), 16);
    b.sfence();
    b.ret();
    b.endFunction();
    verify(m);

    SystemConfig config;
    config.mode = WritePathMode::Janus;
    NvmSystem sys(config, m);
    sys.mem().writeWord(0xA0000, 111);
    sys.mem().writeWord(0xA0040, 222);
    bool sent = false;
    std::vector<TxnSource> sources;
    sources.push_back(
        [&](std::string &f, std::vector<std::uint64_t> &a) {
            if (sent)
                return false;
            sent = true;
            f = "k";
            a = {0xB0000, 0xA0000, 0xA0040};
            return true;
        });
    sys.run(std::move(sources));
    JanusFrontend &fe = sys.mc().frontend();
    EXPECT_EQ(fe.consumedWithEntry(), 1u);
    EXPECT_EQ(fe.dataMismatches(), 0u);
    EXPECT_EQ(sys.mem().readWord(0xB0000), 111u);
    EXPECT_EQ(sys.mem().readWord(0xB0008), 222u);
}

TEST(TimingCore, MultipleTransactionsFromSource)
{
    Module m;
    IrBuilder b(m);
    b.beginFunction("k", 1);
    int v = b.constI(1);
    b.store(b.arg(0), v, 0);
    b.ret();
    b.endFunction();

    SystemConfig config;
    NvmSystem sys(config, m);
    unsigned remaining = 5;
    std::vector<TxnSource> sources;
    sources.push_back(
        [&](std::string &f, std::vector<std::uint64_t> &a) {
            if (remaining == 0)
                return false;
            --remaining;
            f = "k";
            a = {0x90000 + remaining * 8};
            return true;
        });
    sys.run(std::move(sources));
    EXPECT_EQ(sys.core(0).transactions(), 5u);
}

} // namespace
} // namespace janus
