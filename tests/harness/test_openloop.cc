/**
 * @file
 * Open-loop load generation and its end-to-end contracts: arrival
 * schedules are pure functions of (config, seed, core); per-tenant
 * books always balance (offered == completed + shed + rejected);
 * results are invariant across shard and scheduler-thread counts;
 * the QoS layer is tick-invisible when disabled (byte-identical
 * stats dumps, zero qos_throttle critical-path share); and adaptive
 * group commit is tick-identical while its trigger never fires.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "harness/openloop.hh"
#include "harness/system.hh"
#include "sim/critpath.hh"
#include "txn/undo_log.hh"
#include "workloads/tenant_mix.hh"
#include "workloads/workload.hh"

namespace janus
{
namespace
{

// --- arrival schedules ----------------------------------------------

OpenLoopConfig
loadConfig(ArrivalProcess process, double rate = 2.0,
           unsigned requests = 64)
{
    OpenLoopConfig cfg;
    cfg.enabled = true;
    cfg.process = process;
    cfg.ratePerUsPerCore = rate;
    cfg.requestsPerCore = requests;
    return cfg;
}

TEST(ArrivalSchedule, StrictlyIncreasingFullLength)
{
    for (ArrivalProcess p :
         {ArrivalProcess::Poisson, ArrivalProcess::Bursty,
          ArrivalProcess::DiurnalRamp}) {
        std::vector<Tick> s =
            makeArrivalSchedule(loadConfig(p), 1, 0);
        ASSERT_EQ(s.size(), 64u);
        for (std::size_t i = 1; i < s.size(); ++i)
            EXPECT_LT(s[i - 1], s[i])
                << "process " << static_cast<int>(p) << " idx " << i;
    }
}

TEST(ArrivalSchedule, PureFunctionOfConfigSeedCore)
{
    OpenLoopConfig cfg = loadConfig(ArrivalProcess::Poisson);
    EXPECT_EQ(makeArrivalSchedule(cfg, 7, 3),
              makeArrivalSchedule(cfg, 7, 3));
    EXPECT_NE(makeArrivalSchedule(cfg, 7, 3),
              makeArrivalSchedule(cfg, 8, 3));
    EXPECT_NE(makeArrivalSchedule(cfg, 7, 3),
              makeArrivalSchedule(cfg, 7, 4));
}

TEST(ArrivalSchedule, MeanRateTracksTheConfiguredLoad)
{
    OpenLoopConfig cfg =
        loadConfig(ArrivalProcess::Poisson, 2.0, 2000);
    std::vector<Tick> s = makeArrivalSchedule(cfg, 1, 0);
    double mean_inter =
        static_cast<double>(s.back()) / static_cast<double>(s.size());
    // 2 req/us -> 0.5 us between arrivals, within sampling noise.
    EXPECT_NEAR(mean_inter, 0.5 * ticks::us, 0.05 * ticks::us);
}

TEST(ArrivalSchedule, PerCoreRateFactorScalesTheMeanRate)
{
    OpenLoopConfig cfg =
        loadConfig(ArrivalProcess::Poisson, 2.0, 2000);
    cfg.rateFactorOfCore = {1.0, 2.0};
    std::vector<Tick> base = makeArrivalSchedule(cfg, 1, 0);
    std::vector<Tick> fast = makeArrivalSchedule(cfg, 1, 1);
    auto meanInter = [](const std::vector<Tick> &s) {
        return static_cast<double>(s.back()) /
               static_cast<double>(s.size());
    };
    // Core 1 offers 2x the rate: half the mean inter-arrival.
    EXPECT_NEAR(meanInter(base), 0.5 * ticks::us,
                0.05 * ticks::us);
    EXPECT_NEAR(meanInter(fast), 0.25 * ticks::us,
                0.025 * ticks::us);
    // Cores past the vector default to factor 1.0, and a factor of
    // exactly 1.0 leaves the schedule untouched.
    EXPECT_EQ(makeArrivalSchedule(cfg, 1, 2),
              [&] {
                  OpenLoopConfig plain = cfg;
                  plain.rateFactorOfCore.clear();
                  return makeArrivalSchedule(plain, 1, 2);
              }());
    OpenLoopConfig plain = cfg;
    plain.rateFactorOfCore.clear();
    EXPECT_EQ(base, makeArrivalSchedule(plain, 1, 0));
}

TEST(ArrivalSchedule, RampStartsSlowEndsFast)
{
    OpenLoopConfig cfg =
        loadConfig(ArrivalProcess::DiurnalRamp, 2.0, 1000);
    cfg.rampStartFactor = 0.25;
    cfg.rampEndFactor = 1.75;
    std::vector<Tick> s = makeArrivalSchedule(cfg, 1, 0);
    // First-quarter inter-arrival gaps are much wider than
    // last-quarter gaps.
    Tick head = s[250] - s[0];
    Tick tail = s[999] - s[749];
    EXPECT_GT(head, 2 * tail);
}

// --- end-to-end open-loop runs --------------------------------------

ExperimentConfig
openLoopExperiment(bool qos_on, unsigned shards = 1,
                   unsigned threads = 1)
{
    ExperimentConfig config;
    config.workloadName = "tenant_mix";
    config.sys.mode = WritePathMode::Janus;
    config.sys.cores = 4;
    config.sys.shards = shards;
    config.sys.shardThreads = threads;
    config.instr = Instrumentation::None;
    config.workload.txnsPerCore = 30;
    config.openLoop = loadConfig(ArrivalProcess::Poisson, 1.0, 30);
    if (qos_on) {
        QosConfig qos = tenantMixQos();
        qos.admissionQueueEntries = 16;
        qos.retryBackoffTicks = 500;
        qos.maxRetries = 3;
        // Shape the log writer hard so shaping + deadlines fire.
        qos.tenants[3].shapeIntervalTicks = 2 * ticks::us;
        qos.tenants[3].shapeBurstLines = 2;
        qos.tenants[3].deadlineTicks = 20 * ticks::us;
        config.sys.qos = qos;
    }
    return config;
}

void
expectBooksBalance(const ExperimentResult &r, std::uint64_t offered)
{
    std::uint64_t total = 0;
    for (const OpenLoopTenantStats &t : r.tenants) {
        EXPECT_EQ(t.offered, t.completed + t.shed + t.rejected)
            << t.name;
        total += t.offered;
    }
    EXPECT_EQ(total, offered);
}

std::string
tenantDigest(const ExperimentResult &r)
{
    std::ostringstream os;
    for (const OpenLoopTenantStats &t : r.tenants)
        os << t.name << ":" << t.priority << ":" << t.offered << ":"
           << t.completed << ":" << t.shed << ":" << t.rejected
           << ":" << t.retries << ":" << t.maxBacklog << ":"
           << t.diverged << ":" << t.meanNs << ":" << t.p50Ns << ":"
           << t.p99Ns << ":" << t.p999Ns << "\n";
    return os.str();
}

TEST(OpenLoop, QosOffCompletesEveryRequest)
{
    ExperimentResult r = runExperiment(openLoopExperiment(false));
    ASSERT_FALSE(r.tenants.empty());
    expectBooksBalance(r, 4 * 30);
    for (const OpenLoopTenantStats &t : r.tenants) {
        // No admission layer: nothing is ever shed or rejected.
        EXPECT_EQ(t.completed, t.offered) << t.name;
        EXPECT_EQ(t.shed, 0u) << t.name;
        EXPECT_EQ(t.rejected, 0u) << t.name;
        EXPECT_EQ(t.retries, 0u) << t.name;
    }
    // Response times were measured.
    EXPECT_GT(r.tenants[0].meanNs, 0);
    EXPECT_GE(r.tenants[0].p999Ns, r.tenants[0].p50Ns);
}

TEST(OpenLoop, QosOnBooksStillBalance)
{
    ExperimentResult r = runExperiment(openLoopExperiment(true));
    ASSERT_EQ(r.tenants.size(), 4u);
    expectBooksBalance(r, 4 * 30);
    // The shaped log writer must have been throttled, shed or
    // completed — never lost.
    const OpenLoopTenantStats &logw = r.tenants[3];
    EXPECT_EQ(logw.name, "log_writer");
    EXPECT_EQ(logw.offered, 30u);
}

TEST(OpenLoop, DeterministicAcrossShardAndThreadCounts)
{
    for (bool qos_on : {false, true}) {
        // Reference machine: serial, single shard.
        ExperimentResult ref =
            runExperiment(openLoopExperiment(qos_on, 1, 1));
        const std::string ref_digest = tenantDigest(ref);
        ASSERT_FALSE(ref_digest.empty());

        for (unsigned shards : {1u, 2u, 4u}) {
            ExperimentResult t1 =
                runExperiment(openLoopExperiment(qos_on, shards, 1));
            ExperimentResult t4 =
                runExperiment(openLoopExperiment(qos_on, shards, 4));
            // Scheduler threads may only change wall time.
            EXPECT_EQ(t1.makespan, t4.makespan)
                << "qos=" << qos_on << " shards=" << shards;
            EXPECT_EQ(tenantDigest(t1), tenantDigest(t4))
                << "qos=" << qos_on << " shards=" << shards;
            // The offered schedule is shard-layout invariant.
            for (std::size_t i = 0; i < ref.tenants.size(); ++i)
                EXPECT_EQ(t1.tenants[i].offered,
                          ref.tenants[i].offered)
                    << "qos=" << qos_on << " shards=" << shards;
        }
    }
}

TEST(OpenLoop, QosThrottleEdgeIsZeroWhenQosOff)
{
    ExperimentResult r = runExperiment(openLoopExperiment(false));
    ASSERT_GT(r.critPath.persists, 0u);
    EXPECT_EQ(r.critPath.ticksOf(CritEdge::QosThrottle), 0u);
    // The edge partition of persist latency still holds exactly.
    EXPECT_NEAR(r.critPath.shareSum(), 1.0, 1e-9);
}

TEST(OpenLoop, QosThrottleEdgeAccountsShapingDelay)
{
    ExperimentConfig config = openLoopExperiment(true);
    // Shape the readers too so the throttle edge cannot be dodged.
    config.sys.qos.tenants[0].shapeIntervalTicks = ticks::us;
    config.sys.qos.tenants[1].shapeIntervalTicks = ticks::us;
    ExperimentResult r = runExperiment(config);
    ASSERT_GT(r.critPath.persists, 0u);
    EXPECT_GT(r.critPath.ticksOf(CritEdge::QosThrottle), 0u);
    EXPECT_NEAR(r.critPath.shareSum(), 1.0, 1e-9);
}

// --- the QoS layer is invisible while disabled ----------------------

struct ClosedLoopDigest
{
    Tick makespan = 0;
    std::string statsJson;
    std::uint64_t memHash = 0;
};

/** Classic closed-loop run via NvmSystem so the raw stats dump is
 *  comparable byte for byte. */
ClosedLoopDigest
runClosedLoop(const SystemConfig &config)
{
    WorkloadParams params;
    params.txnsPerCore = 25;
    auto workload = makeWorkload("array_swap", params);
    Module module;
    buildTxnLibrary(module);
    workload->buildKernels(module, true);

    NvmSystem system(config, module);
    std::vector<TxnSource> sources;
    for (unsigned c = 0; c < config.cores; ++c) {
        workload->setupCore(c, system);
        sources.push_back(workload->source(c, system));
    }
    ClosedLoopDigest d;
    d.makespan = system.run(std::move(sources));
    for (unsigned c = 0; c < config.cores; ++c)
        workload->validate(system.mem(), c);
    std::ostringstream os;
    system.dumpStatsJson(os);
    d.statsJson = os.str();
    d.memHash = system.mem().contentHash();
    return d;
}

TEST(OpenLoop, DisabledQosIsByteIdentical)
{
    SystemConfig plain;
    plain.mode = WritePathMode::Janus;
    plain.cores = 2;

    // A fully populated but disabled QoS config must leave the
    // machine untouched: same ticks, same memory, byte-identical
    // stats (no "qos" group appears in the dump).
    SystemConfig with_qos = plain;
    with_qos.qos = tenantMixQos();
    with_qos.qos.enabled = false;
    with_qos.qos.admissionQueueEntries = 4;
    with_qos.qos.tenants[0].shapeIntervalTicks = 100;

    ClosedLoopDigest a = runClosedLoop(plain);
    ClosedLoopDigest b = runClosedLoop(with_qos);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.memHash, b.memHash);
    EXPECT_EQ(a.statsJson, b.statsJson);
    EXPECT_EQ(a.statsJson.find("qos"), std::string::npos);
}

TEST(OpenLoop, AdaptiveGroupCommitOffIsTickIdentical)
{
    SystemConfig base;
    base.mode = WritePathMode::Janus;
    base.cores = 2;
    base.groupCommitK = 8;

    // Adaptive enabled but with a trigger depth the queue can never
    // reach: tick-identical to adaptive-off (the knob is inert until
    // it actually fires) apart from its own zero-valued counter.
    SystemConfig inert = base;
    inert.gcAdaptive = true;
    inert.gcAdaptiveQueueDepth = 1u << 30;

    ClosedLoopDigest a = runClosedLoop(base);
    ClosedLoopDigest b = runClosedLoop(inert);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.memHash, b.memHash);
    EXPECT_NE(b.statsJson.find("gcAdaptiveCloses"),
              std::string::npos);

    // A hair trigger closes batches early: the counter moves and
    // the run still completes and validates.
    SystemConfig eager = base;
    eager.gcAdaptive = true;
    eager.gcAdaptiveQueueDepth = 1;
    ClosedLoopDigest c = runClosedLoop(eager);
    EXPECT_GT(c.makespan, 0u);
    EXPECT_EQ(c.memHash, a.memHash);
    EXPECT_EQ(c.statsJson.find("\"gcAdaptiveCloses\": 0"),
              std::string::npos);
}

} // namespace
} // namespace janus
