/**
 * @file
 * Tests for the experiment harness: configuration plumbing
 * (resource scaling, dedup hash, core counts), the speedup helper,
 * and negative checks that the crash validators actually reject
 * corrupted images (so the green crash tests mean something).
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "harness/system.hh"
#include "txn/undo_log.hh"

namespace janus
{
namespace
{

TEST(Experiment, ResourceScalePlumbsThrough)
{
    Module empty;
    SystemConfig config;
    config.cores = 2;
    config.resourceScale = 4;
    NvmSystem system(config, empty);
    // 4 units/core x 2 cores x 4 scale.
    EXPECT_EQ(system.mc().engine().units(), 32u);
    EXPECT_EQ(system.mc().config().janusHw.irbEntries, 8 * 64u);
}

TEST(Experiment, UnlimitedResources)
{
    Module empty;
    SystemConfig config;
    config.unlimitedResources = true;
    NvmSystem system(config, empty);
    EXPECT_EQ(system.mc().engine().units(), 0u); // 0 = unlimited
    EXPECT_GE(system.mc().config().janusHw.irbEntries, 1u << 20);
}

TEST(Experiment, DedupHashPlumbsThrough)
{
    ExperimentConfig config;
    config.workloadName = "array_swap";
    config.workload.txnsPerCore = 10;
    config.sys.bmo.dedupHash = DedupHash::Crc32;
    config.sys.mode = WritePathMode::Serialized;
    config.instr = Instrumentation::None;
    ExperimentResult crc = runExperiment(config);
    config.sys.bmo.dedupHash = DedupHash::Md5;
    ExperimentResult md5 = runExperiment(config);
    // MD5's D1 is ~4x CRC's: the serialized path must be slower.
    EXPECT_GT(md5.avgWriteLatencyNs, crc.avgWriteLatencyNs + 200);
}

TEST(Experiment, SpeedupHelperConsistent)
{
    ExperimentConfig config;
    config.workloadName = "tatp";
    config.workload.txnsPerCore = 60;
    config.sys.mode = WritePathMode::Janus;
    config.instr = Instrumentation::Manual;
    double speedup = speedupOverSerialized(config);
    EXPECT_GT(speedup, 1.3);
    EXPECT_LT(speedup, 4.0);
}

TEST(Experiment, MoreCoresMoreTransactions)
{
    ExperimentConfig config;
    config.workloadName = "queue";
    config.workload.txnsPerCore = 30;
    config.sys.cores = 3;
    config.sys.mode = WritePathMode::Parallel;
    config.instr = Instrumentation::None;
    ExperimentResult r = runExperiment(config);
    EXPECT_EQ(r.transactions, 90u);
}

/** Run a workload with journaling and hand back system + workload. */
struct CrashRig
{
    std::unique_ptr<Workload> workload;
    std::unique_ptr<NvmSystem> system;
    SparseMemory finalImage;
};

CrashRig
runForImage(const std::string &name)
{
    CrashRig rig;
    WorkloadParams params;
    params.txnsPerCore = 15;
    rig.workload = makeWorkload(name, params);
    Module module;
    buildTxnLibrary(module);
    rig.workload->buildKernels(module, false);
    SystemConfig config;
    config.mode = WritePathMode::Serialized;
    rig.system = std::make_unique<NvmSystem>(config, module);
    rig.system->mc().enableJournal();
    rig.workload->setupCore(0, *rig.system);
    SparseMemory initial;
    initial.copyFrom(rig.system->mem());
    std::vector<TxnSource> sources;
    sources.push_back(rig.workload->source(0, *rig.system));
    rig.system->run(std::move(sources));
    rig.finalImage.copyFrom(initial);
    for (const JournalEntry &e : rig.system->mc().journal())
        rig.finalImage.writeLine(e.lineAddr, e.data);
    recoverUndoLog(rig.finalImage, rig.workload->logBase(0));
    return rig;
}

TEST(CrashValidators, TpccDetectsTornOrder)
{
    CrashRig rig = runForImage("tpcc");
    rig.workload->validateRecovered(rig.finalImage, 0); // clean
    // Corrupt a committed order line: the validator must object.
    Addr heap = rig.system->mem().readWord(
        rig.workload->ctxAddr(0) + ctx::heap);
    Addr order0 = heap + lineBytes;
    rig.finalImage.writeWord(order0 + lineBytes, 0xBAD);
    EXPECT_DEATH(rig.workload->validateRecovered(rig.finalImage, 0),
                 "torn");
}

TEST(CrashValidators, QueueDetectsBogusIndices)
{
    CrashRig rig = runForImage("queue");
    rig.workload->validateRecovered(rig.finalImage, 0);
    Addr heap = rig.system->mem().readWord(
        rig.workload->ctxAddr(0) + ctx::heap);
    rig.finalImage.writeWord(heap + 8,
                             rig.finalImage.readWord(heap) + 1000);
    EXPECT_DEATH(rig.workload->validateRecovered(rig.finalImage, 0),
                 "indices");
}

TEST(CrashValidators, TatpDetectsForeignValue)
{
    CrashRig rig = runForImage("tatp");
    rig.workload->validateRecovered(rig.finalImage, 0);
    Addr heap = rig.system->mem().readWord(
        rig.workload->ctxAddr(0) + ctx::heap);
    rig.finalImage.writeWord(heap + lineBytes, 0xDEAD);
    EXPECT_DEATH(rig.workload->validateRecovered(rig.finalImage, 0),
                 "torn");
}

} // namespace
} // namespace janus
