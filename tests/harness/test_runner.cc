/**
 * @file
 * Tests for the parallel experiment runner: thread resolution, and
 * the core guarantee that running a config matrix on N worker
 * threads produces results bit-identical to running it serially
 * (every experiment owns its event queue; nothing simulated is
 * shared). This binary is also the target of the TSan CI job.
 */

#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "harness/runner.hh"

namespace janus
{
namespace
{

std::vector<ExperimentConfig>
smallMatrix()
{
    std::vector<ExperimentConfig> configs;
    const char *workloads[] = {"array_swap", "queue", "tatp"};
    const WritePathMode modes[] = {WritePathMode::Serialized,
                                   WritePathMode::Janus};
    for (const char *w : workloads) {
        for (WritePathMode m : modes) {
            ExperimentConfig c;
            c.workloadName = w;
            c.workload.txnsPerCore = 12;
            c.sys.cores = 2;
            c.sys.mode = m;
            c.instr = m == WritePathMode::Serialized
                          ? Instrumentation::None
                          : Instrumentation::Manual;
            configs.push_back(std::move(c));
        }
    }
    return configs;
}

/** Compare every deterministic field (not wallSeconds). */
void
expectSameResults(const std::vector<ExperimentResult> &a,
                  const std::vector<ExperimentResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].makespan, b[i].makespan) << "config " << i;
        EXPECT_EQ(a[i].avgWriteLatencyNs, b[i].avgWriteLatencyNs)
            << "config " << i;
        EXPECT_EQ(a[i].measuredDupRatio, b[i].measuredDupRatio)
            << "config " << i;
        EXPECT_EQ(a[i].fullyPreExecutedFrac,
                  b[i].fullyPreExecutedFrac)
            << "config " << i;
        EXPECT_EQ(a[i].instructions, b[i].instructions)
            << "config " << i;
        EXPECT_EQ(a[i].transactions, b[i].transactions)
            << "config " << i;
        EXPECT_EQ(a[i].persists, b[i].persists) << "config " << i;
        EXPECT_EQ(a[i].preRequests, b[i].preRequests)
            << "config " << i;
        EXPECT_EQ(a[i].fenceStallTicks, b[i].fenceStallTicks)
            << "config " << i;
        EXPECT_EQ(a[i].eventsExecuted, b[i].eventsExecuted)
            << "config " << i;
        EXPECT_EQ(a[i].traceJson, b[i].traceJson)
            << "config " << i;
        EXPECT_EQ(a[i].traceEventsRecorded, b[i].traceEventsRecorded)
            << "config " << i;
        EXPECT_EQ(a[i].traceEventsDropped, b[i].traceEventsDropped)
            << "config " << i;
    }
}

TEST(Runner, ParallelMatchesSerialBitForBit)
{
    std::vector<ExperimentConfig> configs = smallMatrix();
    std::vector<ExperimentResult> serial =
        runExperiments(configs, 1);
    std::vector<ExperimentResult> parallel =
        runExperiments(configs, 4);
    expectSameResults(serial, parallel);
}

TEST(Runner, TracedRunsAreBitIdenticalSerialVsParallel)
{
    // Tracing on every experiment must not perturb the simulation,
    // and the recorded traces themselves must be deterministic: the
    // parallel pool produces byte-identical trace JSON to a serial
    // run of the same matrix.
    std::vector<ExperimentConfig> configs = smallMatrix();
    for (ExperimentConfig &c : configs)
        c.sys.trace = true;
    std::vector<ExperimentResult> serial =
        runExperiments(configs, 1);
    std::vector<ExperimentResult> parallel =
        runExperiments(configs, 4);
    expectSameResults(serial, parallel);
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_GT(serial[i].traceEventsRecorded, 0u)
            << "config " << i;
        EXPECT_FALSE(serial[i].traceJson.empty()) << "config " << i;
    }

    // And tracing must not change the simulated outcome at all.
    std::vector<ExperimentConfig> untraced = smallMatrix();
    std::vector<ExperimentResult> base =
        runExperiments(untraced, 4);
    ASSERT_EQ(base.size(), parallel.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
        EXPECT_EQ(base[i].makespan, parallel[i].makespan)
            << "config " << i;
        EXPECT_EQ(base[i].eventsExecuted, parallel[i].eventsExecuted)
            << "config " << i;
    }
}

TEST(Runner, MoreThreadsThanConfigs)
{
    std::vector<ExperimentConfig> configs = smallMatrix();
    configs.resize(2);
    std::vector<ExperimentResult> serial =
        runExperiments(configs, 1);
    std::vector<ExperimentResult> wide =
        runExperiments(configs, 64);
    expectSameResults(serial, wide);
}

TEST(Runner, EmptyMatrix)
{
    std::vector<ExperimentConfig> configs;
    EXPECT_TRUE(runExperiments(configs, 4).empty());
}

TEST(Runner, ResultsKeepConfigOrder)
{
    // Workloads with different txn counts make slot mixups visible.
    std::vector<ExperimentConfig> configs;
    for (unsigned cores : {1u, 2u, 3u, 4u}) {
        ExperimentConfig c;
        c.workloadName = "queue";
        c.workload.txnsPerCore = 10;
        c.sys.cores = cores;
        c.instr = Instrumentation::None;
        c.sys.mode = WritePathMode::Serialized;
        configs.push_back(std::move(c));
    }
    std::vector<ExperimentResult> results =
        runExperiments(configs, 4);
    ASSERT_EQ(results.size(), 4u);
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(results[i].transactions, (i + 1) * 10u);
}

TEST(Runner, MalformedSeedIsAHardError)
{
    // A mistyped JANUS_SEED (or --seed=) must never be silently
    // ignored: the process exits naming the bad value.
    EXPECT_EXIT(parseSeedLiteral("12x", "JANUS_SEED"),
                ::testing::ExitedWithCode(1),
                "malformed JANUS_SEED='12x'");
    EXPECT_EXIT(parseSeedLiteral("", "JANUS_SEED"),
                ::testing::ExitedWithCode(1), "malformed");
    EXPECT_EXIT(parseSeedLiteral("-3", "--seed"),
                ::testing::ExitedWithCode(1),
                "malformed --seed='-3'");
    EXPECT_EXIT(parseSeedLiteral("99999999999999999999999",
                                 "JANUS_SEED"),
                ::testing::ExitedWithCode(1), "malformed");
    EXPECT_EQ(parseSeedLiteral("0", "JANUS_SEED"), 0u);
    EXPECT_EQ(parseSeedLiteral("18446744073709551615", "--seed"),
              ~std::uint64_t(0));
}

TEST(Runner, ResolveThreadsHonorsEnv)
{
    ::setenv("JANUS_BENCH_THREADS", "3", 1);
    EXPECT_EQ(resolveThreads(), 3u);
    // An explicit request beats the environment.
    EXPECT_EQ(resolveThreads(7), 7u);
    ::setenv("JANUS_BENCH_THREADS", "not-a-number", 1);
    EXPECT_GE(resolveThreads(), 1u);
    ::unsetenv("JANUS_BENCH_THREADS");
    EXPECT_GE(resolveThreads(), 1u);
}

} // namespace
} // namespace janus
