/**
 * @file
 * Crash-consistency fault injection: run every workload with the
 * persist journal enabled, then for many crash points rebuild the
 * durable image (initial state + the journal prefix durable at the
 * crash tick), run undo-log recovery, and check the workload's
 * any-boundary invariants. This exercises the whole protocol the
 * paper's system depends on: persist ordering (ADR FIFO), backup
 * before update, commit truncation, and metadata atomicity.
 */

#include <gtest/gtest.h>

#include "harness/system.hh"
#include "txn/undo_log.hh"
#include "workloads/workload.hh"

namespace janus
{
namespace
{

struct CrashCase
{
    const char *workload;
    WritePathMode mode;
    bool manual;
};

std::string
caseName(const testing::TestParamInfo<CrashCase> &info)
{
    std::string mode =
        info.param.mode == WritePathMode::Janus ? "Janus" : "Serialized";
    return std::string(info.param.workload) + "_" + mode;
}

class CrashSweep : public testing::TestWithParam<CrashCase>
{
};

TEST_P(CrashSweep, EveryCrashPointRecovers)
{
    const CrashCase &c = GetParam();
    WorkloadParams params;
    params.txnsPerCore = 30;
    auto workload = makeWorkload(c.workload, params);

    Module module;
    buildTxnLibrary(module);
    workload->buildKernels(module, c.manual);
    verify(module);

    SystemConfig sys;
    sys.mode = c.mode;
    NvmSystem system(sys, module);
    system.mc().enableJournal();
    workload->setupCore(0, system);

    // The durable image starts as the post-setup state.
    SparseMemory initial;
    initial.copyFrom(system.mem());

    std::vector<TxnSource> sources;
    sources.push_back(workload->source(0, system));
    system.run(std::move(sources));
    workload->validate(system.mem(), 0);

    const auto &journal = system.mc().journal();
    ASSERT_FALSE(journal.empty());
    // Persist-domain FIFO: the journal must be durable in order.
    for (std::size_t i = 1; i < journal.size(); ++i)
        ASSERT_GE(journal[i].persisted, journal[i - 1].persisted);

    // Crash between every pair of consecutive durable writes (where
    // the ticks actually differ), plus before the first and after
    // the last.
    unsigned tested = 0;
    unsigned rollbacks = 0;
    SparseMemory image;
    image.copyFrom(initial);
    std::size_t applied = 0;
    auto test_point = [&]() {
        SparseMemory crashed;
        crashed.copyFrom(image);
        rollbacks += recoverUndoLog(crashed, workload->logBase(0)) > 0;
        workload->validateRecovered(crashed, 0);
        ++tested;
    };
    test_point();
    while (applied < journal.size()) {
        Tick tick = journal[applied].persisted;
        while (applied < journal.size() &&
               journal[applied].persisted == tick) {
            image.writeLine(journal[applied].lineAddr,
                            journal[applied].data);
            ++applied;
        }
        test_point();
    }
    EXPECT_GT(tested, 30u);
    // Some crash points must fall inside transactions (rollbacks).
    EXPECT_GT(rollbacks, 0u);

    // The final durable image, recovered, must also be consistent.
    SparseMemory final_image;
    final_image.copyFrom(image);
    recoverUndoLog(final_image, workload->logBase(0));
    workload->validateRecovered(final_image, 0);
}

std::vector<CrashCase>
allCases()
{
    std::vector<CrashCase> cases;
    for (const std::string &w : allWorkloadNames()) {
        cases.push_back({w.c_str(), WritePathMode::Serialized, false});
        cases.push_back({w.c_str(), WritePathMode::Janus, true});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, CrashSweep,
                         testing::ValuesIn(allCases()), caseName);

} // namespace
} // namespace janus
