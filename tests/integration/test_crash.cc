/**
 * @file
 * Crash-consistency sweep, expressed as a thin wrapper over the
 * src/fault/ crash-audit subsystem: for every workload and write-path
 * mode, enumerate all persist-boundary crash points (write-queue
 * accept, bank completion, commit records, fence retires), replay
 * undo-log recovery at each one, and check the workload's
 * any-boundary invariants plus the backend integrity audit. The
 * heavy lifting (enumeration, image reconstruction, panic capture,
 * reporting) lives in src/fault/crash_audit.cc and is unit-tested in
 * tests/fault/.
 */

#include <gtest/gtest.h>

#include "fault/crash_audit.hh"
#include "workloads/workload.hh"

namespace janus
{
namespace
{

struct CrashCase
{
    std::string workload;
    WritePathMode mode;
    bool manual;
};

std::string
caseName(const testing::TestParamInfo<CrashCase> &info)
{
    std::string mode = info.param.mode == WritePathMode::Janus
                           ? "Janus"
                           : "Serialized";
    return info.param.workload + "_" + mode;
}

class CrashSweep : public testing::TestWithParam<CrashCase>
{
};

TEST_P(CrashSweep, EveryCrashPointRecovers)
{
    const CrashCase &c = GetParam();
    AuditConfig config;
    config.workload = c.workload;
    config.mode = c.mode;
    config.manual = c.manual;
    config.txnsPerCore = 30;
    config.samplePoints = 0; // exhaustive
    config.injectionTrials = 0;

    AuditReport report = runCrashAudit(config);
    EXPECT_TRUE(report.passed()) << report.toJson();
    EXPECT_FALSE(report.hasFailure())
        << "repro: " << report.repro();
    EXPECT_EQ(report.sweptPoints, report.totalPoints);
    EXPECT_GT(report.totalPoints, 30u);
    // Some crash points must fall inside transactions (rollbacks).
    EXPECT_GT(report.rollbacks, 0u);
    EXPECT_TRUE(report.backendVerified);
}

std::vector<CrashCase>
allCases()
{
    std::vector<CrashCase> cases;
    for (const std::string &w : allWorkloadNames()) {
        cases.push_back({w, WritePathMode::Serialized, false});
        cases.push_back({w, WritePathMode::Janus, true});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, CrashSweep,
                         testing::ValuesIn(allCases()), caseName);

} // namespace
} // namespace janus
