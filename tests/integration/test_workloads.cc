/**
 * @file
 * Parameterized functional sweep: every Table 4 workload runs to
 * completion and passes its native invariant validator under every
 * write-path mode and instrumentation flavor.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

namespace janus
{
namespace
{

struct Case
{
    const char *workload;
    WritePathMode mode;
    Instrumentation instr;
};

std::string
caseName(const testing::TestParamInfo<Case> &info)
{
    const Case &c = info.param;
    std::string mode;
    switch (c.mode) {
      case WritePathMode::NoBmo: mode = "NoBmo"; break;
      case WritePathMode::Serialized: mode = "Serialized"; break;
      case WritePathMode::Parallel: mode = "Parallel"; break;
      case WritePathMode::Janus: mode = "Janus"; break;
    }
    std::string instr;
    switch (c.instr) {
      case Instrumentation::None: instr = "None"; break;
      case Instrumentation::Manual: instr = "Manual"; break;
      case Instrumentation::Auto: instr = "Auto"; break;
    }
    return std::string(c.workload) + "_" + mode + "_" + instr;
}

class WorkloadSweep : public testing::TestWithParam<Case>
{
};

TEST_P(WorkloadSweep, RunsAndValidates)
{
    const Case &c = GetParam();
    ExperimentConfig config;
    config.workloadName = c.workload;
    config.workload.txnsPerCore = 60;
    config.sys.mode = c.mode;
    config.instr = c.instr;
    ExperimentResult r = runExperiment(config); // validates inside
    EXPECT_EQ(r.transactions, 60u);
    EXPECT_GT(r.persists, 0u);
}

std::vector<Case>
allCases()
{
    std::vector<Case> cases;
    for (const std::string &w : allWorkloadNames()) {
        cases.push_back({w.c_str(), WritePathMode::Serialized,
                         Instrumentation::None});
        cases.push_back({w.c_str(), WritePathMode::Parallel,
                         Instrumentation::None});
        cases.push_back({w.c_str(), WritePathMode::Janus,
                         Instrumentation::Manual});
        cases.push_back({w.c_str(), WritePathMode::Janus,
                         Instrumentation::Auto});
        cases.push_back({w.c_str(), WritePathMode::NoBmo,
                         Instrumentation::None});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadSweep,
                         testing::ValuesIn(allCases()), caseName);

class WorkloadMultiCore : public testing::TestWithParam<const char *>
{
};

TEST_P(WorkloadMultiCore, FourCoresValidate)
{
    ExperimentConfig config;
    config.workloadName = GetParam();
    config.workload.txnsPerCore = 25;
    config.sys.cores = 4;
    config.sys.mode = WritePathMode::Janus;
    config.instr = Instrumentation::Manual;
    ExperimentResult r = runExperiment(config);
    EXPECT_EQ(r.transactions, 100u);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadMultiCore,
    testing::Values("array_swap", "queue", "hash_table", "rb_tree",
                    "b_tree", "tatp", "tpcc"));

class WorkloadLargeValues : public testing::TestWithParam<const char *>
{
};

TEST_P(WorkloadLargeValues, ValidatesWith512ByteValues)
{
    ExperimentConfig config;
    config.workloadName = GetParam();
    config.workload.txnsPerCore = 20;
    config.workload.valueBytes = 512;
    config.sys.mode = WritePathMode::Janus;
    config.instr = Instrumentation::Manual;
    ExperimentResult r = runExperiment(config);
    EXPECT_EQ(r.transactions, 20u);
}

INSTANTIATE_TEST_SUITE_P(
    ScalableWorkloads, WorkloadLargeValues,
    testing::Values("array_swap", "queue", "hash_table", "rb_tree",
                    "b_tree"));

} // namespace
} // namespace janus
