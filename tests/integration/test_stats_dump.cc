/**
 * @file
 * Integration test for the system-wide statistics dump.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "harness/system.hh"
#include "txn/undo_log.hh"
#include "workloads/workload.hh"

namespace janus
{
namespace
{

TEST(StatsDump, CoversEveryComponent)
{
    WorkloadParams params;
    params.txnsPerCore = 20;
    auto workload = makeWorkload("tatp", params);
    Module module;
    buildTxnLibrary(module);
    workload->buildKernels(module, true);

    SystemConfig config;
    config.mode = WritePathMode::Janus;
    config.cores = 2;
    NvmSystem system(config, module);
    for (unsigned c = 0; c < 2; ++c)
        workload->setupCore(c, system);
    std::vector<TxnSource> sources;
    for (unsigned c = 0; c < 2; ++c)
        sources.push_back(workload->source(c, system));
    system.run(std::move(sources));

    std::ostringstream os;
    system.dumpStats(os);
    std::string stats = os.str();

    for (const char *line :
         {"core0.instructions", "core1.instructions",
          "core0.transactions", "core0.l1HitRate", "mc.writes",
          "mc.avgWriteLatencyNs", "mc.counterCacheHitRate",
          "mc.stageBmoNs", "mc.stageQueueNs", "mc.stageOrderNs",
          "mc.persistLatencyNs.p50", "mc.persistLatencyNs.p99",
          "nvm.writesAccepted", "nvm.queueDepth.timeAvg",
          "nvm.queueDepth.max", "bmoEngine.subOpsExecuted",
          "backend.dupRatio", "janus.requestsIssued",
          "janus.irb_hits", "janus.irb_misses",
          "janus.preexec_covered_subops",
          "janus.irbOccupancy.timeAvg",
          "janus.consumedFullyPreExecuted"})
        EXPECT_NE(stats.find(line), std::string::npos) << line;

    // Values are real, not placeholders.
    EXPECT_EQ(stats.find("core0.transactions 0\n"),
              std::string::npos);
}

TEST(StatsDump, DeterministicOrderAndJson)
{
    WorkloadParams params;
    params.txnsPerCore = 10;
    auto workload = makeWorkload("array_swap", params);
    Module module;
    buildTxnLibrary(module);
    workload->buildKernels(module, true);

    auto run_once = [&](std::string *json) {
        SystemConfig config;
        config.mode = WritePathMode::Janus;
        NvmSystem system(config, module);
        workload->setupCore(0, system);
        std::vector<TxnSource> sources;
        sources.push_back(workload->source(0, system));
        system.run(std::move(sources));
        std::ostringstream os;
        system.dumpStats(os);
        if (json) {
            std::ostringstream js;
            system.dumpStatsJson(js);
            *json = js.str();
        }
        return os.str();
    };

    std::string json;
    std::string first = run_once(&json);
    std::string second = run_once(nullptr);
    // Byte-identical dumps across identical runs.
    EXPECT_EQ(first, second);

    // Groups appear in lexicographic order.
    std::size_t backend = first.find("backend.");
    std::size_t bmo = first.find("bmoEngine.");
    std::size_t core0 = first.find("core0.");
    std::size_t janus_pos = first.find("janus.");
    std::size_t mc = first.find("mc.");
    std::size_t nvm = first.find("nvm.");
    ASSERT_NE(backend, std::string::npos);
    EXPECT_LT(backend, bmo);
    EXPECT_LT(bmo, core0);
    EXPECT_LT(core0, janus_pos);
    EXPECT_LT(janus_pos, mc);
    EXPECT_LT(mc, nvm);

    // The JSON dump mirrors the same groups.
    for (const char *key :
         {"\"backend\"", "\"bmoEngine\"", "\"core0\"", "\"janus\"",
          "\"mc\"", "\"nvm\""})
        EXPECT_NE(json.find(key), std::string::npos) << key;
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json[json.size() - 2], '}'); // trailing newline
}

TEST(StatsDump, NoJanusGroupInBaselineModes)
{
    WorkloadParams params;
    params.txnsPerCore = 5;
    auto workload = makeWorkload("array_swap", params);
    Module module;
    buildTxnLibrary(module);
    workload->buildKernels(module, false);

    SystemConfig config;
    config.mode = WritePathMode::Serialized;
    NvmSystem system(config, module);
    workload->setupCore(0, system);
    std::vector<TxnSource> sources;
    sources.push_back(workload->source(0, system));
    system.run(std::move(sources));

    std::ostringstream os;
    system.dumpStats(os);
    EXPECT_EQ(os.str().find("janus."), std::string::npos);
}

} // namespace
} // namespace janus
