/**
 * @file
 * Integration test for the system-wide statistics dump.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "harness/system.hh"
#include "txn/undo_log.hh"
#include "workloads/workload.hh"

namespace janus
{
namespace
{

TEST(StatsDump, CoversEveryComponent)
{
    WorkloadParams params;
    params.txnsPerCore = 20;
    auto workload = makeWorkload("tatp", params);
    Module module;
    buildTxnLibrary(module);
    workload->buildKernels(module, true);

    SystemConfig config;
    config.mode = WritePathMode::Janus;
    config.cores = 2;
    NvmSystem system(config, module);
    for (unsigned c = 0; c < 2; ++c)
        workload->setupCore(c, system);
    std::vector<TxnSource> sources;
    for (unsigned c = 0; c < 2; ++c)
        sources.push_back(workload->source(c, system));
    system.run(std::move(sources));

    std::ostringstream os;
    system.dumpStats(os);
    std::string stats = os.str();

    for (const char *line :
         {"core0.instructions", "core1.instructions",
          "core0.transactions", "core0.l1HitRate", "mc.writes",
          "mc.avgWriteLatencyNs", "mc.counterCacheHitRate",
          "nvm.writesAccepted", "bmoEngine.subOpsExecuted",
          "backend.dupRatio", "janus.requestsIssued",
          "janus.consumedFullyPreExecuted"})
        EXPECT_NE(stats.find(line), std::string::npos) << line;

    // Values are real, not placeholders.
    EXPECT_EQ(stats.find("core0.transactions 0\n"),
              std::string::npos);
}

TEST(StatsDump, NoJanusGroupInBaselineModes)
{
    WorkloadParams params;
    params.txnsPerCore = 5;
    auto workload = makeWorkload("array_swap", params);
    Module module;
    buildTxnLibrary(module);
    workload->buildKernels(module, false);

    SystemConfig config;
    config.mode = WritePathMode::Serialized;
    NvmSystem system(config, module);
    workload->setupCore(0, system);
    std::vector<TxnSource> sources;
    sources.push_back(workload->source(0, system));
    system.run(std::move(sources));

    std::ostringstream os;
    system.dumpStats(os);
    EXPECT_EQ(os.str().find("janus."), std::string::npos);
}

} // namespace
} // namespace janus
