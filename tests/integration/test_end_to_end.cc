/**
 * @file
 * End-to-end integration tests: the full stack (IR kernels, txn
 * runtime, timing cores, memory controller, BMOs, Janus) running the
 * Array Swap workload, checking both functional correctness and the
 * paper's headline performance ordering.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

namespace janus
{
namespace
{

ExperimentConfig
baseConfig()
{
    ExperimentConfig config;
    config.workloadName = "array_swap";
    config.workload.txnsPerCore = 40;
    config.workload.valueBytes = 64;
    config.workload.dupRatio = 0.5;
    return config;
}

ExperimentResult
runMode(WritePathMode mode, Instrumentation instr,
        unsigned cores = 1)
{
    ExperimentConfig config = baseConfig();
    config.sys.mode = mode;
    config.sys.cores = cores;
    config.instr = instr;
    return runExperiment(config);
}

TEST(EndToEnd, SerializedRunsAndValidates)
{
    ExperimentResult r =
        runMode(WritePathMode::Serialized, Instrumentation::None);
    EXPECT_EQ(r.transactions, 40u);
    EXPECT_GT(r.persists, 0u);
    EXPECT_GT(r.makespan, 0u);
}

TEST(EndToEnd, SerializedWriteLatencyFarAboveNoBmo)
{
    ExperimentResult serial =
        runMode(WritePathMode::Serialized, Instrumentation::None);
    ExperimentResult nobmo =
        runMode(WritePathMode::NoBmo, Instrumentation::None);
    // Figure 1: BMOs raise critical write latency by >10x over the
    // bare persist path.
    EXPECT_GT(serial.avgWriteLatencyNs, 500.0);
    EXPECT_GT(serial.avgWriteLatencyNs,
              5 * nobmo.avgWriteLatencyNs);
    EXPECT_GT(serial.makespan, nobmo.makespan);
}

TEST(EndToEnd, ParallelBeatsSerialized)
{
    ExperimentResult serial =
        runMode(WritePathMode::Serialized, Instrumentation::None);
    ExperimentResult parallel =
        runMode(WritePathMode::Parallel, Instrumentation::None);
    EXPECT_LT(parallel.makespan, serial.makespan);
}

TEST(EndToEnd, JanusManualBeatsParallel)
{
    ExperimentResult parallel =
        runMode(WritePathMode::Parallel, Instrumentation::None);
    ExperimentResult manual =
        runMode(WritePathMode::Janus, Instrumentation::Manual);
    EXPECT_LT(manual.makespan, parallel.makespan);
    EXPECT_GT(manual.fullyPreExecutedFrac, 0.1);
    EXPECT_GT(manual.preRequests, 0u);
}

TEST(EndToEnd, AutoInstrumentationWorksAndIsOrdered)
{
    ExperimentResult serial =
        runMode(WritePathMode::Serialized, Instrumentation::None);
    ExperimentResult manual =
        runMode(WritePathMode::Janus, Instrumentation::Manual);
    ExperimentResult automatic =
        runMode(WritePathMode::Janus, Instrumentation::Auto);
    EXPECT_GT(automatic.instrReport.writebacksFound, 0u);
    EXPECT_GT(automatic.instrReport.dataInjected, 0u);
    // Auto must beat the serialized baseline and not beat manual by
    // more than noise.
    EXPECT_LT(automatic.makespan, serial.makespan);
    EXPECT_LE(manual.makespan, automatic.makespan * 1.20);
}

TEST(EndToEnd, MultiCoreScalesWork)
{
    ExperimentResult one =
        runMode(WritePathMode::Janus, Instrumentation::Manual, 1);
    ExperimentResult four =
        runMode(WritePathMode::Janus, Instrumentation::Manual, 4);
    EXPECT_EQ(four.transactions, 4 * one.transactions);
    // Four cores contend: makespan grows, but far less than 4x work
    // serialized onto one core would.
    EXPECT_GT(four.makespan, one.makespan / 2);
}

TEST(EndToEnd, SpeedupHelperMatchesPaperDirection)
{
    ExperimentConfig config = baseConfig();
    config.sys.mode = WritePathMode::Janus;
    config.instr = Instrumentation::Manual;
    double speedup = speedupOverSerialized(config);
    EXPECT_GT(speedup, 1.3);
    EXPECT_LT(speedup, 8.0);
}

TEST(EndToEnd, DuplicatesObservedAtConfiguredRatio)
{
    ExperimentResult r =
        runMode(WritePathMode::Serialized, Instrumentation::None);
    // Swaps re-write existing values and log entries duplicate old
    // data, so the measured ratio should be clearly nonzero.
    EXPECT_GT(r.measuredDupRatio, 0.1);
}

TEST(EndToEnd, NonBlockingWritebackIsFastest)
{
    ExperimentConfig config = baseConfig();
    config.sys.mode = WritePathMode::Serialized;
    config.sys.core.nonBlockingWriteback = true;
    ExperimentResult ideal = runExperiment(config);
    ExperimentResult janus =
        runMode(WritePathMode::Janus, Instrumentation::Manual);
    ExperimentResult serial =
        runMode(WritePathMode::Serialized, Instrumentation::None);
    // Figure 10 ordering: ideal < Janus < serialized.
    EXPECT_LT(ideal.makespan, janus.makespan);
    EXPECT_LT(janus.makespan, serial.makespan);
    EXPECT_EQ(ideal.fenceStallTicks, 0u);
}

} // namespace
} // namespace janus
