/**
 * @file
 * Tracing + time-series sampling running together: a deliberately
 * tiny trace ring overflows mid-run while the metrics sampler is
 * live, and both exports must still be well-formed JSON (validated
 * by parsing them back) with consistent bookkeeping. Guards the
 * observability layers against corrupting each other — they hook the
 * same persist path.
 */

#include <gtest/gtest.h>

#include "common/json.hh"
#include "harness/experiment.hh"

namespace janus
{
namespace
{

ExperimentConfig
observedConfig()
{
    ExperimentConfig config;
    config.workloadName = "hash_table";
    config.workload.txnsPerCore = 40;
    config.sys.cores = 2;
    config.sys.mode = WritePathMode::Janus;
    config.instr = Instrumentation::Manual;
    config.sys.trace = true;
    config.sys.traceCapacity = 16; // force ring overflow
    config.sys.metrics = true;
    config.sys.metricsWindowTicks = 1 * ticks::us;
    return config;
}

TEST(MetricsTrace, OverflowingTracerKeepsBothExportsValid)
{
    ExperimentResult r = runExperiment(observedConfig());

    // The tiny ring must have overflowed — that's the scenario.
    EXPECT_GT(r.traceEventsDropped, 0u);
    EXPECT_GT(r.traceEventsRecorded, 0u);
    EXPECT_GT(r.metricsWindows, 0u);

    // Both exports parse; no truncated or interleaved output.
    JsonValue trace = parseJson(r.traceJson);
    const JsonValue &events = trace["traceEvents"];
    ASSERT_GT(events.size(), 0u);
    // The ring retains at most traceCapacity events (metadata "M"
    // records naming the tracks ride on top).
    std::size_t spans = 0;
    for (const JsonValue &event : events.asArray()) {
        EXPECT_TRUE(event.has("name"));
        if (event["ph"].asString() != "M") {
            EXPECT_TRUE(event.has("ts"));
            ++spans;
        }
    }
    EXPECT_GT(spans, 0u);
    EXPECT_LE(spans, 16u);
    // The export's own bookkeeping matches the result fields.
    EXPECT_DOUBLE_EQ(trace["otherData"]["dropped"].asNumber(),
                     static_cast<double>(r.traceEventsDropped));

    JsonValue metrics = parseJson(r.metricsJson);
    EXPECT_DOUBLE_EQ(metrics["schema_version"].asNumber(), 2.0);
    ASSERT_GT(metrics["columns"].size(), 0u);
    ASSERT_EQ(metrics["windows"].size(), r.metricsWindows);
    const std::size_t width = metrics["columns"].size();
    double prev_start = -1;
    for (const JsonValue &window : metrics["windows"].asArray()) {
        EXPECT_EQ(window["values"].size(), width);
        double start = window["start_ns"].asNumber();
        EXPECT_GT(start, prev_start); // strictly increasing
        prev_start = start;
    }
    // Janus mode registers the IRB occupancy channel.
    bool has_irb = false;
    for (const JsonValue &col : metrics["columns"].asArray())
        if (col.asString() == "irb.occupancy")
            has_irb = true;
    EXPECT_TRUE(has_irb);
}

TEST(MetricsTrace, SamplingDoesNotPerturbTiming)
{
    ExperimentConfig config = observedConfig();
    ExperimentResult observed = runExperiment(config);
    config.sys.trace = false;
    config.sys.metrics = false;
    ExperimentResult bare = runExperiment(config);
    // Observability fully on vs fully off: not a single tick moves.
    EXPECT_EQ(observed.makespan, bare.makespan);
    EXPECT_EQ(observed.avgWriteLatencyNs, bare.avgWriteLatencyNs);
    EXPECT_EQ(observed.eventsExecuted, bare.eventsExecuted);
    EXPECT_TRUE(bare.metricsJson.empty());
    EXPECT_EQ(bare.metricsWindows, 0u);
}

TEST(MetricsTrace, MetricsTimelineIsDeterministic)
{
    ExperimentResult a = runExperiment(observedConfig());
    ExperimentResult b = runExperiment(observedConfig());
    EXPECT_EQ(a.metricsJson, b.metricsJson);
    EXPECT_EQ(a.traceJson, b.traceJson);
}

} // namespace
} // namespace janus
