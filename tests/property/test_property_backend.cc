/**
 * @file
 * Property tests for the functional BMO backend: under every
 * combination of enabled BMOs, a long random write/read/overwrite
 * sequence must agree with a plain map reference model, keep MAC and
 * Merkle verification green, and conserve dedup reference counts.
 */

#include <map>

#include <gtest/gtest.h>

#include "bmo/backend_state.hh"
#include "common/random.hh"

namespace janus
{
namespace
{

struct BackendCase
{
    bool encryption;
    bool dedup;
    bool integrity;
    bool compression;
};

std::string
caseName(const testing::TestParamInfo<BackendCase> &info)
{
    const BackendCase &c = info.param;
    std::string s;
    s += c.encryption ? "Enc" : "NoEnc";
    s += c.dedup ? "Dedup" : "NoDedup";
    s += c.integrity ? "Bmt" : "NoBmt";
    s += c.compression ? "Bdi" : "";
    return s;
}

class BackendProperty : public testing::TestWithParam<BackendCase>
{
};

TEST_P(BackendProperty, RandomChurnMatchesReferenceModel)
{
    const BackendCase &c = GetParam();
    BmoConfig config;
    config.encryption = c.encryption;
    config.deduplication = c.dedup;
    config.integrity = c.integrity;
    config.compression = c.compression;
    BmoBackendState state(config);

    Rng rng(c.encryption * 8 + c.dedup * 4 + c.integrity * 2 +
            c.compression + 100);
    std::map<Addr, CacheLine> reference;
    const unsigned lines = 48;
    const unsigned seed_pool = 12; // heavy duplication

    for (int op = 0; op < 1200; ++op) {
        Addr addr = rng.below(lines) * lineBytes;
        switch (rng.below(4)) {
          case 0:
          case 1: { // write (often duplicate data)
              CacheLine data = CacheLine::fromSeed(
                  rng.below(seed_pool));
              state.writeLine(addr, data);
              reference[addr] = data;
              break;
          }
          case 2: { // write fresh unique data
              CacheLine data = CacheLine::fromSeed(
                  0xF000000 + static_cast<std::uint64_t>(op));
              state.writeLine(addr, data);
              reference[addr] = data;
              break;
          }
          default: { // read back and verify
              ReadOutcome out = state.readLine(addr);
              CacheLine expect = reference.count(addr)
                                     ? reference[addr]
                                     : CacheLine();
              ASSERT_TRUE(out.data == expect) << "op " << op;
              ASSERT_TRUE(out.macOk);
              ASSERT_TRUE(out.treeOk);
          }
        }
    }

    // Full sweep at the end.
    for (const auto &[addr, expect] : reference) {
        ReadOutcome out = state.readLine(addr);
        EXPECT_TRUE(out.data == expect);
        EXPECT_TRUE(out.macOk);
        EXPECT_TRUE(out.treeOk);
    }
    EXPECT_TRUE(state.auditIntegrity());

    if (c.dedup) {
        // Live physical lines can never exceed either the touched
        // logical lines or the distinct values present.
        std::map<std::string, unsigned> distinct;
        for (const auto &[addr, line] : reference)
            ++distinct[line.toHex()];
        EXPECT_LE(state.physLinesLive(), reference.size());
        EXPECT_EQ(state.physLinesLive(), distinct.size());
    }
    if (c.compression) {
        EXPECT_GT(state.bytesBeforeCompression(), 0u);
        EXPECT_GE(state.compressionRatio(), 1.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBmoMixes, BackendProperty,
    testing::Values(BackendCase{true, true, true, false},
                    BackendCase{true, true, true, true},
                    BackendCase{true, false, true, false},
                    BackendCase{true, true, false, false},
                    BackendCase{false, true, true, false},
                    BackendCase{true, false, false, false},
                    BackendCase{false, false, true, false},
                    BackendCase{false, false, false, false}),
    caseName);

} // namespace
} // namespace janus
