/**
 * @file
 * The central correctness property of the whole co-design: the
 * write-path mode (serialized / parallel / Janus, manual or
 * compiler-instrumented) changes WHEN things happen, never WHAT
 * happens. Running the same seeded workload under every mode must
 * leave bit-identical program memory.
 */

#include <gtest/gtest.h>

#include "compiler/auto_instrument.hh"
#include "harness/system.hh"
#include "txn/undo_log.hh"
#include "workloads/workload.hh"

namespace janus
{
namespace
{

std::uint64_t
runAndHash(const std::string &name, WritePathMode mode, bool manual,
           bool auto_pass)
{
    WorkloadParams params;
    params.txnsPerCore = 50;
    params.seed = 77;
    auto workload = makeWorkload(name, params);

    Module module;
    buildTxnLibrary(module);
    workload->buildKernels(module, manual);
    if (auto_pass)
        autoInstrument(module);
    verify(module);

    SystemConfig config;
    config.mode = mode;
    NvmSystem system(config, module);
    workload->setupCore(0, system);
    std::vector<TxnSource> sources;
    sources.push_back(workload->source(0, system));
    system.run(std::move(sources));
    workload->validate(system.mem(), 0);
    return system.mem().contentHash();
}

class ModeEquivalence : public testing::TestWithParam<const char *>
{
};

TEST_P(ModeEquivalence, AllModesProduceIdenticalMemory)
{
    const char *w = GetParam();
    std::uint64_t serialized =
        runAndHash(w, WritePathMode::Serialized, false, false);
    std::uint64_t parallel =
        runAndHash(w, WritePathMode::Parallel, false, false);
    std::uint64_t nobmo =
        runAndHash(w, WritePathMode::NoBmo, false, false);
    EXPECT_EQ(serialized, parallel);
    EXPECT_EQ(serialized, nobmo);
}

TEST_P(ModeEquivalence, InstrumentationIsFunctionallyInvisible)
{
    const char *w = GetParam();
    std::uint64_t plain =
        runAndHash(w, WritePathMode::Serialized, false, false);
    std::uint64_t manual =
        runAndHash(w, WritePathMode::Janus, true, false);
    std::uint64_t automatic =
        runAndHash(w, WritePathMode::Janus, false, true);
    EXPECT_EQ(plain, manual)
        << "manual PRE_* calls changed program state";
    EXPECT_EQ(plain, automatic)
        << "the compiler pass changed program state";
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, ModeEquivalence,
    testing::Values("array_swap", "queue", "hash_table", "rb_tree",
                    "b_tree", "tatp", "tpcc"));

TEST(ModeEquivalence, DifferentSeedsDiffer)
{
    // Sanity for the hash itself: different work should not collide.
    WorkloadParams a_params;
    a_params.txnsPerCore = 20;
    a_params.seed = 1;
    WorkloadParams b_params = a_params;
    b_params.seed = 2;

    auto run_seed = [](const WorkloadParams &params) {
        auto workload = makeWorkload("tatp", params);
        Module module;
        buildTxnLibrary(module);
        workload->buildKernels(module, false);
        SystemConfig config;
        config.mode = WritePathMode::NoBmo;
        NvmSystem system(config, module);
        workload->setupCore(0, system);
        std::vector<TxnSource> sources;
        sources.push_back(workload->source(0, system));
        system.run(std::move(sources));
        return system.mem().contentHash();
    };
    EXPECT_NE(run_seed(a_params), run_seed(b_params));
}

} // namespace
} // namespace janus
