/**
 * @file
 * Determinism property: the simulator has no hidden nondeterminism —
 * identical configurations produce tick-identical makespans, stats
 * and memory images, including under multi-core interleaving. This
 * is what makes every figure in EXPERIMENTS.md exactly reproducible.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "harness/system.hh"
#include "txn/undo_log.hh"
#include "workloads/workload.hh"

namespace janus
{
namespace
{

struct RunDigest
{
    Tick makespan;
    std::uint64_t memHash;
    std::string stats;

    bool
    operator==(const RunDigest &o) const
    {
        return makespan == o.makespan && memHash == o.memHash &&
               stats == o.stats;
    }
};

RunDigest
runOnce(const std::string &workload_name, unsigned cores,
        WritePathMode mode)
{
    WorkloadParams params;
    params.txnsPerCore = 40;
    params.seed = 5;
    auto workload = makeWorkload(workload_name, params);
    Module module;
    buildTxnLibrary(module);
    workload->buildKernels(module, mode == WritePathMode::Janus);
    SystemConfig config;
    config.mode = mode;
    config.cores = cores;
    NvmSystem system(config, module);
    std::vector<TxnSource> sources;
    for (unsigned c = 0; c < cores; ++c) {
        workload->setupCore(c, system);
        sources.push_back(workload->source(c, system));
    }
    RunDigest digest;
    digest.makespan = system.run(std::move(sources));
    digest.memHash = system.mem().contentHash();
    std::ostringstream os;
    system.dumpStats(os);
    digest.stats = os.str();
    return digest;
}

class Determinism : public testing::TestWithParam<const char *>
{
};

TEST_P(Determinism, SingleCoreJanusRepeatsExactly)
{
    RunDigest a = runOnce(GetParam(), 1, WritePathMode::Janus);
    RunDigest b = runOnce(GetParam(), 1, WritePathMode::Janus);
    EXPECT_TRUE(a == b);
}

TEST_P(Determinism, FourCoreInterleavingRepeatsExactly)
{
    RunDigest a = runOnce(GetParam(), 4, WritePathMode::Serialized);
    RunDigest b = runOnce(GetParam(), 4, WritePathMode::Serialized);
    EXPECT_TRUE(a == b);
}

INSTANTIATE_TEST_SUITE_P(SampledWorkloads, Determinism,
                         testing::Values("array_swap", "rb_tree",
                                         "tpcc"));

} // namespace
} // namespace janus
