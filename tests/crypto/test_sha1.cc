/**
 * @file
 * SHA-1 verified against FIPS-180 test vectors.
 */

#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "crypto/sha1.hh"

namespace janus
{
namespace
{

std::string
sha1Hex(const std::string &msg)
{
    return Sha1::hash(msg.data(), msg.size()).toHex();
}

TEST(Sha1, EmptyString)
{
    EXPECT_EQ(sha1Hex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc)
{
    EXPECT_EQ(sha1Hex("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage)
{
    EXPECT_EQ(sha1Hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlm"
                      "nomnopnopq"),
              "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs)
{
    Sha1 hasher;
    std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i)
        hasher.update(chunk.data(), chunk.size());
    EXPECT_EQ(hasher.finish().toHex(),
              "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot)
{
    std::string msg = "the quick brown fox jumps over the lazy dog";
    Sha1 hasher;
    for (char c : msg)
        hasher.update(&c, 1);
    EXPECT_EQ(hasher.finish().toHex(), sha1Hex(msg));
}

TEST(Sha1, LengthBoundaryCases)
{
    // Messages of exactly 55, 56, 63, 64, 65 bytes exercise padding.
    for (std::size_t len : {55u, 56u, 63u, 64u, 65u}) {
        std::string a(len, 'x');
        std::string b(len, 'x');
        b[len - 1] = 'y';
        EXPECT_EQ(sha1Hex(a), sha1Hex(a));
        EXPECT_NE(sha1Hex(a), sha1Hex(b)) << "len " << len;
    }
}

TEST(Sha1, Rfc3174MultiBlockSplitStreaming)
{
    // RFC 3174 TEST2 (two-block) and TEST4 ("01234567" x 80, ten
    // compression blocks), fed through update() in deliberately odd
    // chunk sizes so the splits never line up with the 64-byte block
    // boundary. Streaming must match the one-shot digest exactly.
    struct Vector
    {
        std::string msg;
        const char *digest;
    };
    std::string test4;
    for (int i = 0; i < 80; ++i)
        test4 += "01234567";
    const Vector vectors[] = {
        {"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
         "84983e441c3bd26ebaae4aa1f95129e5e54670f1"},
        {test4, "dea356a2cddd90c7a7ecedc5ebb563934f460452"},
    };
    const std::size_t chunks[] = {1, 2, 3, 5, 7, 11, 13, 17, 19, 23};
    for (const Vector &v : vectors) {
        Sha1 hasher;
        std::size_t pos = 0, c = 0;
        while (pos < v.msg.size()) {
            std::size_t take =
                std::min(chunks[c++ % 10], v.msg.size() - pos);
            hasher.update(v.msg.data() + pos, take);
            pos += take;
        }
        EXPECT_EQ(hasher.finish().toHex(), v.digest);
        EXPECT_EQ(sha1Hex(v.msg), v.digest);
    }
}

TEST(Sha1, Prefix64Differs)
{
    Sha1Digest a = Sha1::hash("aaa", 3);
    Sha1Digest b = Sha1::hash("bbb", 3);
    EXPECT_NE(a.prefix64(), b.prefix64());
}

} // namespace
} // namespace janus
