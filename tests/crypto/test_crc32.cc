/**
 * @file
 * CRC-32 (IEEE) verified against the standard check value.
 */

#include <string>

#include <gtest/gtest.h>

#include "crypto/crc32.hh"

namespace janus
{
namespace
{

TEST(Crc32, StandardCheckValue)
{
    // The canonical CRC-32/IEEE check: crc32("123456789").
    EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero)
{
    EXPECT_EQ(crc32("", 0), 0u);
}

TEST(Crc32, IncrementalMatchesOneShot)
{
    std::string msg = "backend memory operations";
    std::uint32_t whole = crc32(msg.data(), msg.size());
    std::uint32_t part = crc32(msg.data(), 10);
    part = crc32Update(part, msg.data() + 10, msg.size() - 10);
    EXPECT_EQ(part, whole);
}

TEST(Crc32, StandardCheckValueStreaming)
{
    // The 0xCBF43926 check value must also come out of crc32Update
    // regardless of how "123456789" is split.
    const char *msg = "123456789";
    for (std::size_t split = 1; split < 9; ++split) {
        std::uint32_t crc = crc32(msg, split);
        crc = crc32Update(crc, msg + split, 9 - split);
        EXPECT_EQ(crc, 0xCBF43926u) << "split " << split;
    }
    // Byte-at-a-time.
    std::uint32_t crc = 0;
    for (std::size_t i = 0; i < 9; ++i)
        crc = crc32Update(crc, msg + i, 1);
    EXPECT_EQ(crc, 0xCBF43926u);
}

TEST(Crc32, SensitiveToSingleBit)
{
    std::string a(64, '\0');
    std::string b = a;
    b[63] = '\x01';
    EXPECT_NE(crc32(a.data(), a.size()), crc32(b.data(), b.size()));
}

TEST(Crc32, KnownVectorAllZeros)
{
    // 32 zero bytes, cross-checked against zlib's crc32().
    std::string zeros(32, '\0');
    EXPECT_EQ(crc32(zeros.data(), zeros.size()), 0x190A55ADu);
}

} // namespace
} // namespace janus
