/**
 * @file
 * AES-128 verified against FIPS-197 / NIST test vectors, plus the
 * counter-mode OTP properties the encryption BMO relies on.
 */

#include <gtest/gtest.h>

#include "crypto/aes128.hh"

namespace janus
{
namespace
{

Aes128::Key
keyFromBytes(std::initializer_list<unsigned> bytes)
{
    Aes128::Key key{};
    unsigned i = 0;
    for (unsigned b : bytes)
        key[i++] = static_cast<std::uint8_t>(b);
    return key;
}

TEST(Aes128, Fips197AppendixCVector)
{
    // FIPS-197 Appendix C.1: AES-128 example vector.
    Aes128::Key key = keyFromBytes({0x00, 0x01, 0x02, 0x03, 0x04, 0x05,
                                    0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b,
                                    0x0c, 0x0d, 0x0e, 0x0f});
    Aes128::Block plain = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66,
                           0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
                           0xee, 0xff};
    Aes128::Block expect = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04,
                            0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
                            0xc5, 0x5a};
    Aes128 aes(key);
    EXPECT_EQ(aes.encryptBlock(plain), expect);
}

TEST(Aes128, NistSp800_38aEcbVector)
{
    // SP 800-38A F.1.1 ECB-AES128 block #1.
    Aes128::Key key = keyFromBytes({0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae,
                                    0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88,
                                    0x09, 0xcf, 0x4f, 0x3c});
    Aes128::Block plain = {0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f,
                           0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93,
                           0x17, 0x2a};
    Aes128::Block expect = {0x3a, 0xd7, 0x7b, 0xb4, 0x0d, 0x7a, 0x36,
                            0x60, 0xa8, 0x9e, 0xca, 0xf3, 0x24, 0x66,
                            0xef, 0x97};
    Aes128 aes(key);
    EXPECT_EQ(aes.encryptBlock(plain), expect);
}

TEST(Aes128, Fips197AppendixCDecrypt)
{
    // FIPS-197 Appendix C.1 in the inverse direction: the example
    // ciphertext must decrypt back to the example plaintext.
    Aes128::Key key = keyFromBytes({0x00, 0x01, 0x02, 0x03, 0x04, 0x05,
                                    0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b,
                                    0x0c, 0x0d, 0x0e, 0x0f});
    Aes128::Block cipher = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04,
                            0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
                            0xc5, 0x5a};
    Aes128::Block expect = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66,
                            0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
                            0xee, 0xff};
    Aes128 aes(key);
    EXPECT_EQ(aes.decryptBlock(cipher), expect);
}

TEST(Aes128, NistSp800_38aEcbAllBlocks)
{
    // SP 800-38A F.1.1/F.1.2 ECB-AES128: all four blocks, both
    // directions.
    Aes128::Key key = keyFromBytes({0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae,
                                    0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88,
                                    0x09, 0xcf, 0x4f, 0x3c});
    const Aes128::Block plains[4] = {
        {0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d,
         0x7e, 0x11, 0x73, 0x93, 0x17, 0x2a},
        {0xae, 0x2d, 0x8a, 0x57, 0x1e, 0x03, 0xac, 0x9c, 0x9e, 0xb7,
         0x6f, 0xac, 0x45, 0xaf, 0x8e, 0x51},
        {0x30, 0xc8, 0x1c, 0x46, 0xa3, 0x5c, 0xe4, 0x11, 0xe5, 0xfb,
         0xc1, 0x19, 0x1a, 0x0a, 0x52, 0xef},
        {0xf6, 0x9f, 0x24, 0x45, 0xdf, 0x4f, 0x9b, 0x17, 0xad, 0x2b,
         0x41, 0x7b, 0xe6, 0x6c, 0x37, 0x10},
    };
    const Aes128::Block ciphers[4] = {
        {0x3a, 0xd7, 0x7b, 0xb4, 0x0d, 0x7a, 0x36, 0x60, 0xa8, 0x9e,
         0xca, 0xf3, 0x24, 0x66, 0xef, 0x97},
        {0xf5, 0xd3, 0xd5, 0x85, 0x03, 0xb9, 0x69, 0x9d, 0xe7, 0x85,
         0x89, 0x5a, 0x96, 0xfd, 0xba, 0xaf},
        {0x43, 0xb1, 0xcd, 0x7f, 0x59, 0x8e, 0xce, 0x23, 0x88, 0x1b,
         0x00, 0xe3, 0xed, 0x03, 0x06, 0x88},
        {0x7b, 0x0c, 0x78, 0x5e, 0x27, 0xe8, 0xad, 0x3f, 0x82, 0x23,
         0x20, 0x71, 0x04, 0x72, 0x5d, 0xd4},
    };
    Aes128 aes(key);
    for (unsigned i = 0; i < 4; ++i) {
        EXPECT_EQ(aes.encryptBlock(plains[i]), ciphers[i]) << "blk " << i;
        EXPECT_EQ(aes.decryptBlock(ciphers[i]), plains[i]) << "blk " << i;
    }
}

TEST(Aes128, DecryptInvertsEncrypt)
{
    Aes128 aes(keyFromBytes({1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13,
                             14, 15, 16}));
    for (std::uint8_t seed = 0; seed < 16; ++seed) {
        Aes128::Block plain;
        for (unsigned i = 0; i < 16; ++i)
            plain[i] = static_cast<std::uint8_t>(seed * 31 + i * 7);
        EXPECT_EQ(aes.decryptBlock(aes.encryptBlock(plain)), plain);
    }
}

TEST(Aes128, OtpDeterministic)
{
    Aes128 aes(keyFromBytes({9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9,
                             9, 9}));
    EXPECT_TRUE(aes.otp(7, 0x1000) == aes.otp(7, 0x1000));
}

TEST(Aes128, OtpDependsOnCounter)
{
    Aes128 aes(Aes128::Key{});
    EXPECT_FALSE(aes.otp(1, 0x1000) == aes.otp(2, 0x1000));
}

TEST(Aes128, OtpDependsOnAddress)
{
    Aes128 aes(Aes128::Key{});
    EXPECT_FALSE(aes.otp(1, 0x1000) == aes.otp(1, 0x1040));
}

TEST(Aes128, OtpBlocksDiffer)
{
    // The four 16-byte quarters of the pad must not repeat.
    Aes128 aes(Aes128::Key{});
    CacheLine pad = aes.otp(5, 0x2000);
    for (unsigned i = 0; i < 4; ++i)
        for (unsigned j = i + 1; j < 4; ++j) {
            bool same = true;
            for (unsigned b = 0; b < 16; ++b)
                same &= pad.data()[16 * i + b] == pad.data()[16 * j + b];
            EXPECT_FALSE(same) << "quarters " << i << "," << j;
        }
}

TEST(Aes128, CounterModeRoundTrip)
{
    Aes128 aes(keyFromBytes({3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7,
                             9, 3}));
    CacheLine plain = CacheLine::fromSeed(0xDEADBEEF);
    CacheLine cipher = plain;
    cipher ^= aes.otp(42, 0x40);
    EXPECT_FALSE(cipher == plain);
    cipher ^= aes.otp(42, 0x40);
    EXPECT_TRUE(cipher == plain);
}

TEST(Aes128, DifferentKeysDifferentCiphertext)
{
    Aes128 a(keyFromBytes({1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
                           0}));
    Aes128 b(keyFromBytes({2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
                           0}));
    Aes128::Block plain{};
    EXPECT_NE(a.encryptBlock(plain), b.encryptBlock(plain));
}

} // namespace
} // namespace janus
