/**
 * @file
 * MD5 verified against the RFC 1321 test suite.
 */

#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "crypto/md5.hh"

namespace janus
{
namespace
{

std::string
md5Hex(const std::string &msg)
{
    return Md5::hash(msg.data(), msg.size()).toHex();
}

TEST(Md5, Rfc1321Suite)
{
    EXPECT_EQ(md5Hex(""), "d41d8cd98f00b204e9800998ecf8427e");
    EXPECT_EQ(md5Hex("a"), "0cc175b9c0f1b6a831c399e269772661");
    EXPECT_EQ(md5Hex("abc"), "900150983cd24fb0d6963f7d28e17f72");
    EXPECT_EQ(md5Hex("message digest"),
              "f96b697d7cb7938d525a2f31aaf161d0");
    EXPECT_EQ(md5Hex("abcdefghijklmnopqrstuvwxyz"),
              "c3fcd3d76192e4007dfb496cca67e13b");
    EXPECT_EQ(md5Hex("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuv"
                     "wxyz0123456789"),
              "d174ab98d277d9f5a5611c2c9f419d9f");
    EXPECT_EQ(md5Hex("1234567890123456789012345678901234567890"
                     "1234567890123456789012345678901234567890"),
              "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5, IncrementalMatchesOneShot)
{
    std::string msg(500, '\0');
    for (std::size_t i = 0; i < msg.size(); ++i)
        msg[i] = static_cast<char>(i * 13);
    Md5 hasher;
    hasher.update(msg.data(), 100);
    hasher.update(msg.data() + 100, 400);
    EXPECT_EQ(hasher.finish().toHex(), md5Hex(msg));
}

TEST(Md5, PaddingBoundaries)
{
    for (std::size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u}) {
        std::string a(len, 'q');
        std::string b(len, 'q');
        b[0] = 'r';
        EXPECT_EQ(md5Hex(a), md5Hex(a));
        EXPECT_NE(md5Hex(a), md5Hex(b)) << "len " << len;
    }
}

TEST(Md5, Rfc1321MultiBlockSplitStreaming)
{
    // The two RFC 1321 suite entries that span multiple 64-byte
    // compression blocks, streamed through update() in odd-sized
    // chunks that straddle every block boundary.
    struct Vector
    {
        const char *msg;
        const char *digest;
    };
    const Vector vectors[] = {
        {"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
         "0123456789",
         "d174ab98d277d9f5a5611c2c9f419d9f"},
        {"1234567890123456789012345678901234567890"
         "1234567890123456789012345678901234567890",
         "57edf4a22be3c955ac49da2e2107b67a"},
    };
    const std::size_t chunks[] = {3, 1, 7, 5, 13, 11, 2, 17, 19, 23};
    for (const Vector &v : vectors) {
        std::string msg = v.msg;
        Md5 hasher;
        std::size_t pos = 0, c = 0;
        while (pos < msg.size()) {
            std::size_t take =
                std::min(chunks[c++ % 10], msg.size() - pos);
            hasher.update(msg.data() + pos, take);
            pos += take;
        }
        EXPECT_EQ(hasher.finish().toHex(), v.digest);
    }
}

TEST(Md5, CacheLineSizedInput)
{
    // The dedup BMO hashes 64-byte lines; make sure equal lines agree
    // and one flipped bit changes the fingerprint.
    std::string line(64, '\x5A');
    std::string flipped = line;
    flipped[32] ^= 1;
    EXPECT_EQ(md5Hex(line), md5Hex(line));
    EXPECT_NE(md5Hex(line), md5Hex(flipped));
}

} // namespace
} // namespace janus
