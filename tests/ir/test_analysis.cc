/**
 * @file
 * Unit tests for the CFG analyses (dominators, natural loops).
 */

#include <gtest/gtest.h>

#include "ir/analysis.hh"
#include "ir/builder.hh"

namespace janus
{
namespace
{

/** entry -> {then, else} -> merge; a loop hangs off `then`. */
Module
diamondWithLoop(unsigned &then_b, unsigned &else_b, unsigned &merge_b,
                unsigned &loop_b)
{
    Module m;
    IrBuilder b(m);
    b.beginFunction("f", 1);
    then_b = b.newBlock();
    else_b = b.newBlock();
    merge_b = b.newBlock();
    loop_b = b.newBlock();
    b.brCond(b.arg(0), then_b, else_b);
    b.setBlock(then_b);
    b.br(loop_b);
    b.setBlock(loop_b);
    int cond = b.load(b.arg(0), 0);
    b.brCond(cond, loop_b, merge_b); // self loop
    b.setBlock(else_b);
    b.br(merge_b);
    b.setBlock(merge_b);
    b.ret();
    b.endFunction();
    verify(m);
    return m;
}

TEST(CfgInfo, DominatorsOfDiamond)
{
    unsigned t, e, mg, lp;
    Module m = diamondWithLoop(t, e, mg, lp);
    CfgInfo cfg(m.fn("f"));
    EXPECT_TRUE(cfg.dominates(0, t));
    EXPECT_TRUE(cfg.dominates(0, mg));
    EXPECT_FALSE(cfg.dominates(t, mg)); // else path bypasses
    EXPECT_FALSE(cfg.dominates(e, mg));
    EXPECT_TRUE(cfg.dominates(t, lp));
    EXPECT_TRUE(cfg.dominates(0, 0));
}

TEST(CfgInfo, LoopDetection)
{
    unsigned t, e, mg, lp;
    Module m = diamondWithLoop(t, e, mg, lp);
    CfgInfo cfg(m.fn("f"));
    EXPECT_TRUE(cfg.inLoop(lp));
    EXPECT_FALSE(cfg.inLoop(0));
    EXPECT_FALSE(cfg.inLoop(t));
    EXPECT_FALSE(cfg.inLoop(mg));
    EXPECT_EQ(cfg.numLoops(), 1u);
}

TEST(CfgInfo, MultiBlockLoopBody)
{
    Module m;
    IrBuilder b(m);
    b.beginFunction("f", 1);
    unsigned head = b.newBlock();
    unsigned body = b.newBlock();
    unsigned exit_b = b.newBlock();
    b.br(head);
    b.setBlock(head);
    b.brCond(b.arg(0), body, exit_b);
    b.setBlock(body);
    b.br(head); // back edge
    b.setBlock(exit_b);
    b.ret();
    b.endFunction();
    CfgInfo cfg(m.fn("f"));
    EXPECT_TRUE(cfg.inLoop(head));
    EXPECT_TRUE(cfg.inLoop(body));
    EXPECT_FALSE(cfg.inLoop(exit_b));
}

TEST(CfgInfo, StraightLineHasNoLoops)
{
    Module m;
    IrBuilder b(m);
    b.beginFunction("f", 0);
    unsigned next = b.newBlock();
    b.br(next);
    b.setBlock(next);
    b.ret();
    b.endFunction();
    CfgInfo cfg(m.fn("f"));
    EXPECT_EQ(cfg.numLoops(), 0u);
    EXPECT_TRUE(cfg.dominates(0, next));
    EXPECT_EQ(cfg.idom(next), 0u);
}

TEST(CfgInfo, RpoStartsAtEntry)
{
    unsigned t, e, mg, lp;
    Module m = diamondWithLoop(t, e, mg, lp);
    CfgInfo cfg(m.fn("f"));
    ASSERT_FALSE(cfg.rpo().empty());
    EXPECT_EQ(cfg.rpo().front(), 0u);
    EXPECT_TRUE(cfg.reachable(mg));
}

TEST(CfgInfo, PredsComputed)
{
    unsigned t, e, mg, lp;
    Module m = diamondWithLoop(t, e, mg, lp);
    CfgInfo cfg(m.fn("f"));
    EXPECT_EQ(cfg.preds(mg).size(), 2u); // loop and else
    EXPECT_EQ(cfg.preds(0).size(), 0u);
}

} // namespace
} // namespace janus
