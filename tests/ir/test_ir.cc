/**
 * @file
 * Unit tests for the PmIR structures, builder and verifier.
 */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "ir/ir.hh"

namespace janus
{
namespace
{

TEST(Ir, BuilderProducesVerifiableModule)
{
    Module m;
    IrBuilder b(m);
    b.beginFunction("f", 2);
    int sum = b.add(b.arg(0), b.arg(1));
    b.ret(sum);
    b.endFunction();
    verify(m);
    EXPECT_EQ(m.fn("f").numArgs, 2u);
    EXPECT_EQ(m.fn("f").blocks.size(), 1u);
}

TEST(Ir, TerminatorsDefineSuccessors)
{
    Module m;
    IrBuilder b(m);
    b.beginFunction("f", 1);
    unsigned yes = b.newBlock();
    unsigned no = b.newBlock();
    b.brCond(b.arg(0), yes, no);
    b.setBlock(yes);
    b.ret();
    b.setBlock(no);
    unsigned merge = b.newBlock();
    b.br(merge);
    b.setBlock(merge);
    b.ret();
    b.endFunction();
    verify(m);
    const Function &f = m.fn("f");
    EXPECT_EQ(f.successors(0), (std::vector<unsigned>{yes, no}));
    EXPECT_EQ(f.successors(no), (std::vector<unsigned>{merge}));
    EXPECT_TRUE(f.successors(yes).empty());
}

TEST(Ir, EmittingPastTerminatorPanics)
{
    Module m;
    IrBuilder b(m);
    b.beginFunction("f", 0);
    b.ret();
    EXPECT_DEATH(b.constI(1), "terminator");
}

TEST(Ir, VerifierCatchesBadBranchTarget)
{
    Module m;
    Function f;
    f.name = "bad";
    f.numRegs = 1;
    f.blocks.emplace_back();
    f.blocks[0].instrs.push_back({.op = Opcode::Br, .imm = 7});
    m.functions.emplace("bad", f);
    EXPECT_DEATH(verify(m), "unknown block");
}

TEST(Ir, VerifierCatchesBadRegister)
{
    Module m;
    Function f;
    f.name = "bad";
    f.numRegs = 1;
    f.blocks.emplace_back();
    f.blocks[0].instrs.push_back(
        {.op = Opcode::Mov, .dst = 5, .a = 0});
    f.blocks[0].instrs.push_back({.op = Opcode::Ret, .a = -1});
    m.functions.emplace("bad", f);
    EXPECT_DEATH(verify(m), "out of range");
}

TEST(Ir, VerifierCatchesUnknownCallee)
{
    Module m;
    IrBuilder b(m);
    b.beginFunction("f", 0);
    b.call("ghost", {});
    b.ret();
    b.endFunction();
    EXPECT_DEATH(verify(m), "unknown");
}

TEST(Ir, VerifierChecksCallArity)
{
    Module m;
    IrBuilder b(m);
    b.beginFunction("callee", 2);
    b.ret();
    b.endFunction();
    b.beginFunction("caller", 1);
    b.call("callee", {b.arg(0)}); // wants 2 args
    b.ret();
    b.endFunction();
    EXPECT_DEATH(verify(m), "wants 2");
}

TEST(Ir, PreOpsRecognized)
{
    EXPECT_TRUE(isPreOp(Opcode::PreInit));
    EXPECT_TRUE(isPreOp(Opcode::PreBothVal));
    EXPECT_TRUE(isPreOp(Opcode::PreStartBuf));
    EXPECT_FALSE(isPreOp(Opcode::Clwb));
    EXPECT_FALSE(isPreOp(Opcode::Store));
}

TEST(Ir, DisassemblyIsReadable)
{
    Module m;
    IrBuilder b(m);
    b.beginFunction("f", 1);
    int v = b.constI(42);
    b.store(b.arg(0), v, 8);
    b.clwb(b.arg(0), 64, true);
    b.sfence();
    b.ret();
    b.endFunction();
    std::string s = toString(m.fn("f"));
    EXPECT_NE(s.find("const"), std::string::npos);
    EXPECT_NE(s.find("[meta-atomic]"), std::string::npos);
    EXPECT_NE(s.find("sfence"), std::string::npos);
}

TEST(Ir, SlotAllocationPerFunction)
{
    Module m;
    IrBuilder b(m);
    b.beginFunction("f", 0);
    EXPECT_EQ(b.preInit(), 0);
    EXPECT_EQ(b.preInit(), 1);
    b.ret();
    b.endFunction();
    b.beginFunction("g", 0);
    EXPECT_EQ(b.preInit(), 0); // resets per function
    b.ret();
    b.endFunction();
}

TEST(Ir, DuplicateFunctionNamePanics)
{
    Module m;
    IrBuilder b(m);
    b.beginFunction("f", 0);
    b.ret();
    b.endFunction();
    EXPECT_DEATH(b.beginFunction("f", 0), "duplicate");
}

} // namespace
} // namespace janus
