file(REMOVE_RECURSE
  "CMakeFiles/fig14_units.dir/fig14_units.cc.o"
  "CMakeFiles/fig14_units.dir/fig14_units.cc.o.d"
  "fig14_units"
  "fig14_units.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
