# Empty compiler generated dependencies file for fig14_units.
# This may be replaced when dependencies are built.
