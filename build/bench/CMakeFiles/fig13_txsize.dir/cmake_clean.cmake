file(REMOVE_RECURSE
  "CMakeFiles/fig13_txsize.dir/fig13_txsize.cc.o"
  "CMakeFiles/fig13_txsize.dir/fig13_txsize.cc.o.d"
  "fig13_txsize"
  "fig13_txsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_txsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
