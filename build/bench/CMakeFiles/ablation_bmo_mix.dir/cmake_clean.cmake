file(REMOVE_RECURSE
  "CMakeFiles/ablation_bmo_mix.dir/ablation_bmo_mix.cc.o"
  "CMakeFiles/ablation_bmo_mix.dir/ablation_bmo_mix.cc.o.d"
  "ablation_bmo_mix"
  "ablation_bmo_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bmo_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
