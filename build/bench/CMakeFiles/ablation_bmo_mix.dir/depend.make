# Empty dependencies file for ablation_bmo_mix.
# This may be replaced when dependencies are built.
