# Empty compiler generated dependencies file for fig11_auto.
# This may be replaced when dependencies are built.
