file(REMOVE_RECURSE
  "CMakeFiles/fig11_auto.dir/fig11_auto.cc.o"
  "CMakeFiles/fig11_auto.dir/fig11_auto.cc.o.d"
  "fig11_auto"
  "fig11_auto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_auto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
