file(REMOVE_RECURSE
  "CMakeFiles/fig12_dedup.dir/fig12_dedup.cc.o"
  "CMakeFiles/fig12_dedup.dir/fig12_dedup.cc.o.d"
  "fig12_dedup"
  "fig12_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
