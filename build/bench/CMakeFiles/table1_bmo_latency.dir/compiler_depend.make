# Empty compiler generated dependencies file for table1_bmo_latency.
# This may be replaced when dependencies are built.
