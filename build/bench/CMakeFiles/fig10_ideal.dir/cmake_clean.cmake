file(REMOVE_RECURSE
  "CMakeFiles/fig10_ideal.dir/fig10_ideal.cc.o"
  "CMakeFiles/fig10_ideal.dir/fig10_ideal.cc.o.d"
  "fig10_ideal"
  "fig10_ideal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_ideal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
