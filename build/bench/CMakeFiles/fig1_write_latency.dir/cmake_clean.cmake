file(REMOVE_RECURSE
  "CMakeFiles/fig1_write_latency.dir/fig1_write_latency.cc.o"
  "CMakeFiles/fig1_write_latency.dir/fig1_write_latency.cc.o.d"
  "fig1_write_latency"
  "fig1_write_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_write_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
