# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_crash[1]_include.cmake")
include("/root/repo/build/tests/test_janus_hw[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_bmo[1]_include.cmake")
