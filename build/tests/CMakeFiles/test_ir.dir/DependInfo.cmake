
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/compiler/test_auto_instrument.cc" "tests/CMakeFiles/test_ir.dir/compiler/test_auto_instrument.cc.o" "gcc" "tests/CMakeFiles/test_ir.dir/compiler/test_auto_instrument.cc.o.d"
  "/root/repo/tests/compiler/test_misuse_check.cc" "tests/CMakeFiles/test_ir.dir/compiler/test_misuse_check.cc.o" "gcc" "tests/CMakeFiles/test_ir.dir/compiler/test_misuse_check.cc.o.d"
  "/root/repo/tests/cpu/test_timing_core.cc" "tests/CMakeFiles/test_ir.dir/cpu/test_timing_core.cc.o" "gcc" "tests/CMakeFiles/test_ir.dir/cpu/test_timing_core.cc.o.d"
  "/root/repo/tests/ir/test_analysis.cc" "tests/CMakeFiles/test_ir.dir/ir/test_analysis.cc.o" "gcc" "tests/CMakeFiles/test_ir.dir/ir/test_analysis.cc.o.d"
  "/root/repo/tests/ir/test_ir.cc" "tests/CMakeFiles/test_ir.dir/ir/test_ir.cc.o" "gcc" "tests/CMakeFiles/test_ir.dir/ir/test_ir.cc.o.d"
  "/root/repo/tests/txn/test_undo_log.cc" "tests/CMakeFiles/test_ir.dir/txn/test_undo_log.cc.o" "gcc" "tests/CMakeFiles/test_ir.dir/txn/test_undo_log.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/janus_lib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
