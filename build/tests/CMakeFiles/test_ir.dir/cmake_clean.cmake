file(REMOVE_RECURSE
  "CMakeFiles/test_ir.dir/compiler/test_auto_instrument.cc.o"
  "CMakeFiles/test_ir.dir/compiler/test_auto_instrument.cc.o.d"
  "CMakeFiles/test_ir.dir/compiler/test_misuse_check.cc.o"
  "CMakeFiles/test_ir.dir/compiler/test_misuse_check.cc.o.d"
  "CMakeFiles/test_ir.dir/cpu/test_timing_core.cc.o"
  "CMakeFiles/test_ir.dir/cpu/test_timing_core.cc.o.d"
  "CMakeFiles/test_ir.dir/ir/test_analysis.cc.o"
  "CMakeFiles/test_ir.dir/ir/test_analysis.cc.o.d"
  "CMakeFiles/test_ir.dir/ir/test_ir.cc.o"
  "CMakeFiles/test_ir.dir/ir/test_ir.cc.o.d"
  "CMakeFiles/test_ir.dir/txn/test_undo_log.cc.o"
  "CMakeFiles/test_ir.dir/txn/test_undo_log.cc.o.d"
  "test_ir"
  "test_ir.pdb"
  "test_ir[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
