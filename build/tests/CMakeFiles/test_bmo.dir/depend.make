# Empty dependencies file for test_bmo.
# This may be replaced when dependencies are built.
