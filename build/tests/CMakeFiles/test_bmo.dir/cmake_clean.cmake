file(REMOVE_RECURSE
  "CMakeFiles/test_bmo.dir/bmo/test_backend_state.cc.o"
  "CMakeFiles/test_bmo.dir/bmo/test_backend_state.cc.o.d"
  "CMakeFiles/test_bmo.dir/bmo/test_bmo_config.cc.o"
  "CMakeFiles/test_bmo.dir/bmo/test_bmo_config.cc.o.d"
  "CMakeFiles/test_bmo.dir/bmo/test_bmo_engine.cc.o"
  "CMakeFiles/test_bmo.dir/bmo/test_bmo_engine.cc.o.d"
  "CMakeFiles/test_bmo.dir/bmo/test_bmo_graph.cc.o"
  "CMakeFiles/test_bmo.dir/bmo/test_bmo_graph.cc.o.d"
  "CMakeFiles/test_bmo.dir/bmo/test_compress.cc.o"
  "CMakeFiles/test_bmo.dir/bmo/test_compress.cc.o.d"
  "CMakeFiles/test_bmo.dir/bmo/test_merkle_tree.cc.o"
  "CMakeFiles/test_bmo.dir/bmo/test_merkle_tree.cc.o.d"
  "test_bmo"
  "test_bmo.pdb"
  "test_bmo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bmo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
