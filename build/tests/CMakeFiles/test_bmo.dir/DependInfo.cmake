
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bmo/test_backend_state.cc" "tests/CMakeFiles/test_bmo.dir/bmo/test_backend_state.cc.o" "gcc" "tests/CMakeFiles/test_bmo.dir/bmo/test_backend_state.cc.o.d"
  "/root/repo/tests/bmo/test_bmo_config.cc" "tests/CMakeFiles/test_bmo.dir/bmo/test_bmo_config.cc.o" "gcc" "tests/CMakeFiles/test_bmo.dir/bmo/test_bmo_config.cc.o.d"
  "/root/repo/tests/bmo/test_bmo_engine.cc" "tests/CMakeFiles/test_bmo.dir/bmo/test_bmo_engine.cc.o" "gcc" "tests/CMakeFiles/test_bmo.dir/bmo/test_bmo_engine.cc.o.d"
  "/root/repo/tests/bmo/test_bmo_graph.cc" "tests/CMakeFiles/test_bmo.dir/bmo/test_bmo_graph.cc.o" "gcc" "tests/CMakeFiles/test_bmo.dir/bmo/test_bmo_graph.cc.o.d"
  "/root/repo/tests/bmo/test_compress.cc" "tests/CMakeFiles/test_bmo.dir/bmo/test_compress.cc.o" "gcc" "tests/CMakeFiles/test_bmo.dir/bmo/test_compress.cc.o.d"
  "/root/repo/tests/bmo/test_merkle_tree.cc" "tests/CMakeFiles/test_bmo.dir/bmo/test_merkle_tree.cc.o" "gcc" "tests/CMakeFiles/test_bmo.dir/bmo/test_merkle_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/janus_lib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
