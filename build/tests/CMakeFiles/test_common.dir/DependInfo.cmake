
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/test_cacheline.cc" "tests/CMakeFiles/test_common.dir/common/test_cacheline.cc.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_cacheline.cc.o.d"
  "/root/repo/tests/common/test_random.cc" "tests/CMakeFiles/test_common.dir/common/test_random.cc.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_random.cc.o.d"
  "/root/repo/tests/common/test_types.cc" "tests/CMakeFiles/test_common.dir/common/test_types.cc.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_types.cc.o.d"
  "/root/repo/tests/sim/test_eventq.cc" "tests/CMakeFiles/test_common.dir/sim/test_eventq.cc.o" "gcc" "tests/CMakeFiles/test_common.dir/sim/test_eventq.cc.o.d"
  "/root/repo/tests/sim/test_stats.cc" "tests/CMakeFiles/test_common.dir/sim/test_stats.cc.o" "gcc" "tests/CMakeFiles/test_common.dir/sim/test_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/janus_lib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
