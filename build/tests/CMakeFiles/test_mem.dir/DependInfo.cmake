
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cache/test_set_assoc_cache.cc" "tests/CMakeFiles/test_mem.dir/cache/test_set_assoc_cache.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/cache/test_set_assoc_cache.cc.o.d"
  "/root/repo/tests/mem/test_sparse_memory.cc" "tests/CMakeFiles/test_mem.dir/mem/test_sparse_memory.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/mem/test_sparse_memory.cc.o.d"
  "/root/repo/tests/nvm/test_nvm_device.cc" "tests/CMakeFiles/test_mem.dir/nvm/test_nvm_device.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/nvm/test_nvm_device.cc.o.d"
  "/root/repo/tests/nvm/test_wear_level.cc" "tests/CMakeFiles/test_mem.dir/nvm/test_wear_level.cc.o" "gcc" "tests/CMakeFiles/test_mem.dir/nvm/test_wear_level.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/janus_lib.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
