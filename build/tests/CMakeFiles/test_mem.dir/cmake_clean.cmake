file(REMOVE_RECURSE
  "CMakeFiles/test_mem.dir/cache/test_set_assoc_cache.cc.o"
  "CMakeFiles/test_mem.dir/cache/test_set_assoc_cache.cc.o.d"
  "CMakeFiles/test_mem.dir/mem/test_sparse_memory.cc.o"
  "CMakeFiles/test_mem.dir/mem/test_sparse_memory.cc.o.d"
  "CMakeFiles/test_mem.dir/nvm/test_nvm_device.cc.o"
  "CMakeFiles/test_mem.dir/nvm/test_nvm_device.cc.o.d"
  "CMakeFiles/test_mem.dir/nvm/test_wear_level.cc.o"
  "CMakeFiles/test_mem.dir/nvm/test_wear_level.cc.o.d"
  "test_mem"
  "test_mem.pdb"
  "test_mem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
