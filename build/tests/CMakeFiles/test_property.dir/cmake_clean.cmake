file(REMOVE_RECURSE
  "CMakeFiles/test_property.dir/property/test_property_backend.cc.o"
  "CMakeFiles/test_property.dir/property/test_property_backend.cc.o.d"
  "CMakeFiles/test_property.dir/property/test_property_determinism.cc.o"
  "CMakeFiles/test_property.dir/property/test_property_determinism.cc.o.d"
  "CMakeFiles/test_property.dir/property/test_property_equivalence.cc.o"
  "CMakeFiles/test_property.dir/property/test_property_equivalence.cc.o.d"
  "test_property"
  "test_property.pdb"
  "test_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
