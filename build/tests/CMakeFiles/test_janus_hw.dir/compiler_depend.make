# Empty compiler generated dependencies file for test_janus_hw.
# This may be replaced when dependencies are built.
