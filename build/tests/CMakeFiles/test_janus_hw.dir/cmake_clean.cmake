file(REMOVE_RECURSE
  "CMakeFiles/test_janus_hw.dir/janus/test_janus_hw.cc.o"
  "CMakeFiles/test_janus_hw.dir/janus/test_janus_hw.cc.o.d"
  "CMakeFiles/test_janus_hw.dir/memctrl/test_memory_controller.cc.o"
  "CMakeFiles/test_janus_hw.dir/memctrl/test_memory_controller.cc.o.d"
  "test_janus_hw"
  "test_janus_hw.pdb"
  "test_janus_hw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_janus_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
