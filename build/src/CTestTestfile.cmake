# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("crypto")
subdirs("mem")
subdirs("cache")
subdirs("nvm")
subdirs("bmo")
subdirs("janus")
subdirs("memctrl")
subdirs("ir")
subdirs("cpu")
subdirs("compiler")
subdirs("txn")
subdirs("workloads")
subdirs("harness")
