# Empty compiler generated dependencies file for janus_lib.
# This may be replaced when dependencies are built.
