file(REMOVE_RECURSE
  "libjanus_lib.a"
)
