
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bmo/backend_state.cc" "src/CMakeFiles/janus_lib.dir/bmo/backend_state.cc.o" "gcc" "src/CMakeFiles/janus_lib.dir/bmo/backend_state.cc.o.d"
  "/root/repo/src/bmo/bmo_config.cc" "src/CMakeFiles/janus_lib.dir/bmo/bmo_config.cc.o" "gcc" "src/CMakeFiles/janus_lib.dir/bmo/bmo_config.cc.o.d"
  "/root/repo/src/bmo/bmo_engine.cc" "src/CMakeFiles/janus_lib.dir/bmo/bmo_engine.cc.o" "gcc" "src/CMakeFiles/janus_lib.dir/bmo/bmo_engine.cc.o.d"
  "/root/repo/src/bmo/bmo_graph.cc" "src/CMakeFiles/janus_lib.dir/bmo/bmo_graph.cc.o" "gcc" "src/CMakeFiles/janus_lib.dir/bmo/bmo_graph.cc.o.d"
  "/root/repo/src/bmo/compress.cc" "src/CMakeFiles/janus_lib.dir/bmo/compress.cc.o" "gcc" "src/CMakeFiles/janus_lib.dir/bmo/compress.cc.o.d"
  "/root/repo/src/bmo/merkle_tree.cc" "src/CMakeFiles/janus_lib.dir/bmo/merkle_tree.cc.o" "gcc" "src/CMakeFiles/janus_lib.dir/bmo/merkle_tree.cc.o.d"
  "/root/repo/src/cache/set_assoc_cache.cc" "src/CMakeFiles/janus_lib.dir/cache/set_assoc_cache.cc.o" "gcc" "src/CMakeFiles/janus_lib.dir/cache/set_assoc_cache.cc.o.d"
  "/root/repo/src/common/cacheline.cc" "src/CMakeFiles/janus_lib.dir/common/cacheline.cc.o" "gcc" "src/CMakeFiles/janus_lib.dir/common/cacheline.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/janus_lib.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/janus_lib.dir/common/logging.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/janus_lib.dir/common/random.cc.o" "gcc" "src/CMakeFiles/janus_lib.dir/common/random.cc.o.d"
  "/root/repo/src/compiler/auto_instrument.cc" "src/CMakeFiles/janus_lib.dir/compiler/auto_instrument.cc.o" "gcc" "src/CMakeFiles/janus_lib.dir/compiler/auto_instrument.cc.o.d"
  "/root/repo/src/compiler/misuse_check.cc" "src/CMakeFiles/janus_lib.dir/compiler/misuse_check.cc.o" "gcc" "src/CMakeFiles/janus_lib.dir/compiler/misuse_check.cc.o.d"
  "/root/repo/src/cpu/timing_core.cc" "src/CMakeFiles/janus_lib.dir/cpu/timing_core.cc.o" "gcc" "src/CMakeFiles/janus_lib.dir/cpu/timing_core.cc.o.d"
  "/root/repo/src/crypto/aes128.cc" "src/CMakeFiles/janus_lib.dir/crypto/aes128.cc.o" "gcc" "src/CMakeFiles/janus_lib.dir/crypto/aes128.cc.o.d"
  "/root/repo/src/crypto/crc32.cc" "src/CMakeFiles/janus_lib.dir/crypto/crc32.cc.o" "gcc" "src/CMakeFiles/janus_lib.dir/crypto/crc32.cc.o.d"
  "/root/repo/src/crypto/md5.cc" "src/CMakeFiles/janus_lib.dir/crypto/md5.cc.o" "gcc" "src/CMakeFiles/janus_lib.dir/crypto/md5.cc.o.d"
  "/root/repo/src/crypto/sha1.cc" "src/CMakeFiles/janus_lib.dir/crypto/sha1.cc.o" "gcc" "src/CMakeFiles/janus_lib.dir/crypto/sha1.cc.o.d"
  "/root/repo/src/harness/experiment.cc" "src/CMakeFiles/janus_lib.dir/harness/experiment.cc.o" "gcc" "src/CMakeFiles/janus_lib.dir/harness/experiment.cc.o.d"
  "/root/repo/src/harness/system.cc" "src/CMakeFiles/janus_lib.dir/harness/system.cc.o" "gcc" "src/CMakeFiles/janus_lib.dir/harness/system.cc.o.d"
  "/root/repo/src/ir/analysis.cc" "src/CMakeFiles/janus_lib.dir/ir/analysis.cc.o" "gcc" "src/CMakeFiles/janus_lib.dir/ir/analysis.cc.o.d"
  "/root/repo/src/ir/builder.cc" "src/CMakeFiles/janus_lib.dir/ir/builder.cc.o" "gcc" "src/CMakeFiles/janus_lib.dir/ir/builder.cc.o.d"
  "/root/repo/src/ir/ir.cc" "src/CMakeFiles/janus_lib.dir/ir/ir.cc.o" "gcc" "src/CMakeFiles/janus_lib.dir/ir/ir.cc.o.d"
  "/root/repo/src/janus/janus_hw.cc" "src/CMakeFiles/janus_lib.dir/janus/janus_hw.cc.o" "gcc" "src/CMakeFiles/janus_lib.dir/janus/janus_hw.cc.o.d"
  "/root/repo/src/mem/sparse_memory.cc" "src/CMakeFiles/janus_lib.dir/mem/sparse_memory.cc.o" "gcc" "src/CMakeFiles/janus_lib.dir/mem/sparse_memory.cc.o.d"
  "/root/repo/src/memctrl/memory_controller.cc" "src/CMakeFiles/janus_lib.dir/memctrl/memory_controller.cc.o" "gcc" "src/CMakeFiles/janus_lib.dir/memctrl/memory_controller.cc.o.d"
  "/root/repo/src/nvm/nvm_device.cc" "src/CMakeFiles/janus_lib.dir/nvm/nvm_device.cc.o" "gcc" "src/CMakeFiles/janus_lib.dir/nvm/nvm_device.cc.o.d"
  "/root/repo/src/nvm/wear_level.cc" "src/CMakeFiles/janus_lib.dir/nvm/wear_level.cc.o" "gcc" "src/CMakeFiles/janus_lib.dir/nvm/wear_level.cc.o.d"
  "/root/repo/src/sim/eventq.cc" "src/CMakeFiles/janus_lib.dir/sim/eventq.cc.o" "gcc" "src/CMakeFiles/janus_lib.dir/sim/eventq.cc.o.d"
  "/root/repo/src/sim/stats.cc" "src/CMakeFiles/janus_lib.dir/sim/stats.cc.o" "gcc" "src/CMakeFiles/janus_lib.dir/sim/stats.cc.o.d"
  "/root/repo/src/txn/undo_log.cc" "src/CMakeFiles/janus_lib.dir/txn/undo_log.cc.o" "gcc" "src/CMakeFiles/janus_lib.dir/txn/undo_log.cc.o.d"
  "/root/repo/src/workloads/array_swap.cc" "src/CMakeFiles/janus_lib.dir/workloads/array_swap.cc.o" "gcc" "src/CMakeFiles/janus_lib.dir/workloads/array_swap.cc.o.d"
  "/root/repo/src/workloads/b_tree.cc" "src/CMakeFiles/janus_lib.dir/workloads/b_tree.cc.o" "gcc" "src/CMakeFiles/janus_lib.dir/workloads/b_tree.cc.o.d"
  "/root/repo/src/workloads/factory.cc" "src/CMakeFiles/janus_lib.dir/workloads/factory.cc.o" "gcc" "src/CMakeFiles/janus_lib.dir/workloads/factory.cc.o.d"
  "/root/repo/src/workloads/hash_table.cc" "src/CMakeFiles/janus_lib.dir/workloads/hash_table.cc.o" "gcc" "src/CMakeFiles/janus_lib.dir/workloads/hash_table.cc.o.d"
  "/root/repo/src/workloads/queue.cc" "src/CMakeFiles/janus_lib.dir/workloads/queue.cc.o" "gcc" "src/CMakeFiles/janus_lib.dir/workloads/queue.cc.o.d"
  "/root/repo/src/workloads/rb_tree.cc" "src/CMakeFiles/janus_lib.dir/workloads/rb_tree.cc.o" "gcc" "src/CMakeFiles/janus_lib.dir/workloads/rb_tree.cc.o.d"
  "/root/repo/src/workloads/tatp.cc" "src/CMakeFiles/janus_lib.dir/workloads/tatp.cc.o" "gcc" "src/CMakeFiles/janus_lib.dir/workloads/tatp.cc.o.d"
  "/root/repo/src/workloads/tpcc.cc" "src/CMakeFiles/janus_lib.dir/workloads/tpcc.cc.o" "gcc" "src/CMakeFiles/janus_lib.dir/workloads/tpcc.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/janus_lib.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/janus_lib.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
