#include "compiler/auto_instrument.hh"

#include <algorithm>
#include <map>
#include <optional>
#include <sstream>

#include "common/logging.hh"
#include "ir/analysis.hh"

namespace janus
{

namespace
{

/** A position in a function: (block, instruction index). Index -1
 *  denotes "at function entry" (used for argument definitions). */
struct Pos
{
    unsigned block = 0;
    int index = -1;
};

/** Planned insertion: instructions to splice in before (block, at). */
struct Insertion
{
    unsigned block;
    int at; ///< insert before this index
    std::vector<Instr> instrs;
};

class FunctionInstrumenter
{
  public:
    FunctionInstrumenter(Function &fn, InstrumentReport &report)
        : fn_(fn), cfg_(fn), report_(report)
    {
        collectDefs();
        nextSlot_ = maxSlot() + 1;
    }

    void run();

  private:
    void collectDefs();
    int maxSlot() const;

    /** The unique def position of a register, if it has one. */
    std::optional<Pos> defOf(int reg) const;

    /** Follow Mov/AddI/Add-with-const chains to a root register. */
    int baseOf(int reg) const;

    /** True if pos1 is at-or-after pos2 in dominance program order. */
    bool laterOrEqual(const Pos &p1, const Pos &p2) const;

    /** Latest of the given defs; nullopt if any reg lacks one. */
    std::optional<Pos> latestDef(const std::vector<int> &regs) const;

    /** Last Store/MemCpy writing through `base` strictly before
     *  @p before (same block or dominating blocks). */
    std::optional<Pos> lastWriteTo(int base, const Pos &before) const;

    /**
     * Where to insert a PRE op whose operands are defined at
     * @p earliest, guarding a writeback at @p wb: right after the
     * defs when their block legally dominates the writeback,
     * otherwise at the top of the writeback's block.
     */
    Pos placementFor(const Pos &earliest, const Pos &wb) const;

    void plan(const Pos &pos, std::vector<Instr> instrs);
    void apply();

    void instrumentWriteback(const Pos &wb);

    Function &fn_;
    CfgInfo cfg_;
    InstrumentReport &report_;
    /** reg -> def position; absent if multiply defined. */
    std::map<int, Pos> defs_;
    std::vector<int> multiDef_;
    std::vector<Insertion> insertions_;
    int nextSlot_ = 0;
};

void
FunctionInstrumenter::collectDefs()
{
    for (unsigned a = 0; a < fn_.numArgs; ++a)
        defs_[static_cast<int>(a)] = Pos{0, -1};
    for (unsigned b = 0; b < fn_.blocks.size(); ++b) {
        const auto &instrs = fn_.blocks[b].instrs;
        for (int i = 0; i < static_cast<int>(instrs.size()); ++i) {
            const Instr &instr = instrs[static_cast<unsigned>(i)];
            // PRE ops reuse dst as a size-register operand, and
            // MemCpy's dst is an address operand; neither defines it.
            if (instr.dst < 0 || isPreOp(instr.op) ||
                instr.op == Opcode::MemCpy)
                continue;
            if (defs_.count(instr.dst)) {
                multiDef_.push_back(instr.dst);
                defs_.erase(instr.dst);
            } else if (std::find(multiDef_.begin(), multiDef_.end(),
                                 instr.dst) == multiDef_.end()) {
                defs_[instr.dst] = Pos{b, i};
            }
        }
    }
}

int
FunctionInstrumenter::maxSlot() const
{
    int max_slot = -1;
    for (const auto &bb : fn_.blocks)
        for (const Instr &instr : bb.instrs)
            max_slot = std::max(max_slot, instr.slot);
    return max_slot;
}

std::optional<Pos>
FunctionInstrumenter::defOf(int reg) const
{
    auto it = defs_.find(reg);
    if (it == defs_.end())
        return std::nullopt;
    return it->second;
}

int
FunctionInstrumenter::baseOf(int reg) const
{
    int cur = reg;
    for (int depth = 0; depth < 16; ++depth) {
        auto pos = defOf(cur);
        if (!pos || pos->index < 0)
            return cur;
        const Instr &def =
            fn_.blocks[pos->block].instrs[static_cast<unsigned>(
                pos->index)];
        switch (def.op) {
          case Opcode::Mov:
          case Opcode::AddI:
            cur = def.a;
            break;
          case Opcode::Add: {
              // Follow through add-with-constant (either side).
              auto is_const = [&](int r) {
                  auto p = defOf(r);
                  if (!p || p->index < 0)
                      return false;
                  return fn_.blocks[p->block]
                             .instrs[static_cast<unsigned>(p->index)]
                             .op == Opcode::Const;
              };
              if (is_const(def.b)) {
                  cur = def.a;
              } else if (is_const(def.a)) {
                  cur = def.b;
              } else {
                  return cur;
              }
              break;
          }
          default:
            return cur;
        }
    }
    return cur;
}

bool
FunctionInstrumenter::laterOrEqual(const Pos &p1, const Pos &p2) const
{
    if (p1.block == p2.block)
        return p1.index >= p2.index;
    return cfg_.dominates(p2.block, p1.block);
}

std::optional<Pos>
FunctionInstrumenter::latestDef(const std::vector<int> &regs) const
{
    std::optional<Pos> latest;
    for (int reg : regs) {
        if (reg < 0)
            continue;
        auto pos = defOf(reg);
        if (!pos)
            return std::nullopt; // multiply defined: give up
        if (!latest || laterOrEqual(*pos, *latest))
            latest = pos;
    }
    if (!latest)
        latest = Pos{0, -1};
    return latest;
}

std::optional<Pos>
FunctionInstrumenter::lastWriteTo(int base, const Pos &before) const
{
    std::optional<Pos> last;
    for (unsigned b = 0; b < fn_.blocks.size(); ++b) {
        if (!cfg_.reachable(b))
            continue;
        bool dominating =
            b != before.block && cfg_.dominates(b, before.block);
        if (!dominating && b != before.block)
            continue;
        const auto &instrs = fn_.blocks[b].instrs;
        int limit = b == before.block
                        ? before.index
                        : static_cast<int>(instrs.size());
        for (int i = 0; i < limit; ++i) {
            const Instr &u = instrs[static_cast<unsigned>(i)];
            bool writes =
                (u.op == Opcode::Store && baseOf(u.a) == base) ||
                (u.op == Opcode::MemCpy && baseOf(u.dst) == base);
            if (!writes)
                continue;
            Pos pos{b, i};
            if (!last || laterOrEqual(pos, *last))
                last = pos;
        }
    }
    return last;
}

Pos
FunctionInstrumenter::placementFor(const Pos &earliest,
                                   const Pos &wb) const
{
    Pos pos{earliest.block, earliest.index + 1};
    // Conservative placement (Section 4.5.1): stay inside the
    // writeback's own block so the pre-execution runs exactly when
    // the writeback will — hoisting across a conditional could
    // issue useless requests on paths that never write back.
    bool legal = pos.block == wb.block && pos.index <= wb.index &&
                 cfg_.reachable(pos.block);
    if (!legal) {
        // Defs live in a dominating block (or out of order): fall
        // back to the top of the writeback's block.
        return Pos{wb.block, 0};
    }
    return pos;
}

void
FunctionInstrumenter::plan(const Pos &pos, std::vector<Instr> instrs)
{
    insertions_.push_back(
        Insertion{pos.block, std::max(pos.index, 0),
                  std::move(instrs)});
}

void
FunctionInstrumenter::instrumentWriteback(const Pos &wb)
{
    const Instr &clwb =
        fn_.blocks[wb.block].instrs[static_cast<unsigned>(wb.index)];
    ++report_.writebacksFound;
    if (cfg_.inLoop(wb.block)) {
        ++report_.writebacksInLoop;
        return;
    }

    int addr_reg = clwb.a;
    int size_reg = clwb.b; // -1 when the size is immediate

    // --- PRE_ADDR -------------------------------------------------
    {
        std::vector<int> needed{addr_reg};
        if (size_reg >= 0)
            needed.push_back(size_reg);
        if (auto earliest = latestDef(needed)) {
            Pos pos = placementFor(*earliest, wb);
            int slot = nextSlot_++;
            Instr init{.op = Opcode::PreInit, .slot = slot};
            Instr pre{.op = Opcode::PreAddr, .dst = size_reg,
                      .a = addr_reg, .imm = clwb.imm, .slot = slot};
            plan(pos, {init, pre});
            ++report_.addrInjected;
        }
    }

    // --- data: last updates to the written object ------------------
    int wb_base = baseOf(addr_reg);
    bool found_update = false;
    for (unsigned b = 0; b < fn_.blocks.size(); ++b) {
        if (!cfg_.reachable(b))
            continue;
        bool dominating = b != wb.block && cfg_.dominates(b, wb.block);
        if (!dominating && b != wb.block)
            continue;
        const auto &instrs = fn_.blocks[b].instrs;
        int limit = b == wb.block ? wb.index
                                  : static_cast<int>(instrs.size());
        for (int i = 0; i < limit; ++i) {
            const Instr &u = instrs[static_cast<unsigned>(i)];
            if (u.op == Opcode::Store) {
                if (baseOf(u.a) != wb_base)
                    continue;
                found_update = true;
                if (cfg_.inLoop(b)) {
                    ++report_.dataUnresolved;
                    continue;
                }
                auto earliest = latestDef({u.a, u.b});
                if (!earliest) {
                    ++report_.dataUnresolved;
                    continue;
                }
                Pos pos = placementFor(*earliest, Pos{b, i});
                int slot = nextSlot_++;
                std::vector<Instr> seq;
                seq.push_back(
                    Instr{.op = Opcode::PreInit, .slot = slot});
                int target = u.a;
                if (u.imm != 0) {
                    int tmp = static_cast<int>(fn_.numRegs++);
                    seq.push_back(Instr{.op = Opcode::AddI,
                                        .dst = tmp, .a = u.a,
                                        .imm = u.imm});
                    target = tmp;
                }
                seq.push_back(Instr{.op = Opcode::PreBothVal,
                                    .a = target, .b = u.b,
                                    .slot = slot});
                plan(pos, std::move(seq));
                ++report_.dataInjected;
            } else if (u.op == Opcode::MemCpy) {
                if (baseOf(u.dst) != wb_base)
                    continue;
                found_update = true;
                if (cfg_.inLoop(b)) {
                    ++report_.dataUnresolved;
                    continue;
                }
                // The data source is ready after its own last
                // modification before the copy; the pre-execution
                // can be hoisted up to that point (or the operand
                // definitions, whichever is later).
                auto earliest = latestDef({u.dst, u.a, u.b});
                if (!earliest) {
                    ++report_.dataUnresolved;
                    continue;
                }
                if (auto lsw = lastWriteTo(baseOf(u.a), Pos{b, i}))
                    if (laterOrEqual(*lsw, *earliest))
                        earliest = lsw;
                Pos pos = placementFor(*earliest, Pos{b, i});
                // Never place past the copy itself.
                if (pos.block == b && pos.index > i)
                    pos = Pos{b, i};
                int slot = nextSlot_++;
                Instr init{.op = Opcode::PreInit, .slot = slot};
                Instr pre{.op = Opcode::PreBoth, .dst = u.b,
                          .a = u.dst, .b = u.a, .imm = u.imm,
                          .slot = slot};
                plan(pos, {init, pre});
                ++report_.dataInjected;
            }
        }
    }
    if (!found_update)
        ++report_.dataUnresolved;
}

void
FunctionInstrumenter::apply()
{
    // Splice per block, back to front so indices stay valid.
    std::stable_sort(insertions_.begin(), insertions_.end(),
                     [](const Insertion &x, const Insertion &y) {
                         if (x.block != y.block)
                             return x.block < y.block;
                         return x.at > y.at;
                     });
    for (const Insertion &ins : insertions_) {
        auto &instrs = fn_.blocks[ins.block].instrs;
        instrs.insert(instrs.begin() + ins.at, ins.instrs.begin(),
                      ins.instrs.end());
    }
}

void
FunctionInstrumenter::run()
{
    // Snapshot writeback positions before any mutation.
    std::vector<Pos> writebacks;
    for (unsigned b = 0; b < fn_.blocks.size(); ++b) {
        if (!cfg_.reachable(b))
            continue;
        const auto &instrs = fn_.blocks[b].instrs;
        for (int i = 0; i < static_cast<int>(instrs.size()); ++i)
            if (instrs[static_cast<unsigned>(i)].op == Opcode::Clwb)
                writebacks.push_back(Pos{b, i});
    }
    for (const Pos &wb : writebacks)
        instrumentWriteback(wb);
    apply();
}

} // namespace

std::string
InstrumentReport::toString() const
{
    std::ostringstream os;
    os << "writebacks " << writebacksFound << " (in-loop skipped "
       << writebacksInLoop << "), PRE_ADDR " << addrInjected
       << ", data PRE " << dataInjected << ", unresolved "
       << dataUnresolved;
    return os.str();
}

InstrumentReport
autoInstrument(Module &module, const std::vector<std::string> &skip)
{
    InstrumentReport report;
    for (auto &[name, fn] : module.functions) {
        if (std::find(skip.begin(), skip.end(), name) != skip.end())
            continue;
        FunctionInstrumenter pass(fn, report);
        pass.run();
    }
    verify(module);
    return report;
}

} // namespace janus
