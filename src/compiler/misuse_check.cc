#include "compiler/misuse_check.hh"

#include <optional>
#include <sstream>

#include "common/logging.hh"

namespace janus
{

namespace
{

const char *
kindName(MisuseFinding::Kind kind)
{
    switch (kind) {
      case MisuseFinding::Kind::ModifiedBeforeWrite:
        return "modified-before-write";
      case MisuseFinding::Kind::UselessPreExecution:
        return "useless-pre-execution";
      case MisuseFinding::Kind::InsufficientWindow:
        return "insufficient-window";
    }
    return "?";
}

/** A flat (block, index) cursor over the function in layout order —
 *  an approximation of program order adequate for a linter. */
struct Cursor
{
    unsigned block;
    unsigned index;
};

class FunctionChecker
{
  public:
    FunctionChecker(const Function &fn, const MisuseCheckConfig &config,
                    std::vector<MisuseFinding> &out)
        : fn_(fn), config_(config), out_(out)
    {
        collectDefs();
    }

    void
    run()
    {
        for (unsigned b = 0; b < fn_.blocks.size(); ++b) {
            const auto &instrs = fn_.blocks[b].instrs;
            for (unsigned i = 0; i < instrs.size(); ++i) {
                const Instr &instr = instrs[i];
                switch (instr.op) {
                  case Opcode::PreAddr:
                  case Opcode::PreBoth:
                  case Opcode::PreBothVal:
                    checkAddressed(instr, Cursor{b, i});
                    break;
                  case Opcode::PreData:
                    checkDataOnly(instr, Cursor{b, i});
                    break;
                  default:
                    break;
                }
            }
        }
    }

  private:
    void
    collectDefs()
    {
        defs_.assign(fn_.numRegs, nullptr);
        for (const auto &bb : fn_.blocks)
            for (const Instr &instr : bb.instrs)
                if (instr.dst >= 0 && !isPreOp(instr.op) &&
                    instr.op != Opcode::MemCpy &&
                    !defs_[static_cast<unsigned>(instr.dst)])
                    defs_[static_cast<unsigned>(instr.dst)] = &instr;
    }

    /** Follow Mov/AddI chains to a root register. */
    int
    baseOf(int reg) const
    {
        int cur = reg;
        for (int depth = 0; depth < 16 && cur >= 0; ++depth) {
            const Instr *def =
                static_cast<unsigned>(cur) < defs_.size()
                    ? defs_[static_cast<unsigned>(cur)]
                    : nullptr;
            if (!def)
                return cur;
            if (def->op == Opcode::Mov || def->op == Opcode::AddI)
                cur = def->a;
            else
                return cur;
        }
        return cur;
    }

    /** Advance a cursor one instruction in layout order. */
    bool
    next(Cursor &c) const
    {
        if (c.index + 1 < fn_.blocks[c.block].instrs.size()) {
            ++c.index;
            return true;
        }
        for (unsigned b = c.block + 1; b < fn_.blocks.size(); ++b) {
            if (!fn_.blocks[b].instrs.empty()) {
                c = Cursor{b, 0};
                return true;
            }
        }
        return false;
    }

    const Instr &
    at(const Cursor &c) const
    {
        return fn_.blocks[c.block].instrs[c.index];
    }

    void
    report(MisuseFinding::Kind kind, const Cursor &where,
           const std::string &detail)
    {
        MisuseFinding finding;
        finding.kind = kind;
        finding.function = fn_.name;
        finding.block = where.block;
        finding.index = where.index;
        finding.message = std::string(kindName(kind)) + " in @" +
                          fn_.name + " bb" +
                          std::to_string(where.block) + ":" +
                          std::to_string(where.index) + ": " + detail;
        out_.push_back(std::move(finding));
    }

    void
    checkAddressed(const Instr &pre, Cursor start)
    {
        int base = baseOf(pre.a);
        bool carries_data = pre.op != Opcode::PreAddr;
        unsigned window = 0;
        unsigned writes_between = 0;
        Cursor c = start;
        while (next(c)) {
            const Instr &instr = at(c);
            window += instr.op == Opcode::Call ? config_.callWeight : 1;
            if (instr.op == Opcode::Clwb && baseOf(instr.a) == base) {
                if (carries_data && writes_between > 1)
                    report(MisuseFinding::Kind::ModifiedBeforeWrite,
                           start,
                           "pre-executed line updated " +
                               std::to_string(writes_between) +
                               " times before its writeback; the "
                               "snapshot will mismatch");
                if (window < config_.minWindowInstructions)
                    report(
                        MisuseFinding::Kind::InsufficientWindow, start,
                        "only ~" + std::to_string(window) +
                            " instructions before the writeback; "
                            "BMOs are unlikely to finish");
                return;
            }
            if ((instr.op == Opcode::Store &&
                 baseOf(instr.a) == base) ||
                (instr.op == Opcode::MemCpy &&
                 baseOf(instr.dst) == base))
                ++writes_between;
        }
        report(MisuseFinding::Kind::UselessPreExecution, start,
               "no subsequent writeback covers the pre-executed "
               "object");
    }

    void
    checkDataOnly(const Instr &pre, Cursor start)
    {
        // For PRE_DATA the hazard is the *source* changing before
        // the write consumes the snapshot.
        int src_base = baseOf(pre.a);
        Cursor c = start;
        while (next(c)) {
            const Instr &instr = at(c);
            if ((instr.op == Opcode::Store &&
                 baseOf(instr.a) == src_base) ||
                (instr.op == Opcode::MemCpy &&
                 baseOf(instr.dst) == src_base)) {
                report(MisuseFinding::Kind::ModifiedBeforeWrite, start,
                       "the PRE_DATA source buffer is modified after "
                       "the snapshot");
                return;
            }
        }
    }

    const Function &fn_;
    const MisuseCheckConfig &config_;
    std::vector<MisuseFinding> &out_;
    std::vector<const Instr *> defs_;
};

} // namespace

std::vector<MisuseFinding>
checkMisuse(const Module &module, const MisuseCheckConfig &config)
{
    std::vector<MisuseFinding> findings;
    for (const auto &[name, fn] : module.functions) {
        FunctionChecker checker(fn, config, findings);
        checker.run();
    }
    return findings;
}

std::string
toString(const std::vector<MisuseFinding> &findings)
{
    std::ostringstream os;
    for (const MisuseFinding &f : findings)
        os << f.message << '\n';
    return os.str();
}

} // namespace janus
