/**
 * @file
 * The automated instrumentation pass (paper Section 4.5): analyzes
 * PmIR and injects Janus pre-execution calls for every blocking
 * writeback it can prove safe, mirroring the paper's LLVM pass:
 *
 *  1. locate blocking writebacks (Clwb ... Sfence);
 *  2. dependence analysis: the writeback's address generation
 *     (use-def chain) and the last updates to the written object
 *     (Store / MemCpy with the same base register);
 *  3. inject PRE_* as early as legal: at the latest definition of
 *     the operands, in a block that dominates the writeback, never
 *     inside a loop relative to the writeback, falling back to the
 *     writeback's own block under a conditional.
 *
 * Limitations, matching Section 4.5.2 by construction:
 *  - intra-procedural only (library calls are opaque);
 *  - writebacks inside loops are skipped (no runtime trip counts);
 *  - no cache-line-sharing analysis: multi-field updates to one
 *    line yield per-field predictions that the hardware detects and
 *    repairs at consume time (a performance, never correctness,
 *    matter).
 */

#ifndef JANUS_COMPILER_AUTO_INSTRUMENT_HH
#define JANUS_COMPILER_AUTO_INSTRUMENT_HH

#include <string>
#include <vector>

#include "ir/ir.hh"

namespace janus
{

/** Aggregate outcome of a pass run (printed by the examples). */
struct InstrumentReport
{
    unsigned writebacksFound = 0;
    unsigned writebacksInLoop = 0; ///< skipped: loop-carried
    unsigned addrInjected = 0;     ///< PRE_ADDR calls added
    unsigned dataInjected = 0;     ///< PRE_BOTH/PRE_BOTH_VAL added
    unsigned dataUnresolved = 0;   ///< object updates not analyzable

    std::string toString() const;
};

/**
 * Instrument every function of the module except those named in
 * @p skip (precompiled runtime code the pass cannot see into).
 */
InstrumentReport autoInstrument(
    Module &module,
    const std::vector<std::string> &skip = {"undo_append", "tx_finish"});

} // namespace janus

#endif // JANUS_COMPILER_AUTO_INSTRUMENT_HH
