/**
 * @file
 * Static misuse detection for the Janus software interface — the
 * tooling the paper sketches as future work (Section 6). Scans an
 * instrumented PmIR module for the three misuse classes of the
 * Section 4.4 guidelines:
 *
 *  1. modified pre-execution object: the pre-executed location is
 *     stored to between the PRE_* call and the consuming writeback
 *     (the hardware will detect and repair this, at a cost);
 *  2. useless pre-execution: no subsequent blocking writeback ever
 *     covers the pre-executed object;
 *  3. insufficient window: too few instructions between the PRE_*
 *     call and the writeback for the BMOs to complete.
 *
 * All three are performance hazards, never correctness bugs — which
 * is exactly why a linter, not the hardware, should flag them.
 */

#ifndef JANUS_COMPILER_MISUSE_CHECK_HH
#define JANUS_COMPILER_MISUSE_CHECK_HH

#include <string>
#include <vector>

#include "ir/ir.hh"

namespace janus
{

/** One diagnostic. */
struct MisuseFinding
{
    enum class Kind
    {
        ModifiedBeforeWrite,
        UselessPreExecution,
        InsufficientWindow,
    };

    Kind kind;
    std::string function;
    unsigned block;
    unsigned index; ///< instruction index of the offending PRE_*
    std::string message;
};

/** Tuning knobs for the window estimate. */
struct MisuseCheckConfig
{
    /**
     * Minimum number of instructions between a PRE_* call and its
     * writeback for the ~700 ns BMO chain to plausibly complete.
     * Calls are weighted by this many instructions each.
     */
    unsigned minWindowInstructions = 8;
    unsigned callWeight = 16;
};

/** Scan every function; findings are ordered by position. */
std::vector<MisuseFinding> checkMisuse(
    const Module &module,
    const MisuseCheckConfig &config = MisuseCheckConfig());

/** Render findings one per line (for the example/CLI). */
std::string toString(const std::vector<MisuseFinding> &findings);

} // namespace janus

#endif // JANUS_COMPILER_MISUSE_CHECK_HH
