/**
 * @file
 * Functional state of the integrated BMOs: what the bits in NVM
 * actually look like. Follows the DeWrite-style integration the
 * paper assumes (Section 4.2): per-line metadata co-locates either
 * the encryption counter or the dedup remap target; a fingerprint
 * table detects duplicates; ciphertext lives in an indirected
 * physical line space with reference counting; a Bonsai Merkle tree
 * over the metadata entries protects integrity.
 *
 * Timing is modeled separately (BmoEngine); this class answers
 * "what is the persisted content" so recovery, read-back and
 * tamper-detection are end-to-end real.
 */

#ifndef JANUS_BMO_BACKEND_STATE_HH
#define JANUS_BMO_BACKEND_STATE_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <map>
#include <optional>
#include <unordered_map>

#include "bmo/bmo_config.hh"
#include "bmo/merkle_tree.hh"
#include "common/cacheline.hh"
#include "common/types.hh"
#include "crypto/aes128.hh"
#include "crypto/md5.hh"
#include "mem/sparse_memory.hh"

namespace janus
{

/**
 * 16-byte POD dedup fingerprint: the full MD5 digest, or the CRC-32
 * word zero-padded. A plain value type (no heap allocation) so
 * fingerprinting and table probes are allocation-free on the write
 * hot path.
 */
struct Fingerprint
{
    std::array<std::uint8_t, 16> bytes{};

    bool operator==(const Fingerprint &o) const
    {
        return bytes == o.bytes;
    }
};

/** Hash for Fingerprint table keys: mix the two 64-bit halves. */
struct FingerprintHash
{
    std::size_t operator()(const Fingerprint &fp) const
    {
        std::uint64_t a, b;
        std::memcpy(&a, fp.bytes.data(), 8);
        std::memcpy(&b, fp.bytes.data() + 8, 8);
        std::uint64_t h = a * 0x9E3779B97F4A7C15ull;
        h ^= b + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
        return static_cast<std::size_t>(h ^ (h >> 32));
    }
};

/** Per-logical-line metadata entry (co-located counter / remap). */
struct MetaEntry
{
    bool valid = false;
    /** True if this line's data is deduplicated onto another line's
     *  physical storage. */
    bool dup = false;
    /** Physical line index holding the ciphertext. */
    std::uint64_t phys = 0;
    /** Encryption counter of that physical line. */
    std::uint64_t counter = 0;

    /** Serialize to the 16-byte Merkle leaf format. */
    void serialize(std::uint8_t out[16]) const;

    /** Inverse of serialize (used by metadata fault injection). */
    static MetaEntry deserialize(const std::uint8_t in[16]);
};

/** Outcome of a functional write (feeds stats and tests). */
struct WriteOutcome
{
    bool duplicate = false;     ///< data write was cancelled
    bool newPhysLine = false;   ///< a fresh physical line was used
    std::uint64_t phys = 0;
    std::uint64_t counter = 0;
};

/** Everything a read-back reports (used by recovery and tests). */
struct ReadOutcome
{
    CacheLine data;
    bool macOk = false;
    bool treeOk = false;
};

/**
 * Attributed integrity verdict for one logical line: whether the
 * stored ciphertext authenticates against its MAC, and whether the
 * metadata leaf's path through the Merkle tree is consistent — with
 * the failing tree level named (see MerklePathVerdict).
 */
struct IntegrityVerdict
{
    bool macOk = true;
    MerklePathVerdict tree;

    bool ok() const { return macOk && tree.ok; }
};

/**
 * The integrated functional BMO backend.
 */
class BmoBackendState
{
  public:
    explicit BmoBackendState(const BmoConfig &config,
                             const Aes128::Key &key = defaultKey());

    /**
     * Apply a persisted line write: dedup, encrypt, MAC and Merkle
     * maintenance. Called when the write is accepted into the
     * persist domain.
     *
     * @param bypass_dedup  skip duplicate detection and table
     *        maintenance for this write (graceful degradation under
     *        fingerprint-table pressure); the write is stored as
     *        unique and stays fully readable/verifiable.
     */
    WriteOutcome writeLine(Addr line_addr, const CacheLine &plaintext,
                           bool bypass_dedup = false);

    /**
     * Read a line back through the full backend path: metadata
     * lookup, decrypt, MAC check and Merkle-path verification.
     * Unwritten lines read as zero with macOk/treeOk true.
     */
    ReadOutcome readLine(Addr line_addr) const;

    /** Fingerprint of a line under the configured dedup hash. */
    Fingerprint fingerprint(const CacheLine &line) const;

    /**
     * Side-effect-free duplicate probe: the physical line this data
     * would deduplicate onto if written now (byte-verified), or
     * nullopt. Janus uses this to detect pre-executed dedup results
     * invalidated by intervening metadata changes (Section 4.3.1).
     */
    std::optional<std::uint64_t> peekDedup(const CacheLine &line) const;

    /** The secure NV register holding the Merkle root. */
    const Sha1Digest &merkleRoot() const { return tree_.root(); }

    /**
     * The integrity tree itself: the streamlined-engine timing model
     * (memory controller / Janus frontend) probes its node cache and
     * epoch state; probes never alter functional digests.
     */
    MerkleTree &merkleTree() { return tree_; }
    const MerkleTree &merkleTree() const { return tree_; }

    /** Audit: recompute the root from the leaves. */
    bool auditIntegrity() const;

    /**
     * Order-independent digest of the stored ciphertext image.
     * Golden bit-equality tests pin this (with the Merkle root) so
     * fast-path changes can never silently alter functional results.
     */
    std::uint64_t storageContentHash() const
    {
        return storage_.contentHash();
    }

    /** Live fingerprint-table entries (dedup table pressure). */
    std::uint64_t dedupTableSize() const
    {
        return static_cast<std::uint64_t>(dedupTable_.size());
    }

    /** Metadata entry of a line (invalid entry if never written). */
    MetaEntry metaEntry(Addr line_addr) const;

    /** All live metadata entries (fault audit: refcount rebuild). */
    const std::unordered_map<Addr, MetaEntry> &metaEntries() const
    {
        return meta_;
    }

    /** Stored reference count of a physical line (0 if unknown). */
    std::uint32_t physRefCount(std::uint64_t phys) const
    {
        auto it = physLines_.find(phys);
        return it == physLines_.end() ? 0 : it->second.refCount;
    }

    /** Merkle leaf index covering a line's metadata entry. */
    std::uint64_t merkleLeafOf(Addr line_addr) const
    {
        return leafIndex(line_addr);
    }

    /**
     * Tamper with the stored ciphertext of a line (flip one byte),
     * bypassing all maintenance. For integrity tests.
     */
    void corruptStoredLine(Addr line_addr);

    // --- fault injection (src/fault/) ------------------------------
    // All hooks XOR bits, so injecting the same fault twice restores
    // the original state: campaigns are self-healing.

    /** Flip one bit of a line's stored ciphertext. */
    void injectStoredDataBitFlip(Addr line_addr, unsigned bit);

    /**
     * Flip one bit of a line's serialized 16-byte metadata entry
     * (counter / remap target / flags) without Merkle maintenance —
     * models a metadata line corrupted in NVM.
     */
    void injectMetaBitFlip(Addr line_addr, unsigned bit);

    /**
     * Flip one bit of the stored Merkle digest at @p level on the
     * path from @p line_addr's leaf to the root (level 0 = the leaf
     * digest itself).
     */
    void injectTreeBitFlip(Addr line_addr, unsigned level,
                           unsigned bit);

    /**
     * Fault injection: release the line's physical storage as if it
     * were remapped away, leaving the metadata entry in place — the
     * first half of a double-free. A second release (or the next
     * write to any line sharing the storage) must panic on the
     * refcount guard instead of wrapping.
     */
    void injectDoubleFree(Addr line_addr);

    /**
     * Full attributed integrity check of one line: MAC over the
     * stored ciphertext plus the Merkle path of its metadata leaf.
     */
    IntegrityVerdict verifyLineIntegrity(Addr line_addr) const;

    // --- statistics ------------------------------------------------
    std::uint64_t writes() const { return writes_; }
    std::uint64_t dupWrites() const { return dupWrites_; }
    /** Bytes before/after BDI (compression BMO enabled only). */
    std::uint64_t bytesBeforeCompression() const
    {
        return bytesBefore_;
    }
    std::uint64_t bytesAfterCompression() const { return bytesAfter_; }
    /** Achieved compression factor (1.0 when disabled). */
    double
    compressionRatio() const
    {
        return bytesAfter_ ? static_cast<double>(bytesBefore_) /
                                 static_cast<double>(bytesAfter_)
                           : 1.0;
    }
    std::uint64_t physLinesLive() const
    {
        return static_cast<std::uint64_t>(physLines_.size());
    }
    /** Observed duplicate ratio over all writes. */
    double
    dupRatio() const
    {
        return writes_ ? static_cast<double>(dupWrites_) / writes_ : 0.0;
    }

    const BmoConfig &config() const { return config_; }

    static Aes128::Key defaultKey();

  private:
    struct PhysLine
    {
        std::uint32_t refCount = 0;
        std::uint64_t counter = 0;
        Fingerprint fingerprint;
        Sha1Digest mac;
    };

    std::uint64_t leafIndex(Addr line_addr) const
    {
        return line_addr >> lineShift;
    }

    std::uint64_t allocPhys();
    /** @p line_addr names the logical line whose reference is being
     *  dropped — reported by the double-free/underflow guards. */
    void releasePhys(std::uint64_t phys, Addr line_addr);
    /** Decrypt + MAC-check the content of a physical line. */
    ReadOutcome readPhys(std::uint64_t phys) const;
    void installMeta(Addr line_addr, const MetaEntry &entry);
    Sha1Digest computeMac(const CacheLine &cipher,
                          std::uint64_t counter) const;

    BmoConfig config_;
    Aes128 aes_;
    MerkleTree tree_;
    /** Logical line address -> metadata. */
    std::unordered_map<Addr, MetaEntry> meta_;
    /** Fingerprint -> physical line index. */
    std::unordered_map<Fingerprint, std::uint64_t, FingerprintHash>
        dedupTable_;
    /** Physical line index -> bookkeeping. */
    std::unordered_map<std::uint64_t, PhysLine> physLines_;
    /** Ciphertext storage, indexed by physical line index. */
    SparseMemory storage_;
    std::uint64_t nextPhys_ = 1; ///< 0 is reserved/invalid
    std::vector<std::uint64_t> freePhys_;

    std::uint64_t writes_ = 0;
    std::uint64_t dupWrites_ = 0;
    std::uint64_t bytesBefore_ = 0;
    std::uint64_t bytesAfter_ = 0;
};

} // namespace janus

#endif // JANUS_BMO_BACKEND_STATE_HH
