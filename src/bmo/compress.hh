/**
 * @file
 * Base-Delta-Immediate (BDI) compression [Pekhimenko et al., PACT'12
 * — reference 67 of the paper] for 64-byte lines: the extension BMO
 * (paper Table 1 lists compression at 5-30 ns). The encoder is real
 * and round-trips; the backend uses it to account bandwidth savings
 * and the ablation bench times the 4-BMO system.
 */

#ifndef JANUS_BMO_COMPRESS_HH
#define JANUS_BMO_COMPRESS_HH

#include <cstdint>
#include <vector>

#include "common/cacheline.hh"

namespace janus
{

/** BDI encodings, best (smallest) first at equal applicability. */
enum class BdiEncoding : std::uint8_t
{
    Zero,        ///< all-zero line: 1 byte
    Repeat8,     ///< one repeated 64-bit value: 8 bytes
    Base8Delta1, ///< 8B base + 8 x 1B deltas: 16 bytes
    Base8Delta2, ///< 8B base + 8 x 2B deltas: 24 bytes
    Base8Delta4, ///< 8B base + 8 x 4B deltas: 40 bytes
    Base4Delta1, ///< 4B base + 16 x 1B deltas: 20 bytes
    Base4Delta2, ///< 4B base + 16 x 2B deltas: 36 bytes
    Base2Delta1, ///< 2B base + 32 x 1B deltas: 34 bytes
    Uncompressed,
};

/** A compressed line: the chosen encoding plus its payload. */
struct BdiCompressed
{
    BdiEncoding encoding = BdiEncoding::Uncompressed;
    std::vector<std::uint8_t> payload;

    /** Bytes on the wire. The encoding tag rides in the line's
     *  metadata entry (as in MemZip/LCP), so raw lines never
     *  expand. */
    unsigned
    sizeBytes() const
    {
        return static_cast<unsigned>(payload.size());
    }
};

/** Compress a line with the best applicable BDI encoding. */
BdiCompressed bdiCompress(const CacheLine &line);

/** Invert bdiCompress exactly. */
CacheLine bdiDecompress(const BdiCompressed &compressed);

/** Human-readable encoding name. */
const char *bdiEncodingName(BdiEncoding encoding);

} // namespace janus

#endif // JANUS_BMO_COMPRESS_HH
