#include "bmo/bmo_graph.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace janus
{

SubOpId
BmoGraph::addSubOp(std::string name, BmoKind kind, Tick latency,
                   ExternalInput direct, int pipe_stage)
{
    janus_assert(!finalized_, "graph already finalized");
    janus_assert(subOps_.size() < 0xFFFF, "too many sub-operations");
    subOps_.push_back(
        SubOp{std::move(name), kind, latency, direct, pipe_stage});
    preds_.emplace_back();
    if (pipe_stage >= 0)
        pipeStages_ = std::max(pipeStages_, pipe_stage + 1);
    return static_cast<SubOpId>(subOps_.size() - 1);
}

void
BmoGraph::addEdge(SubOpId from, SubOpId to)
{
    janus_assert(!finalized_, "graph already finalized");
    janus_assert(from < subOps_.size() && to < subOps_.size(),
                 "edge references unknown sub-op");
    janus_assert(from != to, "self edge on %s",
                 subOps_[from].name.c_str());
    preds_[to].push_back(from);
}

void
BmoGraph::finalize()
{
    janus_assert(!finalized_, "graph already finalized");
    const std::size_t n = subOps_.size();

    // Kahn topological sort; preserves insertion order among ready
    // nodes for determinism.
    std::vector<unsigned> indeg(n, 0);
    std::vector<std::vector<SubOpId>> succs(n);
    for (SubOpId to = 0; to < n; ++to) {
        for (SubOpId from : preds_[to]) {
            succs[from].push_back(to);
            ++indeg[to];
        }
    }
    std::vector<SubOpId> ready;
    for (SubOpId id = 0; id < n; ++id)
        if (indeg[id] == 0)
            ready.push_back(id);
    topo_.clear();
    for (std::size_t head = 0; head < ready.size(); ++head) {
        SubOpId id = ready[head];
        topo_.push_back(id);
        for (SubOpId s : succs[id])
            if (--indeg[s] == 0)
                ready.push_back(s);
    }
    janus_assert(topo_.size() == n, "BMO graph has a cycle");

    // Pipelined (per-tree-level) nodes must form a terminal region:
    // the engine's unit-pool scheduler assumes no pool node ever
    // waits on a pipeline stage.
    for (SubOpId to = 0; to < n; ++to) {
        if (subOps_[to].pipeStage >= 0)
            continue;
        for (SubOpId from : preds_[to])
            janus_assert(subOps_[from].pipeStage < 0,
                         "unit-pool node %s depends on pipelined %s",
                         subOps_[to].name.c_str(),
                         subOps_[from].name.c_str());
    }

    // Transitive external requirements (the paper's merge rule).
    required_.assign(n, ExternalInput::None);
    for (SubOpId id : topo_) {
        ExternalInput req = subOps_[id].direct;
        for (SubOpId p : preds_[id])
            req = req | required_[p];
        required_[id] = req;
    }

    finalized_ = true;
}

SubOpId
BmoGraph::idOf(const std::string &name) const
{
    for (SubOpId id = 0; id < subOps_.size(); ++id)
        if (subOps_[id].name == name)
            return id;
    panic("unknown sub-op '%s'", name.c_str());
}

bool
BmoGraph::hasSubOp(const std::string &name) const
{
    for (const SubOp &op : subOps_)
        if (op.name == name)
            return true;
    return false;
}

std::vector<SubOpId>
BmoGraph::dependentsOf(SubOpId id) const
{
    janus_assert(finalized_, "finalize() the graph first");
    std::vector<char> in_set(subOps_.size(), 0);
    in_set[id] = 1;
    for (SubOpId node : topo_) {
        if (in_set[node])
            continue;
        for (SubOpId p : preds_[node]) {
            if (in_set[p]) {
                in_set[node] = 1;
                break;
            }
        }
    }
    std::vector<SubOpId> out;
    for (SubOpId node = 0; node < subOps_.size(); ++node)
        if (in_set[node])
            out.push_back(node);
    return out;
}

Tick
BmoGraph::serializedLatency() const
{
    Tick total = 0;
    for (const SubOp &op : subOps_)
        total += op.latency;
    return total;
}

Tick
BmoGraph::criticalPath() const
{
    janus_assert(finalized_, "finalize() the graph first");
    std::vector<Tick> finish(subOps_.size(), 0);
    Tick makespan = 0;
    for (SubOpId id : topo_) {
        Tick start = 0;
        for (SubOpId p : preds_[id])
            start = std::max(start, finish[p]);
        finish[id] = start + subOps_[id].latency;
        makespan = std::max(makespan, finish[id]);
    }
    return makespan;
}

std::string
BmoGraph::toString() const
{
    std::ostringstream os;
    auto input_name = [](ExternalInput in) {
        switch (in) {
          case ExternalInput::None: return "none";
          case ExternalInput::Addr: return "addr";
          case ExternalInput::Data: return "data";
          case ExternalInput::Both: return "addr+data";
        }
        return "?";
    };
    for (SubOpId id = 0; id < subOps_.size(); ++id) {
        const SubOp &op = subOps_[id];
        os << op.name << " (" << ticks::toNsF(op.latency) << " ns, needs "
           << input_name(finalized_ ? required_[id] : op.direct) << ")";
        if (!preds_[id].empty()) {
            os << " <- ";
            for (std::size_t i = 0; i < preds_[id].size(); ++i) {
                if (i)
                    os << ", ";
                os << subOps_[preds_[id][i]].name;
            }
        }
        os << '\n';
    }
    return os.str();
}

} // namespace janus
