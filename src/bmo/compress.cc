#include "bmo/compress.hh"

#include <cstring>

#include "common/logging.hh"

namespace janus
{

namespace
{

/**
 * Try base+delta with the given base width (bytes) and delta width:
 * every base-sized word must be within a signed delta of the first
 * word. @return true and fill payload on success.
 */
template <typename BaseT, typename DeltaT>
bool
tryBaseDelta(const CacheLine &line, std::vector<std::uint8_t> &payload)
{
    constexpr unsigned words = lineBytes / sizeof(BaseT);
    BaseT base;
    line.read(0, &base, sizeof(BaseT));
    DeltaT deltas[words];
    for (unsigned w = 0; w < words; ++w) {
        BaseT value;
        line.read(w * sizeof(BaseT), &value, sizeof(BaseT));
        auto wide = static_cast<std::int64_t>(value) -
                    static_cast<std::int64_t>(base);
        auto narrow = static_cast<DeltaT>(wide);
        if (static_cast<std::int64_t>(narrow) != wide)
            return false;
        deltas[w] = narrow;
    }
    payload.resize(sizeof(BaseT) + sizeof(deltas));
    std::memcpy(payload.data(), &base, sizeof(BaseT));
    std::memcpy(payload.data() + sizeof(BaseT), deltas,
                sizeof(deltas));
    return true;
}

template <typename BaseT, typename DeltaT>
CacheLine
expandBaseDelta(const std::vector<std::uint8_t> &payload)
{
    constexpr unsigned words = lineBytes / sizeof(BaseT);
    janus_assert(payload.size() ==
                     sizeof(BaseT) + words * sizeof(DeltaT),
                 "bad BDI payload size %zu", payload.size());
    BaseT base;
    std::memcpy(&base, payload.data(), sizeof(BaseT));
    CacheLine line;
    for (unsigned w = 0; w < words; ++w) {
        DeltaT delta;
        std::memcpy(&delta, payload.data() + sizeof(BaseT) +
                                w * sizeof(DeltaT),
                    sizeof(DeltaT));
        auto value = static_cast<BaseT>(
            static_cast<std::int64_t>(base) +
            static_cast<std::int64_t>(delta));
        line.write(w * sizeof(BaseT), &value, sizeof(BaseT));
    }
    return line;
}

} // namespace

BdiCompressed
bdiCompress(const CacheLine &line)
{
    BdiCompressed out;

    bool zero = true;
    for (unsigned off = 0; off < lineBytes && zero; off += 8)
        zero = line.word(off) == 0;
    if (zero) {
        out.encoding = BdiEncoding::Zero;
        return out;
    }

    bool repeat = true;
    std::uint64_t first = line.word(0);
    for (unsigned off = 8; off < lineBytes && repeat; off += 8)
        repeat = line.word(off) == first;
    if (repeat) {
        out.encoding = BdiEncoding::Repeat8;
        out.payload.resize(8);
        std::memcpy(out.payload.data(), &first, 8);
        return out;
    }

    // Smallest encodings first.
    if (tryBaseDelta<std::uint64_t, std::int8_t>(line, out.payload)) {
        out.encoding = BdiEncoding::Base8Delta1;
        return out;
    }
    if (tryBaseDelta<std::uint32_t, std::int8_t>(line, out.payload)) {
        out.encoding = BdiEncoding::Base4Delta1;
        return out;
    }
    if (tryBaseDelta<std::uint64_t, std::int16_t>(line, out.payload)) {
        out.encoding = BdiEncoding::Base8Delta2;
        return out;
    }
    if (tryBaseDelta<std::uint16_t, std::int8_t>(line, out.payload)) {
        out.encoding = BdiEncoding::Base2Delta1;
        return out;
    }
    if (tryBaseDelta<std::uint32_t, std::int16_t>(line, out.payload)) {
        out.encoding = BdiEncoding::Base4Delta2;
        return out;
    }
    if (tryBaseDelta<std::uint64_t, std::int32_t>(line, out.payload)) {
        out.encoding = BdiEncoding::Base8Delta4;
        return out;
    }

    out.encoding = BdiEncoding::Uncompressed;
    out.payload.resize(lineBytes);
    std::memcpy(out.payload.data(), line.data(), lineBytes);
    return out;
}

CacheLine
bdiDecompress(const BdiCompressed &compressed)
{
    switch (compressed.encoding) {
      case BdiEncoding::Zero:
        return CacheLine();
      case BdiEncoding::Repeat8: {
          janus_assert(compressed.payload.size() == 8, "bad payload");
          CacheLine line;
          std::uint64_t value;
          std::memcpy(&value, compressed.payload.data(), 8);
          for (unsigned off = 0; off < lineBytes; off += 8)
              line.setWord(off, value);
          return line;
      }
      case BdiEncoding::Base8Delta1:
        return expandBaseDelta<std::uint64_t, std::int8_t>(
            compressed.payload);
      case BdiEncoding::Base8Delta2:
        return expandBaseDelta<std::uint64_t, std::int16_t>(
            compressed.payload);
      case BdiEncoding::Base8Delta4:
        return expandBaseDelta<std::uint64_t, std::int32_t>(
            compressed.payload);
      case BdiEncoding::Base4Delta1:
        return expandBaseDelta<std::uint32_t, std::int8_t>(
            compressed.payload);
      case BdiEncoding::Base4Delta2:
        return expandBaseDelta<std::uint32_t, std::int16_t>(
            compressed.payload);
      case BdiEncoding::Base2Delta1:
        return expandBaseDelta<std::uint16_t, std::int8_t>(
            compressed.payload);
      case BdiEncoding::Uncompressed: {
          janus_assert(compressed.payload.size() == lineBytes,
                       "bad payload");
          CacheLine line;
          std::memcpy(line.data(), compressed.payload.data(),
                      lineBytes);
          return line;
      }
    }
    panic("unknown BDI encoding");
}

const char *
bdiEncodingName(BdiEncoding encoding)
{
    switch (encoding) {
      case BdiEncoding::Zero: return "zero";
      case BdiEncoding::Repeat8: return "repeat8";
      case BdiEncoding::Base8Delta1: return "b8d1";
      case BdiEncoding::Base8Delta2: return "b8d2";
      case BdiEncoding::Base8Delta4: return "b8d4";
      case BdiEncoding::Base4Delta1: return "b4d1";
      case BdiEncoding::Base4Delta2: return "b4d2";
      case BdiEncoding::Base2Delta1: return "b2d1";
      case BdiEncoding::Uncompressed: return "raw";
    }
    return "?";
}

} // namespace janus
