#include "bmo/backend_state.hh"

#include <cstring>

#include "common/logging.hh"
#include "bmo/compress.hh"
#include "crypto/crc32.hh"

namespace janus
{

void
MetaEntry::serialize(std::uint8_t out[16]) const
{
    std::memcpy(out, &phys, 8);
    std::uint64_t ctr56 = counter & ((std::uint64_t(1) << 56) - 1);
    std::memcpy(out + 8, &ctr56, 7);
    out[15] = static_cast<std::uint8_t>((valid ? 1 : 0) |
                                        (dup ? 2 : 0));
}

MetaEntry
MetaEntry::deserialize(const std::uint8_t in[16])
{
    MetaEntry entry;
    std::memcpy(&entry.phys, in, 8);
    std::uint64_t ctr56 = 0;
    std::memcpy(&ctr56, in + 8, 7);
    entry.counter = ctr56;
    entry.valid = (in[15] & 1) != 0;
    entry.dup = (in[15] & 2) != 0;
    return entry;
}

Aes128::Key
BmoBackendState::defaultKey()
{
    Aes128::Key key{};
    for (unsigned i = 0; i < key.size(); ++i)
        key[i] = static_cast<std::uint8_t>(0xA5 ^ (17 * i));
    return key;
}

BmoBackendState::BmoBackendState(const BmoConfig &config,
                                 const Aes128::Key &key)
    : config_(config), aes_(key), tree_(config.merkleLevels, 16)
{
    tree_.setNodeCacheCapacity(config.streamlinedIntegrity
                                   ? config.merkleCacheNodes
                                   : 0);
}

Fingerprint
BmoBackendState::fingerprint(const CacheLine &line) const
{
    Fingerprint fp;
    if (config_.dedupHash == DedupHash::Md5) {
        Md5Digest digest = Md5::hash(line.data(), line.size());
        fp.bytes = digest.bytes;
    } else {
        std::uint32_t crc = crc32(line.data(), line.size());
        std::memcpy(fp.bytes.data(), &crc, sizeof(crc));
    }
    return fp;
}

std::optional<std::uint64_t>
BmoBackendState::peekDedup(const CacheLine &line) const
{
    if (!config_.deduplication)
        return std::nullopt;
    auto it = dedupTable_.find(fingerprint(line));
    if (it == dedupTable_.end())
        return std::nullopt;
    ReadOutcome stored = readPhys(it->second);
    if (!(stored.data == line))
        return std::nullopt; // fingerprint collision
    return it->second;
}

std::uint64_t
BmoBackendState::allocPhys()
{
    if (!freePhys_.empty()) {
        std::uint64_t phys = freePhys_.back();
        freePhys_.pop_back();
        return phys;
    }
    return nextPhys_++;
}

void
BmoBackendState::releasePhys(std::uint64_t phys, Addr line_addr)
{
    auto it = physLines_.find(phys);
    // A double-free-style remap reaches one of these two guards: the
    // first release of the last reference erases the physical line,
    // so a second release finds it unknown; a release racing a live
    // sharer would otherwise wrap the unsigned refcount.
    janus_assert(it != physLines_.end(),
                 "double free: release of unknown phys line %llu "
                 "(dedup remap of line %#llx)",
                 static_cast<unsigned long long>(phys),
                 static_cast<unsigned long long>(line_addr));
    janus_assert(it->second.refCount > 0,
                 "dedup refcount underflow on phys line %llu "
                 "(remap of line %#llx)",
                 static_cast<unsigned long long>(phys),
                 static_cast<unsigned long long>(line_addr));
    if (--it->second.refCount == 0) {
        auto fp_it = dedupTable_.find(it->second.fingerprint);
        if (fp_it != dedupTable_.end() && fp_it->second == phys)
            dedupTable_.erase(fp_it);
        physLines_.erase(it);
        freePhys_.push_back(phys);
    }
}

void
BmoBackendState::installMeta(Addr line_addr, const MetaEntry &entry)
{
    meta_[line_addr] = entry;
    if (config_.integrity) {
        std::uint8_t leaf[16];
        entry.serialize(leaf);
        tree_.update(leafIndex(line_addr), leaf);
    }
}

Sha1Digest
BmoBackendState::computeMac(const CacheLine &cipher,
                            std::uint64_t counter) const
{
    Sha1 hasher;
    hasher.update(cipher.data(), cipher.size());
    hasher.update(&counter, sizeof(counter));
    return hasher.finish();
}

WriteOutcome
BmoBackendState::writeLine(Addr line_addr, const CacheLine &plaintext,
                           bool bypass_dedup)
{
    janus_assert(lineOffset(line_addr) == 0, "unaligned BMO write");
    ++writes_;
    bool dedup = config_.deduplication && !bypass_dedup;

    WriteOutcome outcome;
    auto old_it = meta_.find(line_addr);
    MetaEntry old = old_it == meta_.end() ? MetaEntry{} : old_it->second;

    // C1: the compression extension BMO runs on the raw data and
    // accounts the bandwidth/storage savings.
    if (config_.compression) {
        bytesBefore_ += lineBytes;
        bytesAfter_ += bdiCompress(plaintext).sizeBytes();
    }

    // D1/D2: fingerprint and duplicate detection. Hash once; the
    // unique-write path below reuses it for the table insert.
    Fingerprint fp;
    if (dedup) {
        fp = fingerprint(plaintext);
        auto hit = dedupTable_.find(fp);
        if (hit != dedupTable_.end()) {
            std::uint64_t phys = hit->second;
            // Guard against fingerprint collisions (matters for
            // CRC-32): confirm the stored plaintext really matches.
            ReadOutcome stored = readPhys(phys);
            if (stored.data == plaintext) {
                ++dupWrites_;
                outcome.duplicate = true;
                outcome.phys = phys;
                outcome.counter = physLines_.at(phys).counter;
                if (old.valid && old.phys == phys)
                    return outcome; // same value rewrite: no change
                physLines_.at(phys).refCount++;
                if (old.valid)
                    releasePhys(old.phys, line_addr);
                MetaEntry entry;
                entry.valid = true;
                entry.dup = true;
                entry.phys = phys;
                entry.counter = physLines_.at(phys).counter;
                installMeta(line_addr, entry);
                return outcome;
            }
            // Collision: fall through and treat as unique; the new
            // value evicts the table entry for this fingerprint.
        }
    }

    // Unique write. Reuse the line's physical slot if it owns it
    // exclusively; otherwise allocate a fresh slot.
    std::uint64_t phys;
    std::uint64_t counter;
    if (old.valid && !old.dup &&
        physLines_.at(old.phys).refCount == 1) {
        phys = old.phys;
        PhysLine &pl = physLines_.at(phys);
        auto fp_it = dedupTable_.find(pl.fingerprint);
        if (fp_it != dedupTable_.end() && fp_it->second == phys)
            dedupTable_.erase(fp_it);
        counter = pl.counter + 1;
    } else {
        if (old.valid)
            releasePhys(old.phys, line_addr);
        phys = allocPhys();
        physLines_[phys] = PhysLine{};
        physLines_[phys].refCount = 1;
        counter = 1;
        outcome.newPhysLine = true;
    }

    // E1-E3: bump counter, generate the OTP, encrypt.
    CacheLine cipher = plaintext;
    if (config_.encryption) {
        CacheLine otp = aes_.otp(counter, phys << lineShift);
        cipher ^= otp;
    }
    storage_.writeLine(phys << lineShift, cipher);

    PhysLine &pl = physLines_.at(phys);
    pl.counter = counter;
    pl.fingerprint = dedup ? fp : Fingerprint{};
    // E4: message authentication code over (ciphertext, counter).
    if (config_.integrity)
        pl.mac = computeMac(cipher, counter);
    if (dedup)
        dedupTable_[pl.fingerprint] = phys;

    MetaEntry entry;
    entry.valid = true;
    entry.dup = false;
    entry.phys = phys;
    entry.counter = counter;
    installMeta(line_addr, entry);

    outcome.phys = phys;
    outcome.counter = counter;
    return outcome;
}

ReadOutcome
BmoBackendState::readLine(Addr line_addr) const
{
    janus_assert(lineOffset(line_addr) == 0, "unaligned BMO read");
    ReadOutcome outcome;
    auto it = meta_.find(line_addr);
    if (it == meta_.end() || !it->second.valid) {
        outcome.macOk = true;
        outcome.treeOk = true;
        return outcome; // unwritten lines read as zero
    }
    const MetaEntry &entry = it->second;
    outcome = readPhys(entry.phys);
    if (config_.integrity) {
        std::uint8_t leaf[16];
        entry.serialize(leaf);
        outcome.treeOk =
            tree_.verifyLeaf(leafIndex(line_addr), leaf);
    } else {
        outcome.treeOk = true;
    }
    return outcome;
}

ReadOutcome
BmoBackendState::readPhys(std::uint64_t phys) const
{
    ReadOutcome outcome;
    auto it = physLines_.find(phys);
    if (it == physLines_.end()) {
        outcome.macOk = true;
        outcome.treeOk = true;
        return outcome;
    }
    const PhysLine &pl = it->second;
    CacheLine cipher = storage_.readLine(phys << lineShift);
    outcome.macOk = config_.integrity
                        ? computeMac(cipher, pl.counter) == pl.mac
                        : true;
    outcome.treeOk = true;
    if (config_.encryption) {
        CacheLine otp = aes_.otp(pl.counter, phys << lineShift);
        cipher ^= otp;
    }
    outcome.data = cipher;
    return outcome;
}

MetaEntry
BmoBackendState::metaEntry(Addr line_addr) const
{
    auto it = meta_.find(line_addr);
    return it == meta_.end() ? MetaEntry{} : it->second;
}

bool
BmoBackendState::auditIntegrity() const
{
    if (!config_.integrity)
        return true;
    return tree_.recomputeRoot() == tree_.root();
}

void
BmoBackendState::corruptStoredLine(Addr line_addr)
{
    auto it = meta_.find(line_addr);
    janus_assert(it != meta_.end() && it->second.valid,
                 "cannot corrupt an unwritten line");
    Addr phys_addr = it->second.phys << lineShift;
    CacheLine cipher = storage_.readLine(phys_addr);
    cipher.data()[0] ^= 0xFF;
    storage_.writeLine(phys_addr, cipher);
}

void
BmoBackendState::injectStoredDataBitFlip(Addr line_addr, unsigned bit)
{
    auto it = meta_.find(line_addr);
    janus_assert(it != meta_.end() && it->second.valid,
                 "cannot inject into an unwritten line");
    janus_assert(bit < 8 * lineBytes, "data bit %u out of range", bit);
    Addr phys_addr = it->second.phys << lineShift;
    CacheLine cipher = storage_.readLine(phys_addr);
    cipher.data()[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    storage_.writeLine(phys_addr, cipher);
}

void
BmoBackendState::injectMetaBitFlip(Addr line_addr, unsigned bit)
{
    auto it = meta_.find(line_addr);
    janus_assert(it != meta_.end() && it->second.valid,
                 "cannot inject into an unwritten line's metadata");
    janus_assert(bit < 8 * 16, "meta bit %u out of range", bit);
    std::uint8_t leaf[16];
    it->second.serialize(leaf);
    leaf[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    // Store the corrupted entry without touching the tree: the next
    // readLine re-serializes it and the leaf digest no longer
    // matches, which is exactly the NVM-metadata-corruption model.
    it->second = MetaEntry::deserialize(leaf);
}

void
BmoBackendState::injectTreeBitFlip(Addr line_addr, unsigned level,
                                   unsigned bit)
{
    janus_assert(config_.integrity,
                 "tree injection requires integrity enabled");
    std::uint64_t index = leafIndex(line_addr) >>
                          (MerkleTree::fanoutShift * level);
    tree_.corruptNode(level, index, bit);
}

void
BmoBackendState::injectDoubleFree(Addr line_addr)
{
    auto it = meta_.find(line_addr);
    janus_assert(it != meta_.end() && it->second.valid,
                 "cannot double-free an unwritten line");
    releasePhys(it->second.phys, line_addr);
}

IntegrityVerdict
BmoBackendState::verifyLineIntegrity(Addr line_addr) const
{
    IntegrityVerdict verdict;
    auto it = meta_.find(line_addr);
    if (it == meta_.end() || !it->second.valid)
        return verdict; // unwritten lines vacuously verify
    const MetaEntry &entry = it->second;
    if (config_.integrity) {
        auto pl = physLines_.find(entry.phys);
        if (pl == physLines_.end()) {
            // A corrupted remap target points at storage we have no
            // bookkeeping for; counted as a MAC failure (no counter
            // to authenticate against).
            verdict.macOk = false;
        } else {
            CacheLine cipher = storage_.readLine(entry.phys
                                                 << lineShift);
            verdict.macOk =
                computeMac(cipher, pl->second.counter) ==
                pl->second.mac;
        }
        std::uint8_t leaf[16];
        entry.serialize(leaf);
        verdict.tree = tree_.verifyLeafPath(leafIndex(line_addr), leaf);
    }
    return verdict;
}

} // namespace janus
