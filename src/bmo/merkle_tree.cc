#include "bmo/merkle_tree.hh"

#include <vector>

#include "common/logging.hh"

namespace janus
{

MerkleTree::MerkleTree(unsigned levels, unsigned leaf_bytes)
    : levels_(levels), leafBytes_(leaf_bytes), nodes_(levels + 1),
      defaults_(levels + 1)
{
    janus_assert(levels >= 1 && levels <= 21, "bad tree height %u",
                 levels);
    // Default leaf digest: hash of an all-zero entry.
    std::vector<std::uint8_t> zero(leafBytes_, 0);
    defaults_[0] = Sha1::hash(zero.data(), zero.size());
    for (unsigned level = 1; level <= levels_; ++level) {
        Sha1 hasher;
        for (unsigned c = 0; c < fanout; ++c)
            hasher.update(defaults_[level - 1].bytes.data(),
                          defaults_[level - 1].bytes.size());
        defaults_[level] = hasher.finish();
    }
    root_ = defaults_[levels_];
}

const Sha1Digest &
MerkleTree::node(unsigned level, std::uint64_t index) const
{
    const auto &map = nodes_[level];
    auto it = map.find(index);
    return it == map.end() ? defaults_[level] : it->second;
}

Sha1Digest
MerkleTree::hashChildren(unsigned level, std::uint64_t index) const
{
    janus_assert(level >= 1, "leaves have no children");
    Sha1 hasher;
    for (unsigned c = 0; c < fanout; ++c) {
        const Sha1Digest &child =
            node(level - 1, index * fanout + c);
        hasher.update(child.bytes.data(), child.bytes.size());
    }
    return hasher.finish();
}

void
MerkleTree::update(std::uint64_t leaf_index, const void *leaf_data)
{
    janus_assert(leaf_index < capacity(), "leaf index out of range");
    nodes_[0][leaf_index] = Sha1::hash(leaf_data, leafBytes_);
    std::uint64_t index = leaf_index;
    for (unsigned level = 1; level <= levels_; ++level) {
        index >>= fanoutShift;
        nodes_[level][index] = hashChildren(level, index);
    }
    root_ = node(levels_, 0);
}

Sha1Digest
MerkleTree::recomputeRoot() const
{
    // Rebuild bottom-up over only the materialized indices.
    std::unordered_map<std::uint64_t, Sha1Digest> current = nodes_[0];
    for (unsigned level = 1; level <= levels_; ++level) {
        std::unordered_map<std::uint64_t, Sha1Digest> next;
        for (const auto &[index, digest] : current) {
            std::uint64_t parent = index >> fanoutShift;
            if (next.count(parent))
                continue;
            Sha1 hasher;
            for (unsigned c = 0; c < fanout; ++c) {
                std::uint64_t child = parent * fanout + c;
                auto it = current.find(child);
                const Sha1Digest &d =
                    it == current.end() ? defaults_[level - 1]
                                        : it->second;
                hasher.update(d.bytes.data(), d.bytes.size());
            }
            next[parent] = hasher.finish();
        }
        current = std::move(next);
    }
    auto it = current.find(0);
    return it == current.end() ? defaults_[levels_] : it->second;
}

bool
MerkleTree::verifyLeaf(std::uint64_t leaf_index,
                       const void *leaf_data) const
{
    if (leaf_index >= capacity())
        return false;
    Sha1Digest leaf = Sha1::hash(leaf_data, leafBytes_);
    if (!(leaf == node(0, leaf_index)))
        return false;
    // Walk the path to the root, re-deriving each parent.
    std::uint64_t index = leaf_index;
    for (unsigned level = 1; level <= levels_; ++level) {
        index >>= fanoutShift;
        Sha1Digest derived = hashChildren(level, index);
        if (!(derived == node(level, index)))
            return false;
    }
    return node(levels_, 0) == root_;
}

std::size_t
MerkleTree::materializedNodes() const
{
    std::size_t total = 0;
    for (const auto &map : nodes_)
        total += map.size();
    return total;
}

} // namespace janus
