#include "bmo/merkle_tree.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/logging.hh"

namespace janus
{

MerkleTree::MerkleTree(unsigned levels, unsigned leaf_bytes)
    : levels_(levels), leafBytes_(leaf_bytes), nodes_(levels + 1),
      defaults_(levels + 1)
{
    janus_assert(levels >= 1 && levels <= 21, "bad tree height %u",
                 levels);
    // Default leaf digest: hash of an all-zero entry.
    std::vector<std::uint8_t> zero(leafBytes_, 0);
    defaults_[0] = Sha1::hash(zero.data(), zero.size());
    for (unsigned level = 1; level <= levels_; ++level) {
        Sha1 hasher;
        for (unsigned c = 0; c < fanout; ++c)
            hasher.update(defaults_[level - 1].bytes.data(),
                          defaults_[level - 1].bytes.size());
        defaults_[level] = hasher.finish();
    }
    root_ = defaults_[levels_];
}

const Sha1Digest &
MerkleTree::node(unsigned level, std::uint64_t index) const
{
    const auto &map = nodes_[level];
    auto it = map.find(index);
    return it == map.end() ? defaults_[level] : it->second;
}

Sha1Digest
MerkleTree::hashChildren(unsigned level, std::uint64_t index) const
{
    janus_assert(level >= 1, "leaves have no children");
    // Gather the eight child digests into one buffer: a single
    // SHA-1 pass over 160 contiguous bytes is byte-stream-identical
    // to eight incremental updates.
    std::uint8_t buf[fanout * sizeof(Sha1Digest::bytes)];
    const auto &children = nodes_[level - 1];
    const std::uint64_t base = index * fanout;
    for (unsigned c = 0; c < fanout; ++c) {
        auto it = children.find(base + c);
        const Sha1Digest &child =
            it == children.end() ? defaults_[level - 1] : it->second;
        std::memcpy(buf + sizeof(child.bytes) * c, child.bytes.data(),
                    sizeof(child.bytes));
    }
    return Sha1::hash(buf, sizeof(buf));
}

void
MerkleTree::update(std::uint64_t leaf_index, const void *leaf_data)
{
    janus_assert(leaf_index < capacity(), "leaf index out of range");
    nodes_[0][leaf_index] = Sha1::hash(leaf_data, leafBytes_);
    dirtyLeaves_.push_back(leaf_index);
}

void
MerkleTree::propagate(std::vector<std::uint64_t> &frontier,
                      unsigned from_level, unsigned to_level) const
{
    // The dirty list becomes the parent frontier: shift to the
    // parent level, coalesce duplicates, rehash each touched
    // interior node exactly once, repeat upward.
    for (unsigned level = from_level; level <= to_level; ++level) {
        for (std::uint64_t &index : frontier)
            index >>= fanoutShift;
        std::sort(frontier.begin(), frontier.end());
        frontier.erase(std::unique(frontier.begin(), frontier.end()),
                       frontier.end());
        auto &dst = nodes_[level];
        for (std::uint64_t parent : frontier)
            dst[parent] = hashChildren(level, parent);
        interiorRehashes_ += frontier.size();
    }
}

void
MerkleTree::flush() const
{
    if (dirtyLeaves_.empty())
        return;
    const std::uint64_t batch = dirtyLeaves_.size();
    const std::uint64_t before = interiorRehashes_;
    flushScratch_.swap(dirtyLeaves_);
    dirtyLeaves_.clear();
    propagate(flushScratch_, 1, levels_);
    root_ = node(levels_, 0);
    // Eager per-leaf propagation would have rehashed the full path
    // once per update; the difference is the coalescing win.
    const std::uint64_t ran = interiorRehashes_ - before;
    const std::uint64_t eager = batch * levels_;
    savedInteriorRehashes_ += eager > ran ? eager - ran : 0;
}

void
MerkleTree::flushSubtree(std::uint64_t leaf_index) const
{
    if (dirtyLeaves_.empty())
        return;
    // Partition out the dirty leaves sharing the queried leaf's
    // top-level subtree; the rest stay pending.
    const unsigned top_shift = fanoutShift * (levels_ - 1);
    const std::uint64_t subtree = leaf_index >> top_shift;
    flushScratch_.clear();
    std::size_t keep = 0;
    for (std::uint64_t dirty : dirtyLeaves_) {
        if ((dirty >> top_shift) == subtree)
            flushScratch_.push_back(dirty);
        else
            dirtyLeaves_[keep++] = dirty;
    }
    dirtyLeaves_.resize(keep);
    const std::uint64_t batch = flushScratch_.size();
    const std::uint64_t before = interiorRehashes_;
    if (levels_ >= 2 && !flushScratch_.empty())
        propagate(flushScratch_, 1, levels_ - 1);
    // The stored top node and the root register refresh whenever any
    // dirt was outstanding, exactly as the full flush would have
    // (it always ends at the root). When this subtree contributed
    // nothing the recomputation is idempotent, which also preserves
    // the flush's healing of injected top-node corruption.
    nodes_[levels_][0] = hashChildren(levels_, 0);
    interiorRehashes_ += 1;
    root_ = node(levels_, 0);
    const std::uint64_t ran = interiorRehashes_ - before;
    const std::uint64_t eager = batch * levels_;
    savedInteriorRehashes_ += eager > ran ? eager - ran : 0;
}

Sha1Digest
MerkleTree::recomputeRoot() const
{
    // Works off the eagerly-maintained leaf digests alone, so no
    // flush of pending interior updates is needed.
    // Rebuild bottom-up over only the materialized indices,
    // iterating the stored leaf map in place (no deep copy).
    std::unordered_map<std::uint64_t, Sha1Digest> current;
    const std::unordered_map<std::uint64_t, Sha1Digest> *src =
        &nodes_[0];
    for (unsigned level = 1; level <= levels_; ++level) {
        std::unordered_map<std::uint64_t, Sha1Digest> next;
        next.reserve(src->size() / fanout + 1);
        for (const auto &entry : *src) {
            std::uint64_t parent = entry.first >> fanoutShift;
            if (next.count(parent))
                continue;
            Sha1 hasher;
            for (unsigned c = 0; c < fanout; ++c) {
                auto it = src->find(parent * fanout + c);
                const Sha1Digest &d = it == src->end()
                                          ? defaults_[level - 1]
                                          : it->second;
                hasher.update(d.bytes.data(), d.bytes.size());
            }
            next[parent] = hasher.finish();
        }
        current = std::move(next);
        src = &current;
    }
    auto it = current.find(0);
    return it == current.end() ? defaults_[levels_] : it->second;
}

bool
MerkleTree::verifyLeaf(std::uint64_t leaf_index,
                       const void *leaf_data) const
{
    return verifyLeafPath(leaf_index, leaf_data).ok;
}

MerklePathVerdict
MerkleTree::verifyLeafPath(std::uint64_t leaf_index,
                           const void *leaf_data) const
{
    if (leaf_index >= capacity())
        return MerklePathVerdict{false, 0};
    // Bounded verification: only the queried leaf's subtree (plus
    // the root) needs to be consistent; unrelated dirt stays lazy.
    flushSubtree(leaf_index);
    Sha1Digest leaf = Sha1::hash(leaf_data, leafBytes_);
    if (!(leaf == node(0, leaf_index)))
        return MerklePathVerdict{false, 0};
    // Walk the path to the root, re-deriving each parent; the first
    // stored digest that disagrees with its children names the
    // corrupted level.
    std::uint64_t index = leaf_index;
    for (unsigned level = 1; level <= levels_; ++level) {
        index >>= fanoutShift;
        Sha1Digest derived = hashChildren(level, index);
        if (!(derived == node(level, index)))
            return MerklePathVerdict{false, level};
    }
    if (!(node(levels_, 0) == root_))
        return MerklePathVerdict{false, levels_};
    return MerklePathVerdict{true, 0};
}

void
MerkleTree::corruptNode(unsigned level, std::uint64_t index,
                        unsigned bit)
{
    janus_assert(level <= levels_, "corrupt level %u of %u", level,
                 levels_);
    janus_assert(bit < 8 * sizeof(Sha1Digest::bytes),
                 "digest bit %u out of range", bit);
    flush();
    auto &map = nodes_[level];
    auto it = map.find(index);
    janus_assert(it != map.end(),
                 "cannot corrupt unmaterialized tree node "
                 "(level %u, index %llu)",
                 level, static_cast<unsigned long long>(index));
    it->second.bytes[bit / 8] ^=
        static_cast<std::uint8_t>(1u << (bit % 8));
}

std::size_t
MerkleTree::materializedNodes() const
{
    flush();
    std::size_t total = 0;
    for (const auto &map : nodes_)
        total += map.size();
    return total;
}

void
MerkleTree::setNodeCacheCapacity(std::size_t nodes)
{
    cacheCapacity_ = nodes;
    while (cacheLru_.size() > cacheCapacity_) {
        cachePos_.erase(cacheLru_.back());
        cacheLru_.pop_back();
    }
}

bool
MerkleTree::cacheTouch(std::uint64_t key) const
{
    if (cacheCapacity_ == 0)
        return false;
    auto it = cachePos_.find(key);
    if (it != cachePos_.end()) {
        cacheLru_.splice(cacheLru_.begin(), cacheLru_, it->second);
        return true;
    }
    cacheLru_.push_front(key);
    cachePos_[key] = cacheLru_.begin();
    if (cacheLru_.size() > cacheCapacity_) {
        cachePos_.erase(cacheLru_.back());
        cacheLru_.pop_back();
    }
    return false;
}

MerklePathProbe
MerkleTree::probeUpdatePath(std::uint64_t leaf_index,
                            bool mark_epoch) const
{
    MerklePathProbe probe;
    probe.levels = levels_;
    std::uint64_t index = leaf_index;
    for (unsigned level = 1; level <= levels_; ++level) {
        index >>= fanoutShift;
        const std::uint64_t key = packKey(level, index);
        const bool hit = cacheTouch(key);
        const bool coalesced =
            mark_epoch ? !epochTouched_.insert(key).second
                       : epochTouched_.count(key) != 0;
        if (hit)
            ++cacheHits_;
        else
            ++cacheMisses_;
        if (coalesced)
            ++coalescedPathLevels_;
        probe.kind[level] = coalesced ? MerklePathProbe::Coalesced
                            : hit    ? MerklePathProbe::CacheHit
                                     : MerklePathProbe::CacheMiss;
    }
    return probe;
}

void
MerkleTree::beginEpoch()
{
    epochTouched_.clear();
    ++epochs_;
}

} // namespace janus
