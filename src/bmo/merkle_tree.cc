#include "bmo/merkle_tree.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/logging.hh"

namespace janus
{

MerkleTree::MerkleTree(unsigned levels, unsigned leaf_bytes)
    : levels_(levels), leafBytes_(leaf_bytes), nodes_(levels + 1),
      defaults_(levels + 1)
{
    janus_assert(levels >= 1 && levels <= 21, "bad tree height %u",
                 levels);
    // Default leaf digest: hash of an all-zero entry.
    std::vector<std::uint8_t> zero(leafBytes_, 0);
    defaults_[0] = Sha1::hash(zero.data(), zero.size());
    for (unsigned level = 1; level <= levels_; ++level) {
        Sha1 hasher;
        for (unsigned c = 0; c < fanout; ++c)
            hasher.update(defaults_[level - 1].bytes.data(),
                          defaults_[level - 1].bytes.size());
        defaults_[level] = hasher.finish();
    }
    root_ = defaults_[levels_];
}

const Sha1Digest &
MerkleTree::node(unsigned level, std::uint64_t index) const
{
    const auto &map = nodes_[level];
    auto it = map.find(index);
    return it == map.end() ? defaults_[level] : it->second;
}

Sha1Digest
MerkleTree::hashChildren(unsigned level, std::uint64_t index) const
{
    janus_assert(level >= 1, "leaves have no children");
    // Gather the eight child digests into one buffer: a single
    // SHA-1 pass over 160 contiguous bytes is byte-stream-identical
    // to eight incremental updates.
    std::uint8_t buf[fanout * sizeof(Sha1Digest::bytes)];
    const auto &children = nodes_[level - 1];
    const std::uint64_t base = index * fanout;
    for (unsigned c = 0; c < fanout; ++c) {
        auto it = children.find(base + c);
        const Sha1Digest &child =
            it == children.end() ? defaults_[level - 1] : it->second;
        std::memcpy(buf + sizeof(child.bytes) * c, child.bytes.data(),
                    sizeof(child.bytes));
    }
    return Sha1::hash(buf, sizeof(buf));
}

void
MerkleTree::update(std::uint64_t leaf_index, const void *leaf_data)
{
    janus_assert(leaf_index < capacity(), "leaf index out of range");
    nodes_[0][leaf_index] = Sha1::hash(leaf_data, leafBytes_);
    dirtyLeaves_.push_back(leaf_index);
}

void
MerkleTree::flush() const
{
    if (dirtyLeaves_.empty())
        return;
    // The dirty list becomes the parent frontier: shift to the
    // parent level, coalesce duplicates, rehash each touched
    // interior node exactly once, repeat up to the root.
    flushScratch_.swap(dirtyLeaves_);
    dirtyLeaves_.clear();
    std::vector<std::uint64_t> &frontier = flushScratch_;
    for (unsigned level = 1; level <= levels_; ++level) {
        for (std::uint64_t &index : frontier)
            index >>= fanoutShift;
        std::sort(frontier.begin(), frontier.end());
        frontier.erase(std::unique(frontier.begin(), frontier.end()),
                       frontier.end());
        auto &dst = nodes_[level];
        for (std::uint64_t parent : frontier)
            dst[parent] = hashChildren(level, parent);
    }
    root_ = node(levels_, 0);
}

Sha1Digest
MerkleTree::recomputeRoot() const
{
    flush();
    // Rebuild bottom-up over only the materialized indices,
    // iterating the stored leaf map in place (no deep copy).
    std::unordered_map<std::uint64_t, Sha1Digest> current;
    const std::unordered_map<std::uint64_t, Sha1Digest> *src =
        &nodes_[0];
    for (unsigned level = 1; level <= levels_; ++level) {
        std::unordered_map<std::uint64_t, Sha1Digest> next;
        next.reserve(src->size() / fanout + 1);
        for (const auto &entry : *src) {
            std::uint64_t parent = entry.first >> fanoutShift;
            if (next.count(parent))
                continue;
            Sha1 hasher;
            for (unsigned c = 0; c < fanout; ++c) {
                auto it = src->find(parent * fanout + c);
                const Sha1Digest &d = it == src->end()
                                          ? defaults_[level - 1]
                                          : it->second;
                hasher.update(d.bytes.data(), d.bytes.size());
            }
            next[parent] = hasher.finish();
        }
        current = std::move(next);
        src = &current;
    }
    auto it = current.find(0);
    return it == current.end() ? defaults_[levels_] : it->second;
}

bool
MerkleTree::verifyLeaf(std::uint64_t leaf_index,
                       const void *leaf_data) const
{
    return verifyLeafPath(leaf_index, leaf_data).ok;
}

MerklePathVerdict
MerkleTree::verifyLeafPath(std::uint64_t leaf_index,
                           const void *leaf_data) const
{
    if (leaf_index >= capacity())
        return MerklePathVerdict{false, 0};
    flush();
    Sha1Digest leaf = Sha1::hash(leaf_data, leafBytes_);
    if (!(leaf == node(0, leaf_index)))
        return MerklePathVerdict{false, 0};
    // Walk the path to the root, re-deriving each parent; the first
    // stored digest that disagrees with its children names the
    // corrupted level.
    std::uint64_t index = leaf_index;
    for (unsigned level = 1; level <= levels_; ++level) {
        index >>= fanoutShift;
        Sha1Digest derived = hashChildren(level, index);
        if (!(derived == node(level, index)))
            return MerklePathVerdict{false, level};
    }
    if (!(node(levels_, 0) == root_))
        return MerklePathVerdict{false, levels_};
    return MerklePathVerdict{true, 0};
}

void
MerkleTree::corruptNode(unsigned level, std::uint64_t index,
                        unsigned bit)
{
    janus_assert(level <= levels_, "corrupt level %u of %u", level,
                 levels_);
    janus_assert(bit < 8 * sizeof(Sha1Digest::bytes),
                 "digest bit %u out of range", bit);
    flush();
    auto &map = nodes_[level];
    auto it = map.find(index);
    janus_assert(it != map.end(),
                 "cannot corrupt unmaterialized tree node "
                 "(level %u, index %llu)",
                 level, static_cast<unsigned long long>(index));
    it->second.bytes[bit / 8] ^=
        static_cast<std::uint8_t>(1u << (bit % 8));
}

std::size_t
MerkleTree::materializedNodes() const
{
    flush();
    std::size_t total = 0;
    for (const auto &map : nodes_)
        total += map.size();
    return total;
}

} // namespace janus
