#include "bmo/bmo_engine.hh"

#include <algorithm>

#include "common/logging.hh"

namespace janus
{

Tick
BmoExecState::lastFinish() const
{
    Tick last = 0;
    for (std::size_t i = 0; i < done_.size(); ++i)
        if (done_[i])
            last = std::max(last, finish_[i]);
    return last;
}

BmoEngine::BmoEngine(const BmoGraph &graph, unsigned units)
    : graph_(graph), units_(units), unitState_(units),
      stageBusy_(graph.pipeStages(), 0)
{
    janus_assert(graph.finalized(), "engine needs a finalized graph");
}

Tick
BmoEngine::fitInto(const Unit &unit, Tick start, Tick latency)
{
    Tick begin = start;
    for (const auto &[b, e] : unit.busy) {
        if (begin + latency <= b)
            break; // fits in the gap before this interval
        if (e > begin)
            begin = e;
    }
    return begin;
}

void
BmoEngine::setTracer(Tracer *tracer)
{
    tracer_ = tracer;
    unitTracks_.clear();
    stageTracks_.clear();
    subOpLabels_.clear();
    if (tracer_ == nullptr)
        return;
    unsigned tracks = units_ == 0 ? 1 : units_;
    for (unsigned u = 0; u < tracks; ++u)
        unitTracks_.push_back(
            tracer_->track("bmoUnit" + std::to_string(u)));
    for (int s = 0; s < graph_.pipeStages(); ++s)
        stageTracks_.push_back(
            tracer_->track("treeStage" + std::to_string(s)));
    for (SubOpId id = 0; id < graph_.size(); ++id)
        subOpLabels_.push_back(tracer_->label(graph_.subOp(id).name));
}

Tick
BmoEngine::claimUnit(Tick start, Tick latency, unsigned *unit_out)
{
    busyTicks_ += latency;
    *unit_out = 0;
    if (units_ == 0)
        return start; // unlimited units

    Unit *best_unit = nullptr;
    Tick best_begin = maxTick;
    for (unsigned u = 0; u < units_; ++u) {
        Unit &unit = unitState_[u];
        Tick begin = fitInto(unit, start, latency);
        if (begin < best_begin) {
            best_begin = begin;
            best_unit = &unit;
            *unit_out = u;
        }
    }
    janus_assert(best_unit != nullptr, "no units");

    // Insert the reservation, keeping intervals sorted; drop
    // intervals that ended before the current query horizon (all
    // future queries have ready times at or near `start`).
    auto &busy = best_unit->busy;
    std::erase_if(busy, [start](const std::pair<Tick, Tick> &iv) {
        return iv.second + 100 * ticks::us < start;
    });
    auto pos = std::lower_bound(
        busy.begin(), busy.end(),
        std::make_pair(best_begin, best_begin + latency));
    busy.insert(pos, {best_begin, best_begin + latency});
    return best_begin;
}

Tick
BmoEngine::execute(BmoExecState &state, ExternalInput available,
                   Tick ready, BmoExecMode mode,
                   const std::vector<Tick> *latency_override,
                   ExecProvenance *prov)
{
    auto node_latency = [&](SubOpId id) {
        Tick latency = graph_.subOp(id).latency;
        if (latency_override && (*latency_override)[id] != maxTick)
            latency = (*latency_override)[id];
        return latency;
    };

    // Collect the newly runnable nodes in topological order.
    std::vector<SubOpId> runnable;
    for (SubOpId id : graph_.topoOrder()) {
        if (state.done(id))
            continue;
        if (!hasInput(available, graph_.required(id)))
            continue;
        runnable.push_back(id);
    }
    if (runnable.empty())
        return ready;

    // A unit is one BMO processing pipeline (Figure 7d): it hosts
    // one request at a time; within it, each sub-operation has its
    // own logic, so independent sub-ops overlap in Parallel mode
    // while Serialized mode chains them monolithically. Pipelined
    // (per-tree-level) nodes bypass the pool in Parallel mode: they
    // run on their own stage unit, so the pool reservation covers
    // only the non-pipelined portion of the request.
    auto pipelined = [&](SubOpId id) {
        return mode == BmoExecMode::Parallel &&
               graph_.subOp(id).pipeStage >= 0;
    };

    // Pass 1: dependency-only schedule anchored at `ready` to learn
    // the occupancy this request needs.
    Tick duration = 0;
    bool any_pool = false;
    if (mode == BmoExecMode::Serialized) {
        for (SubOpId id : runnable)
            duration += node_latency(id);
        any_pool = true;
    } else {
        std::vector<Tick> tmp(graph_.size(), 0);
        Tick end = ready;
        for (SubOpId id : runnable) {
            if (pipelined(id))
                continue;
            any_pool = true;
            Tick start = ready;
            for (SubOpId p : graph_.preds(id)) {
                Tick pf = state.done(p) ? state.finish(p) : tmp[p];
                start = std::max(start, pf);
            }
            tmp[id] = start + node_latency(id);
            end = std::max(end, tmp[id]);
        }
        duration = end - ready;
    }

    unsigned unit = 0;
    Tick begin = ready;
    if (any_pool)
        begin = claimUnit(ready, duration, &unit);

    // Pass 2: real schedule anchored at the unit grant.
    Tick last = begin;
    if (mode == BmoExecMode::Serialized) {
        Tick cursor = begin;
        bool first = true;
        for (SubOpId id : runnable) {
            Tick pred_max = 0;
            for (SubOpId p : graph_.preds(id))
                if (state.done(p))
                    pred_max = std::max(pred_max, state.finish(p));
            Tick start = std::max(cursor, pred_max);
            Tick latency = node_latency(id);
            cursor = start + latency;
            state.complete(id, cursor);
            ++subOpsExecuted_;
            if (prov != nullptr) {
                // Only the chain head can be unit-bound; later nodes
                // chain off the previous finish, which is recorded.
                Tick unbound =
                    first ? std::max(ready, pred_max) : start;
                prov->nodes.push_back(
                    {id, start, cursor, unbound,
                     start > unbound ? ExecBusy::Unit
                                     : ExecBusy::None});
            }
            first = false;
            JANUS_TRACE_SPAN(tracer_, unitTracks_[unit],
                             subOpLabels_[id], start, cursor);
        }
        return cursor;
    }
    for (SubOpId id : runnable) {
        const bool piped = pipelined(id);
        Tick start = piped ? ready : begin;
        Tick unbound = ready;
        for (SubOpId p : graph_.preds(id)) {
            janus_assert(state.done(p), "pred %s of %s not complete",
                         graph_.subOp(p).name.c_str(),
                         graph_.subOp(id).name.c_str());
            start = std::max(start, state.finish(p));
            unbound = std::max(unbound, state.finish(p));
        }
        const Tick latency = node_latency(id);
        ExecBusy busy = ExecBusy::None;
        if (piped) {
            // One update in flight per tree level; back-to-back
            // writes stream through the levels like pipeline stages.
            const int stage = graph_.subOp(id).pipeStage;
            unbound = start;
            if (stageBusy_[stage] > start)
                busy = ExecBusy::Stage;
            start = std::max(start, stageBusy_[stage]);
            stageBusy_[stage] = start + latency;
            ++pipelinedSubOps_;
            pipeBusyTicks_ += latency;
        } else if (start > unbound) {
            busy = ExecBusy::Unit; // the pool grant set the start
        }
        Tick finish = start + latency;
        state.complete(id, finish);
        ++subOpsExecuted_;
        last = std::max(last, finish);
        if (prov != nullptr)
            prov->nodes.push_back({id, start, finish, unbound, busy});
        JANUS_TRACE_SPAN(
            tracer_,
            piped ? stageTracks_[graph_.subOp(id).pipeStage]
                  : unitTracks_[unit],
            subOpLabels_[id], start, finish);
    }
    return last;
}

} // namespace janus
