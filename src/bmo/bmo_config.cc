#include "bmo/bmo_config.hh"

#include "common/logging.hh"

namespace janus
{

BmoGraph
buildStandardGraph(const BmoConfig &config)
{
    BmoGraph graph;

    SubOpId e1 = 0, e2 = 0, e3 = 0, e4 = 0;
    SubOpId d1 = 0, d2 = 0;
    SubOpId c1 = 0;

    if (config.compression) {
        c1 = graph.addSubOp("C1", BmoKind::Compression,
                            config.compressLatency, ExternalInput::Data);
    }

    if (config.wearLeveling) {
        // W1 is address-dependent and independent of every other
        // BMO: the Start-Gap translation needs only the address.
        graph.addSubOp("W1", BmoKind::Other, config.wearLevelLatency,
                       ExternalInput::Addr);
    }

    if (config.encryption) {
        e1 = graph.addSubOp("E1", BmoKind::Encryption,
                            config.counterBumpLatency,
                            ExternalInput::Addr);
        e2 = graph.addSubOp("E2", BmoKind::Encryption, config.aesLatency);
        e3 = graph.addSubOp("E3", BmoKind::Encryption, config.xorLatency,
                            ExternalInput::Data);
        graph.addEdge(e1, e2);
        graph.addEdge(e2, e3);
        if (config.integrity) {
            e4 = graph.addSubOp("E4", BmoKind::Encryption,
                                config.macLatency);
            graph.addEdge(e3, e4);
        }
        if (config.compression)
            graph.addEdge(c1, e3);
    }

    if (config.deduplication) {
        d1 = graph.addSubOp("D1", BmoKind::Deduplication,
                            config.dedupHashLatency(),
                            ExternalInput::Data);
        d2 = graph.addSubOp("D2", BmoKind::Deduplication,
                            config.dedupLookupLatency);
        SubOpId d3 = graph.addSubOp("D3", BmoKind::Deduplication,
                                    config.remapUpdateLatency,
                                    ExternalInput::Addr);
        SubOpId d4 = graph.addSubOp("D4", BmoKind::Deduplication,
                                    config.metaEncryptLatency);
        graph.addEdge(d1, d2);
        graph.addEdge(d2, d3);
        graph.addEdge(d3, d4);
        if (config.encryption) {
            // Duplicates are cancelled before encrypting the data,
            // and the remap entry co-locates with the counter.
            graph.addEdge(d2, e3);
            graph.addEdge(e1, d4);
        }
    }

    if (config.integrity) {
        janus_assert(config.merkleLevels >= 1, "need at least one level");
        SubOpId prev = 0;
        for (unsigned level = 1; level <= config.merkleLevels; ++level) {
            SubOpId node = graph.addSubOp(
                "I" + std::to_string(level), BmoKind::Integrity,
                config.merkleHashLatency,
                // With neither encryption nor dedup enabled the tree
                // hashes the raw line, making I1 data-dependent.
                (level == 1 && !config.encryption &&
                 !config.deduplication)
                    ? ExternalInput::Data
                    : ExternalInput::None,
                // Streamlined: each tree level is its own pipelined
                // update unit, so outstanding writes overlap level
                // updates instead of serializing on the unit pool.
                config.streamlinedIntegrity
                    ? static_cast<int>(level) - 1
                    : -1);
            if (level == 1) {
                if (config.encryption)
                    graph.addEdge(e1, node);
                if (config.deduplication)
                    graph.addEdge(d2, node);
            } else {
                graph.addEdge(prev, node);
            }
            prev = node;
        }
    }

    graph.finalize();
    return graph;
}

} // namespace janus
