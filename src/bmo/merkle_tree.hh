/**
 * @file
 * Sparse Bonsai Merkle tree (Rogers et al. [76], as configured in the
 * paper): a fixed-height SHA-1 hash tree over the per-line metadata
 * entries (co-located counter / dedup remap, DeWrite-style). The
 * root lives in a secure non-volatile register. The tree is sparse:
 * untouched subtrees use precomputed default digests, so covering a
 * 4 GB device (height 9, fanout 8) costs only what is written.
 *
 * Interior maintenance is lazy and batched: update() installs the
 * leaf digest immediately but only records the leaf in a dirty set;
 * the path-to-root rehashing is coalesced and performed on the next
 * observation (root(), verifyLeaf(), recomputeRoot(),
 * materializedNodes()). A burst of k updates under one subtree costs
 * one rehash per touched interior node instead of k, and observable
 * state is bit-identical to eager per-update propagation because
 * each interior digest is a pure function of the leaves below it.
 * Like the rest of the simulator state, a tree instance is not
 * meant to be shared across threads (the lazy flush mutates under
 * const observers).
 */

#ifndef JANUS_BMO_MERKLE_TREE_HH
#define JANUS_BMO_MERKLE_TREE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "crypto/sha1.hh"

namespace janus
{

/**
 * Outcome of a path-attributed leaf verification. When verification
 * fails, @ref failLevel names the lowest inconsistent tree level:
 * 0 = the leaf content disagrees with its stored digest, 1..levels-1
 * = an interior node disagrees with the hash of its children,
 * levels = the stored top node disagrees with the secure root
 * register. The fault subsystem asserts injected corruption is both
 * detected and attributed to the level it was injected at.
 */
struct MerklePathVerdict
{
    bool ok = true;
    unsigned failLevel = 0;
};

/** Fixed-height sparse Merkle tree with fanout 8. */
class MerkleTree
{
  public:
    static constexpr unsigned fanout = 8;
    static constexpr unsigned fanoutShift = 3;

    /**
     * @param levels      number of hashing levels above the leaves
     *                    (level `levels` holds the single root)
     * @param leaf_bytes  size of each serialized leaf entry
     */
    explicit MerkleTree(unsigned levels, unsigned leaf_bytes = 16);

    /**
     * Install/overwrite a leaf. Interior hashing is deferred; the
     * next observation sees exactly the state eager propagation
     * would have produced.
     */
    void update(std::uint64_t leaf_index, const void *leaf_data);

    /** The current root digest (the secure NV register's content). */
    const Sha1Digest &root() const
    {
        flush();
        return root_;
    }

    /**
     * Recompute the root from all materialized leaves from scratch.
     * Used to audit incremental maintenance and to detect tampering.
     */
    Sha1Digest recomputeRoot() const;

    /**
     * @return true iff the leaf's stored hash matches the given
     * content and its path to the root is consistent.
     */
    bool verifyLeaf(std::uint64_t leaf_index, const void *leaf_data) const;

    /**
     * verifyLeaf with failure attribution: which level of the path
     * first disagrees (see MerklePathVerdict).
     */
    MerklePathVerdict verifyLeafPath(std::uint64_t leaf_index,
                                     const void *leaf_data) const;

    /**
     * Fault injection: XOR one bit of the stored digest of a
     * materialized node at (level, index). Level 0 corrupts a leaf
     * digest; interior levels corrupt the tree's internal nodes.
     * Flipping the same bit twice restores the original digest, so
     * injection campaigns are self-healing. Panics if the node is
     * not materialized (untouched subtrees share default digests).
     */
    void corruptNode(unsigned level, std::uint64_t index,
                     unsigned bit);

    unsigned levels() const { return levels_; }
    std::size_t materializedNodes() const;

    /** Max leaf index + 1 representable by this height. */
    std::uint64_t capacity() const
    {
        return std::uint64_t(1) << (fanoutShift * levels_);
    }

    /** Pending leaf updates not yet propagated (for tests/stats). */
    std::size_t pendingUpdates() const { return dirtyLeaves_.size(); }

  private:
    /** Digest of a node from its eight children at level - 1. */
    Sha1Digest hashChildren(unsigned level, std::uint64_t index) const;

    /** Stored digest of (level, index), or the level default. */
    const Sha1Digest &node(unsigned level, std::uint64_t index) const;

    /** Propagate all dirty leaves to the root, coalescing parents. */
    void flush() const;

    unsigned levels_;
    unsigned leafBytes_;
    /** levels_ + 1 maps: [0] leaf hashes ... [levels_] the root.
     *  Interior levels are mutated by the lazy flush. */
    mutable std::vector<std::unordered_map<std::uint64_t, Sha1Digest>>
        nodes_;
    /** Default digest per level for untouched subtrees. */
    std::vector<Sha1Digest> defaults_;
    mutable Sha1Digest root_;
    /** Leaf indices updated since the last flush (may repeat). */
    mutable std::vector<std::uint64_t> dirtyLeaves_;
    /** Scratch for flush(): parent index frontier per level. */
    mutable std::vector<std::uint64_t> flushScratch_;
};

} // namespace janus

#endif // JANUS_BMO_MERKLE_TREE_HH
