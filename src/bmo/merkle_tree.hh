/**
 * @file
 * Sparse Bonsai Merkle tree (Rogers et al. [76], as configured in the
 * paper): a fixed-height SHA-1 hash tree over the per-line metadata
 * entries (co-located counter / dedup remap, DeWrite-style). The
 * root lives in a secure non-volatile register. The tree is sparse:
 * untouched subtrees use precomputed default digests, so covering a
 * 4 GB device (height 9, fanout 8) costs only what is written.
 *
 * Interior maintenance is lazy and batched: update() installs the
 * leaf digest immediately but only records the leaf in a dirty set;
 * the path-to-root rehashing is coalesced and performed on the next
 * observation (root(), verifyLeaf(), recomputeRoot(),
 * materializedNodes()). A burst of k updates under one subtree costs
 * one rehash per touched interior node instead of k, and observable
 * state is bit-identical to eager per-update propagation because
 * each interior digest is a pure function of the leaves below it.
 * Like the rest of the simulator state, a tree instance is not
 * meant to be shared across threads (the lazy flush mutates under
 * const observers).
 *
 * The streamlined engine (Freij et al.) adds a timing-side view of
 * the same tree: a bounded LRU cache of hot tree nodes and a
 * per-persist-epoch touched set. probeUpdatePath() classifies each
 * level of a write's root path as coalesced (an update to that node
 * is already pending in the current epoch), cache hit or cache miss;
 * the memory controller turns the classification into per-level
 * latencies. Probes never touch functional tree state, so timing
 * configuration cannot perturb the golden roots.
 */

#ifndef JANUS_BMO_MERKLE_TREE_HH
#define JANUS_BMO_MERKLE_TREE_HH

#include <array>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "crypto/sha1.hh"

namespace janus
{

/**
 * Outcome of a path-attributed leaf verification. When verification
 * fails, @ref failLevel names the lowest inconsistent tree level:
 * 0 = the leaf content disagrees with its stored digest, 1..levels-1
 * = an interior node disagrees with the hash of its children,
 * levels = the stored top node disagrees with the secure root
 * register. The fault subsystem asserts injected corruption is both
 * detected and attributed to the level it was injected at.
 */
struct MerklePathVerdict
{
    bool ok = true;
    unsigned failLevel = 0;
};

/**
 * Timing classification of one write's root path, per tree level
 * (kind[1..levels] valid). Coalesced dominates hit/miss: a node
 * whose update folds into a pending same-epoch update costs only
 * the coalesce latency regardless of cache residency.
 */
struct MerklePathProbe
{
    enum Kind : std::uint8_t
    {
        CacheHit = 0,
        CacheMiss = 1,
        Coalesced = 2,
    };

    unsigned levels = 0;
    std::array<std::uint8_t, 22> kind{};
};

/** Fixed-height sparse Merkle tree with fanout 8. */
class MerkleTree
{
  public:
    static constexpr unsigned fanout = 8;
    static constexpr unsigned fanoutShift = 3;

    /**
     * @param levels      number of hashing levels above the leaves
     *                    (level `levels` holds the single root)
     * @param leaf_bytes  size of each serialized leaf entry
     */
    explicit MerkleTree(unsigned levels, unsigned leaf_bytes = 16);

    /**
     * Install/overwrite a leaf. Interior hashing is deferred; the
     * next observation sees exactly the state eager propagation
     * would have produced.
     */
    void update(std::uint64_t leaf_index, const void *leaf_data);

    /** The current root digest (the secure NV register's content). */
    const Sha1Digest &root() const
    {
        flush();
        return root_;
    }

    /**
     * Recompute the root from all materialized leaves from scratch.
     * Used to audit incremental maintenance and to detect tampering.
     */
    Sha1Digest recomputeRoot() const;

    /**
     * @return true iff the leaf's stored hash matches the given
     * content and its path to the root is consistent.
     */
    bool verifyLeaf(std::uint64_t leaf_index, const void *leaf_data) const;

    /**
     * verifyLeaf with failure attribution: which level of the path
     * first disagrees (see MerklePathVerdict).
     */
    MerklePathVerdict verifyLeafPath(std::uint64_t leaf_index,
                                     const void *leaf_data) const;

    /**
     * Fault injection: XOR one bit of the stored digest of a
     * materialized node at (level, index). Level 0 corrupts a leaf
     * digest; interior levels corrupt the tree's internal nodes.
     * Flipping the same bit twice restores the original digest, so
     * injection campaigns are self-healing. Panics if the node is
     * not materialized (untouched subtrees share default digests).
     */
    void corruptNode(unsigned level, std::uint64_t index,
                     unsigned bit);

    unsigned levels() const { return levels_; }
    std::size_t materializedNodes() const;

    /** Max leaf index + 1 representable by this height. */
    std::uint64_t capacity() const
    {
        return std::uint64_t(1) << (fanoutShift * levels_);
    }

    /** Pending leaf updates not yet propagated (for tests/stats). */
    std::size_t pendingUpdates() const { return dirtyLeaves_.size(); }

    // ---- Streamlined-engine timing side (never touches digests) ----

    /**
     * Bound the tree-node metadata cache. 0 disables caching (every
     * probe level is a miss). Shrinking evicts LRU entries.
     */
    void setNodeCacheCapacity(std::size_t nodes);

    /**
     * Classify each level of the root path for a pending update to
     * @p leaf_index: coalesced into an update already issued this
     * epoch, found in the node cache, or a miss. Updates the LRU
     * cache, the counters and — when @p mark_epoch — the epoch
     * touched-set; leaves all functional state (digests, dirty
     * list) untouched. Pre-execution probes pass mark_epoch =
     * false: their results land in the IRB, not the tree's write
     * queue, so nothing is pending for later writes to fold into.
     */
    MerklePathProbe probeUpdatePath(std::uint64_t leaf_index,
                                    bool mark_epoch = true) const;

    /** Close the current persist epoch: later updates no longer
     *  coalesce with nodes touched before this point. */
    void beginEpoch();

    std::size_t cacheCapacity() const { return cacheCapacity_; }
    std::size_t cacheResident() const { return cacheLru_.size(); }
    std::uint64_t cacheHits() const { return cacheHits_; }
    std::uint64_t cacheMisses() const { return cacheMisses_; }
    double cacheHitRate() const
    {
        std::uint64_t total = cacheHits_ + cacheMisses_;
        return total ? double(cacheHits_) / double(total) : 0.0;
    }
    /** Path levels whose update folded into a same-epoch one. */
    std::uint64_t coalescedPathLevels() const
    {
        return coalescedPathLevels_;
    }
    std::uint64_t epochs() const { return epochs_; }
    /** Interior rehashes the lazy/bounded flushes actually ran. */
    std::uint64_t interiorRehashes() const { return interiorRehashes_; }
    /** Rehashes eager per-leaf propagation would have run on top. */
    std::uint64_t savedInteriorRehashes() const
    {
        return savedInteriorRehashes_;
    }

  private:
    /** Digest of a node from its eight children at level - 1. */
    Sha1Digest hashChildren(unsigned level, std::uint64_t index) const;

    /** Stored digest of (level, index), or the level default. */
    const Sha1Digest &node(unsigned level, std::uint64_t index) const;

    /** Propagate all dirty leaves to the root, coalescing parents. */
    void flush() const;

    /**
     * Bounded flush for a single verification: propagate only the
     * dirty leaves under @p leaf_index's top-level subtree, then
     * refresh the stored top node and the root register (iff any
     * dirt existed), exactly as a full flush would have. Dirt in
     * other subtrees stays pending.
     */
    void flushSubtree(std::uint64_t leaf_index) const;

    /** Rehash a parent frontier from @p from_level upward (levels
     *  [from_level, to_level]), counting interior rehashes. */
    void propagate(std::vector<std::uint64_t> &frontier,
                   unsigned from_level, unsigned to_level) const;

    /** One key per (level, index) node; levels_ <= 21 so the level
     *  fits in the low 5 bits under a 59-bit index. */
    static std::uint64_t packKey(unsigned level, std::uint64_t index)
    {
        return (index << 5) | level;
    }

    /** LRU-touch the node key; @return true on a cache hit. */
    bool cacheTouch(std::uint64_t key) const;

    unsigned levels_;
    unsigned leafBytes_;
    /** levels_ + 1 maps: [0] leaf hashes ... [levels_] the root.
     *  Interior levels are mutated by the lazy flush. */
    mutable std::vector<std::unordered_map<std::uint64_t, Sha1Digest>>
        nodes_;
    /** Default digest per level for untouched subtrees. */
    std::vector<Sha1Digest> defaults_;
    mutable Sha1Digest root_;
    /** Leaf indices updated since the last flush (may repeat). */
    mutable std::vector<std::uint64_t> dirtyLeaves_;
    /** Scratch for flush(): parent index frontier per level. */
    mutable std::vector<std::uint64_t> flushScratch_;

    // Timing-side state: bounded LRU node cache (front = MRU) and
    // the set of nodes with an update pending this persist epoch.
    std::size_t cacheCapacity_ = 0;
    mutable std::list<std::uint64_t> cacheLru_;
    mutable std::unordered_map<std::uint64_t,
                               std::list<std::uint64_t>::iterator>
        cachePos_;
    mutable std::unordered_set<std::uint64_t> epochTouched_;
    mutable std::uint64_t cacheHits_ = 0;
    mutable std::uint64_t cacheMisses_ = 0;
    mutable std::uint64_t coalescedPathLevels_ = 0;
    mutable std::uint64_t epochs_ = 0;
    mutable std::uint64_t interiorRehashes_ = 0;
    mutable std::uint64_t savedInteriorRehashes_ = 0;
};

} // namespace janus

#endif // JANUS_BMO_MERKLE_TREE_HH
