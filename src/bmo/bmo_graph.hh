/**
 * @file
 * The backend-memory-operation (BMO) dependency graph: the paper's
 * central abstraction (Section 3.1, Figures 2 and 6). Each BMO is
 * decomposed into sub-operations; intra-/inter-operation edges order
 * sub-operations, and *external* edges from the write's address and
 * data determine which sub-operations can be pre-executed once only
 * the address and/or only the data is known.
 *
 * The graph is data, not code: BMOs register nodes and edges, and the
 * engine schedules any graph, so adding a new BMO (compression,
 * wear-leveling, ...) is pure registration.
 */

#ifndef JANUS_BMO_BMO_GRAPH_HH
#define JANUS_BMO_BMO_GRAPH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace janus
{

/** Which BMO a sub-operation belongs to (for reporting). */
enum class BmoKind : std::uint8_t
{
    Encryption,
    Deduplication,
    Integrity,
    Compression, ///< extension BMO (Section 6 / ablation bench)
    Other,
};

/** External inputs of a write access (paper Section 3.1). */
enum class ExternalInput : std::uint8_t
{
    None = 0,
    Addr = 1,
    Data = 2,
    Both = 3,
};

/** Bitwise helpers over ExternalInput. */
constexpr ExternalInput
operator|(ExternalInput a, ExternalInput b)
{
    return static_cast<ExternalInput>(static_cast<std::uint8_t>(a) |
                                      static_cast<std::uint8_t>(b));
}

constexpr bool
hasInput(ExternalInput set, ExternalInput in)
{
    return (static_cast<std::uint8_t>(set) &
            static_cast<std::uint8_t>(in)) ==
           static_cast<std::uint8_t>(in);
}

/** A sub-operation node. */
struct SubOp
{
    std::string name;       ///< e.g. "E2"
    BmoKind kind;
    Tick latency;           ///< occupancy of one BMO unit
    /** Direct external-dependency edges (yellow edges in Fig. 2). */
    ExternalInput direct;
    /**
     * Pipeline stage for the streamlined integrity engine, or -1
     * for ordinary unit-pool nodes. Nodes with a stage run on a
     * dedicated per-tree-level update unit: successive writes
     * overlap across levels (write B hashes level k while write A
     * hashes level k+1) instead of queueing on the shared pool.
     */
    int pipeStage = -1;
};

/** Index of a sub-operation within its graph. */
using SubOpId = std::uint16_t;

/**
 * An immutable DAG of sub-operations. Built once per system
 * configuration; per-write execution state lives elsewhere.
 */
class BmoGraph
{
  public:
    /** Add a node; @return its id. */
    SubOpId addSubOp(std::string name, BmoKind kind, Tick latency,
                     ExternalInput direct = ExternalInput::None,
                     int pipe_stage = -1);

    /** Number of pipeline stages (max pipeStage + 1; 0 if none). */
    int pipeStages() const { return pipeStages_; }

    /** Add a dependency edge from -> to (from must finish first). */
    void addEdge(SubOpId from, SubOpId to);

    /**
     * Validate (acyclic, ids in range) and precompute the
     * topological order and per-node transitive external
     * dependencies (the paper's merge rule: a node needs input In iff
     * a path In ~> node exists).
     */
    void finalize();

    bool finalized() const { return finalized_; }
    std::size_t size() const { return subOps_.size(); }
    const SubOp &subOp(SubOpId id) const { return subOps_.at(id); }
    const std::vector<SubOpId> &preds(SubOpId id) const
    {
        return preds_.at(id);
    }
    const std::vector<SubOpId> &topoOrder() const { return topo_; }

    /**
     * The external inputs a node transitively requires; a node may
     * only execute (pre-execute) once all of them are known.
     */
    ExternalInput required(SubOpId id) const { return required_.at(id); }

    /** Find a node id by name (panics if absent). */
    SubOpId idOf(const std::string &name) const;

    /** @return true if a node with this name exists. */
    bool hasSubOp(const std::string &name) const;

    /**
     * The node plus all its transitive successors: everything whose
     * result is stale once the node's output is invalidated.
     */
    std::vector<SubOpId> dependentsOf(SubOpId id) const;

    /** Sum of all latencies: the serialized cost (Fig. 1b). */
    Tick serializedLatency() const;

    /**
     * Makespan with unlimited units and all inputs available at t=0:
     * the DAG critical path (best case for parallelization only).
     */
    Tick criticalPath() const;

    /** Human-readable dump (nodes, edges, categories). */
    std::string toString() const;

  private:
    std::vector<SubOp> subOps_;
    std::vector<std::vector<SubOpId>> preds_;
    std::vector<SubOpId> topo_;
    std::vector<ExternalInput> required_;
    int pipeStages_ = 0;
    bool finalized_ = false;
};

} // namespace janus

#endif // JANUS_BMO_BMO_GRAPH_HH
