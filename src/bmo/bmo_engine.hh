/**
 * @file
 * The BMO processing engine: schedules sub-operation DAG instances
 * onto a shared pool of BMO units (Table 3: 4 units per core,
 * shared). One engine instance is shared by the whole memory
 * controller, so concurrent writes and pre-execution requests
 * contend for units — the effect behind the paper's Figures 13/14.
 */

#ifndef JANUS_BMO_BMO_ENGINE_HH
#define JANUS_BMO_BMO_ENGINE_HH

#include <cstdint>
#include <vector>

#include "bmo/bmo_graph.hh"
#include "common/types.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"

namespace janus
{

/** How the engine orders a request's sub-operations. */
enum class BmoExecMode : std::uint8_t
{
    /** One sub-op at a time, in topological order (baseline). */
    Serialized,
    /** Independent sub-ops run concurrently (Janus parallelization). */
    Parallel,
};

/**
 * Per-write execution state of a graph instance: which nodes have
 * completed and when. Pre-execution fills this in incrementally; the
 * arriving write completes whatever remains.
 */
class BmoExecState
{
  public:
    explicit BmoExecState(const BmoGraph &graph)
        : done_(graph.size(), false), finish_(graph.size(), 0)
    {}

    bool done(SubOpId id) const { return done_[id]; }
    Tick finish(SubOpId id) const { return finish_[id]; }

    void
    complete(SubOpId id, Tick at)
    {
        if (!done_[id]) {
            done_[id] = true;
            ++completed_;
        }
        finish_[id] = at;
    }

    /** Forget a completed node (stale-input invalidation). */
    void
    invalidate(SubOpId id)
    {
        if (done_[id]) {
            done_[id] = false;
            --completed_;
        }
        finish_[id] = 0;
    }

    /**
     * @return true if every node of the graph has completed.
     * O(1): tracked incrementally (this sits on the per-write hot
     * path of the Janus frontend).
     */
    bool allDone() const { return completed_ == done_.size(); }

    /** Latest finish tick among completed nodes. */
    Tick lastFinish() const;

    /** Number of completed nodes. O(1), tracked incrementally. */
    unsigned
    completedCount() const
    {
        return static_cast<unsigned>(completed_);
    }

  private:
    std::vector<char> done_;
    std::vector<Tick> finish_;
    std::size_t completed_ = 0;
};

/** What bounded a scheduled node's start time beyond its data
 *  dependencies (critical-path provenance). */
enum class ExecBusy : std::uint8_t
{
    None, ///< data dependencies / ready time set the start
    Unit, ///< shared BMO unit pool was occupied
    Stage, ///< pipelined tree-level stage unit was occupied
};

/** Completion-time provenance of one scheduled sub-operation. */
struct ExecProvRecord
{
    SubOpId id;
    Tick start;   ///< actual start tick
    Tick finish;  ///< actual finish tick
    /** What start would have been with idle units: max(ready, data
     *  dependencies). Equals start when busy == None. */
    Tick unbound;
    ExecBusy busy;
};

/**
 * Per-execute() recording of node schedules, filled when a caller
 * passes one to BmoEngine::execute. A pure observer: recording never
 * changes a computed tick. The memory controller walks these records
 * backwards (matching finish times) to attribute every interval of a
 * persist's critical path; see sim/critpath.hh.
 */
struct ExecProvenance
{
    std::vector<ExecProvRecord> nodes;

    void clear() { nodes.clear(); }
};

/**
 * The shared unit pool + list scheduler. Queries must be issued in
 * nondecreasing ready-time order (guaranteed by the event queue).
 */
class BmoEngine
{
  public:
    /**
     * @param graph  the system's BMO graph
     * @param units  number of shared BMO units; 0 means unlimited
     */
    BmoEngine(const BmoGraph &graph, unsigned units);

    /**
     * Execute every not-yet-done node whose transitive external
     * requirements are covered by @p available, respecting
     * dependencies and unit occupancy.
     *
     * @param state      per-write execution state (updated)
     * @param available  which external inputs are known
     * @param ready      earliest tick any new node may start
     * @param mode       serialized or parallel ordering
     * @param latency_override  optional per-node latency vector
     *        (e.g., E1 costs more on a counter-cache miss); nodes
     *        with maxTick entries use the graph default
     * @param prov  optional provenance sink; every node scheduled by
     *        this call is appended (never cleared here)
     * @return latest finish tick among nodes runnable now (or
     *         @p ready if nothing new was runnable)
     */
    Tick execute(BmoExecState &state, ExternalInput available,
                 Tick ready, BmoExecMode mode,
                 const std::vector<Tick> *latency_override = nullptr,
                 ExecProvenance *prov = nullptr);

    const BmoGraph &graph() const { return graph_; }
    unsigned units() const { return units_; }

    std::uint64_t subOpsExecuted() const { return subOpsExecuted_; }
    Tick busyTicks() const { return busyTicks_; }

    /** Sub-ops run on pipelined per-tree-level units (Parallel
     *  mode only; Serialized keeps the monolithic baseline). */
    std::uint64_t pipelinedSubOps() const { return pipelinedSubOps_; }
    Tick pipeBusyTicks() const { return pipeBusyTicks_; }

    /** Attach a trace sink (null detaches). Interns one track per
     *  BMO unit and one label per sub-op name. */
    void setTracer(Tracer *tracer);

  private:
    /** A unit's reserved busy intervals (future ones only). */
    struct Unit
    {
        std::vector<std::pair<Tick, Tick>> busy; ///< sorted [b, e)
    };

    /**
     * Reserve the earliest [begin, begin+latency) with begin >= start
     * on any unit (gap backfilling). @return begin; the chosen unit
     * index goes to @p unit_out (0 when units are unlimited).
     */
    Tick claimUnit(Tick start, Tick latency, unsigned *unit_out);

    /** Earliest begin >= start where the unit has a free gap. */
    static Tick fitInto(const Unit &unit, Tick start, Tick latency);

    const BmoGraph &graph_;
    unsigned units_;
    std::vector<Unit> unitState_;
    std::uint64_t subOpsExecuted_ = 0;
    Tick busyTicks_ = 0;

    /**
     * Busy horizon of each pipelined tree-level update unit
     * (streamlined integrity engine). A pipelined node bypasses the
     * shared unit pool: it starts at max(deps, its stage horizon),
     * so outstanding writes overlap across tree levels while updates
     * to the same level stay serialized.
     */
    std::vector<Tick> stageBusy_;
    std::uint64_t pipelinedSubOps_ = 0;
    Tick pipeBusyTicks_ = 0;

    Tracer *tracer_ = nullptr;
    std::vector<TraceId> unitTracks_;
    std::vector<TraceId> stageTracks_;
    std::vector<TraceId> subOpLabels_;
};

} // namespace janus

#endif // JANUS_BMO_BMO_ENGINE_HH
