/**
 * @file
 * Configuration of the backend memory operations and construction of
 * the standard three-BMO dependency graph evaluated in the paper
 * (Figure 6: counter-mode encryption E1-E4, deduplication D1-D4 and
 * Bonsai-Merkle-tree integrity verification I1..I_h).
 */

#ifndef JANUS_BMO_BMO_CONFIG_HH
#define JANUS_BMO_BMO_CONFIG_HH

#include "bmo/bmo_graph.hh"
#include "common/types.hh"

namespace janus
{

/** Deduplication fingerprint algorithm (paper Figure 12). */
enum class DedupHash : std::uint8_t
{
    Md5,
    Crc32,
};

/** Which BMOs are integrated and their sub-operation latencies. */
struct BmoConfig
{
    bool encryption = true;
    bool deduplication = true;
    bool integrity = true;
    /** Extension BMO (not in the paper's default system). */
    bool compression = false;
    /** Extension BMO: Start-Gap wear leveling (Table 1, ~1 ns). */
    bool wearLeveling = false;

    DedupHash dedupHash = DedupHash::Md5;

    /** Merkle-tree height: 9 levels for 4 GB NVM (Table 1/§4.2). */
    unsigned merkleLevels = 9;

    // Streamlined integrity-tree engine (Freij et al.): tree-node
    // metadata cache, persist-epoch update coalescing and pipelined
    // per-level update units.
    /** Master switch; off falls back to serialized I-chain walks. */
    bool streamlinedIntegrity = true;
    /** Tree-node metadata cache capacity (nodes); 0 disables. */
    unsigned merkleCacheNodes = 256;
    /** Writes per persist epoch for update coalescing; 1 disables
     *  coalescing (every write opens a fresh epoch). */
    unsigned merkleEpochWrites = 64;
    /**
     * Extra latency to fetch a tree node absent from the cache.
     * Defaults to 0: the baseline I-chain latency already folds the
     * node fetch under the hash (keeping cold-write latency
     * bit-compatible with the non-streamlined model); ablations
     * raise it to expose cache-size sensitivity.
     */
    Tick merkleNodeMissLatency = 0;
    /** Cost of folding an update into a pending same-epoch one. */
    Tick merkleCoalesceLatency = 2 * ticks::ns;

    // Sub-operation latencies (Table 1 / Table 3).
    Tick counterBumpLatency = 2 * ticks::ns;    ///< E1, counter-cache hit
    Tick counterMissLatency = 63 * ticks::ns;   ///< E1 on a cache miss
    Tick aesLatency = 40 * ticks::ns;           ///< E2 (AES-128)
    Tick xorLatency = 1 * ticks::ns;            ///< E3
    Tick macLatency = 40 * ticks::ns;           ///< E4 (SHA-1)
    Tick md5Latency = 321 * ticks::ns;          ///< D1 with MD5
    Tick crc32Latency = 80 * ticks::ns;         ///< D1 with CRC-32
    Tick dedupLookupLatency = 10 * ticks::ns;   ///< D2
    Tick remapUpdateLatency = 5 * ticks::ns;    ///< D3
    Tick metaEncryptLatency = 40 * ticks::ns;   ///< D4
    Tick merkleHashLatency = 40 * ticks::ns;    ///< per-level SHA-1
    Tick compressLatency = 20 * ticks::ns;      ///< C1 (BDI-style)
    Tick wearLevelLatency = 1 * ticks::ns;      ///< W1 (Start-Gap)
    /** Writes between Start-Gap movements. */
    unsigned gapWriteInterval = 100;

    /** D1 latency under the configured fingerprint. */
    Tick
    dedupHashLatency() const
    {
        return dedupHash == DedupHash::Md5 ? md5Latency : crc32Latency;
    }
};

/**
 * Build the write-path dependency graph for the enabled BMOs:
 *
 *   E1 -> E2 -> E3 -> E4        (counter, OTP, XOR, MAC)
 *   D1 -> D2 -> D3 -> D4        (hash, lookup, remap, meta writeback)
 *   I1 -> I2 -> ... -> I_h      (Merkle levels, leaf to root)
 *   D2 -> E3   (duplicate writes are cancelled before encryption)
 *   E1 -> D4   (remap co-locates with the counter, DeWrite-style)
 *   E1 -> I1, D2 -> I1  (tree protects latest counter / remap)
 *   [compression] C1 -> E3, C1 -> D1 is NOT added: compression runs
 *   on raw data, so C1 gains only a data dependence and feeds E3.
 *
 * External inputs: E1 <- Addr; D1 <- Data; E3 <- Data; D3 <- Addr;
 * C1 <- Data.
 */
BmoGraph buildStandardGraph(const BmoConfig &config);

} // namespace janus

#endif // JANUS_BMO_BMO_CONFIG_HH
