/**
 * @file
 * From-scratch SHA-1 (FIPS-180) used by the integrity-verification
 * BMO for Merkle-tree nodes and per-line MACs, matching the paper's
 * configuration (SHA-1 at 40 ns per hash unit).
 */

#ifndef JANUS_CRYPTO_SHA1_HH
#define JANUS_CRYPTO_SHA1_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace janus
{

/** A 160-bit SHA-1 digest. */
struct Sha1Digest
{
    std::array<std::uint8_t, 20> bytes{};

    bool operator==(const Sha1Digest &o) const { return bytes == o.bytes; }

    /** First 8 bytes as a little-endian word (for table keys). */
    std::uint64_t prefix64() const;

    /** Lowercase hex string. */
    std::string toHex() const;
};

/** Incremental SHA-1 hasher. */
class Sha1
{
  public:
    Sha1();

    /** Absorb size bytes. */
    void update(const void *data, std::size_t size);

    /** Finalize and return the digest. The hasher must not be reused. */
    Sha1Digest finish();

    /** One-shot convenience. */
    static Sha1Digest hash(const void *data, std::size_t size);

  private:
    void processBlock(const std::uint8_t *block);

    std::uint32_t h_[5];
    std::uint64_t totalBytes_;
    std::uint8_t buffer_[64];
    std::size_t bufferLen_;
};

} // namespace janus

#endif // JANUS_CRYPTO_SHA1_HH
