/**
 * @file
 * From-scratch MD5 (RFC 1321), the deduplication fingerprint used by
 * the paper's default configuration (321 ns per line hash).
 */

#ifndef JANUS_CRYPTO_MD5_HH
#define JANUS_CRYPTO_MD5_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace janus
{

/** A 128-bit MD5 digest. */
struct Md5Digest
{
    std::array<std::uint8_t, 16> bytes{};

    bool operator==(const Md5Digest &o) const { return bytes == o.bytes; }

    /** First 8 bytes as a little-endian word (for table keys). */
    std::uint64_t prefix64() const;

    /** Lowercase hex string. */
    std::string toHex() const;
};

/** Incremental MD5 hasher. */
class Md5
{
  public:
    Md5();

    /** Absorb size bytes. */
    void update(const void *data, std::size_t size);

    /** Finalize and return the digest. The hasher must not be reused. */
    Md5Digest finish();

    /** One-shot convenience. */
    static Md5Digest hash(const void *data, std::size_t size);

  private:
    void processBlock(const std::uint8_t *block);

    std::uint32_t state_[4];
    std::uint64_t totalBytes_;
    std::uint8_t buffer_[64];
    std::size_t bufferLen_;
};

} // namespace janus

#endif // JANUS_CRYPTO_MD5_HH
