#include "crypto/crc32.hh"

#include <array>

namespace janus
{

namespace
{

std::array<std::uint32_t, 256>
makeTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

const std::array<std::uint32_t, 256> table = makeTable();

} // namespace

std::uint32_t
crc32Update(std::uint32_t crc, const void *data, std::size_t size)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    crc = ~crc;
    for (std::size_t i = 0; i < size; ++i)
        crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
    return ~crc;
}

std::uint32_t
crc32(const void *data, std::size_t size)
{
    return crc32Update(0, data, size);
}

} // namespace janus
