#include "crypto/aes128.hh"

#include <cstring>

namespace janus
{

namespace
{

const std::uint8_t sbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5,
    0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc,
    0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a,
    0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b,
    0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85,
    0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17,
    0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88,
    0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9,
    0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6,
    0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94,
    0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68,
    0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
};

const std::uint8_t rsbox[256] = {
    0x52, 0x09, 0x6a, 0xd5, 0x30, 0x36, 0xa5, 0x38,
    0xbf, 0x40, 0xa3, 0x9e, 0x81, 0xf3, 0xd7, 0xfb,
    0x7c, 0xe3, 0x39, 0x82, 0x9b, 0x2f, 0xff, 0x87,
    0x34, 0x8e, 0x43, 0x44, 0xc4, 0xde, 0xe9, 0xcb,
    0x54, 0x7b, 0x94, 0x32, 0xa6, 0xc2, 0x23, 0x3d,
    0xee, 0x4c, 0x95, 0x0b, 0x42, 0xfa, 0xc3, 0x4e,
    0x08, 0x2e, 0xa1, 0x66, 0x28, 0xd9, 0x24, 0xb2,
    0x76, 0x5b, 0xa2, 0x49, 0x6d, 0x8b, 0xd1, 0x25,
    0x72, 0xf8, 0xf6, 0x64, 0x86, 0x68, 0x98, 0x16,
    0xd4, 0xa4, 0x5c, 0xcc, 0x5d, 0x65, 0xb6, 0x92,
    0x6c, 0x70, 0x48, 0x50, 0xfd, 0xed, 0xb9, 0xda,
    0x5e, 0x15, 0x46, 0x57, 0xa7, 0x8d, 0x9d, 0x84,
    0x90, 0xd8, 0xab, 0x00, 0x8c, 0xbc, 0xd3, 0x0a,
    0xf7, 0xe4, 0x58, 0x05, 0xb8, 0xb3, 0x45, 0x06,
    0xd0, 0x2c, 0x1e, 0x8f, 0xca, 0x3f, 0x0f, 0x02,
    0xc1, 0xaf, 0xbd, 0x03, 0x01, 0x13, 0x8a, 0x6b,
    0x3a, 0x91, 0x11, 0x41, 0x4f, 0x67, 0xdc, 0xea,
    0x97, 0xf2, 0xcf, 0xce, 0xf0, 0xb4, 0xe6, 0x73,
    0x96, 0xac, 0x74, 0x22, 0xe7, 0xad, 0x35, 0x85,
    0xe2, 0xf9, 0x37, 0xe8, 0x1c, 0x75, 0xdf, 0x6e,
    0x47, 0xf1, 0x1a, 0x71, 0x1d, 0x29, 0xc5, 0x89,
    0x6f, 0xb7, 0x62, 0x0e, 0xaa, 0x18, 0xbe, 0x1b,
    0xfc, 0x56, 0x3e, 0x4b, 0xc6, 0xd2, 0x79, 0x20,
    0x9a, 0xdb, 0xc0, 0xfe, 0x78, 0xcd, 0x5a, 0xf4,
    0x1f, 0xdd, 0xa8, 0x33, 0x88, 0x07, 0xc7, 0x31,
    0xb1, 0x12, 0x10, 0x59, 0x27, 0x80, 0xec, 0x5f,
    0x60, 0x51, 0x7f, 0xa9, 0x19, 0xb5, 0x4a, 0x0d,
    0x2d, 0xe5, 0x7a, 0x9f, 0x93, 0xc9, 0x9c, 0xef,
    0xa0, 0xe0, 0x3b, 0x4d, 0xae, 0x2a, 0xf5, 0xb0,
    0xc8, 0xeb, 0xbb, 0x3c, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2b, 0x04, 0x7e, 0xba, 0x77, 0xd6, 0x26,
    0xe1, 0x69, 0x14, 0x63, 0x55, 0x21, 0x0c, 0x7d,
};

const std::uint8_t rcon[11] = {
    0x00, 0x01, 0x02, 0x04, 0x08, 0x10,
    0x20, 0x40, 0x80, 0x1b, 0x36,
};

/** Multiply in GF(2^8) modulo x^8 + x^4 + x^3 + x + 1. */
std::uint8_t
gmul(std::uint8_t a, std::uint8_t b)
{
    std::uint8_t p = 0;
    for (int i = 0; i < 8; ++i) {
        if (b & 1)
            p ^= a;
        bool hi = a & 0x80;
        a <<= 1;
        if (hi)
            a ^= 0x1b;
        b >>= 1;
    }
    return p;
}

std::uint32_t
rotr8(std::uint32_t w)
{
    return (w >> 8) | (w << 24);
}

/**
 * The standard 32-bit T-tables, generated once at startup from the
 * S-boxes above so the FIPS-197 vectors keep pinning the whole
 * pipeline. Te0[x] packs SubBytes + MixColumns for one input byte:
 * {02,01,01,03}·S[x] as a big-endian column word; Te1..Te3 are byte
 * rotations of Te0 (one per MixColumns matrix column). Td0..Td3 do
 * the same for InvSubBytes + InvMixColumns with {0e,09,0d,0b}.
 */
struct TTables
{
    std::uint32_t Te0[256], Te1[256], Te2[256], Te3[256];
    std::uint32_t Td0[256], Td1[256], Td2[256], Td3[256];

    TTables()
    {
        for (unsigned i = 0; i < 256; ++i) {
            std::uint8_t s = sbox[i];
            std::uint32_t e =
                (std::uint32_t(gmul(s, 2)) << 24) |
                (std::uint32_t(s) << 16) | (std::uint32_t(s) << 8) |
                gmul(s, 3);
            Te0[i] = e;
            Te1[i] = rotr8(e);
            Te2[i] = rotr8(Te1[i]);
            Te3[i] = rotr8(Te2[i]);

            std::uint8_t r = rsbox[i];
            std::uint32_t d =
                (std::uint32_t(gmul(r, 14)) << 24) |
                (std::uint32_t(gmul(r, 9)) << 16) |
                (std::uint32_t(gmul(r, 13)) << 8) | gmul(r, 11);
            Td0[i] = d;
            Td1[i] = rotr8(d);
            Td2[i] = rotr8(Td1[i]);
            Td3[i] = rotr8(Td2[i]);
        }
    }
};

const TTables &
tables()
{
    static const TTables t;
    return t;
}

std::uint32_t
be32(const std::uint8_t *p)
{
    return (std::uint32_t(p[0]) << 24) | (std::uint32_t(p[1]) << 16) |
           (std::uint32_t(p[2]) << 8) | p[3];
}

void
putBe32(std::uint8_t *p, std::uint32_t v)
{
    p[0] = static_cast<std::uint8_t>(v >> 24);
    p[1] = static_cast<std::uint8_t>(v >> 16);
    p[2] = static_cast<std::uint8_t>(v >> 8);
    p[3] = static_cast<std::uint8_t>(v);
}

/** InvMixColumns of one big-endian column word (key transform). */
std::uint32_t
invMixColumnsWord(std::uint32_t w)
{
    std::uint8_t a0 = static_cast<std::uint8_t>(w >> 24);
    std::uint8_t a1 = static_cast<std::uint8_t>(w >> 16);
    std::uint8_t a2 = static_cast<std::uint8_t>(w >> 8);
    std::uint8_t a3 = static_cast<std::uint8_t>(w);
    std::uint8_t b0 = gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^
                      gmul(a3, 9);
    std::uint8_t b1 = gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^
                      gmul(a3, 13);
    std::uint8_t b2 = gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^
                      gmul(a3, 11);
    std::uint8_t b3 = gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^
                      gmul(a3, 14);
    return (std::uint32_t(b0) << 24) | (std::uint32_t(b1) << 16) |
           (std::uint32_t(b2) << 8) | b3;
}

} // namespace

Aes128::Aes128(const Key &key)
{
    // Key expansion (FIPS-197 section 5.2), byte-wise as in the
    // reference implementation, then packed into column words.
    std::uint8_t roundKeys[176];
    std::memcpy(roundKeys, key.data(), 16);
    for (unsigned i = 4; i < 44; ++i) {
        std::uint8_t temp[4];
        std::memcpy(temp, roundKeys + 4 * (i - 1), 4);
        if (i % 4 == 0) {
            // RotWord + SubWord + Rcon.
            std::uint8_t t0 = temp[0];
            temp[0] = static_cast<std::uint8_t>(sbox[temp[1]] ^
                                                rcon[i / 4]);
            temp[1] = sbox[temp[2]];
            temp[2] = sbox[temp[3]];
            temp[3] = sbox[t0];
        }
        for (unsigned j = 0; j < 4; ++j) {
            roundKeys[4 * i + j] = static_cast<std::uint8_t>(
                roundKeys[4 * (i - 4) + j] ^ temp[j]);
        }
    }
    for (unsigned i = 0; i < 44; ++i)
        encKeys_[i] = be32(roundKeys + 4 * i);

    // Equivalent-inverse-cipher schedule: reverse the round order
    // and push InvMixColumns into the keys of rounds 1..9.
    for (unsigned round = 0; round <= 10; ++round)
        for (unsigned j = 0; j < 4; ++j) {
            std::uint32_t w = encKeys_[4 * (10 - round) + j];
            decKeys_[4 * round + j] =
                (round == 0 || round == 10) ? w : invMixColumnsWord(w);
        }
}

Aes128::Block
Aes128::encryptBlock(const Block &in) const
{
    const TTables &T = tables();
    const std::uint32_t *rk = encKeys_.data();

    // State as four big-endian column words: byte (row r, col c) of
    // the column-major state st[4c + r] is bits [31-8r..24-8r] of sc.
    std::uint32_t s0 = be32(in.data()) ^ rk[0];
    std::uint32_t s1 = be32(in.data() + 4) ^ rk[1];
    std::uint32_t s2 = be32(in.data() + 8) ^ rk[2];
    std::uint32_t s3 = be32(in.data() + 12) ^ rk[3];

    // Nine full rounds: each output column pulls its four bytes from
    // the ShiftRows-rotated columns; the tables fold in SubBytes and
    // MixColumns.
    for (unsigned round = 1; round < 10; ++round) {
        rk += 4;
        std::uint32_t t0 = T.Te0[s0 >> 24] ^
                           T.Te1[(s1 >> 16) & 0xff] ^
                           T.Te2[(s2 >> 8) & 0xff] ^
                           T.Te3[s3 & 0xff] ^ rk[0];
        std::uint32_t t1 = T.Te0[s1 >> 24] ^
                           T.Te1[(s2 >> 16) & 0xff] ^
                           T.Te2[(s3 >> 8) & 0xff] ^
                           T.Te3[s0 & 0xff] ^ rk[1];
        std::uint32_t t2 = T.Te0[s2 >> 24] ^
                           T.Te1[(s3 >> 16) & 0xff] ^
                           T.Te2[(s0 >> 8) & 0xff] ^
                           T.Te3[s1 & 0xff] ^ rk[2];
        std::uint32_t t3 = T.Te0[s3 >> 24] ^
                           T.Te1[(s0 >> 16) & 0xff] ^
                           T.Te2[(s1 >> 8) & 0xff] ^
                           T.Te3[s2 & 0xff] ^ rk[3];
        s0 = t0;
        s1 = t1;
        s2 = t2;
        s3 = t3;
    }

    // Final round: SubBytes + ShiftRows only.
    rk += 4;
    auto final_word = [&](std::uint32_t a, std::uint32_t b,
                          std::uint32_t c, std::uint32_t d,
                          std::uint32_t k) {
        return (std::uint32_t(sbox[a >> 24]) << 24 |
                std::uint32_t(sbox[(b >> 16) & 0xff]) << 16 |
                std::uint32_t(sbox[(c >> 8) & 0xff]) << 8 |
                sbox[d & 0xff]) ^
               k;
    };
    Block out;
    putBe32(out.data(), final_word(s0, s1, s2, s3, rk[0]));
    putBe32(out.data() + 4, final_word(s1, s2, s3, s0, rk[1]));
    putBe32(out.data() + 8, final_word(s2, s3, s0, s1, rk[2]));
    putBe32(out.data() + 12, final_word(s3, s0, s1, s2, rk[3]));
    return out;
}

Aes128::Block
Aes128::decryptBlock(const Block &in) const
{
    // Equivalent inverse cipher (FIPS-197 section 5.3.5) over the
    // InvMixColumns-transformed schedule; InvShiftRows rotates the
    // column picks the other way relative to encryption.
    const TTables &T = tables();
    const std::uint32_t *rk = decKeys_.data();

    std::uint32_t s0 = be32(in.data()) ^ rk[0];
    std::uint32_t s1 = be32(in.data() + 4) ^ rk[1];
    std::uint32_t s2 = be32(in.data() + 8) ^ rk[2];
    std::uint32_t s3 = be32(in.data() + 12) ^ rk[3];

    for (unsigned round = 1; round < 10; ++round) {
        rk += 4;
        std::uint32_t t0 = T.Td0[s0 >> 24] ^
                           T.Td1[(s3 >> 16) & 0xff] ^
                           T.Td2[(s2 >> 8) & 0xff] ^
                           T.Td3[s1 & 0xff] ^ rk[0];
        std::uint32_t t1 = T.Td0[s1 >> 24] ^
                           T.Td1[(s0 >> 16) & 0xff] ^
                           T.Td2[(s3 >> 8) & 0xff] ^
                           T.Td3[s2 & 0xff] ^ rk[1];
        std::uint32_t t2 = T.Td0[s2 >> 24] ^
                           T.Td1[(s1 >> 16) & 0xff] ^
                           T.Td2[(s0 >> 8) & 0xff] ^
                           T.Td3[s3 & 0xff] ^ rk[2];
        std::uint32_t t3 = T.Td0[s3 >> 24] ^
                           T.Td1[(s2 >> 16) & 0xff] ^
                           T.Td2[(s1 >> 8) & 0xff] ^
                           T.Td3[s0 & 0xff] ^ rk[3];
        s0 = t0;
        s1 = t1;
        s2 = t2;
        s3 = t3;
    }

    rk += 4;
    auto final_word = [&](std::uint32_t a, std::uint32_t b,
                          std::uint32_t c, std::uint32_t d,
                          std::uint32_t k) {
        return (std::uint32_t(rsbox[a >> 24]) << 24 |
                std::uint32_t(rsbox[(b >> 16) & 0xff]) << 16 |
                std::uint32_t(rsbox[(c >> 8) & 0xff]) << 8 |
                rsbox[d & 0xff]) ^
               k;
    };
    Block out;
    putBe32(out.data(), final_word(s0, s3, s2, s1, rk[0]));
    putBe32(out.data() + 4, final_word(s1, s0, s3, s2, rk[1]));
    putBe32(out.data() + 8, final_word(s2, s1, s0, s3, rk[2]));
    putBe32(out.data() + 12, final_word(s3, s2, s1, s0, rk[3]));
    return out;
}

CacheLine
Aes128::otp(std::uint64_t counter, Addr line_addr) const
{
    CacheLine pad;
    for (unsigned blk = 0; blk < lineBytes / 16; ++blk) {
        Block in{};
        std::memcpy(in.data(), &counter, 8);
        std::uint64_t tweak = line_addr | (std::uint64_t(blk) << 58);
        std::memcpy(in.data() + 8, &tweak, 8);
        Block out = encryptBlock(in);
        pad.write(16 * blk, out.data(), 16);
    }
    return pad;
}

} // namespace janus
