/**
 * @file
 * Table-driven CRC-32 (IEEE 802.3 polynomial), the lightweight
 * deduplication fingerprint alternative evaluated in the paper's
 * Figure 12 (roughly 4x cheaper than MD5).
 */

#ifndef JANUS_CRYPTO_CRC32_HH
#define JANUS_CRYPTO_CRC32_HH

#include <cstddef>
#include <cstdint>

namespace janus
{

/** One-shot CRC-32 over a buffer (init/final xor 0xFFFFFFFF). */
std::uint32_t crc32(const void *data, std::size_t size);

/** Incremental form: feed the previous return value back in. */
std::uint32_t crc32Update(std::uint32_t crc, const void *data,
                          std::size_t size);

} // namespace janus

#endif // JANUS_CRYPTO_CRC32_HH
