#include "crypto/sha1.hh"

#include <cstring>

namespace janus
{

namespace
{

std::uint32_t
rotl32(std::uint32_t x, int k)
{
    return (x << k) | (x >> (32 - k));
}

} // namespace

std::uint64_t
Sha1Digest::prefix64() const
{
    std::uint64_t v;
    std::memcpy(&v, bytes.data(), 8);
    return v;
}

std::string
Sha1Digest::toHex() const
{
    static const char digits[] = "0123456789abcdef";
    std::string s;
    s.reserve(40);
    for (std::uint8_t b : bytes) {
        s.push_back(digits[b >> 4]);
        s.push_back(digits[b & 0xF]);
    }
    return s;
}

Sha1::Sha1() : totalBytes_(0), bufferLen_(0)
{
    h_[0] = 0x67452301;
    h_[1] = 0xEFCDAB89;
    h_[2] = 0x98BADCFE;
    h_[3] = 0x10325476;
    h_[4] = 0xC3D2E1F0;
}

void
Sha1::update(const void *data, std::size_t size)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    totalBytes_ += size;
    while (size > 0) {
        std::size_t take = std::min<std::size_t>(size, 64 - bufferLen_);
        std::memcpy(buffer_ + bufferLen_, p, take);
        bufferLen_ += take;
        p += take;
        size -= take;
        if (bufferLen_ == 64) {
            processBlock(buffer_);
            bufferLen_ = 0;
        }
    }
}

Sha1Digest
Sha1::finish()
{
    std::uint64_t bit_len = totalBytes_ * 8;
    std::uint8_t pad = 0x80;
    update(&pad, 1);
    std::uint8_t zero = 0;
    while (bufferLen_ != 56)
        update(&zero, 1);
    std::uint8_t len_be[8];
    for (int i = 0; i < 8; ++i)
        len_be[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
    // Bypass totalBytes_ accounting for the length field itself.
    std::memcpy(buffer_ + bufferLen_, len_be, 8);
    processBlock(buffer_);
    bufferLen_ = 0;

    Sha1Digest digest;
    for (int i = 0; i < 5; ++i)
        for (int j = 0; j < 4; ++j)
            digest.bytes[4 * i + j] =
                static_cast<std::uint8_t>(h_[i] >> (24 - 8 * j));
    return digest;
}

Sha1Digest
Sha1::hash(const void *data, std::size_t size)
{
    Sha1 hasher;
    hasher.update(data, size);
    return hasher.finish();
}

void
Sha1::processBlock(const std::uint8_t *block)
{
    std::uint32_t w[80];
    for (int i = 0; i < 16; ++i) {
        w[i] = (std::uint32_t(block[4 * i]) << 24) |
               (std::uint32_t(block[4 * i + 1]) << 16) |
               (std::uint32_t(block[4 * i + 2]) << 8) |
               std::uint32_t(block[4 * i + 3]);
    }
    for (int i = 16; i < 80; ++i)
        w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);

    std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
    for (int i = 0; i < 80; ++i) {
        std::uint32_t f, k;
        if (i < 20) {
            f = (b & c) | (~b & d);
            k = 0x5A827999;
        } else if (i < 40) {
            f = b ^ c ^ d;
            k = 0x6ED9EBA1;
        } else if (i < 60) {
            f = (b & c) | (b & d) | (c & d);
            k = 0x8F1BBCDC;
        } else {
            f = b ^ c ^ d;
            k = 0xCA62C1D6;
        }
        std::uint32_t temp = rotl32(a, 5) + f + e + k + w[i];
        e = d;
        d = c;
        c = rotl32(b, 30);
        b = a;
        a = temp;
    }
    h_[0] += a;
    h_[1] += b;
    h_[2] += c;
    h_[3] += d;
    h_[4] += e;
}

} // namespace janus
