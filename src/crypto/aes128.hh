/**
 * @file
 * From-scratch AES-128 block cipher (FIPS-197) plus the counter-mode
 * one-time-pad (OTP) generation used by the encryption BMO. The
 * memory controller encrypts a cache line by XORing it with
 * OTP = AES_k(counter ‖ line address ‖ block index), one 16-byte AES
 * block per line quarter.
 */

#ifndef JANUS_CRYPTO_AES128_HH
#define JANUS_CRYPTO_AES128_HH

#include <array>
#include <cstdint>

#include "common/cacheline.hh"
#include "common/types.hh"

namespace janus
{

/** AES-128 with a precomputed key schedule. */
class Aes128
{
  public:
    using Block = std::array<std::uint8_t, 16>;
    using Key = std::array<std::uint8_t, 16>;

    /** Expand the given 128-bit key. */
    explicit Aes128(const Key &key);

    /** Encrypt one 16-byte block. */
    Block encryptBlock(const Block &in) const;

    /** Decrypt one 16-byte block. */
    Block decryptBlock(const Block &in) const;

    /**
     * Generate the 64-byte counter-mode one-time pad for a cache
     * line: four AES blocks over (counter, lineAddr, blockIdx).
     */
    CacheLine otp(std::uint64_t counter, Addr line_addr) const;

  private:
    /**
     * 11 round keys as big-endian 32-bit column words, the layout
     * the T-table rounds consume directly.
     */
    std::array<std::uint32_t, 44> encKeys_;
    /**
     * Decryption schedule for the equivalent inverse cipher
     * (FIPS-197 section 5.3.5): encryption keys in reverse round
     * order with InvMixColumns applied to rounds 1..9.
     */
    std::array<std::uint32_t, 44> decKeys_;
};

} // namespace janus

#endif // JANUS_CRYPTO_AES128_HH
