/**
 * @file
 * CacheLine: the 64-byte value type every backend memory operation
 * (encryption, hashing, deduplication) works on. The functional
 * memory stores real bytes so that BMO behaviour (duplicate
 * detection, OTP round-trips, Merkle hashes) is computed from real
 * data rather than synthesized flags.
 */

#ifndef JANUS_COMMON_CACHELINE_HH
#define JANUS_COMMON_CACHELINE_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <string>

#include "common/types.hh"

namespace janus
{

/** A 64-byte cache line value. */
class CacheLine
{
  public:
    /** Zero-filled line. */
    CacheLine() { bytes_.fill(0); }

    /** Line with every byte set to the given value. */
    static CacheLine filled(std::uint8_t value);

    /** Line whose eight 64-bit words are derived from a seed. */
    static CacheLine fromSeed(std::uint64_t seed);

    /** Raw byte access. */
    const std::uint8_t *data() const { return bytes_.data(); }
    /** Raw byte access. */
    std::uint8_t *data() { return bytes_.data(); }

    /** Number of bytes in a line. */
    static constexpr unsigned size() { return lineBytes; }

    /** Read a little-endian 64-bit word at byte offset (aligned). */
    std::uint64_t word(unsigned offset) const;

    /** Write a little-endian 64-bit word at byte offset (aligned). */
    void setWord(unsigned offset, std::uint64_t value);

    /** Copy size bytes in at offset. */
    void write(unsigned offset, const void *src, unsigned size);

    /** Copy size bytes out from offset. */
    void read(unsigned offset, void *dst, unsigned size) const;

    /** XOR with another line (used by counter-mode encryption). */
    CacheLine &operator^=(const CacheLine &other);

    bool operator==(const CacheLine &other) const
    {
        return bytes_ == other.bytes_;
    }

    /** Hex dump (for debugging and golden tests). */
    std::string toHex() const;

  private:
    std::array<std::uint8_t, lineBytes> bytes_;
};

} // namespace janus

#endif // JANUS_COMMON_CACHELINE_HH
