#include "common/cacheline.hh"

#include "common/logging.hh"

namespace janus
{

CacheLine
CacheLine::filled(std::uint8_t value)
{
    CacheLine line;
    line.bytes_.fill(value);
    return line;
}

CacheLine
CacheLine::fromSeed(std::uint64_t seed)
{
    CacheLine line;
    std::uint64_t x = seed;
    for (unsigned off = 0; off < lineBytes; off += 8) {
        // splitmix64 step; cheap and well mixed.
        x += 0x9E3779B97F4A7C15ull;
        std::uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        line.setWord(off, z ^ (z >> 31));
    }
    return line;
}

std::uint64_t
CacheLine::word(unsigned offset) const
{
    janus_assert(offset % 8 == 0 && offset + 8 <= lineBytes,
                 "bad word offset %u", offset);
    std::uint64_t v;
    std::memcpy(&v, bytes_.data() + offset, 8);
    return v;
}

void
CacheLine::setWord(unsigned offset, std::uint64_t value)
{
    janus_assert(offset % 8 == 0 && offset + 8 <= lineBytes,
                 "bad word offset %u", offset);
    std::memcpy(bytes_.data() + offset, &value, 8);
}

void
CacheLine::write(unsigned offset, const void *src, unsigned size)
{
    janus_assert(offset + size <= lineBytes,
                 "line write overflow: off %u size %u", offset, size);
    std::memcpy(bytes_.data() + offset, src, size);
}

void
CacheLine::read(unsigned offset, void *dst, unsigned size) const
{
    janus_assert(offset + size <= lineBytes,
                 "line read overflow: off %u size %u", offset, size);
    std::memcpy(dst, bytes_.data() + offset, size);
}

CacheLine &
CacheLine::operator^=(const CacheLine &other)
{
    for (unsigned i = 0; i < lineBytes; ++i)
        bytes_[i] ^= other.bytes_[i];
    return *this;
}

std::string
CacheLine::toHex() const
{
    static const char digits[] = "0123456789abcdef";
    std::string s;
    s.reserve(2 * lineBytes);
    for (std::uint8_t b : bytes_) {
        s.push_back(digits[b >> 4]);
        s.push_back(digits[b & 0xF]);
    }
    return s;
}

} // namespace janus
