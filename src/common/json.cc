#include "common/json.hh"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace janus
{

namespace
{

/** Cursor over the input text with offset-carrying errors. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    JsonValue
    document()
    {
        JsonValue value = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after document");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw JsonError(what, pos_);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p)
            if (pos_ >= text_.size() || text_[pos_++] != *p)
                fail(std::string("bad literal (expected ") + word +
                     ")");
    }

    JsonValue
    parseValue()
    {
        skipWs();
        switch (peek()) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return JsonValue::makeString(parseString());
          case 't':
            literal("true");
            return JsonValue::makeBool(true);
          case 'f':
            literal("false");
            return JsonValue::makeBool(false);
          case 'n':
            literal("null");
            return JsonValue::makeNull();
          default:
            return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        std::vector<std::pair<std::string, JsonValue>> members;
        skipWs();
        if (consume('}'))
            return JsonValue::makeObject(std::move(members));
        while (true) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            members.emplace_back(std::move(key), parseValue());
            skipWs();
            if (consume(','))
                continue;
            expect('}');
            return JsonValue::makeObject(std::move(members));
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        std::vector<JsonValue> items;
        skipWs();
        if (consume(']'))
            return JsonValue::makeArray(std::move(items));
        while (true) {
            items.push_back(parseValue());
            skipWs();
            if (consume(','))
                continue;
            expect(']');
            return JsonValue::makeArray(std::move(items));
        }
    }

    unsigned
    hex4()
    {
        unsigned value = 0;
        for (int i = 0; i < 4; ++i) {
            char c = peek();
            ++pos_;
            value <<= 4;
            if (c >= '0' && c <= '9')
                value |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                value |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                value |= static_cast<unsigned>(c - 'A' + 10);
            else
                fail("bad \\u escape");
        }
        return value;
    }

    static void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            char esc = peek();
            ++pos_;
            switch (esc) {
              case '"':
              case '\\':
              case '/':
                out += esc;
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                  unsigned cp = hex4();
                  if (cp >= 0xD800 && cp <= 0xDBFF) {
                      // Surrogate pair.
                      if (!consume('\\') || !consume('u'))
                          fail("unpaired surrogate");
                      unsigned lo = hex4();
                      if (lo < 0xDC00 || lo > 0xDFFF)
                          fail("bad low surrogate");
                      cp = 0x10000 + ((cp - 0xD800) << 10) +
                           (lo - 0xDC00);
                  }
                  appendUtf8(out, cp);
                  break;
              }
              default:
                fail("bad escape");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        std::size_t start = pos_;
        if (consume('-')) {
        }
        if (pos_ >= text_.size() ||
            !(text_[pos_] >= '0' && text_[pos_] <= '9'))
            fail("bad number");
        while (pos_ < text_.size() &&
               ((text_[pos_] >= '0' && text_[pos_] <= '9') ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        const std::string token = text_.substr(start, pos_ - start);
        char *end = nullptr;
        double value = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0')
            fail("bad number '" + token + "'");
        return JsonValue::makeNumber(value);
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

bool
JsonValue::asBool() const
{
    if (kind_ != Kind::Bool)
        throw JsonError("not a bool", 0);
    return bool_;
}

double
JsonValue::asNumber() const
{
    if (kind_ != Kind::Number)
        throw JsonError("not a number", 0);
    return number_;
}

const std::string &
JsonValue::asString() const
{
    if (kind_ != Kind::String)
        throw JsonError("not a string", 0);
    return string_;
}

const std::vector<JsonValue> &
JsonValue::asArray() const
{
    if (kind_ != Kind::Array)
        throw JsonError("not an array", 0);
    return array_;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    if (kind_ != Kind::Object)
        throw JsonError("not an object", 0);
    return object_;
}

bool
JsonValue::has(const std::string &key) const
{
    return get(key) != nullptr;
}

const JsonValue &
JsonValue::operator[](const std::string &key) const
{
    const JsonValue *value = get(key);
    if (value == nullptr)
        throw JsonError("missing member '" + key + "'", 0);
    return *value;
}

const JsonValue *
JsonValue::get(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[name, value] : object_)
        if (name == key)
            return &value;
    return nullptr;
}

const JsonValue &
JsonValue::at(std::size_t index) const
{
    const std::vector<JsonValue> &items = asArray();
    if (index >= items.size())
        throw JsonError("array index " + std::to_string(index) +
                            " out of range",
                        0);
    return items[index];
}

JsonValue
JsonValue::makeBool(bool b)
{
    JsonValue v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
}

JsonValue
JsonValue::makeNumber(double n)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.number_ = n;
    return v;
}

JsonValue
JsonValue::makeString(std::string s)
{
    JsonValue v;
    v.kind_ = Kind::String;
    v.string_ = std::move(s);
    return v;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> items)
{
    JsonValue v;
    v.kind_ = Kind::Array;
    v.array_ = std::move(items);
    return v;
}

JsonValue
JsonValue::makeObject(
    std::vector<std::pair<std::string, JsonValue>> members)
{
    JsonValue v;
    v.kind_ = Kind::Object;
    v.object_ = std::move(members);
    return v;
}

JsonValue
parseJson(const std::string &text)
{
    return Parser(text).document();
}

JsonValue
parseJsonFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw JsonError("cannot open " + path, 0);
    std::ostringstream buf;
    buf << in.rdbuf();
    return parseJson(buf.str());
}

} // namespace janus
