/**
 * @file
 * Minimal recursive-descent JSON reader. The repo emits several
 * machine-readable JSON artifacts (BENCH_*.json, METRICS_*.json,
 * TRACE_*.json, stats dumps); this parser lets in-tree tools consume
 * them back — perf_diff compares bench reports, tests validate that
 * exports are well-formed — without an external dependency.
 *
 * Scope: full JSON syntax (objects, arrays, strings with escapes,
 * numbers, true/false/null). Numbers are held as double (every value
 * we emit fits), strings as std::string with \uXXXX decoded to UTF-8.
 * Parse errors throw JsonError with a byte offset.
 */

#ifndef JANUS_COMMON_JSON_HH
#define JANUS_COMMON_JSON_HH

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace janus
{

/** Malformed input (message includes the byte offset). */
class JsonError : public std::runtime_error
{
  public:
    JsonError(const std::string &what, std::size_t offset)
        : std::runtime_error(what + " at byte " +
                             std::to_string(offset)),
          offset_(offset)
    {}

    std::size_t offset() const { return offset_; }

  private:
    std::size_t offset_;
};

/** One parsed JSON value (tree-owning). */
class JsonValue
{
  public:
    enum class Kind : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Typed accessors; throw JsonError on a kind mismatch. */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;
    const std::vector<JsonValue> &asArray() const;

    /** Object members in source order. */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const;

    /** Does this object have a member @p key? */
    bool has(const std::string &key) const;

    /**
     * Member lookup; throws JsonError when this is not an object or
     * the key is absent (use has() / get() for optional members).
     */
    const JsonValue &operator[](const std::string &key) const;

    /** Member lookup, or nullptr when absent / not an object. */
    const JsonValue *get(const std::string &key) const;

    /** Array element; throws JsonError when out of range. */
    const JsonValue &at(std::size_t index) const;

    std::size_t
    size() const
    {
        return kind_ == Kind::Array    ? array_.size()
               : kind_ == Kind::Object ? object_.size()
                                       : 0;
    }

    // --- construction (parser + tests) ----------------------------
    static JsonValue makeNull() { return JsonValue(); }
    static JsonValue makeBool(bool b);
    static JsonValue makeNumber(double n);
    static JsonValue makeString(std::string s);
    static JsonValue makeArray(std::vector<JsonValue> items);
    static JsonValue
    makeObject(std::vector<std::pair<std::string, JsonValue>> members);

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::vector<std::pair<std::string, JsonValue>> object_;
};

/** Parse a complete JSON document (rejects trailing garbage). */
JsonValue parseJson(const std::string &text);

/** Parse the contents of a file; throws JsonError when unreadable. */
JsonValue parseJsonFile(const std::string &path);

} // namespace janus

#endif // JANUS_COMMON_JSON_HH
