/**
 * @file
 * gem5-flavored status and error reporting. panic() flags simulator
 * bugs (aborts); fatal() flags user/configuration errors (clean exit);
 * warn()/inform() report conditions without stopping the simulation.
 */

#ifndef JANUS_COMMON_LOGGING_HH
#define JANUS_COMMON_LOGGING_HH

#include <cstdarg>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/types.hh"

namespace janus
{

/**
 * The exception panic() throws while a ScopedPanicCapture is active
 * on the calling thread. Carries the formatted panic message.
 */
class PanicError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * While alive, panic() on this thread throws PanicError instead of
 * aborting. The fault-audit subsystem uses this to record a
 * validator failure (one crash point) and keep sweeping the rest.
 * Captures nest; the effect is thread-local, so parallel experiment
 * workers abort normally.
 */
class ScopedPanicCapture
{
  public:
    ScopedPanicCapture();
    ~ScopedPanicCapture();

    ScopedPanicCapture(const ScopedPanicCapture &) = delete;
    ScopedPanicCapture &operator=(const ScopedPanicCapture &) = delete;
};

/** Printf-style formatting into a std::string. */
std::string vstrprintf(const char *fmt, std::va_list args);

/** Printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal simulator bug and abort. Use for conditions that
 * can never legally arise regardless of user input.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user/configuration error and exit(1).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious-but-survivable condition. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Rate limiter for warnings raised on simulation hot paths (e.g.
 * every injected fault under an aggressive chaos campaign): emits at
 * most @c maxPerInterval warnings per simulated-time interval and
 * counts the rest. When a new interval opens, one summary line
 * reports how many messages the previous interval swallowed, so the
 * log stays honest without scaling with the event rate.
 *
 * Rate limiting is keyed on simulated Ticks, not wall-clock time, so
 * output is deterministic for a given run.
 */
class RateLimitedWarn
{
  public:
    RateLimitedWarn(unsigned max_per_interval, Tick interval);

    /** warn() if this simulated interval still has budget. */
    void warn(Tick now, const char *fmt, ...)
        __attribute__((format(printf, 3, 4)));

    /** Warnings actually forwarded to warn(). */
    std::uint64_t emitted() const { return emitted_; }

    /** Warnings swallowed by the limiter. */
    std::uint64_t suppressed() const { return suppressed_; }

  private:
    void rollWindow(Tick now);

    unsigned maxPerInterval_;
    Tick interval_;
    Tick windowStart_ = 0;
    unsigned emittedInWindow_ = 0;
    std::uint64_t suppressedInWindow_ = 0;
    std::uint64_t emitted_ = 0;
    std::uint64_t suppressed_ = 0;
};

/** Globally silence warn()/inform() (used by tests and benches). */
void setQuiet(bool quiet);

/** @return whether warn()/inform() are currently silenced. */
bool quiet();

/** panic() unless the condition holds. */
#define janus_assert(cond, ...)                                           \
    do {                                                                  \
        if (!(cond))                                                      \
            ::janus::panic("assertion '%s' failed: %s", #cond,            \
                           ::janus::strprintf(__VA_ARGS__).c_str());      \
    } while (0)

} // namespace janus

#endif // JANUS_COMMON_LOGGING_HH
