/**
 * @file
 * gem5-flavored status and error reporting. panic() flags simulator
 * bugs (aborts); fatal() flags user/configuration errors (clean exit);
 * warn()/inform() report conditions without stopping the simulation.
 */

#ifndef JANUS_COMMON_LOGGING_HH
#define JANUS_COMMON_LOGGING_HH

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace janus
{

/**
 * The exception panic() throws while a ScopedPanicCapture is active
 * on the calling thread. Carries the formatted panic message.
 */
class PanicError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * While alive, panic() on this thread throws PanicError instead of
 * aborting. The fault-audit subsystem uses this to record a
 * validator failure (one crash point) and keep sweeping the rest.
 * Captures nest; the effect is thread-local, so parallel experiment
 * workers abort normally.
 */
class ScopedPanicCapture
{
  public:
    ScopedPanicCapture();
    ~ScopedPanicCapture();

    ScopedPanicCapture(const ScopedPanicCapture &) = delete;
    ScopedPanicCapture &operator=(const ScopedPanicCapture &) = delete;
};

/** Printf-style formatting into a std::string. */
std::string vstrprintf(const char *fmt, std::va_list args);

/** Printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal simulator bug and abort. Use for conditions that
 * can never legally arise regardless of user input.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user/configuration error and exit(1).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious-but-survivable condition. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() (used by tests and benches). */
void setQuiet(bool quiet);

/** @return whether warn()/inform() are currently silenced. */
bool quiet();

/** panic() unless the condition holds. */
#define janus_assert(cond, ...)                                           \
    do {                                                                  \
        if (!(cond))                                                      \
            ::janus::panic("assertion '%s' failed: %s", #cond,            \
                           ::janus::strprintf(__VA_ARGS__).c_str());      \
    } while (0)

} // namespace janus

#endif // JANUS_COMMON_LOGGING_HH
