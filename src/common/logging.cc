#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace janus
{

namespace
{
// Atomic so parallel experiment workers can warn()/inform() while
// another thread toggles quiet mode (the bench runner does both).
std::atomic<bool> quietFlag{false};

// Nesting depth of ScopedPanicCapture on this thread.
thread_local unsigned panicCaptureDepth = 0;
} // namespace

ScopedPanicCapture::ScopedPanicCapture()
{
    ++panicCaptureDepth;
}

ScopedPanicCapture::~ScopedPanicCapture()
{
    --panicCaptureDepth;
}

std::string
vstrprintf(const char *fmt, std::va_list args)
{
    std::va_list copy;
    va_copy(copy, args);
    int n = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (n < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(n));
}

std::string
strprintf(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(fmt, args);
    va_end(args);
    return s;
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(fmt, args);
    va_end(args);
    if (panicCaptureDepth > 0)
        throw PanicError(s);
    std::fprintf(stderr, "panic: %s\n", s.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "fatal: %s\n", s.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (quietFlag.load(std::memory_order_relaxed))
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", s.c_str());
}

void
inform(const char *fmt, ...)
{
    if (quietFlag.load(std::memory_order_relaxed))
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "info: %s\n", s.c_str());
}

RateLimitedWarn::RateLimitedWarn(unsigned max_per_interval,
                                 Tick interval)
    : maxPerInterval_(max_per_interval), interval_(interval)
{
}

void
RateLimitedWarn::rollWindow(Tick now)
{
    if (interval_ == 0 || now < windowStart_ + interval_)
        return;
    if (suppressedInWindow_ > 0)
        janus::warn("(%llu similar warnings suppressed since "
                    "simulated tick %llu)",
                    static_cast<unsigned long long>(suppressedInWindow_),
                    static_cast<unsigned long long>(windowStart_));
    // Advance in whole intervals so window edges are a function of
    // simulated time alone, not of when warnings happened to arrive.
    windowStart_ += ((now - windowStart_) / interval_) * interval_;
    emittedInWindow_ = 0;
    suppressedInWindow_ = 0;
}

void
RateLimitedWarn::warn(Tick now, const char *fmt, ...)
{
    rollWindow(now);
    if (emittedInWindow_ >= maxPerInterval_) {
        ++suppressedInWindow_;
        ++suppressed_;
        return;
    }
    ++emittedInWindow_;
    ++emitted_;
    if (quietFlag.load(std::memory_order_relaxed))
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string s = vstrprintf(fmt, args);
    va_end(args);
    std::fprintf(stderr, "warn: %s\n", s.c_str());
}

void
setQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

bool
quiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

} // namespace janus
