/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 * Every stochastic choice in the simulator and the workload
 * generators draws from an explicitly-seeded Rng so that experiments
 * are exactly reproducible run to run.
 */

#ifndef JANUS_COMMON_RANDOM_HH
#define JANUS_COMMON_RANDOM_HH

#include <cstdint>

namespace janus
{

/**
 * xoshiro256** 1.0 by Blackman & Vigna (public domain reference
 * algorithm), seeded via splitmix64 so that any 64-bit seed yields a
 * well-mixed state.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using rejection sampling. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p);

  private:
    std::uint64_t s_[4];
};

} // namespace janus

#endif // JANUS_COMMON_RANDOM_HH
