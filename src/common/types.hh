/**
 * @file
 * Fundamental scalar types and time literals used across the
 * simulator. Ticks are picoseconds so that every latency in the
 * paper's Table 3 (4 GHz core cycles, DDR timing parameters,
 * nanosecond BMO latencies) is exactly representable.
 */

#ifndef JANUS_COMMON_TYPES_HH
#define JANUS_COMMON_TYPES_HH

#include <cstdint>

namespace janus
{

/** Simulated time, in picoseconds. */
using Tick = std::uint64_t;

/** A physical (processor-visible) memory address. */
using Addr = std::uint64_t;

/** Sentinel for "no such tick"; sorts after every real tick. */
constexpr Tick maxTick = ~Tick(0);

/** Cache line size in bytes. All BMOs operate at this granularity. */
constexpr unsigned lineBytes = 64;

/** log2(lineBytes); used for address/line conversions. */
constexpr unsigned lineShift = 6;

/** Align an address down to its cache line base. */
constexpr Addr
lineAlign(Addr a)
{
    return a & ~Addr(lineBytes - 1);
}

/** Offset of an address within its cache line. */
constexpr unsigned
lineOffset(Addr a)
{
    return static_cast<unsigned>(a & (lineBytes - 1));
}

/** Number of cache lines covered by [addr, addr + size). */
constexpr unsigned
lineSpan(Addr addr, unsigned size)
{
    if (size == 0)
        return 0;
    Addr first = lineAlign(addr);
    Addr last = lineAlign(addr + size - 1);
    return static_cast<unsigned>(((last - first) >> lineShift) + 1);
}

namespace ticks
{

/** One picosecond (the base tick). */
constexpr Tick ps = 1;
/** One nanosecond. */
constexpr Tick ns = 1000 * ps;
/** One microsecond. */
constexpr Tick us = 1000 * ns;
/** One millisecond. */
constexpr Tick ms = 1000 * us;
/** One second. */
constexpr Tick s = 1000 * ms;

/** Convert ticks to (truncated) nanoseconds. */
constexpr Tick toNs(Tick t) { return t / ns; }

/** Convert ticks to floating-point nanoseconds (for reporting). */
constexpr double toNsF(Tick t) { return static_cast<double>(t) / ns; }

} // namespace ticks

} // namespace janus

#endif // JANUS_COMMON_TYPES_HH
