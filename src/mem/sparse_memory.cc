#include "mem/sparse_memory.hh"

#include <cstring>

#include "common/logging.hh"

namespace janus
{

const SparseMemory::Page *
SparseMemory::findPage(Addr addr) const
{
    Addr page_no = addr / pageBytes;
    auto &stripe = pages_[stripeOf(page_no)];
    if (stripeLocks_) {
        // Thread-safe mode: skip the one-entry cache (mutated by
        // const readers) and serialize the stripe lookup. Page
        // pointers are stable, so the returned pointer stays valid
        // outside the lock.
        std::lock_guard<std::mutex> l(
            (*stripeLocks_)[stripeOf(page_no)]);
        auto it = stripe.find(page_no);
        return it == stripe.end() ? nullptr : it->second.get();
    }
    if (page_no == cachedPageNo_)
        return cachedPage_;
    auto it = stripe.find(page_no);
    if (it == stripe.end())
        return nullptr;
    cachedPageNo_ = page_no;
    cachedPage_ = it->second.get();
    return cachedPage_;
}

SparseMemory::Page &
SparseMemory::getPage(Addr addr)
{
    Addr page_no = addr / pageBytes;
    auto &stripe = pages_[stripeOf(page_no)];
    if (stripeLocks_) {
        std::lock_guard<std::mutex> l(
            (*stripeLocks_)[stripeOf(page_no)]);
        auto &slot = stripe[page_no];
        if (!slot) {
            slot = std::make_unique<Page>();
            slot->fill(0);
        }
        return *slot;
    }
    if (page_no == cachedPageNo_)
        return *cachedPage_;
    auto &slot = stripe[page_no];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    cachedPageNo_ = page_no;
    cachedPage_ = slot.get();
    return *slot;
}

void
SparseMemory::setThreadSafe(bool on)
{
    if (on && !stripeLocks_) {
        // Drop the cache so stale entries can't be served while the
        // cache is bypassed.
        cachedPageNo_ = ~Addr(0);
        cachedPage_ = nullptr;
        stripeLocks_ =
            std::make_unique<std::array<std::mutex, numStripes>>();
    } else if (!on) {
        stripeLocks_.reset();
    }
}

std::size_t
SparseMemory::pageCount() const
{
    std::size_t count = 0;
    for (const auto &stripe : pages_)
        count += stripe.size();
    return count;
}

void
SparseMemory::read(Addr addr, void *dst, unsigned size) const
{
    auto *out = static_cast<std::uint8_t *>(dst);
    while (size > 0) {
        Addr off = addr % pageBytes;
        unsigned take = static_cast<unsigned>(
            std::min<Addr>(size, pageBytes - off));
        const Page *page = findPage(addr);
        if (page)
            std::memcpy(out, page->data() + off, take);
        else
            std::memset(out, 0, take);
        addr += take;
        out += take;
        size -= take;
    }
}

void
SparseMemory::write(Addr addr, const void *src, unsigned size)
{
    const auto *in = static_cast<const std::uint8_t *>(src);
    while (size > 0) {
        Addr off = addr % pageBytes;
        unsigned take = static_cast<unsigned>(
            std::min<Addr>(size, pageBytes - off));
        Page &page = getPage(addr);
        std::memcpy(page.data() + off, in, take);
        addr += take;
        in += take;
        size -= take;
    }
}

const std::uint8_t *
SparseMemory::linePtr(Addr line_addr) const
{
    janus_assert(lineOffset(line_addr) == 0,
                 "unaligned linePtr at %#llx",
                 static_cast<unsigned long long>(line_addr));
    const Page *page = findPage(line_addr);
    return page ? page->data() + line_addr % pageBytes : nullptr;
}

std::uint8_t *
SparseMemory::linePtr(Addr line_addr)
{
    janus_assert(lineOffset(line_addr) == 0,
                 "unaligned linePtr at %#llx",
                 static_cast<unsigned long long>(line_addr));
    return getPage(line_addr).data() + line_addr % pageBytes;
}

CacheLine
SparseMemory::readLine(Addr line_addr) const
{
    CacheLine line;
    const std::uint8_t *src = linePtr(line_addr);
    if (src)
        std::memcpy(line.data(), src, lineBytes);
    return line;
}

void
SparseMemory::writeLine(Addr line_addr, const CacheLine &line)
{
    std::memcpy(linePtr(line_addr), line.data(), lineBytes);
}

std::uint64_t
SparseMemory::readWord(Addr addr) const
{
    std::uint64_t v;
    read(addr, &v, 8);
    return v;
}

void
SparseMemory::writeWord(Addr addr, std::uint64_t value)
{
    write(addr, &value, 8);
}

void
SparseMemory::clear()
{
    for (auto &stripe : pages_)
        stripe.clear();
    cachedPageNo_ = ~Addr(0);
    cachedPage_ = nullptr;
}

void
SparseMemory::copyFrom(const SparseMemory &other)
{
    clear();
    for (std::size_t s = 0; s < numStripes; ++s) {
        for (const auto &[page_no, page] : other.pages_[s]) {
            auto copy = std::make_unique<Page>(*page);
            pages_[s].emplace(page_no, std::move(copy));
        }
    }
}

std::uint64_t
SparseMemory::contentHash() const
{
    // FNV-1a per page, keyed by the page number, XOR-combined so the
    // map's iteration order is irrelevant. All-zero pages hash as if
    // absent (unbacked reads are zero).
    std::uint64_t combined = 0;
    for (const auto &stripe : pages_) {
        for (const auto &[page_no, page] : stripe) {
            bool all_zero = true;
            for (std::uint8_t byte : *page)
                all_zero &= byte == 0;
            if (all_zero)
                continue;
            std::uint64_t h = 1469598103934665603ull ^ page_no;
            for (std::uint8_t byte : *page) {
                h ^= byte;
                h *= 1099511628211ull;
            }
            combined ^= h;
        }
    }
    return combined;
}

Addr
RegionAllocator::alloc(Addr size, Addr align)
{
    janus_assert(align != 0 && (align & (align - 1)) == 0,
                 "alignment must be a power of two");
    Addr addr = (next_ + align - 1) & ~(align - 1);
    if (addr + size > end_)
        fatal("RegionAllocator exhausted: need %llu bytes",
              static_cast<unsigned long long>(size));
    next_ = addr + size;
    return addr;
}

} // namespace janus
