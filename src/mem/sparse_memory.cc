#include "mem/sparse_memory.hh"

#include <cstring>

#include "common/logging.hh"

namespace janus
{

const SparseMemory::Page *
SparseMemory::findPage(Addr addr) const
{
    auto it = pages_.find(addr / pageBytes);
    return it == pages_.end() ? nullptr : it->second.get();
}

SparseMemory::Page &
SparseMemory::getPage(Addr addr)
{
    auto &slot = pages_[addr / pageBytes];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    return *slot;
}

void
SparseMemory::read(Addr addr, void *dst, unsigned size) const
{
    auto *out = static_cast<std::uint8_t *>(dst);
    while (size > 0) {
        Addr off = addr % pageBytes;
        unsigned take = static_cast<unsigned>(
            std::min<Addr>(size, pageBytes - off));
        const Page *page = findPage(addr);
        if (page)
            std::memcpy(out, page->data() + off, take);
        else
            std::memset(out, 0, take);
        addr += take;
        out += take;
        size -= take;
    }
}

void
SparseMemory::write(Addr addr, const void *src, unsigned size)
{
    const auto *in = static_cast<const std::uint8_t *>(src);
    while (size > 0) {
        Addr off = addr % pageBytes;
        unsigned take = static_cast<unsigned>(
            std::min<Addr>(size, pageBytes - off));
        Page &page = getPage(addr);
        std::memcpy(page.data() + off, in, take);
        addr += take;
        in += take;
        size -= take;
    }
}

CacheLine
SparseMemory::readLine(Addr line_addr) const
{
    janus_assert(lineOffset(line_addr) == 0,
                 "unaligned line read at %#llx",
                 static_cast<unsigned long long>(line_addr));
    CacheLine line;
    read(line_addr, line.data(), lineBytes);
    return line;
}

void
SparseMemory::writeLine(Addr line_addr, const CacheLine &line)
{
    janus_assert(lineOffset(line_addr) == 0,
                 "unaligned line write at %#llx",
                 static_cast<unsigned long long>(line_addr));
    write(line_addr, line.data(), lineBytes);
}

std::uint64_t
SparseMemory::readWord(Addr addr) const
{
    std::uint64_t v;
    read(addr, &v, 8);
    return v;
}

void
SparseMemory::writeWord(Addr addr, std::uint64_t value)
{
    write(addr, &value, 8);
}

void
SparseMemory::clear()
{
    pages_.clear();
}

void
SparseMemory::copyFrom(const SparseMemory &other)
{
    pages_.clear();
    for (const auto &[page_no, page] : other.pages_) {
        auto copy = std::make_unique<Page>(*page);
        pages_.emplace(page_no, std::move(copy));
    }
}

std::uint64_t
SparseMemory::contentHash() const
{
    // FNV-1a per page, keyed by the page number, XOR-combined so the
    // map's iteration order is irrelevant. All-zero pages hash as if
    // absent (unbacked reads are zero).
    std::uint64_t combined = 0;
    for (const auto &[page_no, page] : pages_) {
        bool all_zero = true;
        for (std::uint8_t byte : *page)
            all_zero &= byte == 0;
        if (all_zero)
            continue;
        std::uint64_t h = 1469598103934665603ull ^ page_no;
        for (std::uint8_t byte : *page) {
            h ^= byte;
            h *= 1099511628211ull;
        }
        combined ^= h;
    }
    return combined;
}

Addr
RegionAllocator::alloc(Addr size, Addr align)
{
    janus_assert(align != 0 && (align & (align - 1)) == 0,
                 "alignment must be a power of two");
    Addr addr = (next_ + align - 1) & ~(align - 1);
    if (addr + size > end_)
        fatal("RegionAllocator exhausted: need %llu bytes",
              static_cast<unsigned long long>(size));
    next_ = addr + size;
    return addr;
}

} // namespace janus
