/**
 * @file
 * Byte-accurate sparse memory. Backs both the program-visible
 * (volatile) view of NVM and the persisted NVM image, using a 4 KB
 * page map so a simulated 4 GB device costs only what is touched.
 */

#ifndef JANUS_MEM_SPARSE_MEMORY_HH
#define JANUS_MEM_SPARSE_MEMORY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/cacheline.hh"
#include "common/types.hh"

namespace janus
{

/** Sparse, zero-initialized, byte-addressable memory. */
class SparseMemory
{
  public:
    static constexpr unsigned pageBytes = 4096;

    SparseMemory() = default;

    /** Read size bytes at addr into dst. Unbacked bytes read as 0. */
    void read(Addr addr, void *dst, unsigned size) const;

    /** Write size bytes from src at addr. */
    void write(Addr addr, const void *src, unsigned size);

    /** Read a full aligned cache line. */
    CacheLine readLine(Addr line_addr) const;

    /** Write a full aligned cache line. */
    void writeLine(Addr line_addr, const CacheLine &line);

    /**
     * Direct pointer to the bytes of an aligned line (lines never
     * straddle the 4 KB pages), or nullptr if the line's page is
     * unbacked (reads as zero). Stable until clear()/copyFrom().
     */
    const std::uint8_t *linePtr(Addr line_addr) const;

    /** Mutable variant; materializes the page if needed. */
    std::uint8_t *linePtr(Addr line_addr);

    /** Read a little-endian 64-bit word. */
    std::uint64_t readWord(Addr addr) const;

    /** Write a little-endian 64-bit word. */
    void writeWord(Addr addr, std::uint64_t value);

    /** Drop all contents (simulates volatile state loss on crash). */
    void clear();

    /** Number of materialized pages (for accounting). */
    std::size_t pageCount() const { return pages_.size(); }

    /** Deep copy the contents of another memory. */
    void copyFrom(const SparseMemory &other);

    /**
     * Order-independent digest of the full contents (all-zero pages
     * contribute nothing). Used by equivalence properties: two
     * memories holding the same bytes hash equal.
     */
    std::uint64_t contentHash() const;

  private:
    using Page = std::array<std::uint8_t, pageBytes>;

    /** @return the page containing addr, or nullptr if unbacked. */
    const Page *findPage(Addr addr) const;

    /** @return the page containing addr, creating it if needed. */
    Page &getPage(Addr addr);

    std::unordered_map<Addr, std::unique_ptr<Page>> pages_;
    /**
     * One-entry cache of the last page touched: sequential and
     * line-local access skips the hash-map lookup. Page pointers
     * are stable (the map owns them via unique_ptr), so the cache
     * only needs invalidating on clear()/copyFrom(). Mutated by
     * const readers; like the rest of the class, an instance is not
     * meant to be shared across threads.
     */
    mutable Addr cachedPageNo_ = ~Addr(0);
    mutable Page *cachedPage_ = nullptr;
};

/**
 * A bump allocator handing out cache-line-aligned chunks from a
 * persistent address region; workloads use it as their NVM heap.
 */
class RegionAllocator
{
  public:
    RegionAllocator(Addr base, Addr size) : base_(base), end_(base + size),
                                            next_(base)
    {}

    /** Allocate size bytes with the given alignment (power of two). */
    Addr alloc(Addr size, Addr align = lineBytes);

    /** First address never handed out. */
    Addr watermark() const { return next_; }

    /** Base address of the region. */
    Addr base() const { return base_; }

    /** Bytes remaining. */
    Addr remaining() const { return end_ - next_; }

  private:
    Addr base_;
    Addr end_;
    Addr next_;
};

} // namespace janus

#endif // JANUS_MEM_SPARSE_MEMORY_HH
