/**
 * @file
 * Byte-accurate sparse memory. Backs both the program-visible
 * (volatile) view of NVM and the persisted NVM image, using a 4 KB
 * page map so a simulated 4 GB device costs only what is touched.
 */

#ifndef JANUS_MEM_SPARSE_MEMORY_HH
#define JANUS_MEM_SPARSE_MEMORY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/cacheline.hh"
#include "common/types.hh"

namespace janus
{

/** Sparse, zero-initialized, byte-addressable memory. */
class SparseMemory
{
  public:
    static constexpr unsigned pageBytes = 4096;

    SparseMemory() = default;

    /** Read size bytes at addr into dst. Unbacked bytes read as 0. */
    void read(Addr addr, void *dst, unsigned size) const;

    /** Write size bytes from src at addr. */
    void write(Addr addr, const void *src, unsigned size);

    /** Read a full aligned cache line. */
    CacheLine readLine(Addr line_addr) const;

    /** Write a full aligned cache line. */
    void writeLine(Addr line_addr, const CacheLine &line);

    /**
     * Direct pointer to the bytes of an aligned line (lines never
     * straddle the 4 KB pages), or nullptr if the line's page is
     * unbacked (reads as zero). Stable until clear()/copyFrom().
     */
    const std::uint8_t *linePtr(Addr line_addr) const;

    /** Mutable variant; materializes the page if needed. */
    std::uint8_t *linePtr(Addr line_addr);

    /** Read a little-endian 64-bit word. */
    std::uint64_t readWord(Addr addr) const;

    /** Write a little-endian 64-bit word. */
    void writeWord(Addr addr, std::uint64_t value);

    /** Drop all contents (simulates volatile state loss on crash). */
    void clear();

    /** Number of materialized pages (for accounting). */
    std::size_t pageCount() const;

    /** Deep copy the contents of another memory. */
    void copyFrom(const SparseMemory &other);

    /**
     * Toggle concurrent access mode. When on, page-map lookups and
     * page materialization take the touched stripe's mutex (the map
     * is striped by page number, so concurrent shards almost never
     * contend) and the one-entry page cache is bypassed (its
     * mutation by const readers is the only non-threadsafe state).
     * Page bytes themselves are NOT locked: the sharded simulator
     * guarantees distinct shards never touch the same line
     * concurrently (each line has one home shard), so byte-level
     * races cannot occur. Purely a synchronization toggle — contents
     * and results are identical either way.
     */
    void setThreadSafe(bool on);

    /**
     * Order-independent digest of the full contents (all-zero pages
     * contribute nothing). Used by equivalence properties: two
     * memories holding the same bytes hash equal.
     */
    std::uint64_t contentHash() const;

  private:
    using Page = std::array<std::uint8_t, pageBytes>;

    /** Page-map stripes (power of two). Striping is invisible to
     *  every observer (contentHash XOR-combines, pageCount sums);
     *  it exists so thread-safe mode can lock per stripe instead of
     *  globally, which would serialize every interpreted memory
     *  access of every shard worker. */
    static constexpr std::size_t numStripes = 64;

    static std::size_t
    stripeOf(Addr page_no)
    {
        // Pages of one heap region are consecutive, so low bits
        // spread one shard's working set across all stripes.
        return static_cast<std::size_t>(page_no) & (numStripes - 1);
    }

    /** @return the page containing addr, or nullptr if unbacked. */
    const Page *findPage(Addr addr) const;

    /** @return the page containing addr, creating it if needed. */
    Page &getPage(Addr addr);

    std::array<std::unordered_map<Addr, std::unique_ptr<Page>>,
               numStripes>
        pages_;
    /**
     * One-entry cache of the last page touched: sequential and
     * line-local access skips the hash-map lookup. Page pointers
     * are stable (the map owns them via unique_ptr), so the cache
     * only needs invalidating on clear()/copyFrom(). Mutated by
     * const readers; bypassed in thread-safe mode.
     */
    mutable Addr cachedPageNo_ = ~Addr(0);
    mutable Page *cachedPage_ = nullptr;
    /** Present only in thread-safe mode (unique_ptr keeps the class
     *  movable); one mutex per page-map stripe. */
    mutable std::unique_ptr<std::array<std::mutex, numStripes>>
        stripeLocks_;
};

/**
 * A bump allocator handing out cache-line-aligned chunks from a
 * persistent address region; workloads use it as their NVM heap.
 */
class RegionAllocator
{
  public:
    RegionAllocator(Addr base, Addr size) : base_(base), end_(base + size),
                                            next_(base)
    {}

    /** Allocate size bytes with the given alignment (power of two). */
    Addr alloc(Addr size, Addr align = lineBytes);

    /** First address never handed out. */
    Addr watermark() const { return next_; }

    /** Base address of the region. */
    Addr base() const { return base_; }

    /** Bytes remaining. */
    Addr remaining() const { return end_ - next_; }

  private:
    Addr base_;
    Addr end_;
    Addr next_;
};

} // namespace janus

#endif // JANUS_MEM_SPARSE_MEMORY_HH
