/**
 * @file
 * PmIR: the small persistent-memory IR the workloads are written in.
 * It plays the role LLVM IR plays in the paper: the timing cores
 * interpret it, and the automated instrumentation pass (Section 4.5)
 * analyzes and rewrites it to inject Janus pre-execution calls.
 *
 * The IR is register-based (64-bit virtual registers), organized as
 * functions of basic blocks. Memory instructions operate on the
 * simulated byte-accurate address space. Persistence primitives
 * (Clwb/Sfence) and the Janus software interface (Table 2) are
 * first-class instructions.
 */

#ifndef JANUS_IR_IR_HH
#define JANUS_IR_IR_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"

namespace janus
{

/** PmIR opcodes. */
enum class Opcode : std::uint8_t
{
    // Data movement / arithmetic (dst, a, b, imm as documented).
    Const,     ///< dst = imm
    Mov,       ///< dst = r[a]
    Add,       ///< dst = r[a] + r[b]
    AddI,      ///< dst = r[a] + imm
    Sub,       ///< dst = r[a] - r[b]
    Mul,       ///< dst = r[a] * r[b]
    MulI,      ///< dst = r[a] * imm
    And,       ///< dst = r[a] & r[b]
    Or,        ///< dst = r[a] | r[b]
    Xor,       ///< dst = r[a] ^ r[b]
    ShlI,      ///< dst = r[a] << imm
    ShrI,      ///< dst = r[a] >> imm
    CmpEq,     ///< dst = r[a] == r[b]
    CmpNe,     ///< dst = r[a] != r[b]
    CmpLt,     ///< dst = r[a] < r[b] (unsigned)
    CmpLe,     ///< dst = r[a] <= r[b] (unsigned)

    // Memory.
    Load,      ///< dst = mem64[r[a] + imm]
    Store,     ///< mem64[r[a] + imm] = r[b]
    MemCpy,    ///< mem[r[dst]..] = mem[r[a]..]; size r[b] (or imm)

    // Control flow.
    Br,        ///< goto block imm
    BrCond,    ///< if r[a] goto block imm else block imm2
    Call,      ///< dst = callee(args...)
    Ret,       ///< return r[a] (a == -1: void)
    Halt,      ///< stop the hart

    // Persistence (x86 clwb/sfence analogues, ADR semantics).
    Clwb,      ///< write back lines [r[a], r[a]+size); size r[b] or
               ///< imm; flag requests metadata atomicity
    Sfence,    ///< stall until all outstanding persists are durable
    TxBegin,   ///< open a durable transaction (bumps TransactionID)
    TxEnd,     ///< close it

    // Janus software interface (paper Table 2).
    PreInit,     ///< initialize pre-object `slot`
    PreAddr,     ///< pre-execute addr-dependent: (slot, r[a], imm)
    PreData,     ///< pre-execute data-dependent: (slot, r[a], imm)
    PreBoth,     ///< both: (slot, addr r[a], data r[b], imm)
    PreBothVal,  ///< both, 64-bit value: (slot, addr r[a], val r[b])
    PreAddrBuf,  ///< deferred variants of the above three
    PreDataBuf,
    PreBothBuf,
    PreStartBuf, ///< launch buffered requests of `slot`

    Nop,
};

/** One PmIR instruction. Field use depends on the opcode. */
struct Instr
{
    Opcode op = Opcode::Nop;
    int dst = -1;
    int a = -1;
    int b = -1;
    std::int64_t imm = 0;
    std::int64_t imm2 = 0;
    /** Pre-object slot for PRE_* ops. */
    int slot = -1;
    /** Clwb: request metadata atomicity (commit writes). */
    bool flag = false;
    std::string callee;
    std::vector<int> args;
};

/** A basic block: straight-line code ending in a terminator. */
struct BasicBlock
{
    std::vector<Instr> instrs;
};

/** A PmIR function. Arguments arrive in registers 0..numArgs-1. */
struct Function
{
    std::string name;
    unsigned numArgs = 0;
    unsigned numRegs = 0;
    std::vector<BasicBlock> blocks;

    /** @return true if the given opcode ends a basic block. */
    static bool isTerminator(Opcode op);

    /** Successor block ids of a block (from its terminator). */
    std::vector<unsigned> successors(unsigned block) const;
};

/** A compilation module: a set of functions. */
struct Module
{
    std::map<std::string, Function> functions;

    const Function &fn(const std::string &name) const;
    Function &fn(const std::string &name);
    bool has(const std::string &name) const
    {
        return functions.count(name) != 0;
    }
};

/**
 * Structural validation: register/block indices in range, blocks
 * properly terminated, callees resolvable. Panics on violation.
 */
void verify(const Module &module);

/** Disassemble for debugging and the compiler-pass example. */
std::string toString(const Instr &instr);
std::string toString(const Function &fn);
std::string toString(const Module &module);

/** @return true for PRE_* opcodes. */
bool isPreOp(Opcode op);

} // namespace janus

#endif // JANUS_IR_IR_HH
