/**
 * @file
 * CFG analyses over PmIR functions: predecessors, reverse postorder,
 * dominator tree (Cooper-Harvey-Kennedy) and natural-loop membership.
 * The automated instrumentation pass uses these to (a) refuse to
 * instrument writebacks inside loops and (b) place injected calls
 * only at points that dominate the writeback.
 */

#ifndef JANUS_IR_ANALYSIS_HH
#define JANUS_IR_ANALYSIS_HH

#include <vector>

#include "ir/ir.hh"

namespace janus
{

/** Immutable CFG facts about one function. */
class CfgInfo
{
  public:
    explicit CfgInfo(const Function &fn);

    const std::vector<unsigned> &preds(unsigned block) const
    {
        return preds_.at(block);
    }

    /** Reverse postorder over reachable blocks (entry first). */
    const std::vector<unsigned> &rpo() const { return rpo_; }

    /** @return true iff block a dominates block b. */
    bool dominates(unsigned a, unsigned b) const;

    /** Immediate dominator (entry's idom is itself). */
    unsigned idom(unsigned block) const
    {
        return static_cast<unsigned>(idom_.at(block));
    }

    /** @return true iff the block is inside a natural loop. */
    bool inLoop(unsigned block) const { return inLoop_.at(block); }

    /** @return true iff the block is reachable from the entry. */
    bool reachable(unsigned block) const
    {
        return rpoIndex_.at(block) >= 0;
    }

    /** Number of natural loops (back edges) found. */
    unsigned numLoops() const { return numLoops_; }

  private:
    std::vector<std::vector<unsigned>> preds_;
    std::vector<unsigned> rpo_;
    std::vector<int> rpoIndex_;
    std::vector<int> idom_;
    std::vector<bool> inLoop_;
    unsigned numLoops_ = 0;
};

} // namespace janus

#endif // JANUS_IR_ANALYSIS_HH
