#include "ir/builder.hh"

#include "common/logging.hh"

namespace janus
{

void
IrBuilder::beginFunction(const std::string &name, unsigned num_args)
{
    janus_assert(fn_ == nullptr, "beginFunction while building '%s'",
                 fn_ ? fn_->name.c_str() : "?");
    janus_assert(!module_.has(name), "duplicate function '%s'",
                 name.c_str());
    Function fn;
    fn.name = name;
    fn.numArgs = num_args;
    fn.numRegs = num_args;
    fn.blocks.emplace_back();
    auto [it, ok] = module_.functions.emplace(name, std::move(fn));
    janus_assert(ok, "emplace failed");
    fn_ = &it->second;
    curBlock_ = 0;
    nextSlot_ = 0;
}

void
IrBuilder::endFunction()
{
    janus_assert(fn_ != nullptr, "endFunction without beginFunction");
    fn_ = nullptr;
}

int
IrBuilder::arg(unsigned i) const
{
    janus_assert(fn_ && i < fn_->numArgs, "bad argument index %u", i);
    return static_cast<int>(i);
}

int
IrBuilder::newReg()
{
    janus_assert(fn_ != nullptr, "no function under construction");
    return static_cast<int>(fn_->numRegs++);
}

unsigned
IrBuilder::newBlock()
{
    janus_assert(fn_ != nullptr, "no function under construction");
    fn_->blocks.emplace_back();
    return static_cast<unsigned>(fn_->blocks.size() - 1);
}

Instr &
IrBuilder::emit(Instr instr)
{
    janus_assert(fn_ != nullptr, "no function under construction");
    BasicBlock &bb = fn_->blocks.at(curBlock_);
    janus_assert(bb.instrs.empty() ||
                     !Function::isTerminator(bb.instrs.back().op),
                 "%s: emitting past terminator in bb%u",
                 fn_->name.c_str(), curBlock_);
    bb.instrs.push_back(std::move(instr));
    return bb.instrs.back();
}

int
IrBuilder::constI(std::int64_t value)
{
    int dst = newReg();
    emit({.op = Opcode::Const, .dst = dst, .imm = value});
    return dst;
}

int
IrBuilder::mov(int a)
{
    int dst = newReg();
    emit({.op = Opcode::Mov, .dst = dst, .a = a});
    return dst;
}

void
IrBuilder::movTo(int dst, int src)
{
    emit({.op = Opcode::Mov, .dst = dst, .a = src});
}

void
IrBuilder::constTo(int dst, std::int64_t value)
{
    emit({.op = Opcode::Const, .dst = dst, .imm = value});
}

#define JANUS_BINOP(method, opcode)                                       \
    int IrBuilder::method(int a, int b)                                   \
    {                                                                     \
        int dst = newReg();                                               \
        emit({.op = Opcode::opcode, .dst = dst, .a = a, .b = b});         \
        return dst;                                                       \
    }

JANUS_BINOP(add, Add)
JANUS_BINOP(sub, Sub)
JANUS_BINOP(mul, Mul)
JANUS_BINOP(andOp, And)
JANUS_BINOP(orOp, Or)
JANUS_BINOP(xorOp, Xor)
JANUS_BINOP(cmpEq, CmpEq)
JANUS_BINOP(cmpNe, CmpNe)
JANUS_BINOP(cmpLt, CmpLt)
JANUS_BINOP(cmpLe, CmpLe)

#undef JANUS_BINOP

#define JANUS_IMMOP(method, opcode)                                       \
    int IrBuilder::method(int a, std::int64_t imm)                        \
    {                                                                     \
        int dst = newReg();                                               \
        emit({.op = Opcode::opcode, .dst = dst, .a = a, .imm = imm});     \
        return dst;                                                       \
    }

JANUS_IMMOP(addI, AddI)
JANUS_IMMOP(mulI, MulI)
JANUS_IMMOP(shlI, ShlI)
JANUS_IMMOP(shrI, ShrI)

#undef JANUS_IMMOP

int
IrBuilder::load(int addr, std::int64_t offset)
{
    int dst = newReg();
    emit({.op = Opcode::Load, .dst = dst, .a = addr, .imm = offset});
    return dst;
}

void
IrBuilder::store(int addr, int value, std::int64_t offset)
{
    emit({.op = Opcode::Store, .a = addr, .b = value, .imm = offset});
}

void
IrBuilder::memCpy(int dst_addr, int src_addr, std::int64_t bytes)
{
    emit({.op = Opcode::MemCpy, .dst = dst_addr, .a = src_addr,
          .imm = bytes});
}

void
IrBuilder::memCpyR(int dst_addr, int src_addr, int bytes_reg)
{
    emit({.op = Opcode::MemCpy, .dst = dst_addr, .a = src_addr,
          .b = bytes_reg});
}

void
IrBuilder::br(unsigned block)
{
    emit({.op = Opcode::Br, .imm = block});
}

void
IrBuilder::brCond(int cond, unsigned if_true, unsigned if_false)
{
    emit({.op = Opcode::BrCond, .a = cond, .imm = if_true,
          .imm2 = if_false});
}

int
IrBuilder::call(const std::string &callee, const std::vector<int> &args)
{
    int dst = newReg();
    Instr instr{.op = Opcode::Call, .dst = dst, .callee = callee,
                .args = args};
    emit(std::move(instr));
    return dst;
}

void
IrBuilder::ret(int value)
{
    emit({.op = Opcode::Ret, .a = value});
}

void
IrBuilder::halt()
{
    emit({.op = Opcode::Halt});
}

void
IrBuilder::clwb(int addr, std::int64_t size, bool meta_atomic)
{
    emit({.op = Opcode::Clwb, .a = addr, .imm = size,
          .flag = meta_atomic});
}

void
IrBuilder::clwbR(int addr, int size_reg, bool meta_atomic)
{
    emit({.op = Opcode::Clwb, .a = addr, .b = size_reg,
          .flag = meta_atomic});
}

void
IrBuilder::sfence()
{
    emit({.op = Opcode::Sfence});
}

void
IrBuilder::txBegin()
{
    emit({.op = Opcode::TxBegin});
}

void
IrBuilder::txEnd()
{
    emit({.op = Opcode::TxEnd});
}

int
IrBuilder::preInit()
{
    int slot = nextSlot_++;
    emit({.op = Opcode::PreInit, .slot = slot});
    return slot;
}

void
IrBuilder::preAddr(int slot, int addr, std::int64_t size)
{
    emit({.op = Opcode::PreAddr, .a = addr, .imm = size, .slot = slot});
}

void
IrBuilder::preData(int slot, int data_addr, std::int64_t size)
{
    emit({.op = Opcode::PreData, .a = data_addr, .imm = size,
          .slot = slot});
}

void
IrBuilder::preBoth(int slot, int addr, int data_addr, std::int64_t size)
{
    emit({.op = Opcode::PreBoth, .a = addr, .b = data_addr, .imm = size,
          .slot = slot});
}

void
IrBuilder::preAddrR(int slot, int addr, int size_reg)
{
    emit({.op = Opcode::PreAddr, .dst = size_reg, .a = addr,
          .slot = slot});
}

void
IrBuilder::preDataR(int slot, int data_addr, int size_reg)
{
    emit({.op = Opcode::PreData, .dst = size_reg, .a = data_addr,
          .slot = slot});
}

void
IrBuilder::preBothR(int slot, int addr, int data_addr, int size_reg)
{
    emit({.op = Opcode::PreBoth, .dst = size_reg, .a = addr,
          .b = data_addr, .slot = slot});
}

void
IrBuilder::preBothVal(int slot, int addr, int value)
{
    emit({.op = Opcode::PreBothVal, .a = addr, .b = value,
          .slot = slot});
}

void
IrBuilder::preAddrBuf(int slot, int addr, std::int64_t size)
{
    emit({.op = Opcode::PreAddrBuf, .a = addr, .imm = size,
          .slot = slot});
}

void
IrBuilder::preDataBuf(int slot, int data_addr, std::int64_t size)
{
    emit({.op = Opcode::PreDataBuf, .a = data_addr, .imm = size,
          .slot = slot});
}

void
IrBuilder::preBothBuf(int slot, int addr, int data_addr,
                      std::int64_t size)
{
    emit({.op = Opcode::PreBothBuf, .a = addr, .b = data_addr,
          .imm = size, .slot = slot});
}

void
IrBuilder::preStartBuf(int slot)
{
    emit({.op = Opcode::PreStartBuf, .slot = slot});
}

} // namespace janus
