#include "ir/ir.hh"

#include <sstream>

#include "common/logging.hh"

namespace janus
{

bool
Function::isTerminator(Opcode op)
{
    switch (op) {
      case Opcode::Br:
      case Opcode::BrCond:
      case Opcode::Ret:
      case Opcode::Halt:
        return true;
      default:
        return false;
    }
}

std::vector<unsigned>
Function::successors(unsigned block) const
{
    const BasicBlock &bb = blocks.at(block);
    janus_assert(!bb.instrs.empty(), "empty block %u in %s", block,
                 name.c_str());
    const Instr &term = bb.instrs.back();
    switch (term.op) {
      case Opcode::Br:
        return {static_cast<unsigned>(term.imm)};
      case Opcode::BrCond:
        return {static_cast<unsigned>(term.imm),
                static_cast<unsigned>(term.imm2)};
      default:
        return {};
    }
}

const Function &
Module::fn(const std::string &name) const
{
    auto it = functions.find(name);
    janus_assert(it != functions.end(), "unknown function '%s'",
                 name.c_str());
    return it->second;
}

Function &
Module::fn(const std::string &name)
{
    auto it = functions.find(name);
    janus_assert(it != functions.end(), "unknown function '%s'",
                 name.c_str());
    return it->second;
}

bool
isPreOp(Opcode op)
{
    switch (op) {
      case Opcode::PreInit:
      case Opcode::PreAddr:
      case Opcode::PreData:
      case Opcode::PreBoth:
      case Opcode::PreBothVal:
      case Opcode::PreAddrBuf:
      case Opcode::PreDataBuf:
      case Opcode::PreBothBuf:
      case Opcode::PreStartBuf:
        return true;
      default:
        return false;
    }
}

namespace
{

void
checkReg(const Function &fn, int reg, const char *what)
{
    janus_assert(reg >= 0 && static_cast<unsigned>(reg) < fn.numRegs,
                 "%s: %s register %d out of range (numRegs %u)",
                 fn.name.c_str(), what, reg, fn.numRegs);
}

void
checkBlock(const Function &fn, std::int64_t block)
{
    janus_assert(block >= 0 &&
                     static_cast<std::size_t>(block) < fn.blocks.size(),
                 "%s: branch to unknown block %lld", fn.name.c_str(),
                 static_cast<long long>(block));
}

void
verifyFunction(const Module &module, const Function &fn)
{
    janus_assert(!fn.blocks.empty(), "%s has no blocks",
                 fn.name.c_str());
    janus_assert(fn.numArgs <= fn.numRegs,
                 "%s: more args than registers", fn.name.c_str());
    for (unsigned bi = 0; bi < fn.blocks.size(); ++bi) {
        const BasicBlock &bb = fn.blocks[bi];
        janus_assert(!bb.instrs.empty(), "%s: empty block %u",
                     fn.name.c_str(), bi);
        for (std::size_t ii = 0; ii < bb.instrs.size(); ++ii) {
            const Instr &instr = bb.instrs[ii];
            bool last = ii + 1 == bb.instrs.size();
            janus_assert(Function::isTerminator(instr.op) == last,
                         "%s block %u: terminator placement at %zu",
                         fn.name.c_str(), bi, ii);
            if (instr.dst >= 0)
                checkReg(fn, instr.dst, "dst");
            if (instr.a >= 0)
                checkReg(fn, instr.a, "a");
            if (instr.b >= 0)
                checkReg(fn, instr.b, "b");
            for (int arg : instr.args)
                checkReg(fn, arg, "call arg");
            switch (instr.op) {
              case Opcode::Br:
                checkBlock(fn, instr.imm);
                break;
              case Opcode::BrCond:
                checkBlock(fn, instr.imm);
                checkBlock(fn, instr.imm2);
                break;
              case Opcode::Call: {
                  janus_assert(module.has(instr.callee),
                               "%s calls unknown '%s'",
                               fn.name.c_str(), instr.callee.c_str());
                  const Function &callee = module.fn(instr.callee);
                  janus_assert(instr.args.size() == callee.numArgs,
                               "%s: call to %s with %zu args, wants %u",
                               fn.name.c_str(), instr.callee.c_str(),
                               instr.args.size(), callee.numArgs);
                  break;
              }
              default:
                break;
            }
        }
    }
}

const char *
opName(Opcode op)
{
    switch (op) {
      case Opcode::Const: return "const";
      case Opcode::Mov: return "mov";
      case Opcode::Add: return "add";
      case Opcode::AddI: return "addi";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::MulI: return "muli";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::ShlI: return "shli";
      case Opcode::ShrI: return "shri";
      case Opcode::CmpEq: return "cmpeq";
      case Opcode::CmpNe: return "cmpne";
      case Opcode::CmpLt: return "cmplt";
      case Opcode::CmpLe: return "cmple";
      case Opcode::Load: return "load";
      case Opcode::Store: return "store";
      case Opcode::MemCpy: return "memcpy";
      case Opcode::Br: return "br";
      case Opcode::BrCond: return "brcond";
      case Opcode::Call: return "call";
      case Opcode::Ret: return "ret";
      case Opcode::Halt: return "halt";
      case Opcode::Clwb: return "clwb";
      case Opcode::Sfence: return "sfence";
      case Opcode::TxBegin: return "txbegin";
      case Opcode::TxEnd: return "txend";
      case Opcode::PreInit: return "pre_init";
      case Opcode::PreAddr: return "pre_addr";
      case Opcode::PreData: return "pre_data";
      case Opcode::PreBoth: return "pre_both";
      case Opcode::PreBothVal: return "pre_both_val";
      case Opcode::PreAddrBuf: return "pre_addr_buf";
      case Opcode::PreDataBuf: return "pre_data_buf";
      case Opcode::PreBothBuf: return "pre_both_buf";
      case Opcode::PreStartBuf: return "pre_start_buf";
      case Opcode::Nop: return "nop";
    }
    return "?";
}

} // namespace

void
verify(const Module &module)
{
    for (const auto &[name, fn] : module.functions) {
        janus_assert(name == fn.name, "function name mismatch: %s",
                     name.c_str());
        verifyFunction(module, fn);
    }
}

std::string
toString(const Instr &instr)
{
    std::ostringstream os;
    os << opName(instr.op);
    if (instr.dst >= 0)
        os << " %" << instr.dst << " <-";
    if (instr.a >= 0)
        os << " %" << instr.a;
    if (instr.b >= 0)
        os << " %" << instr.b;
    if (instr.op == Opcode::Call) {
        os << " @" << instr.callee << "(";
        for (std::size_t i = 0; i < instr.args.size(); ++i)
            os << (i ? ", %" : "%") << instr.args[i];
        os << ")";
    }
    switch (instr.op) {
      case Opcode::Const:
      case Opcode::AddI:
      case Opcode::MulI:
      case Opcode::ShlI:
      case Opcode::ShrI:
      case Opcode::Load:
      case Opcode::Store:
      case Opcode::MemCpy:
      case Opcode::Clwb:
      case Opcode::PreAddr:
      case Opcode::PreData:
      case Opcode::PreBoth:
      case Opcode::PreAddrBuf:
      case Opcode::PreDataBuf:
      case Opcode::PreBothBuf:
        os << " #" << instr.imm;
        break;
      case Opcode::Br:
        os << " bb" << instr.imm;
        break;
      case Opcode::BrCond:
        os << " bb" << instr.imm << " bb" << instr.imm2;
        break;
      default:
        break;
    }
    if (instr.slot >= 0)
        os << " slot" << instr.slot;
    if (instr.flag)
        os << " [meta-atomic]";
    return os.str();
}

std::string
toString(const Function &fn)
{
    std::ostringstream os;
    os << "fn @" << fn.name << " (args " << fn.numArgs << ", regs "
       << fn.numRegs << ")\n";
    for (unsigned bi = 0; bi < fn.blocks.size(); ++bi) {
        os << "  bb" << bi << ":\n";
        for (const Instr &instr : fn.blocks[bi].instrs)
            os << "    " << toString(instr) << "\n";
    }
    return os.str();
}

std::string
toString(const Module &module)
{
    std::string out;
    for (const auto &[name, fn] : module.functions)
        out += toString(fn) + "\n";
    return out;
}

} // namespace janus
