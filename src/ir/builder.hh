/**
 * @file
 * IrBuilder: a small EDSL for constructing PmIR functions, in the
 * spirit of LLVM's IRBuilder. Workload kernels and the transaction
 * runtime library are written against this interface.
 */

#ifndef JANUS_IR_BUILDER_HH
#define JANUS_IR_BUILDER_HH

#include <string>
#include <vector>

#include "ir/ir.hh"

namespace janus
{

/** Builds one function at a time into a Module. */
class IrBuilder
{
  public:
    explicit IrBuilder(Module &module) : module_(module) {}

    /** Start a function; the entry block 0 is created and selected. */
    void beginFunction(const std::string &name, unsigned num_args);

    /** Finish the current function (verifies single ownership). */
    void endFunction();

    /** Register holding argument i. */
    int arg(unsigned i) const;

    /** Allocate a fresh virtual register. */
    int newReg();

    /** Create a new basic block; returns its id. */
    unsigned newBlock();

    /** Select the insertion block. */
    void setBlock(unsigned id) { curBlock_ = id; }
    unsigned currentBlock() const { return curBlock_; }

    // --- instruction emitters (return the dst register) -----------
    int constI(std::int64_t value);
    int mov(int a);
    /** Assign into an existing register (loop-carried variables). */
    void movTo(int dst, int src);
    /** Load an immediate into an existing register. */
    void constTo(int dst, std::int64_t value);
    int add(int a, int b);
    int addI(int a, std::int64_t imm);
    int sub(int a, int b);
    int mul(int a, int b);
    int mulI(int a, std::int64_t imm);
    int andOp(int a, int b);
    int orOp(int a, int b);
    int xorOp(int a, int b);
    int shlI(int a, std::int64_t imm);
    int shrI(int a, std::int64_t imm);
    int cmpEq(int a, int b);
    int cmpNe(int a, int b);
    int cmpLt(int a, int b);
    int cmpLe(int a, int b);
    int load(int addr, std::int64_t offset = 0);
    void store(int addr, int value, std::int64_t offset = 0);
    void memCpy(int dst_addr, int src_addr, std::int64_t bytes);
    /** MemCpy with the byte count taken from a register. */
    void memCpyR(int dst_addr, int src_addr, int bytes_reg);
    void br(unsigned block);
    void brCond(int cond, unsigned if_true, unsigned if_false);
    int call(const std::string &callee, const std::vector<int> &args);
    void ret(int value = -1);
    void halt();
    void clwb(int addr, std::int64_t size, bool meta_atomic = false);
    /** Clwb with the byte count taken from a register. */
    void clwbR(int addr, int size_reg, bool meta_atomic = false);
    void sfence();
    void txBegin();
    void txEnd();

    // --- Janus interface -------------------------------------------
    /** PRE_INIT: allocate a pre-object slot. */
    int preInit();
    void preAddr(int slot, int addr, std::int64_t size);
    void preData(int slot, int data_addr, std::int64_t size);
    void preBoth(int slot, int addr, int data_addr, std::int64_t size);
    /** Variants with the byte count taken from a register (the size
     *  register is carried in the instruction's dst field). */
    void preAddrR(int slot, int addr, int size_reg);
    void preDataR(int slot, int data_addr, int size_reg);
    void preBothR(int slot, int addr, int data_addr, int size_reg);
    void preBothVal(int slot, int addr, int value);
    void preAddrBuf(int slot, int addr, std::int64_t size);
    void preDataBuf(int slot, int data_addr, std::int64_t size);
    void preBothBuf(int slot, int addr, int data_addr,
                    std::int64_t size);
    void preStartBuf(int slot);

  private:
    Instr &emit(Instr instr);

    Module &module_;
    Function *fn_ = nullptr;
    unsigned curBlock_ = 0;
    int nextSlot_ = 0;
};

} // namespace janus

#endif // JANUS_IR_BUILDER_HH
