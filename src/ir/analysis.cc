#include "ir/analysis.hh"

#include <algorithm>
#include <functional>

#include "common/logging.hh"

namespace janus
{

CfgInfo::CfgInfo(const Function &fn)
{
    const unsigned n = static_cast<unsigned>(fn.blocks.size());
    preds_.resize(n);
    rpoIndex_.assign(n, -1);
    idom_.assign(n, -1);
    inLoop_.assign(n, false);

    for (unsigned b = 0; b < n; ++b)
        for (unsigned s : fn.successors(b))
            preds_[s].push_back(b);

    // Postorder DFS from the entry, then reverse.
    std::vector<unsigned> postorder;
    std::vector<char> visited(n, 0);
    std::function<void(unsigned)> dfs = [&](unsigned b) {
        visited[b] = 1;
        for (unsigned s : fn.successors(b))
            if (!visited[s])
                dfs(s);
        postorder.push_back(b);
    };
    dfs(0);
    rpo_.assign(postorder.rbegin(), postorder.rend());
    for (unsigned i = 0; i < rpo_.size(); ++i)
        rpoIndex_[rpo_[i]] = static_cast<int>(i);

    // Cooper-Harvey-Kennedy iterative dominators.
    idom_[0] = 0;
    auto intersect = [&](int b1, int b2) {
        while (b1 != b2) {
            while (rpoIndex_[b1] > rpoIndex_[b2])
                b1 = idom_[b1];
            while (rpoIndex_[b2] > rpoIndex_[b1])
                b2 = idom_[b2];
        }
        return b1;
    };
    bool changed = true;
    while (changed) {
        changed = false;
        for (unsigned b : rpo_) {
            if (b == 0)
                continue;
            int new_idom = -1;
            for (unsigned p : preds_[b]) {
                if (rpoIndex_[p] < 0 || idom_[p] < 0)
                    continue;
                new_idom = new_idom < 0
                               ? static_cast<int>(p)
                               : intersect(new_idom,
                                           static_cast<int>(p));
            }
            if (new_idom >= 0 && idom_[b] != new_idom) {
                idom_[b] = new_idom;
                changed = true;
            }
        }
    }

    // Natural loops: a back edge u -> v exists when v dominates u.
    for (unsigned u = 0; u < n; ++u) {
        if (rpoIndex_[u] < 0)
            continue;
        for (unsigned v : fn.successors(u)) {
            if (!dominates(v, u))
                continue;
            ++numLoops_;
            // Loop body: v plus everything that reaches u without
            // passing through v.
            inLoop_[v] = true;
            std::vector<unsigned> work{u};
            while (!work.empty()) {
                unsigned b = work.back();
                work.pop_back();
                if (inLoop_[b])
                    continue;
                inLoop_[b] = true;
                for (unsigned p : preds_[b])
                    if (!inLoop_[p])
                        work.push_back(p);
            }
        }
    }
}

bool
CfgInfo::dominates(unsigned a, unsigned b) const
{
    janus_assert(rpoIndex_.at(a) >= 0 && rpoIndex_.at(b) >= 0,
                 "dominance query on unreachable block");
    // Walk the dominator tree upward from b.
    unsigned cur = b;
    for (;;) {
        if (cur == a)
            return true;
        if (cur == 0)
            return false;
        cur = static_cast<unsigned>(idom_.at(cur));
    }
}

} // namespace janus
