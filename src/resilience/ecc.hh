/**
 * @file
 * SECDED ECC model for NVM cache lines: Hamming(72,64) per 64-bit
 * word — the code DDR4/DDR5 and PCM DIMM controllers actually ship —
 * with an overall-parity bit extending the Hamming distance to 4.
 * Each 64-byte line stores eight data words plus eight check bytes.
 *
 * This is a real code, not a coin flip: the syndrome is recomputed
 * from the stored (possibly corrupted) bytes on every decode, single
 * bit errors are located and corrected, and any two-bit error in a
 * word is detected as uncorrectable. The resilience layer uses it to
 * classify every device access as clean / corrected / uncorrectable.
 */

#ifndef JANUS_RESILIENCE_ECC_HH
#define JANUS_RESILIENCE_ECC_HH

#include <array>
#include <cstdint>

#include "common/cacheline.hh"
#include "common/types.hh"

namespace janus
{

/** Outcome class of one ECC decode. */
enum class EccStatus : std::uint8_t
{
    Clean,         ///< syndrome zero, parity consistent
    Corrected,     ///< single-bit error located and repaired
    Uncorrectable, ///< double-bit (or aliased multi-bit) error
};

/**
 * The stored form of one line on the device: 64 data bytes plus one
 * Hamming(72,64) check byte per 64-bit word. 576 bits total; fault
 * injection addresses bits [0, 512) as data and [512, 576) as check
 * storage, so stuck-at cells can land on the ECC bits themselves.
 */
struct LineCodeword
{
    std::array<std::uint8_t, lineBytes> data{};
    std::array<std::uint8_t, lineBytes / 8> check{};

    /** Total number of addressable cells (data + check bits). */
    static constexpr unsigned bits = 8 * lineBytes + 8 * (lineBytes / 8);

    /** XOR one cell of the codeword (transient flip). */
    void flipBit(unsigned bit);

    /** Force one cell of the codeword to a value (stuck-at cell). */
    void forceBit(unsigned bit, bool value);

    /** Read one cell of the codeword. */
    bool bit(unsigned bit) const;
};

/** Result of decoding one stored line. */
struct LineDecode
{
    EccStatus status = EccStatus::Clean;
    /** Words whose single-bit error was corrected. */
    unsigned correctedWords = 0;
    /** Words that decoded as uncorrectable. */
    unsigned uncorrectableWords = 0;
    /** The corrected data (valid unless status is Uncorrectable). */
    CacheLine data;
};

/** Hamming(72,64)+parity check byte for one data word. */
std::uint8_t eccEncodeWord(std::uint64_t word);

/**
 * Decode one (word, check) pair: recompute the syndrome over the
 * stored bits, locate and correct a single-bit error (data, check or
 * parity position), and flag double errors.
 *
 * @param word  stored data word (corrected in place when possible)
 */
EccStatus eccDecodeWord(std::uint64_t &word, std::uint8_t check);

/** Encode a full line into its stored codeword. */
LineCodeword eccEncodeLine(const CacheLine &line);

/** Decode a full stored codeword; per-word status is aggregated to
 *  the worst class across the eight words. */
LineDecode eccDecodeLine(const LineCodeword &stored);

} // namespace janus

#endif // JANUS_RESILIENCE_ECC_HH
