/**
 * @file
 * BadLineMap: permanent remapping of failed device frames to a spare
 * region, the NVM analogue of a disk's reserved-sector pool. The map
 * composes with Start-Gap wear leveling: the leveler rotates logical
 * lines over frames, and the map then redirects any frame that has
 * exceeded its retry budget — including spare frames that later go
 * bad themselves (remap chains are followed to the live frame).
 */

#ifndef JANUS_RESILIENCE_BAD_LINE_MAP_HH
#define JANUS_RESILIENCE_BAD_LINE_MAP_HH

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/types.hh"

namespace janus
{

/** The spare-region remap table. */
class BadLineMap
{
  public:
    /**
     * @param spare_base   first line address of the spare region;
     *                     must be disjoint from every data region
     * @param spare_lines  frames available for remapping
     */
    BadLineMap(Addr spare_base, std::uint64_t spare_lines);

    /**
     * Follow the remap chain from a device frame to the frame that
     * actually holds the data. Identity for unmapped frames.
     */
    Addr translate(Addr frame) const;

    /**
     * Retire @p frame and allocate a spare for it.
     * @return the spare frame, or nullopt when the pool is exhausted
     *         (the caller keeps using the bad frame and must account
     *         the potential data loss).
     */
    std::optional<Addr> remap(Addr frame);

    bool isRemapped(Addr frame) const
    {
        return remap_.find(frame) != remap_.end();
    }

    std::uint64_t remappedLines() const
    {
        return static_cast<std::uint64_t>(remap_.size());
    }

    std::uint64_t sparesUsed() const { return nextSpare_; }
    std::uint64_t sparesLeft() const { return spareLines_ - nextSpare_; }

  private:
    Addr spareBase_;
    std::uint64_t spareLines_;
    std::uint64_t nextSpare_ = 0;
    /** bad frame -> replacement frame (chains allowed). */
    std::unordered_map<Addr, Addr> remap_;
};

} // namespace janus

#endif // JANUS_RESILIENCE_BAD_LINE_MAP_HH
