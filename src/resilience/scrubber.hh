/**
 * @file
 * Idle-cycle integrity scrubber: when the BMO watchdog degrades the
 * write path, per-write Merkle verification is taken off the persist
 * critical path and queued here instead. The scrubber models one
 * background verification engine that walks the dirty Merkle
 * subtrees (the leaves of recently persisted lines) whenever the
 * controller is otherwise idle: each queued leaf occupies the engine
 * for a fixed service latency, and the queue drains in FIFO order in
 * simulated time. The verification itself is real — the backend's
 * attributed MAC + Merkle-path check runs on the stored bytes.
 */

#ifndef JANUS_RESILIENCE_SCRUBBER_HH
#define JANUS_RESILIENCE_SCRUBBER_HH

#include <cstdint>
#include <deque>

#include "bmo/backend_state.hh"
#include "common/types.hh"

namespace janus
{

/** The background Merkle scrubber. */
class Scrubber
{
  public:
    /** @param per_leaf  background service time per queued leaf */
    explicit Scrubber(Tick per_leaf) : perLeaf_(per_leaf) {}

    /** Queue a line whose integrity check was deferred. */
    void enqueue(Addr line_addr, Tick now);

    /**
     * Complete every queued verification whose background service
     * finished by @p now, running the real MAC + Merkle-path check.
     */
    void advance(Tick now, const BmoBackendState &backend);

    /** Finish all outstanding verifications (end of run). */
    void drain(const BmoBackendState &backend);

    std::size_t pending() const { return queue_.size(); }
    std::size_t peakPending() const { return peakPending_; }
    std::uint64_t queued() const { return queued_; }
    std::uint64_t scrubbed() const { return scrubbed_; }
    /** Deferred verifications that failed the MAC/path check. */
    std::uint64_t failures() const { return failures_; }

  private:
    struct Item
    {
        Addr line;
        Tick readyAt;
    };

    void verify(Addr line, const BmoBackendState &backend);

    Tick perLeaf_;
    Tick busyUntil_ = 0;
    std::deque<Item> queue_;
    std::size_t peakPending_ = 0;
    std::uint64_t queued_ = 0;
    std::uint64_t scrubbed_ = 0;
    std::uint64_t failures_ = 0;
};

} // namespace janus

#endif // JANUS_RESILIENCE_SCRUBBER_HH
