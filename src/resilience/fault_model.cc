#include "resilience/fault_model.hh"

#include <algorithm>

namespace janus
{

DeviceFaultModel::DeviceFaultModel(const FaultModelConfig &config,
                                   std::uint64_t seed)
    : config_(config), rng_(seed)
{
}

double
DeviceFaultModel::scaled(double base, Addr frame,
                         std::uint64_t external_wear) const
{
    if (base <= 0)
        return 0;
    auto it = writes_.find(frame);
    std::uint64_t wear =
        external_wear + (it == writes_.end() ? 0 : it->second);
    double rate =
        base * (1.0 + static_cast<double>(wear) * config_.wearFactor);
    return std::min(rate, 1.0);
}

unsigned
DeviceFaultModel::onWrite(Addr frame, std::uint64_t external_wear)
{
    double rate = scaled(config_.stuckCellRate, frame, external_wear);
    ++writes_[frame];
    if (rate <= 0 || !rng_.chance(rate))
        return 0;
    std::vector<StuckCell> &cells = stuck_[frame];
    StuckCell cell;
    cell.bit = static_cast<std::uint16_t>(
        rng_.below(LineCodeword::bits));
    cell.value = rng_.chance(0.5);
    // A cell can only fail once; re-drawing the same position models
    // no additional damage.
    auto same = std::find_if(cells.begin(), cells.end(),
                             [&](const StuckCell &c) {
                                 return c.bit == cell.bit;
                             });
    if (same != cells.end())
        return 0;
    cells.push_back(cell);
    ++stuckCells_;
    return 1;
}

unsigned
DeviceFaultModel::applyStuck(Addr frame, LineCodeword &cw) const
{
    auto it = stuck_.find(frame);
    if (it == stuck_.end())
        return 0;
    unsigned altered = 0;
    for (const StuckCell &cell : it->second) {
        if (cw.bit(cell.bit) != cell.value) {
            cw.forceBit(cell.bit, cell.value);
            ++altered;
        }
    }
    return altered;
}

unsigned
DeviceFaultModel::applyTransient(Addr frame,
                                 std::uint64_t external_wear,
                                 LineCodeword &cw)
{
    double rate =
        scaled(config_.transientFlipRate, frame, external_wear);
    if (rate <= 0 || !rng_.chance(rate))
        return 0;
    unsigned flips = 0;
    do {
        cw.flipBit(static_cast<unsigned>(
            rng_.below(LineCodeword::bits)));
        ++flips;
    } while (flips < config_.maxFlipsPerAccess &&
             rng_.chance(config_.extraFlipRate));
    transientFlips_ += flips;
    return flips;
}

const std::vector<StuckCell> &
DeviceFaultModel::stuckCells(Addr frame) const
{
    static const std::vector<StuckCell> empty;
    auto it = stuck_.find(frame);
    return it == stuck_.end() ? empty : it->second;
}

std::uint64_t
DeviceFaultModel::frameWrites(Addr frame) const
{
    auto it = writes_.find(frame);
    return it == writes_.end() ? 0 : it->second;
}

} // namespace janus
