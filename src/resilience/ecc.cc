#include "resilience/ecc.hh"

#include <bit>
#include <cstring>

#include "common/logging.hh"

namespace janus
{

namespace
{

/**
 * Hamming codeword positions run 1..71. Positions that are powers of
 * two hold the seven check bits c0..c6; the remaining 64 positions
 * hold the data bits in ascending order. The tables below map data
 * bit index -> codeword position and back; they are built once at
 * startup (constexpr would work too, but a lambda-initialised static
 * keeps the construction readable).
 */
struct HammingTables
{
    std::array<std::uint8_t, 64> dataPos;  ///< data bit i -> position
    std::array<std::int8_t, 128> posToData; ///< position -> data bit
    /** For each check bit j, the mask of data bits it covers. */
    std::array<std::uint64_t, 7> coverMask;

    HammingTables()
    {
        posToData.fill(-1);
        unsigned data_bit = 0;
        for (unsigned pos = 1; pos <= 127 && data_bit < 64; ++pos) {
            if ((pos & (pos - 1)) == 0)
                continue; // power of two: a check-bit position
            dataPos[data_bit] = static_cast<std::uint8_t>(pos);
            posToData[pos] = static_cast<std::int8_t>(data_bit);
            ++data_bit;
        }
        coverMask.fill(0);
        for (unsigned i = 0; i < 64; ++i)
            for (unsigned j = 0; j < 7; ++j)
                if (dataPos[i] & (1u << j))
                    coverMask[j] |= std::uint64_t(1) << i;
    }
};

const HammingTables &
tables()
{
    static const HammingTables t;
    return t;
}

/** The seven Hamming check bits of a data word. */
std::uint8_t
hammingBits(std::uint64_t word)
{
    const HammingTables &t = tables();
    std::uint8_t check = 0;
    for (unsigned j = 0; j < 7; ++j)
        check |= static_cast<std::uint8_t>(
            (std::popcount(word & t.coverMask[j]) & 1) << j);
    return check;
}

} // namespace

std::uint8_t
eccEncodeWord(std::uint64_t word)
{
    std::uint8_t check = hammingBits(word);
    // Overall even parity over data + all eight check-byte bits: the
    // parity bit is chosen so the total population count is even.
    unsigned ones = std::popcount(word) + std::popcount(unsigned(check));
    if (ones & 1)
        check |= 0x80;
    return check;
}

EccStatus
eccDecodeWord(std::uint64_t &word, std::uint8_t check)
{
    const HammingTables &t = tables();
    std::uint8_t syndrome =
        static_cast<std::uint8_t>((hammingBits(word) ^ check) & 0x7f);
    bool parity_error =
        ((std::popcount(word) + std::popcount(unsigned(check))) & 1) != 0;

    if (syndrome == 0)
        // No located error. A lone parity mismatch means the parity
        // bit itself flipped: the data is intact.
        return parity_error ? EccStatus::Corrected : EccStatus::Clean;

    if (!parity_error)
        // A nonzero syndrome with consistent overall parity is the
        // signature of a double-bit error: detected, not correctable.
        return EccStatus::Uncorrectable;

    if ((syndrome & (syndrome - 1)) == 0)
        // The error is in a check-bit position; data is intact.
        return EccStatus::Corrected;

    std::int8_t data_bit = syndrome < t.posToData.size()
                               ? t.posToData[syndrome]
                               : std::int8_t(-1);
    if (data_bit < 0)
        // Syndrome aliases outside the codeword: a multi-bit error.
        return EccStatus::Uncorrectable;

    word ^= std::uint64_t(1) << data_bit;
    return EccStatus::Corrected;
}

void
LineCodeword::flipBit(unsigned b)
{
    janus_assert(b < bits, "codeword bit %u out of range", b);
    if (b < 8 * lineBytes)
        data[b / 8] ^= static_cast<std::uint8_t>(1u << (b % 8));
    else {
        unsigned c = b - 8 * lineBytes;
        check[c / 8] ^= static_cast<std::uint8_t>(1u << (c % 8));
    }
}

void
LineCodeword::forceBit(unsigned b, bool value)
{
    if (bit(b) != value)
        flipBit(b);
}

bool
LineCodeword::bit(unsigned b) const
{
    janus_assert(b < bits, "codeword bit %u out of range", b);
    if (b < 8 * lineBytes)
        return (data[b / 8] >> (b % 8)) & 1;
    unsigned c = b - 8 * lineBytes;
    return (check[c / 8] >> (c % 8)) & 1;
}

LineCodeword
eccEncodeLine(const CacheLine &line)
{
    LineCodeword cw;
    std::memcpy(cw.data.data(), line.data(), lineBytes);
    for (unsigned w = 0; w < lineBytes / 8; ++w)
        cw.check[w] = eccEncodeWord(line.word(w * 8));
    return cw;
}

LineDecode
eccDecodeLine(const LineCodeword &stored)
{
    LineDecode result;
    std::memcpy(result.data.data(), stored.data.data(), lineBytes);
    for (unsigned w = 0; w < lineBytes / 8; ++w) {
        std::uint64_t word = result.data.word(w * 8);
        EccStatus status = eccDecodeWord(word, stored.check[w]);
        switch (status) {
          case EccStatus::Clean:
            break;
          case EccStatus::Corrected:
            ++result.correctedWords;
            result.data.setWord(w * 8, word);
            break;
          case EccStatus::Uncorrectable:
            ++result.uncorrectableWords;
            break;
        }
    }
    if (result.uncorrectableWords > 0)
        result.status = EccStatus::Uncorrectable;
    else if (result.correctedWords > 0)
        result.status = EccStatus::Corrected;
    return result;
}

} // namespace janus
