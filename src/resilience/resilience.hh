/**
 * @file
 * The online resilience layer (runtime counterpart of the offline
 * fault-audit subsystem in src/fault/): a seeded device fault model,
 * SECDED ECC per cache line, a retry policy with exponential backoff
 * in simulated time, permanent bad-line remapping to a spare region,
 * and the graceful-degradation machinery for the BMO pipeline
 * (watchdog, dedup bypass, IRB ECC faults, deferred integrity
 * scrubbing).
 *
 * Determinism contract: with `enabled == false` the layer must be
 * invisible — no RNG draws, no timing changes, every benchmark
 * metric bit-identical to a build without the layer. With faults
 * enabled, a given seed reproduces the exact fault sequence.
 */

#ifndef JANUS_RESILIENCE_RESILIENCE_HH
#define JANUS_RESILIENCE_RESILIENCE_HH

#include <cstdint>
#include <unordered_map>

#include "common/cacheline.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/types.hh"
#include "resilience/bad_line_map.hh"
#include "resilience/ecc.hh"
#include "resilience/fault_model.hh"
#include "resilience/scrubber.hh"

namespace janus
{

class BmoBackendState;

/** Configuration of the whole resilience layer. */
struct ResilienceConfig
{
    /** Master gate. Off (the default) means the layer is inert and
     *  the simulation is bit-identical to one without it. */
    bool enabled = false;

    /** Seed for both the device fault model and the layer's own
     *  draws (IRB ECC faults); separate streams are derived. */
    std::uint64_t seed = 1;

    /** Device fault rates (transient flips, stuck-at cells, wear). */
    FaultModelConfig faults;

    // --- retry / remap ---------------------------------------------
    /** Retries before a frame is retired (reads: before the careful
     *  final sensing pass). */
    unsigned retryBudget = 4;
    /** First retry backoff; doubles per attempt (exponential). */
    Tick retryBackoffBase = 50 * ticks::ns;
    /** Base line address of the spare region. Must be disjoint from
     *  data (< 2^40) and metadata (2^40) regions. */
    Addr spareBase = Addr(1) << 41;
    /** Spare frames available for bad-line remapping. */
    std::uint64_t spareLines = 4096;

    // --- graceful BMO degradation ----------------------------------
    /** Dedup fingerprint-table size beyond which dedup is bypassed
     *  (table pressure). 0 = never bypass. */
    std::uint64_t dedupTableLimit = 0;
    /** Watchdog: per-write BMO latency above this budget trips
     *  degraded mode. 0 = watchdog disabled. */
    Tick watchdogBudget = 0;
    /** How long a watchdog trip keeps the pipeline degraded. */
    Tick degradedWindow = 10 * ticks::us;
    /** Integrity sub-op issue cost while degraded (the real
     *  verification runs in the background scrubber instead). */
    Tick deferredIntegrityLatency = 1 * ticks::ns;
    /** Background scrubber service time per deferred leaf. */
    Tick scrubPerLeaf = 100 * ticks::ns;

    // --- IRB ECC faults --------------------------------------------
    /** Probability a consumed IRB entry fails its ECC check. */
    double irbEccFaultRate = 0.0;
    /** How long pre-execution stays disabled after an IRB fault. */
    Tick irbEccDisableWindow = 5 * ticks::us;

    // --- warning rate limiting -------------------------------------
    unsigned warnsPerInterval = 4;
    Tick warnInterval = 100 * ticks::us;
};

/**
 * Counters of the resilience layer. Emitted in stats / bench JSON
 * even when the layer is disabled (all zero then) so the schema is
 * stable across configurations.
 */
struct ResilienceCounters
{
    // fault injection
    std::uint64_t transientFlipsInjected = 0;
    std::uint64_t stuckCellsInjected = 0;
    // read path
    std::uint64_t cleanReads = 0;
    std::uint64_t correctedReads = 0;
    std::uint64_t uncorrectableReads = 0;
    std::uint64_t readRetries = 0;
    // write path
    std::uint64_t correctedWrites = 0;
    std::uint64_t writeVerifyFailures = 0;
    std::uint64_t writeRetries = 0;
    // remapping
    std::uint64_t remaps = 0;
    std::uint64_t spareExhausted = 0;
    /** Lines left unprotected after spare exhaustion — the survival
     *  criterion of the chaos campaigns is that this stays zero. */
    std::uint64_t dataLossLines = 0;
    // degradation
    std::uint64_t irbEccFaults = 0;
    std::uint64_t preExecDisabledWrites = 0;
    std::uint64_t dedupBypasses = 0;
    std::uint64_t watchdogTrips = 0;
    Tick degradedTicks = 0;
    Tick retryBackoffTicks = 0;
    // scrubbing
    std::uint64_t scrubQueued = 0;
    std::uint64_t scrubbed = 0;
    std::uint64_t scrubFailures = 0;
};

/** Outcome of programming one line through the fault model. */
struct MediaWriteResult
{
    /** Frame finally holding the data (spare frame if remapped). */
    Addr frame = 0;
    /** Retry backoff added to the write's persist latency. */
    Tick delay = 0;
    /** The original frame was retired to the spare region. */
    bool remapped = false;
};

/**
 * The runtime resilience manager: owns the fault model, the ECC
 * codeword store, the bad-line map, the retry policy and the
 * background scrubber. The memory controller consults it on every
 * media access when the layer is enabled.
 */
class ResilienceManager
{
  public:
    explicit ResilienceManager(const ResilienceConfig &config);

    const ResilienceConfig &config() const { return config_; }

    /** Bad-line remap composition (after Start-Gap translation). */
    Addr translate(Addr frame) const
    {
        return badLines_.translate(frame);
    }

    /**
     * Program one line: sample wear-out damage, encode, write-verify
     * against the frame's stuck cells, retry with exponential
     * backoff, and retire the frame to a spare when the retry budget
     * is exhausted.
     *
     * @param frame          device frame (post Start-Gap + remap)
     * @param data           plaintext-side line content being stored
     * @param external_wear  Start-Gap frame write count
     * @param now            simulated tick (warn rate limiting)
     */
    MediaWriteResult mediaWrite(Addr frame, const CacheLine &data,
                                std::uint64_t external_wear, Tick now);

    /**
     * Check one read against the fault model: sample transient
     * noise, decode, and retry (with backoff) on an uncorrectable
     * word. The final attempt is a careful sensing pass without
     * transient noise, so a read of a write-verified frame always
     * succeeds eventually.
     *
     * @return extra read latency from retries (0 on a clean read or
     *         on frames never programmed through the model).
     */
    Tick mediaReadCheck(Addr frame, std::uint64_t external_wear,
                        Tick now);

    /** Seeded draw: does this IRB consume hit an ECC fault? */
    bool maybeIrbEccFault();

    /** Should this write bypass dedup (fingerprint-table pressure)? */
    bool dedupBypass(std::uint64_t table_size);

    /** Account a write skipped past the IRB while pre-execution is
     *  disabled. */
    void notePreExecDisabled() { ++counters_.preExecDisabledWrites; }

    /** Watchdog: observe one write's BMO-stage latency; over-budget
     *  latency trips (or extends) the degraded window. */
    void noteBmoLatency(Tick arrival, Tick bmo_done);

    /** Is the BMO pipeline in degraded mode at @p now? */
    bool degraded(Tick now) const { return now < degradedUntil_; }

    // --- background integrity scrubbing ----------------------------
    void scrubEnqueue(Addr line_addr, Tick now)
    {
        scrubber_.enqueue(line_addr, now);
    }

    void scrubAdvance(Tick now, const BmoBackendState &backend)
    {
        scrubber_.advance(now, backend);
    }

    /** End of run: finish all outstanding deferred verifications. */
    void scrubDrain(const BmoBackendState &backend)
    {
        scrubber_.drain(backend);
    }

    const DeviceFaultModel &faults() const { return faults_; }
    const BadLineMap &badLines() const { return badLines_; }
    const Scrubber &scrubber() const { return scrubber_; }

    /** Snapshot of every counter (component counters folded in). */
    ResilienceCounters counters() const;

  private:
    Tick backoff(unsigned attempt) const
    {
        return config_.retryBackoffBase << attempt;
    }

    ResilienceConfig config_;
    DeviceFaultModel faults_;
    BadLineMap badLines_;
    Scrubber scrubber_;
    /** Layer-local draws (IRB ECC faults); a stream separate from
     *  the device fault model so the two fault sequences do not
     *  perturb each other. */
    Rng rng_;
    RateLimitedWarn limiter_;
    /** Stored (post-stuck-cell) codeword of every programmed frame. */
    std::unordered_map<Addr, LineCodeword> store_;
    Tick degradedUntil_ = 0;
    ResilienceCounters counters_;
};

} // namespace janus

#endif // JANUS_RESILIENCE_RESILIENCE_HH
