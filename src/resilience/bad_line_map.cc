#include "resilience/bad_line_map.hh"

#include "common/logging.hh"

namespace janus
{

BadLineMap::BadLineMap(Addr spare_base, std::uint64_t spare_lines)
    : spareBase_(spare_base), spareLines_(spare_lines)
{
    janus_assert(lineOffset(spare_base) == 0,
                 "spare region must be line aligned");
}

Addr
BadLineMap::translate(Addr frame) const
{
    // Chains are short (a frame is remapped at most once, and only a
    // spare that itself went bad extends the chain), but follow them
    // fully so composition with Start-Gap stays a pure function.
    auto it = remap_.find(frame);
    while (it != remap_.end()) {
        frame = it->second;
        it = remap_.find(frame);
    }
    return frame;
}

std::optional<Addr>
BadLineMap::remap(Addr frame)
{
    janus_assert(!isRemapped(frame),
                 "frame %#llx is already remapped",
                 static_cast<unsigned long long>(frame));
    if (nextSpare_ >= spareLines_)
        return std::nullopt;
    Addr spare = spareBase_ + (nextSpare_++ << lineShift);
    remap_[frame] = spare;
    return spare;
}

} // namespace janus
