#include "resilience/scrubber.hh"

#include <algorithm>

namespace janus
{

void
Scrubber::enqueue(Addr line_addr, Tick now)
{
    Tick start = std::max(busyUntil_, now);
    busyUntil_ = start + perLeaf_;
    queue_.push_back({line_addr, busyUntil_});
    ++queued_;
    peakPending_ = std::max(peakPending_, queue_.size());
}

void
Scrubber::advance(Tick now, const BmoBackendState &backend)
{
    while (!queue_.empty() && queue_.front().readyAt <= now) {
        verify(queue_.front().line, backend);
        queue_.pop_front();
    }
}

void
Scrubber::drain(const BmoBackendState &backend)
{
    while (!queue_.empty()) {
        verify(queue_.front().line, backend);
        queue_.pop_front();
    }
}

void
Scrubber::verify(Addr line, const BmoBackendState &backend)
{
    IntegrityVerdict verdict = backend.verifyLineIntegrity(line);
    ++scrubbed_;
    if (!verdict.ok())
        ++failures_;
}

} // namespace janus
