#include "resilience/resilience.hh"

#include <algorithm>

namespace janus
{

namespace
{

/** SplitMix64 step: derive independent seed streams from one seed. */
std::uint64_t
deriveSeed(std::uint64_t seed, std::uint64_t stream)
{
    std::uint64_t z = seed + stream * 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

} // namespace

ResilienceManager::ResilienceManager(const ResilienceConfig &config)
    : config_(config),
      faults_(config.faults, deriveSeed(config.seed, 1)),
      badLines_(config.spareBase, config.spareLines),
      scrubber_(config.scrubPerLeaf),
      rng_(deriveSeed(config.seed, 2)),
      limiter_(config.warnsPerInterval, config.warnInterval)
{
}

MediaWriteResult
ResilienceManager::mediaWrite(Addr frame, const CacheLine &data,
                              std::uint64_t external_wear, Tick now)
{
    MediaWriteResult res;
    res.frame = frame;

    // One program operation may stick a new cell of the frame.
    faults_.onWrite(frame, external_wear);

    LineCodeword encoded = eccEncodeLine(data);
    unsigned attempt = 0;
    for (;;) {
        // Program + write-verify: the frame's stuck cells override
        // the programmed bits; read back and check the decode.
        LineCodeword cw = encoded;
        faults_.applyStuck(res.frame, cw);
        LineDecode dec = eccDecodeLine(cw);
        if (dec.status != EccStatus::Uncorrectable) {
            if (dec.status == EccStatus::Corrected)
                ++counters_.correctedWrites;
            store_[res.frame] = cw;
            return res;
        }

        ++counters_.writeVerifyFailures;
        if (attempt < config_.retryBudget) {
            // Stuck-at damage is permanent so a re-program pulse
            // cannot fix it, but a real controller does not know
            // that: the budgeted retries (and their backoff cost)
            // are modeled faithfully.
            Tick wait = backoff(attempt);
            res.delay += wait;
            counters_.retryBackoffTicks += wait;
            ++counters_.writeRetries;
            ++attempt;
            continue;
        }

        // Retry budget exhausted: the frame is retired for good.
        std::optional<Addr> spare = badLines_.remap(res.frame);
        if (!spare) {
            ++counters_.spareExhausted;
            ++counters_.dataLossLines;
            limiter_.warn(
                now,
                "resilience: spare pool exhausted; frame %#llx "
                "stays uncorrectable",
                static_cast<unsigned long long>(res.frame));
            store_[res.frame] = cw;
            return res;
        }
        ++counters_.remaps;
        limiter_.warn(
            now,
            "resilience: frame %#llx retired to spare %#llx after "
            "%u retries",
            static_cast<unsigned long long>(res.frame),
            static_cast<unsigned long long>(*spare), attempt);
        res.frame = *spare;
        res.remapped = true;
        // Program the spare: a fresh frame, but it wears too.
        faults_.onWrite(res.frame, 0);
        attempt = 0;
    }
}

Tick
ResilienceManager::mediaReadCheck(Addr frame,
                                  std::uint64_t external_wear,
                                  Tick now)
{
    auto it = store_.find(frame);
    if (it == store_.end())
        return 0; // never programmed through the fault model

    Tick delay = 0;
    for (unsigned attempt = 0;; ++attempt) {
        LineCodeword cw = it->second;
        // The last budgeted attempt is a careful (slow, low-noise)
        // sensing pass: no transient noise is sampled, so a frame
        // that passed write-verify always decodes eventually. Zero
        // silent data loss is structural, not statistical.
        bool careful = attempt >= config_.retryBudget;
        if (!careful)
            faults_.applyTransient(frame, external_wear, cw);
        LineDecode dec = eccDecodeLine(cw);
        if (dec.status == EccStatus::Clean) {
            ++counters_.cleanReads;
            return delay;
        }
        if (dec.status == EccStatus::Corrected) {
            ++counters_.correctedReads;
            return delay;
        }
        ++counters_.uncorrectableReads;
        if (careful) {
            // Only reachable when the *stored* codeword is bad —
            // i.e. a frame left unprotected by spare exhaustion.
            limiter_.warn(
                now,
                "resilience: uncorrectable read of frame %#llx "
                "(stored codeword damaged)",
                static_cast<unsigned long long>(frame));
            return delay;
        }
        Tick wait = backoff(attempt);
        delay += wait;
        counters_.retryBackoffTicks += wait;
        ++counters_.readRetries;
    }
}

bool
ResilienceManager::maybeIrbEccFault()
{
    if (config_.irbEccFaultRate <= 0)
        return false;
    if (!rng_.chance(config_.irbEccFaultRate))
        return false;
    ++counters_.irbEccFaults;
    return true;
}

bool
ResilienceManager::dedupBypass(std::uint64_t table_size)
{
    if (config_.dedupTableLimit == 0 ||
        table_size < config_.dedupTableLimit)
        return false;
    ++counters_.dedupBypasses;
    return true;
}

void
ResilienceManager::noteBmoLatency(Tick arrival, Tick bmo_done)
{
    if (config_.watchdogBudget == 0)
        return;
    if (bmo_done - arrival <= config_.watchdogBudget)
        return;
    Tick until = bmo_done + config_.degradedWindow;
    if (until <= degradedUntil_)
        return;
    if (degradedUntil_ < bmo_done)
        ++counters_.watchdogTrips;
    counters_.degradedTicks +=
        until - std::max(degradedUntil_, bmo_done);
    degradedUntil_ = until;
}

ResilienceCounters
ResilienceManager::counters() const
{
    ResilienceCounters c = counters_;
    c.transientFlipsInjected = faults_.transientFlipsInjected();
    c.stuckCellsInjected = faults_.stuckCellsInjected();
    c.scrubQueued = scrubber_.queued();
    c.scrubbed = scrubber_.scrubbed();
    c.scrubFailures = scrubber_.failures();
    return c;
}

} // namespace janus
