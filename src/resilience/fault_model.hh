/**
 * @file
 * Seeded device fault model for PCM-class NVM: transient read noise
 * (thermal drift, read disturb) and permanent stuck-at cells
 * (wear-out). Fault probabilities scale with per-frame wear — both
 * the model's own write counts and the Start-Gap frame-write
 * counters the memory controller feeds in — so heavily written
 * frames degrade first, exactly the coupling wear leveling exists to
 * spread out.
 *
 * All randomness comes from one explicitly seeded Rng, drawn in
 * simulated access order; a given seed reproduces the exact fault
 * sequence run after run.
 */

#ifndef JANUS_RESILIENCE_FAULT_MODEL_HH
#define JANUS_RESILIENCE_FAULT_MODEL_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"
#include "resilience/ecc.hh"

namespace janus
{

/** Fault-rate knobs (all per-access probabilities at zero wear). */
struct FaultModelConfig
{
    /** Probability a read access suffers at least one transient
     *  bit flip in its 576-bit codeword. */
    double transientFlipRate = 0.0;
    /** Conditional probability each additional flip follows the
     *  previous one (geometric tail; two flips in one word is what
     *  makes a read uncorrectable). */
    double extraFlipRate = 0.25;
    /** Cap on flips injected into a single access. */
    unsigned maxFlipsPerAccess = 4;
    /** Probability a write permanently sticks one new cell. */
    double stuckCellRate = 0.0;
    /** Wear coupling: effective rate = base * (1 + wear * factor). */
    double wearFactor = 0.0;
};

/** One permanently failed cell of a frame's codeword. */
struct StuckCell
{
    std::uint16_t bit = 0; ///< codeword bit index [0, 576)
    bool value = false;    ///< the value the cell is stuck at
};

/** The device fault model. */
class DeviceFaultModel
{
  public:
    DeviceFaultModel(const FaultModelConfig &config, std::uint64_t seed);

    /**
     * Account one program operation on @p frame; with wear-scaled
     * probability a new cell of the frame sticks.
     *
     * @param external_wear  wear known outside the model (Start-Gap
     *                       frame-write counters)
     * @return number of cells newly stuck by this write.
     */
    unsigned onWrite(Addr frame, std::uint64_t external_wear);

    /** Force the frame's stuck cells into a codeword about to be
     *  programmed. @return number of bits actually altered. */
    unsigned applyStuck(Addr frame, LineCodeword &cw) const;

    /**
     * Sample transient read noise for one access and XOR it into the
     * codeword. @return number of bits flipped.
     */
    unsigned applyTransient(Addr frame, std::uint64_t external_wear,
                            LineCodeword &cw);

    /** Permanent damage of a frame (empty if pristine). */
    const std::vector<StuckCell> &stuckCells(Addr frame) const;

    /** Writes the model has seen land on a frame. */
    std::uint64_t frameWrites(Addr frame) const;

    std::uint64_t transientFlipsInjected() const
    {
        return transientFlips_;
    }
    std::uint64_t stuckCellsInjected() const { return stuckCells_; }

  private:
    double scaled(double base, Addr frame,
                  std::uint64_t external_wear) const;

    FaultModelConfig config_;
    Rng rng_;
    std::unordered_map<Addr, std::vector<StuckCell>> stuck_;
    std::unordered_map<Addr, std::uint64_t> writes_;
    std::uint64_t transientFlips_ = 0;
    std::uint64_t stuckCells_ = 0;
};

} // namespace janus

#endif // JANUS_RESILIENCE_FAULT_MODEL_HH
