#include "cpu/timing_core.hh"

#include <algorithm>
#include <cstring>
#include <map>

#include "common/logging.hh"
#include "harness/sharding.hh"

namespace janus
{

TimingCore::TimingCore(const std::string &name, EventQueue &eq,
                       unsigned core_id, const Module &module,
                       SparseMemory &mem, MemoryController &mc,
                       const CoreConfig &config)
    : SimObject(name, eq), coreId_(core_id), module_(module), mem_(mem),
      mc_(mc), config_(config),
      l1_(name + ".l1", config.l1Bytes, config.l1Assoc),
      l2_(name + ".l2", config.l2Bytes, config.l2Assoc)
{
}

void
TimingCore::setTracer(Tracer *tracer)
{
    tracer_ = tracer;
    if (tracer_ == nullptr)
        return;
    track_ = tracer_->track(name());
    persistLabel_ = tracer_->label("persist");
    fenceLabel_ = tracer_->label("sfenceStall");
    preReqLabel_ = tracer_->label("preRequest");
}

void
TimingCore::run(TxnSource source, std::function<void()> on_done)
{
    janus_assert(!running_, "core %s already running", name().c_str());
    source_ = std::move(source);
    onDone_ = std::move(on_done);
    running_ = true;
    time_ = curTick();
    schedule(0, [this] { step(); });
}

TimingCore::JobStatus
TimingCore::nextJob(Tick &wake_at)
{
    std::string fn_name;
    std::vector<std::uint64_t> args;
    if (feed_ != nullptr) {
        switch (feed_->next(coreId_, time_, wake_at, fn_name, args)) {
          case OpenLoopFeed::Status::Done:
            return JobStatus::Finished;
          case OpenLoopFeed::Status::Wait:
            janus_assert(wake_at > time_,
                         "%s: open-loop feed must wake in the "
                         "future (wake %llu <= now %llu)",
                         name().c_str(),
                         static_cast<unsigned long long>(wake_at),
                         static_cast<unsigned long long>(time_));
            return JobStatus::Idle;
          case OpenLoopFeed::Status::Ready:
            break;
        }
        startJob(fn_name, args);
        return JobStatus::Got;
    }
    if (!source_ || !source_(fn_name, args))
        return JobStatus::Finished;
    startJob(fn_name, args);
    return JobStatus::Got;
}

void
TimingCore::startJob(const std::string &fn_name,
                     const std::vector<std::uint64_t> &args)
{
    const Function &fn = module_.fn(fn_name);
    janus_assert(args.size() == fn.numArgs,
                 "%s: %zu args to %s (wants %u)", name().c_str(),
                 args.size(), fn_name.c_str(), fn.numArgs);
    Frame frame;
    frame.fn = &fn;
    frame.regs.assign(fn.numRegs, 0);
    std::copy(args.begin(), args.end(), frame.regs.begin());
    frames_.clear();
    frames_.push_back(std::move(frame));
    preObjs_.clear();
}

std::uint64_t &
TimingCore::reg(Frame &frame, int idx)
{
    janus_assert(idx >= 0 && static_cast<unsigned>(idx) <
                                 frame.regs.size(),
                 "register %d out of range", idx);
    return frame.regs[static_cast<unsigned>(idx)];
}

std::uint64_t
TimingCore::regVal(const Frame &frame, int idx) const
{
    janus_assert(idx >= 0 && static_cast<unsigned>(idx) <
                                 frame.regs.size(),
                 "register %d out of range", idx);
    return frame.regs[static_cast<unsigned>(idx)];
}

void
TimingCore::accessData(Addr ea, bool write, bool full_line)
{
    if (l1_.access(ea, write).hit) {
        time_ += config_.l1HitLatency;
        return;
    }
    if (l2_.access(ea, write).hit) {
        time_ += config_.l2HitLatency;
        return;
    }
    if (write && full_line) {
        // A full-line overwrite needs no fetch (write-combining /
        // non-temporal fill); the tag install was done above.
        time_ += config_.l2HitLatency;
        return;
    }
    // Miss all the way to the NVM (timing only; the functional value
    // lives in the volatile view).
    const Addr line = lineAlign(ea);
    if (port_ != nullptr && !port_->isLocal(line)) {
        // The line lives on another channel: flat NUMA-style hop +
        // access latency, no remote state touched.
        time_ = port_->remoteReadDone(line,
                                      time_ + config_.l2HitLatency);
        return;
    }
    time_ = mc_.readLine(line, time_ + config_.l2HitLatency);
}

void
TimingCore::doClwb(Addr addr, std::uint64_t size, bool meta_atomic)
{
    Addr first = lineAlign(addr);
    Addr last = lineAlign(addr + (size ? size - 1 : 0));
    for (Addr line = first; line <= last; line += lineBytes) {
        CacheLine data = mem_.readLine(line);
        time_ += config_.clwbIssueCost;
        if (port_ != nullptr && !port_->isLocal(line)) {
            // Remote line: ship it to its home channel; the ack
            // (remotePersistResolved) stands in for the durable
            // tick at the next fence.
            port_->sendPersist(line, data,
                               time_ + config_.writebackLatency,
                               meta_atomic, coreId_, this);
            JANUS_TRACE_INSTANT(tracer_, track_, persistLabel_,
                                time_, line);
            ++remotePending_;
            ++persists_;
            continue;
        }
        PersistResult res = mc_.persistWrite(
            line, data, time_ + config_.writebackLatency, meta_atomic,
            coreId_);
        // Core-issue to durable: the whole persist lifetime as one
        // span on the issuing core's track.
        JANUS_TRACE_SPAN(tracer_, track_, persistLabel_, time_,
                         res.persisted, line);
        outstanding_.push_back(res.persisted);
        ++persists_;
    }
}

CacheLine
TimingCore::predictLine(Addr dst_line, Addr dst_addr, const void *src,
                        unsigned size) const
{
    CacheLine line = mem_.readLine(dst_line);
    // Overlay the bytes of [dst_addr, dst_addr+size) that fall into
    // this line.
    Addr begin = std::max(dst_addr, dst_line);
    Addr end = std::min<Addr>(dst_addr + size, dst_line + lineBytes);
    if (begin < end) {
        const auto *bytes = static_cast<const std::uint8_t *>(src);
        line.write(lineOffset(begin), bytes + (begin - dst_addr),
                   static_cast<unsigned>(end - begin));
    }
    return line;
}

void
TimingCore::doPreOp(const Instr &instr, const Frame &frame)
{
    time_ += config_.preOpCost;
    if (instr.op == Opcode::PreInit) {
        preObjs_[instr.slot] =
            PreObjId{++preIdCounter_, static_cast<std::uint16_t>(coreId_),
                     txnCounter_};
        return;
    }
    if (mc_.mode() != WritePathMode::Janus)
        return; // baselines run the PRE ops as cheap no-ops

    auto obj_it = preObjs_.find(instr.slot);
    janus_assert(obj_it != preObjs_.end(),
                 "PRE_* before PRE_INIT (slot %d)", instr.slot);
    const PreObjId &obj = obj_it->second;
    JanusFrontend &fe = mc_.frontend();
    Tick issue = time_ + config_.preReqLatency;
    ++preRequests_;
    JANUS_TRACE_INSTANT(tracer_, track_, preReqLabel_, issue);

    std::vector<PreChunk> chunks;
    auto add_addr_chunks = [&](Addr addr, std::uint64_t size) {
        Addr first = lineAlign(addr);
        Addr last = lineAlign(addr + (size ? size - 1 : 0));
        for (Addr line = first; line <= last; line += lineBytes)
            chunks.push_back(PreChunk{line, std::nullopt});
    };
    auto add_data_chunks = [&](Addr src, std::uint64_t size) {
        Addr first = lineAlign(src);
        Addr last = lineAlign(src + (size ? size - 1 : 0));
        for (Addr line = first; line <= last; line += lineBytes)
            chunks.push_back(
                PreChunk{std::nullopt, mem_.readLine(line)});
    };
    auto add_both_chunks = [&](Addr dst, Addr src, std::uint64_t size) {
        std::vector<std::uint8_t> bytes(size);
        mem_.read(src, bytes.data(), static_cast<unsigned>(size));
        Addr first = lineAlign(dst);
        Addr last = lineAlign(dst + (size ? size - 1 : 0));
        for (Addr line = first; line <= last; line += lineBytes) {
            PreChunk chunk{line,
                           predictLine(line, dst, bytes.data(),
                                       static_cast<unsigned>(size))};
            Addr begin = std::max(dst, line);
            Addr end = std::min<Addr>(dst + size, line + lineBytes);
            chunk.patchOffset = lineOffset(begin);
            chunk.patchSize = static_cast<unsigned>(end - begin);
            chunks.push_back(chunk);
        }
    };

    // PRE size: from the register named by dst if set, else imm.
    std::uint64_t pre_size =
        instr.dst >= 0 ? regVal(frame, instr.dst)
                       : static_cast<std::uint64_t>(instr.imm);

    switch (instr.op) {
      case Opcode::PreAddr:
      case Opcode::PreAddrBuf:
        add_addr_chunks(regVal(frame, instr.a), pre_size);
        break;
      case Opcode::PreData:
      case Opcode::PreDataBuf:
        add_data_chunks(regVal(frame, instr.a), pre_size);
        break;
      case Opcode::PreBoth:
      case Opcode::PreBothBuf:
        add_both_chunks(regVal(frame, instr.a), regVal(frame, instr.b),
                        pre_size);
        break;
      case Opcode::PreBothVal: {
          Addr dst = regVal(frame, instr.a);
          std::uint64_t value = regVal(frame, instr.b);
          PreChunk chunk{lineAlign(dst),
                         predictLine(lineAlign(dst), dst, &value, 8)};
          chunk.patchOffset = lineOffset(dst);
          chunk.patchSize = 8;
          chunks.push_back(chunk);
          break;
      }
      case Opcode::PreStartBuf:
        fe.startBuffered(obj, issue);
        if (port_ != nullptr)
            port_->sendPreStart(obj, issue);
        return;
      default:
        panic("not a pre op");
    }

    const bool buffered = instr.op == Opcode::PreAddrBuf ||
                          instr.op == Opcode::PreDataBuf ||
                          instr.op == Opcode::PreBothBuf;
    if (port_ == nullptr) {
        if (buffered)
            fe.buffer(obj, chunks, issue);
        else
            fe.issueImmediate(obj, chunks, issue);
        return;
    }

    // Sharded machine: every chunk belongs to the front-end of its
    // line's home channel (pre-execution results are consumed where
    // the eventual write is persisted). Data-only chunks carry no
    // address and stay local — under the region-affine policy the
    // local channel is where their write will land; under line
    // interleave a mis-homed data chunk simply ages out of the IRB
    // (a lost optimization, never an error). std::map iteration
    // keeps the send order deterministic.
    std::map<unsigned, std::vector<PreChunk>> remote;
    std::vector<PreChunk> local;
    for (PreChunk &ch : chunks) {
        const unsigned home = ch.lineAddr
                                  ? port_->homeShard(*ch.lineAddr)
                                  : port_->selfShard();
        if (home == port_->selfShard())
            local.push_back(std::move(ch));
        else
            remote[home].push_back(std::move(ch));
    }
    if (!local.empty()) {
        if (buffered)
            fe.buffer(obj, local, issue);
        else
            fe.issueImmediate(obj, local, issue);
    }
    for (auto &[dst, chs] : remote)
        port_->sendPre(dst, obj, std::move(chs), issue, buffered);
}

bool
TimingCore::execute(const Instr &instr)
{
    Frame &frame = frames_.back();
    time_ += config_.cycle;
    ++instructions_;

    auto advance = [&] { ++frames_.back().index; };

    switch (instr.op) {
      case Opcode::Const:
        reg(frame, instr.dst) = static_cast<std::uint64_t>(instr.imm);
        advance();
        return true;
      case Opcode::Mov:
        reg(frame, instr.dst) = regVal(frame, instr.a);
        advance();
        return true;
      case Opcode::Add:
        reg(frame, instr.dst) =
            regVal(frame, instr.a) + regVal(frame, instr.b);
        advance();
        return true;
      case Opcode::AddI:
        reg(frame, instr.dst) =
            regVal(frame, instr.a) + static_cast<std::uint64_t>(instr.imm);
        advance();
        return true;
      case Opcode::Sub:
        reg(frame, instr.dst) =
            regVal(frame, instr.a) - regVal(frame, instr.b);
        advance();
        return true;
      case Opcode::Mul:
        reg(frame, instr.dst) =
            regVal(frame, instr.a) * regVal(frame, instr.b);
        advance();
        return true;
      case Opcode::MulI:
        reg(frame, instr.dst) =
            regVal(frame, instr.a) * static_cast<std::uint64_t>(instr.imm);
        advance();
        return true;
      case Opcode::And:
        reg(frame, instr.dst) =
            regVal(frame, instr.a) & regVal(frame, instr.b);
        advance();
        return true;
      case Opcode::Or:
        reg(frame, instr.dst) =
            regVal(frame, instr.a) | regVal(frame, instr.b);
        advance();
        return true;
      case Opcode::Xor:
        reg(frame, instr.dst) =
            regVal(frame, instr.a) ^ regVal(frame, instr.b);
        advance();
        return true;
      case Opcode::ShlI:
        reg(frame, instr.dst) = regVal(frame, instr.a)
                                << static_cast<unsigned>(instr.imm);
        advance();
        return true;
      case Opcode::ShrI:
        reg(frame, instr.dst) =
            regVal(frame, instr.a) >> static_cast<unsigned>(instr.imm);
        advance();
        return true;
      case Opcode::CmpEq:
        reg(frame, instr.dst) =
            regVal(frame, instr.a) == regVal(frame, instr.b) ? 1 : 0;
        advance();
        return true;
      case Opcode::CmpNe:
        reg(frame, instr.dst) =
            regVal(frame, instr.a) != regVal(frame, instr.b) ? 1 : 0;
        advance();
        return true;
      case Opcode::CmpLt:
        reg(frame, instr.dst) =
            regVal(frame, instr.a) < regVal(frame, instr.b) ? 1 : 0;
        advance();
        return true;
      case Opcode::CmpLe:
        reg(frame, instr.dst) =
            regVal(frame, instr.a) <= regVal(frame, instr.b) ? 1 : 0;
        advance();
        return true;

      case Opcode::Load: {
          Addr ea = regVal(frame, instr.a) +
                    static_cast<std::uint64_t>(instr.imm);
          ++loads_;
          accessData(ea, false);
          reg(frame, instr.dst) = mem_.readWord(ea);
          advance();
          return true;
      }
      case Opcode::Store: {
          Addr ea = regVal(frame, instr.a) +
                    static_cast<std::uint64_t>(instr.imm);
          ++stores_;
          accessData(ea, true);
          mem_.writeWord(ea, regVal(frame, instr.b));
          advance();
          return true;
      }
      case Opcode::MemCpy: {
          Addr dst = regVal(frame, instr.dst);
          Addr src = regVal(frame, instr.a);
          std::uint64_t bytes =
              instr.b >= 0 ? regVal(frame, instr.b)
                           : static_cast<std::uint64_t>(instr.imm);
          std::vector<std::uint8_t> buf(bytes);
          mem_.read(src, buf.data(), static_cast<unsigned>(bytes));
          mem_.write(dst, buf.data(), static_cast<unsigned>(bytes));
          // Touch both streams through the cache, line by line.
          for (Addr off = 0; off < bytes; off += lineBytes) {
              accessData(src + off, false);
              // Does this iteration overwrite its whole line?
              Addr line = lineAlign(dst + off);
              bool full = dst + off <= line &&
                          dst + bytes >= line + lineBytes;
              accessData(dst + off, true, full);
              time_ += 4 * config_.cycle;
          }
          loads_ += (bytes + lineBytes - 1) / lineBytes;
          stores_ += (bytes + lineBytes - 1) / lineBytes;
          advance();
          return true;
      }

      case Opcode::Br:
        frame.block = static_cast<unsigned>(instr.imm);
        frame.index = 0;
        return true;
      case Opcode::BrCond:
        frame.block = regVal(frame, instr.a)
                          ? static_cast<unsigned>(instr.imm)
                          : static_cast<unsigned>(instr.imm2);
        frame.index = 0;
        return true;
      case Opcode::Call: {
          const Function &callee = module_.fn(instr.callee);
          Frame next;
          next.fn = &callee;
          next.regs.assign(callee.numRegs, 0);
          for (unsigned i = 0; i < instr.args.size(); ++i)
              next.regs[i] = regVal(frame, instr.args[i]);
          next.retDst = instr.dst;
          advance(); // resume past the call on return
          frames_.push_back(std::move(next));
          return true;
      }
      case Opcode::Ret: {
          std::uint64_t value =
              instr.a >= 0 ? regVal(frame, instr.a) : 0;
          int ret_dst = frame.retDst;
          frames_.pop_back();
          if (frames_.empty()) {
              // Outermost return: transaction done.
              ++transactions_;
              return true;
          }
          if (ret_dst >= 0)
              reg(frames_.back(), ret_dst) = value;
          return true;
      }
      case Opcode::Halt:
        frames_.clear();
        ++transactions_;
        return true;

      case Opcode::Clwb:
        doClwb(regVal(frame, instr.a),
               instr.b >= 0 ? regVal(frame, instr.b)
                            : static_cast<std::uint64_t>(instr.imm),
               instr.flag);
        advance();
        return true;
      case Opcode::Sfence: {
          if (remotePending_ > 0 && !config_.nonBlockingWriteback) {
              // Remote persists still in flight: park without
              // advancing, so the last ack (remotePersistResolved)
              // can resume the core by re-executing this very
              // Sfence. Undo this attempt's charge — the fence is
              // counted once, when it actually retires.
              time_ -= config_.cycle;
              --instructions_;
              parkedOnFence_ = true;
              return false;
          }
          advance();
          Tick latest = 0;
          bool have_persists = false;
          if (!outstanding_.empty()) {
              latest = *std::max_element(outstanding_.begin(),
                                         outstanding_.end());
              outstanding_.clear();
              have_persists = true;
          }
          if (remoteMax_ > 0) {
              // Acked remote persists: the ack arrival is the
              // issuer-visible durable tick.
              latest = std::max(latest, remoteMax_);
              remoteMax_ = 0;
              have_persists = true;
          }
          if (have_persists && mc_.groupCommitOn()) {
              // Deferred persists carry provisional FIFO ticks: the
              // fence flushes the open batch and waits for this
              // stream's batch retire instead.
              latest = std::max(latest,
                                mc_.groupCommitFence(coreId_));
          }
          if (have_persists) {
              // The fence retires once every outstanding persist is
              // durable: a crash boundary for the fault subsystem.
              mc_.noteFenceRetire(std::max(time_, latest));
              if (!config_.nonBlockingWriteback && latest > time_) {
                  JANUS_TRACE_SPAN(tracer_, track_, fenceLabel_,
                                   time_, latest);
                  fenceStall_ += latest - time_;
                  time_ = latest;
                  // Long waits end the batch to preserve cross-core
                  // event ordering.
                  return false;
              }
          }
          return true;
      }
      case Opcode::TxBegin:
        ++txnCounter_;
        advance();
        return true;
      case Opcode::TxEnd:
        advance();
        return true;

      case Opcode::PreInit:
      case Opcode::PreAddr:
      case Opcode::PreData:
      case Opcode::PreBoth:
      case Opcode::PreBothVal:
      case Opcode::PreAddrBuf:
      case Opcode::PreDataBuf:
      case Opcode::PreBothBuf:
      case Opcode::PreStartBuf:
        doPreOp(instr, frame);
        advance();
        return true;

      case Opcode::Nop:
        advance();
        return true;
    }
    panic("unhandled opcode");
}

void
TimingCore::remotePersistResolved(Tick now)
{
    janus_assert(remotePending_ > 0, "%s: stray remote persist ack",
                 name().c_str());
    --remotePending_;
    remoteMax_ = std::max(remoteMax_, now);
    if (parkedOnFence_ && remotePending_ == 0) {
        parkedOnFence_ = false;
        const Tick resume = std::max(time_, now);
        if (resume > time_) {
            JANUS_TRACE_SPAN(tracer_, track_, fenceLabel_, time_,
                             resume);
            fenceStall_ += resume - time_;
            time_ = resume;
        }
        const Tick delay =
            time_ > curTick() ? time_ - curTick() : 0;
        schedule(delay, [this] { step(); });
    }
}

void
TimingCore::step()
{
    janus_assert(time_ >= curTick(), "core clock behind event clock");
    unsigned batch = 0;
    while (true) {
        if (frames_.empty()) {
            Tick wake_at = 0;
            switch (nextJob(wake_at)) {
              case JobStatus::Finished:
                running_ = false;
                finishTick_ = time_;
                if (onDone_)
                    onDone_();
                return;
              case JobStatus::Idle:
                // Open-loop: the next request has not arrived yet.
                // Idle the core to the arrival tick and re-ask (the
                // event ends the batch so cross-core interleaving
                // at the controller is preserved).
                time_ = wake_at;
                schedule(time_ - curTick(), [this] { step(); });
                return;
              case JobStatus::Got:
                break;
            }
        }
        Frame &frame = frames_.back();
        janus_assert(frame.block < frame.fn->blocks.size(),
                     "bad block in %s", frame.fn->name.c_str());
        const BasicBlock &bb = frame.fn->blocks[frame.block];
        janus_assert(frame.index < bb.instrs.size(),
                     "fell off block %u of %s", frame.block,
                     frame.fn->name.c_str());
        const Instr &instr = bb.instrs[frame.index];

        bool keep_going = execute(instr);
        ++batch;
        if (parkedOnFence_) {
            // No reschedule: the pending remote-persist acks own the
            // continuation (remotePersistResolved).
            return;
        }
        if (!keep_going || batch >= config_.maxBatch) {
            schedule(time_ - curTick(), [this] { step(); });
            return;
        }
    }
}

} // namespace janus
