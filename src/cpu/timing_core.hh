/**
 * @file
 * TimingCore: an in-order hart that interprets PmIR with a batched
 * timing model. Straight-line compute accrues cycle cost without
 * event-queue traffic; events are created at yield points (persist
 * barriers, cache misses, fairness quanta), which keeps multi-core
 * runs fast while preserving cross-core interleaving at the memory
 * controller.
 *
 * Persistence follows the paper's Figure 1: a clwb snapshots the
 * volatile line and sends it to the memory controller after the
 * cache-writeback latency (~15 ns); the write is durable once
 * accepted into the ADR write queue (after its BMOs complete).
 * An sfence stalls the core until every outstanding persist is
 * durable — unless the ideal non-blocking-writeback mode of the
 * paper's Figure 10 is enabled.
 */

#ifndef JANUS_CPU_TIMING_CORE_HH
#define JANUS_CPU_TIMING_CORE_HH

#include <functional>
#include <unordered_map>
#include <vector>

#include "cache/set_assoc_cache.hh"
#include "common/types.hh"
#include "ir/ir.hh"
#include "janus/janus_hw.hh"
#include "mem/sparse_memory.hh"
#include "memctrl/memory_controller.hh"
#include "sim/eventq.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"

namespace janus
{

class ShardPort;

/** Core timing parameters. Table 3's core is a 4 GHz out-of-order
 *  processor; this interpreter approximates it with an effective
 *  2.5 IPC (100 ps per instruction) and pipelined L1 hits, since
 *  the studied effects are persist-bound, not compute-bound. */
struct CoreConfig
{
    Tick cycle = 100;                        ///< ps (4 GHz, ~2.5 IPC)
    Tick l1HitLatency = 500;                 ///< ps, mostly hidden
    Tick l2HitLatency = 4 * ticks::ns;
    Tick writebackLatency = 15 * ticks::ns;  ///< clwb to controller
    Tick clwbIssueCost = 1 * ticks::ns;      ///< per line, core side
    Tick preOpCost = 1 * ticks::ns;          ///< PRE_* call overhead
    Tick preReqLatency = 10 * ticks::ns;     ///< request to controller
    std::uint64_t l1Bytes = 64 * 1024;
    unsigned l1Assoc = 8;
    std::uint64_t l2Bytes = 2 * 1024 * 1024;
    unsigned l2Assoc = 8;
    /** Figure 10 ideal: persists never block the core. */
    bool nonBlockingWriteback = false;
    /** Fairness quantum (instructions per event). */
    unsigned maxBatch = 512;
};

/**
 * Supplies the core with successive transaction invocations.
 * @return false when the workload is exhausted.
 */
using TxnSource =
    std::function<bool(std::string &fn, std::vector<std::uint64_t> &args)>;

/**
 * Open-loop transaction feed: requests arrive on their own schedule
 * instead of issuing when the previous one persists. When the core
 * finishes a transaction and asks for the next one, the feed may say
 * the next request is not due yet (Wait) — the core then idles until
 * `wake_at` and asks again. Contrast with the closed-loop TxnSource,
 * where the next request is always ready.
 *
 * next() is called only from the owning core's event context, so a
 * feed needs no locking as long as its per-core state is disjoint
 * (the harness OpenLoopDriver keeps it that way — determinism at
 * every shard/thread count follows from the event core's own rules).
 */
class OpenLoopFeed
{
  public:
    enum class Status : std::uint8_t
    {
        Ready, ///< fn/args filled in; run the transaction now
        Wait,  ///< nothing due: idle until wake_at (> now), re-ask
        Done,  ///< the request schedule is exhausted
    };

    virtual ~OpenLoopFeed() = default;

    virtual Status next(unsigned core, Tick now, Tick &wake_at,
                        std::string &fn,
                        std::vector<std::uint64_t> &args) = 0;
};

/** An interpreting, timing-annotated hart. */
class TimingCore : public SimObject
{
  public:
    TimingCore(const std::string &name, EventQueue &eq, unsigned core_id,
               const Module &module, SparseMemory &mem,
               MemoryController &mc, const CoreConfig &config);

    /** Begin pulling transactions from the source; on_done fires when
     *  the source is exhausted and all persists have drained. */
    void run(TxnSource source, std::function<void()> on_done);

    /** Tick at which this core retired its last transaction. */
    Tick finishTick() const { return finishTick_; }

    bool running() const { return running_; }

    // --- statistics -------------------------------------------------
    std::uint64_t instructions() const { return instructions_; }
    std::uint64_t transactions() const { return transactions_; }
    std::uint64_t persists() const { return persists_; }
    std::uint64_t loads() const { return loads_; }
    std::uint64_t stores() const { return stores_; }
    std::uint64_t preRequests() const { return preRequests_; }
    /** Total ticks spent stalled on sfence. */
    Tick fenceStallTicks() const { return fenceStall_; }
    SetAssocCache &l1() { return l1_; }
    SetAssocCache &l2() { return l2_; }

    /** Attach a trace sink (null detaches). */
    void setTracer(Tracer *tracer);

    /**
     * Attach the cross-shard port of a sharded machine (null on a
     * single-shard machine — every remote branch then vanishes and
     * the core behaves byte-identically to the pre-sharding model).
     */
    void setShardPort(ShardPort *port) { port_ = port; }

    /**
     * A remote persist ack arrived (the home shard accepted this
     * core's clwb'd line into its persist domain). @p now is the
     * issuing core's current event-queue tick. Resumes the core if
     * it is parked on an sfence waiting for remote persists.
     */
    void remotePersistResolved(Tick now);

    /**
     * Attach an open-loop feed (null detaches). When set, the core
     * pulls transactions from the feed instead of the TxnSource and
     * idles between arrivals; must be attached before run().
     */
    void setOpenLoopFeed(OpenLoopFeed *feed) { feed_ = feed; }

  private:
    struct Frame
    {
        const Function *fn;
        unsigned block = 0;
        unsigned index = 0;
        std::vector<std::uint64_t> regs;
        int retDst = -1;
    };

    /** The interpreter event body. */
    void step();

    /** Outcome of a nextJob() pull. */
    enum class JobStatus : std::uint8_t
    {
        Got,      ///< a frame was set up; keep interpreting
        Idle,     ///< open-loop: nothing due until wake_at
        Finished, ///< the source/feed is exhausted
    };

    /** Fetch the next transaction. On Idle, @p wake_at is the tick
     *  the next request arrives (strictly after time_). */
    JobStatus nextJob(Tick &wake_at);

    /** Install a fetched transaction as the root frame. */
    void startJob(const std::string &fn_name,
                  const std::vector<std::uint64_t> &args);

    /** Execute one instruction. @return false to end this batch
     *  (the core has rescheduled itself or finished). */
    bool execute(const Instr &instr);

    /** Charge a data-cache access; may consult the controller.
     *  full_line marks a whole-line overwrite (no fetch on miss). */
    void accessData(Addr ea, bool write, bool full_line = false);

    /** Issue the persists of a clwb. */
    void doClwb(Addr addr, std::uint64_t size, bool meta_atomic);

    /** Build and issue a pre-execution request. */
    void doPreOp(const Instr &instr, const Frame &frame);

    /** Predicted post-write content of a destination line. */
    CacheLine predictLine(Addr dst_line, Addr dst_addr,
                          const void *src, unsigned size) const;

    std::uint64_t &reg(Frame &frame, int idx);
    std::uint64_t regVal(const Frame &frame, int idx) const;

    unsigned coreId_;
    const Module &module_;
    SparseMemory &mem_;
    MemoryController &mc_;
    CoreConfig config_;
    SetAssocCache l1_;
    SetAssocCache l2_;

    std::vector<Frame> frames_;
    TxnSource source_;
    OpenLoopFeed *feed_ = nullptr;
    std::function<void()> onDone_;
    bool running_ = false;
    Tick time_ = 0;
    Tick finishTick_ = 0;

    /** Completion ticks of outstanding (not yet fenced) persists. */
    std::vector<Tick> outstanding_;
    /** Cross-shard port (null on single-shard machines). */
    ShardPort *port_ = nullptr;
    /** Remote persists issued but not yet acknowledged. */
    unsigned remotePending_ = 0;
    /** Latest remote-persist ack tick not yet consumed by a fence. */
    Tick remoteMax_ = 0;
    /** Core is stalled on an sfence awaiting remote acks. */
    bool parkedOnFence_ = false;
    /** Pre-object slots of the current invocation. */
    std::unordered_map<int, PreObjId> preObjs_;
    std::uint16_t preIdCounter_ = 0;
    std::uint16_t txnCounter_ = 0;

    std::uint64_t instructions_ = 0;
    std::uint64_t transactions_ = 0;
    std::uint64_t persists_ = 0;
    std::uint64_t loads_ = 0;
    std::uint64_t stores_ = 0;
    std::uint64_t preRequests_ = 0;
    Tick fenceStall_ = 0;

    Tracer *tracer_ = nullptr;
    TraceId track_ = 0;
    TraceId persistLabel_ = 0;
    TraceId fenceLabel_ = 0;
    TraceId preReqLabel_ = 0;
};

} // namespace janus

#endif // JANUS_CPU_TIMING_CORE_HH
