/**
 * @file
 * NVM write-ahead-log engine: the four-variant log-writer ladder
 * from pmembench's logging study, emitted as PmIR kernels behind one
 * `wal_append` interface, plus the native scan/recovery procedure
 * that walks a log region and truncates its torn tail.
 *
 * Record layout (all variants) — sequential append, no wrap:
 *   line 0      reserved (region header)
 *   from +64    records, each: one header line { seq(8) | size(8) |
 *               csum(8) | pad } followed by line-aligned payload
 *
 * `seq` is 1-based and strictly sequential; a zero seq word is the
 * scan terminator (regions start zeroed). The volatile append cursor
 * lives in the context block (ctx::aux); recovery never needs it.
 *
 * The ladder trades fences for torn-record detection work:
 *
 *   Classic        payload stored word-by-word, flushed, SFENCE,
 *                  then the header — two fences per record. A
 *                  durable header implies a durable payload
 *                  (write-queue FIFO), so torn tails truncate at the
 *                  first zero seq.
 *   ZeroCached     like Classic but the payload moves as full-line
 *                  non-temporal copies (no fetch-on-miss), keeping
 *                  the intra-record SFENCE.
 *   HeaderDancing  the header — checksum included — is written
 *                  *first*, then the payload, with a single
 *                  record-group fence: a torn record is a durable
 *                  header whose payload fails the checksum.
 *   Mnemosyne      torn-bit-per-word: the MSB of every payload word
 *                  is reserved and set on valid data, so recovery
 *                  spots missing payload words without a checksum;
 *                  single record-group fence.
 *
 * Classic/ZeroCached fence every record by construction; the
 * single-fence variants take a `fence` argument so the caller can
 * fence every G records and let controller-side group commit
 * amortize the ordering cost (see MemCtrlConfig::groupCommitK).
 */

#ifndef JANUS_LOG_LOG_WRITER_HH
#define JANUS_LOG_LOG_WRITER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "ir/ir.hh"
#include "mem/sparse_memory.hh"

namespace janus
{

/** The log-writer variant ladder (weakest guarantees last). */
enum class LogVariant : std::uint8_t
{
    Classic,       ///< header-after-payload, two fences
    ZeroCached,    ///< non-temporal payload, two fences
    HeaderDancing, ///< checksum-in-header, single fence
    Mnemosyne,     ///< torn bit per payload word, single fence
};

/** Stable snake_case variant name (workload and JSON labels). */
const char *logVariantName(LogVariant variant);

/** Offset of the first record inside a log region. */
constexpr Addr walHeaderBytes = 64;

/** Offset of the payload within one record (after its header line). */
constexpr Addr walRecordHeaderBytes = 64;

/** MSB torn marker of Mnemosyne payload words. */
constexpr std::uint64_t walTornBit = 1ull << 63;

/** Line-aligned footprint of a record carrying `size` payload
 *  bytes. */
constexpr Addr
walRecordFootprint(Addr size)
{
    return walRecordHeaderBytes +
           ((size + lineBytes - 1) & ~Addr(lineBytes - 1));
}

/**
 * Record checksum: FNV-1a over the payload bytes, seeded with the
 * record's sequence number so a stale record of equal content never
 * validates under a new seq.
 */
std::uint64_t walChecksum(const std::uint8_t *payload,
                          std::size_t bytes, std::uint64_t seq);

/**
 * The deterministic payload word both the appender stages and the
 * validator expects: a mix of (core, seq, word index), with the MSB
 * reserved for the Mnemosyne torn bit (set when @p torn_encode).
 */
std::uint64_t walPayloadWord(unsigned core, std::uint64_t seq,
                             std::uint64_t word, bool torn_encode);

/**
 * Emit the variant's appender into a module:
 *
 *   wal_append(ctx, src, bytes, seq, csum, fence)
 *
 * appends one record of `bytes` payload copied from the volatile
 * staging buffer `src`, advancing the cursor at ctx+ctx::aux. `csum`
 * is stored in the header by every variant (only HeaderDancing
 * validates it). `fence` nonzero closes the append with an SFENCE
 * (the single-fence variants fence *only* then).
 *
 * @p manual adds the Janus PRE_* warm-up of the record's header and
 * payload lines (both addresses are known at entry; the payload data
 * is staged before the call).
 */
void buildLogWriterKernels(Module &module, LogVariant variant,
                           bool manual);

/** One decoded WAL record (recovery and tests). */
struct WalRecord
{
    Addr addr = 0; ///< header line address
    std::uint64_t seq = 0;
    std::uint64_t csum = 0;
    std::vector<std::uint8_t> payload;
};

/** Result of scanning one log region. */
struct WalScanResult
{
    std::vector<WalRecord> records; ///< durable, in seq order
    bool sawTorn = false; ///< a torn record terminated the scan
    Addr tailAddr = 0;    ///< header address where the scan stopped
};

/**
 * Walk the records of a log region inside an image, applying the
 * variant's torn-record test. The scan stops at the first zero seq
 * word (clean tail) or the first torn record; everything before the
 * stop is durable and validated.
 */
WalScanResult scanWalLog(const SparseMemory &image, Addr log_base,
                         LogVariant variant);

/**
 * Truncate the torn tail of a log region in a crash image: zero the
 * torn record's seq word so subsequent scans stop exactly at the
 * last durable record.
 *
 * @return number of torn records truncated (0 or 1 — per-stream
 *         FIFO durability never leaves two).
 */
unsigned recoverWalLog(SparseMemory &image, Addr log_base,
                       LogVariant variant);

} // namespace janus

#endif // JANUS_LOG_LOG_WRITER_HH
