#include "log/log_writer.hh"

#include <cstring>

#include "common/logging.hh"
#include "ir/builder.hh"
#include "txn/undo_log.hh"

namespace janus
{

const char *
logVariantName(LogVariant variant)
{
    switch (variant) {
      case LogVariant::Classic:
        return "classic";
      case LogVariant::ZeroCached:
        return "zero_cached";
      case LogVariant::HeaderDancing:
        return "header_dancing";
      case LogVariant::Mnemosyne:
        return "mnemosyne";
    }
    return "?";
}

std::uint64_t
walChecksum(const std::uint8_t *payload, std::size_t bytes,
            std::uint64_t seq)
{
    // FNV-1a, basis perturbed by the sequence number so identical
    // payloads under different seqs never share a checksum.
    std::uint64_t h =
        1469598103934665603ull ^ (seq * 0x9E3779B97F4A7C15ull);
    for (std::size_t i = 0; i < bytes; ++i) {
        h ^= payload[i];
        h *= 1099511628211ull;
    }
    return h;
}

std::uint64_t
walPayloadWord(unsigned core, std::uint64_t seq, std::uint64_t word,
               bool torn_encode)
{
    std::uint64_t x = (std::uint64_t(core + 1) << 40) ^
                      (seq * 1000003ull) ^
                      (word * 0x2545F4914F6CDD1Dull);
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 33;
    x &= ~walTornBit;
    return torn_encode ? (x | walTornBit) : x;
}

namespace
{

/** Emit `(sz + 63) & ~63` — the line-rounded payload span. */
int
emitLineRounded(IrBuilder &b, int sz)
{
    int rounded = b.addI(sz, lineBytes - 1);
    int mask =
        b.constI(static_cast<std::int64_t>(~Addr(lineBytes - 1)));
    return b.andOp(rounded, mask);
}

/**
 * Word-granular payload copy (the Classic writer): every store is a
 * sub-line access, so the cache fetches each payload line on miss —
 * the allocating-write cost ZeroCached's full-line copies avoid.
 */
void
emitWordCopy(IrBuilder &b, int dst, int src, int sz)
{
    int off = b.newReg();
    b.constTo(off, 0);
    unsigned head = b.newBlock();
    unsigned body = b.newBlock();
    unsigned done = b.newBlock();
    b.br(head);
    b.setBlock(head);
    b.brCond(b.cmpLt(off, sz), body, done);
    b.setBlock(body);
    b.store(b.add(dst, off), b.load(b.add(src, off)));
    b.movTo(off, b.addI(off, 8));
    b.br(head);
    b.setBlock(done);
}

/** Store and flush the record header { seq | size | csum }. */
void
emitHeader(IrBuilder &b, int rec, int seq, int sz, int csum)
{
    b.store(rec, seq, 0);
    b.store(rec, sz, 8);
    b.store(rec, csum, 16);
    b.clwb(rec, 24);
}

/** SFENCE only when the `fence` argument is nonzero. */
void
emitMaybeFence(IrBuilder &b, int fence)
{
    unsigned yes = b.newBlock();
    unsigned done = b.newBlock();
    b.brCond(b.cmpNe(fence, b.constI(0)), yes, done);
    b.setBlock(yes);
    b.sfence();
    b.br(done);
    b.setBlock(done);
}

} // namespace

void
buildLogWriterKernels(Module &module, LogVariant variant, bool manual)
{
    IrBuilder b(module);
    // wal_append(ctx, src, bytes, seq, csum, fence): append one
    // record, advancing the volatile cursor at ctx+ctx::aux.
    b.beginFunction("wal_append", 6);
    int ctx_reg = b.arg(0);
    int src = b.arg(1);
    int sz = b.arg(2);
    int seq = b.arg(3);
    int csum = b.arg(4);
    int fence = b.arg(5);

    int rec = b.load(ctx_reg, ctx::aux); // absolute append cursor
    int payload = b.addI(rec, walRecordHeaderBytes);
    int rounded = emitLineRounded(b, sz);

    if (manual) {
        // Sequential append: the record's header and payload
        // addresses are known at entry, and the payload bytes are
        // already staged in the volatile buffer — the widest
        // possible pre-execution window.
        int ph = b.preInit();
        b.preAddr(ph, rec, walRecordHeaderBytes);
        int pp = b.preInit();
        b.preBothR(pp, payload, src, rounded);
    }

    switch (variant) {
      case LogVariant::Classic:
        // Payload first (word stores), fence, then the header: a
        // durable header certifies the whole record.
        emitWordCopy(b, payload, src, sz);
        b.clwbR(payload, rounded);
        b.sfence();
        emitHeader(b, rec, seq, sz, csum);
        break;
      case LogVariant::ZeroCached:
        // Same protocol with non-temporal full-line payload copies.
        b.memCpyR(payload, src, sz);
        b.clwbR(payload, rounded);
        b.sfence();
        emitHeader(b, rec, seq, sz, csum);
        break;
      case LogVariant::HeaderDancing:
        // Header (checksum included) leads; no intra-record fence.
        // Recovery validates the payload against the checksum.
        emitHeader(b, rec, seq, sz, csum);
        b.memCpyR(payload, src, sz);
        b.clwbR(payload, rounded);
        break;
      case LogVariant::Mnemosyne:
        // Header leads; every staged payload word carries the MSB
        // torn bit, so recovery needs no checksum pass.
        emitHeader(b, rec, seq, sz, csum);
        b.memCpyR(payload, src, sz);
        b.clwbR(payload, rounded);
        break;
    }

    int footprint = b.addI(rounded, walRecordHeaderBytes);
    b.store(ctx_reg, b.add(rec, footprint), ctx::aux);
    emitMaybeFence(b, fence);
    b.ret();
    b.endFunction();
}

WalScanResult
scanWalLog(const SparseMemory &image, Addr log_base,
           LogVariant variant)
{
    WalScanResult result;
    Addr addr = log_base + walHeaderBytes;
    std::uint64_t expect_seq = 1;
    for (;;) {
        std::uint64_t seq = image.readWord(addr);
        if (seq == 0) { // clean tail (regions start zeroed)
            result.tailAddr = addr;
            return result;
        }
        std::uint64_t size = image.readWord(addr + 8);
        std::uint64_t csum = image.readWord(addr + 16);
        // The header line persists atomically, so nonzero seq means
        // size/csum are the appender's values — but stay defensive:
        // an implausible header terminates the scan as torn rather
        // than walking garbage.
        bool torn = seq != expect_seq || size == 0 ||
                    size > (1u << 20) || size % 8 != 0;
        WalRecord rec;
        if (!torn) {
            rec.addr = addr;
            rec.seq = seq;
            rec.csum = csum;
            rec.payload.resize(size);
            image.read(addr + walRecordHeaderBytes,
                       rec.payload.data(),
                       static_cast<unsigned>(size));
            switch (variant) {
              case LogVariant::Classic:
              case LogVariant::ZeroCached:
                // Two-fence protocol: a durable header implies a
                // durable payload (write-queue FIFO) — no check.
                break;
              case LogVariant::HeaderDancing:
                torn = walChecksum(rec.payload.data(), size, seq) !=
                       csum;
                break;
              case LogVariant::Mnemosyne:
                for (std::uint64_t w = 0; w < size / 8 && !torn;
                     ++w) {
                    std::uint64_t word;
                    std::memcpy(&word, rec.payload.data() + w * 8,
                                8);
                    torn = (word & walTornBit) == 0;
                }
                break;
            }
        }
        if (torn) {
            result.sawTorn = true;
            result.tailAddr = addr;
            return result;
        }
        result.records.push_back(std::move(rec));
        addr += walRecordFootprint(size);
        ++expect_seq;
    }
}

unsigned
recoverWalLog(SparseMemory &image, Addr log_base, LogVariant variant)
{
    WalScanResult scan = scanWalLog(image, log_base, variant);
    if (!scan.sawTorn)
        return 0;
    // Truncate: zero the torn record's seq word. Per-stream FIFO
    // durability means nothing beyond it can be durable, so one
    // truncation restores a clean tail.
    image.writeWord(scan.tailAddr, 0);
    WalScanResult again = scanWalLog(image, log_base, variant);
    janus_assert(!again.sawTorn &&
                     again.records.size() == scan.records.size(),
                 "WAL truncation did not restore a clean tail");
    return 1;
}

} // namespace janus
