#include "nvm/nvm_device.hh"

#include <algorithm>

#include "common/logging.hh"

namespace janus
{

NvmDevice::NvmDevice(const NvmConfig &config)
    : config_(config), bankFree_(config.banks, 0)
{
    janus_assert(config.banks > 0, "NVM needs at least one bank");
    janus_assert(config.writeQueueEntries > 0,
                 "NVM needs a persist-domain write queue");
}

void
NvmDevice::setTracer(Tracer *tracer)
{
    tracer_ = tracer;
    bankTracks_.clear();
    if (tracer_ == nullptr)
        return;
    for (unsigned b = 0; b < config_.banks; ++b)
        bankTracks_.push_back(
            tracer_->track("bank" + std::to_string(b)));
    queueTrack_ = tracer_->track("nvmQueue");
    queuedLabel_ = tracer_->label("queued");
    writeLabel_ = tracer_->label("nvmWrite");
    readLabel_ = tracer_->label("nvmRead");
}

unsigned
NvmDevice::bankOf(Addr addr) const
{
    // Hashed bank interleaving (XOR-fold the line index) so that
    // power-of-two strides — log lanes, fixed-size records — do not
    // all collapse onto one bank.
    Addr line = addr >> lineShift;
    Addr hash = line ^ (line >> 3) ^ (line >> 7) ^ (line >> 13);
    return static_cast<unsigned>(hash % config_.banks);
}

Tick
NvmDevice::acceptWrite(Addr addr, Tick arrival)
{
    // Retire drains that completed before this write arrives.
    auto first_live = std::upper_bound(drains_.begin(), drains_.end(),
                                       arrival);
    drains_.erase(drains_.begin(), first_live);

    // If the queue is full, the write is accepted only when enough
    // drains have completed to free a slot.
    Tick accepted = arrival;
    if (drains_.size() >= config_.writeQueueEntries) {
        std::size_t freeing =
            drains_.size() - config_.writeQueueEntries;
        accepted = std::max(arrival, drains_[freeing]);
        auto done_by = std::upper_bound(drains_.begin(),
                                        drains_.end(), accepted);
        drains_.erase(drains_.begin(), done_by);
    }
    acceptStall_.sample(ticks::toNsF(accepted - arrival));

    // Schedule this write's drain FR-FCFS style: once its bank and
    // the channel are free, independent of older drains to other
    // banks.
    unsigned bank = bankOf(addr);
    Tick start = std::max({accepted, bankFree_[bank], channelFree_});
    channelFree_ = start + config_.tBurst;
    Tick done = start + config_.tCwd + config_.tBurst + config_.tWr;
    bankFree_[bank] = done;
    drains_.insert(std::lower_bound(drains_.begin(), drains_.end(),
                                    done),
                   done);
    ++writesAccepted_;
    queueDepth_.set(static_cast<double>(drains_.size()), accepted);
    // Queue residency (entry at acceptance, exit at drain) and the
    // bank-busy window of the cell write.
    JANUS_TRACE_SPAN(tracer_, queueTrack_, queuedLabel_, accepted,
                     done, addr);
    JANUS_TRACE_SPAN(tracer_, bankTracks_[bank], writeLabel_, start,
                     done, addr);
    return accepted;
}

Tick
NvmDevice::read(Addr addr, Tick start)
{
    ++readsIssued_;
    unsigned bank = bankOf(addr);
    // Demand reads have priority over queued writes (write pausing /
    // read-first scheduling, standard in PCM controllers [69]): a
    // read never waits for the whole drain backlog, only for the
    // channel plus a bounded interference penalty when its bank is
    // mid-write (the in-flight cell write must finish).
    Tick issue = std::max(start, channelFree_);
    if (bankFree_[bank] > issue)
        issue += std::min(bankFree_[bank] - issue,
                          config_.tWr + config_.tWtr);
    Tick done = issue + config_.tRcd + config_.tCl + config_.tBurst;
    channelFree_ = issue + config_.tRcd + config_.tCl + config_.tBurst;
    JANUS_TRACE_SPAN(tracer_, bankTracks_[bank], readLabel_, issue,
                     done, addr);
    // Reads do not extend bankFree_: PCM reads are non-destructive
    // and much shorter than writes; modeling their bank occupancy
    // would double-count the channel serialization above.
    return done;
}

unsigned
NvmDevice::queueOccupancy(Tick at) const
{
    return static_cast<unsigned>(
        std::count_if(drains_.begin(), drains_.end(),
                      [at](Tick t) { return t > at; }));
}

} // namespace janus
