/**
 * @file
 * PCM device timing model with banks, a shared data channel and an
 * ADR-protected write queue (the persist domain). Timing parameters
 * follow Table 3 of the paper (533 MHz PCM,
 * tRCD/tCL/tCWD/tFAW/tWTR/tWR = 48/15/13/50/7.5/300 ns).
 *
 * The model is analytic rather than event-driven: the device keeps
 * per-bank and channel horizons plus a FIFO of outstanding write
 * drains, and answers "when is this write accepted into the persist
 * domain" / "when does this read complete" queries in order of
 * simulated time. This captures write-queue back-pressure and
 * bandwidth contention, which drive the multi-core trends in the
 * paper's Figure 9.
 */

#ifndef JANUS_NVM_NVM_DEVICE_HH
#define JANUS_NVM_NVM_DEVICE_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/types.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"

namespace janus
{

/** Timing and geometry parameters of the NVM device. */
struct NvmConfig
{
    /** Bank-level parallelism (3D-XPoint-class devices expose 16+
     *  concurrently writable partitions). */
    unsigned banks = 32;
    unsigned writeQueueEntries = 64;
    Tick tRcd = 48 * ticks::ns;    ///< activate to read
    Tick tCl = 15 * ticks::ns;     ///< read latency
    Tick tCwd = 13 * ticks::ns;    ///< write command to data
    Tick tWr = 300 * ticks::ns;    ///< cell write (PCM program) time
    Tick tBurst = 8 * ticks::ns;   ///< 64 B transfer on the channel
    Tick tWtr = 8 * ticks::ns;     ///< write-to-read turnaround
};

/**
 * The NVM device. Writes handed to the device are persistent as soon
 * as they are *accepted* into the write queue (Intel ADR semantics);
 * acceptance stalls when the queue is full, which is how device
 * bandwidth back-pressures the memory controller.
 */
class NvmDevice
{
  public:
    explicit NvmDevice(const NvmConfig &config = NvmConfig());

    /**
     * Offer a line write to the persist domain.
     *
     * @param addr     line address (selects the bank)
     * @param arrival  tick the write reaches the queue head
     * @return tick at which the write occupies a queue slot and is
     *         therefore persistent.
     */
    Tick acceptWrite(Addr addr, Tick arrival);

    /**
     * Issue a line read.
     *
     * @param addr   line address
     * @param start  earliest issue tick
     * @return completion tick of the read data.
     */
    Tick read(Addr addr, Tick start);

    /** Queue occupancy if inspected at the given tick. */
    unsigned queueOccupancy(Tick at) const;

    const NvmConfig &config() const { return config_; }

    std::uint64_t writesAccepted() const { return writesAccepted_; }
    std::uint64_t readsIssued() const { return readsIssued_; }

    /** Mean ticks a write waited for a free queue slot. */
    double avgAcceptStall() const { return acceptStall_.mean(); }

    /** The full accept-stall average (mergeable across channels). */
    const Average &acceptStall() const { return acceptStall_; }

    /** Write-queue depth sampled at every acceptance. */
    const TimeWeightedGauge &queueDepthGauge() const
    {
        return queueDepth_;
    }

    /** Attach a trace sink (null detaches). Interns this device's
     *  tracks (one per bank plus the write queue) and labels. */
    void setTracer(Tracer *tracer);

  private:
    unsigned bankOf(Addr addr) const;

    NvmConfig config_;
    std::vector<Tick> bankFree_;
    Tick channelFree_ = 0;
    /** Drain-completion ticks of queued writes, sorted ascending.
     *  Drains are scheduled FR-FCFS style (no head-of-line blocking
     *  across banks); a queue slot frees when any drain finishes. */
    std::vector<Tick> drains_;
    std::uint64_t writesAccepted_ = 0;
    std::uint64_t readsIssued_ = 0;
    Average acceptStall_;
    TimeWeightedGauge queueDepth_;

    Tracer *tracer_ = nullptr;
    std::vector<TraceId> bankTracks_;
    TraceId queueTrack_ = 0;
    TraceId queuedLabel_ = 0;
    TraceId writeLabel_ = 0;
    TraceId readLabel_ = 0;
};

} // namespace janus

#endif // JANUS_NVM_NVM_DEVICE_HH
