#include "nvm/wear_level.hh"

#include "common/logging.hh"

namespace janus
{

StartGapWearLeveler::StartGapWearLeveler(Addr region_base,
                                         std::uint64_t lines,
                                         unsigned gap_interval)
    : base_(region_base), lines_(lines), interval_(gap_interval),
      gap_(lines)
{
    janus_assert(lineOffset(region_base) == 0,
                 "wear-level region must be line aligned");
    janus_assert(lines >= 2, "wear-level region too small");
    janus_assert(gap_interval >= 1, "gap interval must be positive");
}

Addr
StartGapWearLeveler::translate(Addr line_addr) const
{
    std::uint64_t logical = (line_addr - base_) >> lineShift;
    janus_assert(logical < lines_,
                 "address %#llx outside the wear-leveled region",
                 static_cast<unsigned long long>(line_addr));
    // Rotate by the completed laps, then skip the gap frame.
    std::uint64_t frame = (logical + start_) % lines_;
    if (frame >= gap_)
        ++frame;
    return base_ + (frame << lineShift);
}

bool
StartGapWearLeveler::onWrite()
{
    if (++sinceMove_ < interval_)
        return false;
    sinceMove_ = 0;
    ++rotations_;
    if (gap_ == 0) {
        // The gap completed a lap: the whole region has rotated by
        // one frame.
        gap_ = lines_;
        start_ = (start_ + 1) % lines_;
    } else {
        --gap_;
    }
    return true; // one line was copied into the vacated frame
}

void
StartGapWearLeveler::recordFrameWrite(Addr frame_addr)
{
    ++frameWrites_[(frame_addr - base_) >> lineShift];
}

} // namespace janus
