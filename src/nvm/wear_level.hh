/**
 * @file
 * Start-Gap wear leveling (Qureshi et al., MICRO'09 — reference 70
 * of the paper; Table 1 lists it at ~1 ns per write). N logical
 * lines live in N+1 physical frames; one frame is a roving gap.
 * Every `gapWriteInterval` writes the gap moves one frame, and after
 * a full lap the start pointer advances — so a pathological
 * single-line hotspot is smeared over every frame of the region.
 */

#ifndef JANUS_NVM_WEAR_LEVEL_HH
#define JANUS_NVM_WEAR_LEVEL_HH

#include <cstdint>
#include <unordered_map>

#include "common/types.hh"

namespace janus
{

/** The Start-Gap address rotation. */
class StartGapWearLeveler
{
  public:
    /**
     * @param region_base   first line of the leveled region
     * @param lines         logical lines in the region
     * @param gap_interval  writes between gap movements (psi)
     */
    StartGapWearLeveler(Addr region_base, std::uint64_t lines,
                        unsigned gap_interval = 100);

    /** Logical line address -> device frame address. */
    Addr translate(Addr line_addr) const;

    /**
     * Account one serviced write; occasionally rotates the gap.
     * @return true when this write triggered a gap move (one extra
     *         device write: the line copied into the old gap).
     */
    bool onWrite();

    std::uint64_t rotations() const { return rotations_; }
    std::uint64_t fullLaps() const { return start_; }
    std::uint64_t gap() const { return gap_; }

    /** Device-frame write counts (wear histogram, for tests). */
    const std::unordered_map<std::uint64_t, std::uint64_t> &
    frameWrites() const
    {
        return frameWrites_;
    }

    /** Record a write landing on a device frame (stats only). */
    void recordFrameWrite(Addr frame_addr);

    /** Writes recorded on one device frame (wear-scaled faults). */
    std::uint64_t
    writesTo(Addr frame_addr) const
    {
        auto it = frameWrites_.find((frame_addr - base_) >> lineShift);
        return it == frameWrites_.end() ? 0 : it->second;
    }

  private:
    Addr base_;
    std::uint64_t lines_;
    unsigned interval_;
    std::uint64_t sinceMove_ = 0;
    /** Gap frame index in [0, lines]. */
    std::uint64_t gap_;
    /** Completed laps = rotation offset of the whole region. */
    std::uint64_t start_ = 0;
    std::uint64_t rotations_ = 0;
    std::unordered_map<std::uint64_t, std::uint64_t> frameWrites_;
};

} // namespace janus

#endif // JANUS_NVM_WEAR_LEVEL_HH
