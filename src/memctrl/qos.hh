/**
 * @file
 * Controller-side overload robustness: per-tenant token-bucket
 * bandwidth shaping, a bounded admission queue with explicit
 * backpressure (retry-after), a per-request deadline path that sheds
 * hopeless requests, and a saturation watchdog that drives graceful
 * degradation (shed the lowest-priority tenant first, widen
 * group-commit batches).
 *
 * Everything here is deterministic and integer-tick: the token
 * buckets are GCRA-style (theoretical arrival time per tenant), the
 * watchdog uses occupancy thresholds with hysteresis plus a minimum
 * dwell window, and retry-after backoff is a pure function of the
 * attempt number. With `QosConfig::enabled == false` every query
 * returns the identity answer (zero delay, admit everything) and no
 * state mutates, so the machine is tick-identical to a build without
 * this layer.
 *
 * Tenancy: a *tenant* is a named class of traffic; cores (persist
 * streams) map onto tenants via `QosConfig::tenantOfCore` (falling
 * back to core % tenants). Priority 0 is the most protected; the
 * numerically largest priority is shed first under saturation.
 */

#ifndef JANUS_MEMCTRL_QOS_HH
#define JANUS_MEMCTRL_QOS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace janus
{

/** Static description of one tenant (class of traffic). */
struct QosTenant
{
    /** Stable name (stats keys, bench JSON). */
    std::string name = "default";

    /** Strict priority; 0 is most protected, larger numbers are
     *  deprioritised and shed first under saturation. */
    unsigned priority = 0;

    /**
     * Token-bucket shaping: minimum ticks between admitted lines
     * (GCRA increment). 0 disables shaping for this tenant.
     */
    Tick shapeIntervalTicks = 0;

    /** Bucket depth in lines (credit for bursts); >= 1. */
    std::uint64_t shapeBurstLines = 1;

    /**
     * Per-request deadline in ticks measured from the request's
     * scheduled arrival. A request that has already waited longer
     * than this at admission time is hopeless and is shed instead
     * of admitted. 0 disables the deadline path.
     */
    Tick deadlineTicks = 0;
};

/** Controller-side QoS / admission configuration. */
struct QosConfig
{
    /** Master switch; false leaves the controller untouched. */
    bool enabled = false;

    /**
     * Bounded admission queue: requests are rejected with a
     * retry-after once device write-queue occupancy reaches this
     * many entries. 0 means no admission bound.
     */
    std::uint64_t admissionQueueEntries = 0;

    /**
     * Priority headroom: tenants with priority > 0 are only admitted
     * while occupancy is below this percentage of the admission
     * bound, reserving the remainder for priority-0 traffic.
     */
    unsigned lowPriorityAdmitPct = 75;

    /** Base retry-after backoff in ticks (doubles per attempt). */
    Tick retryBackoffTicks = 2000;

    /** Attempts before a rejected request is terminally rejected. */
    unsigned maxRetries = 8;

    /** Watchdog enters saturation at occupancy >= this % of the
     *  admission bound. */
    unsigned watchdogEnterPct = 90;

    /** Watchdog exits saturation at occupancy <= this % (must be
     *  below the enter threshold for hysteresis). */
    unsigned watchdogExitPct = 50;

    /** Minimum ticks the watchdog stays in either state before a
     *  transition is allowed (dwell window). */
    Tick watchdogDwellTicks = 10000;

    /** While saturated, the effective group-commit K is multiplied
     *  by this factor (wider batches amortise ordering cost). */
    unsigned gcWidenFactor = 2;

    /** Tenant table; empty means a single implicit unshaped tenant. */
    std::vector<QosTenant> tenants;

    /** core -> tenant index; cores beyond the vector (or an empty
     *  vector) map to core % tenants.size(). */
    std::vector<unsigned> tenantOfCore;
};

/** Outcome of an admission query. */
enum class AdmitOutcome : std::uint8_t
{
    Admit,  ///< proceed; the controller will take the write(s)
    Retry,  ///< queue full: back off and retry after `retryAfter`
    Reject, ///< terminally rejected: retry budget exhausted
    Shed,   ///< dropped by policy (deadline passed, saturation)
};

/** Admission decision plus the backpressure hint. */
struct AdmitDecision
{
    AdmitOutcome outcome = AdmitOutcome::Admit;

    /** For Retry: ticks the issuer should wait before re-asking. */
    Tick retryAfter = 0;
};

/** Per-tenant running counters (merged across shards post-run). */
struct QosTenantCounters
{
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;     ///< terminal rejects (retries exhausted)
    std::uint64_t retries = 0;      ///< Retry answers handed out
    std::uint64_t shedDeadline = 0; ///< shed because the deadline passed
    std::uint64_t shedSaturation = 0; ///< shed by the watchdog policy
    std::uint64_t throttleTicks = 0;  ///< total shaping delay imposed
    std::uint64_t shapedLines = 0;    ///< lines that paid a nonzero delay
};

/**
 * The deterministic QoS state machine. One instance per memory
 * controller (per shard); tenants' token buckets are therefore
 * per-channel, which matches the per-channel bandwidth they shape.
 */
class QosManager
{
  public:
    explicit QosManager(const QosConfig &config);

    bool enabled() const { return config_.enabled; }

    /** Number of tenants (>= 1 once enabled). */
    unsigned numTenants() const
    {
        return static_cast<unsigned>(tenants_.size());
    }

    const QosTenant &tenant(unsigned t) const { return tenants_[t]; }

    /** Map a core / persist stream to its tenant index. */
    unsigned tenantOf(unsigned core) const;

    /**
     * Token-bucket shaping: how many ticks the next line from
     * @p tenantIdx must wait beyond @p now before it may enter the
     * pipeline. Mutates the bucket (the line is considered sent at
     * now + returned delay). Returns 0 when QoS or shaping is off.
     */
    Tick shapeDelay(unsigned tenantIdx, Tick now);

    /**
     * Admission control for one request.
     *
     * @param tenantIdx   tenant issuing the request
     * @param now         current tick at the controller
     * @param enqueueTick when the request was scheduled to arrive
     *                    (open-loop arrival; deadline base)
     * @param attempt     0 for the first try, +1 per retry
     * @param occupancy   device write-queue occupancy in entries
     */
    AdmitDecision admit(unsigned tenantIdx, Tick now,
                        Tick enqueueTick, unsigned attempt,
                        std::uint64_t occupancy);

    /**
     * Feed the saturation watchdog one occupancy observation.
     * Transitions respect hysteresis thresholds and the dwell
     * window. Called on every persist and every admission query.
     */
    void observeOccupancy(Tick now, std::uint64_t occupancy);

    /** True while the watchdog considers the channel saturated. */
    bool saturated() const { return saturated_; }

    /** Effective group-commit K given the configured base K:
     *  widened while saturated, identity otherwise. */
    unsigned effectiveGroupCommitK(unsigned baseK) const;

    std::uint64_t watchdogEnters() const { return watchdogEnters_; }
    std::uint64_t watchdogExits() const { return watchdogExits_; }

    const QosTenantCounters &counters(unsigned t) const
    {
        return counters_[t];
    }

  private:
    QosConfig config_;
    std::vector<QosTenant> tenants_;

    /** GCRA theoretical-arrival-time per tenant. */
    std::vector<Tick> tat_;

    std::vector<QosTenantCounters> counters_;

    bool saturated_ = false;
    Tick lastTransition_ = 0;
    std::uint64_t watchdogEnters_ = 0;
    std::uint64_t watchdogExits_ = 0;

    /** The priority number shed first (max across tenants). */
    unsigned shedPriority_ = 0;
};

} // namespace janus

#endif // JANUS_MEMCTRL_QOS_HH
