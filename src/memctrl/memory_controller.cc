#include "memctrl/memory_controller.hh"

#include <algorithm>

#include "common/logging.hh"

namespace janus
{

namespace
{

BmoConfig
effectiveBmoConfig(const MemCtrlConfig &config)
{
    if (config.mode == WritePathMode::NoBmo) {
        BmoConfig none = config.bmo;
        none.encryption = false;
        none.deduplication = false;
        none.integrity = false;
        none.compression = false;
        return none;
    }
    return config.bmo;
}

/** Exec-segment edge type of a sub-operation's BMO kind. */
CritEdge
execEdgeOf(BmoKind kind)
{
    switch (kind) {
      case BmoKind::Encryption:
        return CritEdge::ExecAes;
      case BmoKind::Integrity:
        return CritEdge::ExecHash;
      case BmoKind::Deduplication:
        return CritEdge::ExecDedup;
      default:
        return CritEdge::ExecOther;
    }
}

} // namespace

MemoryController::MemoryController(const MemCtrlConfig &config)
    : config_(config), graph_(buildStandardGraph(effectiveBmoConfig(config))),
      engine_(graph_, config.bmoUnits),
      backend_(effectiveBmoConfig(config)), device_(config.nvm),
      counterCache_("counterCache", config.counterCacheBytes,
                    config.counterCacheAssoc),
      resilience_(config.resilience), qos_(config.qos)
{
    if (config_.qos.enabled)
        tenantPersistNs_.assign(qos_.numTenants(),
                                Histogram(0, 20000, 400));
    if (config_.mode == WritePathMode::Janus)
        frontend_ = std::make_unique<JanusFrontend>(config.janusHw,
                                                    engine_, backend_);
    if (effectiveBmoConfig(config).wearLeveling)
        wearLeveler_ = std::make_unique<StartGapWearLeveler>(
            0, config.wearRegionLines, config.bmo.gapWriteInterval);
    latencyOverride_.assign(graph_.size(), maxTick);
    for (SubOpId id = 0; id < graph_.size(); ++id) {
        if (graph_.subOp(id).name == "E1") {
            hasE1_ = true;
            e1Id_ = id;
        }
        if (!graph_.subOp(id).name.empty() &&
            graph_.subOp(id).name[0] == 'I') {
            integrityIds_.push_back(id);
            integrityLevels_.emplace_back(
                id,
                static_cast<unsigned>(std::stoul(
                    graph_.subOp(id).name.substr(1))));
        }
    }
}

void
MemoryController::setTracer(Tracer *tracer)
{
    tracer_ = tracer;
    streamTracks_.clear();
    engine_.setTracer(tracer);
    device_.setTracer(tracer);
    if (frontend_)
        frontend_->setTracer(tracer);
    if (tracer_ == nullptr)
        return;
    bmoStageLabel_ = tracer_->label("bmo");
    queueStageLabel_ = tracer_->label("nvmQueue");
    orderStageLabel_ = tracer_->label("order");
    resilienceTrack_ = tracer_->track("mc.resilience");
    retryLabel_ = tracer_->label("retry");
    remapLabel_ = tracer_->label("remap");
    irbFaultLabel_ = tracer_->label("irbEccFault");
    degradeLabel_ = tracer_->label("degraded");
}

void
MemoryController::setSampler(MetricsSampler *sampler)
{
    sampler_ = sampler;
    if (sampler_ == nullptr)
        return;
    mWrites_ = sampler_->addRate("mc.writes");
    mPersistNs_ = sampler_->addHistogram("mc.persist_ns", 0, 4000, 200);
    mQueueDepth_ = sampler_->addGauge("nvm.queue_depth");
    if (frontend_)
        mIrbOcc_ = sampler_->addGauge("irb.occupancy");
    if (config_.mode != WritePathMode::NoBmo &&
        config_.bmo.integrity) {
        mTreeHits_ = sampler_->addCounter("tree.cache_hits");
        mTreeMisses_ = sampler_->addCounter("tree.cache_misses");
        sampler_->addHitRatio("tree.cache_hit_rate", mTreeHits_,
                              mTreeMisses_);
    }
    if (resilienceOn()) {
        mRetries_ = sampler_->addCounter("resilience.retries");
        mRemaps_ = sampler_->addCounter("resilience.remaps");
        mDegraded_ = sampler_->addGauge("resilience.degraded");
    }
}

TraceId
MemoryController::streamTrack(unsigned stream)
{
    while (streamTracks_.size() <= stream)
        streamTracks_.push_back(tracer_->track(
            "mc.stream" +
            std::to_string(streamTracks_.size())));
    return streamTracks_[stream];
}

JanusFrontend &
MemoryController::frontend()
{
    janus_assert(frontend_ != nullptr,
                 "Janus front-end only exists in Janus mode");
    return *frontend_;
}

StartGapWearLeveler &
MemoryController::wearLeveler()
{
    janus_assert(wearLeveler_ != nullptr,
                 "wear leveling is not enabled");
    return *wearLeveler_;
}

Addr
MemoryController::deviceAddrOf(Addr line_addr)
{
    if (wearLeveler_ &&
        line_addr < (config_.wearRegionLines << lineShift))
        return wearLeveler_->translate(line_addr);
    return line_addr;
}

std::uint64_t
MemoryController::frameWearOf(Addr frame) const
{
    if (wearLeveler_ && frame < (config_.wearRegionLines << lineShift))
        return wearLeveler_->writesTo(frame);
    return 0;
}

Addr
MemoryController::metaLineOf(Addr line_addr) const
{
    // 16-byte metadata entries, four per metadata cache line.
    Addr entry_addr =
        config_.metaBase + (line_addr >> lineShift) * 16;
    return lineAlign(entry_addr);
}

void
MemoryController::applyCounterCache(Addr line_addr)
{
    if (!hasE1_)
        return;
    bool hit = counterCache_.access(metaLineOf(line_addr), true).hit;
    latencyOverride_[e1Id_] = hit ? config_.bmo.counterBumpLatency
                                  : config_.bmo.counterMissLatency;
}

void
MemoryController::applyIntegrityTiming(Addr line_addr, Tick now,
                                       bool degraded)
{
    if (degraded || !streamlinedOn() || integrityLevels_.empty())
        return;
    const MerkleTree &tree = backend_.merkleTree();
    MerklePathProbe probe =
        tree.probeUpdatePath(backend_.merkleLeafOf(line_addr));
    for (const auto &[id, level] : integrityLevels_) {
        Tick latency = config_.bmo.merkleHashLatency;
        switch (probe.kind[level]) {
          case MerklePathProbe::Coalesced:
            latency = config_.bmo.merkleCoalesceLatency;
            break;
          case MerklePathProbe::CacheMiss:
            latency += config_.bmo.merkleNodeMissLatency;
            break;
          default:
            break; // cache hit: the node is on chip, hash only
        }
        latencyOverride_[id] = latency;
    }
    treeCacheOccupancy_.set(
        static_cast<double>(tree.cacheResident()), now);
}

PersistResult
MemoryController::persistWrite(Addr line_addr, const CacheLine &data,
                               Tick arrival, bool meta_atomic,
                               unsigned stream)
{
    janus_assert(lineOffset(line_addr) == 0,
                 "persist of unaligned line %#llx",
                 static_cast<unsigned long long>(line_addr));
    // QoS token-bucket shaping delays the write's entry into the
    // pipeline; everything latency-derived still measures from the
    // true arrival (arrival0), with the delay attributed to the
    // QosThrottle critical-path edge (folded into the bmo stage so
    // the 3-stage partition still reconciles). Zero-cost when off.
    const Tick arrival0 = arrival;
    Tick qos_throttle = 0;
    unsigned qos_tenant = 0;
    if (qosOn()) {
        qos_tenant = qos_.tenantOf(stream);
        qos_.observeOccupancy(arrival0,
                              device_.queueOccupancy(arrival0));
        qos_throttle = qos_.shapeDelay(qos_tenant, arrival0);
        arrival += qos_throttle;
    }
    ++writes_;
    if (sampler_ != nullptr)
        sampler_->advanceTo(arrival);
    const bool profiling = config_.profilePersist;
    ExecProvenance *prov = nullptr;
    if (profiling) {
        prov_.clear();
        prov = &prov_;
    }
    // Lookup horizon / consume flag for the bmo-stage walk.
    Tick lookup_until = arrival;
    bool consume_path = false;
    applyCounterCache(line_addr);

    // Streamlined integrity: persist epochs are write-count windows;
    // tree updates issued within one epoch coalesce in the tree
    // write queue. (Fences do not close epochs — a queued coalesced
    // update is already durable-ordered by the persist domain.)
    if (streamlinedOn()) {
        const unsigned epoch_writes =
            std::max(1u, config_.bmo.merkleEpochWrites);
        if (epochWriteCount_ % epoch_writes == 0)
            backend_.merkleTree().beginEpoch();
        ++epochWriteCount_;
    }

    PersistResult result;

    // Resilience: retire due background-scrub work, and decide up
    // front whether this write runs in degraded mode (integrity
    // checks deferred to the scrubber). The decision uses the
    // watchdog state as of arrival; this write's own BMO latency
    // feeds the watchdog for subsequent writes.
    bool degraded = false;
    bool irb_fault = false;
    Tick media_delay = 0;
    bool remapped = false;
    if (resilienceOn()) {
        resilience_.scrubAdvance(arrival, backend_);
        degraded = resilience_.degraded(arrival);
        if (degraded) {
            for (SubOpId id : integrityIds_)
                latencyOverride_[id] =
                    config_.resilience.deferredIntegrityLatency;
        }
    }

    // 1. Backend memory operations (the critical-path extension).
    Tick bmo_done = arrival;
    switch (config_.mode) {
      case WritePathMode::NoBmo:
        break;
      case WritePathMode::Serialized: {
          BmoExecState state(graph_);
          bmo_done = engine_.execute(state, ExternalInput::Both,
                                     arrival, BmoExecMode::Serialized,
                                     &latencyOverride_, prov);
          break;
      }
      case WritePathMode::Parallel: {
          applyIntegrityTiming(line_addr, arrival, degraded);
          BmoExecState state(graph_);
          bmo_done = engine_.execute(state, ExternalInput::Both,
                                     arrival, BmoExecMode::Parallel,
                                     &latencyOverride_, prov);
          break;
      }
      case WritePathMode::Janus: {
          bool use_irb = true;
          if (resilienceOn()) {
              if (frontend_->disabled(arrival)) {
                  use_irb = false;
                  resilience_.notePreExecDisabled();
              } else if (frontend_->hasEntryFor(line_addr) &&
                         resilience_.maybeIrbEccFault()) {
                  // The matching IRB entry failed its ECC check, so
                  // every pre-executed result in the volatile buffer
                  // is suspect: scrub the IRB and fall back to the
                  // non-pre-executed path for a window.
                  irb_fault = true;
                  frontend_->reset();
                  frontend_->disableUntil(
                      arrival + config_.resilience.irbEccDisableWindow);
                  use_irb = false;
                  resilience_.notePreExecDisabled();
              }
          }
          if (!use_irb) {
              applyIntegrityTiming(line_addr, arrival, degraded);
              BmoExecState state(graph_);
              bmo_done = engine_.execute(state, ExternalInput::Both,
                                         arrival, BmoExecMode::Parallel,
                                         &latencyOverride_, prov);
              break;
          }
          lookup_until = arrival + config_.janusHw.irbLookupLatency;
          ConsumeResult consume =
              frontend_->consume(line_addr, data, arrival, prov);
          if (consume.hadEntry) {
              consume_path = true;
              bmo_done = consume.ready;
              result.fullyPreExecuted = consume.fullyPreExecuted;
          } else {
              applyIntegrityTiming(line_addr, arrival, degraded);
              BmoExecState state(graph_);
              bmo_done = engine_.execute(
                  state, ExternalInput::Both,
                  arrival + config_.janusHw.irbLookupLatency,
                  BmoExecMode::Parallel, &latencyOverride_, prov);
          }
          break;
      }
    }
    if (resilienceOn())
        resilience_.noteBmoLatency(arrival, bmo_done);
    // Drop the per-write integrity overrides (streamlined timing or
    // degraded deferral); the next write re-derives its own.
    for (SubOpId id : integrityIds_)
        latencyOverride_[id] = maxTick;

    // 2. Functional effects (what ends up in NVM). Under fingerprint
    //    table pressure the resilience layer degrades dedup to a
    //    bypass: the write stays correct, just stored as unique.
    bool bypass_dedup =
        resilienceOn() &&
        resilience_.dedupBypass(backend_.dedupTableSize());
    WriteOutcome outcome =
        backend_.writeLine(line_addr, data, bypass_dedup);
    result.duplicate = outcome.duplicate;
    if (degraded && config_.bmo.integrity) {
        // Integrity sub-ops issued at a deferred cost above; the
        // real verification runs in the background scrubber.
        resilience_.scrubEnqueue(line_addr, bmo_done);
    }

    // 3. Persist-domain acceptance. Duplicate writes are cancelled:
    //    only their metadata update reaches the device. The three
    //    queue-stage deltas (wq / media / meta) feed the
    //    critical-path profiler; their sum is accepted - bmo_done.
    Tick persisted;
    Tick wq_ticks = 0, media_ticks = 0, meta_ticks = 0;
    if (outcome.duplicate && config_.bmo.deduplication) {
        persisted = bmo_done;
    } else {
        Addr frame = deviceAddrOf(line_addr);
        // Bad-line remapping composes after Start-Gap translation.
        Addr target =
            resilienceOn() ? resilience_.translate(frame) : frame;
        persisted = device_.acceptWrite(target, bmo_done);
        wq_ticks = persisted - bmo_done;
        if (wearLeveler_ &&
            line_addr < (config_.wearRegionLines << lineShift)) {
            wearLeveler_->recordFrameWrite(frame);
            if (wearLeveler_->onWrite()) {
                // The gap move copies one line into the vacated
                // frame: one extra (background) device write.
                device_.acceptWrite(frame, persisted);
            }
        }
        if (resilienceOn()) {
            MediaWriteResult mw = resilience_.mediaWrite(
                target, data, frameWearOf(frame), bmo_done);
            if (mw.delay > 0) {
                // Write-verify retries push durability out.
                media_delay = mw.delay;
                persisted += mw.delay;
                media_ticks += mw.delay;
            }
            if (mw.remapped) {
                // Programming the spare is one more device write.
                remapped = true;
                Tick before_remap = persisted;
                persisted = device_.acceptWrite(mw.frame, persisted);
                media_ticks += persisted - before_remap;
            }
        }
    }

    // 4. Selective metadata atomicity: the co-located counter/remap
    //    entry must persist together with the data (extended
    //    counter-atomicity, Section 4.3).
    if (meta_atomic && config_.mode != WritePathMode::NoBmo &&
        (config_.bmo.encryption || config_.bmo.deduplication)) {
        ++metaAtomicWrites_;
        Tick meta_done =
            device_.acceptWrite(metaLineOf(line_addr), bmo_done);
        if (meta_done > persisted) {
            meta_ticks = meta_done - persisted;
            persisted = meta_done;
        }
    }
    Tick accepted = persisted;

    // 5. The persist domain preserves per-stream (per-core) order: a
    //    write becomes durable only once every earlier write from the
    //    same core is durable. Crash-consistent software depends on
    //    this ("a durable undo-log header implies a durable
    //    payload"); it is what an ADR write queue with per-thread
    //    FIFO ordering provides.
    if (lastPersist_.size() <= stream)
        lastPersist_.resize(stream + 1, 0);
    persisted = std::max(persisted, lastPersist_[stream]);
    lastPersist_[stream] = persisted;

    // 6. Group commit (off by default): park the write in the open
    //    batch instead of retiring it. Everything latency-derived
    //    (stats, critical-path partition, journal, trace order span)
    //    is deferred to the batch retire; the gauges and bmo/queue
    //    spans below still record per-write.
    if (groupCommitOn()) {
        GcPending pending;
        pending.arrival = arrival0;
        pending.bmoDone = bmo_done;
        pending.accepted = accepted;
        pending.fifoTick = persisted;
        pending.stream = stream;
        pending.lineAddr = line_addr;
        pending.data = data;
        pending.metaAtomic = meta_atomic;
        if (profiling) {
            segs_.clear();
            if (qos_throttle > 0)
                segs_.push_back(
                    {CritEdge::QosThrottle, qos_throttle});
            walkBmoStage(arrival, bmo_done, lookup_until,
                         consume_path);
            if (wq_ticks > 0)
                segs_.push_back({CritEdge::WqFull, wq_ticks});
            if (media_ticks > 0)
                segs_.push_back({CritEdge::MediaRetry, media_ticks});
            if (meta_ticks > 0)
                segs_.push_back({CritEdge::MetaCowrite, meta_ticks});
            if (persisted > accepted)
                segs_.push_back(
                    {CritEdge::OrderFifo, persisted - accepted});
            pending.segs = segs_;
        }
        if (sampler_ != nullptr) {
            sampler_->set(mQueueDepth_,
                          device_.queueOccupancy(arrival));
            if (frontend_)
                sampler_->set(mIrbOcc_, frontend_->irbOccupancy());
        }
#if JANUS_TRACING
        if (tracer_) {
            TraceId track = streamTrack(stream);
            if (bmo_done > arrival)
                tracer_->span(track, bmoStageLabel_, arrival,
                              bmo_done, line_addr);
            if (accepted > bmo_done)
                tracer_->span(track, queueStageLabel_, bmo_done,
                              accepted, line_addr);
            if (irb_fault)
                tracer_->instant(resilienceTrack_, irbFaultLabel_,
                                 arrival, line_addr);
            if (media_delay > 0)
                tracer_->instant(resilienceTrack_, retryLabel_,
                                 bmo_done, line_addr);
            if (remapped)
                tracer_->instant(resilienceTrack_, remapLabel_,
                                 persisted, line_addr);
            if (degraded)
                tracer_->instant(resilienceTrack_, degradeLabel_,
                                 arrival, line_addr);
        }
#else
        (void)irb_fault;
        (void)media_delay;
        (void)remapped;
#endif
        gcBatch_.push_back(std::move(pending));
        ++gcWritesDeferred_;
        if (gcBatch_.size() == 1 && gcScheduler_) {
            // Arm the deadline for this batch; a stale timer (the
            // batch closed first) recognizes itself by sequence.
            const std::uint64_t seq = gcBatchSeq_;
            gcScheduler_(config_.groupCommitTimeoutTicks,
                         [this, seq](Tick) {
                             if (seq == gcBatchSeq_ &&
                                 !gcBatch_.empty()) {
                                 ++gcTimeoutCloses_;
                                 gcCloseBatch();
                             }
                         });
        }
        // Under saturation the watchdog widens batches (amortize
        // ordering cost while the channel is drowning); identity
        // when QoS is off or the channel is healthy.
        const unsigned eff_k =
            qos_.effectiveGroupCommitK(config_.groupCommitK);
        if (gcBatch_.size() >= eff_k) {
            ++gcKCloses_;
            gcCloseBatch();
            result.persisted = gcLastRetire_;
            return result;
        }
        // Adaptive close: queue-depth pressure says waiting for
        // K-full would only let the backlog grow.
        if (config_.gcAdaptive &&
            device_.queueOccupancy(arrival) >=
                config_.gcAdaptiveQueueDepth) {
            ++gcAdaptiveCloses_;
            gcCloseBatch();
            result.persisted = gcLastRetire_;
            return result;
        }
        result.persisted = persisted;
        result.deferred = true;
        return result;
    }

    result.persisted = persisted;
    writeLatency_.sample(ticks::toNsF(persisted - arrival0));

    // Stage accounting: [arrival0, bmo_done, accepted, persisted]
    // partitions the end-to-end latency exactly (the QoS throttle,
    // when present, folds into the bmo stage).
    breakdown_.bmoNs.sample(ticks::toNsF(bmo_done - arrival0));
    breakdown_.queueNs.sample(ticks::toNsF(accepted - bmo_done));
    breakdown_.orderNs.sample(ticks::toNsF(persisted - accepted));
    breakdown_.totalNs.sample(ticks::toNsF(persisted - arrival0));
    breakdown_.totalHistNs.sample(ticks::toNsF(persisted - arrival0));
    if (qosOn())
        tenantPersistNs_[qos_tenant].sample(
            ticks::toNsF(persisted - arrival0));

    if (profiling) {
        segs_.clear();
        if (qos_throttle > 0)
            segs_.push_back({CritEdge::QosThrottle, qos_throttle});
        walkBmoStage(arrival, bmo_done, lookup_until, consume_path);
        if (wq_ticks > 0)
            segs_.push_back({CritEdge::WqFull, wq_ticks});
        if (media_ticks > 0)
            segs_.push_back({CritEdge::MediaRetry, media_ticks});
        if (meta_ticks > 0)
            segs_.push_back({CritEdge::MetaCowrite, meta_ticks});
        if (persisted > accepted)
            segs_.push_back(
                {CritEdge::OrderFifo, persisted - accepted});
        critProfiler_.addPersist(segs_, persisted - arrival0);
    }

    if (sampler_ != nullptr) {
        sampler_->count(mWrites_);
        sampler_->observe(mPersistNs_,
                          ticks::toNsF(persisted - arrival0));
        sampler_->set(mQueueDepth_, device_.queueOccupancy(arrival));
        if (frontend_)
            sampler_->set(mIrbOcc_, frontend_->irbOccupancy());
        if (config_.mode != WritePathMode::NoBmo &&
            config_.bmo.integrity) {
            const MerkleTree &tree = backend_.merkleTree();
            sampler_->counter(
                mTreeHits_, static_cast<double>(tree.cacheHits()));
            sampler_->counter(
                mTreeMisses_,
                static_cast<double>(tree.cacheMisses()));
        }
        if (resilienceOn()) {
            ResilienceCounters rc = resilience_.counters();
            sampler_->counter(
                mRetries_, static_cast<double>(rc.writeRetries +
                                               rc.readRetries));
            sampler_->counter(mRemaps_,
                              static_cast<double>(rc.remaps));
            sampler_->set(mDegraded_, degraded ? 1.0 : 0.0);
        }
    }
#if !JANUS_TRACING
    (void)irb_fault;
    (void)media_delay;
    (void)remapped;
#endif
#if JANUS_TRACING
    if (tracer_) {
        TraceId track = streamTrack(stream);
        if (bmo_done > arrival)
            tracer_->span(track, bmoStageLabel_, arrival, bmo_done,
                          line_addr);
        if (accepted > bmo_done)
            tracer_->span(track, queueStageLabel_, bmo_done,
                          accepted, line_addr);
        if (persisted > accepted)
            tracer_->span(track, orderStageLabel_, accepted,
                          persisted, line_addr);
        if (irb_fault)
            tracer_->instant(resilienceTrack_, irbFaultLabel_,
                             arrival, line_addr);
        if (media_delay > 0)
            tracer_->instant(resilienceTrack_, retryLabel_, bmo_done,
                             line_addr);
        if (remapped)
            tracer_->instant(resilienceTrack_, remapLabel_, persisted,
                             line_addr);
        if (degraded)
            tracer_->instant(resilienceTrack_, degradeLabel_, arrival,
                             line_addr);
    }
#endif

    if (journalEnabled_)
        journal_.push_back(JournalEntry{persisted, line_addr, data,
                                        accepted, stream,
                                        meta_atomic});
    return result;
}

void
MemoryController::walkBmoStage(Tick arrival, Tick bmo_done,
                               Tick lookup_until, bool consume_path)
{
    provVisited_.assign(prov_.nodes.size(), 0);
    Tick hi = bmo_done;
    while (hi > arrival) {
        // Find the (unvisited) scheduled node whose finish set the
        // current horizon. Visited flags guarantee termination even
        // through zero-latency nodes (e.g. coalesced tree levels).
        const ExecProvRecord *rec = nullptr;
        for (std::size_t i = 0; i < prov_.nodes.size(); ++i) {
            if (!provVisited_[i] && prov_.nodes[i].finish == hi) {
                provVisited_[i] = 1;
                rec = &prov_.nodes[i];
                break;
            }
        }
        if (rec == nullptr) {
            // Nothing this write scheduled ends here.
            if (consume_path && hi > lookup_until) {
                // Bound by in-flight pre-execution: a sub-op
                // launched before the write arrived finished at hi.
                segs_.push_back(
                    {CritEdge::PreExecWait, hi - lookup_until});
                hi = lookup_until;
            } else if (hi > lookup_until) {
                // Defensive: keeps the partition honest if a future
                // path forgets to record provenance.
                segs_.push_back(
                    {CritEdge::Unattributed, hi - lookup_until});
                hi = lookup_until;
            } else {
                segs_.push_back({CritEdge::IrbLookup, hi - arrival});
                hi = arrival;
            }
            continue;
        }
        Tick lo = std::max(rec->start, arrival);
        if (hi > lo)
            segs_.push_back(
                {execEdgeOf(graph_.subOp(rec->id).kind), hi - lo});
        if (rec->busy != ExecBusy::None && rec->unbound < lo) {
            // The node waited for a busy unit: attribute the gap,
            // then continue from where it would have started.
            Tick unbound = std::max(rec->unbound, arrival);
            segs_.push_back({rec->busy == ExecBusy::Unit
                                 ? CritEdge::UnitBusy
                                 : CritEdge::TreePipe,
                             lo - unbound});
            hi = unbound;
        } else {
            hi = lo;
        }
    }
}

void
MemoryController::gcCloseBatch()
{
    if (gcBatch_.empty())
        return;
    // The batch retires when its slowest member's FIFO point is
    // reached, clamped to the previous batch's retire so durability
    // (and the journal) stays monotone across batches. A fence or
    // timeout close does not inflate the retire tick: an undersized
    // batch retires exactly at its members' FIFO horizon, so
    // single-stream fence-per-record traffic matches group-commit
    // off tick-for-tick.
    Tick retire = gcLastRetire_;
    for (const GcPending &p : gcBatch_)
        retire = std::max(retire, p.fifoTick);
    for (GcPending &p : gcBatch_) {
        writeLatency_.sample(ticks::toNsF(retire - p.arrival));
        breakdown_.bmoNs.sample(ticks::toNsF(p.bmoDone - p.arrival));
        breakdown_.queueNs.sample(
            ticks::toNsF(p.accepted - p.bmoDone));
        breakdown_.orderNs.sample(ticks::toNsF(retire - p.accepted));
        breakdown_.totalNs.sample(ticks::toNsF(retire - p.arrival));
        breakdown_.totalHistNs.sample(
            ticks::toNsF(retire - p.arrival));
        if (qosOn())
            tenantPersistNs_[qos_.tenantOf(p.stream)].sample(
                ticks::toNsF(retire - p.arrival));
        if (config_.profilePersist) {
            if (retire > p.fifoTick)
                p.segs.push_back({CritEdge::GroupCommitWait,
                                  retire - p.fifoTick});
            critProfiler_.addPersist(p.segs, retire - p.arrival);
        }
        if (sampler_ != nullptr) {
            sampler_->count(mWrites_);
            sampler_->observe(mPersistNs_,
                              ticks::toNsF(retire - p.arrival));
        }
#if JANUS_TRACING
        if (tracer_ && retire > p.accepted)
            tracer_->span(streamTrack(p.stream), orderStageLabel_,
                          p.accepted, retire, p.lineAddr);
#endif
        if (journalEnabled_)
            journal_.push_back(JournalEntry{retire, p.lineAddr,
                                            p.data, p.accepted,
                                            p.stream, p.metaAtomic});
        if (gcStreamRetire_.size() <= p.stream)
            gcStreamRetire_.resize(p.stream + 1, 0);
        gcStreamRetire_[p.stream] = retire;
        if (p.onRetire)
            p.onRetire(retire);
    }
    gcBatch_.clear();
    ++gcBatchSeq_;
    gcLastRetire_ = retire;
    ++gcBatches_;
}

AdmitDecision
MemoryController::qosAdmit(unsigned stream, Tick now,
                           Tick enqueueTick, unsigned attempt)
{
    if (!qosOn())
        return AdmitDecision{};
    return qos_.admit(qos_.tenantOf(stream), now, enqueueTick,
                      attempt, device_.queueOccupancy(now));
}

Tick
MemoryController::groupCommitFence(unsigned stream)
{
    if (!gcBatch_.empty()) {
        ++gcFenceCloses_;
        gcCloseBatch();
    }
    if (gcStreamRetire_.size() <= stream)
        gcStreamRetire_.resize(stream + 1, 0);
    return gcStreamRetire_[stream];
}

void
MemoryController::groupCommitAttachAck(std::function<void(Tick)> ack)
{
    janus_assert(!gcBatch_.empty(),
                 "no parked group-commit write to attach an ack to");
    gcBatch_.back().onRetire = std::move(ack);
}

void
MemoryController::notifyRecovery()
{
    if (frontend_)
        frontend_->reset();
    // A fresh boot has no outstanding persists: ordering horizons
    // restart at tick zero.
    std::fill(lastPersist_.begin(), lastPersist_.end(), Tick(0));
    // Parked group-commit writes never became durable; stale batch
    // timers recognize the sequence bump and no-op.
    gcBatch_.clear();
    ++gcBatchSeq_;
    gcLastRetire_ = 0;
    std::fill(gcStreamRetire_.begin(), gcStreamRetire_.end(),
              Tick(0));
}

Tick
MemoryController::readLine(Addr line_addr, Tick start)
{
    Addr frame = deviceAddrOf(line_addr);
    Addr target = resilienceOn() ? resilience_.translate(frame) : frame;
    Tick data_done = device_.read(target, start);
    if (resilienceOn()) {
        // ECC check against the fault model: transient flips may
        // force (backed-off) re-reads before the line decodes.
        data_done += resilience_.mediaReadCheck(
            target, frameWearOf(frame), start);
    }
    if (config_.mode == WritePathMode::NoBmo ||
        !config_.bmo.encryption)
        return data_done;

    // Counter-mode decrypt: with a counter-cache hit the OTP is
    // generated while the data is fetched; a miss first fetches the
    // metadata line from the device.
    bool hit = counterCache_.access(metaLineOf(line_addr), false).hit;
    Tick otp_done;
    if (hit) {
        otp_done = start + config_.bmo.aesLatency;
    } else {
        Tick meta_done = device_.read(metaLineOf(line_addr), start);
        otp_done = meta_done + config_.bmo.aesLatency;
    }
    return std::max(data_done, otp_done) + config_.bmo.xorLatency;
}

} // namespace janus
