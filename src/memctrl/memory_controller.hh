/**
 * @file
 * The NVM memory controller: integrates the BMO engine (serialized,
 * parallelized or Janus pre-executed), the Janus front-end, the
 * counter cache, the functional backend state and the NVM device.
 * This is where the paper's Figure 1 critical path lives: a
 * persistent write is durable only once its BMOs are complete and it
 * is accepted into the ADR write queue.
 */

#ifndef JANUS_MEMCTRL_MEMORY_CONTROLLER_HH
#define JANUS_MEMCTRL_MEMORY_CONTROLLER_HH

#include <functional>
#include <memory>
#include <string>

#include "bmo/backend_state.hh"
#include "bmo/bmo_config.hh"
#include "bmo/bmo_engine.hh"
#include "cache/set_assoc_cache.hh"
#include "common/types.hh"
#include "janus/janus_hw.hh"
#include "memctrl/qos.hh"
#include "nvm/nvm_device.hh"
#include "nvm/wear_level.hh"
#include "resilience/resilience.hh"
#include "sim/critpath.hh"
#include "sim/metrics.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"

namespace janus
{

/** System design points compared in the evaluation. */
enum class WritePathMode : std::uint8_t
{
    /** BMOs disabled entirely (Figure 1a). */
    NoBmo,
    /** Monolithic BMOs executed back to back (the paper baseline). */
    Serialized,
    /** Decomposed sub-ops, parallelized at write arrival only. */
    Parallel,
    /** Parallelized + pre-executed via the Janus front-end. */
    Janus,
};

/** Memory-controller configuration (Table 3 defaults). */
struct MemCtrlConfig
{
    WritePathMode mode = WritePathMode::Janus;
    BmoConfig bmo;
    NvmConfig nvm;
    JanusHwConfig janusHw;
    /** Shared BMO units; 0 = unlimited (Figure 14). */
    unsigned bmoUnits = 4;
    /** Counter / metadata cache (512 KB, 16-way in Table 3). */
    std::uint64_t counterCacheBytes = 512 * 1024;
    unsigned counterCacheAssoc = 16;
    /** Base of the metadata region in the physical address map. */
    Addr metaBase = Addr(1) << 40;
    /** Extent of the Start-Gap region (when wear leveling is on). */
    std::uint64_t wearRegionLines = std::uint64_t(1) << 24;
    /** Online resilience layer (inert unless enabled). */
    ResilienceConfig resilience;
    /**
     * Critical-path persist profiling (sim/critpath.hh). A pure
     * observer: on or off, every computed tick is identical; off
     * only skips the per-persist walk and leaves critPath() empty.
     */
    bool profilePersist = true;
    /**
     * Controller-side group commit: park up to K pending persists
     * and retire them in one batched ordering round, amortizing the
     * fence/ordering cost across log records. 0 or 1 = off (the
     * classic immediate-retire path, bit-identical to before the
     * stage existed). K > 1 defers durability to the batch retire
     * tick; batches close when full, on any SFENCE, on the timeout
     * below, or at end of run.
     */
    unsigned groupCommitK = 0;
    /** Deadline for a non-full batch (armed at batch open). */
    Tick groupCommitTimeoutTicks = 2 * ticks::us;
    /**
     * Adaptive group commit: close the open batch early when device
     * write-queue occupancy reaches gcAdaptiveQueueDepth entries at
     * park time, instead of waiting for K-full or the timeout.
     * Off by default; disabled is tick-identical to before the knob
     * existed.
     */
    bool gcAdaptive = false;
    std::uint64_t gcAdaptiveQueueDepth = 16;
    /** Overload robustness: admission control, per-tenant shaping,
     *  deadlines and the saturation watchdog (memctrl/qos.hh).
     *  Inert (tick-identical) unless qos.enabled. */
    QosConfig qos;
};

/**
 * Per-write decomposition of the persist latency into pipeline
 * stages. The three stages partition [arrival, durable] exactly:
 *
 *   bmo    arrival -> BMO results ready (IRB lookup + sub-op
 *          execution, or the full chain on a miss / baseline);
 *   queue  BMO done -> accepted by the NVM persist domain (write
 *          queue back-pressure, including the metadata co-write);
 *   order  accepted -> durable (per-stream FIFO ordering wait).
 *
 * For every write bmo + queue + order == end-to-end by construction,
 * so the stage means (and sums) reconcile against avgWriteLatencyNs
 * tick-exactly.
 */
struct PersistBreakdown
{
    Average bmoNs;
    Average queueNs;
    Average orderNs;
    Average totalNs;
    /** Distribution of the end-to-end persist latency (ns). */
    Histogram totalHistNs = Histogram(0, 4000, 200);
};

/** Outcome of a persisted write (timing + functional digest). */
struct PersistResult
{
    /** Tick at which the line is durable (in the persist domain).
     *  When `deferred`, this is the provisional FIFO tick; the real
     *  durability point is the group-commit batch retire. */
    Tick persisted = 0;
    bool duplicate = false;
    bool fullyPreExecuted = false;
    /** Parked in an open group-commit batch (groupCommitK > 1). */
    bool deferred = false;
};

/**
 * One journaled durable write (crash-consistency testing and the
 * fault-injection subsystem, src/fault/). Besides the durable tick
 * and content, records the persist-path hook points the crash-point
 * enumerator cuts at: write-queue acceptance and whether this write
 * was a metadata-atomic commit record (tx_finish).
 */
struct JournalEntry
{
    /** Tick the line is durable (bank write complete + FIFO order). */
    Tick persisted;
    Addr lineAddr;
    CacheLine data;
    /** Tick the write was accepted by the NVM persist domain. */
    Tick accepted = 0;
    /** Core/stream that issued the write. */
    unsigned stream = 0;
    /** This write required metadata atomicity (commit record). */
    bool metaAtomic = false;
};

/** The memory controller. One instance serves all cores. */
class MemoryController
{
  public:
    explicit MemoryController(const MemCtrlConfig &config);

    /**
     * A blocking persistent write (clwb'd line) arrives from the
     * cache hierarchy.
     *
     * @param line_addr    aligned line address
     * @param data         line content being persisted
     * @param arrival      tick the write reaches the controller
     * @param meta_atomic  this write requires metadata atomicity
     *                     (selective, e.g. transaction commits)
     */
    PersistResult persistWrite(Addr line_addr, const CacheLine &data,
                               Tick arrival, bool meta_atomic,
                               unsigned stream = 0);

    /**
     * Timing of a demand read miss serviced by the NVM: device
     * access overlapped with OTP generation, plus decrypt.
     */
    Tick readLine(Addr line_addr, Tick start);

    WritePathMode mode() const { return config_.mode; }
    const MemCtrlConfig &config() const { return config_; }

    BmoEngine &engine() { return engine_; }
    const BmoGraph &graph() const { return graph_; }
    BmoBackendState &backend() { return backend_; }
    NvmDevice &device() { return device_; }
    /** Janus front-end; valid only in Janus mode. */
    JanusFrontend &frontend();
    /** Wear leveler; valid only when the BMO is enabled. */
    StartGapWearLeveler &wearLeveler();
    SetAssocCache &counterCache() { return counterCache_; }

    /** The online resilience layer (inert when not enabled). */
    ResilienceManager &resilience() { return resilience_; }
    const ResilienceManager &resilience() const { return resilience_; }

    /** End of run: retire any open group-commit batch, then drain
     *  the background integrity scrubber. */
    void finishRun()
    {
        if (groupCommitOn() && !gcBatch_.empty()) {
            ++gcDrainCloses_;
            gcCloseBatch();
        }
        if (resilienceOn())
            resilience_.scrubDrain(backend_);
    }

    // --- group commit -----------------------------------------------
    /** The batching stage is active (K <= 1 takes the classic
     *  immediate-retire path untouched). */
    bool groupCommitOn() const { return config_.groupCommitK > 1; }

    /**
     * Hook used to arm the batch timeout: schedule `fn` to run
     * `delay` ticks from now on this controller's event queue. Wired
     * by the harness; without it batches close only on K/fence/run
     * end (raw-controller unit tests).
     */
    using GcScheduler =
        std::function<void(Tick delay, std::function<void(Tick now)>)>;
    void setGcScheduler(GcScheduler scheduler)
    {
        gcScheduler_ = std::move(scheduler);
    }

    /**
     * An SFENCE from @p stream reached the controller: flush the
     * open batch (a fence must not wait on the timeout) and return
     * the stream's last batch-retire tick, which bounds every
     * deferred persist the stream has issued (batch retires are
     * monotone across batches).
     */
    Tick groupCommitFence(unsigned stream);

    /**
     * Attach a retire callback to the most recently parked persist
     * (the cross-shard ack path): invoked with the batch retire tick
     * when its batch closes. Must follow a persistWrite that
     * returned deferred.
     */
    void groupCommitAttachAck(std::function<void(Tick)> ack);

    std::uint64_t gcBatches() const { return gcBatches_; }
    std::uint64_t gcWritesDeferred() const { return gcWritesDeferred_; }
    std::uint64_t gcKCloses() const { return gcKCloses_; }
    std::uint64_t gcTimeoutCloses() const { return gcTimeoutCloses_; }
    std::uint64_t gcFenceCloses() const { return gcFenceCloses_; }
    std::uint64_t gcDrainCloses() const { return gcDrainCloses_; }
    std::uint64_t gcAdaptiveCloses() const { return gcAdaptiveCloses_; }

    // --- overload robustness (QoS) ----------------------------------
    bool qosOn() const { return config_.qos.enabled; }

    /** The QoS state machine (token buckets, watchdog, counters). */
    QosManager &qos() { return qos_; }
    const QosManager &qos() const { return qos_; }

    /**
     * Admission query for one request from @p stream. Open-loop
     * drivers call this before dispatching a transaction; a Retry
     * answer carries the retry-after backpressure hint. Also feeds
     * the saturation watchdog. Always admits when QoS is off.
     *
     * @param enqueueTick the request's scheduled (open-loop) arrival
     * @param attempt     0 on first try, +1 per retry
     */
    AdmitDecision qosAdmit(unsigned stream, Tick now,
                           Tick enqueueTick, unsigned attempt);

    /** Per-tenant persist-latency distribution (ns); sampled only
     *  while QoS is on. Indexed by tenant. */
    const std::vector<Histogram> &tenantPersistNs() const
    {
        return tenantPersistNs_;
    }

    /** Metadata line address holding a data line's meta entry. */
    Addr metaLineOf(Addr line_addr) const;

    /**
     * Record every durable data write (tick + content). The journal
     * replayed up to a crash tick reconstructs the durable image at
     * that instant (ADR: acceptance order is durability order).
     */
    void enableJournal() { journalEnabled_ = true; }
    const std::vector<JournalEntry> &journal() const
    {
        return journal_;
    }

    /**
     * Record an sfence retirement (called by the timing cores). With
     * the journal enabled these ticks become FenceRetire crash
     * points for the fault subsystem; otherwise they are dropped.
     */
    void noteFenceRetire(Tick when)
    {
        if (journalEnabled_)
            fenceRetires_.push_back(when);
    }

    /** Sfence retirement ticks (journal-enabled runs only). */
    const std::vector<Tick> &fenceRetires() const
    {
        return fenceRetires_;
    }

    /**
     * The machine restarted and software recovery ran: all
     * pre-executed results are stale (the IRB is volatile), and the
     * persist-domain FIFO horizons restart from zero.
     */
    void notifyRecovery();

    // --- statistics -------------------------------------------------
    std::uint64_t writes() const { return writes_; }
    /** Mean critical write latency (arrival -> durable), ns. */
    double avgWriteLatencyNs() const { return writeLatency_.mean(); }
    const Average &writeLatency() const { return writeLatency_; }
    std::uint64_t metaAtomicWrites() const { return metaAtomicWrites_; }
    /** Per-stage persist-latency decomposition. */
    const PersistBreakdown &breakdown() const { return breakdown_; }

    /** Tree-node cache occupancy over time (streamlined engine). */
    const TimeWeightedGauge &treeCacheOccupancy() const
    {
        return treeCacheOccupancy_;
    }

    /**
     * Aggregated critical-path attribution over every persist
     * (empty when profilePersist is off). Each persist's segments
     * partition its [arrival, durable] latency tick-exactly, so
     * critPath().totalTicks reconciles against the summed persist
     * latency and critPath().shareSum() is exactly 1.
     */
    const CritPathSummary &critPath() const
    {
        return critProfiler_.summary();
    }

    /** The profiler itself (folded-stack export). */
    const CritPathProfiler &critProfiler() const
    {
        return critProfiler_;
    }

    /**
     * Attach a windowed time-series sampler (null detaches).
     * Registers this controller's channels; call before the first
     * persist so the column set is stable across the whole run.
     */
    void setSampler(MetricsSampler *sampler);

    /**
     * Attach a trace sink (null detaches) and forward it to the BMO
     * engine, the Janus front-end and the NVM device.
     */
    void setTracer(Tracer *tracer);
    Tracer *tracer() { return tracer_; }

  private:
    /** Track id for a per-core persist stream (lazily interned). */
    TraceId streamTrack(unsigned stream);
    /** Per-write E1 latency from the counter-cache outcome. */
    void applyCounterCache(Addr line_addr);

    /** Start-Gap translation for addresses inside the region. */
    Addr deviceAddrOf(Addr line_addr);

    bool resilienceOn() const { return config_.resilience.enabled; }

    /** Streamlined integrity timing applies (Parallel/Janus only;
     *  the Serialized baseline keeps monolithic tree walks). */
    bool streamlinedOn() const
    {
        return config_.bmo.integrity &&
               config_.bmo.streamlinedIntegrity &&
               (config_.mode == WritePathMode::Parallel ||
                config_.mode == WritePathMode::Janus);
    }

    /**
     * Probe the tree's node cache / epoch state for this write and
     * turn the per-level classification into I-node latency
     * overrides. No-op while degraded (deferred-integrity overrides
     * take precedence).
     */
    void applyIntegrityTiming(Addr line_addr, Tick now,
                              bool degraded);

    /** Start-Gap write count of a device frame (fault wear input). */
    std::uint64_t frameWearOf(Addr frame) const;

    /**
     * Walk the recorded provenance backwards from @p bmo_done to
     * @p arrival, appending bmo-stage critical-path segments to
     * segs_. @p lookup_until is arrival + IRB lookup latency on the
     * Janus IRB paths (arrival otherwise); @p consume_path marks an
     * IRB hit, where time bound by nodes absent from the provenance
     * is in-flight pre-execution.
     */
    void walkBmoStage(Tick arrival, Tick bmo_done, Tick lookup_until,
                      bool consume_path);

    MemCtrlConfig config_;
    BmoGraph graph_;
    BmoEngine engine_;
    BmoBackendState backend_;
    NvmDevice device_;
    SetAssocCache counterCache_;
    std::unique_ptr<JanusFrontend> frontend_;
    std::unique_ptr<StartGapWearLeveler> wearLeveler_;
    ResilienceManager resilience_;
    /** Reused per-write latency override (E1 hit/miss). */
    std::vector<Tick> latencyOverride_;
    bool hasE1_ = false;
    SubOpId e1Id_ = 0;
    /** Integrity sub-ops (I*): deferred while degraded. */
    std::vector<SubOpId> integrityIds_;
    /** Integrity sub-ops with their tree level (I3 -> level 3). */
    std::vector<std::pair<SubOpId, unsigned>> integrityLevels_;
    /** Writes since boot, for persist-epoch boundaries. */
    std::uint64_t epochWriteCount_ = 0;
    TimeWeightedGauge treeCacheOccupancy_;

    /** One persist parked in the open group-commit batch. Timing
     *  marks plus everything whose emission is deferred to retire
     *  (stats, critical-path segments, journal, ack). */
    struct GcPending
    {
        Tick arrival = 0;
        Tick bmoDone = 0;
        Tick accepted = 0;
        /** Per-stream FIFO tick (the off-path durability point). */
        Tick fifoTick = 0;
        unsigned stream = 0;
        Addr lineAddr = 0;
        CacheLine data;
        bool metaAtomic = false;
        /** Critical-path segments up to fifoTick (built at join —
         *  the provenance buffers are per-write scratch). */
        std::vector<CritSegment> segs;
        /** Cross-shard ack to fire at retire (optional). */
        std::function<void(Tick)> onRetire;
    };

    /** Close the open batch: retire every member at the batch
     *  retire tick, emitting the deferred stats/journal/acks. */
    void gcCloseBatch();

    std::vector<GcPending> gcBatch_;
    /** Retire tick of the last closed batch (monotonicity clamp:
     *  journal replay requires nondecreasing durability). */
    Tick gcLastRetire_ = 0;
    /** Last batch-retire tick per stream (fence bound). */
    std::vector<Tick> gcStreamRetire_;
    /** Bumped at every close; stale timeout timers no-op. */
    std::uint64_t gcBatchSeq_ = 0;
    GcScheduler gcScheduler_;
    std::uint64_t gcBatches_ = 0;
    std::uint64_t gcWritesDeferred_ = 0;
    std::uint64_t gcKCloses_ = 0;
    std::uint64_t gcTimeoutCloses_ = 0;
    std::uint64_t gcFenceCloses_ = 0;
    std::uint64_t gcDrainCloses_ = 0;
    std::uint64_t gcAdaptiveCloses_ = 0;

    QosManager qos_;
    /** Per-tenant persist-latency histograms (QoS runs only). */
    std::vector<Histogram> tenantPersistNs_;

    /** Per-stream (per-core) FIFO durability horizons. */
    std::vector<Tick> lastPersist_;
    std::uint64_t writes_ = 0;
    std::uint64_t metaAtomicWrites_ = 0;
    Average writeLatency_;
    PersistBreakdown breakdown_;
    bool journalEnabled_ = false;
    std::vector<JournalEntry> journal_;
    std::vector<Tick> fenceRetires_;

    CritPathProfiler critProfiler_;
    /** Reused per-write provenance / walk scratch buffers. */
    ExecProvenance prov_;
    std::vector<CritSegment> segs_;
    std::vector<char> provVisited_;

    MetricsSampler *sampler_ = nullptr;
    MetricId mWrites_ = 0;
    MetricId mPersistNs_ = 0;
    MetricId mQueueDepth_ = 0;
    MetricId mIrbOcc_ = 0;
    MetricId mTreeHits_ = 0;
    MetricId mTreeMisses_ = 0;
    MetricId mRetries_ = 0;
    MetricId mRemaps_ = 0;
    MetricId mDegraded_ = 0;

    Tracer *tracer_ = nullptr;
    std::vector<TraceId> streamTracks_;
    TraceId bmoStageLabel_ = 0;
    TraceId queueStageLabel_ = 0;
    TraceId orderStageLabel_ = 0;
    TraceId resilienceTrack_ = 0;
    TraceId retryLabel_ = 0;
    TraceId remapLabel_ = 0;
    TraceId irbFaultLabel_ = 0;
    TraceId degradeLabel_ = 0;
};

} // namespace janus

#endif // JANUS_MEMCTRL_MEMORY_CONTROLLER_HH
