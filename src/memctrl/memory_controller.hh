/**
 * @file
 * The NVM memory controller: integrates the BMO engine (serialized,
 * parallelized or Janus pre-executed), the Janus front-end, the
 * counter cache, the functional backend state and the NVM device.
 * This is where the paper's Figure 1 critical path lives: a
 * persistent write is durable only once its BMOs are complete and it
 * is accepted into the ADR write queue.
 */

#ifndef JANUS_MEMCTRL_MEMORY_CONTROLLER_HH
#define JANUS_MEMCTRL_MEMORY_CONTROLLER_HH

#include <memory>
#include <string>

#include "bmo/backend_state.hh"
#include "bmo/bmo_config.hh"
#include "bmo/bmo_engine.hh"
#include "cache/set_assoc_cache.hh"
#include "common/types.hh"
#include "janus/janus_hw.hh"
#include "nvm/nvm_device.hh"
#include "nvm/wear_level.hh"
#include "resilience/resilience.hh"
#include "sim/critpath.hh"
#include "sim/metrics.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"

namespace janus
{

/** System design points compared in the evaluation. */
enum class WritePathMode : std::uint8_t
{
    /** BMOs disabled entirely (Figure 1a). */
    NoBmo,
    /** Monolithic BMOs executed back to back (the paper baseline). */
    Serialized,
    /** Decomposed sub-ops, parallelized at write arrival only. */
    Parallel,
    /** Parallelized + pre-executed via the Janus front-end. */
    Janus,
};

/** Memory-controller configuration (Table 3 defaults). */
struct MemCtrlConfig
{
    WritePathMode mode = WritePathMode::Janus;
    BmoConfig bmo;
    NvmConfig nvm;
    JanusHwConfig janusHw;
    /** Shared BMO units; 0 = unlimited (Figure 14). */
    unsigned bmoUnits = 4;
    /** Counter / metadata cache (512 KB, 16-way in Table 3). */
    std::uint64_t counterCacheBytes = 512 * 1024;
    unsigned counterCacheAssoc = 16;
    /** Base of the metadata region in the physical address map. */
    Addr metaBase = Addr(1) << 40;
    /** Extent of the Start-Gap region (when wear leveling is on). */
    std::uint64_t wearRegionLines = std::uint64_t(1) << 24;
    /** Online resilience layer (inert unless enabled). */
    ResilienceConfig resilience;
    /**
     * Critical-path persist profiling (sim/critpath.hh). A pure
     * observer: on or off, every computed tick is identical; off
     * only skips the per-persist walk and leaves critPath() empty.
     */
    bool profilePersist = true;
};

/**
 * Per-write decomposition of the persist latency into pipeline
 * stages. The three stages partition [arrival, durable] exactly:
 *
 *   bmo    arrival -> BMO results ready (IRB lookup + sub-op
 *          execution, or the full chain on a miss / baseline);
 *   queue  BMO done -> accepted by the NVM persist domain (write
 *          queue back-pressure, including the metadata co-write);
 *   order  accepted -> durable (per-stream FIFO ordering wait).
 *
 * For every write bmo + queue + order == end-to-end by construction,
 * so the stage means (and sums) reconcile against avgWriteLatencyNs
 * tick-exactly.
 */
struct PersistBreakdown
{
    Average bmoNs;
    Average queueNs;
    Average orderNs;
    Average totalNs;
    /** Distribution of the end-to-end persist latency (ns). */
    Histogram totalHistNs = Histogram(0, 4000, 200);
};

/** Outcome of a persisted write (timing + functional digest). */
struct PersistResult
{
    /** Tick at which the line is durable (in the persist domain). */
    Tick persisted = 0;
    bool duplicate = false;
    bool fullyPreExecuted = false;
};

/**
 * One journaled durable write (crash-consistency testing and the
 * fault-injection subsystem, src/fault/). Besides the durable tick
 * and content, records the persist-path hook points the crash-point
 * enumerator cuts at: write-queue acceptance and whether this write
 * was a metadata-atomic commit record (tx_finish).
 */
struct JournalEntry
{
    /** Tick the line is durable (bank write complete + FIFO order). */
    Tick persisted;
    Addr lineAddr;
    CacheLine data;
    /** Tick the write was accepted by the NVM persist domain. */
    Tick accepted = 0;
    /** Core/stream that issued the write. */
    unsigned stream = 0;
    /** This write required metadata atomicity (commit record). */
    bool metaAtomic = false;
};

/** The memory controller. One instance serves all cores. */
class MemoryController
{
  public:
    explicit MemoryController(const MemCtrlConfig &config);

    /**
     * A blocking persistent write (clwb'd line) arrives from the
     * cache hierarchy.
     *
     * @param line_addr    aligned line address
     * @param data         line content being persisted
     * @param arrival      tick the write reaches the controller
     * @param meta_atomic  this write requires metadata atomicity
     *                     (selective, e.g. transaction commits)
     */
    PersistResult persistWrite(Addr line_addr, const CacheLine &data,
                               Tick arrival, bool meta_atomic,
                               unsigned stream = 0);

    /**
     * Timing of a demand read miss serviced by the NVM: device
     * access overlapped with OTP generation, plus decrypt.
     */
    Tick readLine(Addr line_addr, Tick start);

    WritePathMode mode() const { return config_.mode; }
    const MemCtrlConfig &config() const { return config_; }

    BmoEngine &engine() { return engine_; }
    const BmoGraph &graph() const { return graph_; }
    BmoBackendState &backend() { return backend_; }
    NvmDevice &device() { return device_; }
    /** Janus front-end; valid only in Janus mode. */
    JanusFrontend &frontend();
    /** Wear leveler; valid only when the BMO is enabled. */
    StartGapWearLeveler &wearLeveler();
    SetAssocCache &counterCache() { return counterCache_; }

    /** The online resilience layer (inert when not enabled). */
    ResilienceManager &resilience() { return resilience_; }
    const ResilienceManager &resilience() const { return resilience_; }

    /** End of run: drain the background integrity scrubber. */
    void finishRun()
    {
        if (resilienceOn())
            resilience_.scrubDrain(backend_);
    }

    /** Metadata line address holding a data line's meta entry. */
    Addr metaLineOf(Addr line_addr) const;

    /**
     * Record every durable data write (tick + content). The journal
     * replayed up to a crash tick reconstructs the durable image at
     * that instant (ADR: acceptance order is durability order).
     */
    void enableJournal() { journalEnabled_ = true; }
    const std::vector<JournalEntry> &journal() const
    {
        return journal_;
    }

    /**
     * Record an sfence retirement (called by the timing cores). With
     * the journal enabled these ticks become FenceRetire crash
     * points for the fault subsystem; otherwise they are dropped.
     */
    void noteFenceRetire(Tick when)
    {
        if (journalEnabled_)
            fenceRetires_.push_back(when);
    }

    /** Sfence retirement ticks (journal-enabled runs only). */
    const std::vector<Tick> &fenceRetires() const
    {
        return fenceRetires_;
    }

    /**
     * The machine restarted and software recovery ran: all
     * pre-executed results are stale (the IRB is volatile), and the
     * persist-domain FIFO horizons restart from zero.
     */
    void notifyRecovery();

    // --- statistics -------------------------------------------------
    std::uint64_t writes() const { return writes_; }
    /** Mean critical write latency (arrival -> durable), ns. */
    double avgWriteLatencyNs() const { return writeLatency_.mean(); }
    const Average &writeLatency() const { return writeLatency_; }
    std::uint64_t metaAtomicWrites() const { return metaAtomicWrites_; }
    /** Per-stage persist-latency decomposition. */
    const PersistBreakdown &breakdown() const { return breakdown_; }

    /** Tree-node cache occupancy over time (streamlined engine). */
    const TimeWeightedGauge &treeCacheOccupancy() const
    {
        return treeCacheOccupancy_;
    }

    /**
     * Aggregated critical-path attribution over every persist
     * (empty when profilePersist is off). Each persist's segments
     * partition its [arrival, durable] latency tick-exactly, so
     * critPath().totalTicks reconciles against the summed persist
     * latency and critPath().shareSum() is exactly 1.
     */
    const CritPathSummary &critPath() const
    {
        return critProfiler_.summary();
    }

    /** The profiler itself (folded-stack export). */
    const CritPathProfiler &critProfiler() const
    {
        return critProfiler_;
    }

    /**
     * Attach a windowed time-series sampler (null detaches).
     * Registers this controller's channels; call before the first
     * persist so the column set is stable across the whole run.
     */
    void setSampler(MetricsSampler *sampler);

    /**
     * Attach a trace sink (null detaches) and forward it to the BMO
     * engine, the Janus front-end and the NVM device.
     */
    void setTracer(Tracer *tracer);
    Tracer *tracer() { return tracer_; }

  private:
    /** Track id for a per-core persist stream (lazily interned). */
    TraceId streamTrack(unsigned stream);
    /** Per-write E1 latency from the counter-cache outcome. */
    void applyCounterCache(Addr line_addr);

    /** Start-Gap translation for addresses inside the region. */
    Addr deviceAddrOf(Addr line_addr);

    bool resilienceOn() const { return config_.resilience.enabled; }

    /** Streamlined integrity timing applies (Parallel/Janus only;
     *  the Serialized baseline keeps monolithic tree walks). */
    bool streamlinedOn() const
    {
        return config_.bmo.integrity &&
               config_.bmo.streamlinedIntegrity &&
               (config_.mode == WritePathMode::Parallel ||
                config_.mode == WritePathMode::Janus);
    }

    /**
     * Probe the tree's node cache / epoch state for this write and
     * turn the per-level classification into I-node latency
     * overrides. No-op while degraded (deferred-integrity overrides
     * take precedence).
     */
    void applyIntegrityTiming(Addr line_addr, Tick now,
                              bool degraded);

    /** Start-Gap write count of a device frame (fault wear input). */
    std::uint64_t frameWearOf(Addr frame) const;

    /**
     * Walk the recorded provenance backwards from @p bmo_done to
     * @p arrival, appending bmo-stage critical-path segments to
     * segs_. @p lookup_until is arrival + IRB lookup latency on the
     * Janus IRB paths (arrival otherwise); @p consume_path marks an
     * IRB hit, where time bound by nodes absent from the provenance
     * is in-flight pre-execution.
     */
    void walkBmoStage(Tick arrival, Tick bmo_done, Tick lookup_until,
                      bool consume_path);

    MemCtrlConfig config_;
    BmoGraph graph_;
    BmoEngine engine_;
    BmoBackendState backend_;
    NvmDevice device_;
    SetAssocCache counterCache_;
    std::unique_ptr<JanusFrontend> frontend_;
    std::unique_ptr<StartGapWearLeveler> wearLeveler_;
    ResilienceManager resilience_;
    /** Reused per-write latency override (E1 hit/miss). */
    std::vector<Tick> latencyOverride_;
    bool hasE1_ = false;
    SubOpId e1Id_ = 0;
    /** Integrity sub-ops (I*): deferred while degraded. */
    std::vector<SubOpId> integrityIds_;
    /** Integrity sub-ops with their tree level (I3 -> level 3). */
    std::vector<std::pair<SubOpId, unsigned>> integrityLevels_;
    /** Writes since boot, for persist-epoch boundaries. */
    std::uint64_t epochWriteCount_ = 0;
    TimeWeightedGauge treeCacheOccupancy_;

    /** Per-stream (per-core) FIFO durability horizons. */
    std::vector<Tick> lastPersist_;
    std::uint64_t writes_ = 0;
    std::uint64_t metaAtomicWrites_ = 0;
    Average writeLatency_;
    PersistBreakdown breakdown_;
    bool journalEnabled_ = false;
    std::vector<JournalEntry> journal_;
    std::vector<Tick> fenceRetires_;

    CritPathProfiler critProfiler_;
    /** Reused per-write provenance / walk scratch buffers. */
    ExecProvenance prov_;
    std::vector<CritSegment> segs_;
    std::vector<char> provVisited_;

    MetricsSampler *sampler_ = nullptr;
    MetricId mWrites_ = 0;
    MetricId mPersistNs_ = 0;
    MetricId mQueueDepth_ = 0;
    MetricId mIrbOcc_ = 0;
    MetricId mTreeHits_ = 0;
    MetricId mTreeMisses_ = 0;
    MetricId mRetries_ = 0;
    MetricId mRemaps_ = 0;
    MetricId mDegraded_ = 0;

    Tracer *tracer_ = nullptr;
    std::vector<TraceId> streamTracks_;
    TraceId bmoStageLabel_ = 0;
    TraceId queueStageLabel_ = 0;
    TraceId orderStageLabel_ = 0;
    TraceId resilienceTrack_ = 0;
    TraceId retryLabel_ = 0;
    TraceId remapLabel_ = 0;
    TraceId irbFaultLabel_ = 0;
    TraceId degradeLabel_ = 0;
};

} // namespace janus

#endif // JANUS_MEMCTRL_MEMORY_CONTROLLER_HH
