#include "memctrl/qos.hh"

#include <algorithm>

#include "common/logging.hh"

namespace janus
{

QosManager::QosManager(const QosConfig &config) : config_(config)
{
    tenants_ = config_.tenants;
    if (tenants_.empty())
        tenants_.push_back(QosTenant{});
    tat_.assign(tenants_.size(), 0);
    counters_.assign(tenants_.size(), QosTenantCounters{});
    for (const QosTenant &t : tenants_)
        shedPriority_ = std::max(shedPriority_, t.priority);
    janus_assert(config_.watchdogExitPct < config_.watchdogEnterPct ||
                     !config_.enabled,
                 "watchdog exit threshold must sit below the enter "
                 "threshold for hysteresis");
}

unsigned
QosManager::tenantOf(unsigned core) const
{
    if (core < config_.tenantOfCore.size()) {
        unsigned t = config_.tenantOfCore[core];
        janus_assert(t < tenants_.size(),
                     "tenantOfCore[%u] = %u out of range", core, t);
        return t;
    }
    return core % static_cast<unsigned>(tenants_.size());
}

Tick
QosManager::shapeDelay(unsigned tenantIdx, Tick now)
{
    if (!config_.enabled)
        return 0;
    const QosTenant &t = tenants_[tenantIdx];
    if (t.shapeIntervalTicks == 0)
        return 0;
    // GCRA: a line is conforming while the theoretical arrival time
    // lags `now` by at most the burst tolerance; otherwise it waits
    // until it conforms. Integer ticks throughout, so the schedule
    // is exactly reproducible.
    Tick tolerance =
        (std::max<std::uint64_t>(t.shapeBurstLines, 1) - 1) *
        t.shapeIntervalTicks;
    Tick tat = std::max(tat_[tenantIdx], now);
    Tick eligible = tat > tolerance ? tat - tolerance : 0;
    Tick delay = eligible > now ? eligible - now : 0;
    tat_[tenantIdx] = tat + t.shapeIntervalTicks;
    QosTenantCounters &c = counters_[tenantIdx];
    if (delay > 0) {
        c.throttleTicks += delay;
        ++c.shapedLines;
    }
    return delay;
}

AdmitDecision
QosManager::admit(unsigned tenantIdx, Tick now, Tick enqueueTick,
                  unsigned attempt, std::uint64_t occupancy)
{
    AdmitDecision d;
    if (!config_.enabled) {
        return d;
    }
    observeOccupancy(now, occupancy);
    const QosTenant &t = tenants_[tenantIdx];
    QosTenantCounters &c = counters_[tenantIdx];

    // Deadline path: a request that has already waited past its
    // deadline cannot meet it no matter what the channel does now —
    // executing it only adds load. Shed it and account for it.
    if (t.deadlineTicks > 0 && now >= enqueueTick &&
        now - enqueueTick > t.deadlineTicks) {
        ++c.shedDeadline;
        d.outcome = AdmitOutcome::Shed;
        return d;
    }

    // Saturation policy: shed the lowest-priority tenant class
    // outright while the watchdog says the channel is drowning.
    if (saturated_ && t.priority == shedPriority_ &&
        shedPriority_ > 0) {
        ++c.shedSaturation;
        d.outcome = AdmitOutcome::Shed;
        return d;
    }

    // Bounded admission queue with priority headroom: priority-0
    // tenants may fill the whole bound; everyone else only the
    // configured fraction of it.
    if (config_.admissionQueueEntries > 0) {
        std::uint64_t bound = config_.admissionQueueEntries;
        if (t.priority > 0)
            bound = bound * config_.lowPriorityAdmitPct / 100;
        if (occupancy >= bound) {
            if (attempt >= config_.maxRetries) {
                // Retry budget exhausted: terminal rejection.
                ++c.rejected;
                d.outcome = AdmitOutcome::Reject;
                return d;
            }
            ++c.retries;
            d.outcome = AdmitOutcome::Retry;
            // Deterministic exponential backoff, capped so the
            // shift cannot overflow.
            unsigned shift = std::min(attempt, 16u);
            d.retryAfter = config_.retryBackoffTicks
                           << static_cast<Tick>(shift);
            return d;
        }
    }

    ++c.admitted;
    return d;
}

void
QosManager::observeOccupancy(Tick now, std::uint64_t occupancy)
{
    if (!config_.enabled || config_.admissionQueueEntries == 0)
        return;
    std::uint64_t enter = config_.admissionQueueEntries *
                          config_.watchdogEnterPct / 100;
    std::uint64_t exit = config_.admissionQueueEntries *
                         config_.watchdogExitPct / 100;
    if (now < lastTransition_ + config_.watchdogDwellTicks &&
        (watchdogEnters_ + watchdogExits_) > 0) {
        return; // dwell window: hold the current state
    }
    if (!saturated_ && occupancy >= enter) {
        saturated_ = true;
        lastTransition_ = now;
        ++watchdogEnters_;
    } else if (saturated_ && occupancy <= exit) {
        saturated_ = false;
        lastTransition_ = now;
        ++watchdogExits_;
    }
}

unsigned
QosManager::effectiveGroupCommitK(unsigned baseK) const
{
    if (!config_.enabled || !saturated_ || baseK <= 1)
        return baseK;
    return baseK * std::max(config_.gcWidenFactor, 1u);
}

} // namespace janus
