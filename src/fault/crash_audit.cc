#include "fault/crash_audit.hh"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <memory>
#include <unordered_map>

#include "common/logging.hh"
#include "harness/system.hh"
#include "txn/undo_log.hh"
#include "workloads/workload.hh"

namespace janus
{

namespace
{

const char *
modeName(WritePathMode mode)
{
    switch (mode) {
      case WritePathMode::NoBmo:
        return "nobmo";
      case WritePathMode::Serialized:
        return "serialized";
      case WritePathMode::Parallel:
        return "parallel";
      case WritePathMode::Janus:
        return "janus";
    }
    return "?";
}

/** Everything a deterministic re-run of one AuditConfig produces. */
struct AuditRun
{
    Module module;
    std::unique_ptr<Workload> workload;
    std::unique_ptr<NvmSystem> system;
    /** Durable image right after setupCore (pre-run). */
    SparseMemory initial;
};

void
executeRun(const AuditConfig &config, AuditRun &run)
{
    WorkloadParams params;
    params.txnsPerCore = config.txnsPerCore;
    params.seed = config.seed;
    params.walGroup = config.walGroup;
    run.workload = makeWorkload(config.workload, params);

    buildTxnLibrary(run.module);
    run.workload->buildKernels(run.module, config.manual);
    verify(run.module);

    SystemConfig sys;
    sys.mode = config.mode;
    sys.cores = 1;
    sys.resilience = config.resilience;
    sys.groupCommitK = config.groupCommitK;
    run.system = std::make_unique<NvmSystem>(sys, run.module);
    run.system->mc().enableJournal();
    run.workload->setupCore(0, *run.system);
    run.initial.copyFrom(run.system->mem());

    std::vector<TxnSource> sources;
    sources.push_back(run.workload->source(0, *run.system));
    run.system->run(std::move(sources));
}

/**
 * Post-sweep audit of the functional backend: the Merkle root must
 * match a from-scratch recomputation, the dedup reference counts
 * must match a rebuild from the live metadata entries, and every
 * written line must pass the attributed MAC + path check.
 */
bool
verifyBackend(BmoBackendState &backend)
{
    if (!backend.auditIntegrity())
        return false;
    std::unordered_map<std::uint64_t, std::uint32_t> rebuilt;
    for (const auto &entry : backend.metaEntries())
        if (entry.second.valid)
            ++rebuilt[entry.second.phys];
    // Every live physical line must be referenced (no leaks) and
    // every stored refcount must match the rebuild (no drift).
    if (rebuilt.size() != backend.physLinesLive())
        return false;
    for (const auto &pair : rebuilt)
        if (backend.physRefCount(pair.first) != pair.second)
            return false;
    if (backend.config().integrity)
        for (const auto &entry : backend.metaEntries())
            if (entry.second.valid &&
                !backend.verifyLineIntegrity(entry.first).ok())
                return false;
    return true;
}

std::vector<Addr>
journalLines(const std::vector<JournalEntry> &journal)
{
    std::vector<Addr> lines;
    lines.reserve(journal.size());
    for (const JournalEntry &e : journal)
        lines.push_back(e.lineAddr);
    std::sort(lines.begin(), lines.end());
    lines.erase(std::unique(lines.begin(), lines.end()),
                lines.end());
    return lines;
}

void
appendEscaped(std::string &out, const std::string &s)
{
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

void
appendf(std::string &out, const char *fmt, ...)
{
    char buf[512];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    out += buf;
}

void
appendCounts(std::string &out, const char *name,
             const InjectionCounts &counts)
{
    appendf(out,
            "\"%s\": {\"injected\": %llu, \"detected\": %llu, "
            "\"misattributed\": %llu}",
            name,
            static_cast<unsigned long long>(counts.injected),
            static_cast<unsigned long long>(counts.detected),
            static_cast<unsigned long long>(counts.misattributed));
}

} // namespace

std::string
AuditReport::repro() const
{
    if (failures.empty())
        return "";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "--replay=%llu:%llu",
                  static_cast<unsigned long long>(firstFailingTick()),
                  static_cast<unsigned long long>(config.seed));
    return buf;
}

bool
AuditReport::passed() const
{
    if (hasFailure() || !backendVerified)
        return false;
    return !injectionRan || injection.passed();
}

std::string
AuditReport::toJson() const
{
    std::string out;
    out += "{\n";
    appendf(out, "  \"audit\": \"%s\",\n", config.workload.c_str());
    appendf(out, "  \"mode\": \"%s\",\n", modeName(config.mode));
    appendf(out, "  \"manual\": %s,\n",
            config.manual ? "true" : "false");
    appendf(out, "  \"txns_per_core\": %u,\n", config.txnsPerCore);
    appendf(out, "  \"seed\": %llu,\n",
            static_cast<unsigned long long>(config.seed));
    appendf(out, "  \"faults\": %s,\n",
            config.resilience.enabled ? "true" : "false");
    appendf(out, "  \"sample_points\": %zu,\n", config.samplePoints);
    appendf(out, "  \"sample_seed\": %llu,\n",
            static_cast<unsigned long long>(config.sampleSeed));
    appendf(out, "  \"points_enumerated\": %zu,\n", totalPoints);
    appendf(out, "  \"points_swept\": %zu,\n", sweptPoints);
    appendf(out,
            "  \"raw_hooks\": {\"queue_accept\": %zu, "
            "\"bank_complete\": %zu, \"commit_record\": %zu, "
            "\"fence_retire\": %zu},\n",
            rawQueueAccepts, rawBankCompletes, rawCommitRecords,
            rawFenceRetires);
    appendf(out, "  \"rollbacks\": %llu,\n",
            static_cast<unsigned long long>(rollbacks));
    appendf(out, "  \"final_image_hash\": \"0x%016llx\",\n",
            static_cast<unsigned long long>(finalImageHash));
    appendf(out, "  \"backend_verified\": %s,\n",
            backendVerified ? "true" : "false");
    out += "  \"failures\": [";
    for (std::size_t i = 0; i < failures.size(); ++i) {
        const AuditFailure &f = failures[i];
        appendf(out,
                "%s\n    {\"tick\": %llu, \"kind\": \"%s\", "
                "\"journal_prefix\": %zu, \"error\": \"",
                i == 0 ? "" : ",",
                static_cast<unsigned long long>(f.tick),
                toString(f.kind), f.journalPrefix);
        appendEscaped(out, f.error);
        out += "\"}";
    }
    out += failures.empty() ? "],\n" : "\n  ],\n";
    appendf(out, "  \"first_failing_tick\": %llu,\n",
            static_cast<unsigned long long>(firstFailingTick()));
    appendf(out, "  \"repro\": \"%s\",\n", repro().c_str());
    if (injectionRan) {
        out += "  \"injection\": {";
        appendCounts(out, "data", injection.data);
        out += ", ";
        appendCounts(out, "meta", injection.meta);
        out += ", \"tree\": [";
        for (std::size_t l = 0; l < injection.tree.size(); ++l) {
            if (l)
                out += ", ";
            appendf(out,
                    "{\"level\": %zu, \"injected\": %llu, "
                    "\"detected\": %llu, \"misattributed\": %llu}",
                    l,
                    static_cast<unsigned long long>(
                        injection.tree[l].injected),
                    static_cast<unsigned long long>(
                        injection.tree[l].detected),
                    static_cast<unsigned long long>(
                        injection.tree[l].misattributed));
        }
        out += "], ";
        appendCounts(out, "uncovered_control",
                     injection.uncoveredControl);
        appendf(out, ", \"passed\": %s},\n",
                injection.passed() ? "true" : "false");
    } else {
        out += "  \"injection\": null,\n";
    }
    appendf(out, "  \"passed\": %s\n}\n",
            passed() ? "true" : "false");
    return out;
}

AuditReport
runCrashAudit(const AuditConfig &config)
{
    AuditReport report;
    report.config = config;

    AuditRun run;
    executeRun(config, run);
    MemoryController &mc = run.system->mc();

    CrashPlan plan = planCrashPoints(mc);
    report.totalPoints = plan.points.size();
    report.rawQueueAccepts = plan.rawQueueAccepts;
    report.rawBankCompletes = plan.rawBankCompletes;
    report.rawCommitRecords = plan.rawCommitRecords;
    report.rawFenceRetires = plan.rawFenceRetires;
    std::vector<CrashPoint> points = sampleCrashPoints(
        plan.points, config.samplePoints, config.sampleSeed);
    report.sweptPoints = points.size();

    // The machine restarted: volatile pre-executed results are gone
    // and recovery software owns the device.
    mc.notifyRecovery();

    PersistentImageBuilder builder(run.initial, mc.journal());
    SparseMemory crashed;
    for (const CrashPoint &p : points) {
        crashed.copyFrom(builder.imageAt(p.journalPrefix));
        ScopedPanicCapture capture;
        try {
            report.rollbacks +=
                run.workload->recover(crashed, 0) > 0;
            run.workload->validateRecovered(crashed, 0);
        } catch (const PanicError &e) {
            report.failures.push_back(AuditFailure{
                p.tick, p.kind, p.journalPrefix, e.what()});
        }
    }

    // The complete durable image, recovered, is the state the next
    // boot would run on: hash it for replay comparisons.
    SparseMemory final_image;
    final_image.copyFrom(builder.imageAt(mc.journal().size()));
    {
        ScopedPanicCapture capture;
        try {
            run.workload->recover(final_image, 0);
            run.workload->validateRecovered(final_image, 0);
        } catch (const PanicError &e) {
            report.failures.push_back(AuditFailure{
                mc.journal().back().persisted,
                CrashPointKind::Final, mc.journal().size(),
                e.what()});
        }
    }
    report.finalImageHash = final_image.contentHash();

    report.backendVerified = verifyBackend(mc.backend());

    if (config.injectionTrials > 0 &&
        mc.backend().config().integrity) {
        report.injection = runInjectionCampaign(
            mc.backend(), journalLines(mc.journal()),
            config.injectionTrials, config.sampleSeed);
        report.injectionRan = true;
        // The campaign is self-healing: prove it left no residue.
        if (!verifyBackend(mc.backend()))
            report.backendVerified = false;
    }
    return report;
}

ReplayResult
replayCrashPoint(const AuditConfig &config, Tick tick)
{
    ReplayResult result;
    AuditRun run;
    executeRun(config, run);
    const std::vector<JournalEntry> &journal =
        run.system->mc().journal();
    auto it = std::upper_bound(
        journal.begin(), journal.end(), tick,
        [](Tick t, const JournalEntry &e) {
            return t < e.persisted;
        });
    result.journalPrefix =
        static_cast<std::size_t>(it - journal.begin());

    run.system->mc().notifyRecovery();
    PersistentImageBuilder builder(run.initial, journal);
    SparseMemory image;
    image.copyFrom(builder.imageAt(result.journalPrefix));
    result.imageHash = image.contentHash();

    ScopedPanicCapture capture;
    try {
        result.rollbacks = run.workload->recover(image, 0);
        run.workload->validateRecovered(image, 0);
        result.recovered = true;
    } catch (const PanicError &e) {
        result.recovered = false;
        result.error = e.what();
    }
    result.recoveredHash = image.contentHash();
    return result;
}

} // namespace janus
