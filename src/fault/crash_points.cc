#include "fault/crash_points.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/random.hh"

namespace janus
{

const char *
toString(CrashPointKind kind)
{
    switch (kind) {
      case CrashPointKind::Initial:
        return "initial";
      case CrashPointKind::QueueAccept:
        return "queue_accept";
      case CrashPointKind::BankComplete:
        return "bank_complete";
      case CrashPointKind::CommitRecord:
        return "commit_record";
      case CrashPointKind::FenceRetire:
        return "fence_retire";
      case CrashPointKind::Final:
        return "final";
    }
    return "?";
}

namespace
{

/** Higher wins when several hooks collapse onto one durable image. */
unsigned
kindPriority(CrashPointKind kind)
{
    switch (kind) {
      case CrashPointKind::Initial:
      case CrashPointKind::Final:
        return 4;
      case CrashPointKind::CommitRecord:
        return 3;
      case CrashPointKind::FenceRetire:
        return 2;
      case CrashPointKind::BankComplete:
        return 1;
      case CrashPointKind::QueueAccept:
        return 0;
    }
    return 0;
}

} // namespace

CrashPlan
planCrashPoints(const MemoryController &mc)
{
    const std::vector<JournalEntry> &journal = mc.journal();
    janus_assert(!journal.empty(),
                 "crash-point enumeration needs a journal-enabled "
                 "run with at least one durable write");
    for (std::size_t i = 1; i < journal.size(); ++i)
        janus_assert(journal[i].persisted >= journal[i - 1].persisted,
                     "journal out of durability order at entry %zu",
                     i);

    CrashPlan plan;
    std::vector<CrashPoint> raw;
    raw.reserve(3 * journal.size() + mc.fenceRetires().size() + 2);
    raw.push_back(CrashPoint{0, CrashPointKind::Initial, 0});
    for (const JournalEntry &e : journal) {
        raw.push_back(
            CrashPoint{e.accepted, CrashPointKind::QueueAccept, 0});
        ++plan.rawQueueAccepts;
        raw.push_back(
            CrashPoint{e.persisted, CrashPointKind::BankComplete, 0});
        ++plan.rawBankCompletes;
        if (e.metaAtomic) {
            raw.push_back(CrashPoint{
                e.persisted, CrashPointKind::CommitRecord, 0});
            ++plan.rawCommitRecords;
        }
    }
    for (Tick t : mc.fenceRetires()) {
        raw.push_back(CrashPoint{t, CrashPointKind::FenceRetire, 0});
        ++plan.rawFenceRetires;
    }
    raw.push_back(CrashPoint{journal.back().persisted,
                             CrashPointKind::Final, journal.size()});

    // The durable image at tick T is the journal prefix with
    // persisted <= T (ADR FIFO). Compute each point's prefix with a
    // binary search over the sorted persisted ticks.
    for (CrashPoint &p : raw) {
        auto it = std::upper_bound(
            journal.begin(), journal.end(), p.tick,
            [](Tick t, const JournalEntry &e) {
                return t < e.persisted;
            });
        p.journalPrefix =
            static_cast<std::size_t>(it - journal.begin());
    }

    // Dedupe by prefix: identical prefix == identical durable image.
    // Keep the most descriptive kind and the earliest tick at which
    // that image first exists (so --replay of the point is stable).
    std::sort(raw.begin(), raw.end(),
              [](const CrashPoint &a, const CrashPoint &b) {
                  if (a.journalPrefix != b.journalPrefix)
                      return a.journalPrefix < b.journalPrefix;
                  if (kindPriority(a.kind) != kindPriority(b.kind))
                      return kindPriority(a.kind) >
                             kindPriority(b.kind);
                  return a.tick < b.tick;
              });
    for (const CrashPoint &p : raw) {
        if (!plan.points.empty() &&
            plan.points.back().journalPrefix == p.journalPrefix)
            continue;
        plan.points.push_back(p);
    }
    return plan;
}

std::vector<CrashPoint>
sampleCrashPoints(const std::vector<CrashPoint> &all, std::size_t n,
                  std::uint64_t seed)
{
    if (n == 0 || n >= all.size())
        return all;
    // Partial Fisher-Yates over the interior indices; the endpoints
    // (Initial, Final) are unconditionally kept so every sample
    // covers the empty and the complete durable image.
    std::vector<std::size_t> idx;
    idx.reserve(all.size() - 2);
    for (std::size_t i = 1; i + 1 < all.size(); ++i)
        idx.push_back(i);
    Rng rng(seed);
    std::size_t want = n > 2 ? n - 2 : 0;
    if (want > idx.size())
        want = idx.size();
    for (std::size_t i = 0; i < want; ++i) {
        std::size_t j =
            i + static_cast<std::size_t>(rng.below(idx.size() - i));
        std::swap(idx[i], idx[j]);
    }
    idx.resize(want);
    idx.push_back(0);
    idx.push_back(all.size() - 1);
    std::sort(idx.begin(), idx.end());
    std::vector<CrashPoint> out;
    out.reserve(idx.size());
    for (std::size_t i : idx)
        out.push_back(all[i]);
    return out;
}

PersistentImageBuilder::PersistentImageBuilder(
    const SparseMemory &initial,
    const std::vector<JournalEntry> &journal)
    : journal_(journal)
{
    image_.copyFrom(initial);
}

const SparseMemory &
PersistentImageBuilder::imageAt(std::size_t prefix)
{
    janus_assert(prefix >= applied_,
                 "image prefixes must be nondecreasing (%zu < %zu)",
                 prefix, applied_);
    janus_assert(prefix <= journal_.size(),
                 "prefix %zu exceeds journal size %zu", prefix,
                 journal_.size());
    for (; applied_ < prefix; ++applied_)
        image_.writeLine(journal_[applied_].lineAddr,
                         journal_[applied_].data);
    return image_;
}

} // namespace janus
