/**
 * @file
 * Non-crash fault injection: seeded bit-flip campaigns against the
 * functional BMO backend (stored ciphertext, metadata entries,
 * Merkle tree nodes at every level) asserting the integrity
 * machinery detects each flip and attributes it to the level it was
 * injected at; plus persist-journal perturbations (dropped and
 * duplicated write-queue entries) used as audit-sensitivity
 * controls. All flips are XOR-based and undone after checking, so a
 * campaign leaves the backend bit-identical to how it found it.
 */

#ifndef JANUS_FAULT_INJECTION_HH
#define JANUS_FAULT_INJECTION_HH

#include <cstdint>
#include <vector>

#include "bmo/backend_state.hh"
#include "memctrl/memory_controller.hh"

namespace janus
{

/** Tally of one injection category. */
struct InjectionCounts
{
    std::uint64_t injected = 0;
    /** Integrity verification flagged the line. */
    std::uint64_t detected = 0;
    /** Detected, but attributed to the wrong tree level. */
    std::uint64_t misattributed = 0;

    bool clean() const
    {
        return detected == injected && misattributed == 0;
    }
};

/** Outcome of a full bit-flip campaign against one backend. */
struct InjectionReport
{
    /** Ciphertext flips, caught by the per-line MAC. */
    InjectionCounts data;
    /** Metadata-entry flips, caught by the Merkle leaf digest. */
    InjectionCounts meta;
    /** Tree-node flips per level (index = injected level,
     *  0 = leaf digests, levels() = the stored top node vs the
     *  secure root register). */
    std::vector<InjectionCounts> tree;
    /** Flips on a backend without integrity: expected UNdetected
     *  (detected counts verification false-positives here). */
    InjectionCounts uncoveredControl;

    bool passed() const;
};

/**
 * Run a seeded bit-flip campaign: @p trials flips per category
 * against lines the run actually wrote. @p backend must have
 * integrity (and encryption) enabled; it is restored bit-identically
 * before returning.
 */
InjectionReport runInjectionCampaign(BmoBackendState &backend,
                                     const std::vector<Addr> &lines,
                                     unsigned trials,
                                     std::uint64_t seed);

/**
 * The negative control of the campaign: the same data flips against
 * a freshly built backend with integrity (and encryption) disabled
 * must sail through verification undetected — proving detection
 * comes from the MAC/Merkle machinery, not the harness.
 */
InjectionCounts runUncoveredControl(unsigned trials,
                                    std::uint64_t seed);

/**
 * Durable image with journal entry @p index dropped (a write-queue
 * entry lost by the persist domain). Recovery over this image is an
 * audit-sensitivity control: for a suitably chosen entry the
 * workload validator must reject it.
 */
SparseMemory imageWithDroppedEntry(
    const SparseMemory &initial,
    const std::vector<JournalEntry> &journal, std::size_t index);

/**
 * Durable image with journal entry @p index applied twice (a
 * duplicated write-queue entry). Line persists are idempotent, so
 * recovery over this image must succeed.
 */
SparseMemory imageWithDuplicatedEntry(
    const SparseMemory &initial,
    const std::vector<JournalEntry> &journal, std::size_t index);

} // namespace janus

#endif // JANUS_FAULT_INJECTION_HH
