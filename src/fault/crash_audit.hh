/**
 * @file
 * Crash-audit driver: run a workload with the persist journal
 * enabled, enumerate (or sample) every persist-boundary crash
 * point, and for each one rebuild the durable image, run undo-log
 * recovery and check the workload's any-boundary invariants —
 * recording failures instead of aborting, so one audit reports every
 * broken point with a minimized reproduction handle. After the
 * sweep the functional BMO backend itself is audited (Merkle root
 * recomputation, dedup-refcount rebuild, per-line MAC/path checks)
 * and an optional bit-flip campaign exercises the integrity
 * machinery (see fault/injection.hh).
 */

#ifndef JANUS_FAULT_CRASH_AUDIT_HH
#define JANUS_FAULT_CRASH_AUDIT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fault/crash_points.hh"
#include "fault/injection.hh"
#include "harness/experiment.hh"

namespace janus
{

/** One audited run. */
struct AuditConfig
{
    std::string workload = "array_swap";
    WritePathMode mode = WritePathMode::Janus;
    /** Manually instrumented kernels (Janus mode). */
    bool manual = true;
    unsigned txnsPerCore = 30;
    /** Workload RNG seed (reproduces the exact write sequence). */
    std::uint64_t seed = 1;
    /** 0 = exhaustive sweep; else sample this many crash points. */
    std::size_t samplePoints = 0;
    std::uint64_t sampleSeed = 1;
    /** Bit-flip trials per injection category (0 = skip). */
    unsigned injectionTrials = 0;
    /** Online resilience layer for the audited run (--faults=on):
     *  crash recovery must hold with retries/remaps live. */
    ResilienceConfig resilience;
    /** Controller-side group commit for the audited run (0/1 =
     *  off): recovery must hold when persists retire in batches. */
    unsigned groupCommitK = 0;
    /** WAL workloads: fence every G records (see WorkloadParams). */
    unsigned walGroup = 1;
};

/** One crash point whose recovered image failed validation. */
struct AuditFailure
{
    Tick tick = 0;
    CrashPointKind kind = CrashPointKind::Initial;
    std::size_t journalPrefix = 0;
    /** The panic message of the failed recovery/validation. */
    std::string error;
};

/** Everything one audit produced. */
struct AuditReport
{
    AuditConfig config;
    /** Enumerated (deduplicated) crash points. */
    std::size_t totalPoints = 0;
    /** Points actually swept (== totalPoints unless sampled). */
    std::size_t sweptPoints = 0;
    std::size_t rawQueueAccepts = 0;
    std::size_t rawBankCompletes = 0;
    std::size_t rawCommitRecords = 0;
    std::size_t rawFenceRetires = 0;
    /** Crash points whose recovery rolled a transaction back. */
    std::uint64_t rollbacks = 0;
    std::vector<AuditFailure> failures;
    /** Content hash of the final recovered durable image. */
    std::uint64_t finalImageHash = 0;
    /** Merkle root + refcount rebuild + per-line checks all clean. */
    bool backendVerified = false;
    /** Populated when config.injectionTrials > 0. */
    InjectionReport injection;
    bool injectionRan = false;

    bool hasFailure() const { return !failures.empty(); }
    Tick firstFailingTick() const
    {
        return failures.empty() ? 0 : failures.front().tick;
    }
    /** Minimized reproduction handle for the first failure. */
    std::string repro() const;
    bool passed() const;
    /** The machine-readable report (schema in EXPERIMENTS.md). */
    std::string toJson() const;
};

/** Run one full audit. */
AuditReport runCrashAudit(const AuditConfig &config);

/** Outcome of replaying a single crash point. */
struct ReplayResult
{
    /** Content hash of the pre-recovery durable image at the tick
     *  (bit-identical across replays of the same tick + seed). */
    std::uint64_t imageHash = 0;
    /** Content hash after undo-log recovery. */
    std::uint64_t recoveredHash = 0;
    std::size_t journalPrefix = 0;
    unsigned rollbacks = 0;
    bool recovered = false;
    std::string error;
};

/**
 * Deterministically re-simulate @p config and crash at @p tick:
 * the `--replay=<tick>:<seed>` path of the audit driver.
 */
ReplayResult replayCrashPoint(const AuditConfig &config, Tick tick);

} // namespace janus

#endif // JANUS_FAULT_CRASH_AUDIT_HH
