/**
 * @file
 * Crash-point enumeration over the persist path. A journal-enabled
 * run records, for every durable write, the ticks at which it passed
 * the persist-path stages the protocol's correctness hangs on:
 * write-queue acceptance (ADR: accepted == durable-on-crash), NVM
 * bank write completion (FIFO-ordered durability), sfence
 * retirement, and the metadata-atomic commit record of tx_finish.
 * The enumerator turns those hooks into a deduplicated, sorted list
 * of crash points — instants whose durable images are pairwise
 * distinct — so a sweep is exhaustive over *observable* crash states
 * without re-testing identical images.
 */

#ifndef JANUS_FAULT_CRASH_POINTS_HH
#define JANUS_FAULT_CRASH_POINTS_HH

#include <cstdint>
#include <vector>

#include "mem/sparse_memory.hh"
#include "memctrl/memory_controller.hh"

namespace janus
{

/** Which persist-path hook produced a crash point. */
enum class CrashPointKind : std::uint8_t
{
    Initial,      ///< before the first durable write
    QueueAccept,  ///< a write entered the ADR persist domain
    BankComplete, ///< a write became durable (bank + FIFO order)
    CommitRecord, ///< a metadata-atomic commit record became durable
    FenceRetire,  ///< an sfence retired on some core
    Final,        ///< after the last durable write
};

const char *toString(CrashPointKind kind);

/**
 * One instant to cut the simulation at. The durable image at a
 * point is a pure function of @ref journalPrefix (the number of
 * journal entries with persisted <= tick), which is what the
 * enumerator dedupes on.
 */
struct CrashPoint
{
    Tick tick = 0;
    CrashPointKind kind = CrashPointKind::Initial;
    /** Journal entries durable at this instant. */
    std::size_t journalPrefix = 0;
};

/** The full enumeration plus the raw (pre-dedup) hook counts. */
struct CrashPlan
{
    /** Deduplicated points, sorted by journalPrefix (and tick). */
    std::vector<CrashPoint> points;
    std::size_t rawQueueAccepts = 0;
    std::size_t rawBankCompletes = 0;
    std::size_t rawCommitRecords = 0;
    std::size_t rawFenceRetires = 0;
};

/**
 * Enumerate every persist-boundary crash point of a finished,
 * journal-enabled run. Panics if the journal is disabled/empty or
 * out of durability order.
 */
CrashPlan planCrashPoints(const MemoryController &mc);

/**
 * Sample @p n points from @p all with a seeded generator (without
 * replacement, deterministic for a given seed). The Initial and
 * Final points are always kept. Returns all points when n is zero
 * or not smaller than the plan.
 */
std::vector<CrashPoint> sampleCrashPoints(
    const std::vector<CrashPoint> &all, std::size_t n,
    std::uint64_t seed);

/**
 * Incremental durable-image reconstruction: starting from the
 * post-setup initial image, applies journal prefixes in
 * nondecreasing order so a full sweep costs one pass over the
 * journal instead of one replay per point.
 */
class PersistentImageBuilder
{
  public:
    PersistentImageBuilder(const SparseMemory &initial,
                           const std::vector<JournalEntry> &journal);

    /**
     * The durable image with the first @p prefix journal entries
     * applied. @p prefix must be nondecreasing across calls.
     */
    const SparseMemory &imageAt(std::size_t prefix);

  private:
    SparseMemory image_;
    const std::vector<JournalEntry> &journal_;
    std::size_t applied_ = 0;
};

} // namespace janus

#endif // JANUS_FAULT_CRASH_POINTS_HH
