#include "fault/injection.hh"

#include "common/logging.hh"
#include "common/random.hh"

namespace janus
{

namespace
{

/**
 * Metadata bits eligible for injection: the 64-bit phys word, the
 * 56-bit counter and the dup flag. The valid flag (bit 120) is
 * excluded because clearing it turns the entry into "never written",
 * which verification legitimately skips; bits 122..127 are excluded
 * because the serialized format does not store them (a flip there
 * would not round-trip, breaking the self-healing restore).
 */
unsigned
pickMetaBit(Rng &rng)
{
    unsigned bit =
        static_cast<unsigned>(rng.below(15 * 8 + 1));
    return bit == 15 * 8 ? 121 : bit;
}

} // namespace

bool
InjectionReport::passed() const
{
    if (!data.clean() || !meta.clean())
        return false;
    for (const InjectionCounts &level : tree)
        if (!level.clean())
            return false;
    // The control is inverted: nothing may be detected.
    return uncoveredControl.detected == 0 &&
           uncoveredControl.injected > 0;
}

InjectionReport
runInjectionCampaign(BmoBackendState &backend,
                     const std::vector<Addr> &lines, unsigned trials,
                     std::uint64_t seed)
{
    janus_assert(backend.config().integrity,
                 "the injection campaign targets the integrity "
                 "machinery; enable it");
    janus_assert(!lines.empty(), "no lines to inject into");

    InjectionReport report;
    const unsigned levels = backend.config().merkleLevels;
    report.tree.resize(levels + 1);
    Rng rng(seed);

    auto pickLine = [&] {
        return lines[rng.below(lines.size())];
    };

    // Ciphertext flips: the MAC over (ciphertext, counter) must
    // catch every one; the tree covers metadata only and must not.
    for (unsigned t = 0; t < trials; ++t) {
        Addr line = pickLine();
        unsigned bit = static_cast<unsigned>(rng.below(8 * lineBytes));
        backend.injectStoredDataBitFlip(line, bit);
        IntegrityVerdict v = backend.verifyLineIntegrity(line);
        ++report.data.injected;
        if (!v.ok())
            ++report.data.detected;
        if (!v.tree.ok)
            ++report.data.misattributed;
        backend.injectStoredDataBitFlip(line, bit); // heal
    }

    // Metadata-entry flips: the leaf digest disagrees, so the path
    // verdict must fail at level 0.
    for (unsigned t = 0; t < trials; ++t) {
        Addr line = pickLine();
        unsigned bit = pickMetaBit(rng);
        backend.injectMetaBitFlip(line, bit);
        IntegrityVerdict v = backend.verifyLineIntegrity(line);
        ++report.meta.injected;
        if (!v.ok())
            ++report.meta.detected;
        if (!v.tree.ok && v.tree.failLevel != 0)
            ++report.meta.misattributed;
        backend.injectMetaBitFlip(line, bit); // heal
    }

    // Tree-node flips, every level: the path walk must fail exactly
    // at the injected level.
    constexpr unsigned digestBits = 8 * sizeof(Sha1Digest::bytes);
    for (unsigned level = 0; level <= levels; ++level) {
        InjectionCounts &counts = report.tree[level];
        for (unsigned t = 0; t < trials; ++t) {
            Addr line = pickLine();
            unsigned bit =
                static_cast<unsigned>(rng.below(digestBits));
            backend.injectTreeBitFlip(line, level, bit);
            IntegrityVerdict v = backend.verifyLineIntegrity(line);
            ++counts.injected;
            if (!v.tree.ok)
                ++counts.detected;
            if (!v.tree.ok && v.tree.failLevel != level)
                ++counts.misattributed;
            backend.injectTreeBitFlip(line, level, bit); // heal
        }
    }

    report.uncoveredControl = runUncoveredControl(trials, seed);
    return report;
}

InjectionCounts
runUncoveredControl(unsigned trials, std::uint64_t seed)
{
    // A scratch backend with the integrity (and encryption) BMOs
    // disabled: lines it stores are plain, uncovered NVM. The very
    // same flips must go unnoticed.
    BmoConfig plain;
    plain.encryption = false;
    plain.deduplication = false;
    plain.integrity = false;
    BmoBackendState backend(plain);

    Rng rng(seed);
    std::vector<Addr> lines;
    for (Addr a = 0; a < 8; ++a) {
        CacheLine data;
        for (unsigned i = 0; i < lineBytes; ++i)
            data.data()[i] =
                static_cast<std::uint8_t>(rng.next() & 0xFF);
        backend.writeLine(a << lineShift, data);
        lines.push_back(a << lineShift);
    }

    InjectionCounts counts;
    for (unsigned t = 0; t < trials; ++t) {
        Addr line = lines[rng.below(lines.size())];
        unsigned bit = static_cast<unsigned>(rng.below(8 * lineBytes));
        backend.injectStoredDataBitFlip(line, bit);
        IntegrityVerdict v = backend.verifyLineIntegrity(line);
        ++counts.injected;
        if (!v.ok())
            ++counts.detected;
        backend.injectStoredDataBitFlip(line, bit); // heal
    }
    return counts;
}

SparseMemory
imageWithDroppedEntry(const SparseMemory &initial,
                      const std::vector<JournalEntry> &journal,
                      std::size_t index)
{
    janus_assert(index < journal.size(),
                 "dropped entry %zu of %zu", index, journal.size());
    SparseMemory image;
    image.copyFrom(initial);
    for (std::size_t i = 0; i < journal.size(); ++i)
        if (i != index)
            image.writeLine(journal[i].lineAddr, journal[i].data);
    return image;
}

SparseMemory
imageWithDuplicatedEntry(const SparseMemory &initial,
                         const std::vector<JournalEntry> &journal,
                         std::size_t index)
{
    janus_assert(index < journal.size(),
                 "duplicated entry %zu of %zu", index,
                 journal.size());
    SparseMemory image;
    image.copyFrom(initial);
    for (std::size_t i = 0; i < journal.size(); ++i) {
        image.writeLine(journal[i].lineAddr, journal[i].data);
        if (i == index)
            image.writeLine(journal[i].lineAddr, journal[i].data);
    }
    return image;
}

} // namespace janus
