/**
 * @file
 * Generic set-associative tag array with LRU replacement. Used for
 * the core-side data caches, the encryption counter cache and the
 * Merkle-tree cache; only tags and dirty bits are modeled (data lives
 * in the functional memory).
 */

#ifndef JANUS_CACHE_SET_ASSOC_CACHE_HH
#define JANUS_CACHE_SET_ASSOC_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"
#include "sim/stats.hh"

namespace janus
{

/** Result of a cache access. */
struct CacheAccessResult
{
    bool hit;
    /** Line address of a dirty line evicted by this fill, if any. */
    std::optional<Addr> writeback;
};

/** A set-associative, write-allocate tag array with true-LRU. */
class SetAssocCache
{
  public:
    /**
     * @param name        stat-group name
     * @param size_bytes  total capacity
     * @param assoc       associativity (ways)
     * @param line_bytes  block size (defaults to the global line size)
     */
    SetAssocCache(const std::string &name, std::uint64_t size_bytes,
                  unsigned assoc, unsigned line_bytes = lineBytes);

    /**
     * Access a line; fills on miss.
     * @param addr   any address inside the line
     * @param write  whether to mark the line dirty
     */
    CacheAccessResult access(Addr addr, bool write);

    /** @return true if the line is present (no state change). */
    bool probe(Addr addr) const;

    /** Invalidate the line if present; @return true if it was dirty. */
    bool invalidate(Addr addr);

    /** Invalidate everything (e.g., on simulated crash). */
    void invalidateAll();

    unsigned numSets() const { return numSets_; }
    unsigned assoc() const { return assoc_; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    /** Hit ratio over all accesses so far. */
    double
    hitRate() const
    {
        std::uint64_t total = hits_ + misses_;
        return total ? static_cast<double>(hits_) / total : 0.0;
    }

    const std::string &name() const { return name_; }

  private:
    struct Way
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t lruStamp = 0;
    };

    unsigned setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    std::string name_;
    unsigned lineBytes_;
    unsigned lineShift_;
    unsigned numSets_;
    unsigned assoc_;
    std::vector<Way> ways_;
    std::uint64_t stamp_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace janus

#endif // JANUS_CACHE_SET_ASSOC_CACHE_HH
