#include "cache/set_assoc_cache.hh"

#include <bit>

#include "common/logging.hh"

namespace janus
{

SetAssocCache::SetAssocCache(const std::string &name,
                             std::uint64_t size_bytes, unsigned assoc,
                             unsigned line_bytes)
    : name_(name), lineBytes_(line_bytes), assoc_(assoc)
{
    janus_assert(line_bytes != 0 && std::has_single_bit(line_bytes),
                 "line size must be a power of two");
    janus_assert(assoc > 0, "associativity must be positive");
    std::uint64_t lines = size_bytes / line_bytes;
    janus_assert(lines >= assoc, "cache smaller than one set");
    numSets_ = static_cast<unsigned>(lines / assoc);
    janus_assert(std::has_single_bit(numSets_),
                 "set count must be a power of two (got %u)", numSets_);
    lineShift_ = static_cast<unsigned>(std::countr_zero(line_bytes));
    ways_.resize(static_cast<std::size_t>(numSets_) * assoc_);
}

unsigned
SetAssocCache::setIndex(Addr addr) const
{
    return static_cast<unsigned>((addr >> lineShift_) & (numSets_ - 1));
}

Addr
SetAssocCache::tagOf(Addr addr) const
{
    return addr >> lineShift_;
}

CacheAccessResult
SetAssocCache::access(Addr addr, bool write)
{
    Addr tag = tagOf(addr);
    Way *set = &ways_[static_cast<std::size_t>(setIndex(addr)) * assoc_];

    Way *invalid_way = nullptr;
    Way *lru_way = nullptr;
    for (unsigned w = 0; w < assoc_; ++w) {
        Way &way = set[w];
        if (way.valid && way.tag == tag) {
            way.lruStamp = ++stamp_;
            way.dirty = way.dirty || write;
            ++hits_;
            return {true, std::nullopt};
        }
        if (!way.valid) {
            if (!invalid_way)
                invalid_way = &way;
        } else if (!lru_way || way.lruStamp < lru_way->lruStamp) {
            lru_way = &way;
        }
    }
    Way *victim = invalid_way ? invalid_way : lru_way;

    ++misses_;
    std::optional<Addr> writeback;
    if (victim->valid && victim->dirty)
        writeback = victim->tag << lineShift_;
    victim->valid = true;
    victim->dirty = write;
    victim->tag = tag;
    victim->lruStamp = ++stamp_;
    return {false, writeback};
}

bool
SetAssocCache::probe(Addr addr) const
{
    Addr tag = tagOf(addr);
    const Way *set =
        &ways_[static_cast<std::size_t>(setIndex(addr)) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w)
        if (set[w].valid && set[w].tag == tag)
            return true;
    return false;
}

bool
SetAssocCache::invalidate(Addr addr)
{
    Addr tag = tagOf(addr);
    Way *set = &ways_[static_cast<std::size_t>(setIndex(addr)) * assoc_];
    for (unsigned w = 0; w < assoc_; ++w) {
        Way &way = set[w];
        if (way.valid && way.tag == tag) {
            bool was_dirty = way.dirty;
            way.valid = false;
            way.dirty = false;
            return was_dirty;
        }
    }
    return false;
}

void
SetAssocCache::invalidateAll()
{
    for (auto &way : ways_) {
        way.valid = false;
        way.dirty = false;
    }
}

} // namespace janus
