/**
 * @file
 * Critical-path taxonomy and per-persist attribution for the persist
 * profiler. The memory controller walks the binding-predecessor
 * chain of every persist (see ExecProvenance in bmo/bmo_engine.hh)
 * and classifies each interval of [arrival, durable] as exactly one
 * *edge type*: the resource or dependency that set the interval's
 * start time. The resulting segments partition the end-to-end
 * persist latency tick-exactly — a strictly stronger invariant than
 * the 3-stage (bmo/queue/order) sum, which it refines.
 *
 * Edge taxonomy (one edge per segment):
 *
 *   bmo stage    ExecAes / ExecHash / ExecDedup / ExecOther — a
 *                sub-operation was actually executing (by BMO kind);
 *                UnitBusy — waiting for a shared BMO unit;
 *                TreePipe — waiting for a pipelined tree-level
 *                update unit (streamlined integrity engine);
 *                IrbLookup — the IRB lookup latency of the Janus
 *                front-end;
 *                PreExecWait — waiting for in-flight pre-execution
 *                launched before the write arrived;
 *                Unattributed — defensive catch-all so the partition
 *                never silently lies (zero on all known paths);
 *                QosThrottle — per-tenant token-bucket shaping
 *                delayed the write's entry into the BMO pipeline
 *                (exactly 0 when QoS is off);
 *   queue stage  WqFull — NVM write-queue acceptance stall;
 *                MediaRetry — write-verify retries / bad-line remap
 *                programming (resilience layer);
 *                MetaCowrite — the co-located metadata write of a
 *                selective-atomicity commit bound durability;
 *   order stage  OrderFifo — per-stream FIFO durability wait;
 *                GroupCommitWait — parked in the controller's
 *                group-commit stage until the batch retired
 *                (exactly 0 when group commit is off).
 *
 * Everything here is pure observation: profiling on or off never
 * changes a computed tick.
 */

#ifndef JANUS_SIM_CRITPATH_HH
#define JANUS_SIM_CRITPATH_HH

#include <array>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace janus
{

/** Which resource chain bounded one critical-path segment. */
enum class CritEdge : std::uint8_t
{
    ExecAes,      ///< encryption sub-op executing
    ExecHash,     ///< integrity (hash) sub-op executing
    ExecDedup,    ///< deduplication sub-op executing
    ExecOther,    ///< compression / other sub-op executing
    UnitBusy,     ///< shared BMO unit pool occupied
    TreePipe,     ///< pipelined tree-level update unit occupied
    IrbLookup,    ///< Janus IRB lookup latency
    PreExecWait,  ///< in-flight pre-execution not yet finished
    Unattributed, ///< defensive: walk found no recorded cause
    WqFull,       ///< NVM write-queue acceptance stall
    MediaRetry,   ///< write-verify retry / remap programming
    MetaCowrite,  ///< metadata co-write bound durability
    OrderFifo,    ///< per-stream FIFO ordering wait
    GroupCommitWait, ///< parked awaiting group-commit batch retire
    QosThrottle,  ///< per-tenant token-bucket shaping delay
};

/** Number of edge types (array sizing). */
constexpr std::size_t numCritEdges =
    static_cast<std::size_t>(CritEdge::QosThrottle) + 1;

/** Stable snake_case edge name (JSON keys, flame-graph frames). */
const char *critEdgeName(CritEdge edge);

/** The persist pipeline stage an edge belongs to
 *  ("bmo" / "queue" / "order"). */
const char *critEdgeStage(CritEdge edge);

/** One attributed interval of a persist's critical path. */
struct CritSegment
{
    CritEdge edge;
    Tick ticks;
};

/**
 * Aggregated per-edge critical-path shares. POD so experiment
 * results can copy it out of the controller; all ticks are exact
 * integer sums, so `sum(edgeTicks) == totalTicks` holds bit-exactly
 * whenever every recorded persist partitioned.
 */
struct CritPathSummary
{
    std::array<std::uint64_t, numCritEdges> edgeTicks{};
    std::uint64_t totalTicks = 0;
    std::uint64_t persists = 0;

    std::uint64_t
    ticksOf(CritEdge edge) const
    {
        return edgeTicks[static_cast<std::size_t>(edge)];
    }

    /** Fraction of total persist latency bounded by @p edge. */
    double share(CritEdge edge) const;

    /** Sum of all edge shares; 1.0 exactly when persists were
     *  recorded (0 when none — nothing to partition). */
    double shareSum() const;

    /** Fold another channel's summary in (exact integer sums, so the
     *  partition invariant carries over to the merged view). */
    void
    merge(const CritPathSummary &other)
    {
        for (std::size_t i = 0; i < numCritEdges; ++i)
            edgeTicks[i] += other.edgeTicks[i];
        totalTicks += other.totalTicks;
        persists += other.persists;
    }
};

/**
 * Write folded-stack flame-graph lines
 * ("prefix;persist;<stage>;<edge> <ns>") for every edge with nonzero
 * time; load with flamegraph.pl / speedscope.
 */
void writeFoldedSummary(const CritPathSummary &summary,
                        std::ostream &os, const std::string &prefix);

/**
 * Per-controller accumulator. The controller submits one segment
 * list per persist; addPersist asserts that the segments partition
 * the persist's end-to-end latency tick-exactly (the profiler's
 * core invariant) before folding them into the summary.
 */
class CritPathProfiler
{
  public:
    /**
     * Fold one persist's segments in.
     *
     * @param segments  attributed intervals, any order
     * @param total     end-to-end persist latency in ticks
     *                  (must equal the segment sum exactly)
     */
    void addPersist(const std::vector<CritSegment> &segments,
                    Tick total);

    const CritPathSummary &summary() const { return summary_; }

    /** writeFoldedSummary over this profiler's summary. */
    void writeFolded(std::ostream &os,
                     const std::string &prefix) const
    {
        writeFoldedSummary(summary_, os, prefix);
    }

  private:
    CritPathSummary summary_;
};

} // namespace janus

#endif // JANUS_SIM_CRITPATH_HH
