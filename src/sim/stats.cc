#include "sim/stats.hh"

#include <algorithm>

#include "common/logging.hh"

namespace janus
{

void
Average::sample(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    sum_ += v;
    ++count_;
}

void
Average::reset()
{
    sum_ = min_ = max_ = 0;
    count_ = 0;
}

Histogram::Histogram(double lo, double hi, unsigned buckets)
    : lo_(lo), hi_(hi), buckets_(buckets, 0)
{
    janus_assert(hi > lo && buckets > 0, "bad histogram bounds");
}

void
Histogram::sample(double v)
{
    ++count_;
    sum_ += v;
    if (v < lo_) {
        ++under_;
    } else if (v >= hi_) {
        ++over_;
    } else {
        auto idx = static_cast<std::size_t>(
            (v - lo_) / (hi_ - lo_) * buckets_.size());
        if (idx >= buckets_.size())
            idx = buckets_.size() - 1;
        ++buckets_[idx];
    }
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    under_ = over_ = count_ = 0;
    sum_ = 0;
}

Scalar &
StatGroup::scalar(const std::string &stat)
{
    return scalars_[stat];
}

Average &
StatGroup::average(const std::string &stat)
{
    return averages_[stat];
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[stat, s] : scalars_)
        os << name_ << '.' << stat << ' ' << s.value() << '\n';
    for (const auto &[stat, a] : averages_) {
        os << name_ << '.' << stat << ".mean " << a.mean() << '\n';
        os << name_ << '.' << stat << ".count " << a.count() << '\n';
    }
}

void
StatGroup::reset()
{
    for (auto &[stat, s] : scalars_)
        s.reset();
    for (auto &[stat, a] : averages_)
        a.reset();
}

} // namespace janus
