#include "sim/stats.hh"

#include <algorithm>

#include "common/logging.hh"

namespace janus
{

void
Average::sample(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    sum_ += v;
    ++count_;
}

void
Average::reset()
{
    sum_ = min_ = max_ = 0;
    count_ = 0;
}

void
Average::merge(const Average &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    sum_ += other.sum_;
    count_ += other.count_;
}

Histogram::Histogram(double lo, double hi, unsigned buckets)
    : lo_(lo), hi_(hi), buckets_(buckets, 0)
{
    janus_assert(hi > lo && buckets > 0, "bad histogram bounds");
}

void
Histogram::sample(double v)
{
    ++count_;
    sum_ += v;
    if (v < lo_) {
        ++under_;
    } else if (v >= hi_) {
        ++over_;
    } else {
        auto idx = static_cast<std::size_t>(
            (v - lo_) / (hi_ - lo_) * buckets_.size());
        if (idx >= buckets_.size())
            idx = buckets_.size() - 1;
        ++buckets_[idx];
    }
}

double
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0; // defined: no samples, no quantile
    if (count_ == 1)
        return sum_; // the one sample, exactly (no interpolation)
    q = std::clamp(q, 0.0, 1.0);
    double target = q * static_cast<double>(count_);
    double seen = static_cast<double>(under_);
    if (target <= seen)
        return lo_;
    const double width =
        (hi_ - lo_) / static_cast<double>(buckets_.size());
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        double in_bucket = static_cast<double>(buckets_[i]);
        if (seen + in_bucket >= target && in_bucket > 0) {
            double frac = (target - seen) / in_bucket;
            return lo_ + (static_cast<double>(i) + frac) * width;
        }
        seen += in_bucket;
    }
    return hi_; // target falls among the overflow samples
}

void
Histogram::merge(const Histogram &other)
{
    janus_assert(lo_ == other.lo_ && hi_ == other.hi_ &&
                     buckets_.size() == other.buckets_.size(),
                 "histogram merge requires identical shape");
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    under_ += other.under_;
    over_ += other.over_;
    count_ += other.count_;
    sum_ += other.sum_;
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    under_ = over_ = count_ = 0;
    sum_ = 0;
}

void
TimeWeightedGauge::set(double v, Tick now)
{
    if (now > last_) {
        integral_ +=
            cur_ * static_cast<double>(now - last_);
        last_ = now;
    }
    cur_ = v;
    max_ = std::max(max_, v);
}

double
TimeWeightedGauge::timeAverage(Tick now) const
{
    now = std::max(now, last_);
    if (now == 0)
        return 0;
    double integral =
        integral_ + cur_ * static_cast<double>(now - last_);
    return integral / static_cast<double>(now);
}

void
TimeWeightedGauge::merge(const TimeWeightedGauge &other)
{
    // Extend both parts to the later observation end so their
    // integrals cover the same window, then add them.
    Tick end = std::max(last_, other.last_);
    double mine =
        integral_ + cur_ * static_cast<double>(end - last_);
    double theirs = other.integral_ +
                    other.cur_ * static_cast<double>(end - other.last_);
    integral_ = mine + theirs;
    last_ = end;
    cur_ += other.cur_;
    max_ += other.max_;
}

void
TimeWeightedGauge::reset()
{
    cur_ = max_ = integral_ = 0;
    last_ = 0;
}

Scalar &
StatGroup::scalar(const std::string &stat)
{
    return scalars_[stat];
}

Average &
StatGroup::average(const std::string &stat)
{
    return averages_[stat];
}

Histogram &
StatGroup::histogram(const std::string &stat, double lo, double hi,
                     unsigned buckets)
{
    auto it = histograms_.find(stat);
    if (it == histograms_.end())
        it = histograms_.emplace(stat, Histogram(lo, hi, buckets))
                 .first;
    return it->second;
}

TimeWeightedGauge &
StatGroup::gauge(const std::string &stat)
{
    return gauges_[stat];
}

std::vector<std::pair<std::string, double>>
StatGroup::flatten() const
{
    std::vector<std::pair<std::string, double>> leaves;
    for (const auto &[stat, s] : scalars_)
        leaves.emplace_back(stat, s.value());
    for (const auto &[stat, a] : averages_) {
        leaves.emplace_back(stat + ".mean", a.mean());
        leaves.emplace_back(stat + ".count",
                            static_cast<double>(a.count()));
    }
    for (const auto &[stat, h] : histograms_) {
        leaves.emplace_back(stat + ".mean", h.mean());
        leaves.emplace_back(stat + ".count",
                            static_cast<double>(h.count()));
        leaves.emplace_back(stat + ".p50", h.quantile(0.5));
        leaves.emplace_back(stat + ".p99", h.quantile(0.99));
        leaves.emplace_back(stat + ".underflows",
                            static_cast<double>(h.underflows()));
        leaves.emplace_back(stat + ".overflows",
                            static_cast<double>(h.overflows()));
    }
    for (const auto &[stat, g] : gauges_) {
        leaves.emplace_back(stat + ".timeAvg", g.timeAverage());
        leaves.emplace_back(stat + ".max", g.max());
    }
    return leaves;
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[stat, value] : flatten())
        os << name_ << '.' << stat << ' ' << value << '\n';
}

void
StatGroup::dumpJson(std::ostream &os) const
{
    os << '"' << name_ << "\": {";
    bool first = true;
    for (const auto &[stat, value] : flatten()) {
        os << (first ? "" : ", ") << '"' << stat << "\": " << value;
        first = false;
    }
    os << '}';
}

void
StatGroup::merge(const StatGroup &other)
{
    for (const auto &[stat, s] : other.scalars_)
        scalars_[stat] += s.value();
    for (const auto &[stat, a] : other.averages_)
        averages_[stat].merge(a);
    for (const auto &[stat, h] : other.histograms_) {
        auto it = histograms_.find(stat);
        if (it == histograms_.end())
            histograms_.emplace(stat, h);
        else
            it->second.merge(h);
    }
    for (const auto &[stat, g] : other.gauges_)
        gauges_[stat].merge(g);
}

void
StatGroup::reset()
{
    for (auto &[stat, s] : scalars_)
        s.reset();
    for (auto &[stat, a] : averages_)
        a.reset();
    for (auto &[stat, h] : histograms_)
        h.reset();
    for (auto &[stat, g] : gauges_)
        g.reset();
}

} // namespace janus
