/**
 * @file
 * Discrete-event simulation kernel. A single EventQueue orders all
 * simulated activity; components schedule closures at absolute ticks
 * and the queue executes them in (tick, insertion-order) order, which
 * makes simulations fully deterministic.
 */

#ifndef JANUS_SIM_EVENTQ_HH
#define JANUS_SIM_EVENTQ_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "common/types.hh"

namespace janus
{

/**
 * The central event queue. Events are one-shot closures; recurring
 * behaviour is expressed by rescheduling from inside the closure.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /** Schedule a closure at an absolute tick (>= curTick). */
    void schedule(Tick when, std::function<void()> fn);

    /** Schedule a closure after a relative delay. */
    void
    scheduleIn(Tick delay, std::function<void()> fn)
    {
        schedule(curTick_ + delay, std::move(fn));
    }

    /** @return true if no events are pending. */
    bool empty() const { return events_.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return events_.size(); }

    /**
     * Run events until the queue drains or the (absolute) limit tick
     * is passed. Events scheduled exactly at the limit still run.
     *
     * @return number of events executed.
     */
    std::uint64_t run(Tick limit = maxTick);

    /**
     * Execute exactly one event if any is pending.
     * @return true if an event ran.
     */
    bool step();

    /** Total number of events executed so far. */
    std::uint64_t executed() const { return executed_; }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        std::function<void()> fn;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events_;
    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
};

/**
 * Base class for named simulated components that live on an event
 * queue.
 */
class SimObject
{
  public:
    SimObject(std::string name, EventQueue &eq)
        : name_(std::move(name)), eventq_(eq)
    {}

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    /** Component instance name (used in stats and logs). */
    const std::string &name() const { return name_; }

    /** The event queue this object lives on. */
    EventQueue &eventq() { return eventq_; }

    /** Current simulated time. */
    Tick curTick() const { return eventq_.curTick(); }

  protected:
    /** Schedule a member-closure after a relative delay. */
    void
    schedule(Tick delay, std::function<void()> fn)
    {
        eventq_.scheduleIn(delay, std::move(fn));
    }

  private:
    std::string name_;
    EventQueue &eventq_;
};

} // namespace janus

#endif // JANUS_SIM_EVENTQ_HH
