/**
 * @file
 * Discrete-event simulation kernel. A single EventQueue orders all
 * simulated activity; components schedule closures at absolute ticks
 * and the queue executes them in (tick, insertion-order) order, which
 * makes simulations fully deterministic.
 *
 * The kernel is allocation-free on the hot path:
 *
 *  - EventFn is a small-buffer-optimized move-only callable: captures
 *    up to EventFn::inlineBytes (48) bytes live in place; larger
 *    closures spill to one heap allocation (like std::function, but
 *    with a bigger buffer and no copyability requirement).
 *
 *  - The queue itself is two-level (a calendar queue backed by a
 *    heap): a ring of quantum-granular FIFO buckets covers the near
 *    future, and a conventional binary min-heap holds far-future
 *    events. Every event carries a global sequence number, so the
 *    exact (tick, insertion-order) contract of the original
 *    priority-queue kernel is preserved bit-for-bit.
 */

#ifndef JANUS_SIM_EVENTQ_HH
#define JANUS_SIM_EVENTQ_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <new>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace janus
{

/**
 * Move-only type-erased `void()` callable with small-buffer
 * optimization. Closures whose captures fit in @ref inlineBytes are
 * stored in place; larger ones cost a single heap allocation.
 */
class EventFn
{
  public:
    /** In-place capture capacity, sized for the simulator's largest
     *  hot-path closures (a few pointers plus a couple of scalars). */
    static constexpr std::size_t inlineBytes = 48;

    EventFn() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventFn> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    EventFn(F &&f) // NOLINT: implicit by design (drop-in for
                   // std::function at every schedule() call site)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(storage_))
                Fn(std::forward<F>(f));
            vtable_ = &inlineVTable<Fn>;
        } else {
            *reinterpret_cast<Fn **>(storage_) =
                new Fn(std::forward<F>(f));
            vtable_ = &heapVTable<Fn>;
        }
    }

    EventFn(EventFn &&other) noexcept { moveFrom(other); }

    EventFn &
    operator=(EventFn &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    EventFn(const EventFn &) = delete;
    EventFn &operator=(const EventFn &) = delete;

    ~EventFn() { reset(); }

    explicit operator bool() const noexcept
    {
        return vtable_ != nullptr;
    }

    void operator()() { vtable_->invoke(storage_); }

    /** @return true if the callable's state lives in the buffer. */
    bool
    isInline() const noexcept
    {
        return vtable_ != nullptr && vtable_->inlineStorage;
    }

  private:
    struct VTable
    {
        void (*invoke)(void *);
        /** Move-construct into dst from src, then destroy src. */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *) noexcept;
        bool inlineStorage;
        /** Relocation is a plain byte copy (no destroy needed). */
        bool trivial;
        /** Destruction is a no-op (inline trivial closures). */
        bool trivialDestroy;
    };

    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= inlineBytes &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

    template <typename Fn>
    static void
    invokeInline(void *s)
    {
        (*std::launder(reinterpret_cast<Fn *>(s)))();
    }

    template <typename Fn>
    static void
    relocateInline(void *dst, void *src) noexcept
    {
        Fn *f = std::launder(reinterpret_cast<Fn *>(src));
        ::new (dst) Fn(std::move(*f));
        f->~Fn();
    }

    template <typename Fn>
    static void
    destroyInline(void *s) noexcept
    {
        std::launder(reinterpret_cast<Fn *>(s))->~Fn();
    }

    template <typename Fn>
    static void
    invokeHeap(void *s)
    {
        (**reinterpret_cast<Fn **>(s))();
    }

    template <typename Fn>
    static void
    relocateHeap(void *dst, void *src) noexcept
    {
        *reinterpret_cast<Fn **>(dst) =
            *reinterpret_cast<Fn **>(src);
    }

    template <typename Fn>
    static void
    destroyHeap(void *s) noexcept
    {
        delete *reinterpret_cast<Fn **>(s);
    }

    template <typename Fn>
    static constexpr VTable inlineVTable{
        &invokeInline<Fn>, &relocateInline<Fn>, &destroyInline<Fn>,
        true, std::is_trivially_copyable_v<Fn>,
        std::is_trivially_destructible_v<Fn>};

    template <typename Fn>
    static constexpr VTable heapVTable{
        &invokeHeap<Fn>, &relocateHeap<Fn>, &destroyHeap<Fn>, false,
        true /* relocating just moves the owning pointer */,
        false /* must delete the heap object */};

    void
    moveFrom(EventFn &other) noexcept
    {
        vtable_ = other.vtable_;
        if (vtable_ != nullptr) {
            // Fast path for the common closures (pointer captures,
            // or a heap pointer): a fixed-size byte copy the
            // compiler turns into a couple of vector moves, instead
            // of an indirect relocate call.
            if (vtable_->trivial)
                __builtin_memcpy(storage_, other.storage_,
                                 inlineBytes);
            else
                vtable_->relocate(storage_, other.storage_);
            other.vtable_ = nullptr;
        }
    }

    void
    reset() noexcept
    {
        if (vtable_ != nullptr) {
            if (!vtable_->trivialDestroy)
                vtable_->destroy(storage_);
            vtable_ = nullptr;
        }
    }

    const VTable *vtable_ = nullptr;
    alignas(std::max_align_t) unsigned char storage_[inlineBytes];
};

/**
 * The central event queue. Events are one-shot closures; recurring
 * behaviour is expressed by rescheduling from inside the closure.
 */
class EventQueue
{
  public:
    EventQueue() : ring_(numBuckets) {}

    /** Current simulated time. */
    Tick curTick() const { return curTick_; }

    /** Schedule a closure at an absolute tick (>= curTick). */
    void schedule(Tick when, EventFn fn);

    /** Schedule a closure after a relative delay. */
    void
    scheduleIn(Tick delay, EventFn fn)
    {
        schedule(curTick_ + delay, std::move(fn));
    }

    /** @return true if no events are pending. */
    bool empty() const { return size_ == 0; }

    /** Number of pending events. */
    std::size_t pending() const { return size_; }

    /**
     * Run events until the queue drains or the (absolute) limit tick
     * is passed. Events scheduled exactly at the limit still run.
     *
     * @return number of events executed.
     */
    std::uint64_t run(Tick limit = maxTick);

    /**
     * Execute exactly one event if any is pending.
     * @return true if an event ran.
     */
    bool step();

    /**
     * Crash cut: drop every pending event without executing it
     * (the simulated machine lost power — in-flight work never
     * completes). Pair with run(limit) to terminate a simulation at
     * an arbitrary tick; curTick() is left where run() stopped.
     *
     * @return number of events discarded.
     */
    std::uint64_t discardPending();

    /** Total number of events executed so far. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Tick of the earliest pending event, or maxTick when the queue
     * is empty. Executes nothing (it may sort the next calendar
     * bucket as a side effect, which is order-neutral). Used by the
     * sharded scheduler to compute the next synchronization horizon.
     */
    Tick nextEventTick();

  private:
    /**
     * Calendar geometry. A bucket covers 2^quantumBits ticks (~4 ns
     * at 1 tick = 1 ps); the ring covers numBuckets quanta (~4.2 us),
     * which holds every latency the simulated machine produces on its
     * hot path. Anything further out goes to the far heap.
     */
    static constexpr unsigned quantumBits = 12;
    static constexpr std::size_t numBuckets = 1024;
    static constexpr std::size_t slotMask = numBuckets - 1;
    static constexpr std::size_t bitmapWords = numBuckets / 64;

    struct Item
    {
        Tick when;
        std::uint64_t seq;
        EventFn fn;
    };

    /**
     * Far-heap entry: the callback lives in a stable slab so the
     * heap sifts 24-byte PODs instead of full Items.
     */
    struct FarRef
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    /** Heap comparator: a sorts after b (makes a min-heap). */
    struct Later
    {
        bool
        operator()(const FarRef &a, const FarRef &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /**
     * One calendar bucket. Events append in insertion order while
     * the bucket's quantum is in the future; the bucket is sorted by
     * (when, seq) once — when it becomes the next to drain — and
     * late arrivals (same-quantum scheduling during execution) are
     * then order-inserted into the unexecuted suffix.
     */
    struct Bucket
    {
        std::vector<Item> items;
        std::size_t head = 0;
        bool prepared = false;
    };

    static std::uint64_t quantum(Tick t) { return t >> quantumBits; }
    static std::size_t slotOf(Tick t)
    {
        return static_cast<std::size_t>(quantum(t)) & slotMask;
    }

    void
    markSlot(std::size_t s)
    {
        occupied_[s >> 6] |= std::uint64_t(1) << (s & 63);
    }

    void
    clearSlot(std::size_t s)
    {
        occupied_[s >> 6] &= ~(std::uint64_t(1) << (s & 63));
    }

    /**
     * Find the first non-empty ring bucket at or after curTick's
     * quantum (scanning the occupancy bitmap, wrapping once) and
     * make sure it is prepared (sorted) for draining.
     * @return the bucket, or nullptr if the ring is empty.
     */
    Bucket *nextRingBucket();

    /** Reset a fully drained bucket and clear its occupancy bit. */
    void
    retireBucket(Bucket &b, std::size_t slot)
    {
        b.items.clear();
        b.head = 0;
        b.prepared = false;
        clearSlot(slot);
    }

    /**
     * Execute the earliest pending event if its tick is <= limit.
     * @return true if an event ran.
     */
    bool runOne(Tick limit);

    std::vector<Bucket> ring_;
    std::uint64_t occupied_[bitmapWords] = {};
    std::size_t ringCount_ = 0;

    std::vector<FarRef> far_;        ///< min-heap by (when, seq)
    std::vector<EventFn> farSlab_;   ///< slot -> callback
    std::vector<std::uint32_t> farFree_; ///< recycled slab slots

    Tick curTick_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
    std::size_t size_ = 0;
};

/**
 * Base class for named simulated components that live on an event
 * queue.
 */
class SimObject
{
  public:
    SimObject(std::string name, EventQueue &eq)
        : name_(std::move(name)), eventq_(eq)
    {}

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    /** Component instance name (used in stats and logs). */
    const std::string &name() const { return name_; }

    /** The event queue this object lives on. */
    EventQueue &eventq() { return eventq_; }

    /** Current simulated time. */
    Tick curTick() const { return eventq_.curTick(); }

  protected:
    /** Schedule a member-closure after a relative delay. */
    void
    schedule(Tick delay, EventFn fn)
    {
        eventq_.scheduleIn(delay, std::move(fn));
    }

  private:
    std::string name_;
    EventQueue &eventq_;
};

} // namespace janus

#endif // JANUS_SIM_EVENTQ_HH
