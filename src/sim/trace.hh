/**
 * @file
 * Low-overhead persist-path event tracer. One Tracer instance is
 * owned by one simulated system (one experiment); since every
 * experiment of the parallel runner owns its whole system, tracers
 * are single-threaded by construction and need no locks while still
 * being safe under the worker pool.
 *
 * Design:
 *
 *  - Recording is a fixed-size POD append into a preallocated ring
 *    buffer. When the ring is full the *oldest* event is overwritten
 *    and counted in dropped(), so a trace always holds the most
 *    recent window of activity.
 *
 *  - Tracks (one per core, BMO unit, NVM bank, front-end, ...) and
 *    event labels (stage names, sub-op names) are interned up front
 *    by the instrumented components, so a record is two 16-bit ids
 *    plus ticks — no strings or allocation on the hot path.
 *
 *  - Components hold a `Tracer *` that is null unless tracing was
 *    requested, and every instrumentation point goes through the
 *    JANUS_TRACE_* macros below: with tracing disabled at runtime the
 *    cost is one predicted-not-taken null check, and compiling with
 *    -DJANUS_TRACING=0 removes the calls (and the evaluation of
 *    their arguments) entirely.
 *
 * The exporter writes the Chrome trace-event JSON format (an object
 * with a "traceEvents" array), loadable in Perfetto or
 * chrome://tracing: every track becomes a named thread, spans are
 * "X" (complete) events and point events are "i" (instant) events.
 * Timestamps are emitted in microseconds (the format's unit) with
 * picosecond precision.
 */

#ifndef JANUS_SIM_TRACE_HH
#define JANUS_SIM_TRACE_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

// Compile-time master switch: -DJANUS_TRACING=0 turns every
// JANUS_TRACE_* macro into nothing (arguments are not evaluated).
#ifndef JANUS_TRACING
#define JANUS_TRACING 1
#endif

#if JANUS_TRACING
#define JANUS_TRACE_SPAN(tracer, ...)                                     \
    do {                                                                  \
        if (tracer)                                                       \
            (tracer)->span(__VA_ARGS__);                                  \
    } while (0)
#define JANUS_TRACE_INSTANT(tracer, ...)                                  \
    do {                                                                  \
        if (tracer)                                                       \
            (tracer)->instant(__VA_ARGS__);                               \
    } while (0)
#else
#define JANUS_TRACE_SPAN(tracer, ...) ((void)0)
#define JANUS_TRACE_INSTANT(tracer, ...) ((void)0)
#endif

namespace janus
{

/** Interned track / label handle. */
using TraceId = std::uint16_t;

/** One recorded event (POD; spans have end > start, instants
 *  end == start). */
struct TraceEvent
{
    Tick start = 0;
    Tick end = 0;
    Addr addr = 0;
    TraceId track = 0;
    TraceId label = 0;
};

/** Per-experiment ring-buffer trace sink. */
class Tracer
{
  public:
    /** @param capacity ring size in events (>= 1). */
    explicit Tracer(std::size_t capacity = 1 << 16);

    /** Intern a track name; repeated calls return the same id. */
    TraceId track(const std::string &name);

    /** Intern an event label; repeated calls return the same id. */
    TraceId label(const std::string &name);

    /** Record a duration event [start, end] on a track. */
    void
    span(TraceId track, TraceId label, Tick start, Tick end,
         Addr addr = 0)
    {
        push(TraceEvent{start, end, addr, track, label});
    }

    /** Record a point event. */
    void
    instant(TraceId track, TraceId label, Tick at, Addr addr = 0)
    {
        push(TraceEvent{at, at, addr, track, label});
    }

    /** Events currently held (<= capacity). */
    std::size_t size() const { return count_; }
    std::size_t capacity() const { return ring_.size(); }
    /** Total events ever recorded (kept + dropped). */
    std::uint64_t recorded() const { return recorded_; }
    /** Oldest events overwritten by ring overflow. */
    std::uint64_t dropped() const { return dropped_; }

    /** i-th retained event, oldest first (0 <= i < size()). */
    const TraceEvent &event(std::size_t i) const;

    /** Number of interned tracks. */
    std::size_t trackCount() const { return trackNames_.size(); }

    const std::string &trackName(TraceId id) const
    {
        return trackNames_.at(id);
    }
    const std::string &labelName(TraceId id) const
    {
        return labelNames_.at(id);
    }

    /** Drop all recorded events (interned names survive). */
    void clear();

    /**
     * Write the retained events as Chrome trace-event JSON. The
     * output is deterministic for a deterministic record sequence
     * (asserted by the serial-vs-parallel runner test).
     */
    void writeChromeJson(std::ostream &os) const;

    /** writeChromeJson into a string. */
    std::string chromeJson() const;

  private:
    void
    push(const TraceEvent &e)
    {
        ++recorded_;
        if (count_ < ring_.size()) {
            ring_[(head_ + count_) % ring_.size()] = e;
            ++count_;
        } else {
            ring_[head_] = e;
            head_ = (head_ + 1) % ring_.size();
            ++dropped_;
        }
    }

    std::vector<TraceEvent> ring_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    std::uint64_t recorded_ = 0;
    std::uint64_t dropped_ = 0;

    std::map<std::string, TraceId> trackIds_;
    std::vector<std::string> trackNames_;
    std::map<std::string, TraceId> labelIds_;
    std::vector<std::string> labelNames_;
};

/** @return true if the JANUS_TRACE environment variable requests
 *  tracing (set and not "0"). */
bool traceEnvEnabled();

/**
 * Write one Chrome trace-event JSON merging several tracers (one per
 * shard of a sharded system). A single tracer is emitted byte-for-
 * byte as its own writeChromeJson (the serial path stays golden);
 * with several, tracer k's tracks are prefixed "s<k>." and given
 * distinct tids, events are concatenated in shard order, and
 * recorded/dropped are summed. Deterministic for deterministic
 * inputs.
 */
void writeMergedChromeJson(const std::vector<const Tracer *> &tracers,
                           std::ostream &os);

/** writeMergedChromeJson into a string. */
std::string mergedChromeJson(const std::vector<const Tracer *> &tracers);

} // namespace janus

#endif // JANUS_SIM_TRACE_HH
