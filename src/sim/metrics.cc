#include "sim/metrics.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/logging.hh"

namespace janus
{

MetricsSampler::MetricsSampler(Tick window_ticks,
                               std::size_t max_windows)
    : window_(window_ticks), maxWindows_(max_windows)
{
    janus_assert(window_ticks >= 1, "metrics window must be >= 1 tick");
    janus_assert(max_windows >= 1, "need at least one window");
}

MetricId
MetricsSampler::add(Channel channel)
{
    janus_assert(rows_.empty(),
                 "register every channel before the first window "
                 "closes (column set must be stable)");
    channel.column = columns_.size();
    if (channel.kind == Kind::Histogram) {
        columns_.push_back(channel.name + ".count");
        columns_.push_back(channel.name + ".p50");
        columns_.push_back(channel.name + ".p99");
    } else {
        columns_.push_back(channel.name);
    }
    channels_.push_back(std::move(channel));
    return static_cast<MetricId>(channels_.size() - 1);
}

MetricId
MetricsSampler::addRate(const std::string &name)
{
    Channel c;
    c.name = name;
    c.kind = Kind::Rate;
    return add(std::move(c));
}

MetricId
MetricsSampler::addCounter(const std::string &name)
{
    Channel c;
    c.name = name;
    c.kind = Kind::Counter;
    return add(std::move(c));
}

MetricId
MetricsSampler::addGauge(const std::string &name)
{
    Channel c;
    c.name = name;
    c.kind = Kind::Gauge;
    return add(std::move(c));
}

MetricId
MetricsSampler::addHistogram(const std::string &name, double lo,
                             double hi, unsigned buckets)
{
    Channel c;
    c.name = name;
    c.kind = Kind::Histogram;
    c.hist = Histogram(lo, hi, buckets);
    return add(std::move(c));
}

MetricId
MetricsSampler::addHitRatio(const std::string &name, MetricId hits,
                            MetricId misses)
{
    janus_assert(hits < channels_.size() &&
                     channels_[hits].kind == Kind::Counter &&
                     misses < channels_.size() &&
                     channels_[misses].kind == Kind::Counter,
                 "hit-ratio operands must be counter channels");
    Channel c;
    c.name = name;
    c.kind = Kind::HitRatio;
    c.a = hits;
    c.b = misses;
    return add(std::move(c));
}

void
MetricsSampler::closeWindow()
{
    if (rows_.size() >= maxWindows_) {
        ++droppedWindows_;
    } else {
        std::vector<double> row;
        row.reserve(columns_.size());
        // Pass 1 computes counter deltas so HitRatio channels can
        // reference operands registered before or after themselves.
        std::vector<double> deltas(channels_.size(), 0);
        for (std::size_t i = 0; i < channels_.size(); ++i)
            if (channels_[i].kind == Kind::Counter)
                deltas[i] = channels_[i].accum - channels_[i].prev;
        for (Channel &c : channels_) {
            switch (c.kind) {
              case Kind::Rate:
                row.push_back(c.accum);
                break;
              case Kind::Counter:
                row.push_back(c.accum - c.prev);
                break;
              case Kind::Gauge:
                row.push_back(c.accum);
                break;
              case Kind::Histogram:
                row.push_back(static_cast<double>(c.hist.count()));
                row.push_back(c.hist.quantile(0.50));
                row.push_back(c.hist.quantile(0.99));
                break;
              case Kind::HitRatio: {
                  double num = deltas[c.a];
                  double den = deltas[c.a] + deltas[c.b];
                  row.push_back(den > 0 ? num / den : 0.0);
                  break;
              }
            }
        }
        rows_.push_back(std::move(row));
        rowStarts_.push_back(windowStart_);
    }
    // Reset per-window state; gauges hold their value.
    for (Channel &c : channels_) {
        switch (c.kind) {
          case Kind::Rate:
            c.accum = 0;
            break;
          case Kind::Counter:
            c.prev = c.accum;
            break;
          case Kind::Gauge:
          case Kind::HitRatio:
            break;
          case Kind::Histogram:
            c.hist.reset();
            break;
        }
    }
    windowStart_ += window_;
}

void
MetricsSampler::advanceTo(Tick now)
{
    while (now >= windowStart_ + window_)
        closeWindow();
}

void
MetricsSampler::count(MetricId id, double delta)
{
    channels_.at(id).accum += delta;
}

void
MetricsSampler::counter(MetricId id, double cumulative)
{
    channels_.at(id).accum = cumulative;
}

void
MetricsSampler::set(MetricId id, double value)
{
    channels_.at(id).accum = value;
}

void
MetricsSampler::observe(MetricId id, double value)
{
    channels_.at(id).hist.sample(value);
}

void
MetricsSampler::finish(Tick end)
{
    advanceTo(end);
    // One final partial window so end-of-run activity is visible —
    // unless the run ended exactly on a window boundary, where a
    // zero-length window would be spurious.
    if (end > windowStart_)
        closeWindow();
}

double
MetricsSampler::value(std::size_t window, std::size_t column) const
{
    return rows_.at(window).at(column);
}

void
MetricsSampler::writeJson(std::ostream &os) const
{
    char buf[64];
    auto num = [&buf](double v) -> const char * {
        // %.6g keeps integers exact and is byte-stable.
        std::snprintf(buf, sizeof(buf), "%.6g", v);
        return buf;
    };
    os << "{\n  \"schema_version\": 2,\n  \"window_ns\": "
       << num(ticks::toNsF(window_)) << ",\n  \"columns\": [";
    for (std::size_t i = 0; i < columns_.size(); ++i)
        os << (i ? ", " : "") << '"' << columns_[i] << '"';
    os << "],\n  \"windows\": [\n";
    for (std::size_t w = 0; w < rows_.size(); ++w) {
        os << "    {\"start_ns\": "
           << num(ticks::toNsF(rowStarts_[w])) << ", \"values\": [";
        for (std::size_t i = 0; i < rows_[w].size(); ++i)
            os << (i ? ", " : "") << num(rows_[w][i]);
        os << "]}" << (w + 1 < rows_.size() ? "," : "") << '\n';
    }
    os << "  ],\n  \"dropped_windows\": " << droppedWindows_
       << "\n}\n";
}

std::string
MetricsSampler::json() const
{
    std::ostringstream os;
    writeJson(os);
    return os.str();
}

void
MetricsSampler::writeMergedJson(
    const std::vector<const MetricsSampler *> &parts,
    std::ostream &os)
{
    janus_assert(!parts.empty(), "nothing to merge");
    if (parts.size() == 1) {
        parts[0]->writeJson(os);
        return;
    }

    const MetricsSampler &ref = *parts[0];
    std::uint64_t dropped = 0;
    for (const MetricsSampler *p : parts) {
        janus_assert(p->window_ == ref.window_ &&
                         p->columns_ == ref.columns_ &&
                         p->rowStarts_ == ref.rowStarts_,
                     "shard samplers diverged: every shard must "
                     "register the same channels and close the same "
                     "windows");
        dropped += p->droppedWindows_;
    }

    char buf[64];
    auto num = [&buf](double v) -> const char * {
        std::snprintf(buf, sizeof(buf), "%.6g", v);
        return buf;
    };
    os << "{\n  \"schema_version\": 2,\n  \"window_ns\": "
       << num(ticks::toNsF(ref.window_)) << ",\n  \"columns\": [";
    for (std::size_t i = 0; i < ref.columns_.size(); ++i)
        os << (i ? ", " : "") << '"' << ref.columns_[i] << '"';
    os << "],\n  \"windows\": [\n";
    for (std::size_t w = 0; w < ref.rows_.size(); ++w) {
        std::vector<double> row(ref.columns_.size(), 0);
        for (const Channel &c : ref.channels_) {
            const std::size_t col = c.column;
            switch (c.kind) {
              case Kind::Rate:
              case Kind::Counter:
              case Kind::Gauge:
                for (const MetricsSampler *p : parts)
                    row[col] += p->rows_[w][col];
                break;
              case Kind::Histogram:
                for (const MetricsSampler *p : parts) {
                    row[col] += p->rows_[w][col];
                    row[col + 1] = std::max(row[col + 1],
                                            p->rows_[w][col + 1]);
                    row[col + 2] = std::max(row[col + 2],
                                            p->rows_[w][col + 2]);
                }
                break;
              case Kind::HitRatio: {
                  // Operand counter channels emit their window delta
                  // as their own column value; recompute the ratio
                  // from the summed deltas.
                  double numr = 0;
                  double den = 0;
                  const std::size_t ca = ref.channels_[c.a].column;
                  const std::size_t cb = ref.channels_[c.b].column;
                  for (const MetricsSampler *p : parts) {
                      numr += p->rows_[w][ca];
                      den += p->rows_[w][ca] + p->rows_[w][cb];
                  }
                  row[col] = den > 0 ? numr / den : 0.0;
                  break;
              }
            }
        }
        os << "    {\"start_ns\": "
           << num(ticks::toNsF(ref.rowStarts_[w]))
           << ", \"values\": [";
        for (std::size_t i = 0; i < row.size(); ++i)
            os << (i ? ", " : "") << num(row[i]);
        os << "]}" << (w + 1 < ref.rows_.size() ? "," : "") << '\n';
    }
    os << "  ],\n  \"dropped_windows\": " << dropped << "\n}\n";
}

std::string
MetricsSampler::mergedJson(
    const std::vector<const MetricsSampler *> &parts)
{
    std::ostringstream os;
    writeMergedJson(parts, os);
    return os.str();
}

bool
metricsEnvEnabled()
{
    const char *env = std::getenv("JANUS_METRICS");
    return env != nullptr && std::strcmp(env, "0") != 0;
}

} // namespace janus
