#include "sim/eventq.hh"

#include <algorithm>

#include "common/logging.hh"

namespace janus
{

void
EventQueue::schedule(Tick when, EventFn fn)
{
    janus_assert(when >= curTick_,
                 "scheduling into the past: %llu < %llu",
                 static_cast<unsigned long long>(when),
                 static_cast<unsigned long long>(curTick_));
    const std::uint64_t seq = nextSeq_++;
    ++size_;
    if (quantum(when) - quantum(curTick_) < numBuckets) {
        const std::size_t s = slotOf(when);
        Bucket &b = ring_[s];
        if (b.prepared) {
            // The bucket is (or was) next to drain and its suffix is
            // sorted. This event has the largest seq so far, so it
            // goes after every pending item with the same tick.
            auto pos = std::lower_bound(
                b.items.begin() +
                    static_cast<std::ptrdiff_t>(b.head),
                b.items.end(), when,
                [](const Item &it, Tick w) { return it.when <= w; });
            b.items.insert(pos, Item{when, seq, std::move(fn)});
        } else {
            b.items.push_back(Item{when, seq, std::move(fn)});
        }
        markSlot(s);
        ++ringCount_;
    } else {
        std::uint32_t slot;
        if (!farFree_.empty()) {
            slot = farFree_.back();
            farFree_.pop_back();
            farSlab_[slot] = std::move(fn);
        } else {
            slot = static_cast<std::uint32_t>(farSlab_.size());
            farSlab_.push_back(std::move(fn));
        }
        far_.push_back(FarRef{when, seq, slot});
        std::push_heap(far_.begin(), far_.end(), Later{});
    }
}

EventQueue::Bucket *
EventQueue::nextRingBucket()
{
    if (ringCount_ == 0)
        return nullptr;
    const std::size_t base = slotOf(curTick_);
    // Scan the occupancy bitmap from curTick's slot, wrapping once;
    // every pending ring event lives within one window of curTick,
    // so slot distance equals quantum distance and the first set bit
    // is the earliest non-empty bucket.
    for (std::size_t i = 0; i <= bitmapWords; ++i) {
        const std::size_t w = ((base >> 6) + i) & (bitmapWords - 1);
        std::uint64_t bits = occupied_[w];
        if (i == 0)
            bits &= ~std::uint64_t(0) << (base & 63);
        else if (i == bitmapWords)
            bits &= ~(~std::uint64_t(0) << (base & 63));
        if (bits == 0)
            continue;
        const std::size_t s =
            (w << 6) +
            static_cast<std::size_t>(std::countr_zero(bits));
        Bucket &b = ring_[s];
        if (!b.prepared) {
            // Appends happen in seq order, so the bucket is already
            // (when, seq)-sorted iff the when fields are
            // nondecreasing — the common case (single event, or a
            // same-tick burst). Only sort when it isn't.
            bool sorted = true;
            for (std::size_t i = 1; i < b.items.size(); ++i) {
                if (b.items[i].when < b.items[i - 1].when) {
                    sorted = false;
                    break;
                }
            }
            if (!sorted)
                std::sort(b.items.begin(), b.items.end(),
                          [](const Item &x, const Item &y) {
                              if (x.when != y.when)
                                  return x.when < y.when;
                              return x.seq < y.seq;
                          });
            b.prepared = true;
        }
        return &b;
    }
    panic("event ring count %zu but no occupied bucket", ringCount_);
}

bool
EventQueue::runOne(Tick limit)
{
    if (size_ == 0)
        return false;

    Bucket *rb = nextRingBucket();
    const Item *ring_next =
        rb != nullptr ? &rb->items[rb->head] : nullptr;
    const FarRef *far_next = far_.empty() ? nullptr : &far_.front();

    // Earliest (when, seq) of the two levels goes first; seq is
    // global, so this reproduces the single-queue order exactly.
    bool from_far;
    if (ring_next == nullptr)
        from_far = true;
    else if (far_next == nullptr)
        from_far = false;
    else
        from_far = far_next->when < ring_next->when ||
                   (far_next->when == ring_next->when &&
                    far_next->seq < ring_next->seq);

    const Tick when = from_far ? far_next->when : ring_next->when;
    if (when > limit)
        return false;

    EventFn fn;
    if (from_far) {
        const std::uint32_t slot = far_next->slot;
        std::pop_heap(far_.begin(), far_.end(), Later{});
        far_.pop_back();
        fn = std::move(farSlab_[slot]);
        farFree_.push_back(slot);
    } else {
        fn = std::move(rb->items[rb->head].fn);
        ++rb->head;
        // Retire a drained bucket before invoking the closure so a
        // reschedule into this quantum lands in a clean bucket.
        if (rb->head == rb->items.size())
            retireBucket(*rb, slotOf(when));
        --ringCount_;
    }
    --size_;
    ++executed_;
    curTick_ = when;
    fn();
    return true;
}

std::uint64_t
EventQueue::run(Tick limit)
{
    std::uint64_t count = 0;
    bool hitLimit = false;
    while (size_ != 0 && !hitLimit) {
        Bucket *rb = nextRingBucket();
        const FarRef *far_next =
            far_.empty() ? nullptr : &far_.front();

        const bool from_far =
            rb == nullptr ||
            (far_next != nullptr &&
             (far_next->when < rb->items[rb->head].when ||
              (far_next->when == rb->items[rb->head].when &&
               far_next->seq < rb->items[rb->head].seq)));

        if (from_far) {
            const Tick when = far_next->when;
            if (when > limit)
                break;
            const std::uint32_t slot = far_next->slot;
            std::pop_heap(far_.begin(), far_.end(), Later{});
            far_.pop_back();
            EventFn fn = std::move(farSlab_[slot]);
            farFree_.push_back(slot);
            --size_;
            ++executed_;
            ++count;
            curTick_ = when;
            fn();
            continue;
        }

        // Drain this bucket in a tight loop: no bitmap rescan per
        // event. The far bound captured here stays valid for the
        // whole drain — every item in one bucket shares a quantum,
        // and a closure can only push far events at least one full
        // window past curTick, i.e. into strictly later quanta, so
        // nothing new can slot in ahead of the remaining items.
        // Same-quantum reschedules order-insert into this bucket's
        // suffix (it is prepared), which the loop picks up because
        // it re-reads head/size every iteration.
        const bool far_has = far_next != nullptr;
        const Tick far_when = far_has ? far_next->when : 0;
        const std::uint64_t far_seq = far_has ? far_next->seq : 0;
        for (;;) {
            Item &it = rb->items[rb->head];
            const Tick when = it.when;
            if (when > limit) {
                hitLimit = true;
                break;
            }
            if (far_has &&
                (when > far_when ||
                 (when == far_when && it.seq > far_seq)))
                break;
            EventFn fn = std::move(it.fn);
            ++rb->head;
            // Retire a drained bucket before invoking the closure
            // so a reschedule into this quantum lands in a clean
            // bucket.
            const bool drained = rb->head == rb->items.size();
            if (drained)
                retireBucket(*rb, slotOf(when));
            --ringCount_;
            --size_;
            ++executed_;
            ++count;
            curTick_ = when;
            fn();
            if (drained)
                break;
        }
    }
    if (curTick_ < limit && limit != maxTick)
        curTick_ = limit;
    return count;
}

Tick
EventQueue::nextEventTick()
{
    if (size_ == 0)
        return maxTick;
    Bucket *rb = nextRingBucket();
    const Tick ringWhen =
        rb != nullptr ? rb->items[rb->head].when : maxTick;
    const Tick farWhen = far_.empty() ? maxTick : far_.front().when;
    return std::min(ringWhen, farWhen);
}

bool
EventQueue::step()
{
    return runOne(maxTick);
}

std::uint64_t
EventQueue::discardPending()
{
    const std::uint64_t dropped = size_;
    for (std::size_t s = 0; s < ring_.size(); ++s) {
        Bucket &b = ring_[s];
        b.items.clear();
        b.head = 0;
        b.prepared = false;
        clearSlot(s);
    }
    ringCount_ = 0;
    far_.clear();
    farSlab_.clear();
    farFree_.clear();
    size_ = 0;
    return dropped;
}

} // namespace janus
