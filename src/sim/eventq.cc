#include "sim/eventq.hh"

#include "common/logging.hh"

namespace janus
{

void
EventQueue::schedule(Tick when, std::function<void()> fn)
{
    janus_assert(when >= curTick_,
                 "scheduling into the past: %llu < %llu",
                 static_cast<unsigned long long>(when),
                 static_cast<unsigned long long>(curTick_));
    events_.push(Event{when, nextSeq_++, std::move(fn)});
}

std::uint64_t
EventQueue::run(Tick limit)
{
    std::uint64_t count = 0;
    while (!events_.empty() && events_.top().when <= limit) {
        // Moving out of a priority_queue top requires a const_cast;
        // the element is popped immediately afterwards.
        Event ev = std::move(const_cast<Event &>(events_.top()));
        events_.pop();
        curTick_ = ev.when;
        ++executed_;
        ++count;
        ev.fn();
    }
    if (curTick_ < limit && limit != maxTick)
        curTick_ = limit;
    return count;
}

bool
EventQueue::step()
{
    if (events_.empty())
        return false;
    Event ev = std::move(const_cast<Event &>(events_.top()));
    events_.pop();
    curTick_ = ev.when;
    ++executed_;
    ev.fn();
    return true;
}

} // namespace janus
