#include "sim/critpath.hh"

#include "common/logging.hh"

namespace janus
{

const char *
critEdgeName(CritEdge edge)
{
    switch (edge) {
      case CritEdge::ExecAes:
        return "exec_aes";
      case CritEdge::ExecHash:
        return "exec_hash";
      case CritEdge::ExecDedup:
        return "exec_dedup";
      case CritEdge::ExecOther:
        return "exec_other";
      case CritEdge::UnitBusy:
        return "unit_busy";
      case CritEdge::TreePipe:
        return "tree_pipe";
      case CritEdge::IrbLookup:
        return "irb_lookup";
      case CritEdge::PreExecWait:
        return "pre_exec_wait";
      case CritEdge::Unattributed:
        return "unattributed";
      case CritEdge::WqFull:
        return "wq_full";
      case CritEdge::MediaRetry:
        return "media_retry";
      case CritEdge::MetaCowrite:
        return "meta_cowrite";
      case CritEdge::OrderFifo:
        return "order_fifo";
      case CritEdge::GroupCommitWait:
        return "group_commit_wait";
      case CritEdge::QosThrottle:
        return "qos_throttle";
    }
    return "?";
}

const char *
critEdgeStage(CritEdge edge)
{
    switch (edge) {
      case CritEdge::WqFull:
      case CritEdge::MediaRetry:
      case CritEdge::MetaCowrite:
        return "queue";
      case CritEdge::OrderFifo:
      case CritEdge::GroupCommitWait:
        return "order";
      default:
        return "bmo";
    }
}

double
CritPathSummary::share(CritEdge edge) const
{
    return totalTicks
               ? static_cast<double>(ticksOf(edge)) /
                     static_cast<double>(totalTicks)
               : 0.0;
}

double
CritPathSummary::shareSum() const
{
    double sum = 0;
    for (std::size_t e = 0; e < numCritEdges; ++e)
        sum += share(static_cast<CritEdge>(e));
    return sum;
}

void
CritPathProfiler::addPersist(const std::vector<CritSegment> &segments,
                             Tick total)
{
    Tick sum = 0;
    for (const CritSegment &seg : segments)
        sum += seg.ticks;
    // The core invariant: the attributed segments partition the
    // persist's end-to-end latency exactly, with no gap or overlap.
    janus_assert(sum == total,
                 "critical-path segments sum to %llu ticks, persist "
                 "took %llu",
                 static_cast<unsigned long long>(sum),
                 static_cast<unsigned long long>(total));
    for (const CritSegment &seg : segments)
        summary_.edgeTicks[static_cast<std::size_t>(seg.edge)] +=
            seg.ticks;
    summary_.totalTicks += total;
    ++summary_.persists;
}

void
writeFoldedSummary(const CritPathSummary &summary, std::ostream &os,
                   const std::string &prefix)
{
    for (std::size_t e = 0; e < numCritEdges; ++e) {
        CritEdge edge = static_cast<CritEdge>(e);
        std::uint64_t ticks = summary.ticksOf(edge);
        if (ticks == 0)
            continue;
        if (!prefix.empty())
            os << prefix << ';';
        os << "persist;" << critEdgeStage(edge) << ';'
           << critEdgeName(edge) << ' ' << ticks::toNs(ticks)
           << '\n';
    }
}

} // namespace janus
