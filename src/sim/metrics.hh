/**
 * @file
 * Windowed time-series telemetry. End-of-run aggregates hide
 * saturation, warmup transients and degraded-mode episodes; the
 * MetricsSampler slices simulated time into fixed windows and
 * records, per window:
 *
 *   - Rate channels      event counts accumulated with count();
 *   - Counter channels   deltas of an externally maintained
 *                        cumulative counter ("counters as rates");
 *   - Gauge channels     the last value set() in the window, held
 *                        across idle windows;
 *   - Histogram channels a fresh per-window distribution, exported
 *                        as count / p50 / p99 columns;
 *   - HitRatio channels  delta(a) / (delta(a) + delta(b)) over two
 *                        counter channels (e.g. cache hit rate).
 *
 * Like the Tracer, one sampler is owned by one simulated system, so
 * it is single-threaded by construction, and it is a pure observer:
 * sampling never changes a computed tick. Windows close lazily on
 * advanceTo(now), which instrumentation points call with the
 * current simulated time; the emitted timeline is therefore a
 * deterministic function of the simulation, byte-stable across
 * hosts and across the serial/parallel experiment runners.
 *
 * writeJson emits METRICS-schema JSON: window width, column names,
 * and one row per closed window.
 */

#ifndef JANUS_SIM_METRICS_HH
#define JANUS_SIM_METRICS_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"
#include "sim/stats.hh"

namespace janus
{

/** Interned metrics-channel handle. */
using MetricId = std::uint16_t;

/** Per-experiment windowed time-series sampler. */
class MetricsSampler
{
  public:
    /**
     * @param window_ticks  window width in ticks (>= 1)
     * @param max_windows   rows retained before further windows are
     *                      dropped (counted, so truncation is loud)
     */
    explicit MetricsSampler(Tick window_ticks,
                            std::size_t max_windows = 1 << 20);

    /** Register an event-count channel (emits events per window). */
    MetricId addRate(const std::string &name);

    /**
     * Register a cumulative-counter channel: feed the current
     * cumulative value via counter(); each window emits the delta
     * against the previous window's last value.
     */
    MetricId addCounter(const std::string &name);

    /** Register a sampled-value channel (holds last value). */
    MetricId addGauge(const std::string &name);

    /**
     * Register a per-window distribution channel; expands to three
     * columns: "<name>.count", "<name>.p50", "<name>.p99". The
     * histogram resets at every window boundary.
     */
    MetricId addHistogram(const std::string &name, double lo,
                          double hi, unsigned buckets);

    /**
     * Register a derived hit-ratio channel over two *counter*
     * channels: delta(hits) / (delta(hits) + delta(misses)) per
     * window, 0 when the window saw no activity.
     */
    MetricId addHitRatio(const std::string &name, MetricId hits,
                         MetricId misses);

    /**
     * Close every window that ends at or before @p now. Call before
     * recording samples for time @p now; ticks may repeat but must
     * never decrease (event-queue order).
     */
    void advanceTo(Tick now);

    /** Accumulate @p delta events into the current window. */
    void count(MetricId id, double delta = 1.0);

    /** Feed a cumulative counter's current value. */
    void counter(MetricId id, double cumulative);

    /** Set a gauge. */
    void set(MetricId id, double value);

    /** Add one sample to a histogram channel's current window. */
    void observe(MetricId id, double value);

    /** Close the final (partial) window at end of run. */
    void finish(Tick end);

    /** Closed windows emitted so far. */
    std::size_t windows() const { return rows_.size(); }
    /** Windows dropped after max_windows was hit. */
    std::uint64_t droppedWindows() const { return droppedWindows_; }
    Tick windowTicks() const { return window_; }

    /** Flat column names, in registration order. */
    const std::vector<std::string> &columns() const
    {
        return columns_;
    }

    /** Value at (closed window, column) — test access. */
    double value(std::size_t window, std::size_t column) const;

    /**
     * Emit the timeline as deterministic JSON:
     * {"schema_version": .., "window_ns": .., "columns": [..],
     *  "windows": [{"start_ns": .., "values": [..]}, ..],
     *  "dropped_windows": ..}
     */
    void writeJson(std::ostream &os) const;

    /** writeJson into a string. */
    std::string json() const;

    /**
     * Emit one merged METRICS-schema timeline over several samplers
     * (one per shard; all must share window width, columns and row
     * starts — true by construction, every shard registers the same
     * channels and finishes at the same makespan). A single sampler
     * is emitted byte-for-byte as its own writeJson. Merge rules per
     * channel kind: Rate/Counter/Gauge sum, Histogram sums .count
     * and takes the max of .p50/.p99 (a conservative bound — exact
     * merge would need the raw buckets), HitRatio is recomputed from
     * the summed operand deltas.
     */
    static void
    writeMergedJson(const std::vector<const MetricsSampler *> &parts,
                    std::ostream &os);

    /** writeMergedJson into a string. */
    static std::string
    mergedJson(const std::vector<const MetricsSampler *> &parts);

  private:
    enum class Kind : std::uint8_t
    {
        Rate,
        Counter,
        Gauge,
        Histogram,
        HitRatio,
    };

    struct Channel
    {
        std::string name;
        Kind kind;
        /** Rate: accumulated events. Counter: last cumulative fed /
         *  value at previous close. Gauge: current value. */
        double accum = 0;
        double prev = 0;
        /** Histogram state (Histogram kind only). */
        Histogram hist = Histogram(0, 1, 1);
        /** HitRatio operands (channel indices). */
        MetricId a = 0, b = 0;
        /** First column index of this channel in a row. */
        std::size_t column = 0;
    };

    MetricId add(Channel channel);

    /** Close the window ending at windowStart_ + window_. */
    void closeWindow();

    Tick window_;
    std::size_t maxWindows_;
    Tick windowStart_ = 0;
    std::uint64_t droppedWindows_ = 0;

    std::vector<Channel> channels_;
    std::vector<std::string> columns_;
    /** One row of column values per closed window. */
    std::vector<std::vector<double>> rows_;
    std::vector<Tick> rowStarts_;
};

/** @return true if the JANUS_METRICS environment variable requests
 *  time-series sampling (set and not "0"). */
bool metricsEnvEnabled();

} // namespace janus

#endif // JANUS_SIM_METRICS_HH
