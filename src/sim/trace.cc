#include "sim/trace.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/logging.hh"

namespace janus
{

Tracer::Tracer(std::size_t capacity) : ring_(capacity ? capacity : 1)
{
}

TraceId
Tracer::track(const std::string &name)
{
    auto it = trackIds_.find(name);
    if (it != trackIds_.end())
        return it->second;
    auto id = static_cast<TraceId>(trackNames_.size());
    trackIds_.emplace(name, id);
    trackNames_.push_back(name);
    return id;
}

TraceId
Tracer::label(const std::string &name)
{
    auto it = labelIds_.find(name);
    if (it != labelIds_.end())
        return it->second;
    auto id = static_cast<TraceId>(labelNames_.size());
    labelIds_.emplace(name, id);
    labelNames_.push_back(name);
    return id;
}

const TraceEvent &
Tracer::event(std::size_t i) const
{
    janus_assert(i < count_, "trace event %zu of %zu", i, count_);
    return ring_[(head_ + i) % ring_.size()];
}

void
Tracer::clear()
{
    head_ = count_ = 0;
    recorded_ = dropped_ = 0;
}

namespace
{

/** Escape a string for a JSON string literal. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Ticks (ps) as fractional microseconds, full precision. */
std::string
ticksToUs(Tick t)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%llu.%06llu",
                  static_cast<unsigned long long>(t / 1000000),
                  static_cast<unsigned long long>(t % 1000000));
    return buf;
}

} // namespace

void
Tracer::writeChromeJson(std::ostream &os) const
{
    os << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [";
    bool first = true;
    auto sep = [&] {
        os << (first ? "\n" : ",\n");
        first = false;
    };

    // One named "thread" per track.
    for (std::size_t t = 0; t < trackNames_.size(); ++t) {
        sep();
        os << "{\"ph\": \"M\", \"pid\": 0, \"tid\": " << t
           << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
           << jsonEscape(trackNames_[t]) << "\"}}";
    }

    for (std::size_t i = 0; i < count_; ++i) {
        const TraceEvent &e = event(i);
        sep();
        os << "{\"ph\": \"" << (e.end > e.start ? 'X' : 'i')
           << "\", \"pid\": 0, \"tid\": " << e.track
           << ", \"ts\": " << ticksToUs(e.start);
        if (e.end > e.start)
            os << ", \"dur\": " << ticksToUs(e.end - e.start);
        else
            os << ", \"s\": \"t\"";
        os << ", \"name\": \"" << jsonEscape(labelNames_.at(e.label))
           << "\"";
        if (e.addr != 0) {
            char buf[24];
            std::snprintf(buf, sizeof(buf), "0x%llx",
                          static_cast<unsigned long long>(e.addr));
            os << ", \"args\": {\"addr\": \"" << buf << "\"}";
        }
        os << "}";
    }
    os << "\n], \"otherData\": {\"recorded\": " << recorded_
       << ", \"dropped\": " << dropped_ << "}}\n";
}

std::string
Tracer::chromeJson() const
{
    std::ostringstream os;
    writeChromeJson(os);
    return os.str();
}

void
writeMergedChromeJson(const std::vector<const Tracer *> &tracers,
                      std::ostream &os)
{
    if (tracers.size() == 1) {
        tracers[0]->writeChromeJson(os);
        return;
    }

    os << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [";
    bool first = true;
    auto sep = [&] {
        os << (first ? "\n" : ",\n");
        first = false;
    };

    // Per-shard track-id offsets so every (shard, track) pair gets a
    // unique tid; tracks are announced per shard with an "s<k>."
    // prefix.
    std::vector<std::size_t> tidBase(tracers.size(), 0);
    std::size_t nextTid = 0;
    for (std::size_t k = 0; k < tracers.size(); ++k) {
        const Tracer &tr = *tracers[k];
        tidBase[k] = nextTid;
        for (std::size_t t = 0; t < tr.trackCount(); ++t) {
            sep();
            os << "{\"ph\": \"M\", \"pid\": 0, \"tid\": "
               << nextTid++ << ", \"name\": \"thread_name\", "
               << "\"args\": {\"name\": \"s" << k << "."
               << jsonEscape(
                      tr.trackName(static_cast<TraceId>(t)))
               << "\"}}";
        }
    }

    std::uint64_t recorded = 0;
    std::uint64_t dropped = 0;
    for (std::size_t k = 0; k < tracers.size(); ++k) {
        const Tracer &tr = *tracers[k];
        recorded += tr.recorded();
        dropped += tr.dropped();
        for (std::size_t i = 0; i < tr.size(); ++i) {
            const TraceEvent &e = tr.event(i);
            sep();
            os << "{\"ph\": \"" << (e.end > e.start ? 'X' : 'i')
               << "\", \"pid\": 0, \"tid\": "
               << tidBase[k] + e.track
               << ", \"ts\": " << ticksToUs(e.start);
            if (e.end > e.start)
                os << ", \"dur\": " << ticksToUs(e.end - e.start);
            else
                os << ", \"s\": \"t\"";
            os << ", \"name\": \""
               << jsonEscape(tr.labelName(e.label)) << "\"";
            if (e.addr != 0) {
                char buf[24];
                std::snprintf(
                    buf, sizeof(buf), "0x%llx",
                    static_cast<unsigned long long>(e.addr));
                os << ", \"args\": {\"addr\": \"" << buf << "\"}";
            }
            os << "}";
        }
    }
    os << "\n], \"otherData\": {\"recorded\": " << recorded
       << ", \"dropped\": " << dropped << "}}\n";
}

std::string
mergedChromeJson(const std::vector<const Tracer *> &tracers)
{
    std::ostringstream os;
    writeMergedChromeJson(tracers, os);
    return os.str();
}

bool
traceEnvEnabled()
{
    const char *env = std::getenv("JANUS_TRACE");
    return env != nullptr && std::strcmp(env, "0") != 0 &&
           *env != '\0';
}

} // namespace janus
