/**
 * @file
 * Lightweight statistics package. Components register named Scalar /
 * Average / Histogram / TimeWeightedGauge stats with a StatGroup;
 * the harness dumps all groups after a run. Modeled after the shape
 * of gem5's stats but kept minimal.
 *
 * Dump format (see StatGroup::dump): one stat per line as
 * "group.stat value". Composite stats expand into dotted sub-stats
 * ("group.stat.mean", "group.stat.p99", ...). Within a group the
 * lines are sorted by stat name (std::map order), and the stat kinds
 * dump in a fixed sequence (scalars, averages, histograms, gauges),
 * so a dump is byte-stable across runs of the same simulation.
 */

#ifndef JANUS_SIM_STATS_HH
#define JANUS_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace janus
{

/** A monotonically accumulated counter (doubles to hold tick sums). */
class Scalar
{
  public:
    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator++() { value_ += 1; return *this; }
    void set(double v) { value_ = v; }
    double value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    double value_ = 0;
};

/** Mean/min/max over a stream of samples. */
class Average
{
  public:
    void sample(double v);
    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0; }
    double min() const { return count_ ? min_ : 0; }
    double max() const { return count_ ? max_ : 0; }
    double sum() const { return sum_; }
    void reset();

    /**
     * Fold another Average into this one: counts and sums add,
     * min/max fold. Deterministic for a fixed merge order (the
     * callers merge shards in shard-index order).
     */
    void merge(const Average &other);

  private:
    double sum_ = 0;
    double min_ = 0;
    double max_ = 0;
    std::uint64_t count_ = 0;
};

/** Fixed-bucket histogram over [lo, hi) with overflow buckets. */
class Histogram
{
  public:
    Histogram(double lo = 0, double hi = 1, unsigned buckets = 10);

    void sample(double v);
    std::uint64_t count() const { return count_; }
    std::uint64_t bucket(unsigned i) const { return buckets_.at(i); }
    unsigned numBuckets() const
    {
        return static_cast<unsigned>(buckets_.size());
    }
    double lo() const { return lo_; }
    double hi() const { return hi_; }
    std::uint64_t underflows() const { return under_; }
    std::uint64_t overflows() const { return over_; }
    double mean() const { return count_ ? sum_ / count_ : 0; }

    /**
     * Approximate q-quantile (0 <= q <= 1) by linear interpolation
     * inside the containing bucket. Underflow samples count as lo,
     * overflow samples as hi.
     *
     * Edge cases are defined, not bucket reads: an empty histogram
     * returns 0 for every q, and a single-sample histogram returns
     * that exact sample (== mean()) for every q — even when the
     * sample landed in the under/overflow range.
     */
    double quantile(double q) const;

    void reset();

    /**
     * Fold another Histogram of the identical shape (lo, hi, bucket
     * count — asserted) into this one: per-bucket counts, under/over
     * counts, count and sum all add. Integer bucket counts make the
     * merged quantiles independent of merge order; only sum_ is
     * floating point, and the callers merge shards in shard-index
     * order so the dump stays byte-stable.
     */
    void merge(const Histogram &other);

  private:
    double lo_, hi_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t under_ = 0, over_ = 0, count_ = 0;
    double sum_ = 0;
};

/**
 * A value sampled against simulated time (queue depth, buffer
 * occupancy). set() integrates the previous value over the elapsed
 * ticks; timeAverage() is the integral divided by the observation
 * window, i.e. the time-weighted mean occupancy.
 */
class TimeWeightedGauge
{
  public:
    /** Record that the gauge holds @p v from tick @p now on. */
    void set(double v, Tick now);

    double current() const { return cur_; }
    double max() const { return max_; }
    /** Last tick passed to set(). */
    Tick lastUpdate() const { return last_; }

    /** Time-weighted mean over [0, now]; @p now < lastUpdate()
     *  clamps to lastUpdate(). */
    double timeAverage(Tick now) const;
    /** Time-weighted mean over [0, lastUpdate()]. */
    double timeAverage() const { return timeAverage(last_); }

    void reset();

    /**
     * Fold another gauge into this one as if the two tracked
     * disjoint resources of one larger pool: integrals and current
     * values add, the observation window extends to the later
     * lastUpdate (max-by-time). max() becomes the sum of the
     * per-part maxima — an upper bound on the true combined peak,
     * since the parts need not peak at the same tick; exact when
     * there is a single part (shards=1).
     */
    void merge(const TimeWeightedGauge &other);

  private:
    double cur_ = 0;
    double max_ = 0;
    double integral_ = 0;
    Tick last_ = 0;
};

/**
 * A named collection of stats belonging to one component. Groups are
 * registered with a StatRegistry for dumping.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    Scalar &scalar(const std::string &stat);
    Average &average(const std::string &stat);

    /**
     * Named histogram; created with the given shape on first use
     * (the shape of an existing histogram is not changed).
     */
    Histogram &histogram(const std::string &stat, double lo = 0,
                         double hi = 1, unsigned buckets = 10);

    /** Named time-weighted gauge. */
    TimeWeightedGauge &gauge(const std::string &stat);

    /**
     * Dump all stats of this group, one "group.stat value" per line.
     * Scalars first, then averages (.mean/.count), histograms
     * (.mean/.count/.p50/.p99/.underflows/.overflows) and gauges
     * (.timeAvg/.max); each kind sorted by stat name.
     */
    void dump(std::ostream &os) const;

    /**
     * Dump this group as one JSON object member:
     * `"group": {"stat": value, ...}` (no trailing comma/newline).
     * Composite stats flatten to dotted keys exactly as in dump().
     */
    void dumpJson(std::ostream &os) const;

    /** Reset every stat in the group. */
    void reset();

    /**
     * Fold another group's stats into this one, matching stats by
     * name: scalars add, averages/histograms merge per their own
     * merge(), gauges merge max-by-time. Stats present only in
     * @p other are copied in. Deterministic: no floating-point
     * reassociation beyond the fixed caller-supplied merge order.
     */
    void merge(const StatGroup &other);

    const std::map<std::string, Scalar> &scalars() const
    {
        return scalars_;
    }
    const std::map<std::string, Average> &averages() const
    {
        return averages_;
    }
    const std::map<std::string, Histogram> &histograms() const
    {
        return histograms_;
    }
    const std::map<std::string, TimeWeightedGauge> &gauges() const
    {
        return gauges_;
    }

  private:
    /** All (stat, value) leaves in dump order. */
    std::vector<std::pair<std::string, double>> flatten() const;

    std::string name_;
    std::map<std::string, Scalar> scalars_;
    std::map<std::string, Average> averages_;
    std::map<std::string, Histogram> histograms_;
    std::map<std::string, TimeWeightedGauge> gauges_;
};

} // namespace janus

#endif // JANUS_SIM_STATS_HH
