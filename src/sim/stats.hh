/**
 * @file
 * Lightweight statistics package. Components register named Scalar /
 * Average / Histogram stats with a StatGroup; the harness dumps all
 * groups after a run. Modeled after the shape of gem5's stats but
 * kept minimal.
 */

#ifndef JANUS_SIM_STATS_HH
#define JANUS_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace janus
{

/** A monotonically accumulated counter (doubles to hold tick sums). */
class Scalar
{
  public:
    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator++() { value_ += 1; return *this; }
    void set(double v) { value_ = v; }
    double value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    double value_ = 0;
};

/** Mean/min/max over a stream of samples. */
class Average
{
  public:
    void sample(double v);
    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0; }
    double min() const { return count_ ? min_ : 0; }
    double max() const { return count_ ? max_ : 0; }
    double sum() const { return sum_; }
    void reset();

  private:
    double sum_ = 0;
    double min_ = 0;
    double max_ = 0;
    std::uint64_t count_ = 0;
};

/** Fixed-bucket histogram over [lo, hi) with overflow buckets. */
class Histogram
{
  public:
    Histogram(double lo = 0, double hi = 1, unsigned buckets = 10);

    void sample(double v);
    std::uint64_t count() const { return count_; }
    std::uint64_t bucket(unsigned i) const { return buckets_.at(i); }
    unsigned numBuckets() const
    {
        return static_cast<unsigned>(buckets_.size());
    }
    std::uint64_t underflows() const { return under_; }
    std::uint64_t overflows() const { return over_; }
    double mean() const { return count_ ? sum_ / count_ : 0; }
    void reset();

  private:
    double lo_, hi_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t under_ = 0, over_ = 0, count_ = 0;
    double sum_ = 0;
};

/**
 * A named collection of stats belonging to one component. Groups are
 * registered with a StatRegistry for dumping.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    Scalar &scalar(const std::string &stat);
    Average &average(const std::string &stat);

    /** Dump all stats of this group, one "group.stat value" per line. */
    void dump(std::ostream &os) const;

    /** Reset every stat in the group. */
    void reset();

    const std::map<std::string, Scalar> &scalars() const
    {
        return scalars_;
    }
    const std::map<std::string, Average> &averages() const
    {
        return averages_;
    }

  private:
    std::string name_;
    std::map<std::string, Scalar> scalars_;
    std::map<std::string, Average> averages_;
};

} // namespace janus

#endif // JANUS_SIM_STATS_HH
