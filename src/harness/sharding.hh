/**
 * @file
 * Sharded simulation core: the pieces that let one simulated machine
 * be partitioned into N memory channels ("shards"), each owning its
 * own event queue, memory controller, BMO pipeline, IRB, NVM device
 * and resilience state, while the whole machine stays deterministic
 * and bit-reproducible for any worker-thread count.
 *
 *  - ShardRouter maps line addresses to their home shard
 *    (line-interleaved, or contiguous per-shard heap stripes).
 *  - ShardOutbox is a single-writer mailbox of cross-shard messages;
 *    a message is a closure that will run on the destination shard's
 *    event queue.
 *  - ShardScheduler advances all shard queues in conservative
 *    lookahead rounds: every round runs each queue up to a shared
 *    horizon H = (earliest pending event) + window, then delivers
 *    the round's cross-shard messages in a canonical order at tick
 *    max(message due, H). Within a round shards are independent, so
 *    they can run on a worker pool; the per-round work and the
 *    delivery order depend only on shard-local state and previously
 *    delivered messages, never on thread scheduling — which is the
 *    determinism invariant (see DESIGN.md "Sharded simulation
 *    core").
 *  - ShardPort is the narrow interface a TimingCore uses to reach
 *    remote shards (persists, reads, pre-execution requests); the
 *    system builder provides the implementation.
 */

#ifndef JANUS_HARNESS_SHARDING_HH
#define JANUS_HARNESS_SHARDING_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "common/cacheline.hh"
#include "common/types.hh"
#include "sim/eventq.hh"

namespace janus
{

class TimingCore;
struct PreObjId;
struct PreChunk;

/** How line addresses map to their home shard. */
enum class ShardRouterPolicy : std::uint8_t
{
    /** Classic multi-channel interleave: consecutive lines rotate
     *  across shards ((addr / lineBytes) % shards). Maximum channel
     *  parallelism per access stream, but almost every core's
     *  traffic is cross-shard. */
    LineInterleave,
    /** NUMA-style affinity: the workload heap is split into
     *  contiguous per-shard stripes and each core allocates from its
     *  own shard's stripe, so nearly all traffic is shard-local
     *  (cf. Akram et al., emulating hybrid memory on NUMA). */
    RegionAffine,
};

/** Address -> home shard map. Pure function of the config. */
class ShardRouter
{
  public:
    ShardRouter() = default;
    ShardRouter(unsigned shards, ShardRouterPolicy policy,
                Addr heap_base, Addr heap_bytes);

    unsigned shards() const { return shards_; }
    ShardRouterPolicy policy() const { return policy_; }

    /** Home shard of a (line) address. */
    unsigned homeShard(Addr addr) const;

    /** RegionAffine: base of shard @p s's heap stripe. */
    Addr stripeBase(unsigned s) const;
    /** RegionAffine: bytes per shard stripe (line aligned). */
    Addr stripeBytes() const { return stripeBytes_; }

  private:
    unsigned shards_ = 1;
    ShardRouterPolicy policy_ = ShardRouterPolicy::LineInterleave;
    Addr heapBase_ = 0;
    Addr stripeBytes_ = 0;
};

/**
 * One cross-shard message: a closure to run on the destination
 * shard's event queue, no earlier than @ref due. The (src, seq) pair
 * gives every message of a round a unique canonical rank, so the
 * scheduler can deliver in an order independent of which worker
 * thread produced which message first.
 */
struct ShardMsg
{
    Tick due;
    unsigned src;
    unsigned dst;
    std::uint64_t seq;
    EventFn fn;
};

/**
 * Per-shard mailbox of outgoing messages. Single-writer: only the
 * thread currently executing the owning shard's events may send();
 * the scheduler drains it at the round barrier (no concurrent
 * access by construction, hence no locks).
 */
class ShardOutbox
{
  public:
    explicit ShardOutbox(unsigned self = 0) : self_(self) {}

    void
    send(unsigned dst, Tick due, EventFn fn)
    {
        msgs_.push_back(
            ShardMsg{due, self_, dst, nextSeq_++, std::move(fn)});
    }

    bool empty() const { return msgs_.empty(); }

    /** Move the pending messages out (the outbox becomes empty). */
    std::vector<ShardMsg> drain();

  private:
    unsigned self_;
    std::uint64_t nextSeq_ = 0;
    std::vector<ShardMsg> msgs_;
};

/**
 * The narrow interface a TimingCore uses to reach other shards. The
 * system builder implements it on top of ShardRouter + ShardOutbox;
 * cores on a single-shard machine have no port at all (null), which
 * keeps the serial path byte-identical to the pre-sharding
 * simulator.
 */
class ShardPort
{
  public:
    virtual ~ShardPort() = default;

    /** The shard this port's cores live on. */
    virtual unsigned selfShard() const = 0;

    /** Home shard of an address. */
    virtual unsigned homeShard(Addr addr) const = 0;

    /** Does this line live on the core's own shard? */
    virtual bool isLocal(Addr addr) const = 0;

    /**
     * Forward a clwb'd line to its remote home shard at @p send
     * (already including the writeback latency). The home shard
     * persists it and acknowledges; the ack resumes the issuing
     * core's ticket via TimingCore::remotePersistResolved.
     */
    virtual void sendPersist(Addr line_addr, const CacheLine &data,
                             Tick send, bool meta_atomic,
                             unsigned stream, TimingCore *issuer) = 0;

    /**
     * Completion tick of a read miss to a remote shard's line: a
     * fixed NUMA-style hop + access latency, with no remote state
     * touched (reads are timing-only against the functional memory).
     */
    virtual Tick remoteReadDone(Addr line_addr, Tick start) = 0;

    /**
     * Route decoded PRE_* chunks to a remote home shard's Janus
     * front-end. @p buffered selects buffer() (deferred) over
     * issueImmediate().
     */
    virtual void sendPre(unsigned dst_shard, const PreObjId &obj,
                         std::vector<PreChunk> chunks, Tick send,
                         bool buffered) = 0;

    /** Broadcast PRE_START_BUF for @p obj to every remote shard. */
    virtual void sendPreStart(const PreObjId &obj, Tick send) = 0;
};

/**
 * Conservative-lookahead round scheduler over the per-shard event
 * queues.
 *
 * Rounds: H = min over shards of nextEventTick() plus the lookahead
 * window; run every queue to H (concurrently when threads > 1);
 * barrier; deliver all outbox messages, sorted by (due, src, seq),
 * at tick max(due, H) on their destination queues; repeat until all
 * queues and outboxes are empty.
 *
 * Soundness: a message delivered at max(due, H) can never land in a
 * destination shard's past (its queue just ran to exactly H), so
 * any window size is safe — larger windows only quantize
 * cross-shard latency more coarsely, trading fidelity for fewer
 * barriers. Determinism: for a fixed window, round horizons, event
 * execution within a shard, and delivery order are all independent
 * of the worker-thread count and OS scheduling.
 */
class ShardScheduler
{
  public:
    struct Shard
    {
        EventQueue *eq;
        ShardOutbox *outbox;
    };

    /**
     * @param shards   the per-shard queues and mailboxes
     * @param window   lookahead window (ticks added to the earliest
     *                 pending event to form each round's horizon)
     * @param threads  worker threads for intra-round parallelism
     *                 (clamped to the shard count; 1 = serial)
     */
    ShardScheduler(std::vector<Shard> shards, Tick window,
                   unsigned threads);
    ~ShardScheduler();

    ShardScheduler(const ShardScheduler &) = delete;
    ShardScheduler &operator=(const ShardScheduler &) = delete;

    /** Run rounds until every queue and outbox is empty. */
    void run();

    /** Number of synchronization rounds executed. */
    std::uint64_t rounds() const { return rounds_; }
    /** Cross-shard messages delivered. */
    std::uint64_t messagesDelivered() const { return delivered_; }

  private:
    /** Run every shard's queue up to @p horizon (worker pool). */
    void runShardsTo(Tick horizon);
    void workerLoop();

    std::vector<Shard> shards_;
    Tick window_;
    unsigned threads_;
    std::uint64_t rounds_ = 0;
    std::uint64_t delivered_ = 0;

    /** Reused per-round delivery buffer. */
    std::vector<ShardMsg> pending_;

    // --- worker pool (created only when threads_ > 1) -------------
    std::vector<std::thread> workers_;
    std::mutex m_;
    std::condition_variable roundCv_;
    std::condition_variable doneCv_;
    std::uint64_t generation_ = 0;
    Tick horizon_ = 0;
    std::atomic<std::size_t> nextShard_{0};
    unsigned running_ = 0;
    bool stop_ = false;
};

} // namespace janus

#endif // JANUS_HARNESS_SHARDING_HH
