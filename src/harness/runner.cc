#include "harness/runner.hh"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <thread>

#include "common/logging.hh"

namespace janus
{

namespace
{

std::optional<std::uint64_t>
parseSeedEnv()
{
    if (const char *env = std::getenv("JANUS_SEED"))
        return parseSeedLiteral(env, "JANUS_SEED");
    return std::nullopt;
}

std::optional<std::uint64_t> &
seedOverrideSlot()
{
    static std::optional<std::uint64_t> slot = parseSeedEnv();
    return slot;
}

/** Worker threads of the batch currently in flight (0 = none). */
std::atomic<unsigned> activeWorkers{0};

std::optional<unsigned>
parseCountEnv(const char *var)
{
    if (const char *env = std::getenv(var)) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<unsigned>(v);
        warn("ignoring malformed %s='%s'", var, env);
    }
    return std::nullopt;
}

std::optional<unsigned> &
shardOverrideSlot()
{
    static std::optional<unsigned> slot =
        parseCountEnv("JANUS_SHARDS");
    return slot;
}

std::optional<unsigned> &
shardThreadsOverrideSlot()
{
    static std::optional<unsigned> slot =
        parseCountEnv("JANUS_SHARD_THREADS");
    return slot;
}

std::optional<ShardRouterPolicy>
parsePolicyEnv()
{
    if (const char *env = std::getenv("JANUS_SHARD_POLICY")) {
        if (std::string(env) == "interleave")
            return ShardRouterPolicy::LineInterleave;
        if (std::string(env) == "affine")
            return ShardRouterPolicy::RegionAffine;
        warn("ignoring malformed JANUS_SHARD_POLICY='%s' (expected "
             "'interleave' or 'affine')",
             env);
    }
    return std::nullopt;
}

std::optional<ShardRouterPolicy> &
shardPolicyOverrideSlot()
{
    static std::optional<ShardRouterPolicy> slot = parsePolicyEnv();
    return slot;
}

} // namespace

unsigned
activeExperimentWorkers()
{
    unsigned n = activeWorkers.load(std::memory_order_relaxed);
    return n > 1 ? n : 1;
}

std::uint64_t
parseSeedLiteral(const char *text, const char *source)
{
    char *end = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE ||
        *text == '-')
        fatal("malformed %s='%s': expected a decimal unsigned "
              "64-bit seed",
              source, text);
    return static_cast<std::uint64_t>(v);
}

std::optional<std::uint64_t>
seedOverride()
{
    return seedOverrideSlot();
}

void
setSeedOverride(std::optional<std::uint64_t> seed)
{
    seedOverrideSlot() = seed;
}

std::optional<unsigned>
shardOverride()
{
    return shardOverrideSlot();
}

void
setShardOverride(std::optional<unsigned> shards)
{
    shardOverrideSlot() = shards;
}

std::optional<unsigned>
shardThreadsOverride()
{
    return shardThreadsOverrideSlot();
}

void
setShardThreadsOverride(std::optional<unsigned> threads)
{
    shardThreadsOverrideSlot() = threads;
}

std::optional<ShardRouterPolicy>
shardPolicyOverride()
{
    return shardPolicyOverrideSlot();
}

void
setShardPolicyOverride(std::optional<ShardRouterPolicy> policy)
{
    shardPolicyOverrideSlot() = policy;
}

unsigned
resolveThreads(unsigned threads)
{
    if (threads != 0)
        return threads;
    if (const char *env = std::getenv("JANUS_BENCH_THREADS")) {
        char *end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && v > 0)
            return static_cast<unsigned>(v);
        warn("ignoring malformed JANUS_BENCH_THREADS='%s'", env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

std::vector<ExperimentResult>
runExperiments(std::span<const ExperimentConfig> configs,
               unsigned threads)
{
    std::vector<ExperimentResult> results(configs.size());
    if (configs.empty())
        return results;

    threads = resolveThreads(threads);
    if (threads > configs.size())
        threads = static_cast<unsigned>(configs.size());

    if (threads <= 1) {
        for (std::size_t i = 0; i < configs.size(); ++i)
            results[i] = runExperiment(configs[i]);
        return results;
    }

    // Dynamic work-stealing off a shared index: experiments have
    // wildly different run times (core counts, txn sizes), so static
    // slicing would leave workers idle.
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
        while (true) {
            std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= configs.size())
                return;
            results[i] = runExperiment(configs[i]);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(threads);
    activeWorkers.store(threads, std::memory_order_relaxed);
    for (unsigned t = 0; t < threads; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
    activeWorkers.store(0, std::memory_order_relaxed);
    return results;
}

} // namespace janus
