/**
 * @file
 * Parallel experiment runner. Every experiment owns its own
 * EventQueue / NvmSystem and shares no mutable state with any other,
 * so a batch of experiments is embarrassingly parallel: a small
 * worker pool pulls configs off a shared index and writes results
 * into config-order slots. Results are bit-identical to running the
 * same batch serially (asserted by tests/harness/test_runner.cc).
 */

#ifndef JANUS_HARNESS_RUNNER_HH
#define JANUS_HARNESS_RUNNER_HH

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "harness/experiment.hh"

namespace janus
{

/**
 * Resolve a worker-count request. 0 means "auto": the
 * JANUS_BENCH_THREADS environment variable if set, otherwise the
 * hardware concurrency. @return at least 1.
 */
unsigned resolveThreads(unsigned threads = 0);

/**
 * Global workload-seed override for replayable runs: initialized
 * from the JANUS_SEED environment variable, superseded by
 * setSeedOverride() (a bench's --seed= flag). runExperiment applies
 * it to every config's workload seed; benches report the effective
 * seed in BENCH_*.json so any run can be reproduced exactly.
 */
std::optional<std::uint64_t> seedOverride();

/** Install (or clear) the seed override; wins over JANUS_SEED. */
void setSeedOverride(std::optional<std::uint64_t> seed);

/**
 * Global shard-count override (a bench's --shards= flag, or the
 * JANUS_SHARDS environment variable): runExperiment applies it to
 * every config, partitioning each simulated machine into that many
 * memory channels. Timing results legitimately differ from the
 * single-channel machine (cross-shard hops are modeled); they are
 * deterministic for a given shard count regardless of thread count.
 */
std::optional<unsigned> shardOverride();

/** Install (or clear) the shard override; wins over JANUS_SHARDS. */
void setShardOverride(std::optional<unsigned> shards);

/**
 * Global shard-scheduler worker-thread override (--shard-threads= or
 * JANUS_SHARD_THREADS). Never affects results, only wall time.
 */
std::optional<unsigned> shardThreadsOverride();

/** Install (or clear) the shard-thread override. */
void setShardThreadsOverride(std::optional<unsigned> threads);

/**
 * Global shard address-map policy override (--shard-policy= or
 * JANUS_SHARD_POLICY; "interleave" or "affine").
 */
std::optional<ShardRouterPolicy> shardPolicyOverride();

/** Install (or clear) the shard-policy override. */
void setShardPolicyOverride(std::optional<ShardRouterPolicy> policy);

/**
 * Parse a seed literal (decimal uint64). A malformed value is a
 * hard configuration error — fatal(), naming @p source and the bad
 * text — never a silent fallback: a campaign that quietly ran with
 * the default seed would not be the run the user asked to reproduce.
 *
 * @param text    the literal to parse
 * @param source  where it came from ("JANUS_SEED", "--seed")
 */
std::uint64_t parseSeedLiteral(const char *text, const char *source);

/**
 * Number of runner worker threads currently executing experiments
 * (1 when no parallel batch is in flight). Sharded systems divide the
 * hardware concurrency by this to budget their intra-experiment
 * shard-scheduler pools, so nested parallelism never oversubscribes
 * the machine. @return at least 1.
 */
unsigned activeExperimentWorkers();

/**
 * Run a batch of independent experiments on a worker pool.
 *
 * @param configs  the run matrix; results come back in this order
 * @param threads  worker threads (0 = auto, see resolveThreads());
 *                 capped at configs.size()
 */
std::vector<ExperimentResult>
runExperiments(std::span<const ExperimentConfig> configs,
               unsigned threads = 0);

} // namespace janus

#endif // JANUS_HARNESS_RUNNER_HH
