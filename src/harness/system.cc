#include "harness/system.hh"

#include <algorithm>
#include <atomic>
#include <ostream>
#include <thread>

#include "common/logging.hh"
#include "harness/runner.hh"

namespace janus
{

namespace
{

MemCtrlConfig
makeMcConfig(const SystemConfig &sys, unsigned shard_cores)
{
    MemCtrlConfig mc;
    mc.mode = sys.mode;
    mc.bmo = sys.bmo;
    mc.nvm = sys.nvm;
    unsigned scale = shard_cores * sys.resourceScale;
    if (sys.unlimitedResources) {
        mc.bmoUnits = 0;
        mc.janusHw = sys.janusHwPerCore;
        mc.janusHw.requestQueueEntries = 1u << 20;
        mc.janusHw.opQueueEntries = 1u << 20;
        mc.janusHw.irbEntries = 1u << 20;
    } else {
        mc.bmoUnits = sys.bmoUnitsPerCore * scale;
        mc.janusHw = sys.janusHwPerCore;
        mc.janusHw.requestQueueEntries *= scale;
        mc.janusHw.opQueueEntries *= scale;
        mc.janusHw.irbEntries *= scale;
    }
    mc.resilience = sys.resilience;
    mc.profilePersist = sys.profilePersist;
    mc.groupCommitK = sys.groupCommitK;
    mc.groupCommitTimeoutTicks = sys.groupCommitTimeoutTicks;
    mc.gcAdaptive = sys.gcAdaptive;
    mc.gcAdaptiveQueueDepth = sys.gcAdaptiveQueueDepth;
    mc.qos = sys.qos;
    return mc;
}

} // namespace

/**
 * The cross-shard port handed to every core of a sharded machine.
 * Each remote operation becomes a closure in the local shard's
 * outbox; the ShardScheduler delivers it onto the destination
 * shard's event queue at the next round barrier (see
 * harness/sharding.hh for the ordering and determinism rules).
 */
class NvmSystem::PortImpl : public ShardPort
{
  public:
    PortImpl(NvmSystem &sys, unsigned self) : sys_(sys), self_(self)
    {}

    unsigned selfShard() const override { return self_; }

    unsigned
    homeShard(Addr addr) const override
    {
        return sys_.router_.homeShard(addr);
    }

    bool
    isLocal(Addr addr) const override
    {
        return homeShard(addr) == self_;
    }

    void
    sendPersist(Addr line_addr, const CacheLine &data, Tick send,
                bool meta_atomic, unsigned stream,
                TimingCore *issuer) override
    {
        NvmSystem *sys = &sys_;
        const unsigned dst = homeShard(line_addr);
        const unsigned back = self_;
        const Tick hop = sys_.config_.crossShardHopTicks;
        sys_.domains_[self_]->outbox.send(
            dst, send + hop,
            [sys, dst, back, line_addr, data, meta_atomic, stream,
             issuer, hop] {
                ShardDomain &home = *sys->domains_[dst];
                // Arrival = the delivery tick (>= send + hop; the
                // round barrier may quantize it up).
                PersistResult res = home.mc->persistWrite(
                    line_addr, data, home.eventq.curTick(),
                    meta_atomic, stream);
                if (res.deferred) {
                    // Parked in the home shard's group-commit
                    // batch: ack at the batch retire tick, not the
                    // provisional FIFO tick (the home shard's
                    // timeout timer bounds the wait, so the issuer
                    // can never park forever).
                    home.mc->groupCommitAttachAck(
                        [sys, dst, back, hop, issuer](Tick retire) {
                            sys->domains_[dst]->outbox.send(
                                back, retire + hop, [issuer] {
                                    issuer->remotePersistResolved(
                                        issuer->curTick());
                                });
                        });
                    return;
                }
                // Ack once durable, after the return hop.
                home.outbox.send(back, res.persisted + hop,
                                 [issuer] {
                                     issuer->remotePersistResolved(
                                         issuer->curTick());
                                 });
            });
    }

    Tick
    remoteReadDone(Addr, Tick start) override
    {
        // Flat NUMA-style remote access: hop + access latency, no
        // remote state touched (reads are timing-only against the
        // shared functional memory).
        return start + sys_.config_.crossShardReadTicks;
    }

    void
    sendPre(unsigned dst_shard, const PreObjId &obj,
            std::vector<PreChunk> chunks, Tick send,
            bool buffered) override
    {
        NvmSystem *sys = &sys_;
        sys_.domains_[self_]->outbox.send(
            dst_shard, send + sys_.config_.crossShardHopTicks,
            [sys, dst_shard, obj, chunks = std::move(chunks),
             buffered]() mutable {
                ShardDomain &home = *sys->domains_[dst_shard];
                if (buffered)
                    home.mc->frontend().buffer(
                        obj, chunks, home.eventq.curTick());
                else
                    home.mc->frontend().issueImmediate(
                        obj, chunks, home.eventq.curTick());
            });
    }

    void
    sendPreStart(const PreObjId &obj, Tick send) override
    {
        NvmSystem *sys = &sys_;
        const Tick due = send + sys_.config_.crossShardHopTicks;
        for (unsigned dst = 0; dst < sys_.domains_.size(); ++dst) {
            if (dst == self_)
                continue;
            sys_.domains_[self_]->outbox.send(
                dst, due, [sys, dst, obj] {
                    ShardDomain &home = *sys->domains_[dst];
                    home.mc->frontend().startBuffered(
                        obj, home.eventq.curTick());
                });
        }
    }

  private:
    NvmSystem &sys_;
    unsigned self_;
};

NvmSystem::NvmSystem(const SystemConfig &config, const Module &module)
    : config_(config),
      router_(std::max(1u, config.shards), config.shardPolicy,
              config.heapBase, config.heapBytes),
      alloc_(config.heapBase, config.heapBytes)
{
    janus_assert(config.cores >= 1, "need at least one core");
    janus_assert(config.shards >= 1, "need at least one shard");
    const unsigned S = config.shards;

    window_ = config.shardWindowTicks;
    if (window_ == 0)
        window_ =
            config.shardPolicy == ShardRouterPolicy::RegionAffine
                ? 10 * ticks::us
                : config.crossShardHopTicks;

    // Core i lives on shard i % S; the per-shard controller scales
    // its BMO units and Janus buffers by its own core count, so a
    // sharded machine has the same total hardware as the monolith.
    std::vector<unsigned> shard_cores(S, 0);
    for (unsigned i = 0; i < config.cores; ++i)
        ++shard_cores[i % S];

    for (unsigned s = 0; s < S; ++s) {
        auto dom = std::make_unique<ShardDomain>();
        dom->outbox = ShardOutbox(s);
        if (config.trace)
            dom->tracer =
                std::make_unique<Tracer>(config.traceCapacity);
        dom->mc = std::make_unique<MemoryController>(
            makeMcConfig(config, std::max(1u, shard_cores[s])));
        dom->mc->setTracer(dom->tracer.get());
        if (config.metrics) {
            dom->sampler = std::make_unique<MetricsSampler>(
                config.metricsWindowTicks);
            dom->mc->setSampler(dom->sampler.get());
        }
        domains_.push_back(std::move(dom));
        if (config.groupCommitK > 1) {
            // The batch-timeout timer runs on the shard's own event
            // queue (ShardDomain is heap-allocated, so the pointers
            // stay stable).
            EventQueue *eq = &domains_.back()->eventq;
            domains_.back()->mc->setGcScheduler(
                [eq](Tick delay, std::function<void(Tick)> fn) {
                    eq->scheduleIn(
                        delay, [eq, fn = std::move(fn)]() mutable {
                            fn(eq->curTick());
                        });
                });
        }
    }
    if (S > 1) {
        for (unsigned s = 0; s < S; ++s)
            domains_[s]->port = std::make_unique<PortImpl>(*this, s);
        if (config.shardPolicy == ShardRouterPolicy::RegionAffine)
            for (unsigned s = 0; s < S; ++s)
                stripeAllocs_.push_back(
                    std::make_unique<RegionAllocator>(
                        router_.stripeBase(s),
                        router_.stripeBytes()));
    }

    for (unsigned i = 0; i < config.cores; ++i) {
        ShardDomain &dom = *domains_[i % S];
        cores_.push_back(std::make_unique<TimingCore>(
            "core" + std::to_string(i), dom.eventq, i, module, mem_,
            *dom.mc, config.core));
        cores_.back()->setTracer(dom.tracer.get());
        if (S > 1)
            cores_.back()->setShardPort(dom.port.get());
    }
}

NvmSystem::~NvmSystem() = default;

RegionAllocator &
NvmSystem::allocatorFor(unsigned core)
{
    if (!stripeAllocs_.empty())
        return *stripeAllocs_[shardOfCore(core)];
    return alloc_;
}

std::uint64_t
NvmSystem::eventsExecuted() const
{
    std::uint64_t total = 0;
    for (const auto &dom : domains_)
        total += dom->eventq.executed();
    return total;
}

unsigned
NvmSystem::effectiveShardThreads() const
{
    const bool explicit_request = config_.shardThreads != 0;
    unsigned want = explicit_request ? config_.shardThreads
                                     : numShards();
    want = std::min(want, numShards());
    if (want <= 1)
        return 1;
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    // Compose with the experiment runner's own worker pool (sized
    // from JANUS_BENCH_THREADS / a bench's --threads): the outer
    // pool takes precedence and each experiment's shard pool gets an
    // equal slice of the remaining hardware concurrency, so total
    // threads never exceed outer * slice <= hardware concurrency.
    // An explicit shardThreads request is honored verbatim even when
    // it oversubscribes (determinism probes and the TSan race smoke
    // need real concurrency regardless of the host's core count) —
    // with a loud one-time warning, since only wall time suffers;
    // results never depend on the thread count.
    const unsigned outer = std::max(1u, activeExperimentWorkers());
    const unsigned budget = std::max(1u, hw / outer);
    if (want > budget) {
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true))
            warn("shard thread pool %s: %u shard workers requested "
                 "but %u experiment workers share %u hardware "
                 "threads (results are unchanged; only wall time "
                 "is affected)",
                 explicit_request ? "oversubscribed" : "clamped",
                 want, outer, hw);
        if (!explicit_request)
            want = budget;
    }
    return want;
}

Tick
NvmSystem::run(std::vector<TxnSource> sources)
{
    janus_assert(sources.size() == cores_.size(),
                 "need one transaction source per core (%zu vs %zu)",
                 sources.size(), cores_.size());
    lastRounds_ = 0;
    lastMessages_ = 0;

    if (domains_.size() == 1) {
        // Serial path: byte-identical to the pre-sharding machine.
        unsigned live = static_cast<unsigned>(cores_.size());
        for (unsigned i = 0; i < cores_.size(); ++i)
            cores_[i]->run(std::move(sources[i]), [&live] { --live; });
        domains_[0]->eventq.run();
        janus_assert(live == 0, "deadlock: %u cores never finished",
                     live);
        // Finish deferred background work (e.g. the integrity
        // scrubber) so end-of-run state is fully verified.
        domains_[0]->mc->finishRun();

        Tick makespan = 0;
        for (const auto &core : cores_)
            makespan = std::max(makespan, core->finishTick());
        if (domains_[0]->sampler)
            domains_[0]->sampler->finish(makespan);
        return makespan;
    }

    const unsigned threads = effectiveShardThreads();
    if (threads > 1)
        mem_.setThreadSafe(true);

    std::atomic<unsigned> live{
        static_cast<unsigned>(cores_.size())};
    for (unsigned i = 0; i < cores_.size(); ++i)
        cores_[i]->run(std::move(sources[i]), [&live] {
            live.fetch_sub(1, std::memory_order_relaxed);
        });

    {
        std::vector<ShardScheduler::Shard> shards;
        shards.reserve(domains_.size());
        for (auto &dom : domains_)
            shards.push_back(
                ShardScheduler::Shard{&dom->eventq, &dom->outbox});
        ShardScheduler sched(std::move(shards), window_, threads);
        sched.run();
        lastRounds_ = sched.rounds();
        lastMessages_ = sched.messagesDelivered();
    }

    if (threads > 1)
        mem_.setThreadSafe(false);
    janus_assert(live.load() == 0,
                 "deadlock: %u cores never finished", live.load());
    for (auto &dom : domains_)
        dom->mc->finishRun();

    Tick makespan = 0;
    for (const auto &core : cores_)
        makespan = std::max(makespan, core->finishTick());
    for (auto &dom : domains_)
        if (dom->sampler)
            dom->sampler->finish(makespan);
    return makespan;
}

// --- merged cross-shard views ------------------------------------

std::string
NvmSystem::traceJson() const
{
    if (!config_.trace)
        return "";
    std::vector<const Tracer *> tracers;
    for (const auto &dom : domains_)
        tracers.push_back(dom->tracer.get());
    return mergedChromeJson(tracers);
}

std::uint64_t
NvmSystem::traceRecorded() const
{
    std::uint64_t total = 0;
    for (const auto &dom : domains_)
        if (dom->tracer)
            total += dom->tracer->recorded();
    return total;
}

std::uint64_t
NvmSystem::traceDropped() const
{
    std::uint64_t total = 0;
    for (const auto &dom : domains_)
        if (dom->tracer)
            total += dom->tracer->dropped();
    return total;
}

std::string
NvmSystem::metricsJson() const
{
    if (!config_.metrics)
        return "";
    std::vector<const MetricsSampler *> samplers;
    for (const auto &dom : domains_)
        samplers.push_back(dom->sampler.get());
    return MetricsSampler::mergedJson(samplers);
}

std::size_t
NvmSystem::metricsWindows() const
{
    return config_.metrics ? domains_[0]->sampler->windows() : 0;
}

std::uint64_t
NvmSystem::mcWrites() const
{
    std::uint64_t total = 0;
    for (const auto &dom : domains_)
        total += dom->mc->writes();
    return total;
}

double
NvmSystem::avgWriteLatencyNs() const
{
    Average merged;
    for (const auto &dom : domains_)
        merged.merge(dom->mc->writeLatency());
    return merged.mean();
}

PersistBreakdown
NvmSystem::mergedBreakdown() const
{
    PersistBreakdown merged = domains_[0]->mc->breakdown();
    for (std::size_t s = 1; s < domains_.size(); ++s) {
        const PersistBreakdown &bd = domains_[s]->mc->breakdown();
        merged.bmoNs.merge(bd.bmoNs);
        merged.queueNs.merge(bd.queueNs);
        merged.orderNs.merge(bd.orderNs);
        merged.totalNs.merge(bd.totalNs);
        merged.totalHistNs.merge(bd.totalHistNs);
    }
    return merged;
}

double
NvmSystem::dupRatio() const
{
    std::uint64_t writes = 0;
    std::uint64_t dups = 0;
    for (const auto &dom : domains_) {
        writes += dom->mc->backend().writes();
        dups += dom->mc->backend().dupWrites();
    }
    // Same arithmetic as BmoBackendState::dupRatio, so shards == 1
    // reproduces the single backend's value bit-exactly.
    return writes ? static_cast<double>(dups) / writes : 0.0;
}

std::uint64_t
NvmSystem::treeCacheHits() const
{
    std::uint64_t total = 0;
    for (const auto &dom : domains_)
        total += dom->mc->backend().merkleTree().cacheHits();
    return total;
}

std::uint64_t
NvmSystem::treeCacheMisses() const
{
    std::uint64_t total = 0;
    for (const auto &dom : domains_)
        total += dom->mc->backend().merkleTree().cacheMisses();
    return total;
}

double
NvmSystem::treeCacheHitRate() const
{
    const std::uint64_t hits = treeCacheHits();
    const std::uint64_t total = hits + treeCacheMisses();
    // Same arithmetic as MerkleTree::cacheHitRate.
    return total ? double(hits) / double(total) : 0.0;
}

std::uint64_t
NvmSystem::merkleCoalescedLevels() const
{
    std::uint64_t total = 0;
    for (const auto &dom : domains_)
        total +=
            dom->mc->backend().merkleTree().coalescedPathLevels();
    return total;
}

std::uint64_t
NvmSystem::merkleSavedRehashes() const
{
    std::uint64_t total = 0;
    for (const auto &dom : domains_)
        total +=
            dom->mc->backend().merkleTree().savedInteriorRehashes();
    return total;
}

std::uint64_t
NvmSystem::consumedFullyPreExecuted() const
{
    if (config_.mode != WritePathMode::Janus)
        return 0;
    std::uint64_t total = 0;
    for (const auto &dom : domains_)
        total += dom->mc->frontend().consumedFullyPreExecuted();
    return total;
}

ResilienceCounters
NvmSystem::mergedResilience() const
{
    ResilienceCounters merged = domains_[0]->mc->resilience().counters();
    for (std::size_t s = 1; s < domains_.size(); ++s) {
        const ResilienceCounters rc =
            domains_[s]->mc->resilience().counters();
        merged.transientFlipsInjected += rc.transientFlipsInjected;
        merged.stuckCellsInjected += rc.stuckCellsInjected;
        merged.cleanReads += rc.cleanReads;
        merged.correctedReads += rc.correctedReads;
        merged.uncorrectableReads += rc.uncorrectableReads;
        merged.readRetries += rc.readRetries;
        merged.correctedWrites += rc.correctedWrites;
        merged.writeVerifyFailures += rc.writeVerifyFailures;
        merged.writeRetries += rc.writeRetries;
        merged.remaps += rc.remaps;
        merged.spareExhausted += rc.spareExhausted;
        merged.dataLossLines += rc.dataLossLines;
        merged.irbEccFaults += rc.irbEccFaults;
        merged.preExecDisabledWrites += rc.preExecDisabledWrites;
        merged.dedupBypasses += rc.dedupBypasses;
        merged.watchdogTrips += rc.watchdogTrips;
        merged.degradedTicks += rc.degradedTicks;
        merged.retryBackoffTicks += rc.retryBackoffTicks;
        merged.scrubQueued += rc.scrubQueued;
        merged.scrubbed += rc.scrubbed;
        merged.scrubFailures += rc.scrubFailures;
    }
    return merged;
}

CritPathSummary
NvmSystem::mergedCritPath() const
{
    CritPathSummary merged = domains_[0]->mc->critPath();
    for (std::size_t s = 1; s < domains_.size(); ++s)
        merged.merge(domains_[s]->mc->critPath());
    return merged;
}

std::vector<StatGroup>
NvmSystem::collectStats()
{
    std::vector<StatGroup> groups;

    for (const auto &core : cores_) {
        StatGroup group(core->name());
        group.scalar("instructions")
            .set(static_cast<double>(core->instructions()));
        group.scalar("transactions")
            .set(static_cast<double>(core->transactions()));
        group.scalar("loads").set(static_cast<double>(core->loads()));
        group.scalar("stores")
            .set(static_cast<double>(core->stores()));
        group.scalar("persists")
            .set(static_cast<double>(core->persists()));
        group.scalar("preRequests")
            .set(static_cast<double>(core->preRequests()));
        group.scalar("fenceStallNs")
            .set(ticks::toNsF(core->fenceStallTicks()));
        group.scalar("l1HitRate").set(core->l1().hitRate());
        group.scalar("l2HitRate").set(core->l2().hitRate());
        groups.push_back(std::move(group));
    }

    // Channel-level groups merge deterministically across shards;
    // every sum / mean / ratio below replicates the single
    // component's arithmetic exactly, so shards == 1 reproduces the
    // pre-sharding dump byte-for-byte.
    StatGroup mc_group("mc");
    {
        std::uint64_t writes = 0;
        std::uint64_t meta = 0;
        std::uint64_t cc_hits = 0;
        std::uint64_t cc_misses = 0;
        for (const auto &dom : domains_) {
            writes += dom->mc->writes();
            meta += dom->mc->metaAtomicWrites();
            cc_hits += dom->mc->counterCache().hits();
            cc_misses += dom->mc->counterCache().misses();
        }
        const PersistBreakdown bd = mergedBreakdown();
        mc_group.scalar("writes").set(static_cast<double>(writes));
        mc_group.scalar("avgWriteLatencyNs")
            .set(avgWriteLatencyNs());
        mc_group.scalar("metaAtomicWrites")
            .set(static_cast<double>(meta));
        const std::uint64_t cc_total = cc_hits + cc_misses;
        mc_group.scalar("counterCacheHitRate")
            .set(cc_total
                     ? static_cast<double>(cc_hits) / cc_total
                     : 0.0);
        mc_group.scalar("stageBmoNs").set(bd.bmoNs.mean());
        mc_group.scalar("stageQueueNs").set(bd.queueNs.mean());
        mc_group.scalar("stageOrderNs").set(bd.orderNs.mean());
        mc_group.histogram("persistLatencyNs") = bd.totalHistNs;
        // Emitted only when group commit is on, so dumps with the
        // feature off stay byte-identical to earlier builds.
        if (config_.groupCommitK > 1) {
            std::uint64_t batches = 0, parked = 0, k_closes = 0,
                          timeout_closes = 0, fence_closes = 0,
                          drain_closes = 0;
            for (const auto &dom : domains_) {
                batches += dom->mc->gcBatches();
                parked += dom->mc->gcWritesDeferred();
                k_closes += dom->mc->gcKCloses();
                timeout_closes += dom->mc->gcTimeoutCloses();
                fence_closes += dom->mc->gcFenceCloses();
                drain_closes += dom->mc->gcDrainCloses();
            }
            mc_group.scalar("gcBatches")
                .set(static_cast<double>(batches));
            mc_group.scalar("gcWritesDeferred")
                .set(static_cast<double>(parked));
            mc_group.scalar("gcKCloses")
                .set(static_cast<double>(k_closes));
            mc_group.scalar("gcTimeoutCloses")
                .set(static_cast<double>(timeout_closes));
            mc_group.scalar("gcFenceCloses")
                .set(static_cast<double>(fence_closes));
            mc_group.scalar("gcDrainCloses")
                .set(static_cast<double>(drain_closes));
            // Only with the adaptive knob on, so gc-on dumps from
            // before the knob existed stay byte-identical.
            if (config_.gcAdaptive) {
                std::uint64_t adaptive_closes = 0;
                for (const auto &dom : domains_)
                    adaptive_closes += dom->mc->gcAdaptiveCloses();
                mc_group.scalar("gcAdaptiveCloses")
                    .set(static_cast<double>(adaptive_closes));
            }
        }
    }
    groups.push_back(std::move(mc_group));

    // Overload-robustness layer: emitted only when QoS is enabled,
    // so every existing configuration dumps byte-identically.
    if (config_.qos.enabled) {
        StatGroup qos_group("qos");
        const QosManager &q0 = domains_[0]->mc->qos();
        std::uint64_t wd_enters = 0, wd_exits = 0;
        for (const auto &dom : domains_) {
            wd_enters += dom->mc->qos().watchdogEnters();
            wd_exits += dom->mc->qos().watchdogExits();
        }
        qos_group.scalar("watchdogEnters")
            .set(static_cast<double>(wd_enters));
        qos_group.scalar("watchdogExits")
            .set(static_cast<double>(wd_exits));
        for (unsigned t = 0; t < q0.numTenants(); ++t) {
            const std::string prefix = q0.tenant(t).name;
            QosTenantCounters sum;
            Histogram hist = domains_[0]->mc->tenantPersistNs()[t];
            for (std::size_t s = 0; s < domains_.size(); ++s) {
                const QosTenantCounters &c =
                    domains_[s]->mc->qos().counters(t);
                sum.admitted += c.admitted;
                sum.rejected += c.rejected;
                sum.retries += c.retries;
                sum.shedDeadline += c.shedDeadline;
                sum.shedSaturation += c.shedSaturation;
                sum.throttleTicks += c.throttleTicks;
                sum.shapedLines += c.shapedLines;
                if (s > 0)
                    hist.merge(
                        domains_[s]->mc->tenantPersistNs()[t]);
            }
            auto u64 = [](std::uint64_t v) {
                return static_cast<double>(v);
            };
            qos_group.scalar(prefix + ".admitted")
                .set(u64(sum.admitted));
            qos_group.scalar(prefix + ".rejected")
                .set(u64(sum.rejected));
            qos_group.scalar(prefix + ".retries")
                .set(u64(sum.retries));
            qos_group.scalar(prefix + ".shedDeadline")
                .set(u64(sum.shedDeadline));
            qos_group.scalar(prefix + ".shedSaturation")
                .set(u64(sum.shedSaturation));
            qos_group.scalar(prefix + ".shapedLines")
                .set(u64(sum.shapedLines));
            qos_group.scalar(prefix + ".throttleNs")
                .set(ticks::toNsF(sum.throttleTicks));
            qos_group.histogram(prefix + ".persistLatencyNs") =
                hist;
        }
        groups.push_back(std::move(qos_group));
    }

    StatGroup dev_group("nvm");
    {
        std::uint64_t accepted = 0;
        std::uint64_t reads = 0;
        Average stall;
        TimeWeightedGauge depth;
        for (const auto &dom : domains_) {
            accepted += dom->mc->device().writesAccepted();
            reads += dom->mc->device().readsIssued();
            stall.merge(dom->mc->device().acceptStall());
            depth.merge(dom->mc->device().queueDepthGauge());
        }
        dev_group.scalar("writesAccepted")
            .set(static_cast<double>(accepted));
        dev_group.scalar("readsIssued")
            .set(static_cast<double>(reads));
        dev_group.scalar("avgAcceptStallNs").set(stall.mean());
        dev_group.gauge("queueDepth") = depth;
    }
    groups.push_back(std::move(dev_group));

    StatGroup engine_group("bmoEngine");
    {
        std::uint64_t subops = 0;
        Tick busy = 0;
        for (const auto &dom : domains_) {
            subops += dom->mc->engine().subOpsExecuted();
            busy += dom->mc->engine().busyTicks();
        }
        engine_group.scalar("subOpsExecuted")
            .set(static_cast<double>(subops));
        engine_group.scalar("busyNs").set(ticks::toNsF(busy));
    }
    groups.push_back(std::move(engine_group));

    StatGroup backend_group("backend");
    {
        std::uint64_t writes = 0;
        std::uint64_t live_lines = 0;
        std::uint64_t before = 0;
        std::uint64_t after = 0;
        for (const auto &dom : domains_) {
            writes += dom->mc->backend().writes();
            live_lines += dom->mc->backend().physLinesLive();
            before += dom->mc->backend().bytesBeforeCompression();
            after += dom->mc->backend().bytesAfterCompression();
        }
        backend_group.scalar("writes")
            .set(static_cast<double>(writes));
        backend_group.scalar("dupRatio").set(dupRatio());
        backend_group.scalar("physLinesLive")
            .set(static_cast<double>(live_lines));
        if (domains_[0]->mc->backend().config().compression)
            backend_group.scalar("compressionRatio")
                .set(after ? static_cast<double>(before) /
                                 static_cast<double>(after)
                           : 1.0);
    }
    groups.push_back(std::move(backend_group));

    if (config_.mode == WritePathMode::Janus) {
        StatGroup fe_group("janus");
        std::uint64_t requests = 0, chunks = 0, with_entry = 0,
                      fully = 0, hits = 0, misses = 0, covered = 0,
                      mismatches = 0, invalidations = 0,
                      dropped_irb = 0, dropped_opq = 0, aged = 0;
        TimeWeightedGauge irb_occ;
        for (const auto &dom : domains_) {
            const JanusFrontend &fe = dom->mc->frontend();
            requests += fe.requestsIssued();
            chunks += fe.chunksPreExecuted();
            with_entry += fe.consumedWithEntry();
            fully += fe.consumedFullyPreExecuted();
            hits += fe.irbHits();
            misses += fe.irbMisses();
            covered += fe.preexecCoveredSubOps();
            mismatches += fe.dataMismatches();
            invalidations += fe.metadataInvalidations();
            dropped_irb += fe.droppedIrb();
            dropped_opq += fe.droppedOpQueue();
            aged += fe.agedOut();
            irb_occ.merge(fe.irbOccupancyGauge());
        }
        fe_group.scalar("requestsIssued")
            .set(static_cast<double>(requests));
        fe_group.scalar("chunksPreExecuted")
            .set(static_cast<double>(chunks));
        fe_group.scalar("consumedWithEntry")
            .set(static_cast<double>(with_entry));
        fe_group.scalar("consumedFullyPreExecuted")
            .set(static_cast<double>(fully));
        fe_group.scalar("irb_hits").set(static_cast<double>(hits));
        fe_group.scalar("irb_misses")
            .set(static_cast<double>(misses));
        fe_group.scalar("preexec_covered_subops")
            .set(static_cast<double>(covered));
        fe_group.scalar("dataMismatches")
            .set(static_cast<double>(mismatches));
        fe_group.scalar("metadataInvalidations")
            .set(static_cast<double>(invalidations));
        fe_group.scalar("droppedIrb")
            .set(static_cast<double>(dropped_irb));
        fe_group.scalar("droppedOpQueue")
            .set(static_cast<double>(dropped_opq));
        fe_group.scalar("agedOut").set(static_cast<double>(aged));
        fe_group.gauge("irbOccupancy") = irb_occ;
        groups.push_back(std::move(fe_group));
    }

    // Streamlined integrity-tree engine. Always emitted — all-zero
    // when streamlining is off — so the schema is stable.
    {
        StatGroup merkle_group("merkle");
        std::uint64_t capacity = 0, resident = 0, epochs = 0,
                      rehashes = 0, pipelined = 0;
        Tick pipe_busy = 0;
        TimeWeightedGauge cache_occ;
        for (const auto &dom : domains_) {
            const MerkleTree &tree =
                dom->mc->backend().merkleTree();
            capacity += tree.cacheCapacity();
            resident += tree.cacheResident();
            epochs += tree.epochs();
            rehashes += tree.interiorRehashes();
            pipelined += dom->mc->engine().pipelinedSubOps();
            pipe_busy += dom->mc->engine().pipeBusyTicks();
            cache_occ.merge(dom->mc->treeCacheOccupancy());
        }
        merkle_group.scalar("cacheCapacity")
            .set(static_cast<double>(capacity));
        merkle_group.scalar("cacheResident")
            .set(static_cast<double>(resident));
        merkle_group.scalar("cacheHits")
            .set(static_cast<double>(treeCacheHits()));
        merkle_group.scalar("cacheMisses")
            .set(static_cast<double>(treeCacheMisses()));
        merkle_group.scalar("cacheHitRate").set(treeCacheHitRate());
        merkle_group.scalar("coalescedLevels")
            .set(static_cast<double>(merkleCoalescedLevels()));
        merkle_group.scalar("epochs")
            .set(static_cast<double>(epochs));
        merkle_group.scalar("interiorRehashes")
            .set(static_cast<double>(rehashes));
        merkle_group.scalar("savedInteriorRehashes")
            .set(static_cast<double>(merkleSavedRehashes()));
        merkle_group.scalar("pipelinedSubOps")
            .set(static_cast<double>(pipelined));
        merkle_group.scalar("pipeBusyNs")
            .set(ticks::toNsF(pipe_busy));
        merkle_group.gauge("cacheOccupancy") = cache_occ;
        groups.push_back(std::move(merkle_group));
    }

    // Always emitted — all-zero when the layer is disabled — so the
    // stats schema is stable across configurations.
    {
        ResilienceCounters rc = mergedResilience();
        auto u64 = [](std::uint64_t v) {
            return static_cast<double>(v);
        };
        StatGroup res_group("resilience");
        res_group.scalar("transientFlipsInjected")
            .set(u64(rc.transientFlipsInjected));
        res_group.scalar("stuckCellsInjected")
            .set(u64(rc.stuckCellsInjected));
        res_group.scalar("cleanReads").set(u64(rc.cleanReads));
        res_group.scalar("correctedReads").set(u64(rc.correctedReads));
        res_group.scalar("uncorrectableReads")
            .set(u64(rc.uncorrectableReads));
        res_group.scalar("readRetries").set(u64(rc.readRetries));
        res_group.scalar("correctedWrites")
            .set(u64(rc.correctedWrites));
        res_group.scalar("writeVerifyFailures")
            .set(u64(rc.writeVerifyFailures));
        res_group.scalar("writeRetries").set(u64(rc.writeRetries));
        res_group.scalar("remaps").set(u64(rc.remaps));
        res_group.scalar("spareExhausted").set(u64(rc.spareExhausted));
        res_group.scalar("dataLossLines").set(u64(rc.dataLossLines));
        res_group.scalar("irbEccFaults").set(u64(rc.irbEccFaults));
        res_group.scalar("preExecDisabledWrites")
            .set(u64(rc.preExecDisabledWrites));
        res_group.scalar("dedupBypasses").set(u64(rc.dedupBypasses));
        res_group.scalar("watchdogTrips").set(u64(rc.watchdogTrips));
        res_group.scalar("degradedNs")
            .set(ticks::toNsF(rc.degradedTicks));
        res_group.scalar("retryBackoffNs")
            .set(ticks::toNsF(rc.retryBackoffTicks));
        res_group.scalar("scrubQueued").set(u64(rc.scrubQueued));
        res_group.scalar("scrubbed").set(u64(rc.scrubbed));
        res_group.scalar("scrubFailures").set(u64(rc.scrubFailures));
        groups.push_back(std::move(res_group));
    }

    std::sort(groups.begin(), groups.end(),
              [](const StatGroup &a, const StatGroup &b) {
                  return a.name() < b.name();
              });
    return groups;
}

void
NvmSystem::dumpStats(std::ostream &os)
{
    for (const StatGroup &group : collectStats())
        group.dump(os);
}

void
NvmSystem::dumpStatsJson(std::ostream &os)
{
    os << "{";
    bool first = true;
    for (const StatGroup &group : collectStats()) {
        os << (first ? "\n  " : ",\n  ");
        first = false;
        group.dumpJson(os);
    }
    os << "\n}\n";
}

} // namespace janus
