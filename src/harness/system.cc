#include "harness/system.hh"

#include <algorithm>
#include <ostream>

#include "common/logging.hh"

namespace janus
{

namespace
{

MemCtrlConfig
makeMcConfig(const SystemConfig &sys)
{
    MemCtrlConfig mc;
    mc.mode = sys.mode;
    mc.bmo = sys.bmo;
    mc.nvm = sys.nvm;
    unsigned scale = sys.cores * sys.resourceScale;
    if (sys.unlimitedResources) {
        mc.bmoUnits = 0;
        mc.janusHw = sys.janusHwPerCore;
        mc.janusHw.requestQueueEntries = 1u << 20;
        mc.janusHw.opQueueEntries = 1u << 20;
        mc.janusHw.irbEntries = 1u << 20;
    } else {
        mc.bmoUnits = sys.bmoUnitsPerCore * scale;
        mc.janusHw = sys.janusHwPerCore;
        mc.janusHw.requestQueueEntries *= scale;
        mc.janusHw.opQueueEntries *= scale;
        mc.janusHw.irbEntries *= scale;
    }
    mc.resilience = sys.resilience;
    mc.profilePersist = sys.profilePersist;
    return mc;
}

} // namespace

NvmSystem::NvmSystem(const SystemConfig &config, const Module &module)
    : config_(config), alloc_(config.heapBase, config.heapBytes)
{
    janus_assert(config.cores >= 1, "need at least one core");
    if (config.trace)
        tracer_ = std::make_unique<Tracer>(config.traceCapacity);
    mc_ = std::make_unique<MemoryController>(makeMcConfig(config));
    mc_->setTracer(tracer_.get());
    if (config.metrics) {
        sampler_ =
            std::make_unique<MetricsSampler>(config.metricsWindowTicks);
        mc_->setSampler(sampler_.get());
    }
    for (unsigned i = 0; i < config.cores; ++i) {
        cores_.push_back(std::make_unique<TimingCore>(
            "core" + std::to_string(i), eventq_, i, module, mem_,
            *mc_, config.core));
        cores_.back()->setTracer(tracer_.get());
    }
}

Tick
NvmSystem::run(std::vector<TxnSource> sources)
{
    janus_assert(sources.size() == cores_.size(),
                 "need one transaction source per core (%zu vs %zu)",
                 sources.size(), cores_.size());
    unsigned live = static_cast<unsigned>(cores_.size());
    for (unsigned i = 0; i < cores_.size(); ++i)
        cores_[i]->run(std::move(sources[i]), [&live] { --live; });
    eventq_.run();
    janus_assert(live == 0, "deadlock: %u cores never finished", live);
    // Finish deferred background work (e.g. the integrity scrubber)
    // so end-of-run state is fully verified.
    mc_->finishRun();

    Tick makespan = 0;
    for (const auto &core : cores_)
        makespan = std::max(makespan, core->finishTick());
    if (sampler_)
        sampler_->finish(makespan);
    return makespan;
}

std::vector<StatGroup>
NvmSystem::collectStats()
{
    std::vector<StatGroup> groups;

    for (const auto &core : cores_) {
        StatGroup group(core->name());
        group.scalar("instructions")
            .set(static_cast<double>(core->instructions()));
        group.scalar("transactions")
            .set(static_cast<double>(core->transactions()));
        group.scalar("loads").set(static_cast<double>(core->loads()));
        group.scalar("stores")
            .set(static_cast<double>(core->stores()));
        group.scalar("persists")
            .set(static_cast<double>(core->persists()));
        group.scalar("preRequests")
            .set(static_cast<double>(core->preRequests()));
        group.scalar("fenceStallNs")
            .set(ticks::toNsF(core->fenceStallTicks()));
        group.scalar("l1HitRate").set(core->l1().hitRate());
        group.scalar("l2HitRate").set(core->l2().hitRate());
        groups.push_back(std::move(group));
    }

    StatGroup mc_group("mc");
    mc_group.scalar("writes").set(static_cast<double>(mc_->writes()));
    mc_group.scalar("avgWriteLatencyNs").set(mc_->avgWriteLatencyNs());
    mc_group.scalar("metaAtomicWrites")
        .set(static_cast<double>(mc_->metaAtomicWrites()));
    mc_group.scalar("counterCacheHitRate")
        .set(mc_->counterCache().hitRate());
    const PersistBreakdown &bd = mc_->breakdown();
    mc_group.scalar("stageBmoNs").set(bd.bmoNs.mean());
    mc_group.scalar("stageQueueNs").set(bd.queueNs.mean());
    mc_group.scalar("stageOrderNs").set(bd.orderNs.mean());
    mc_group.histogram("persistLatencyNs") = bd.totalHistNs;
    groups.push_back(std::move(mc_group));

    StatGroup dev_group("nvm");
    dev_group.scalar("writesAccepted")
        .set(static_cast<double>(mc_->device().writesAccepted()));
    dev_group.scalar("readsIssued")
        .set(static_cast<double>(mc_->device().readsIssued()));
    dev_group.scalar("avgAcceptStallNs")
        .set(mc_->device().avgAcceptStall());
    dev_group.gauge("queueDepth") = mc_->device().queueDepthGauge();
    groups.push_back(std::move(dev_group));

    StatGroup engine_group("bmoEngine");
    engine_group.scalar("subOpsExecuted")
        .set(static_cast<double>(mc_->engine().subOpsExecuted()));
    engine_group.scalar("busyNs")
        .set(ticks::toNsF(mc_->engine().busyTicks()));
    groups.push_back(std::move(engine_group));

    StatGroup backend_group("backend");
    backend_group.scalar("writes")
        .set(static_cast<double>(mc_->backend().writes()));
    backend_group.scalar("dupRatio").set(mc_->backend().dupRatio());
    backend_group.scalar("physLinesLive")
        .set(static_cast<double>(mc_->backend().physLinesLive()));
    if (mc_->backend().config().compression)
        backend_group.scalar("compressionRatio")
            .set(mc_->backend().compressionRatio());
    groups.push_back(std::move(backend_group));

    if (config_.mode == WritePathMode::Janus) {
        const JanusFrontend &fe = mc_->frontend();
        StatGroup fe_group("janus");
        fe_group.scalar("requestsIssued")
            .set(static_cast<double>(fe.requestsIssued()));
        fe_group.scalar("chunksPreExecuted")
            .set(static_cast<double>(fe.chunksPreExecuted()));
        fe_group.scalar("consumedWithEntry")
            .set(static_cast<double>(fe.consumedWithEntry()));
        fe_group.scalar("consumedFullyPreExecuted")
            .set(static_cast<double>(fe.consumedFullyPreExecuted()));
        fe_group.scalar("irb_hits")
            .set(static_cast<double>(fe.irbHits()));
        fe_group.scalar("irb_misses")
            .set(static_cast<double>(fe.irbMisses()));
        fe_group.scalar("preexec_covered_subops")
            .set(static_cast<double>(fe.preexecCoveredSubOps()));
        fe_group.scalar("dataMismatches")
            .set(static_cast<double>(fe.dataMismatches()));
        fe_group.scalar("metadataInvalidations")
            .set(static_cast<double>(fe.metadataInvalidations()));
        fe_group.scalar("droppedIrb")
            .set(static_cast<double>(fe.droppedIrb()));
        fe_group.scalar("droppedOpQueue")
            .set(static_cast<double>(fe.droppedOpQueue()));
        fe_group.scalar("agedOut")
            .set(static_cast<double>(fe.agedOut()));
        fe_group.gauge("irbOccupancy") = fe.irbOccupancyGauge();
        groups.push_back(std::move(fe_group));
    }

    // Streamlined integrity-tree engine. Always emitted — all-zero
    // when streamlining is off — so the schema is stable.
    {
        const MerkleTree &tree = mc_->backend().merkleTree();
        StatGroup merkle_group("merkle");
        merkle_group.scalar("cacheCapacity")
            .set(static_cast<double>(tree.cacheCapacity()));
        merkle_group.scalar("cacheResident")
            .set(static_cast<double>(tree.cacheResident()));
        merkle_group.scalar("cacheHits")
            .set(static_cast<double>(tree.cacheHits()));
        merkle_group.scalar("cacheMisses")
            .set(static_cast<double>(tree.cacheMisses()));
        merkle_group.scalar("cacheHitRate").set(tree.cacheHitRate());
        merkle_group.scalar("coalescedLevels")
            .set(static_cast<double>(tree.coalescedPathLevels()));
        merkle_group.scalar("epochs")
            .set(static_cast<double>(tree.epochs()));
        merkle_group.scalar("interiorRehashes")
            .set(static_cast<double>(tree.interiorRehashes()));
        merkle_group.scalar("savedInteriorRehashes")
            .set(static_cast<double>(tree.savedInteriorRehashes()));
        merkle_group.scalar("pipelinedSubOps")
            .set(static_cast<double>(mc_->engine().pipelinedSubOps()));
        merkle_group.scalar("pipeBusyNs")
            .set(ticks::toNsF(mc_->engine().pipeBusyTicks()));
        merkle_group.gauge("cacheOccupancy") =
            mc_->treeCacheOccupancy();
        groups.push_back(std::move(merkle_group));
    }

    // Always emitted — all-zero when the layer is disabled — so the
    // stats schema is stable across configurations.
    {
        ResilienceCounters rc = mc_->resilience().counters();
        auto u64 = [](std::uint64_t v) {
            return static_cast<double>(v);
        };
        StatGroup res_group("resilience");
        res_group.scalar("transientFlipsInjected")
            .set(u64(rc.transientFlipsInjected));
        res_group.scalar("stuckCellsInjected")
            .set(u64(rc.stuckCellsInjected));
        res_group.scalar("cleanReads").set(u64(rc.cleanReads));
        res_group.scalar("correctedReads").set(u64(rc.correctedReads));
        res_group.scalar("uncorrectableReads")
            .set(u64(rc.uncorrectableReads));
        res_group.scalar("readRetries").set(u64(rc.readRetries));
        res_group.scalar("correctedWrites")
            .set(u64(rc.correctedWrites));
        res_group.scalar("writeVerifyFailures")
            .set(u64(rc.writeVerifyFailures));
        res_group.scalar("writeRetries").set(u64(rc.writeRetries));
        res_group.scalar("remaps").set(u64(rc.remaps));
        res_group.scalar("spareExhausted").set(u64(rc.spareExhausted));
        res_group.scalar("dataLossLines").set(u64(rc.dataLossLines));
        res_group.scalar("irbEccFaults").set(u64(rc.irbEccFaults));
        res_group.scalar("preExecDisabledWrites")
            .set(u64(rc.preExecDisabledWrites));
        res_group.scalar("dedupBypasses").set(u64(rc.dedupBypasses));
        res_group.scalar("watchdogTrips").set(u64(rc.watchdogTrips));
        res_group.scalar("degradedNs")
            .set(ticks::toNsF(rc.degradedTicks));
        res_group.scalar("retryBackoffNs")
            .set(ticks::toNsF(rc.retryBackoffTicks));
        res_group.scalar("scrubQueued").set(u64(rc.scrubQueued));
        res_group.scalar("scrubbed").set(u64(rc.scrubbed));
        res_group.scalar("scrubFailures").set(u64(rc.scrubFailures));
        groups.push_back(std::move(res_group));
    }

    std::sort(groups.begin(), groups.end(),
              [](const StatGroup &a, const StatGroup &b) {
                  return a.name() < b.name();
              });
    return groups;
}

void
NvmSystem::dumpStats(std::ostream &os)
{
    for (const StatGroup &group : collectStats())
        group.dump(os);
}

void
NvmSystem::dumpStatsJson(std::ostream &os)
{
    os << "{";
    bool first = true;
    for (const StatGroup &group : collectStats()) {
        os << (first ? "\n  " : ",\n  ");
        first = false;
        group.dumpJson(os);
    }
    os << "\n}\n";
}

} // namespace janus
