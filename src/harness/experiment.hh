/**
 * @file
 * Experiment runner: builds a module (kernels + txn runtime +
 * optional automated instrumentation), assembles a system, runs one
 * workload on every core, validates the resulting data structures,
 * and collects the statistics the paper's figures are built from.
 */

#ifndef JANUS_HARNESS_EXPERIMENT_HH
#define JANUS_HARNESS_EXPERIMENT_HH

#include <string>

#include "compiler/auto_instrument.hh"
#include "harness/openloop.hh"
#include "harness/system.hh"
#include "workloads/workload.hh"

namespace janus
{

/** How PRE_* calls get into the program (paper Section 5.2.3). */
enum class Instrumentation : std::uint8_t
{
    None,   ///< original program (baselines)
    Manual, ///< hand-placed PRE_* calls
    Auto,   ///< compiler-pass-injected PRE_* calls
};

/** Everything one run needs. */
struct ExperimentConfig
{
    std::string workloadName = "array_swap";
    SystemConfig sys;
    WorkloadParams workload;
    Instrumentation instr = Instrumentation::Manual;
    bool validate = true;
    /** Open-loop arrival-driven load (closed-loop when disabled).
     *  With openLoop.enabled the workload's transaction stream is
     *  paced by the seed-derived arrival schedule and gated through
     *  the controller's QoS admission path (config.sys.qos). */
    OpenLoopConfig openLoop;
};

/** Digest of one run. */
struct ExperimentResult
{
    Tick makespan = 0;
    double avgWriteLatencyNs = 0;
    /** Mean per-stage persist latency (bmo + queue + order ==
     *  avgWriteLatencyNs tick-exactly; see PersistBreakdown). */
    double stageBmoNs = 0;
    double stageQueueNs = 0;
    double stageOrderNs = 0;
    /** Persist-latency distribution tails (ns). */
    double persistP50Ns = 0;
    double persistP99Ns = 0;
    double persistP999Ns = 0;
    double measuredDupRatio = 0;
    /** Fraction of consumed writes whose BMOs were fully done. */
    double fullyPreExecutedFrac = 0;
    // Streamlined integrity-tree engine (zero when off).
    std::uint64_t treeCacheHits = 0;
    std::uint64_t treeCacheMisses = 0;
    double treeCacheHitRate = 0;
    std::uint64_t merkleCoalescedLevels = 0;
    std::uint64_t merkleSavedRehashes = 0;
    std::uint64_t instructions = 0;
    std::uint64_t transactions = 0;
    std::uint64_t persists = 0;
    std::uint64_t preRequests = 0;
    Tick fenceStallTicks = 0;
    InstrumentReport instrReport;
    /** Kernel events executed by this run (deterministic). */
    std::uint64_t eventsExecuted = 0;
    /** Shard-scheduler synchronization rounds (0 on a serial run). */
    std::uint64_t schedulerRounds = 0;
    /** Cross-shard messages delivered (0 on a single-shard run). */
    std::uint64_t crossShardMessages = 0;
    /** Host wall-clock spent in this run (not deterministic). */
    double wallSeconds = 0;
    /** Host wall-clock spent inside the event loop itself — the
     *  denominator of events/sec scaling claims (not deterministic;
     *  excludes module building, system assembly and validation). */
    double simSeconds = 0;
    /**
     * Chrome trace-event JSON of the run (empty unless
     * config.sys.trace was set; BenchRunner sets it from the
     * JANUS_TRACE environment variable). Deterministic: serial and
     * parallel runners produce identical traces.
     */
    std::string traceJson;
    std::uint64_t traceEventsRecorded = 0;
    std::uint64_t traceEventsDropped = 0;
    /** Resilience-layer counters (all zero when the layer is off). */
    ResilienceCounters resilience;
    /**
     * Aggregated critical-path attribution over every persist of the
     * run (empty unless config.sys.profilePersist). Edge shares
     * partition avg persist latency exactly; see sim/critpath.hh.
     */
    CritPathSummary critPath;
    /**
     * METRICS-schema time-series JSON (empty unless
     * config.sys.metrics; BenchRunner sets it from JANUS_METRICS).
     */
    std::string metricsJson;
    std::uint64_t metricsWindows = 0;
    /**
     * Per-tenant open-loop accounting (empty unless
     * config.openLoop.enabled). Response times measure from the
     * scheduled arrival, so they diverge past saturation; the books
     * always balance: offered == completed + shed + rejected.
     */
    std::vector<OpenLoopTenantStats> tenants;
};

/** Run one experiment to completion. */
ExperimentResult runExperiment(const ExperimentConfig &config);

/**
 * Convenience for the figures: run @p config as-is, then re-run it
 * with the serialized baseline (Instrumentation::None), and return
 * makespan(serialized) / makespan(config).
 */
double speedupOverSerialized(const ExperimentConfig &config);

} // namespace janus

#endif // JANUS_HARNESS_EXPERIMENT_HH
