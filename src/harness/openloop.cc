#include "harness/openloop.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"
#include "memctrl/memory_controller.hh"

namespace janus
{

namespace
{

/** Exponential variate with the given mean, at least one tick so
 *  schedules stay strictly increasing. */
Tick
expTicks(Rng &rng, double mean_ticks)
{
    double u = rng.uniform();
    double dt = -std::log(1.0 - u) * mean_ticks;
    if (dt < 1.0)
        return 1;
    return static_cast<Tick>(dt);
}

/** Exact quantile over a sorted sample set (nearest rank). */
double
exactQuantileNs(const std::vector<Tick> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    std::size_t idx =
        static_cast<std::size_t>(q * static_cast<double>(sorted.size()));
    if (idx >= sorted.size())
        idx = sorted.size() - 1;
    return ticks::toNsF(sorted[idx]);
}

} // namespace

std::vector<Tick>
makeArrivalSchedule(const OpenLoopConfig &cfg, std::uint64_t seed,
                    unsigned core)
{
    janus_assert(cfg.ratePerUsPerCore > 0,
                 "open-loop rate must be positive");
    double factor = core < cfg.rateFactorOfCore.size()
                        ? cfg.rateFactorOfCore[core]
                        : 1.0;
    janus_assert(factor > 0,
                 "open-loop rate factor for core %u must be "
                 "positive",
                 core);
    // Per-core generator: a pure function of (seed, core), never of
    // the shard/thread layout — the determinism contract.
    Rng rng(seed ^ (0x9E3779B97F4A7C15ull * (core + 1)));
    const double mean_inter =
        static_cast<double>(ticks::us) /
        (cfg.ratePerUsPerCore * factor);

    std::vector<Tick> schedule;
    schedule.reserve(cfg.requestsPerCore);
    Tick t = 0;

    switch (cfg.process) {
      case ArrivalProcess::Poisson: {
          for (unsigned i = 0; i < cfg.requestsPerCore; ++i) {
              t += expTicks(rng, mean_inter);
              schedule.push_back(t);
          }
          break;
      }
      case ArrivalProcess::Bursty: {
          // MMPP-2: alternate ON/OFF phases with exponential dwell;
          // the OFF rate is derived so the long-run mean offered
          // load stays ratePerUsPerCore (clamped at zero — a boost
          // past 1/onFraction makes OFF fully silent).
          const double f =
              std::clamp(cfg.burstOnFraction, 0.01, 0.99);
          const double boost = std::max(cfg.burstRateBoost, 1.0);
          const double off_factor =
              std::max(0.0, (1.0 - f * boost) / (1.0 - f));
          const double on_mean = mean_inter / boost;
          const double off_mean =
              off_factor > 0 ? mean_inter / off_factor : 0;
          const double phase =
              static_cast<double>(cfg.burstPhaseTicks);
          bool on = true;
          Tick phase_end =
              expTicks(rng, std::max(1.0, phase * f));
          while (schedule.size() < cfg.requestsPerCore) {
              if (on) {
                  Tick next = t + expTicks(rng, on_mean);
                  if (next < phase_end) {
                      t = next;
                      schedule.push_back(t);
                      continue;
                  }
              } else if (off_mean > 0) {
                  Tick next = t + expTicks(rng, off_mean);
                  if (next < phase_end) {
                      t = next;
                      schedule.push_back(t);
                      continue;
                  }
              }
              // Phase exhausted (or OFF is silent): advance.
              t = phase_end;
              on = !on;
              phase_end =
                  t + expTicks(rng, std::max(1.0,
                                             phase * (on ? f
                                                         : 1.0 - f)));
          }
          break;
      }
      case ArrivalProcess::DiurnalRamp: {
          // The instantaneous rate factor ramps linearly from start
          // to end across the request index — a compressed diurnal
          // curve (quiet morning to evening peak).
          const unsigned n = std::max(1u, cfg.requestsPerCore);
          for (unsigned i = 0; i < cfg.requestsPerCore; ++i) {
              double frac = n > 1
                                ? static_cast<double>(i) / (n - 1)
                                : 0.0;
              double factor =
                  cfg.rampStartFactor +
                  (cfg.rampEndFactor - cfg.rampStartFactor) * frac;
              factor = std::max(factor, 1e-3);
              t += expTicks(rng, mean_inter / factor);
              schedule.push_back(t);
          }
          break;
      }
    }
    return schedule;
}

OpenLoopDriver::OpenLoopDriver(const OpenLoopConfig &cfg,
                               const QosConfig &qos,
                               unsigned numCores, std::uint64_t seed)
    : cfg_(cfg), qos_(qos)
{
    cores_.resize(numCores);
    for (unsigned c = 0; c < numCores; ++c)
        cores_[c].schedule = makeArrivalSchedule(cfg_, seed, c);
}

unsigned
OpenLoopDriver::numTenants() const
{
    return std::max<unsigned>(
        1, static_cast<unsigned>(qos_.tenants.size()));
}

unsigned
OpenLoopDriver::tenantOf(unsigned core) const
{
    if (core < qos_.tenantOfCore.size())
        return qos_.tenantOfCore[core];
    return core % numTenants();
}

void
OpenLoopDriver::attach(unsigned core, MemoryController *mc,
                       TxnSource inner)
{
    janus_assert(core < cores_.size(), "core %u out of range", core);
    cores_[core].mc = mc;
    cores_[core].inner = std::move(inner);
}

OpenLoopFeed::Status
OpenLoopDriver::next(unsigned core, Tick now, Tick &wake_at,
                     std::string &fn,
                     std::vector<std::uint64_t> &args)
{
    PerCore &pc = cores_[core];
    if (pc.inFlight) {
        // The previous transaction just finished (its last fence
        // retired at `now`): response time measures from the
        // request's *scheduled* arrival, so time spent queued
        // behind a backlog counts — the open-loop tail.
        pc.latencies.push_back(now - pc.inFlightArrival);
        pc.inFlight = false;
        ++pc.completed;
    }
    while (true) {
        if (pc.nextIdx >= pc.schedule.size())
            return Status::Done;
        const Tick due = pc.schedule[pc.nextIdx];
        if (pc.retryAt > now) {
            wake_at = pc.retryAt;
            return Status::Wait;
        }
        if (due > now) {
            wake_at = due;
            return Status::Wait;
        }

        // Backlog: how many scheduled arrivals are due but not yet
        // dispatched. Growth without bound is the signature of
        // offered load past saturation.
        pc.dueScan = std::max(pc.dueScan, pc.nextIdx);
        while (pc.dueScan < pc.schedule.size() &&
               pc.schedule[pc.dueScan] <= now)
            ++pc.dueScan;
        pc.maxBacklog = std::max<std::uint64_t>(
            pc.maxBacklog, pc.dueScan - pc.nextIdx);

        AdmitDecision d =
            pc.mc ? pc.mc->qosAdmit(core, now, due, pc.attempt)
                  : AdmitDecision{};
        if (d.outcome == AdmitOutcome::Retry) {
            ++pc.attempt;
            ++pc.retries;
            pc.retryAt = now + std::max<Tick>(1, d.retryAfter);
            wake_at = pc.retryAt;
            return Status::Wait;
        }
        pc.attempt = 0;
        pc.retryAt = 0;
        if (d.outcome == AdmitOutcome::Reject ||
            d.outcome == AdmitOutcome::Shed) {
            // Consume the request and its transaction payload so
            // the schedule and the workload stream stay 1:1; the
            // transaction never executes.
            std::string skip_fn;
            std::vector<std::uint64_t> skip_args;
            if (pc.inner)
                pc.inner(skip_fn, skip_args);
            if (d.outcome == AdmitOutcome::Reject)
                ++pc.rejected;
            else
                ++pc.shed;
            ++pc.nextIdx;
            continue;
        }
        // Admitted: hand the transaction to the core.
        if (!pc.inner || !pc.inner(fn, args))
            return Status::Done; // workload stream exhausted
        pc.inFlight = true;
        pc.inFlightArrival = due;
        ++pc.nextIdx;
        return Status::Ready;
    }
}

std::vector<OpenLoopTenantStats>
OpenLoopDriver::harvest() const
{
    const unsigned T = numTenants();
    std::vector<OpenLoopTenantStats> out(T);
    std::vector<std::vector<Tick>> lat(T);
    for (unsigned t = 0; t < T; ++t) {
        if (t < qos_.tenants.size()) {
            out[t].name = qos_.tenants[t].name;
            out[t].priority = qos_.tenants[t].priority;
        } else {
            out[t].name = "default";
        }
    }
    for (unsigned c = 0; c < cores_.size(); ++c) {
        const PerCore &pc = cores_[c];
        OpenLoopTenantStats &ts = out[tenantOf(c)];
        ts.offered += pc.completed + pc.shed + pc.rejected;
        ts.completed += pc.completed;
        ts.shed += pc.shed;
        ts.rejected += pc.rejected;
        ts.retries += pc.retries;
        ts.maxBacklog = std::max(ts.maxBacklog, pc.maxBacklog);
        auto &dst = lat[tenantOf(c)];
        dst.insert(dst.end(), pc.latencies.begin(),
                   pc.latencies.end());
    }
    for (unsigned t = 0; t < T; ++t) {
        std::sort(lat[t].begin(), lat[t].end());
        out[t].diverged =
            out[t].maxBacklog > cfg_.backlogDivergedDepth;
        if (!lat[t].empty()) {
            double sum = 0;
            for (Tick v : lat[t])
                sum += ticks::toNsF(v);
            out[t].meanNs = sum / static_cast<double>(lat[t].size());
        }
        out[t].p50Ns = exactQuantileNs(lat[t], 0.50);
        out[t].p99Ns = exactQuantileNs(lat[t], 0.99);
        out[t].p999Ns = exactQuantileNs(lat[t], 0.999);
    }
    return out;
}

} // namespace janus
